// Runtime kernel selection. The dispatched entry points pick AVX2 only when
// all three hold: the AVX2 TU was compiled with AVX2 codegen
// (-DCONVOY_SIMD=ON + compiler support), the running CPU reports AVX2, and
// the scalar path is not forced. Because both paths are bit-identical (see
// kernels_avx2.cc), dispatch never affects results — only speed.

#include <atomic>

#include "simd/dist_kernels.h"

namespace convoy::simd {

namespace {

// Invariant: a debugging/bench toggle read with relaxed ordering. Readers
// only need *some* current value — the scalar and AVX2 kernels return
// bit-identical results, so a racing toggle can change which code computes
// an answer but never the answer itself.
std::atomic<bool> g_force_scalar{false};

bool CpuHasAvx2() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

inline bool UseAvx2() {
  return Avx2Compiled() && Avx2Available() && !ScalarForced();
}

}  // namespace

bool Avx2Available() {
  static const bool available = CpuHasAvx2();
  return available;
}

void ForceScalar(bool on) {
  g_force_scalar.store(on, std::memory_order_relaxed);
}

bool ScalarForced() { return g_force_scalar.load(std::memory_order_relaxed); }

const char* ActiveKernelIsa() { return UseAvx2() ? "avx2" : "scalar"; }

bool PairSegmentsQualify(const SegmentSoa& segs, size_t a_begin, size_t a_end,
                         size_t b_begin, size_t b_end, double eps, bool dstar,
                         bool mbr_prune, PairCounters* counters) {
  if (UseAvx2()) {
    return PairSegmentsQualifyAvx2(segs, a_begin, a_end, b_begin, b_end, eps,
                                   dstar, mbr_prune, counters);
  }
  return PairSegmentsQualifyScalar(segs, a_begin, a_end, b_begin, b_end, eps,
                                   dstar, mbr_prune, counters);
}

uint32_t BoxPruneSweep(const double* bminx, const double* bmaxx,
                       const double* bminy, const double* bmaxy,
                       const double* btol, uint32_t b_begin, uint32_t b_end,
                       double aminx, double amaxx, double aminy, double amaxy,
                       double eps_plus_atol, uint32_t* survivors) {
  if (UseAvx2()) {
    return BoxPruneSweepAvx2(bminx, bmaxx, bminy, bmaxy, btol, b_begin, b_end,
                             aminx, amaxx, aminy, amaxy, eps_plus_atol,
                             survivors);
  }
  return BoxPruneSweepScalar(bminx, bmaxx, bminy, bmaxy, btol, b_begin, b_end,
                             aminx, amaxx, aminy, amaxy, eps_plus_atol,
                             survivors);
}

void RadiusScan(const double* sx, const double* sy, const uint32_t* point_of,
                size_t lo, size_t hi, double px, double py, double r2,
                std::vector<size_t>* out) {
  if (UseAvx2()) {
    RadiusScanAvx2(sx, sy, point_of, lo, hi, px, py, r2, out);
    return;
  }
  RadiusScanScalar(sx, sy, point_of, lo, hi, px, py, r2, out);
}

}  // namespace convoy::simd
