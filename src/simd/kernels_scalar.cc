// Scalar reference kernels — the compile-time fallback (-DCONVOY_SIMD=OFF)
// and the runtime fallback (no AVX2 / ForceScalar). Distances go through
// the geom:: functions the legacy merge scan calls, so this path is
// reference-identical by construction; the AVX2 TU must match *it*.

#include "simd/kernels_detail.h"

namespace convoy::simd {

bool PairSegmentsQualifyScalar(const SegmentSoa& segs, size_t a_begin,
                               size_t a_end, size_t b_begin, size_t b_end,
                               double eps, bool dstar, bool mbr_prune,
                               PairCounters* counters) {
  return detail::QualifyScan(
      segs, a_begin, a_end, b_begin, b_end,
      [&](size_t a, size_t base, size_t lanes) {
        const double bound_base = eps + segs.tol[a];
        return detail::QualifyBlockScalar(segs, a, bound_base, base, lanes,
                                          dstar, mbr_prune, counters);
      });
}

uint32_t BoxPruneSweepScalar(const double* bminx, const double* bmaxx,
                             const double* bminy, const double* bmaxy,
                             const double* btol, uint32_t b_begin,
                             uint32_t b_end, double aminx, double amaxx,
                             double aminy, double amaxy, double eps_plus_atol,
                             uint32_t* survivors) {
  uint32_t count = 0;
  for (uint32_t b = b_begin; b < b_end; ++b) {
    const double bound = eps_plus_atol + btol[b];
    if (!detail::BoxPrunedExact(aminx, amaxx, aminy, amaxy, bminx[b],
                                bmaxx[b], bminy[b], bmaxy[b], bound)) {
      survivors[count++] = b;
    }
  }
  return count;
}

bool PolylineBoxPruned(double aminx, double amaxx, double aminy, double amaxy,
                       double bminx, double bmaxx, double bminy, double bmaxy,
                       double bound) {
  return detail::BoxPrunedExact(aminx, amaxx, aminy, amaxy, bminx, bmaxx,
                                bminy, bmaxy, bound);
}

void RadiusScanScalar(const double* sx, const double* sy,
                      const uint32_t* point_of, size_t lo, size_t hi,
                      double px, double py, double r2,
                      std::vector<size_t>* out) {
  for (size_t j = lo; j < hi; ++j) {
    const double dx = sx[j] - px;
    const double dy = sy[j] - py;
    if (dx * dx + dy * dy <= r2) out->push_back(point_of[j]);
  }
}

void DistanceBatchScalar(const SegmentSoa& segs, size_t a, size_t b_begin,
                         size_t count, bool dstar, double* out) {
  for (size_t l = 0; l < count; ++l) {
    out[l] = detail::LaneDistance(segs, a, b_begin + l, dstar);
  }
}

}  // namespace convoy::simd
