#ifndef CONVOY_SIMD_DIST_KERNELS_H_
#define CONVOY_SIMD_DIST_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace convoy::simd {

/// Borrowed structure-of-arrays view of timed segments laid out in scan
/// order (the CSR layout PolylineSoa builds per time partition). All arrays
/// are indexed by global segment index; ticks are stored as doubles (the
/// conversion from Tick is exact for |t| < 2^53, which the tick domain
/// guarantees), so the kernels never touch integers in the hot loop.
struct SegmentSoa {
  const double* x0 = nullptr;  ///< start endpoint
  const double* y0 = nullptr;
  const double* x1 = nullptr;  ///< end endpoint
  const double* y1 = nullptr;
  const double* t0 = nullptr;  ///< begin tick, exact double
  const double* t1 = nullptr;  ///< end tick, exact double
  const double* minx = nullptr;  ///< per-segment MBR
  const double* maxx = nullptr;
  const double* miny = nullptr;
  const double* maxy = nullptr;
  const double* tol = nullptr;  ///< per-segment simplification tolerance
};

/// Work tallies of one PairSegmentsQualify call. Both kernels process
/// candidates in identical blocks of (up to) four lanes and only early-exit
/// at block boundaries, so the tallies are bit-identical between the scalar
/// and the AVX2 path.
struct PairCounters {
  uint64_t segment_tests = 0;  ///< pairs whose exact distance was computed
  uint64_t mbr_rejects = 0;    ///< pairs rejected by the segment-MBR bound
};

/// The polyline e-neighborhood test over the SoA layout: true if some
/// examined segment pair (a in [a_begin,a_end), b in [b_begin,b_end))
/// satisfies dist(a, b) <= eps + tol[a] + tol[b], with dist = DLL (dstar
/// false) or D* (dstar true). The examined pair set is exactly the
/// reference merge scan's pointer walk — including its tie rule, which
/// advances both pointers on an equal end tick and therefore skips pairs
/// whose only shared tick is that boundary. Both ranges must be ascending
/// and contiguous in time (simplified-trajectory segments are). `mbr_prune`
/// rejects segment pairs whose MBRs are provably farther than the bound
/// (by more than the combined rounding slack, so the decision can never
/// contradict the exact distance test). The boolean result is identical to
/// the reference merge scan in PolylinesAreNeighbors for every input.
bool PairSegmentsQualifyScalar(const SegmentSoa& segs, size_t a_begin,
                               size_t a_end, size_t b_begin, size_t b_end,
                               double eps, bool dstar, bool mbr_prune,
                               PairCounters* counters);
bool PairSegmentsQualifyAvx2(const SegmentSoa& segs, size_t a_begin,
                             size_t a_end, size_t b_begin, size_t b_end,
                             double eps, bool dstar, bool mbr_prune,
                             PairCounters* counters);
/// Runtime-dispatched (AVX2 when compiled in, supported, and not forced off).
bool PairSegmentsQualify(const SegmentSoa& segs, size_t a_begin, size_t a_end,
                         size_t b_begin, size_t b_end, double eps, bool dstar,
                         bool mbr_prune, PairCounters* counters);

/// The Lemma 2 polyline-level bounding-box sweep: for every candidate b in
/// [b_begin, b_end) decides `Dmin(box_a, box_b) > (eps_plus_atol + btol[b])`
/// exactly as the reference (fl-for-fl, including the sqrt), and writes the
/// survivors (ascending) to `survivors` (caller-sized to b_end - b_begin).
/// Returns the survivor count. The AVX2 path avoids the sqrt via a two-sided
/// squared-compare whose ambiguous band falls back to the exact scalar
/// formula, so its decisions are bit-identical to the scalar path.
uint32_t BoxPruneSweepScalar(const double* bminx, const double* bmaxx,
                             const double* bminy, const double* bmaxy,
                             const double* btol, uint32_t b_begin,
                             uint32_t b_end, double aminx, double amaxx,
                             double aminy, double amaxy, double eps_plus_atol,
                             uint32_t* survivors);
uint32_t BoxPruneSweepAvx2(const double* bminx, const double* bmaxx,
                           const double* bminy, const double* bmaxy,
                           const double* btol, uint32_t b_begin,
                           uint32_t b_end, double aminx, double amaxx,
                           double aminy, double amaxy, double eps_plus_atol,
                           uint32_t* survivors);
uint32_t BoxPruneSweep(const double* bminx, const double* bmaxx,
                       const double* bminy, const double* bmaxy,
                       const double* btol, uint32_t b_begin, uint32_t b_end,
                       double aminx, double amaxx, double aminy, double amaxy,
                       double eps_plus_atol, uint32_t* survivors);

/// The point-radius scan of GridIndex::ScanRange: appends point_of[j] for
/// every j in [lo, hi) with (sx[j]-px)^2 + (sy[j]-py)^2 <= r2, in ascending
/// j order. Scalar and AVX2 produce identical output (same compares, same
/// order; the AVX2 path only batches the arithmetic).
void RadiusScanScalar(const double* sx, const double* sy,
                      const uint32_t* point_of, size_t lo, size_t hi,
                      double px, double py, double r2,
                      std::vector<size_t>* out);
void RadiusScanAvx2(const double* sx, const double* sy,
                    const uint32_t* point_of, size_t lo, size_t hi, double px,
                    double py, double r2, std::vector<size_t>* out);
void RadiusScan(const double* sx, const double* sy, const uint32_t* point_of,
                size_t lo, size_t hi, double px, double py, double r2,
                std::vector<size_t>* out);

/// Parity-test surface: the raw per-lane distances (DLL, or D* when `dstar`)
/// of query segment `a` against candidates [b_begin, b_begin + count),
/// written to `out`. The scalar path calls geom::DLL / geom::DStar directly;
/// the AVX2 path runs the vector lanes the qualify kernel uses — the parity
/// suite asserts the two are bit-identical.
void DistanceBatchScalar(const SegmentSoa& segs, size_t a, size_t b_begin,
                         size_t count, bool dstar, double* out);
void DistanceBatchAvx2(const SegmentSoa& segs, size_t a, size_t b_begin,
                       size_t count, bool dstar, double* out);

/// The reference Lemma 2 box-prune decision for one polyline pair —
/// bit-identical to `geom::Dmin(box_a, box_b) > bound` for non-empty boxes.
/// Used by the STR-tree candidate path and the parity tests.
bool PolylineBoxPruned(double aminx, double amaxx, double aminy, double amaxy,
                       double bminx, double bmaxx, double bminy, double bmaxy,
                       double bound);

// --------------------------------------------------------------- policy --
/// True when the AVX2 kernel TU was compiled with AVX2 codegen
/// (CMake -DCONVOY_SIMD=ON and a compiler that accepts -mavx2).
bool Avx2Compiled();

/// True when the running CPU supports AVX2 (checked once, cached).
bool Avx2Available();

/// Forces every dispatched kernel onto the scalar path (debugging aid; also
/// how the bench isolates the SIMD contribution). Thread-safe; affects
/// calls that start after the store.
void ForceScalar(bool on);
bool ScalarForced();

/// "avx2" or "scalar" — what a dispatched call would run right now.
const char* ActiveKernelIsa();

}  // namespace convoy::simd

#endif  // CONVOY_SIMD_DIST_KERNELS_H_
