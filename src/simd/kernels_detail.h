#ifndef CONVOY_SIMD_KERNELS_DETAIL_H_
#define CONVOY_SIMD_KERNELS_DETAIL_H_

// Internal helpers shared by the scalar and AVX2 kernel TUs. Everything here
// is scalar IEEE double arithmetic in a fixed evaluation order; both TUs are
// compiled with -ffp-contract=off, so the helpers produce bit-identical
// results no matter which TU inlines them — that is what makes the AVX2
// tail lanes and the ambiguous-band fallbacks agree with the scalar kernel.

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/distance.h"
#include "geom/point.h"
#include "geom/segment.h"
#include "simd/dist_kernels.h"

namespace convoy::simd::detail {

// Two-sided squared-compare margins for the polyline box prune. The
// reference decision is fl(sqrt(d2)) > bound with d2 = fl(dx*dx + dy*dy) and
// b2 = fl(bound*bound): when d2 clears fl(b2 * kBoxHi) the reference is
// certainly true, when it falls below fl(b2 * kBoxLo) certainly false (a
// +-8-ulp band absorbs the rounding of b2, the scaled thresholds, and the
// sqrt); only the band between resolves via the exact sqrt formula.
inline constexpr double kUlp = std::numeric_limits<double>::epsilon();
inline constexpr double kBoxHi = 1.0 + 8.0 * kUlp;
inline constexpr double kBoxLo = 1.0 - 8.0 * kUlp;

// Absolute slack factor of the segment-MBR rejection: the exact DLL/D*
// computation can underestimate the true distance by a few ulps *of the
// coordinate magnitudes* (the rounded closest point sits off the segment by
// that much), so an MBR reject is only sound when the MBR gap clears the
// bound by 64 ulps of the largest participating coordinate.
inline constexpr double kMbrSlack = 64.0 * kUlp;

// Dmin(box_a, box_b) exactly as geom::Dmin computes it for non-empty boxes:
// fl-identical (std::max over the initializer list associates left).
inline double BoxDmin(double aminx, double amaxx, double aminy, double amaxy,
                      double bminx, double bmaxx, double bminy, double bmaxy) {
  const double dx = std::max(std::max(0.0, aminx - bmaxx), bminx - amaxx);
  const double dy = std::max(std::max(0.0, aminy - bmaxy), bminy - amaxy);
  return std::sqrt(dx * dx + dy * dy);
}

// The reference polyline box-prune decision, bit-for-bit:
// Dmin(box_a, box_b) > bound (geom::Dmin never sees an empty box here —
// every partition polyline holds at least one segment).
inline bool BoxPrunedExact(double aminx, double amaxx, double aminy,
                           double amaxy, double bminx, double bmaxx,
                           double bminy, double bmaxy, double bound) {
  return BoxDmin(aminx, amaxx, aminy, amaxy, bminx, bmaxx, bminy, bmaxy) >
         bound;
}

// Segment-MBR rejection. Sound with respect to the computed exact distance
// (see kMbrSlack); the AVX2 path mirrors the exact same operation sequence
// per lane, so the decision is identical on both paths.
inline bool MbrRejects(double aminx, double amaxx, double aminy, double amaxy,
                       double bminx, double bmaxx, double bminy, double bmaxy,
                       double bound) {
  const double dx = std::max(std::max(0.0, aminx - bmaxx), bminx - amaxx);
  const double dy = std::max(std::max(0.0, aminy - bmaxy), bminy - amaxy);
  const double d2 = dx * dx + dy * dy;
  const double m = std::max(
      std::max(std::max(std::fabs(aminx), std::fabs(amaxx)),
               std::max(std::fabs(bminx), std::fabs(bmaxx))),
      std::max(std::max(std::fabs(aminy), std::fabs(amaxy)),
               std::max(std::fabs(bminy), std::fabs(bmaxy))));
  const double thr = bound + m * kMbrSlack;
  return d2 > thr * thr;
}

// The exact reference distance of segment `a` vs segment `b`, computed by
// the same geom functions the reference merge scan calls — the scalar
// kernel is reference-identical by construction.
inline double LaneDistance(const SegmentSoa& s, size_t a, size_t b,
                           bool dstar) {
  if (!dstar) {
    return DLL(Segment(Point(s.x0[a], s.y0[a]), Point(s.x1[a], s.y1[a])),
               Segment(Point(s.x0[b], s.y0[b]), Point(s.x1[b], s.y1[b])));
  }
  const TimedSegment sa(TimedPoint(s.x0[a], s.y0[a], static_cast<Tick>(s.t0[a])),
                        TimedPoint(s.x1[a], s.y1[a], static_cast<Tick>(s.t1[a])));
  const TimedSegment sb(TimedPoint(s.x0[b], s.y0[b], static_cast<Tick>(s.t0[b])),
                        TimedPoint(s.x1[b], s.y1[b], static_cast<Tick>(s.t1[b])));
  return DStar(sa, sb);
}

// One block of up to four candidate lanes of the qualify scan, evaluated
// with the reference scalar math. Returns true if any active lane hits;
// counter updates match the AVX2 block exactly (whole block tallied, no
// intra-block early exit).
inline bool QualifyBlockScalar(const SegmentSoa& segs, size_t a, double bound_base,
                               size_t base, size_t lanes, bool dstar,
                               bool mbr_prune, PairCounters* counters) {
  bool hit = false;
  for (size_t l = 0; l < lanes; ++l) {
    const size_t b = base + l;
    const double bound = bound_base + segs.tol[b];
    if (mbr_prune &&
        MbrRejects(segs.minx[a], segs.maxx[a], segs.miny[a], segs.maxy[a],
                   segs.minx[b], segs.maxx[b], segs.miny[b], segs.maxy[b],
                   bound)) {
      ++counters->mbr_rejects;
      continue;
    }
    ++counters->segment_tests;
    if (LaneDistance(segs, a, b, dstar) <= bound) hit = true;
  }
  return hit;
}

// The shared merge structure of the qualify scan: a range-form replay of
// the reference merge scan's pointer walk. The reference stays in query
// segment a's "column" while candidates end before a does, examines the
// first candidate ending at or after t1[a], then advances a — advancing
// *both* pointers on an exact end-tick tie. That tie rule deliberately
// skips pairs whose only shared tick is the boundary itself, so the column
// ranges below (not the full time-overlap join) are the contract. Within a
// column, candidates the walk passes over without a valid time overlap
// (ended before a starts, or start after a ends) are excluded before
// blocking, exactly like the reference's OverlapTicks guard. `block` is
// called per (up to) four-lane block of testable candidates and returns
// true on a hit; the scan returns right after the first hit block
// (block-boundary early exit on both paths).
template <typename BlockFn>
bool QualifyScan(const SegmentSoa& segs, size_t a_begin, size_t a_end,
                 size_t b_begin, size_t b_end, BlockFn&& block) {
  size_t enter = b_begin;
  for (size_t a = a_begin; a < a_end && enter < b_end; ++a) {
    const double at0 = segs.t0[a];
    const double at1 = segs.t1[a];
    size_t exit = enter;
    while (exit < b_end && segs.t1[exit] < at1) ++exit;
    const size_t hi = exit < b_end ? exit + 1 : b_end;  // column, exclusive
    size_t vlo = enter;
    while (vlo < hi && segs.t1[vlo] < at0) ++vlo;
    size_t vhi = hi;
    if (vhi > vlo && segs.t0[vhi - 1] > at1) --vhi;
    for (size_t base = vlo; base < vhi; base += 4) {
      const size_t lanes = std::min<size_t>(4, vhi - base);
      if (block(a, base, lanes)) return true;
    }
    if (exit >= b_end) break;  // candidate list exhausted mid-column
    enter = segs.t1[exit] == at1 ? exit + 1 : exit;  // tie advances both
  }
  return false;
}

}  // namespace convoy::simd::detail

#endif  // CONVOY_SIMD_KERNELS_DETAIL_H_
