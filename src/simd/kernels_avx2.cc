// AVX2 (4-wide double) kernels. Compiled with -mavx2 -ffp-contract=off only
// when CMake enables CONVOY_SIMD and the compiler accepts the flag;
// otherwise every entry point forwards to the scalar kernel.
//
// Bit-identity discipline: every vector lane executes the exact IEEE
// operation DAG of the scalar reference, in the same order —
//   * std::max(a, b) == _mm256_max_pd(b, a) (both return the second
//     argument when a < b is false, NaN included), likewise std::min;
//   * std::clamp(v, lo, hi) == two blends keyed on (v < lo) and (hi < r);
//   * vaddpd/vsubpd/vmulpd/vdivpd/vsqrtpd are IEEE-correctly-rounded, i.e.
//     identical to their scalar counterparts;
//   * no FMA contraction (-mavx2 does not enable FMA, and the TU pins
//     -ffp-contract=off), so a*b+c rounds twice on both paths.
// The only divergence allowed is *which* lanes get computed; values never
// differ. tests/polyline_parity_test.cc asserts this on adversarial shapes.

#include "simd/kernels_detail.h"

#if defined(CONVOY_SIMD_AVX2) && defined(__AVX2__)

#include <immintrin.h>

namespace convoy::simd {

namespace {

// std::max(a, b) / std::min(a, b) with the scalar argument order preserved
// (x86 max/min return the *second* source on NaN or equality, exactly like
// the ternary in std::max/std::min).
inline __m256d VMax(__m256d a, __m256d b) { return _mm256_max_pd(b, a); }
inline __m256d VMin(__m256d a, __m256d b) { return _mm256_min_pd(b, a); }

inline __m256d VAbs(__m256d v) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), v);
}

// Bitwise negation (sign flip) — matches the scalar unary minus exactly,
// including on signed zeros (0.0 - x would turn -(+0.0) into +0.0).
inline __m256d VNeg(__m256d v) {
  return _mm256_xor_pd(_mm256_set1_pd(-0.0), v);
}

// std::clamp(v, lo, hi): (v < lo) ? lo : (hi < v) ? hi : v. NaN propagates
// (both compares false), as in the scalar version.
inline __m256d VClamp(__m256d v, __m256d lo, __m256d hi) {
  __m256d r = _mm256_blendv_pd(v, lo, _mm256_cmp_pd(v, lo, _CMP_LT_OQ));
  r = _mm256_blendv_pd(r, hi, _mm256_cmp_pd(hi, r, _CMP_LT_OQ));
  return r;
}

struct Vec2 {
  __m256d x;
  __m256d y;
};

// Four independent timed segments (or one broadcast four times).
struct SegLanes {
  __m256d x0, y0, x1, y1, t0, t1;
};

inline SegLanes Broadcast(const SegmentSoa& s, size_t i) {
  return SegLanes{_mm256_set1_pd(s.x0[i]), _mm256_set1_pd(s.y0[i]),
                  _mm256_set1_pd(s.x1[i]), _mm256_set1_pd(s.y1[i]),
                  _mm256_set1_pd(s.t0[i]), _mm256_set1_pd(s.t1[i])};
}

inline SegLanes Load4(const SegmentSoa& s, size_t base) {
  return SegLanes{_mm256_loadu_pd(s.x0 + base), _mm256_loadu_pd(s.y0 + base),
                  _mm256_loadu_pd(s.x1 + base), _mm256_loadu_pd(s.y1 + base),
                  _mm256_loadu_pd(s.t0 + base), _mm256_loadu_pd(s.t1 + base)};
}

// TimedSegment::PositionAt, four lanes.
inline Vec2 PosAt(const SegLanes& s, __m256d t) {
  const __m256d degenerate = _mm256_cmp_pd(s.t1, s.t0, _CMP_LE_OQ);
  const __m256d s_raw = _mm256_div_pd(_mm256_sub_pd(t, s.t0),
                                      _mm256_sub_pd(s.t1, s.t0));
  const __m256d ratio =
      VClamp(s_raw, _mm256_setzero_pd(), _mm256_set1_pd(1.0));
  Vec2 r;
  r.x = _mm256_add_pd(s.x0,
                      _mm256_mul_pd(_mm256_sub_pd(s.x1, s.x0), ratio));
  r.y = _mm256_add_pd(s.y0,
                      _mm256_mul_pd(_mm256_sub_pd(s.y1, s.y0), ratio));
  r.x = _mm256_blendv_pd(r.x, s.x0, degenerate);
  r.y = _mm256_blendv_pd(r.y, s.y0, degenerate);
  return r;
}

// TimedSegment::Velocity, four lanes.
inline Vec2 Velocity(const SegLanes& s) {
  const __m256d dt = _mm256_sub_pd(s.t1, s.t0);
  const __m256d empty =
      _mm256_cmp_pd(dt, _mm256_setzero_pd(), _CMP_LE_OQ);
  const __m256d inv = _mm256_div_pd(_mm256_set1_pd(1.0), dt);
  Vec2 r;
  r.x = _mm256_mul_pd(_mm256_sub_pd(s.x1, s.x0), inv);
  r.y = _mm256_mul_pd(_mm256_sub_pd(s.y1, s.y0), inv);
  r.x = _mm256_blendv_pd(r.x, _mm256_setzero_pd(), empty);
  r.y = _mm256_blendv_pd(r.y, _mm256_setzero_pd(), empty);
  return r;
}

// geom::DStar(p, q), four lanes, including the invalid-overlap -> +inf case.
inline __m256d DStarLanes(const SegLanes& p, const SegLanes& q) {
  const __m256d lo = VMax(p.t0, q.t0);  // ticks are exact doubles
  const __m256d hi = VMin(p.t1, q.t1);
  const Vec2 p0 = PosAt(p, lo);
  const Vec2 q0 = PosAt(q, lo);
  const __m256d d0x = _mm256_sub_pd(p0.x, q0.x);
  const __m256d d0y = _mm256_sub_pd(p0.y, q0.y);
  const Vec2 pv = Velocity(p);
  const Vec2 qv = Velocity(q);
  const __m256d dvx = _mm256_sub_pd(pv.x, qv.x);
  const __m256d dvy = _mm256_sub_pd(pv.y, qv.y);
  const __m256d dv2 =
      _mm256_add_pd(_mm256_mul_pd(dvx, dvx), _mm256_mul_pd(dvy, dvy));
  const __m256d dot =
      _mm256_add_pd(_mm256_mul_pd(d0x, dvx), _mm256_mul_pd(d0y, dvy));
  const __m256d s = _mm256_div_pd(VNeg(dot), dv2);
  __m256d t = VClamp(_mm256_add_pd(lo, s), lo, hi);
  // dv2 <= 0: parallel motion, CPA at the overlap start.
  t = _mm256_blendv_pd(
      t, lo, _mm256_cmp_pd(dv2, _mm256_setzero_pd(), _CMP_LE_OQ));
  const Vec2 pt = PosAt(p, t);
  const Vec2 qt = PosAt(q, t);
  const __m256d dx = _mm256_sub_pd(pt.x, qt.x);
  const __m256d dy = _mm256_sub_pd(pt.y, qt.y);
  __m256d dist = _mm256_sqrt_pd(
      _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)));
  // Disjoint time intervals (hi < lo, exact integer compare on exact
  // doubles) -> +infinity, as the scalar DStar returns.
  const __m256d invalid = _mm256_cmp_pd(hi, lo, _CMP_LT_OQ);
  dist = _mm256_blendv_pd(
      dist, _mm256_set1_pd(std::numeric_limits<double>::infinity()),
      invalid);
  return dist;
}

// Cross(a, b, c) = (b.x-a.x)*(c.y-a.y) - (b.y-a.y)*(c.x-a.x), four lanes.
inline __m256d CrossLanes(__m256d ax, __m256d ay, __m256d bx, __m256d by,
                          __m256d cx, __m256d cy) {
  return _mm256_sub_pd(
      _mm256_mul_pd(_mm256_sub_pd(bx, ax), _mm256_sub_pd(cy, ay)),
      _mm256_mul_pd(_mm256_sub_pd(by, ay), _mm256_sub_pd(cx, ax)));
}

// OnSegment(a, b, p), four lanes (mask result).
inline __m256d OnSegLanes(__m256d ax, __m256d ay, __m256d bx, __m256d by,
                          __m256d px, __m256d py) {
  const __m256d minx = VMin(ax, bx);
  const __m256d maxx = VMax(ax, bx);
  const __m256d miny = VMin(ay, by);
  const __m256d maxy = VMax(ay, by);
  const __m256d in_x =
      _mm256_and_pd(_mm256_cmp_pd(minx, px, _CMP_LE_OQ),
                    _mm256_cmp_pd(px, maxx, _CMP_LE_OQ));
  const __m256d in_y =
      _mm256_and_pd(_mm256_cmp_pd(miny, py, _CMP_LE_OQ),
                    _mm256_cmp_pd(py, maxy, _CMP_LE_OQ));
  return _mm256_and_pd(in_x, in_y);
}

// DPL2(p, segment(a, b)), four lanes.
inline __m256d Dpl2Lanes(__m256d px, __m256d py, __m256d ax, __m256d ay,
                         __m256d bx, __m256d by) {
  const __m256d dx = _mm256_sub_pd(bx, ax);
  const __m256d dy = _mm256_sub_pd(by, ay);
  const __m256d len2 =
      _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
  const __m256d ex0 = _mm256_sub_pd(px, ax);
  const __m256d ey0 = _mm256_sub_pd(py, ay);
  // Degenerate segment: D2(p, a). Computed unconditionally and blended —
  // the dead general-path lanes may hold NaN (0/0), never read.
  const __m256d deg =
      _mm256_add_pd(_mm256_mul_pd(ex0, ex0), _mm256_mul_pd(ey0, ey0));
  const __m256d dot =
      _mm256_add_pd(_mm256_mul_pd(ex0, dx), _mm256_mul_pd(ey0, dy));
  const __m256d ratio = VClamp(_mm256_div_pd(dot, len2),
                               _mm256_setzero_pd(), _mm256_set1_pd(1.0));
  const __m256d cx = _mm256_add_pd(ax, _mm256_mul_pd(dx, ratio));
  const __m256d cy = _mm256_add_pd(ay, _mm256_mul_pd(dy, ratio));
  const __m256d ex = _mm256_sub_pd(px, cx);
  const __m256d ey = _mm256_sub_pd(py, cy);
  const __m256d gen =
      _mm256_add_pd(_mm256_mul_pd(ex, ex), _mm256_mul_pd(ey, ey));
  return _mm256_blendv_pd(
      gen, deg, _mm256_cmp_pd(len2, _mm256_setzero_pd(), _CMP_EQ_OQ));
}

// geom::DLL(u, v) with u the (broadcast) query segment and v four candidate
// segments: SegmentsIntersect -> 0, else sqrt of the min endpoint DPL2.
inline __m256d DllLanes(const SegLanes& u, const SegLanes& v) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d d1 = CrossLanes(v.x0, v.y0, v.x1, v.y1, u.x0, u.y0);
  const __m256d d2 = CrossLanes(v.x0, v.y0, v.x1, v.y1, u.x1, u.y1);
  const __m256d d3 = CrossLanes(u.x0, u.y0, u.x1, u.y1, v.x0, v.y0);
  const __m256d d4 = CrossLanes(u.x0, u.y0, u.x1, u.y1, v.x1, v.y1);
  const auto pos = [&](__m256d d) { return _mm256_cmp_pd(d, zero, _CMP_GT_OQ); };
  const auto neg = [&](__m256d d) { return _mm256_cmp_pd(d, zero, _CMP_LT_OQ); };
  const auto eqz = [&](__m256d d) { return _mm256_cmp_pd(d, zero, _CMP_EQ_OQ); };
  const __m256d straddle_u =
      _mm256_or_pd(_mm256_and_pd(pos(d1), neg(d2)),
                   _mm256_and_pd(neg(d1), pos(d2)));
  const __m256d straddle_v =
      _mm256_or_pd(_mm256_and_pd(pos(d3), neg(d4)),
                   _mm256_and_pd(neg(d3), pos(d4)));
  __m256d inter = _mm256_and_pd(straddle_u, straddle_v);
  inter = _mm256_or_pd(
      inter, _mm256_and_pd(eqz(d1), OnSegLanes(v.x0, v.y0, v.x1, v.y1,
                                               u.x0, u.y0)));
  inter = _mm256_or_pd(
      inter, _mm256_and_pd(eqz(d2), OnSegLanes(v.x0, v.y0, v.x1, v.y1,
                                               u.x1, u.y1)));
  inter = _mm256_or_pd(
      inter, _mm256_and_pd(eqz(d3), OnSegLanes(u.x0, u.y0, u.x1, u.y1,
                                               v.x0, v.y0)));
  inter = _mm256_or_pd(
      inter, _mm256_and_pd(eqz(d4), OnSegLanes(u.x0, u.y0, u.x1, u.y1,
                                               v.x1, v.y1)));
  const __m256d e1 = Dpl2Lanes(u.x0, u.y0, v.x0, v.y0, v.x1, v.y1);
  const __m256d e2 = Dpl2Lanes(u.x1, u.y1, v.x0, v.y0, v.x1, v.y1);
  const __m256d e3 = Dpl2Lanes(v.x0, v.y0, u.x0, u.y0, u.x1, u.y1);
  const __m256d e4 = Dpl2Lanes(v.x1, v.y1, u.x0, u.y0, u.x1, u.y1);
  const __m256d dmin = VMin(VMin(e1, e2), VMin(e3, e4));
  const __m256d dist = _mm256_sqrt_pd(dmin);
  return _mm256_blendv_pd(dist, zero, inter);
}

inline __m256d DistLanes(const SegLanes& q, const SegLanes& c, bool dstar) {
  return dstar ? DStarLanes(q, c) : DllLanes(q, c);
}

inline unsigned MaskOf(__m256d m) {
  return static_cast<unsigned>(_mm256_movemask_pd(m));
}

inline uint64_t PopCount4(unsigned mask) {
  return static_cast<uint64_t>(__builtin_popcount(mask & 0xFu));
}

// One full 4-lane block of the qualify scan (counter discipline identical
// to detail::QualifyBlockScalar: whole block tallied, hit reported after).
inline bool QualifyBlockAvx2(const SegmentSoa& segs, const SegLanes& q,
                             size_t a, double bound_base, size_t base,
                             bool dstar, bool mbr_prune,
                             PairCounters* counters) {
  const __m256d bound = _mm256_add_pd(_mm256_set1_pd(bound_base),
                                      _mm256_loadu_pd(segs.tol + base));
  unsigned active = 0xFu;
  if (mbr_prune) {
    const __m256d zero = _mm256_setzero_pd();
    const __m256d aminx = _mm256_set1_pd(segs.minx[a]);
    const __m256d amaxx = _mm256_set1_pd(segs.maxx[a]);
    const __m256d aminy = _mm256_set1_pd(segs.miny[a]);
    const __m256d amaxy = _mm256_set1_pd(segs.maxy[a]);
    const __m256d bminx = _mm256_loadu_pd(segs.minx + base);
    const __m256d bmaxx = _mm256_loadu_pd(segs.maxx + base);
    const __m256d bminy = _mm256_loadu_pd(segs.miny + base);
    const __m256d bmaxy = _mm256_loadu_pd(segs.maxy + base);
    const __m256d dx =
        VMax(VMax(zero, _mm256_sub_pd(aminx, bmaxx)),
             _mm256_sub_pd(bminx, amaxx));
    const __m256d dy =
        VMax(VMax(zero, _mm256_sub_pd(aminy, bmaxy)),
             _mm256_sub_pd(bminy, amaxy));
    const __m256d d2 =
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    const __m256d m = VMax(
        VMax(VMax(VAbs(aminx), VAbs(amaxx)), VMax(VAbs(bminx), VAbs(bmaxx))),
        VMax(VMax(VAbs(aminy), VAbs(amaxy)), VMax(VAbs(bminy), VAbs(bmaxy))));
    const __m256d thr = _mm256_add_pd(
        bound, _mm256_mul_pd(m, _mm256_set1_pd(detail::kMbrSlack)));
    const __m256d reject =
        _mm256_cmp_pd(d2, _mm256_mul_pd(thr, thr), _CMP_GT_OQ);
    const unsigned reject_mask = MaskOf(reject) & 0xFu;
    counters->mbr_rejects += PopCount4(reject_mask);
    active = ~reject_mask & 0xFu;
  }
  counters->segment_tests += PopCount4(active);
  if (active == 0) return false;
  const __m256d dist = DistLanes(q, Load4(segs, base), dstar);
  const unsigned hit = MaskOf(_mm256_cmp_pd(dist, bound, _CMP_LE_OQ));
  return (hit & active) != 0;
}

}  // namespace

bool Avx2Compiled() { return true; }

bool PairSegmentsQualifyAvx2(const SegmentSoa& segs, size_t a_begin,
                             size_t a_end, size_t b_begin, size_t b_end,
                             double eps, bool dstar, bool mbr_prune,
                             PairCounters* counters) {
  size_t last_a = static_cast<size_t>(-1);
  SegLanes q{};
  double bound_base = 0.0;
  return detail::QualifyScan(
      segs, a_begin, a_end, b_begin, b_end,
      [&](size_t a, size_t base, size_t lanes) {
        if (a != last_a) {
          last_a = a;
          q = Broadcast(segs, a);
          bound_base = eps + segs.tol[a];
        }
        if (lanes == 4) {
          return QualifyBlockAvx2(segs, q, a, bound_base, base, dstar,
                                  mbr_prune, counters);
        }
        return detail::QualifyBlockScalar(segs, a, bound_base, base, lanes,
                                          dstar, mbr_prune, counters);
      });
}

uint32_t BoxPruneSweepAvx2(const double* bminx, const double* bmaxx,
                           const double* bminy, const double* bmaxy,
                           const double* btol, uint32_t b_begin,
                           uint32_t b_end, double aminx, double amaxx,
                           double aminy, double amaxy, double eps_plus_atol,
                           uint32_t* survivors) {
  uint32_t count = 0;
  uint32_t b = b_begin;
  const __m256d zero = _mm256_setzero_pd();
  const __m256d vaminx = _mm256_set1_pd(aminx);
  const __m256d vamaxx = _mm256_set1_pd(amaxx);
  const __m256d vaminy = _mm256_set1_pd(aminy);
  const __m256d vamaxy = _mm256_set1_pd(amaxy);
  const __m256d vbase = _mm256_set1_pd(eps_plus_atol);
  const __m256d vhi = _mm256_set1_pd(detail::kBoxHi);
  const __m256d vlo = _mm256_set1_pd(detail::kBoxLo);
  for (; b + 4 <= b_end; b += 4) {
    const __m256d bound = _mm256_add_pd(vbase, _mm256_loadu_pd(btol + b));
    const __m256d dx =
        VMax(VMax(zero, _mm256_sub_pd(vaminx, _mm256_loadu_pd(bmaxx + b))),
             _mm256_sub_pd(_mm256_loadu_pd(bminx + b), vamaxx));
    const __m256d dy =
        VMax(VMax(zero, _mm256_sub_pd(vaminy, _mm256_loadu_pd(bmaxy + b))),
             _mm256_sub_pd(_mm256_loadu_pd(bminy + b), vamaxy));
    const __m256d d2 =
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    const __m256d b2 = _mm256_mul_pd(bound, bound);
    // Two-sided sqrt-free compare; the +-8-ulp ambiguous band resolves via
    // the exact scalar formula, so decisions match BoxPruneSweepScalar
    // bit-for-bit (see kernels_detail.h).
    unsigned prune =
        MaskOf(_mm256_cmp_pd(d2, _mm256_mul_pd(b2, vhi), _CMP_GT_OQ));
    const unsigned keep =
        MaskOf(_mm256_cmp_pd(d2, _mm256_mul_pd(b2, vlo), _CMP_LT_OQ));
    unsigned ambiguous = ~(prune | keep) & 0xFu;
    while (ambiguous != 0) {
      const unsigned l =
          static_cast<unsigned>(__builtin_ctz(ambiguous));
      ambiguous &= ambiguous - 1;
      const uint32_t j = b + l;
      const double lane_bound = eps_plus_atol + btol[j];
      if (detail::BoxPrunedExact(aminx, amaxx, aminy, amaxy, bminx[j],
                                 bmaxx[j], bminy[j], bmaxy[j], lane_bound)) {
        prune |= 1u << l;
      }
    }
    for (unsigned l = 0; l < 4; ++l) {
      if ((prune & (1u << l)) == 0) survivors[count++] = b + l;
    }
  }
  for (; b < b_end; ++b) {
    const double bound = eps_plus_atol + btol[b];
    if (!detail::BoxPrunedExact(aminx, amaxx, aminy, amaxy, bminx[b],
                                bmaxx[b], bminy[b], bmaxy[b], bound)) {
      survivors[count++] = b;
    }
  }
  return count;
}

void RadiusScanAvx2(const double* sx, const double* sy,
                    const uint32_t* point_of, size_t lo, size_t hi, double px,
                    double py, double r2, std::vector<size_t>* out) {
  size_t j = lo;
  if (j + 4 <= hi) {
    const __m256d vpx = _mm256_set1_pd(px);
    const __m256d vpy = _mm256_set1_pd(py);
    const __m256d vr2 = _mm256_set1_pd(r2);
    for (; j + 4 <= hi; j += 4) {
      const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(sx + j), vpx);
      const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(sy + j), vpy);
      const __m256d d2 =
          _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
      unsigned within = MaskOf(_mm256_cmp_pd(d2, vr2, _CMP_LE_OQ)) & 0xFu;
      while (within != 0) {
        const unsigned l = static_cast<unsigned>(__builtin_ctz(within));
        within &= within - 1;
        out->push_back(point_of[j + l]);
      }
    }
  }
  for (; j < hi; ++j) {
    const double dx = sx[j] - px;
    const double dy = sy[j] - py;
    if (dx * dx + dy * dy <= r2) out->push_back(point_of[j]);
  }
}

void DistanceBatchAvx2(const SegmentSoa& segs, size_t a, size_t b_begin,
                       size_t count, bool dstar, double* out) {
  const SegLanes q = Broadcast(segs, a);
  size_t l = 0;
  for (; l + 4 <= count; l += 4) {
    _mm256_storeu_pd(out + l, DistLanes(q, Load4(segs, b_begin + l), dstar));
  }
  for (; l < count; ++l) {
    out[l] = detail::LaneDistance(segs, a, b_begin + l, dstar);
  }
}

}  // namespace convoy::simd

#else  // !(CONVOY_SIMD_AVX2 && __AVX2__): forward everything to scalar.

namespace convoy::simd {

bool Avx2Compiled() { return false; }

bool PairSegmentsQualifyAvx2(const SegmentSoa& segs, size_t a_begin,
                             size_t a_end, size_t b_begin, size_t b_end,
                             double eps, bool dstar, bool mbr_prune,
                             PairCounters* counters) {
  return PairSegmentsQualifyScalar(segs, a_begin, a_end, b_begin, b_end, eps,
                                   dstar, mbr_prune, counters);
}

uint32_t BoxPruneSweepAvx2(const double* bminx, const double* bmaxx,
                           const double* bminy, const double* bmaxy,
                           const double* btol, uint32_t b_begin,
                           uint32_t b_end, double aminx, double amaxx,
                           double aminy, double amaxy, double eps_plus_atol,
                           uint32_t* survivors) {
  return BoxPruneSweepScalar(bminx, bmaxx, bminy, bmaxy, btol, b_begin, b_end,
                             aminx, amaxx, aminy, amaxy, eps_plus_atol,
                             survivors);
}

void RadiusScanAvx2(const double* sx, const double* sy,
                    const uint32_t* point_of, size_t lo, size_t hi, double px,
                    double py, double r2, std::vector<size_t>* out) {
  RadiusScanScalar(sx, sy, point_of, lo, hi, px, py, r2, out);
}

void DistanceBatchAvx2(const SegmentSoa& segs, size_t a, size_t b_begin,
                       size_t count, bool dstar, double* out) {
  DistanceBatchScalar(segs, a, b_begin, count, dstar, out);
}

}  // namespace convoy::simd

#endif  // CONVOY_SIMD_AVX2 && __AVX2__
