#ifndef CONVOY_DATAGEN_ROAD_NETWORK_H_
#define CONVOY_DATAGEN_ROAD_NETWORK_H_

#include "datagen/movement.h"

namespace convoy {

/// A Manhattan grid of roads: horizontal and vertical streets every
/// `spacing` units across the world square. Vehicles travel along streets
/// and turn at intersections, which concentrates traffic on shared
/// corridors the way real road-constrained GPS data does — convoys (and
/// near-convoys that stress the discovery algorithms) arise naturally from
/// route sharing rather than only from planting.
struct RoadConfig {
  double world_size = 10000.0;
  double spacing = 500.0;       ///< distance between parallel streets
  double speed_mean = 10.0;     ///< displacement per tick along the street
  double speed_jitter = 0.2;    ///< relative sigma of per-tick speed
  double gps_noise = 1.0;       ///< isotropic position noise per sample
  double stop_prob = 0.03;      ///< chance per tick to wait (traffic light)
};

/// Nearest point to `p` that lies on some street of the grid.
Point SnapToRoad(const RoadConfig& config, const Point& p);

/// A random intersection of the grid.
Point RandomIntersection(Rng& rng, const RoadConfig& config);

/// Generates `num_ticks` positions starting at SnapToRoad(start): the
/// vehicle repeatedly picks a random intersection as destination and drives
/// there along an L-shaped street route. Deterministic in `rng`.
DensePath RoadPathFrom(Rng& rng, const RoadConfig& config, const Point& start,
                       size_t num_ticks);

/// True if `p` lies within `tolerance` of some street (test helper; GPS
/// noise is excluded by passing the path point before noise is applied —
/// callers should allow config.gps_noise slack).
bool IsOnRoad(const RoadConfig& config, const Point& p, double tolerance);

}  // namespace convoy

#endif  // CONVOY_DATAGEN_ROAD_NETWORK_H_
