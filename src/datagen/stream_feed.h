#ifndef CONVOY_DATAGEN_STREAM_FEED_H_
#define CONVOY_DATAGEN_STREAM_FEED_H_

#include <cstdint>
#include <vector>

#include "core/convoy_set.h"
#include "datagen/movement.h"
#include "geom/point.h"
#include "traj/trajectory.h"

namespace convoy {

/// Shape of a synthetic *live feed*: tick-ordered position batches, the
/// input of the convoy server's ingest protocol (and of StreamingCmc
/// directly). Where datagen/scenarios.h builds a finished database, this
/// generator models how the data would have *arrived*: rows grouped into
/// bounded batches, objects joining and leaving their groups (churn), and
/// a configurable fraction of reports simply missing (dropout), so server
/// and streaming tests exercise the carry-forward and recovery paths.
struct StreamFeedConfig {
  size_t num_objects = 40;  ///< total population (groups + wanderers)
  Tick ticks = 60;          ///< feed length; ticks are 0..ticks-1
  size_t batch_rows = 16;   ///< max rows per batch (rate shaping)

  MovementConfig movement;

  // Convoy-forming groups: each group follows one waypoint anchor path;
  // members keep a fixed formation offset of at most group_spread around
  // it (plus per-tick jitter), so group members stay density-connected.
  size_t num_groups = 3;
  size_t group_size = 4;
  double group_spread = 5.0;

  /// Object churn: an active member leaves its group with this chance per
  /// tick (it keeps reporting, but from its own independent walk)...
  double leave_prob = 0.0;
  /// ...and a member that left returns to the formation with this chance
  /// per tick — "objects that vanish from the group and come back".
  double rejoin_prob = 0.0;

  /// Chance that any individual report is never sent (sensor dropout).
  /// The object's row is simply absent from that tick's batches.
  double dropout = 0.0;
};

/// One position report of the feed.
struct FeedRow {
  ObjectId id = 0;
  Point pos;
};

/// One tick of the feed: its rows, pre-split into batches of at most
/// `batch_rows` in a deterministic shuffled order (batches interleave
/// object ids the way independent reporters would).
struct FeedTick {
  Tick tick = 0;
  std::vector<std::vector<FeedRow>> batches;
  size_t total_rows = 0;
};

/// A generated feed plus the query parameters under which the planted
/// groups form convoys (e sized from group_spread; m from group_size).
struct StreamFeed {
  std::vector<FeedTick> ticks;
  ConvoyQuery query;
};

/// Generates a feed; deterministic in (config, seed) — the property the
/// loadgen's bit-identical replay verification depends on.
StreamFeed GenerateStreamFeed(const StreamFeedConfig& config, uint64_t seed);

}  // namespace convoy

#endif  // CONVOY_DATAGEN_STREAM_FEED_H_
