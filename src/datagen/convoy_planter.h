#ifndef CONVOY_DATAGEN_CONVOY_PLANTER_H_
#define CONVOY_DATAGEN_CONVOY_PLANTER_H_

#include <vector>

#include "core/convoy_set.h"
#include "datagen/movement.h"
#include "traj/trajectory.h"
#include "util/random.h"

namespace convoy {

/// Description of one ground-truth convoy to plant into a dataset.
struct PlantedGroup {
  std::vector<ObjectId> members;  ///< sorted object ids
  Tick window_start = 0;          ///< first tick the group travels together
  Tick window_end = 0;            ///< last tick
};

/// Parameters controlling how tightly planted members travel.
struct PlantConfig {
  /// Maximum distance of a member from the (virtual) group leader while the
  /// group travels together. Choose <= e/2 so that all pairwise member
  /// distances stay within the query range, guaranteeing density connection
  /// for groups of size >= m.
  double cohesion_radius = 3.0;

  /// Per-tick positional noise of a member around its formation slot.
  double jitter = 0.3;
};

/// Builds the dense per-tick paths of one planted group over the trajectory
/// lifetimes [life_start, life_end] (shared by all members):
///  * inside [window_start, window_end] every member follows a common
///    leader path offset by a stable formation slot plus jitter;
///  * before the window each member approaches the gathering point on an
///    independent waypoint walk, and after the window it wanders away.
///
/// Returns one DensePath per member, index-aligned with `group.members`.
/// All paths span exactly life_end - life_start + 1 ticks.
std::vector<DensePath> PlantGroupPaths(Rng& rng, const MovementConfig& move,
                                       const PlantConfig& plant,
                                       const PlantedGroup& group,
                                       Tick life_start, Tick life_end);

/// Converts a planted group into the Convoy it should (at least) induce,
/// for use as ground truth in tests: the members over the window interval.
Convoy ToExpectedConvoy(const PlantedGroup& group);

}  // namespace convoy

#endif  // CONVOY_DATAGEN_CONVOY_PLANTER_H_
