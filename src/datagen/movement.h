#ifndef CONVOY_DATAGEN_MOVEMENT_H_
#define CONVOY_DATAGEN_MOVEMENT_H_

#include <vector>

#include "geom/point.h"
#include "util/random.h"

namespace convoy {

/// Parameters of the random-waypoint movement model the synthetic datasets
/// are built from: an object repeatedly picks a waypoint uniformly in the
/// world square and moves toward it at a jittered speed, with occasional
/// pauses (vehicles at intersections, cattle grazing).
struct MovementConfig {
  double world_size = 10000.0;  ///< side of the square world, in meters
  double speed_mean = 10.0;     ///< mean displacement per tick
  double speed_jitter = 0.3;    ///< relative sigma of per-tick speed
  double pause_prob = 0.02;     ///< chance per tick to idle in place
  double heading_noise = 0.05;  ///< lateral wobble as a fraction of speed
};

/// A dense per-tick position sequence (one Point per tick).
using DensePath = std::vector<Point>;

/// Generates `num_ticks` positions starting from `start`, following the
/// random-waypoint model. Deterministic in `rng`.
DensePath WaypointPathFrom(Rng& rng, const MovementConfig& config,
                           const Point& start, size_t num_ticks);

/// Generates a path of `num_ticks` positions *ending* at `end` — used to
/// give convoy members an organic approach to their gathering point (the
/// path is a waypoint walk generated backwards).
DensePath WaypointPathTo(Rng& rng, const MovementConfig& config,
                         const Point& end, size_t num_ticks);

/// Uniformly random point in the world square.
Point RandomPointIn(Rng& rng, const MovementConfig& config);

}  // namespace convoy

#endif  // CONVOY_DATAGEN_MOVEMENT_H_
