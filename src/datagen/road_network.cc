#include "datagen/road_network.h"

#include <algorithm>
#include <cmath>

namespace convoy {

namespace {

// Nearest multiple of spacing within [0, world].
double SnapCoord(const RoadConfig& config, double x) {
  const double snapped =
      std::round(x / config.spacing) * config.spacing;
  return std::clamp(snapped, 0.0, config.world_size);
}

}  // namespace

Point SnapToRoad(const RoadConfig& config, const Point& p) {
  const double sx = SnapCoord(config, p.x);
  const double sy = SnapCoord(config, p.y);
  // Snap the axis that is cheaper to move to; the other stays free.
  if (std::abs(sx - p.x) < std::abs(sy - p.y)) {
    return Point(sx, std::clamp(p.y, 0.0, config.world_size));
  }
  return Point(std::clamp(p.x, 0.0, config.world_size), sy);
}

Point RandomIntersection(Rng& rng, const RoadConfig& config) {
  const int64_t cells =
      std::max<int64_t>(1, static_cast<int64_t>(config.world_size /
                                                config.spacing));
  return Point(static_cast<double>(rng.UniformInt(0, cells)) * config.spacing,
               static_cast<double>(rng.UniformInt(0, cells)) *
                   config.spacing);
}

DensePath RoadPathFrom(Rng& rng, const RoadConfig& config, const Point& start,
                       size_t num_ticks) {
  DensePath path;
  path.reserve(num_ticks);
  if (num_ticks == 0) return path;

  Point pos = SnapToRoad(config, start);
  // Route = sequence of corner points to visit (L-shaped legs).
  std::vector<Point> route;
  const auto plan_route = [&]() {
    const Point dest = RandomIntersection(rng, config);
    // Travel along the current street first, then turn. If pos is on a
    // vertical street (x snapped), move vertically to dest.y, then
    // horizontally; otherwise the transpose.
    const bool on_vertical =
        std::abs(pos.x - SnapCoord(config, pos.x)) <
        std::abs(pos.y - SnapCoord(config, pos.y));
    route.clear();
    if (on_vertical) {
      route.push_back(Point(pos.x, SnapCoord(config, dest.y)));
      route.push_back(Point(dest.x, SnapCoord(config, dest.y)));
    } else {
      route.push_back(Point(SnapCoord(config, dest.x), pos.y));
      route.push_back(Point(SnapCoord(config, dest.x), dest.y));
    }
    std::reverse(route.begin(), route.end());  // use as a stack
  };
  plan_route();

  const auto noisy = [&](const Point& p) {
    return Point(p.x + rng.Gaussian(0.0, config.gps_noise),
                 p.y + rng.Gaussian(0.0, config.gps_noise));
  };

  path.push_back(noisy(pos));
  for (size_t i = 1; i < num_ticks; ++i) {
    if (rng.Chance(config.stop_prob)) {
      path.push_back(noisy(pos));
      continue;
    }
    double budget = std::max(
        0.0, rng.Gaussian(config.speed_mean,
                          config.speed_mean * config.speed_jitter));
    // Consume the movement budget along the route, possibly crossing
    // corners within one tick.
    while (budget > 0.0) {
      if (route.empty()) plan_route();
      const Point target = route.back();
      const Point to_target = target - pos;
      const double dist = std::abs(to_target.x) + std::abs(to_target.y);
      if (dist <= budget) {
        pos = target;
        budget -= dist;
        route.pop_back();
      } else {
        // Move along the single non-zero axis of the leg.
        if (std::abs(to_target.x) > 1e-9) {
          pos.x += std::copysign(std::min(budget, std::abs(to_target.x)),
                                 to_target.x);
        } else {
          pos.y += std::copysign(std::min(budget, std::abs(to_target.y)),
                                 to_target.y);
        }
        budget = 0.0;
      }
    }
    path.push_back(noisy(pos));
  }
  return path;
}

bool IsOnRoad(const RoadConfig& config, const Point& p, double tolerance) {
  const double dx = std::abs(p.x - SnapCoord(config, p.x));
  const double dy = std::abs(p.y - SnapCoord(config, p.y));
  return std::min(dx, dy) <= tolerance;
}

}  // namespace convoy
