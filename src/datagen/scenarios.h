#ifndef CONVOY_DATAGEN_SCENARIOS_H_
#define CONVOY_DATAGEN_SCENARIOS_H_

#include <string>
#include <vector>

#include "core/convoy_set.h"
#include "datagen/convoy_planter.h"
#include "datagen/movement.h"
#include "traj/database.h"

namespace convoy {

/// Full description of a synthetic dataset, mirroring the characteristics
/// the paper's Table 3 reports for its four (proprietary) real datasets.
struct ScenarioConfig {
  std::string name;

  // Population shape (Table 3 rows N / T / average trajectory length).
  size_t num_objects = 100;
  Tick time_domain = 1000;          ///< T, in ticks
  double lifetime_fraction = 1.0;   ///< mean object lifetime as share of T
  double lifetime_jitter = 0.0;     ///< relative sigma of the lifetime
  double sample_keep_prob = 1.0;    ///< chance each tick is sampled (<1 =>
                                    ///< irregular sampling, taxi-style)

  // Movement model.
  MovementConfig movement;

  // Ground-truth convoys.
  size_t num_groups = 4;
  size_t group_size_min = 3;
  size_t group_size_max = 5;
  Tick group_duration_min = 200;
  Tick group_duration_max = 400;
  PlantConfig plant;

  // Suggested query parameters (Table 3 rows m / k / e).
  ConvoyQuery query;

  // Suggested internal parameters (Table 3 rows delta / lambda); negative
  // values mean "derive them with the Section 7.4 guidelines".
  double delta = -1.0;
  Tick lambda = -1;
};

/// A generated dataset with ground truth and recommended parameters.
struct ScenarioData {
  std::string name;
  TrajectoryDatabase db;
  std::vector<PlantedGroup> planted;
  ConvoyQuery query;
  double delta = -1.0;
  Tick lambda = -1;
};

/// Generates a dataset from a config; deterministic in `seed`.
ScenarioData GenerateScenario(const ScenarioConfig& config, uint64_t seed);

/// Preset mirroring the Truck dataset (Athens concrete trucks): moderate N,
/// long time domain, short scattered trajectories. `time_scale` multiplies
/// the time domain (and everything derived from it); 1.0 is paper scale.
ScenarioConfig TruckLikeConfig(double time_scale = 0.25);

/// Preset mirroring the Cattle dataset (CSIRO virtual fencing): tiny N,
/// per-tick sampling over a very long time domain, strong herding in a
/// small paddock.
ScenarioConfig CattleLikeConfig(double time_scale = 0.125);

/// Preset mirroring the Car dataset (Copenhagen road pricing): trajectories
/// of very different lengths, commuters sharing routes.
ScenarioConfig CarLikeConfig(double time_scale = 0.25);

/// Preset mirroring the Taxi dataset (Beijing): large N, short time domain,
/// irregular sampling, near-uniform spread, very few convoys.
ScenarioConfig TaxiLikeConfig(double time_scale = 1.0);

/// All four presets in paper order (Truck, Cattle, Car, Taxi).
std::vector<ScenarioConfig> AllScenarioConfigs(double time_scale_truck = 0.25,
                                               double time_scale_cattle = 0.125,
                                               double time_scale_car = 0.25,
                                               double time_scale_taxi = 1.0);

}  // namespace convoy

#endif  // CONVOY_DATAGEN_SCENARIOS_H_
