#include "datagen/movement.h"

#include <algorithm>
#include <cmath>

namespace convoy {

Point RandomPointIn(Rng& rng, const MovementConfig& config) {
  return Point(rng.Uniform(0.0, config.world_size),
               rng.Uniform(0.0, config.world_size));
}

DensePath WaypointPathFrom(Rng& rng, const MovementConfig& config,
                           const Point& start, size_t num_ticks) {
  DensePath path;
  path.reserve(num_ticks);
  if (num_ticks == 0) return path;

  Point pos = start;
  Point waypoint = RandomPointIn(rng, config);
  path.push_back(pos);

  for (size_t i = 1; i < num_ticks; ++i) {
    if (rng.Chance(config.pause_prob)) {
      path.push_back(pos);
      continue;
    }
    Point to_target = waypoint - pos;
    double dist = to_target.Norm();
    const double step = std::max(
        0.0, rng.Gaussian(config.speed_mean,
                          config.speed_mean * config.speed_jitter));
    if (dist <= step || dist < 1e-9) {
      // Arrived: land on the waypoint and pick a new one.
      pos = waypoint;
      waypoint = RandomPointIn(rng, config);
    } else {
      const Point dir = to_target * (1.0 / dist);
      // Lateral wobble perpendicular to the heading.
      const Point lateral(-dir.y, dir.x);
      const double wobble =
          rng.Gaussian(0.0, config.speed_mean * config.heading_noise);
      pos = pos + dir * step + lateral * wobble;
      pos.x = std::clamp(pos.x, 0.0, config.world_size);
      pos.y = std::clamp(pos.y, 0.0, config.world_size);
    }
    path.push_back(pos);
  }
  return path;
}

DensePath WaypointPathTo(Rng& rng, const MovementConfig& config,
                         const Point& end, size_t num_ticks) {
  DensePath path = WaypointPathFrom(rng, config, end, num_ticks);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace convoy
