#include "datagen/stream_feed.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/random.h"

namespace convoy {

namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

StreamFeed GenerateStreamFeed(const StreamFeedConfig& config, uint64_t seed) {
  Rng rng(seed);
  // Transport effects (dropout, batch interleaving) draw from their own
  // stream: the number of draws they consume depends on how many rows
  // survive, and sharing one stream would let the dropout rate steer the
  // movement draws of every later tick.
  Rng transport_rng(seed ^ 0x9e3779b97f4a7c15ULL);
  const size_t ticks = config.ticks > 0 ? static_cast<size_t>(config.ticks) : 0;
  const size_t grouped =
      std::min(config.num_objects, config.num_groups * config.group_size);
  const size_t num_groups =
      config.group_size > 0 ? grouped / config.group_size : 0;

  // Anchor paths: one waypoint walk per group; every member's "home" is a
  // fixed formation offset around it, so the group is density-connected
  // with any e above ~2 * group_spread.
  std::vector<DensePath> anchors;
  anchors.reserve(num_groups);
  for (size_t g = 0; g < num_groups; ++g) {
    anchors.push_back(WaypointPathFrom(
        rng, config.movement, RandomPointIn(rng, config.movement), ticks));
  }

  struct ObjectPlan {
    bool grouped = false;
    size_t group = 0;
    Point offset;     ///< formation offset (grouped objects)
    DensePath solo;   ///< independent walk (wanderers, and members away)
  };
  std::vector<ObjectPlan> plans(config.num_objects);
  for (size_t i = 0; i < config.num_objects; ++i) {
    ObjectPlan& plan = plans[i];
    if (num_groups > 0 && i < num_groups * config.group_size) {
      plan.grouped = true;
      plan.group = i / config.group_size;
      const double angle = rng.Uniform(0.0, 2.0 * kPi);
      const double radius = rng.Uniform(0.0, config.group_spread);
      plan.offset = Point(radius * std::cos(angle), radius * std::sin(angle));
    }
    plan.solo = WaypointPathFrom(rng, config.movement,
                                 RandomPointIn(rng, config.movement), ticks);
  }

  StreamFeed feed;
  feed.query.m = std::max<size_t>(2, config.group_size);
  feed.query.k = std::max<Tick>(2, config.ticks / 4);
  feed.query.e = std::max(1.0, 3.0 * config.group_spread);

  std::vector<bool> away(config.num_objects, false);
  feed.ticks.reserve(ticks);
  for (size_t t = 0; t < ticks; ++t) {
    FeedTick out;
    out.tick = static_cast<Tick>(t);

    std::vector<FeedRow> rows;
    rows.reserve(config.num_objects);
    for (size_t i = 0; i < config.num_objects; ++i) {
      const ObjectPlan& plan = plans[i];
      if (plan.grouped) {
        // Churn first, then report from wherever the object now is.
        if (!away[i] && rng.Chance(config.leave_prob)) away[i] = true;
        if (away[i] && rng.Chance(config.rejoin_prob)) away[i] = false;
      }
      Point pos;
      if (plan.grouped && !away[i]) {
        const Point& anchor = anchors[plan.group][t];
        pos = Point(anchor.x + plan.offset.x +
                        rng.Gaussian(0.0, config.group_spread * 0.1),
                    anchor.y + plan.offset.y +
                        rng.Gaussian(0.0, config.group_spread * 0.1));
      } else {
        pos = plan.solo[t];
      }
      // Dropout drawn from the transport stream after the position, so
      // the movement state stays identical whether or not the report
      // makes it out.
      if (transport_rng.Chance(config.dropout)) continue;
      rows.push_back(FeedRow{static_cast<ObjectId>(i), pos});
    }

    // Interleave reporters deterministically, then rate-shape into
    // batches of at most batch_rows.
    const std::vector<size_t> order = transport_rng.Permutation(rows.size());
    const size_t cap = std::max<size_t>(1, config.batch_rows);
    std::vector<FeedRow> batch;
    batch.reserve(cap);
    for (const size_t idx : order) {
      batch.push_back(rows[idx]);
      if (batch.size() == cap) {
        out.batches.push_back(std::move(batch));
        batch = {};
        batch.reserve(cap);
      }
    }
    if (!batch.empty()) out.batches.push_back(std::move(batch));
    out.total_rows = rows.size();
    feed.ticks.push_back(std::move(out));
  }
  return feed;
}

}  // namespace convoy
