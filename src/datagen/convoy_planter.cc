#include "datagen/convoy_planter.h"

#include <cmath>
#include <numbers>

namespace convoy {

std::vector<DensePath> PlantGroupPaths(Rng& rng, const MovementConfig& move,
                                       const PlantConfig& plant,
                                       const PlantedGroup& group,
                                       Tick life_start, Tick life_end) {
  const size_t g = group.members.size();
  const size_t window_len =
      static_cast<size_t>(group.window_end - group.window_start + 1);
  const size_t pre_len =
      static_cast<size_t>(group.window_start - life_start);
  const size_t post_len = static_cast<size_t>(life_end - group.window_end);

  // The virtual leader's path through the convoy window.
  const Point gather = RandomPointIn(rng, move);
  const DensePath leader = WaypointPathFrom(rng, move, gather, window_len);

  // Stable formation slots on a ring inside the cohesion radius; jitter must
  // not push a member outside the radius.
  const double slot_radius =
      std::max(0.0, plant.cohesion_radius - 3.0 * plant.jitter);

  std::vector<DensePath> paths;
  paths.reserve(g);
  for (size_t i = 0; i < g; ++i) {
    const double angle =
        2.0 * std::numbers::pi * static_cast<double>(i) /
        static_cast<double>(g) + rng.Uniform(0.0, 0.3);
    const Point slot(slot_radius * std::cos(angle) * rng.Uniform(0.3, 1.0),
                     slot_radius * std::sin(angle) * rng.Uniform(0.3, 1.0));

    DensePath member;
    member.reserve(pre_len + window_len + post_len);

    // Convoy phase first, so the approach can target its first position.
    DensePath convoy_phase;
    convoy_phase.reserve(window_len);
    for (const Point& lead_pos : leader) {
      const Point noise(rng.Gaussian(0.0, plant.jitter),
                        rng.Gaussian(0.0, plant.jitter));
      convoy_phase.push_back(lead_pos + slot + noise);
    }

    if (pre_len > 0) {
      DensePath approach =
          WaypointPathTo(rng, move, convoy_phase.front(), pre_len + 1);
      approach.pop_back();  // the target tick belongs to the convoy phase
      member.insert(member.end(), approach.begin(), approach.end());
    }
    member.insert(member.end(), convoy_phase.begin(), convoy_phase.end());
    if (post_len > 0) {
      DensePath depart =
          WaypointPathFrom(rng, move, convoy_phase.back(), post_len + 1);
      member.insert(member.end(), depart.begin() + 1, depart.end());
    }
    paths.push_back(std::move(member));
  }
  return paths;
}

Convoy ToExpectedConvoy(const PlantedGroup& group) {
  return Convoy{group.members, group.window_start, group.window_end};
}

}  // namespace convoy
