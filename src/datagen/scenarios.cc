#include "datagen/scenarios.h"

#include <algorithm>
#include <cmath>

namespace convoy {

namespace {

// Converts a dense per-tick path into a Trajectory, keeping only the ticks
// marked in `keep` (first and last are forced) to model irregular GPS
// reporting.
Trajectory SamplePath(ObjectId id, const DensePath& path, Tick life_start,
                      const std::vector<bool>& keep) {
  Trajectory traj(id);
  for (size_t i = 0; i < path.size(); ++i) {
    const bool boundary = i == 0 || i + 1 == path.size();
    if (!boundary && !keep[i]) continue;
    traj.Append(TimedPoint(path[i], life_start + static_cast<Tick>(i)));
  }
  return traj;
}

// Random keep-mask for irregular sampling. Convoy group members *share* one
// mask: with independent masks, sparse sampling makes each member cut the
// leader's corners across different interpolation gaps, which can push
// interpolated pairwise distances past e and (correctly, but uselessly for
// ground truth) break the planted convoy. A shared mask models a fleet
// polled by one dispatcher and keeps the planted window a guaranteed convoy.
std::vector<bool> MakeKeepMask(Rng& rng, size_t ticks, double keep_prob) {
  std::vector<bool> keep(ticks, true);
  if (keep_prob >= 1.0) return keep;
  for (size_t i = 0; i < ticks; ++i) keep[i] = rng.Chance(keep_prob);
  return keep;
}

}  // namespace

ScenarioData GenerateScenario(const ScenarioConfig& config, uint64_t seed) {
  Rng rng(seed);
  ScenarioData data;
  data.name = config.name;
  data.query = config.query;
  data.delta = config.delta;
  data.lambda = config.lambda;

  const Tick domain = config.time_domain;

  // --- Choose group memberships (disjoint) ---------------------------------
  std::vector<size_t> order = rng.Permutation(config.num_objects);
  size_t cursor = 0;
  std::vector<PlantedGroup> groups;
  for (size_t gi = 0; gi < config.num_groups; ++gi) {
    const size_t size = static_cast<size_t>(rng.UniformInt(
        static_cast<int64_t>(config.group_size_min),
        static_cast<int64_t>(config.group_size_max)));
    if (cursor + size > config.num_objects) break;
    PlantedGroup group;
    for (size_t i = 0; i < size; ++i) {
      group.members.push_back(static_cast<ObjectId>(order[cursor++]));
    }
    std::sort(group.members.begin(), group.members.end());

    // Clamp the requested duration into the (possibly scaled-down) domain.
    const Tick dur_hi = std::clamp<Tick>(config.group_duration_max, 1, domain);
    const Tick dur_lo = std::clamp<Tick>(config.group_duration_min, 1, dur_hi);
    const Tick duration = rng.UniformInt(dur_lo, dur_hi);
    group.window_start = rng.UniformInt(0, domain - duration);
    group.window_end = group.window_start + duration - 1;
    groups.push_back(std::move(group));
  }

  // --- Per-object lifetimes -------------------------------------------------
  struct Lifetime {
    Tick start = 0;
    Tick end = 0;
  };
  std::vector<Lifetime> lives(config.num_objects);
  for (size_t i = 0; i < config.num_objects; ++i) {
    const double mean = config.lifetime_fraction * static_cast<double>(domain);
    double len = mean;
    if (config.lifetime_jitter > 0.0) {
      len = rng.Gaussian(mean, mean * config.lifetime_jitter);
    }
    const Tick lifetime = std::clamp<Tick>(
        static_cast<Tick>(std::llround(len)), 2, domain);
    lives[i].start = rng.UniformInt(0, domain - lifetime);
    lives[i].end = lives[i].start + lifetime - 1;
  }
  // Group members must be alive throughout their window, with some organic
  // approach/departure slack around it. The member's lifetime *length* is
  // approximately preserved (so the preset's trajectory-length shape
  // survives planting): the randomly drawn lifetime is re-positioned onto
  // the window, then padded if it was shorter than the window itself.
  for (const PlantedGroup& group : groups) {
    for (const ObjectId id : group.members) {
      Lifetime& life = lives[id];
      const Tick original_len = life.end - life.start + 1;
      const Tick window_len = group.window_end - group.window_start + 1;
      const Tick total_slack = std::max<Tick>(0, original_len - window_len);
      const Tick slack_before = rng.UniformInt(0, total_slack);
      const Tick slack_after = total_slack - slack_before;
      life.start = std::max<Tick>(0, group.window_start - slack_before);
      life.end = std::min<Tick>(domain - 1, group.window_end + slack_after);
    }
  }

  // --- Generate paths and sample them ---------------------------------------
  std::vector<Trajectory> trajectories(config.num_objects);
  std::vector<bool> is_member(config.num_objects, false);

  for (const PlantedGroup& group : groups) {
    // All members of one group share the same lifetime bounds: use the
    // widest member window so PlantGroupPaths gets one consistent span.
    Tick life_start = lives[group.members.front()].start;
    Tick life_end = lives[group.members.front()].end;
    for (const ObjectId id : group.members) {
      life_start = std::min(life_start, lives[id].start);
      life_end = std::max(life_end, lives[id].end);
    }
    const std::vector<DensePath> paths = PlantGroupPaths(
        rng, config.movement, config.plant, group, life_start, life_end);
    std::vector<bool> keep = MakeKeepMask(
        rng, static_cast<size_t>(life_end - life_start + 1),
        config.sample_keep_prob);
    // Pin samples at the window boundaries: without them, the tick at
    // window_start interpolates between an approach-phase sample and an
    // in-window sample, and the members' different approach directions can
    // push them farther than e apart right at the guaranteed boundary.
    keep[static_cast<size_t>(group.window_start - life_start)] = true;
    keep[static_cast<size_t>(group.window_end - life_start)] = true;
    for (size_t i = 0; i < group.members.size(); ++i) {
      const ObjectId id = group.members[i];
      trajectories[id] = SamplePath(id, paths[i], life_start, keep);
      is_member[id] = true;
    }
  }

  for (size_t i = 0; i < config.num_objects; ++i) {
    if (is_member[i]) continue;
    const Lifetime& life = lives[i];
    const size_t ticks = static_cast<size_t>(life.end - life.start + 1);
    const DensePath path = WaypointPathFrom(
        rng, config.movement, RandomPointIn(rng, config.movement), ticks);
    trajectories[i] =
        SamplePath(static_cast<ObjectId>(i), path, life.start,
                   MakeKeepMask(rng, ticks, config.sample_keep_prob));
  }

  for (Trajectory& traj : trajectories) data.db.Add(std::move(traj));
  data.planted = std::move(groups);
  return data;
}

ScenarioConfig TruckLikeConfig(double time_scale) {
  ScenarioConfig c;
  c.name = "TruckLike";
  c.num_objects = 276;
  c.time_domain = static_cast<Tick>(std::llround(10586.0 * time_scale));
  // Trajectories keep their absolute ~224-tick length regardless of the
  // time-domain scale (Table 3: average trajectory length 224).
  c.lifetime_fraction =
      std::min(1.0, 224.0 / static_cast<double>(c.time_domain));
  c.lifetime_jitter = 0.3;
  c.sample_keep_prob = 1.0;
  c.movement.world_size = 10000.0;
  c.movement.speed_mean = 10.0;
  c.movement.pause_prob = 0.05;
  c.num_groups = 16;
  c.group_size_min = 3;
  c.group_size_max = 5;
  c.group_duration_min = 190;
  c.group_duration_max = 224;
  c.plant.cohesion_radius = 3.0;
  c.plant.jitter = 0.3;
  c.query = ConvoyQuery{3, 180, 8.0};
  return c;
}

ScenarioConfig CattleLikeConfig(double time_scale) {
  ScenarioConfig c;
  c.name = "CattleLike";
  c.num_objects = 13;
  c.time_domain = static_cast<Tick>(std::llround(175636.0 * time_scale));
  c.lifetime_fraction = 1.0;
  c.lifetime_jitter = 0.0;
  c.sample_keep_prob = 1.0;  // per-second ear-tag sampling
  c.movement.world_size = 500.0;  // paddock
  c.movement.speed_mean = 0.4;
  c.movement.speed_jitter = 0.5;
  c.movement.pause_prob = 0.3;  // grazing
  c.movement.heading_noise = 0.4;
  c.num_groups = 4;
  c.group_size_min = 2;
  c.group_size_max = 4;
  c.group_duration_min = 600;
  c.group_duration_max = 2000;
  c.plant.cohesion_radius = 8.0;
  c.plant.jitter = 1.0;
  c.query = ConvoyQuery{2, 180, 25.0};
  return c;
}

ScenarioConfig CarLikeConfig(double time_scale) {
  ScenarioConfig c;
  c.name = "CarLike";
  c.num_objects = 183;
  c.time_domain = static_cast<Tick>(std::llround(8757.0 * time_scale));
  c.lifetime_fraction =
      std::min(1.0, 451.0 / static_cast<double>(c.time_domain));
  c.lifetime_jitter = 0.8;  // "very different lengths"
  c.sample_keep_prob = 1.0;
  c.movement.world_size = 20000.0;
  c.movement.speed_mean = 14.0;
  c.movement.pause_prob = 0.08;  // traffic lights
  c.num_groups = 5;
  c.group_size_min = 3;
  c.group_size_max = 4;
  c.group_duration_min = 190;
  c.group_duration_max = 440;
  c.plant.cohesion_radius = 25.0;
  c.plant.jitter = 3.0;
  c.query = ConvoyQuery{3, 180, 80.0};
  return c;
}

ScenarioConfig TaxiLikeConfig(double time_scale) {
  ScenarioConfig c;
  c.name = "TaxiLike";
  c.num_objects = 500;
  c.time_domain = static_cast<Tick>(std::llround(965.0 * time_scale));
  // Table 3 reports 82 samples per taxi inside a 965-tick domain: short
  // duty periods, sampled irregularly (roughly every other tick). Keeping
  // the segments short in *time* matters: hour-long sampling gaps would
  // produce spatially huge simplified segments that the time-oblivious DLL
  // bound cannot separate, which is not the regime the paper measured.
  c.lifetime_fraction = 0.19;
  c.lifetime_jitter = 0.5;
  c.sample_keep_prob = 0.45;
  // A large world keeps the spread near-uniform: the paper observes that
  // Beijing taxis rarely travel together at any reasonable range, so
  // snapshot clusters are rare and only ~4 convoys exist.
  c.movement.world_size = 30000.0;
  c.movement.speed_mean = 8.0;
  c.num_groups = 3;
  c.group_size_min = 3;
  c.group_size_max = 3;
  c.group_duration_min = 200;
  c.group_duration_max = 300;
  c.plant.cohesion_radius = 12.0;
  c.plant.jitter = 2.0;
  c.query = ConvoyQuery{3, 180, 40.0};
  return c;
}

std::vector<ScenarioConfig> AllScenarioConfigs(double time_scale_truck,
                                               double time_scale_cattle,
                                               double time_scale_car,
                                               double time_scale_taxi) {
  return {TruckLikeConfig(time_scale_truck), CattleLikeConfig(time_scale_cattle),
          CarLikeConfig(time_scale_car), TaxiLikeConfig(time_scale_taxi)};
}

}  // namespace convoy
