#include "util/random.h"

#include <cmath>
#include <numbers>

namespace convoy {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  // Rejection-free Lemire-style bounded draw; bias is negligible for the
  // ranges used here (<< 2^32), and the result is deterministic per seed.
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(engine_());  // full 64-bit range
  return lo + static_cast<int64_t>(engine_() % span);
}

double Rng::Gaussian(double mean, double stddev) {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return mean + stddev * spare_gaussian_;
  }
  // Box-Muller: two uniforms -> two independent standard normals.
  double u1 = NextUnit();
  while (u1 <= 1e-300) u1 = NextUnit();
  const double u2 = NextUnit();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  spare_gaussian_ = radius * std::sin(angle);
  have_spare_gaussian_ = true;
  return mean + stddev * radius * std::cos(angle);
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  // Fisher-Yates with our deterministic bounded draw.
  for (size_t i = n; i > 1; --i) {
    const size_t j =
        static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace convoy
