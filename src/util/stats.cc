#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace convoy {

void SummaryStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double SummaryStats::Min() const {
  return count_ == 0 ? std::numeric_limits<double>::infinity() : min_;
}

double SummaryStats::Max() const {
  return count_ == 0 ? -std::numeric_limits<double>::infinity() : max_;
}

double SummaryStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double SummaryStats::StdDev() const { return std::sqrt(Variance()); }

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace convoy
