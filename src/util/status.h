#ifndef CONVOY_UTIL_STATUS_H_
#define CONVOY_UTIL_STATUS_H_

#include <cstdlib>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace convoy {

/// Error category of a Status. The library reserves a small, stable set of
/// codes (modeled on absl::Status) so callers can branch on *kind* of
/// failure while the message carries the specifics.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     ///< the caller passed a value outside the contract
  kFailedPrecondition,  ///< the call is illegal in the object's current state
  kOutOfRange,          ///< an index/tick/radius outside the supported range
  kNotFound,            ///< a named resource (file, preset) does not exist
  kDataError,           ///< input data violates the format it claims to have
  kInternal,            ///< an invariant the library itself maintains broke
  kCancelled,           ///< the caller's CancelToken aborted the operation
  kDeadlineExceeded,    ///< the caller's wall-clock deadline expired
  kRetryAfter,          ///< overloaded: back off and retry the same request
};

/// Short stable name of a code ("OK", "INVALID_ARGUMENT", ...).
std::string_view StatusCodeName(StatusCode code);

/// A recoverable error: a code plus a human-readable message.
///
/// This is the library's contract-violation currency. API preconditions
/// that used to be `assert`s — and therefore vanished in the default
/// `RelWithDebInfo` build — are reported as `Status` values instead, so
/// feeding bad data through the public API in a release build yields a
/// descriptive error, never UB or silently wrong convoys.
///
/// Conventions (see README "Error handling"):
///  * functions that can fail but return nothing yield `Status`;
///  * functions that produce a value yield `StatusOr<T>`;
///  * `Status` is [[nodiscard]] — ignoring one is a compile warning;
///  * context is chained outermost-first with `WithContext`, producing
///    messages like "loading data.csv: line 7: non-finite x".
class [[nodiscard]] Status {
 public:
  /// Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status DataError(std::string message) {
    return Status(StatusCode::kDataError, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status RetryAfter(std::string message) {
    return Status(StatusCode::kRetryAfter, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Explicitly discards the status (defeats [[nodiscard]] where ignoring
  /// a failure is a deliberate choice, e.g. best-effort stream reports).
  void IgnoreError() const {}

  /// Prepends a context frame: `s.WithContext("loading x.csv")` turns
  /// message "line 7: bad tick" into "loading x.csv: line 7: bad tick".
  /// No-op on OK statuses, so it can be applied unconditionally.
  Status WithContext(std::string_view context) const&;
  Status WithContext(std::string_view context) &&;

  /// "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

namespace internal_status {
[[noreturn]] void DieOnBadAccess(const Status& status, const char* what);
}  // namespace internal_status

/// A value of type T or the Status explaining why there is none.
///
/// Accessing the value of a non-OK StatusOr aborts with the status printed
/// to stderr — deliberately, in every build type: the whole point of this
/// type is that error paths cannot be silently ignored. Check `ok()` (or
/// branch on `status()`) before dereferencing.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from a value (OK) or from a non-OK Status.
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    if (std::get<Status>(rep_).ok()) {
      internal_status::DieOnBadAccess(
          std::get<Status>(rep_),
          "StatusOr constructed from an OK Status without a value");
    }
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The status: OK when a value is present.
  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(rep_);
  }

  const T& value() const& {
    EnsureOk("StatusOr::value");
    return std::get<T>(rep_);
  }
  T& value() & {
    EnsureOk("StatusOr::value");
    return std::get<T>(rep_);
  }
  /// Rvalue access returns the value *by value* (moved out), not T&&: a
  /// reference into the dying temporary would dangle in the ubiquitous
  ///   for (auto& x : SomeStatusOrReturningCall().value())
  /// pattern — C++20 range-for does not extend the temporary's lifetime
  /// (that is C++23's P2718). The returned prvalue is lifetime-extended
  /// by the loop's range binding, so the pattern is safe.
  T value() && {
    EnsureOk("StatusOr::value");
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// The value, or `fallback` when this holds an error.
  T value_or(T fallback) const& {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

 private:
  void EnsureOk(const char* what) const {
    if (!ok()) internal_status::DieOnBadAccess(std::get<Status>(rep_), what);
  }

  std::variant<Status, T> rep_;
};

/// Propagates a non-OK status to the caller:
///   CONVOY_RETURN_IF_ERROR(stream.BeginTick(t));
#define CONVOY_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::convoy::Status convoy_status_tmp_ = (expr);     \
    if (!convoy_status_tmp_.ok()) return convoy_status_tmp_; \
  } while (false)

}  // namespace convoy

#endif  // CONVOY_UTIL_STATUS_H_
