#ifndef CONVOY_UTIL_STATS_H_
#define CONVOY_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace convoy {

/// Streaming summary statistics (count / mean / min / max / variance) used by
/// dataset reports and benchmark output. Welford's algorithm keeps the
/// variance numerically stable for the long per-second cattle traces.
class SummaryStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations added.
  size_t count() const { return count_; }

  /// Mean of the observations (0 if empty).
  double Mean() const { return count_ == 0 ? 0.0 : mean_; }

  /// Smallest observation (+inf if empty).
  double Min() const;

  /// Largest observation (-inf if empty).
  double Max() const;

  /// Population variance (0 with fewer than 2 observations).
  double Variance() const;

  /// Population standard deviation.
  double StdDev() const;

  /// Sum of all observations.
  double Sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the q-quantile (0 <= q <= 1) of `values` by linear interpolation
/// between order statistics. Copies and sorts; intended for reporting, not
/// hot paths. Returns 0 for an empty input.
double Quantile(std::vector<double> values, double q);

}  // namespace convoy

#endif  // CONVOY_UTIL_STATS_H_
