#ifndef CONVOY_UTIL_CANCEL_H_
#define CONVOY_UTIL_CANCEL_H_

#include <atomic>
#include <memory>
#include <stdexcept>

namespace convoy {

/// Thrown by CancelToken::ThrowIfCancelled() at a cooperative cancellation
/// point. Internal signalling currency only: the public query API
/// (`ConvoyEngine::Execute`) converts it into `Status` kCancelled before it
/// reaches a caller. The ThreadPool captures exceptions per chunk and
/// rethrows on the calling thread, so a cancellation raised inside a
/// ParallelMap loop unwinds cleanly at any thread count.
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("convoy query cancelled") {}
};

/// A cooperative cancellation flag shared between the thread running a query
/// and the thread that wants to stop it.
///
/// Copies of a token share one flag: hand a copy to `ConvoyEngine::Execute`
/// (via ExecHooks) and call `RequestCancel()` on your copy — typically from
/// another thread, or from a progress/sink callback — and the running query
/// aborts at its next cancellation point with StatusCode::kCancelled. No
/// partial state escapes: algorithm scratch unwinds with the stack, and the
/// engine's simplification cache only ever publishes fully built entries.
///
/// A default-constructed token is *inert*: it has no flag, is never
/// cancelled, and RequestCancel() on it is a no-op. That makes it the zero
/// cost default for every options struct. Create an armed token with
/// `CancelToken::Cancellable()`.
class CancelToken {
 public:
  /// Inert token: IsCancelled() is always false.
  CancelToken() = default;

  /// A live token; RequestCancel() on any copy cancels all copies.
  static CancelToken Cancellable() {
    CancelToken token;
    token.flag_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  /// Requests cancellation (no-op on an inert token). Thread-safe; calling
  /// it more than once is harmless.
  void RequestCancel() const {
    // Relaxed: the flag is a monotone one-way latch carrying no payload —
    // observers act on the flag alone, so no acquire/release pairing is
    // needed, only eventual visibility (which atomicity provides).
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }

  bool IsCancelled() const {
    // Relaxed: pure flag poll; a stale false only delays cancellation by
    // one check, it cannot order any other memory access.
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

  /// True for tokens made with Cancellable(), false for inert ones.
  bool CanBeCancelled() const { return flag_ != nullptr; }

  /// The cooperative cancellation point: throws CancelledError when the
  /// flag is set. Cheap enough to call per tick / per partition.
  void ThrowIfCancelled() const {
    if (IsCancelled()) throw CancelledError();
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace convoy

#endif  // CONVOY_UTIL_CANCEL_H_
