#include "util/status.h"

#include <cstdio>

namespace convoy {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kDataError:
      return "DATA_ERROR";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kRetryAfter:
      return "RETRY_AFTER";
  }
  return "UNKNOWN";
}

Status Status::WithContext(std::string_view context) const& {
  if (ok()) return *this;
  std::string message(context);
  message += ": ";
  message += message_;
  return Status(code_, std::move(message));
}

Status Status::WithContext(std::string_view context) && {
  if (ok()) return std::move(*this);
  message_.insert(0, ": ");
  message_.insert(0, context);
  return std::move(*this);
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal_status {

void DieOnBadAccess(const Status& status, const char* what) {
  std::fprintf(stderr, "fatal: %s on error status [%s]\n", what,
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal_status

}  // namespace convoy
