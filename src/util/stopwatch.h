#ifndef CONVOY_UTIL_STOPWATCH_H_
#define CONVOY_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace convoy {

/// High-resolution wall-clock stopwatch used by the discovery algorithms to
/// attribute elapsed time to pipeline phases (simplification, filter,
/// refinement) the way the paper's Figure 13 breaks costs down.
///
/// The stopwatch starts running on construction. `ElapsedSeconds()` may be
/// sampled repeatedly; `Restart()` resets the origin.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the time origin to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Microseconds elapsed since construction or the last Restart().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across multiple disjoint intervals, e.g. the total time a
/// discovery run spends inside the refinement step across all candidates.
class PhaseTimer {
 public:
  /// Starts (or restarts) the current interval.
  void Start() { watch_.Restart(); }

  /// Ends the current interval and adds it to the running total.
  void Stop() { total_ += watch_.ElapsedSeconds(); }

  /// Total accumulated seconds across all Start()/Stop() intervals.
  double TotalSeconds() const { return total_; }

  /// Clears the accumulated total.
  void Reset() { total_ = 0.0; }

 private:
  Stopwatch watch_;
  double total_ = 0.0;
};

/// RAII helper that adds the lifetime of the guard to a PhaseTimer.
class ScopedPhase {
 public:
  explicit ScopedPhase(PhaseTimer* timer) : timer_(timer) { timer_->Start(); }
  ~ScopedPhase() { timer_->Stop(); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer* timer_;
};

}  // namespace convoy

#endif  // CONVOY_UTIL_STOPWATCH_H_
