#include "util/stopwatch.h"

// Header-only; this translation unit exists so the target owns a .cc per
// module and the header stays cheap to include.
