#ifndef CONVOY_UTIL_RANDOM_H_
#define CONVOY_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace convoy {

/// Deterministic random source used by the synthetic workload generators and
/// the property-based tests.
///
/// All randomness in the library flows through this wrapper so that a single
/// seed reproduces an entire experiment. The engine is std::mt19937_64; the
/// convenience methods below cover the distributions the generators need.
class Rng {
 public:
  /// Creates a generator with the given seed. Equal seeds yield identical
  /// streams across platforms (mt19937_64 is specified exactly; the
  /// distribution helpers below avoid std:: distributions whose output is
  /// implementation-defined where determinism matters).
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextUnit();
  }

  /// Uniform double in [0, 1).
  double NextUnit() {
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (deterministic given the seed).
  double Gaussian(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial with success probability p.
  bool Chance(double p) { return NextUnit() < p; }

  /// Returns a shuffled copy of [0, n).
  std::vector<size_t> Permutation(size_t n);

  /// Exposes the raw engine for interop with std distributions in tests.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace convoy

#endif  // CONVOY_UTIL_RANDOM_H_
