#ifndef CONVOY_QUERY_PLANNER_H_
#define CONVOY_QUERY_PLANNER_H_

#include <cstddef>
#include <string>

#include "core/convoy_set.h"
#include "core/cuts_filter.h"
#include "core/mc2.h"
#include "query/algorithm.h"
#include "query/exec_context.h"
#include "traj/database.h"
#include "util/status.h"

namespace convoy {

class TraceSession;

/// Auto-selection threshold: databases with at most this many stored points
/// run exact CMC directly — at that size the CuTS filter's simplification +
/// partition machinery costs more than it saves (the paper's speedups need
/// inputs large enough for snapshot clustering to dominate). Larger inputs
/// get CuTS*, the variant the paper recommends (fastest filter, exact after
/// refinement). Exposed for the planner unit tests.
inline constexpr size_t kAutoExactMaxPoints = 4096;

/// Whether a plan consulted the engine's simplification cache, and how it
/// answered. kNotApplicable for algorithms that do not simplify (CMC, MC2)
/// and for planners running without a cache.
enum class PlanCacheStatus { kNotApplicable, kHit, kMiss };

std::string_view ToString(PlanCacheStatus status);

/// A fully resolved physical plan: which algorithm runs, with which
/// parameters. Produced by QueryPlanner / ConvoyEngine::Prepare, consumed
/// by ConvoyEngine::Execute, and inspectable via Explain() (the CLI's
/// --explain). A plan stays valid as long as the database it was planned
/// against is unchanged — ConvoyEngine's database is immutable, so plans
/// can be cached and re-executed freely.
struct QueryPlan {
  /// The logical query (m, k, e, num_threads) as given.
  ConvoyQuery query;

  /// What the caller asked for, and what the planner resolved it to.
  AlgorithmChoice requested = AlgorithmChoice::kAuto;
  AlgorithmId algorithm = AlgorithmId::kCutsStar;

  /// Resolved CuTS filter configuration (simplifier/distance set from the
  /// variant; delta and lambda concrete and positive). Meaningful only for
  /// the CuTS family.
  CutsFilterOptions filter;

  /// MC2 parameters (meaningful only when algorithm == kMc2).
  Mc2Options mc2;

  /// Resolved simplification tolerance / partition length, 0 when the
  /// algorithm uses none. *_derived tells EXPLAIN whether the value came
  /// from the Section 7.4 guidelines (ComputeDelta / ComputeLambda) or was
  /// given explicitly.
  double delta = 0.0;
  Tick lambda = 0;
  bool delta_derived = false;
  bool lambda_derived = false;

  /// Did parameter resolution hit the engine's simplification cache?
  PlanCacheStatus cache = PlanCacheStatus::kNotApplicable;

  /// Snapshot-store provenance: kMiss when planning built the
  /// tick-partitioned store for this database, kHit when a previously
  /// built store was reused (the build-once-query-many steady state),
  /// kNotApplicable when planning ran without an engine-bound store.
  /// Execute attaches the same store, so a re-Execute of a prepared plan
  /// performs no per-tick re-derivation at all.
  PlanCacheStatus store_cache = PlanCacheStatus::kNotApplicable;

  /// Store build cost paid by this plan in seconds (0 on reuse), and the
  /// store's shape for EXPLAIN (ticks in the domain, stored points across
  /// all ticks — virtual points included).
  double store_build_seconds = 0.0;
  size_t store_ticks = 0;
  size_t store_points = 0;

  /// Planning-time simplification cost in seconds (0 on a cache hit). The
  /// legacy single-call shims fold it into their DiscoveryStats; a v2
  /// Execute reports only work done during that execution, so re-running a
  /// prepared plan does not re-charge the one-time planning cost.
  double simplify_seconds = 0.0;

  /// The cheap statistics the auto-policy decided on (N, T, point count).
  DatabaseStats db_stats;

  /// Estimated work: how many snapshot/partition clusterings execution will
  /// perform (CMC: T; CuTS: ceil(T / lambda) filter partitions, refinement
  /// excluded — it depends on data the planner has not seen; MC2: T), and
  /// that count scaled by N as a comparable work unit.
  size_t estimated_clusterings = 0;
  double estimated_work = 0.0;

  /// Human-readable plan rendering (the CLI's --explain output): chosen
  /// algorithm and why, resolved parameters and their provenance, cache
  /// hit/miss, database statistics, estimated work, and the algorithm's
  /// capability row.
  std::string Explain() const;
};

/// Options for constructing a QueryPlanner outside an engine (the engine
/// binds its own cache and memoized statistics).
struct PlannerOptions {
  /// Simplification source for delta/lambda resolution. Empty: simplify
  /// directly (uncached) and report PlanCacheStatus::kNotApplicable.
  SimplificationProvider simplify;

  /// SnapshotStore source (the engine's generation-keyed cache). Empty:
  /// plans report store_cache = kNotApplicable and execution falls back
  /// to the legacy row-oriented path.
  SnapshotStoreProvider store;

  /// Precomputed database statistics; null: computed on construction.
  const DatabaseStats* db_stats = nullptr;

  /// Optional trace (obs/trace.h): Plan() records "prepare" /
  /// "prepare.simplify" spans and the simplification-cache + store-build
  /// counters into it. Null = planning is untraced (the default).
  TraceSession* trace = nullptr;
};

/// Resolves a (ConvoyQuery, AlgorithmChoice) pair into a QueryPlan:
/// validates nothing (see ConvoyEngine::Prepare for the validating entry
/// point), picks the physical algorithm — honouring an explicit choice,
/// otherwise applying the auto-policy over database statistics — and
/// resolves delta/lambda through the Section 7.4 guidelines for the CuTS
/// family, priming the simplification cache it was constructed with.
class QueryPlanner {
 public:
  explicit QueryPlanner(const TrajectoryDatabase& db,
                        PlannerOptions options = {});

  /// Builds the plan. Deterministic: same database, query, choice, and
  /// options always produce the same plan (modulo simplify_seconds/cache).
  QueryPlan Plan(const ConvoyQuery& query,
                 AlgorithmChoice choice = AlgorithmChoice::kAuto,
                 const CutsFilterOptions& base_options = {},
                 const Mc2Options& mc2 = {}) const;

  /// The auto-policy, exposed for tests: kCmc when total_points <=
  /// kAutoExactMaxPoints (or the database is empty), kCutsStar otherwise.
  static AlgorithmId ChooseAuto(const DatabaseStats& stats);

  const DatabaseStats& db_stats() const { return db_stats_; }

 private:
  const TrajectoryDatabase& db_;
  SimplificationProvider simplify_;
  SnapshotStoreProvider store_;
  DatabaseStats db_stats_;
  TraceSession* trace_ = nullptr;
};

}  // namespace convoy

#endif  // CONVOY_QUERY_PLANNER_H_
