#include "query/planner.h"

#include <cmath>
#include <sstream>

#include "core/cuts.h"
#include "core/params.h"
#include "obs/trace.h"
#include "traj/snapshot_store.h"
#include "util/stopwatch.h"

namespace convoy {

namespace {

bool IsCutsFamily(AlgorithmId id) {
  return id == AlgorithmId::kCuts || id == AlgorithmId::kCutsPlus ||
         id == AlgorithmId::kCutsStar;
}

CutsVariant VariantFor(AlgorithmId id) {
  switch (id) {
    case AlgorithmId::kCuts:
      return CutsVariant::kCuts;
    case AlgorithmId::kCutsPlus:
      return CutsVariant::kCutsPlus;
    default:
      return CutsVariant::kCutsStar;
  }
}

AlgorithmId IdFor(AlgorithmChoice choice, const DatabaseStats& stats) {
  switch (choice) {
    case AlgorithmChoice::kAuto:
      return QueryPlanner::ChooseAuto(stats);
    case AlgorithmChoice::kCmc:
      return AlgorithmId::kCmc;
    case AlgorithmChoice::kCuts:
      return AlgorithmId::kCuts;
    case AlgorithmChoice::kCutsPlus:
      return AlgorithmId::kCutsPlus;
    case AlgorithmChoice::kCutsStar:
      return AlgorithmId::kCutsStar;
    case AlgorithmChoice::kMc2:
      return AlgorithmId::kMc2;
  }
  return AlgorithmId::kCutsStar;
}

}  // namespace

std::string_view ToString(PlanCacheStatus status) {
  switch (status) {
    case PlanCacheStatus::kNotApplicable:
      return "n/a";
    case PlanCacheStatus::kHit:
      return "hit";
    case PlanCacheStatus::kMiss:
      return "miss";
  }
  return "?";
}

AlgorithmId QueryPlanner::ChooseAuto(const DatabaseStats& stats) {
  // Tiny inputs: the CuTS machinery (simplification, partitioning,
  // refinement bookkeeping) costs more than the snapshot clustering it
  // avoids — run the exact baseline directly. Everything else: CuTS*, the
  // paper's recommended variant (tightest filter, exact after refinement).
  return stats.total_points <= kAutoExactMaxPoints ? AlgorithmId::kCmc
                                                   : AlgorithmId::kCutsStar;
}

QueryPlanner::QueryPlanner(const TrajectoryDatabase& db,
                           PlannerOptions options)
    : db_(db),
      simplify_(std::move(options.simplify)),
      store_(std::move(options.store)),
      trace_(options.trace) {
  db_stats_ = options.db_stats != nullptr ? *options.db_stats : db.Stats();
}

QueryPlan QueryPlanner::Plan(const ConvoyQuery& query, AlgorithmChoice choice,
                             const CutsFilterOptions& base_options,
                             const Mc2Options& mc2) const {
  ScopedSpan prepare_span(trace_, "prepare");
  QueryPlan plan;
  plan.query = query;
  plan.requested = choice;
  plan.db_stats = db_stats_;
  plan.mc2 = mc2;
  plan.algorithm = IdFor(choice, db_stats_);

  // Resolve the snapshot store first. Only snapshot-consuming algorithms
  // (CMC, MC2 — per their capability row) trigger the materialization;
  // building it at Prepare is what makes re-Execute of such a plan free
  // of per-tick re-derivation. CuTS-family plans cluster simplified
  // polylines, not snapshots, so they merely peek: an already-built store
  // lends them its precomputed time domain, but a CuTS-only workload
  // never pays the columnar build.
  if (store_) {
    const bool consumes_snapshots =
        GetAlgorithm(plan.algorithm).Capabilities().uses_snapshot_store;
    Stopwatch store_watch;
    bool reused = false;
    if (const std::shared_ptr<const SnapshotStore> store =
            store_(consumes_snapshots, &reused)) {
      plan.store_cache =
          reused ? PlanCacheStatus::kHit : PlanCacheStatus::kMiss;
      if (!reused) {
        plan.store_build_seconds = store_watch.ElapsedSeconds();
        TraceCount(trace_, TraceCounter::kStoreTicksBuilt, store->NumTicks());
        TraceCount(trace_, TraceCounter::kStorePointsBuilt,
                   store->TotalPoints());
      }
      plan.store_ticks = store->NumTicks();
      plan.store_points = store->TotalPoints();
    }
  }

  const double n = static_cast<double>(db_stats_.num_objects);
  const Tick domain = db_stats_.time_domain_length;

  if (!IsCutsFamily(plan.algorithm)) {
    // CMC and MC2 cluster one snapshot per tick; no tunables to resolve.
    plan.estimated_clusterings = static_cast<size_t>(domain);
    // A bound store has already materialized every per-tick alive count,
    // so the work unit is exact — the sum of snapshot sizes the hot path
    // will actually cluster and label-intersect; without one, N * T is
    // the upper bound (every object alive at every tick).
    plan.estimated_work = plan.store_points > 0
                              ? static_cast<double>(plan.store_points)
                              : static_cast<double>(domain) * n;
    return plan;
  }

  // Resolve the variant's filter configuration, then the two Section 7.4
  // tunables. Resolution order matches the legacy Discover path exactly:
  // delta first (ComputeDelta, unless given), then the simplification (via
  // the cache when one is bound), then lambda over the simplified
  // trajectories (ComputeLambda, unless given) — so a plan's execution is
  // bit-identical to the legacy single-call path.
  plan.filter = MakeFilterOptions(VariantFor(plan.algorithm), base_options);
  plan.delta_derived = !(plan.filter.delta > 0.0);
  plan.delta = plan.delta_derived ? ComputeDelta(db_, query.e)
                                  : plan.filter.delta;
  plan.filter.delta = plan.delta;

  Stopwatch simplify_watch;
  std::shared_ptr<const std::vector<SimplifiedTrajectory>> simplified;
  bool cache_hit = false;
  {
    ScopedSpan simplify_span(trace_, "prepare.simplify");
    if (simplify_) {
      // Shared, immutable: a cache hit is a pointer copy, and lambda
      // resolution below reads through it without duplicating the set.
      simplified = simplify_(plan.filter.simplifier, plan.delta, &cache_hit);
      plan.cache = cache_hit ? PlanCacheStatus::kHit : PlanCacheStatus::kMiss;
      TraceCount(trace_,
                 cache_hit ? TraceCounter::kSimplifyCacheHits
                           : TraceCounter::kSimplifyCacheMisses,
                 1);
    } else {
      simplified = std::make_shared<const std::vector<SimplifiedTrajectory>>(
          SimplifyDatabase(db_, plan.delta, plan.filter.simplifier,
                           ResolveWorkerThreads(plan.filter.num_threads,
                                                query)));
    }
  }
  if (!cache_hit) plan.simplify_seconds = simplify_watch.ElapsedSeconds();

  plan.lambda_derived = plan.filter.lambda <= 0;
  plan.lambda = plan.lambda_derived
                    ? ComputeLambda(db_, *simplified, query.k)
                    : plan.filter.lambda;
  plan.filter.lambda = plan.lambda;

  const Tick lambda = std::max<Tick>(plan.lambda, 1);
  const size_t partitions =
      domain > 0 ? static_cast<size_t>((domain + lambda - 1) / lambda) : 0;
  plan.estimated_clusterings = partitions;
  plan.estimated_work = static_cast<double>(partitions) * n;
  return plan;
}

std::string QueryPlan::Explain() const {
  const ConvoyAlgorithm& algo = GetAlgorithm(algorithm);
  const AlgorithmCapabilities caps = algo.Capabilities();
  std::ostringstream out;

  out << "plan\n";
  out << "  algorithm:   " << algo.Name();
  if (requested == AlgorithmChoice::kAuto) {
    out << " (auto: " << db_stats.total_points
        << (db_stats.total_points <= kAutoExactMaxPoints ? " points <= "
                                                         : " points > ")
        << kAutoExactMaxPoints << ")";
  } else {
    out << " (explicit)";
  }
  out << "\n";
  out << "  query:       m=" << query.m << " k=" << query.k << " e=" << query.e
      << " threads=" << query.num_threads << "\n";
  out << "  database:    N=" << db_stats.num_objects << " T="
      << db_stats.time_domain_length << " points=" << db_stats.total_points
      << "\n";
  // Store provenance: "built" = this plan paid the one-time columnar
  // build, "reused" = served from the engine's generation-keyed cache.
  out << "  snapshot store: ";
  if (store_cache == PlanCacheStatus::kNotApplicable) {
    out << "n/a (row-oriented path)\n";
  } else {
    out << (store_cache == PlanCacheStatus::kHit ? "reused" : "built")
        << " (" << store_ticks << " ticks, " << store_points
        << " columnar points)\n";
  }
  if (caps.uses_simplification) {
    out << "  delta:       " << delta
        << (delta_derived ? " (derived, Sec. 7.4 guideline)" : " (given)")
        << "\n";
    out << "  lambda:      " << lambda
        << (lambda_derived ? " (derived, Sec. 7.4 guideline)" : " (given)")
        << "\n";
    out << "  simplification cache: " << ToString(cache) << "\n";
    out << "  estimated work: " << estimated_clusterings
        << " partition clustering(s), ~" << estimated_work
        << " object-clustering units (refinement excluded)\n";
  } else {
    out << "  delta:       n/a\n  lambda:      n/a\n";
    out << "  estimated work: " << estimated_clusterings
        << " snapshot clustering(s), ~" << estimated_work
        << " object-clustering units"
        << (store_points > 0 ? " (exact columnar alive counts)"
                             : " (N*T upper bound)")
        << "\n";
  }
  out << "  capabilities: " << (caps.exact ? "exact" : "approximate");
  if (caps.uses_simplification) out << ", simplification";
  if (caps.supports_cancel) out << ", cancel";
  if (caps.supports_progress) out << ", progress";
  if (caps.supports_incremental) out << ", incremental";
  if (caps.supports_threads) out << ", threads";
  out << "\n";
  return out.str();
}

}  // namespace convoy
