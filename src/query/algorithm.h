#ifndef CONVOY_QUERY_ALGORITHM_H_
#define CONVOY_QUERY_ALGORITHM_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/convoy_set.h"
#include "query/exec_context.h"

namespace convoy {

/// The physical convoy-discovery algorithms the planner can choose from —
/// the paper's family as registered ConvoyAlgorithm implementations.
enum class AlgorithmId {
  kCmc,       ///< exact CMC baseline (Algorithm 1)
  kCuts,      ///< CuTS: DP simplification + DLL bound (Section 5)
  kCutsPlus,  ///< CuTS+: DP+ simplification + DLL bound (Section 6.1)
  kCutsStar,  ///< CuTS*: DP* simplification + D* bound (Section 6.2)
  kMc2,       ///< approximate moving-cluster baseline (Appendix B.1)
};

/// What a caller asks for: a specific physical algorithm, or kAuto to let
/// the planner pick one from database statistics. Auto only ever selects an
/// *exact* algorithm (CMC or CuTS*); the approximate MC2 must be requested
/// explicitly.
enum class AlgorithmChoice {
  kAuto,
  kCmc,
  kCuts,
  kCutsPlus,
  kCutsStar,
  kMc2,
};

/// Static properties of an algorithm, surfaced through EXPLAIN and the
/// README capability matrix. "Incremental" means Run honours an ExecHooks
/// sink by emitting verified convoys as execution units complete.
struct AlgorithmCapabilities {
  bool exact = true;                 ///< result set == CMC's on every input
  bool uses_simplification = false;  ///< consumes the (simplifier, delta) cache
  /// Reads per-tick snapshots, so the engine materializes the columnar
  /// SnapshotStore for it (CMC, MC2). Algorithms without it (the CuTS
  /// family clusters simplified polylines, not snapshots) never trigger a
  /// store build — they only reuse an already-built store's time domain.
  bool uses_snapshot_store = false;
  bool supports_cancel = false;      ///< honours ExecHooks::cancel
  bool supports_progress = false;    ///< honours ExecHooks::progress
  bool supports_incremental = false; ///< honours ExecHooks::sink
  bool supports_threads = false;     ///< num_threads > 1 changes wall clock
};

/// A physical convoy-discovery algorithm, uniformly invokable by the
/// executor. Implementations are stateless singletons owned by the
/// registry; Run must be safe to call concurrently from multiple threads
/// (all mutable state lives in the ExecContext / local scope).
///
/// Run returns the materialized convoy set for the context's plan. It may
/// throw CancelledError (via the context's CancelToken) — the executor
/// converts that to StatusCode::kCancelled.
class ConvoyAlgorithm {
 public:
  virtual ~ConvoyAlgorithm() = default;

  /// Stable display name: "CMC", "CuTS", "CuTS+", "CuTS*", "MC2".
  virtual std::string_view Name() const = 0;

  virtual AlgorithmId Id() const = 0;

  virtual AlgorithmCapabilities Capabilities() const = 0;

  virtual std::vector<Convoy> Run(const ExecContext& ctx) const = 0;
};

/// The registered implementation for `id`. Never null — every AlgorithmId
/// has exactly one registered algorithm.
const ConvoyAlgorithm& GetAlgorithm(AlgorithmId id);

/// All registered algorithms, in AlgorithmId order (for the capability
/// matrix and CLI listings).
const std::vector<const ConvoyAlgorithm*>& AllAlgorithms();

/// "CMC", "CuTS", "CuTS+", "CuTS*", "MC2".
std::string_view ToString(AlgorithmId id);

/// "auto" or the algorithm name.
std::string_view ToString(AlgorithmChoice choice);

/// Parses the CLI spelling: "auto", "cmc", "cuts", "cuts+", "cuts*", "mc2"
/// (case-sensitive, matching the historical --algo values). nullopt for
/// anything else.
std::optional<AlgorithmChoice> ParseAlgorithmChoice(std::string_view name);

}  // namespace convoy

#endif  // CONVOY_QUERY_ALGORITHM_H_
