#ifndef CONVOY_QUERY_EXEC_CONTEXT_H_
#define CONVOY_QUERY_EXEC_CONTEXT_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/cmc.h"
#include "core/discovery_stats.h"
#include "core/exec_hooks.h"
#include "simplify/simplifier.h"
#include "traj/database.h"

namespace convoy {

struct QueryPlan;
class SnapshotStore;

/// Supplies the database simplified with (kind, delta) as an immutable
/// shared snapshot — consumers that need ownership (the filter) copy it;
/// read-only consumers (lambda resolution in the planner) just dereference,
/// so a cache hit costs a map lookup, not a deep copy. The engine binds its
/// mutex-guarded simplification cache here so repeated plans amortize the
/// simplification cost; `cache_hit` (optional out) reports whether the call
/// was served from cache. A planner constructed without a provider
/// simplifies directly (uncached). Never returns null.
using SimplificationProvider =
    std::function<std::shared_ptr<const std::vector<SimplifiedTrajectory>>(
        SimplifierKind kind, double delta, bool* cache_hit)>;

/// Supplies the tick-partitioned SnapshotStore for the database — the
/// engine binds its generation-keyed store cache here. `build_if_missing`
/// carries the algorithm's AlgorithmCapabilities::uses_snapshot_store:
/// snapshot-consuming plans (CMC, MC2) build on a miss and reuse ever
/// after; other plans (the CuTS family) only *peek*, reusing a store some
/// earlier query built without ever triggering the materialization
/// themselves. May return null (nothing built / over budget / no engine);
/// algorithms then fall back to the legacy row-oriented per-tick
/// derivation — results are bit-identical either way
/// (tests/store_parity_test.cc).
using SnapshotStoreProvider = std::function<std::shared_ptr<
    const SnapshotStore>(bool build_if_missing, bool* reused)>;

/// Everything a ConvoyAlgorithm::Run needs: the database, the resolved
/// physical plan, the worker-thread count, execution hooks (cooperative
/// CancelToken, optional progress callback, optional incremental convoy
/// sink), per-run DiscoveryStats, and the engine's simplification cache.
///
/// Built by ConvoyEngine::Execute; algorithms treat it as read-only apart
/// from `stats`.
struct ExecContext {
  const TrajectoryDatabase* db = nullptr;
  const QueryPlan* plan = nullptr;

  /// Resolved worker-thread count (never 0; 1 = serial).
  size_t num_threads = 1;

  /// Cancellation, progress, incremental delivery (core/exec_hooks.h).
  ExecHooks hooks;

  /// Per-run instrumentation; may be null.
  DiscoveryStats* stats = nullptr;

  /// The execution's TraceSession (obs/trace.h), mirroring hooks.trace so
  /// algorithms can record spans and counters without reaching through the
  /// hooks struct. Null — the default — disables tracing at one branch per
  /// phase.
  TraceSession* trace = nullptr;

  /// Simplification source for the CuTS family; unused by CMC / MC2.
  SimplificationProvider simplified;

  /// The engine's cached SnapshotStore for `db` (null: algorithms use the
  /// legacy row-oriented path). CMC / MC2 read per-tick columnar views and
  /// cached grid indexes from it; the CuTS filter takes its precomputed
  /// time domain.
  std::shared_ptr<const SnapshotStore> store;

  /// Per-execution snapshot/DBSCAN arena (labels, neighbor buffer,
  /// frontier, grid-build buffers). Algorithms whose serial loops run on
  /// the executor's thread reuse it across their ticks instead of
  /// allocating per call; mutable because a context is handed to Run()
  /// const while the arena is by nature written to. Contents never affect
  /// results (fully reset per use).
  mutable SnapshotScratch scratch;
};

}  // namespace convoy

#endif  // CONVOY_QUERY_EXEC_CONTEXT_H_
