#ifndef CONVOY_QUERY_EXEC_CONTEXT_H_
#define CONVOY_QUERY_EXEC_CONTEXT_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "core/discovery_stats.h"
#include "core/exec_hooks.h"
#include "simplify/simplifier.h"
#include "traj/database.h"

namespace convoy {

struct QueryPlan;

/// Supplies the database simplified with (kind, delta). The engine binds its
/// mutex-guarded simplification cache here so repeated plans amortize the
/// simplification cost; `cache_hit` (optional out) reports whether the call
/// was served from cache. A planner constructed without a provider
/// simplifies directly (uncached).
using SimplificationProvider = std::function<std::vector<SimplifiedTrajectory>(
    SimplifierKind kind, double delta, bool* cache_hit)>;

/// Everything a ConvoyAlgorithm::Run needs: the database, the resolved
/// physical plan, the worker-thread count, execution hooks (cooperative
/// CancelToken, optional progress callback, optional incremental convoy
/// sink), per-run DiscoveryStats, and the engine's simplification cache.
///
/// Built by ConvoyEngine::Execute; algorithms treat it as read-only apart
/// from `stats`.
struct ExecContext {
  const TrajectoryDatabase* db = nullptr;
  const QueryPlan* plan = nullptr;

  /// Resolved worker-thread count (never 0; 1 = serial).
  size_t num_threads = 1;

  /// Cancellation, progress, incremental delivery (core/exec_hooks.h).
  ExecHooks hooks;

  /// Per-run instrumentation; may be null.
  DiscoveryStats* stats = nullptr;

  /// Simplification source for the CuTS family; unused by CMC / MC2.
  SimplificationProvider simplified;
};

}  // namespace convoy

#endif  // CONVOY_QUERY_EXEC_CONTEXT_H_
