#ifndef CONVOY_QUERY_RESULT_SET_H_
#define CONVOY_QUERY_RESULT_SET_H_

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/convoy_set.h"
#include "core/discovery_stats.h"
#include "obs/metrics.h"
#include "query/planner.h"

namespace convoy {

/// Free result-inspection helpers shared by ConvoyResultSet and the legacy
/// ConvoyEngine statics (which forward here). They operate on any convoy
/// vector, so results from the free algorithm functions work too.

/// The convoy with the longest lifetime (ties: more objects, then the
/// canonical order of the input). nullopt for an empty result.
std::optional<Convoy> LongestConvoyOf(const std::vector<Convoy>& result);

/// Convoys that involve the given object.
std::vector<Convoy> ConvoysInvolving(const std::vector<Convoy>& result,
                                     ObjectId id);

/// Convoys whose interval intersects [from, to].
std::vector<Convoy> ConvoysDuring(const std::vector<Convoy>& result,
                                  Tick from, Tick to);

/// The k highest-ranked convoys, ordered by lifetime descending, ties by
/// object count descending, then canonical (start, end, objects) order —
/// the ranking LongestConvoyOf picks its winner by. k >= size returns the
/// whole result re-ranked.
std::vector<Convoy> TopKConvoys(const std::vector<Convoy>& result, size_t k);

/// The materialized answer of an executed convoy query: the convoys, the
/// run's DiscoveryStats, and the QueryPlan that produced them — one value
/// to pass around instead of three out-parameters. Iterable
/// (`for (const Convoy& c : result_set)`) and queryable via the helper
/// methods, which forward to the free helpers above.
///
/// For incremental consumption — convoys delivered while the query still
/// runs — pass an ExecHooks::sink to ConvoyEngine::Execute; the result set
/// returned at the end is the same either way.
class ConvoyResultSet {
 public:
  ConvoyResultSet() = default;
  ConvoyResultSet(std::vector<Convoy> convoys, DiscoveryStats stats,
                  QueryPlan plan)
      : convoys_(std::move(convoys)),
        stats_(std::move(stats)),
        plan_(std::move(plan)) {}

  const std::vector<Convoy>& convoys() const { return convoys_; }
  const DiscoveryStats& stats() const { return stats_; }
  const QueryPlan& plan() const { return plan_; }

  size_t Count() const { return convoys_.size(); }
  bool Empty() const { return convoys_.empty(); }

  std::vector<Convoy>::const_iterator begin() const {
    return convoys_.begin();
  }
  std::vector<Convoy>::const_iterator end() const { return convoys_.end(); }
  const Convoy& operator[](size_t i) const { return convoys_[i]; }

  std::optional<Convoy> Longest() const { return LongestConvoyOf(convoys_); }
  std::vector<Convoy> Involving(ObjectId id) const {
    return ConvoysInvolving(convoys_, id);
  }
  std::vector<Convoy> During(Tick from, Tick to) const {
    return ConvoysDuring(convoys_, from, to);
  }
  std::vector<Convoy> TopK(size_t k) const {
    return TopKConvoys(convoys_, k);
  }

  /// Moves the convoys out (for callers that only want the vector, e.g. the
  /// legacy Discover shims). The result set is left empty.
  std::vector<Convoy> TakeConvoys() && { return std::move(convoys_); }

  /// Observability snapshot of the execution that produced this result:
  /// counters, span aggregates, and series summaries, captured from the
  /// TraceSession attached via ExecHooks::trace. `metrics().enabled` is
  /// false when the query ran untraced (the default — nothing was
  /// recorded, nothing was paid).
  const QueryMetrics& metrics() const { return metrics_; }
  void set_metrics(QueryMetrics metrics) { metrics_ = std::move(metrics); }

  /// EXPLAIN ANALYZE: the plan rendering (QueryPlan::Explain) followed by
  /// the measured execution metrics — what actually happened next to what
  /// the planner predicted. Without an attached trace the metrics block
  /// says how to enable one.
  std::string ExplainAnalyze() const;

 private:
  std::vector<Convoy> convoys_;
  DiscoveryStats stats_;
  QueryPlan plan_;
  QueryMetrics metrics_;
};

}  // namespace convoy

#endif  // CONVOY_QUERY_RESULT_SET_H_
