#include "query/result_set.h"

#include <algorithm>

namespace convoy {

std::optional<Convoy> LongestConvoyOf(const std::vector<Convoy>& result) {
  if (result.empty()) return std::nullopt;
  const auto best = std::max_element(
      result.begin(), result.end(), [](const Convoy& a, const Convoy& b) {
        if (a.Lifetime() != b.Lifetime()) return a.Lifetime() < b.Lifetime();
        return a.objects.size() < b.objects.size();
      });
  return *best;
}

std::vector<Convoy> ConvoysInvolving(const std::vector<Convoy>& result,
                                     ObjectId id) {
  std::vector<Convoy> out;
  for (const Convoy& c : result) {
    if (std::binary_search(c.objects.begin(), c.objects.end(), id)) {
      out.push_back(c);
    }
  }
  return out;
}

std::vector<Convoy> ConvoysDuring(const std::vector<Convoy>& result,
                                  Tick from, Tick to) {
  std::vector<Convoy> out;
  for (const Convoy& c : result) {
    if (c.start_tick <= to && from <= c.end_tick) out.push_back(c);
  }
  return out;
}

std::vector<Convoy> TopKConvoys(const std::vector<Convoy>& result, size_t k) {
  std::vector<Convoy> ranked = result;
  // Same ranking LongestConvoyOf uses to pick its winner, extended with the
  // canonical order as a total tie-break so TopK is deterministic for any
  // input order.
  std::sort(ranked.begin(), ranked.end(), [](const Convoy& a, const Convoy& b) {
    if (a.Lifetime() != b.Lifetime()) return a.Lifetime() > b.Lifetime();
    if (a.objects.size() != b.objects.size()) {
      return a.objects.size() > b.objects.size();
    }
    if (a.start_tick != b.start_tick) return a.start_tick < b.start_tick;
    if (a.end_tick != b.end_tick) return a.end_tick < b.end_tick;
    return a.objects < b.objects;
  });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

std::string ConvoyResultSet::ExplainAnalyze() const {
  return plan_.Explain() + metrics_.ToText();
}

}  // namespace convoy
