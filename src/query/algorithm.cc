#include "query/algorithm.h"

#include <memory>
#include <utility>

#include "core/cmc.h"
#include "core/cuts.h"
#include "core/cuts_filter.h"
#include "core/cuts_refine.h"
#include "core/mc2.h"
#include "parallel/parallel_runner.h"
#include "query/planner.h"

namespace convoy {

namespace {

/// Exact CMC (paper Algorithm 1) behind the uniform interface. Delegates to
/// ParallelCmc, which degenerates to the serial loop at one thread and is
/// result-identical at any other count.
class CmcAlgorithm final : public ConvoyAlgorithm {
 public:
  std::string_view Name() const override { return "CMC"; }
  AlgorithmId Id() const override { return AlgorithmId::kCmc; }
  AlgorithmCapabilities Capabilities() const override {
    AlgorithmCapabilities caps;
    caps.exact = true;
    caps.uses_simplification = false;
    caps.uses_snapshot_store = true;
    caps.supports_cancel = true;
    caps.supports_progress = true;
    caps.supports_incremental = true;
    caps.supports_threads = true;
    return caps;
  }
  std::vector<Convoy> Run(const ExecContext& ctx) const override {
    // The store-backed path reuses the engine's columnar snapshots and
    // cached per-tick grid indexes; without a store (planner-only
    // contexts) the row-oriented derivation runs. Bit-identical results
    // either way (tests/store_parity_test.cc).
    if (ctx.store != nullptr) {
      return ParallelCmc(*ctx.store, ctx.plan->query, CmcOptions{}, ctx.stats,
                         ctx.num_threads, &ctx.hooks, &ctx.scratch);
    }
    return ParallelCmc(*ctx.db, ctx.plan->query, CmcOptions{}, ctx.stats,
                       ctx.num_threads, &ctx.hooks, &ctx.scratch);
  }
};

/// The CuTS filter-and-refine family (paper Algorithms 2-3); one instance
/// per variant. Pulls the simplified trajectories from the context's
/// provider (the engine's cache), then runs the same
/// CutsFilterPresimplified + CutsRefine pipeline the legacy
/// ConvoyEngine::Discover ran — results are bit-identical to it and to the
/// free Cuts() function.
class CutsAlgorithm final : public ConvoyAlgorithm {
 public:
  CutsAlgorithm(std::string_view name, AlgorithmId id)
      : name_(name), id_(id) {}

  std::string_view Name() const override { return name_; }
  AlgorithmId Id() const override { return id_; }
  AlgorithmCapabilities Capabilities() const override {
    AlgorithmCapabilities caps;
    caps.exact = true;  // refinement removes every false hit
    caps.uses_simplification = true;
    caps.uses_snapshot_store = false;  // polylines, not snapshots
    caps.supports_cancel = true;
    caps.supports_progress = true;
    caps.supports_incremental = true;
    caps.supports_threads = true;
    return caps;
  }
  std::vector<Convoy> Run(const ExecContext& ctx) const override {
    const QueryPlan& plan = *ctx.plan;
    const CutsFilterOptions& options = plan.filter;
    // The filter takes ownership of its copy (it returns the simplified
    // set in its result); the cache entry itself stays immutable.
    std::vector<SimplifiedTrajectory> simplified =
        *ctx.simplified(options.simplifier, plan.delta, nullptr);
    CheckCancelled(&ctx.hooks);
    const CutsFilterResult filtered = CutsFilterPresimplified(
        *ctx.db, plan.query, options, std::move(simplified), plan.delta,
        ctx.stats, &ctx.hooks, ctx.store.get());
    return CutsRefine(*ctx.db, plan.query, filtered.candidates,
                      options.refine_mode, ctx.stats,
                      ResolveWorkerThreads(options.refine_threads, plan.query),
                      &ctx.hooks);
  }

 private:
  std::string_view name_;
  AlgorithmId id_;
};

/// The approximate moving-cluster baseline. Kept for workloads that accept
/// Appendix B.1's error rates in exchange for skipping refinement; the
/// planner never auto-selects it.
class Mc2Algorithm final : public ConvoyAlgorithm {
 public:
  std::string_view Name() const override { return "MC2"; }
  AlgorithmId Id() const override { return AlgorithmId::kMc2; }
  AlgorithmCapabilities Capabilities() const override {
    AlgorithmCapabilities caps;
    caps.exact = false;  // false positives and negatives by design
    caps.uses_simplification = false;
    caps.uses_snapshot_store = true;
    caps.supports_cancel = false;  // single uninterruptible pass
    caps.supports_progress = false;
    caps.supports_incremental = false;
    caps.supports_threads = false;
    return caps;
  }
  std::vector<Convoy> Run(const ExecContext& ctx) const override {
    std::vector<Convoy> result =
        ctx.store != nullptr ? Mc2(*ctx.store, ctx.plan->query, ctx.plan->mc2)
                             : Mc2(*ctx.db, ctx.plan->query, ctx.plan->mc2);
    if (ctx.stats != nullptr) ctx.stats->num_convoys = result.size();
    return result;
  }
};

struct Registry {
  CmcAlgorithm cmc;
  CutsAlgorithm cuts{"CuTS", AlgorithmId::kCuts};
  CutsAlgorithm cuts_plus{"CuTS+", AlgorithmId::kCutsPlus};
  CutsAlgorithm cuts_star{"CuTS*", AlgorithmId::kCutsStar};
  Mc2Algorithm mc2;
  std::vector<const ConvoyAlgorithm*> all{&cmc, &cuts, &cuts_plus, &cuts_star,
                                          &mc2};
};

const Registry& GetRegistry() {
  static const Registry registry;
  return registry;
}

}  // namespace

const ConvoyAlgorithm& GetAlgorithm(AlgorithmId id) {
  const Registry& r = GetRegistry();
  switch (id) {
    case AlgorithmId::kCmc:
      return r.cmc;
    case AlgorithmId::kCuts:
      return r.cuts;
    case AlgorithmId::kCutsPlus:
      return r.cuts_plus;
    case AlgorithmId::kCutsStar:
      return r.cuts_star;
    case AlgorithmId::kMc2:
      return r.mc2;
  }
  return r.cuts_star;  // unreachable for in-range enum values
}

const std::vector<const ConvoyAlgorithm*>& AllAlgorithms() {
  return GetRegistry().all;
}

std::string_view ToString(AlgorithmId id) { return GetAlgorithm(id).Name(); }

std::string_view ToString(AlgorithmChoice choice) {
  switch (choice) {
    case AlgorithmChoice::kAuto:
      return "auto";
    case AlgorithmChoice::kCmc:
      return "CMC";
    case AlgorithmChoice::kCuts:
      return "CuTS";
    case AlgorithmChoice::kCutsPlus:
      return "CuTS+";
    case AlgorithmChoice::kCutsStar:
      return "CuTS*";
    case AlgorithmChoice::kMc2:
      return "MC2";
  }
  return "?";
}

std::optional<AlgorithmChoice> ParseAlgorithmChoice(std::string_view name) {
  if (name == "auto") return AlgorithmChoice::kAuto;
  if (name == "cmc") return AlgorithmChoice::kCmc;
  if (name == "cuts") return AlgorithmChoice::kCuts;
  if (name == "cuts+") return AlgorithmChoice::kCutsPlus;
  if (name == "cuts*") return AlgorithmChoice::kCutsStar;
  if (name == "mc2") return AlgorithmChoice::kMc2;
  return std::nullopt;
}

}  // namespace convoy
