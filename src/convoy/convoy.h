#ifndef CONVOY_CONVOY_H_
#define CONVOY_CONVOY_H_

/// \file
/// Umbrella header of libconvoy — a from-scratch C++20 implementation of
/// "Discovery of Convoys in Trajectory Databases" (Jeung, Yiu, Zhou, Jensen,
/// Shen; VLDB 2008).
///
/// Typical use (the planner/executor query API):
///
///   #include "convoy/convoy.h"
///
///   convoy::TrajectoryDatabase db = ...;            // load or generate
///   convoy::ConvoyEngine engine(std::move(db));
///   convoy::ConvoyQuery query{.m = 3, .k = 180, .e = 8.0};
///   auto plan = engine.Prepare(query);              // validate + plan
///   if (!plan.ok()) { /* handle plan.status() */ }
///   auto result = engine.Execute(*plan);            // ConvoyResultSet
///
/// The planner picks the physical algorithm (exact CMC for tiny inputs,
/// CuTS* otherwise — or any explicit AlgorithmChoice) and resolves the
/// Section 7.4 tunables; `plan->Explain()` shows the decision. For one-off
/// library use without an engine, the free functions remain: `Cuts` (the
/// CuTS* variant by default) returns exactly the convoys the CMC baseline
/// returns, typically several times faster; `Cmc` is the exact reference
/// algorithm, and `Mc2` the moving-cluster baseline of Appendix B.

#include "cluster/dbscan.h"
#include "cluster/grid_index.h"
#include "cluster/polyline_dbscan.h"
#include "cluster/str_tree.h"
#include "core/cmc.h"
#include "core/convoy_set.h"
#include "core/cuts.h"
#include "core/cuts_filter.h"
#include "core/cuts_refine.h"
#include "core/discovery_stats.h"
#include "core/engine.h"
#include "core/exec_hooks.h"
#include "core/flock.h"
#include "core/mc2.h"
#include "core/params.h"
#include "core/streaming.h"
#include "core/validate.h"
#include "core/verify.h"
#include "datagen/convoy_planter.h"
#include "datagen/movement.h"
#include "datagen/road_network.h"
#include "datagen/scenarios.h"
#include "datagen/stream_feed.h"
#include "geom/box.h"
#include "geom/distance.h"
#include "geom/point.h"
#include "geom/segment.h"
#include "io/csv.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "parallel/parallel_runner.h"
#include "parallel/service_thread.h"
#include "parallel/thread_pool.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/ring.h"
#include "server/server.h"
#include "server/session.h"
#include "io/dataset_report.h"
#include "io/result_io.h"
#include "query/algorithm.h"
#include "query/exec_context.h"
#include "query/planner.h"
#include "query/result_set.h"
#include "simd/dist_kernels.h"
#include "simplify/douglas_peucker.h"
#include "simplify/dp_plus.h"
#include "simplify/dp_star.h"
#include "simplify/simplifier.h"
#include "traj/cleaning.h"
#include "traj/resample.h"
#include "traj/database.h"
#include "traj/interpolate.h"
#include "traj/snapshot_store.h"
#include "traj/trajectory.h"
#include "util/cancel.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "wal/fault.h"
#include "wal/wal.h"

#endif  // CONVOY_CONVOY_H_
