#include "simplify/dp_plus.h"

#include "simplify/detail.h"

namespace convoy {

SimplifiedTrajectory DpPlus(const Trajectory& traj, double delta) {
  return simplify_detail::SimplifyCore(
      traj, delta, simplify_detail::SplitRule::kMiddleMost,
      simplify_detail::PerpendicularDeviation);
}

}  // namespace convoy
