#ifndef CONVOY_SIMPLIFY_DETAIL_H_
#define CONVOY_SIMPLIFY_DETAIL_H_

#include <cstddef>
#include <vector>

#include "geom/distance.h"
#include "geom/point.h"
#include "geom/segment.h"
#include "simplify/simplified_trajectory.h"
#include "traj/trajectory.h"

namespace convoy::simplify_detail {

/// Deviation of interior sample `p` from the anchor segment joining the
/// samples at indices lo/hi, under the perpendicular measure used by DP and
/// DP+ (distance from the point to the spatial segment).
inline double PerpendicularDeviation(const TimedPoint& p,
                                     const TimedPoint& lo,
                                     const TimedPoint& hi) {
  return DPL(p.pos, Segment(lo.pos, hi.pos));
}

/// Deviation of interior sample `p` under DP*'s time-synchronized measure
/// (Meratnia & de By): the distance between p and the anchor segment's
/// time-ratio position at p's own timestamp.
inline double TimeSyncDeviation(const TimedPoint& p, const TimedPoint& lo,
                                const TimedPoint& hi) {
  const TimedSegment anchor(lo, hi);
  return D(p.pos, anchor.PositionAt(static_cast<double>(p.t)));
}

/// How the divide step picks its split vertex.
enum class SplitRule {
  /// Classic Douglas-Peucker: the interior point with maximum deviation.
  kFarthest,
  /// DP+ (paper Section 6.1): among interior points whose deviation exceeds
  /// delta, the one closest to the middle *index* of the range, producing
  /// balanced sub-problems.
  kMiddleMost,
};

/// Shared divide-and-conquer core for DP / DP+ / DP*. `deviation` is one of
/// the measures above; the result records per-segment actual tolerances.
///
/// Runs iteratively with an explicit stack so that per-second cattle traces
/// (hundreds of thousands of samples) cannot overflow the call stack.
template <typename DeviationFn>
SimplifiedTrajectory SimplifyCore(const Trajectory& traj, double delta,
                                  SplitRule rule, DeviationFn deviation) {
  const std::vector<TimedPoint>& pts = traj.samples();
  if (pts.size() <= 2) {
    std::vector<double> tol(pts.size() == 2 ? 1 : 0, 0.0);
    return SimplifiedTrajectory(traj.id(), pts, std::move(tol));
  }

  std::vector<TimedPoint> vertices;
  std::vector<double> tolerances;
  vertices.push_back(pts.front());

  // Each frame is a [lo, hi] index range whose endpoints are (or will be)
  // retained vertices. Processing is left-to-right: pop a frame, either emit
  // the segment lo->hi or split and push the two halves (right first).
  std::vector<std::pair<size_t, size_t>> stack;
  stack.emplace_back(0, pts.size() - 1);

  while (!stack.empty()) {
    const auto [lo, hi] = stack.back();
    stack.pop_back();

    // One pass finds both the farthest point (DP/DP* split, and the actual
    // tolerance when the range is emitted) and, for DP+, the exceeding
    // point nearest the middle index.
    const double mid = static_cast<double>(lo + hi) / 2.0;
    double max_dev = 0.0;
    size_t farthest = lo;
    size_t middle_most = lo;
    double middle_gap = -1.0;
    for (size_t i = lo + 1; i < hi; ++i) {
      const double dev = deviation(pts[i], pts[lo], pts[hi]);
      if (dev > max_dev) {
        max_dev = dev;
        farthest = i;
      }
      if (rule == SplitRule::kMiddleMost && dev > delta) {
        const double gap = std::abs(static_cast<double>(i) - mid);
        if (middle_gap < 0.0 || gap < middle_gap) {
          middle_gap = gap;
          middle_most = i;
        }
      }
    }

    if (max_dev <= delta || hi - lo < 2) {
      // All interior points within tolerance: emit segment, record the
      // *actual* tolerance (Definition 4) = the max deviation observed.
      vertices.push_back(pts[hi]);
      tolerances.push_back(max_dev);
      continue;
    }

    const size_t split =
        rule == SplitRule::kMiddleMost ? middle_most : farthest;

    stack.emplace_back(split, hi);  // pushed first, processed second
    stack.emplace_back(lo, split);
  }

  return SimplifiedTrajectory(traj.id(), std::move(vertices),
                              std::move(tolerances));
}

}  // namespace convoy::simplify_detail

#endif  // CONVOY_SIMPLIFY_DETAIL_H_
