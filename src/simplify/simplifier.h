#ifndef CONVOY_SIMPLIFY_SIMPLIFIER_H_
#define CONVOY_SIMPLIFY_SIMPLIFIER_H_

#include <string>
#include <vector>

#include "simplify/simplified_trajectory.h"
#include "traj/database.h"

namespace convoy {

/// The trajectory-simplification technique used by a CuTS-family filter
/// (paper Section 6 summary table).
enum class SimplifierKind {
  kDp,      ///< classic Douglas-Peucker (CuTS)
  kDpPlus,  ///< middle-split DP+ (CuTS+)
  kDpStar,  ///< time-ratio DP* (CuTS*)
};

/// Human-readable name ("DP", "DP+", "DP*").
std::string ToString(SimplifierKind kind);

/// Dispatches to DouglasPeucker / DpPlus / DpStar.
SimplifiedTrajectory Simplify(const Trajectory& traj, double delta,
                              SimplifierKind kind);

/// Simplifies every trajectory of a database with the same tolerance.
std::vector<SimplifiedTrajectory> SimplifyDatabase(
    const TrajectoryDatabase& db, double delta, SimplifierKind kind);

/// SimplifyDatabase with the per-trajectory work spread over `num_threads`
/// workers (0 = all hardware threads; <= 1 = the serial loop). Trajectories
/// are independent and results come back index-ordered, so the output is
/// identical to the serial overload.
std::vector<SimplifiedTrajectory> SimplifyDatabase(
    const TrajectoryDatabase& db, double delta, SimplifierKind kind,
    size_t num_threads);

/// Vertex reduction ratio in percent, 100 * (1 - |simplified| / |original|),
/// aggregated over a whole database (paper Figure 15(a)'s y-axis).
double VertexReductionPercent(const TrajectoryDatabase& db,
                              const std::vector<SimplifiedTrajectory>& simp);

}  // namespace convoy

#endif  // CONVOY_SIMPLIFY_SIMPLIFIER_H_
