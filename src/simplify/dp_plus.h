#ifndef CONVOY_SIMPLIFY_DP_PLUS_H_
#define CONVOY_SIMPLIFY_DP_PLUS_H_

#include "simplify/simplified_trajectory.h"
#include "traj/trajectory.h"

namespace convoy {

/// DP+ (paper Section 6.1): Douglas-Peucker variant that splits at the
/// exceeding point closest to the middle of the range instead of the
/// farthest point. The divide step then produces balanced halves, making the
/// simplification faster; the retained actual tolerances are never larger
/// than classic DP's, which tightens the filter's range-search bounds, at
/// the price of somewhat lower vertex reduction.
SimplifiedTrajectory DpPlus(const Trajectory& traj, double delta);

}  // namespace convoy

#endif  // CONVOY_SIMPLIFY_DP_PLUS_H_
