#include "simplify/douglas_peucker.h"

#include <algorithm>

#include "simplify/detail.h"

namespace convoy {

SimplifiedTrajectory DouglasPeucker(const Trajectory& traj, double delta) {
  return simplify_detail::SimplifyCore(
      traj, delta, simplify_detail::SplitRule::kFarthest,
      simplify_detail::PerpendicularDeviation);
}

std::vector<double> CollectSplitDeviations(const Trajectory& traj) {
  const std::vector<TimedPoint>& pts = traj.samples();
  std::vector<double> deviations;
  if (pts.size() < 3) return deviations;

  std::vector<std::pair<size_t, size_t>> stack;
  stack.emplace_back(0, pts.size() - 1);
  while (!stack.empty()) {
    const auto [lo, hi] = stack.back();
    stack.pop_back();
    if (hi - lo < 2) continue;
    double max_dev = 0.0;
    size_t farthest = lo + 1;
    for (size_t i = lo + 1; i < hi; ++i) {
      const double dev = simplify_detail::PerpendicularDeviation(
          pts[i], pts[lo], pts[hi]);
      if (dev > max_dev) {
        max_dev = dev;
        farthest = i;
      }
    }
    // With delta = 0 every division step happens (until ranges are atomic);
    // the recorded value is the tolerance at which this split would stop.
    deviations.push_back(max_dev);
    stack.emplace_back(farthest, hi);
    stack.emplace_back(lo, farthest);
  }
  std::sort(deviations.begin(), deviations.end());
  return deviations;
}

}  // namespace convoy
