#include "simplify/simplifier.h"

#include <algorithm>

#include "parallel/parallel_for.h"
#include "simplify/douglas_peucker.h"
#include "simplify/dp_plus.h"
#include "simplify/dp_star.h"

namespace convoy {

std::string ToString(SimplifierKind kind) {
  switch (kind) {
    case SimplifierKind::kDp:
      return "DP";
    case SimplifierKind::kDpPlus:
      return "DP+";
    case SimplifierKind::kDpStar:
      return "DP*";
  }
  return "?";
}

SimplifiedTrajectory Simplify(const Trajectory& traj, double delta,
                              SimplifierKind kind) {
  switch (kind) {
    case SimplifierKind::kDp:
      return DouglasPeucker(traj, delta);
    case SimplifierKind::kDpPlus:
      return DpPlus(traj, delta);
    case SimplifierKind::kDpStar:
      return DpStar(traj, delta);
  }
  return DouglasPeucker(traj, delta);
}

std::vector<SimplifiedTrajectory> SimplifyDatabase(const TrajectoryDatabase& db,
                                                   double delta,
                                                   SimplifierKind kind) {
  std::vector<SimplifiedTrajectory> out;
  out.reserve(db.Size());
  for (const Trajectory& traj : db.trajectories()) {
    out.push_back(Simplify(traj, delta, kind));
  }
  return out;
}

std::vector<SimplifiedTrajectory> SimplifyDatabase(const TrajectoryDatabase& db,
                                                   double delta,
                                                   SimplifierKind kind,
                                                   size_t num_threads) {
  const size_t threads =
      std::min(ResolveThreadCount(num_threads), db.Size());
  if (threads <= 1) return SimplifyDatabase(db, delta, kind);
  ThreadPool pool(threads);
  return ParallelMap(&pool, db.Size(), [&](size_t i) {
    return Simplify(db[i], delta, kind);
  });
}

double VertexReductionPercent(const TrajectoryDatabase& db,
                              const std::vector<SimplifiedTrajectory>& simp) {
  size_t original = 0;
  size_t kept = 0;
  for (const Trajectory& traj : db.trajectories()) original += traj.Size();
  for (const SimplifiedTrajectory& s : simp) kept += s.NumVertices();
  if (original == 0) return 0.0;
  return 100.0 * (1.0 - static_cast<double>(kept) /
                            static_cast<double>(original));
}

}  // namespace convoy
