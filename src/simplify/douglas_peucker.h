#ifndef CONVOY_SIMPLIFY_DOUGLAS_PEUCKER_H_
#define CONVOY_SIMPLIFY_DOUGLAS_PEUCKER_H_

#include <vector>

#include "simplify/simplified_trajectory.h"
#include "traj/trajectory.h"

namespace convoy {

/// Classic Douglas-Peucker line simplification (paper Section 2.2 / 5.1):
/// recursively keeps the interior point farthest (in perpendicular distance)
/// from the anchor segment until every removed point deviates by at most
/// `delta`. Per-segment actual tolerances (Definition 4) are recorded.
SimplifiedTrajectory DouglasPeucker(const Trajectory& traj, double delta);

/// Runs DP with delta = 0 and returns the deviation value at every division
/// step, in ascending order. These are the "actual tolerance values" the
/// Section 7.4 delta-selection guideline inspects for its largest-gap rule.
std::vector<double> CollectSplitDeviations(const Trajectory& traj);

}  // namespace convoy

#endif  // CONVOY_SIMPLIFY_DOUGLAS_PEUCKER_H_
