#include "simplify/dp_star.h"

#include "simplify/detail.h"

namespace convoy {

SimplifiedTrajectory DpStar(const Trajectory& traj, double delta) {
  return simplify_detail::SimplifyCore(traj, delta,
                                       simplify_detail::SplitRule::kFarthest,
                                       simplify_detail::TimeSyncDeviation);
}

}  // namespace convoy
