#include "simplify/simplified_trajectory.h"

#include <algorithm>
#include <cassert>

namespace convoy {

SimplifiedTrajectory::SimplifiedTrajectory(ObjectId id,
                                           std::vector<TimedPoint> vertices,
                                           std::vector<double> seg_tolerances)
    : id_(id),
      vertices_(std::move(vertices)),
      seg_tolerance_(std::move(seg_tolerances)) {
  assert(vertices_.empty() ? seg_tolerance_.empty()
                           : seg_tolerance_.size() == vertices_.size() - 1);
  max_tolerance_ = 0.0;
  for (double tol : seg_tolerance_) max_tolerance_ = std::max(max_tolerance_, tol);
}

std::optional<size_t> SimplifiedTrajectory::SegmentCovering(Tick t) const {
  if (NumSegments() == 0 || !CoversTick(t)) return std::nullopt;
  // Binary search for the last vertex with tick <= t.
  auto it = std::upper_bound(
      vertices_.begin(), vertices_.end(), t,
      [](Tick tick, const TimedPoint& v) { return tick < v.t; });
  size_t idx = static_cast<size_t>(std::distance(vertices_.begin(), it)) - 1;
  // t == EndTick lands on the last vertex; clamp to the final segment.
  if (idx >= NumSegments()) idx = NumSegments() - 1;
  return idx;
}

std::optional<std::pair<size_t, size_t>>
SimplifiedTrajectory::SegmentsIntersecting(Tick lo, Tick hi) const {
  if (NumSegments() == 0 || lo > hi) return std::nullopt;
  if (hi < BeginTick() || EndTick() < lo) return std::nullopt;
  const size_t first = SegmentCovering(std::max(lo, BeginTick())).value();
  const size_t last = SegmentCovering(std::min(hi, EndTick())).value();
  return std::make_pair(first, last);
}

}  // namespace convoy
