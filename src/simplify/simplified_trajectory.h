#ifndef CONVOY_SIMPLIFY_SIMPLIFIED_TRAJECTORY_H_
#define CONVOY_SIMPLIFY_SIMPLIFIED_TRAJECTORY_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "geom/segment.h"
#include "traj/trajectory.h"

namespace convoy {

/// A simplified trajectory o' (paper Section 5.1): a subsequence of the
/// original trajectory's samples, connected by line segments, together with
/// the *actual tolerance* of every segment (Definition 4):
///
///   delta(l') = max over ticks t in l'.tau of the deviation of the original
///               trajectory from l' at t,
///
/// where "deviation" is the perpendicular distance DPL(o(t), l') for DP/DP+
/// simplifications and the time-synchronized distance D(o(t), l'(t)) for DP*.
/// The tolerances are recorded during simplification at no extra asymptotic
/// cost and drive the tightened range-search bounds of Lemmas 1-3.
class SimplifiedTrajectory {
 public:
  SimplifiedTrajectory() = default;

  /// Constructs from retained vertices and per-segment tolerances.
  /// `seg_tolerances.size()` must equal `vertices.size() - 1` (or both empty).
  SimplifiedTrajectory(ObjectId id, std::vector<TimedPoint> vertices,
                       std::vector<double> seg_tolerances);

  ObjectId id() const { return id_; }

  /// Number of retained vertices |o'|.
  size_t NumVertices() const { return vertices_.size(); }

  /// Number of line segments (|o'| - 1, or 0 for degenerate inputs).
  size_t NumSegments() const {
    return vertices_.size() < 2 ? 0 : vertices_.size() - 1;
  }

  bool Empty() const { return vertices_.empty(); }

  /// The i-th line segment l'_i with its endpoint timestamps.
  TimedSegment GetSegment(size_t i) const {
    return TimedSegment(vertices_[i], vertices_[i + 1]);
  }

  /// The actual tolerance delta(l'_i) of the i-th segment.
  double SegmentTolerance(size_t i) const { return seg_tolerance_[i]; }

  /// The actual tolerance delta(o') of the whole simplified trajectory:
  /// the maximum over its segments (Definition 4). Zero when no segments.
  double MaxTolerance() const { return max_tolerance_; }

  /// Time interval o'.tau (same as the original trajectory's interval).
  Tick BeginTick() const { return vertices_.front().t; }
  Tick EndTick() const { return vertices_.back().t; }
  bool CoversTick(Tick t) const {
    return !Empty() && BeginTick() <= t && t <= EndTick();
  }

  /// Index of the segment whose time interval covers tick t (the segment
  /// with start.t <= t <= end.t; boundaries resolve to the earlier segment).
  /// nullopt if t is outside the trajectory's interval or there are no
  /// segments.
  std::optional<size_t> SegmentCovering(Tick t) const;

  /// Indices [first, last] of segments whose time intervals intersect
  /// [lo, hi]; nullopt when no segment intersects.
  std::optional<std::pair<size_t, size_t>> SegmentsIntersecting(Tick lo,
                                                                Tick hi) const;

  const std::vector<TimedPoint>& vertices() const { return vertices_; }
  const std::vector<double>& segment_tolerances() const {
    return seg_tolerance_;
  }

 private:
  ObjectId id_ = 0;
  std::vector<TimedPoint> vertices_;
  std::vector<double> seg_tolerance_;
  double max_tolerance_ = 0.0;
};

}  // namespace convoy

#endif  // CONVOY_SIMPLIFY_SIMPLIFIED_TRAJECTORY_H_
