#ifndef CONVOY_SIMPLIFY_DP_STAR_H_
#define CONVOY_SIMPLIFY_DP_STAR_H_

#include "simplify/simplified_trajectory.h"
#include "traj/trajectory.h"

namespace convoy {

/// DP* (Meratnia & de By; paper Sections 2.2 and 6.2): Douglas-Peucker with
/// the *time-synchronized* deviation measure — a removed sample p is compared
/// against the anchor segment's position at p's own timestamp rather than
/// against the nearest point of the segment. The measure is never smaller
/// than the perpendicular one, so DP* keeps more vertices; in exchange the
/// recorded tolerances bound D(o(t), l'(t)) directly, which is what the
/// tightened distance D* of CuTS* requires (Lemma 3).
SimplifiedTrajectory DpStar(const Trajectory& traj, double delta);

}  // namespace convoy

#endif  // CONVOY_SIMPLIFY_DP_STAR_H_
