#ifndef CONVOY_SERVER_PROTOCOL_H_
#define CONVOY_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/convoy_set.h"
#include "traj/trajectory.h"
#include "util/status.h"

namespace convoy::server {

/// Wire protocol of the convoy server — a length-prefixed binary framing
/// over TCP, dependency-free by construction (hand-rolled little-endian
/// encode/decode, no protobuf/grpc in the image).
///
/// Frame layout (see README "Server" for the full state machine):
///
///   +----------------+---------------------------+
///   | u32 LE length  | payload (`length` bytes)  |
///   +----------------+---------------------------+
///   payload byte 0 = MsgType, rest = message fields in LE order
///
/// The first frame on every connection must be kHello carrying the magic
/// and a protocol version byte; the server answers kHelloAck with the
/// version it speaks and rejects mismatches, so the wire format can evolve
/// without silent misparses. All multi-byte integers are little-endian
/// fixed width; doubles travel as their IEEE-754 bit pattern in a u64;
/// strings and row arrays are length-prefixed (u32).
///
/// Every client request carries a client-chosen u64 sequence number; the
/// server echoes it in the matching kAck / kQueryResult / kStatsResult so
/// clients may pipeline requests. Malformed or out-of-order input is
/// answered with a NAK (kAck with a non-OK StatusCode) that leaves the
/// session recoverable — the documented StreamingCmc error contract,
/// carried over the wire.
inline constexpr uint32_t kProtocolMagic = 0x43565953;  // "CVYS"
/// v2: AckMsg grew flags (duplicate bit) + resume_seq, SubscribeMsg grew
/// replay_closed, EventMsg grew event_index, EventKind grew kGap — the
/// durable-ingest/crash-recovery additions. v1 clients are rejected at the
/// handshake rather than misparsed.
inline constexpr uint8_t kProtocolVersion = 2;

/// Hostile-input guard: frames above this are rejected before allocation.
inline constexpr size_t kMaxFramePayload = 4u * 1024u * 1024u;

enum class MsgType : uint8_t {
  // client -> server
  kHello = 1,         ///< magic + version handshake (first frame)
  kIngestBegin = 2,   ///< open an ingest stream (query params + options)
  kReportBatch = 3,   ///< one batch of position reports for a tick
  kEndTick = 4,       ///< close the current tick (snapshot is clustered)
  kIngestFinish = 5,  ///< end the stream (remaining convoys close)
  kSubscribe = 6,     ///< receive convoy events of a stream
  kQuery = 7,         ///< ad-hoc planned query over accepted rows
  kStatsRequest = 8,  ///< server metrics dump (QueryMetrics JSON)
  // server -> client
  kHelloAck = 16,     ///< handshake answer (version + accepted flag)
  kAck = 17,          ///< per-request ack / NAK (echoes the seq)
  kEvent = 18,        ///< convoy event pushed to subscribers
  kQueryResult = 19,  ///< convoys + EXPLAIN text for a kQuery
  kStatsResult = 20,  ///< metrics JSON for a kStatsRequest
};

/// Kinds of subscription events, emitted per processed tick by the
/// stream's CMC worker in deterministic order: tick summary first, then
/// new / extended / closed convoy events in canonical convoy order.
enum class EventKind : uint8_t {
  kTick = 1,            ///< tick processed (live candidate count attached)
  kConvoyNew = 2,       ///< an open convoy reached lifetime >= k this tick
  kConvoyExtended = 3,  ///< an already-open convoy survived another tick
  kConvoyClosed = 4,    ///< a convoy closed (group dispersed / stream end)
  kStreamEnd = 5,       ///< the stream finished (kIngestFinish processed)
  kGap = 6,             ///< events were dropped for THIS subscriber (slow
                        ///< consumer); live_candidates carries the count
};

/// One position report inside a kReportBatch.
struct PositionReport {
  ObjectId id = 0;
  double x = 0.0;
  double y = 0.0;
};

// ---------------------------------------------------------------- messages

struct HelloMsg {
  uint32_t magic = kProtocolMagic;
  uint8_t version = kProtocolVersion;
};

struct HelloAckMsg {
  uint8_t version = kProtocolVersion;
  uint8_t accepted = 1;
  std::string message;  ///< reject reason when accepted == 0
};

struct IngestBeginMsg {
  uint64_t seq = 0;
  uint64_t stream_id = 0;  ///< client-chosen, unique per server lifetime
  uint32_t m = 2;
  int64_t k = 2;
  double e = 1.0;
  int64_t carry_forward_ticks = 0;  ///< StreamingCmc::Options knob
};

struct ReportBatchMsg {
  uint64_t seq = 0;
  Tick tick = 0;
  std::vector<PositionReport> rows;
};

struct EndTickMsg {
  uint64_t seq = 0;
  Tick tick = 0;
};

struct IngestFinishMsg {
  uint64_t seq = 0;
};

struct SubscribeMsg {
  uint64_t seq = 0;
  uint64_t stream_id = 0;
  /// 1 = first send every closed-convoy event recorded so far (recovery
  /// replay included), then go live. A subscriber that dedups on
  /// event_index then holds the complete closed sequence even when it
  /// attached after a crash/restart.
  uint8_t replay_closed = 0;
};

struct QueryMsg {
  uint64_t seq = 0;
  uint64_t stream_id = 0;
  uint32_t m = 2;
  int64_t k = 2;
  double e = 1.0;
  uint8_t algo = 0;     ///< AlgorithmChoice as u8 (0 = auto)
  uint8_t explain = 0;  ///< 1 = include QueryPlan::Explain() text
  uint32_t threads = 1;
};

struct StatsRequestMsg {
  uint64_t seq = 0;
};

/// AckMsg.flags bit 0: the item's seq was already applied (a resent
/// duplicate after reconnect) — acked OK without re-applying.
inline constexpr uint8_t kAckFlagDuplicate = 0x1;

struct AckMsg {
  uint64_t seq = 0;
  uint8_t code = 0;       ///< StatusCode as u8; 0 = OK, else a NAK
  uint8_t retryable = 0;  ///< 1 = flow control / load shed — resend later
  uint8_t flags = 0;      ///< kAckFlag* bits
  uint32_t accepted = 0;  ///< rows accepted (batch) / convoys closed (tick)
  uint32_t rejected = 0;  ///< rows rejected inside an accepted batch
  /// On an IngestBegin ack: the stream's last applied item seq (0 for a
  /// fresh stream). A resuming producer continues from resume_seq + 1.
  uint64_t resume_seq = 0;
  std::string message;    ///< Status message on a NAK
};

struct EventMsg {
  uint64_t stream_id = 0;
  uint8_t kind = 0;  ///< EventKind
  Tick tick = 0;
  uint32_t live_candidates = 0;  ///< dropped-event count for kGap
  /// Position of this event in the stream's closed-convoy sequence
  /// (1-based, assigned at emission, stable across crash recovery); 0 for
  /// non-closed kinds. Lets subscribers dedup a replay_closed catch-up
  /// against live events.
  uint64_t event_index = 0;
  Convoy convoy;  ///< meaningful for the kConvoy* kinds only
};

struct QueryResultMsg {
  uint64_t seq = 0;
  uint8_t code = 0;  ///< StatusCode as u8; 0 = OK
  std::string message;
  std::string explain;  ///< QueryPlan::Explain() when requested
  std::vector<Convoy> convoys;
};

struct StatsResultMsg {
  uint64_t seq = 0;
  std::string json;  ///< {"schema":...,"metrics":<QueryMetrics JSON>}
};

// ------------------------------------------------------- encode / decode

std::string Encode(const HelloMsg& msg);
std::string Encode(const HelloAckMsg& msg);
std::string Encode(const IngestBeginMsg& msg);
std::string Encode(const ReportBatchMsg& msg);
std::string Encode(const EndTickMsg& msg);
std::string Encode(const IngestFinishMsg& msg);
std::string Encode(const SubscribeMsg& msg);
std::string Encode(const QueryMsg& msg);
std::string Encode(const StatsRequestMsg& msg);
std::string Encode(const AckMsg& msg);
std::string Encode(const EventMsg& msg);
std::string Encode(const QueryResultMsg& msg);
std::string Encode(const StatsResultMsg& msg);

/// The payload's message type, or kDataError for an empty / unknown-type
/// payload. Decoders re-verify the type byte themselves.
StatusOr<MsgType> PeekType(std::string_view payload);

/// Each decoder validates the type byte, bounds-checks every field read,
/// and rejects trailing garbage — a malformed payload yields kDataError,
/// never UB (fuzz-tested in server_protocol_test.cc).
StatusOr<HelloMsg> DecodeHello(std::string_view payload);
StatusOr<HelloAckMsg> DecodeHelloAck(std::string_view payload);
StatusOr<IngestBeginMsg> DecodeIngestBegin(std::string_view payload);
StatusOr<ReportBatchMsg> DecodeReportBatch(std::string_view payload);
StatusOr<EndTickMsg> DecodeEndTick(std::string_view payload);
StatusOr<IngestFinishMsg> DecodeIngestFinish(std::string_view payload);
StatusOr<SubscribeMsg> DecodeSubscribe(std::string_view payload);
StatusOr<QueryMsg> DecodeQuery(std::string_view payload);
StatusOr<StatsRequestMsg> DecodeStatsRequest(std::string_view payload);
StatusOr<AckMsg> DecodeAck(std::string_view payload);
StatusOr<EventMsg> DecodeEvent(std::string_view payload);
StatusOr<QueryResultMsg> DecodeQueryResult(std::string_view payload);
StatusOr<StatsResultMsg> DecodeStatsResult(std::string_view payload);

// ------------------------------------------------------------- frame I/O

/// Writes one length-prefixed frame to `fd` (a socket), looping over
/// partial sends. kDataError when the payload exceeds kMaxFramePayload;
/// kInternal on a socket error (the connection is dead). Sends with
/// MSG_NOSIGNAL: a vanished peer is an EPIPE status, never a SIGPIPE.
/// Socket I/O is routed through the wal/fault.h hooks, so the fault
/// harness can shorten sends, raise EINTR, or cut the connection at a
/// chosen frame boundary.
Status WriteFrame(int fd, std::string_view payload);

/// Reads one frame from `fd`. kCancelled("connection closed") on a clean
/// EOF at a frame boundary — the reader loop's normal exit; kDataError on
/// a truncated frame or an over-limit length prefix; kDeadlineExceeded
/// when an SO_RCVTIMEO receive timeout expires (the idle-reap / client
/// deadline signal); kInternal on other socket errors.
StatusOr<std::string> ReadFrame(int fd);

}  // namespace convoy::server

#endif  // CONVOY_SERVER_PROTOCOL_H_
