#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <sstream>
#include <utility>

#include "core/validate.h"
#include "query/algorithm.h"

namespace convoy::server {

namespace {

Status ErrnoStatus(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

/// Best-effort sequence number of an undecodable client frame. Every
/// client request lays out `u8 type, u64 seq, ...`, so even a frame whose
/// full decode fails usually carries a recoverable seq — NAKing with it
/// lets a client blocked in AwaitAck(seq) surface the error instead of
/// spinning until the connection drops. Returns 0 (never a real sequence:
/// clients start at 1) when the frame is too short to hold one.
uint64_t BestEffortSeq(const std::string& payload) {
  if (payload.size() < 9) return 0;
  uint64_t seq = 0;
  for (size_t i = 0; i < 8; ++i) {
    seq |= static_cast<uint64_t>(static_cast<uint8_t>(payload[1 + i]))
           << (8 * i);
  }
  return seq;
}

}  // namespace

ConvoyServer::ConvoyServer(ServerOptions options)
    : options_(std::move(options)) {}

ConvoyServer::~ConvoyServer() { Shutdown(); }

Status ConvoyServer::Start() {
  if (running_.load()) {
    return Status::FailedPrecondition("server already started");
  }
  if (!options_.wal_dir.empty()) {
    wal::WalOptions wal_options;
    wal_options.dir = options_.wal_dir;
    wal_options.fsync = options_.fsync;
    wal_options.fsync_interval_ms = options_.fsync_interval_ms;
    wal_options.segment_bytes = options_.wal_segment_bytes;
    // Open first: it truncates a torn tail in place, so the replay below
    // reads a clean log and the truncation point is decided exactly once.
    StatusOr<std::unique_ptr<wal::WalWriter>> writer =
        wal::WalWriter::Open(wal_options, &trace_);
    if (!writer.ok()) return writer.status().WithContext("wal open");
    wal_ = std::move(*writer);
    const Status recovered = RecoverStreams();
    if (!recovered.ok()) return recovered.WithContext("wal recovery");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return ErrnoStatus("socket");

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad host address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status status = ErrnoStatus("bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 64) != 0) {
    const Status status = ErrnoStatus("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    const Status status = ErrnoStatus("getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = ntohs(bound.sin_port);

  running_.store(true);
  acceptor_ = ServiceThread("acceptor", [this] { AcceptLoop(); });
  return Status::Ok();
}

Status ConvoyServer::RecoverStreams() {
  // Single-threaded phase: Start() has not spawned the acceptor yet, so
  // streams_ needs no lock and every stream's worker is parked in its
  // ring — ReplayRecord drives Process() on this thread, and the ring
  // mutex orders the hand-off to the worker at the first live Submit.
  std::vector<std::shared_ptr<IngestStream>> replayed;
  wal::WalReadStats stats;
  const Status read = wal::ReadWalDir(
      options_.wal_dir,
      [&](const wal::WalRecord& record) -> Status {
        trace_.Count(TraceCounter::kWalRecoveredRecords, 1);
        auto it = streams_.find(record.stream_id);
        if (record.kind == wal::WalRecordKind::kBegin) {
          if (it != streams_.end()) return Status::Ok();  // duplicate begin
          IngestBeginMsg begin;
          begin.seq = record.seq;
          begin.stream_id = record.stream_id;
          begin.m = record.m;
          begin.k = record.k;
          begin.e = record.e;
          begin.carry_forward_ticks = record.carry_forward_ticks;
          auto stream = std::make_shared<IngestStream>(
              begin, options_.ring_capacity, this, &trace_, wal_.get(),
              /*replaying=*/true);
          // Single-threaded: no server thread has been spawned yet.
          // convoy-lint: allow-line(guarded-member)
          streams_.emplace(record.stream_id, stream);
          replayed.push_back(std::move(stream));
          return Status::Ok();
        }
        if (it == streams_.end()) return Status::Ok();  // orphan: skip
        it->second->ReplayRecord(record);
        return Status::Ok();
      },
      &stats);
  if (!read.ok()) return read;
  for (const auto& stream : replayed) stream->FinishReplay();
  trace_.CountMax(TraceCounter::kServerActiveSessionsMax, streams_.size());
  return Status::Ok();
}

void ConvoyServer::Shutdown() {
  const bool was_running = running_.exchange(false);
  if (listen_fd_ >= 0) {
    // shutdown() wakes the blocked accept(); close() releases the fd.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  acceptor_.Join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!was_running) return;

  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns = connections_;
  }
  for (const auto& conn : conns) {
    // Under write_mu: the acceptor's reap may be closing this same
    // connection concurrently, and shutdown on a reused fd would hit an
    // unrelated socket.
    std::lock_guard<std::mutex> lock(conn->write_mu);
    if (conn->fd >= 0) {
      ::shutdown(conn->fd, SHUT_RDWR);  // wakes the reader's blocked read
    }
  }
  for (const auto& conn : conns) {
    // The reader closes the event queue on its way out, so the sender
    // drains and exits before its join.
    conn->reader.Join();
    conn->sender.Join();
    CloseConnection(conn);
  }

  std::map<uint64_t, std::shared_ptr<IngestStream>> streams;
  {
    std::lock_guard<std::mutex> lock(mu_);
    streams = streams_;
  }
  // Drain every worker: queued items still process (their acks hit dead
  // sockets and are dropped), then the worker thread joins.
  for (const auto& [id, stream] : streams) stream->Close();

  if (wal_ != nullptr) {
    // Best-effort durability on a clean shutdown, fsync=none included.
    (void)wal_->Sync();
    wal_.reset();
  }

  std::lock_guard<std::mutex> lock(mu_);
  connections_.clear();
  subscribers_.clear();
  stream_owner_.clear();
  streams_.clear();
  pending_streams_.clear();
}

void ConvoyServer::AcceptLoop() {
  while (running_.load()) {
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or a fatal accept error)
    }
    if (!running_.load()) {
      ::close(client_fd);
      break;
    }
    // Acks and events are small frames on a request/response cadence —
    // Nagle + delayed ACK would add ~40ms per tick event on loopback.
    const int one = 1;
    ::setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.idle_timeout_ms > 0) {
      // SO_RCVTIMEO turns a silent peer into a kDeadlineExceeded read —
      // the idle-reap signal (lifted again if the connection subscribes).
      timeval tv{};
      tv.tv_sec = static_cast<time_t>(options_.idle_timeout_ms / 1000);
      tv.tv_usec =
          static_cast<suseconds_t>((options_.idle_timeout_ms % 1000) * 1000);
      ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
    // Reap connections whose reader has already exited, so a long-lived
    // daemon does not accumulate one Connection per historical client.
    // Join outside the lock (the dying reader grabs mu_ to unsubscribe).
    std::vector<std::shared_ptr<Connection>> dead;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto alive_end = connections_.begin();
      for (auto& conn : connections_) {
        if (conn->open.load()) {
          *alive_end++ = conn;
        } else {
          dead.push_back(std::move(conn));
        }
      }
      connections_.erase(alive_end, connections_.end());
    }
    for (const auto& conn : dead) {
      conn->reader.Join();
      conn->sender.Join();
      CloseConnection(conn);
    }

    auto conn = std::make_shared<Connection>();
    {
      // No contention possible yet (the connection is unpublished); taken
      // for the fd-under-write_mu invariant.
      std::lock_guard<std::mutex> lock(conn->write_mu);
      conn->fd = client_fd;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      connections_.push_back(conn);
    }
    conn->reader =
        ServiceThread("conn-reader", [this, conn] { ReaderLoop(conn); });
  }
}

void ConvoyServer::ReaderLoop(const std::shared_ptr<Connection>& conn) {
  bool hello_done = false;
  while (running_.load() && conn->open.load()) {
    StatusOr<std::string> frame = ReadFrame(conn->fd);
    if (!frame.ok()) {
      // EOF, peer reset, a truncated frame — or the idle timeout: a peer
      // that went silent for idle_timeout_ms no longer pins this thread.
      if (frame.status().code() == StatusCode::kDeadlineExceeded &&
          !conn->subscriber.load()) {
        trace_.Count(TraceCounter::kServerIdleReaped, 1);
      }
      break;
    }
    if (!Dispatch(conn, *frame, &hello_done)) break;
  }
  conn->open.store(false);
  // The peer must observe EOF once this connection is done (rejected
  // handshake or pre-handshake garbage both exit the loop with the
  // client still reading); the fd itself is released in Shutdown after
  // this thread joins.
  ::shutdown(conn->fd, SHUT_RDWR);
  // Unsubscribe everywhere so event fan-out stops touching this socket.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, subs] : subscribers_) {
      auto end = subs.begin();
      for (auto& sub : subs) {
        if (sub != conn) *end++ = sub;
      }
      subs.erase(end, subs.end());
    }
  }
  // Close the event queue (no enqueuer can see this connection anymore),
  // so the sender drains what is left and exits for its join.
  {
    std::lock_guard<std::mutex> lock(conn->eq_mu);
    conn->eq_closed = true;
  }
  conn->eq_cv.notify_all();
}

bool ConvoyServer::Dispatch(const std::shared_ptr<Connection>& conn,
                            const std::string& payload, bool* hello_done) {
  const StatusOr<MsgType> type = PeekType(payload);
  if (!type.ok()) {
    if (!*hello_done) return false;  // garbage before the handshake
    AckTo(conn, 0, type.status());
    return true;
  }
  if (!*hello_done) {
    if (*type != MsgType::kHello) return false;
    const StatusOr<HelloMsg> hello = DecodeHello(payload);
    HelloAckMsg ack;
    if (!hello.ok() || hello->magic != kProtocolMagic) {
      ack.accepted = 0;
      ack.message = "bad magic: not a convoy-server client";
    } else if (hello->version != kProtocolVersion) {
      ack.accepted = 0;
      ack.message = "protocol version mismatch: server speaks " +
                    std::to_string(int{kProtocolVersion}) + ", client sent " +
                    std::to_string(int{hello->version});
    }
    WriteTo(conn, Encode(ack));
    if (ack.accepted == 0) return false;
    *hello_done = true;
    return true;
  }
  switch (*type) {
    case MsgType::kIngestBegin: {
      const StatusOr<IngestBeginMsg> msg = DecodeIngestBegin(payload);
      if (!msg.ok()) {
        AckTo(conn, BestEffortSeq(payload), msg.status());
        return true;
      }
      HandleIngestBegin(conn, *msg);
      return true;
    }
    case MsgType::kReportBatch:
    case MsgType::kEndTick:
    case MsgType::kIngestFinish:
      HandleStreamItem(conn, *type, payload);
      return true;
    case MsgType::kSubscribe: {
      const StatusOr<SubscribeMsg> msg = DecodeSubscribe(payload);
      if (!msg.ok()) {
        AckTo(conn, BestEffortSeq(payload), msg.status());
        return true;
      }
      HandleSubscribe(conn, *msg);
      return true;
    }
    case MsgType::kQuery: {
      const StatusOr<QueryMsg> msg = DecodeQuery(payload);
      if (!msg.ok()) {
        // Query errors travel in the result frame (the client awaits a
        // kQueryResult for this seq, not a kAck), decode errors included.
        QueryResultMsg result;
        result.seq = BestEffortSeq(payload);
        result.code = static_cast<uint8_t>(msg.status().code());
        result.message = msg.status().message();
        WriteTo(conn, Encode(result));
        return true;
      }
      HandleQuery(conn, *msg);
      return true;
    }
    case MsgType::kStatsRequest: {
      const StatusOr<StatsRequestMsg> msg = DecodeStatsRequest(payload);
      if (!msg.ok()) {
        AckTo(conn, BestEffortSeq(payload), msg.status());
        return true;
      }
      HandleStats(conn, *msg);
      return true;
    }
    case MsgType::kHello:
      AckTo(conn, 0,
            Status::FailedPrecondition("duplicate kHello after handshake"));
      return true;
    default:
      AckTo(conn, 0,
            Status::InvalidArgument("server-to-client message type " +
                                    std::to_string(int{payload[0]}) +
                                    " sent by a client"));
      return true;
  }
}

void ConvoyServer::HandleIngestBegin(const std::shared_ptr<Connection>& conn,
                                     const IngestBeginMsg& msg) {
  ConvoyQuery query;
  query.m = msg.m;
  query.k = msg.k;
  query.e = msg.e;
  const Status valid = ValidateQuery(query);
  if (!valid.ok()) {
    AckTo(conn, msg.seq, valid.WithContext("IngestBegin"));
    return;
  }
  if (msg.carry_forward_ticks < 0) {
    AckTo(conn, msg.seq,
          Status::InvalidArgument("IngestBegin: carry_forward_ticks < 0"));
    return;
  }

  std::shared_ptr<IngestStream> stream;
  bool reserved = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // One ingest stream per connection: batch frames carry no stream id,
    // so the connection itself is the route.
    for (const auto& [id, owner] : stream_owner_) {
      if (owner == conn && id != msg.stream_id) {
        AckTo(conn, msg.seq,
              Status::FailedPrecondition(
                  "connection already drives stream " + std::to_string(id) +
                  "; open a new connection per ingest stream"));
        return;
      }
    }
    auto it = streams_.find(msg.stream_id);
    if (it != streams_.end()) {
      // A stream survives its producer — and, with a WAL, the process: if
      // the previous owner hung up, a new connection may adopt the stream
      // (original query parameters stay in force) and resume after the
      // ack's resume_seq. A live owner keeps exclusive write access.
      auto owner = stream_owner_.find(msg.stream_id);
      if (owner != stream_owner_.end() && owner->second->open.load() &&
          owner->second != conn) {
        AckTo(conn, msg.seq,
              Status::FailedPrecondition(
                  "stream " + std::to_string(msg.stream_id) +
                  " is owned by a live connection"));
        return;
      }
      stream = it->second;
      stream_owner_[msg.stream_id] = conn;
    } else if (pending_streams_.count(msg.stream_id) > 0) {
      // Another connection's IngestBegin for this id is mid-append;
      // retryable, since that begin may yet fail and roll back.
      AckTo(conn, msg.seq,
            Status::FailedPrecondition(
                "stream " + std::to_string(msg.stream_id) +
                " has an IngestBegin in flight on another connection"),
            /*retryable=*/true);
      return;
    } else {
      pending_streams_.insert(msg.stream_id);
      reserved = true;
    }
  }
  if (reserved) {
    // The kBegin record must be durable before the stream exists (and
    // before the ack leaves): recovery needs the query parameters to
    // rebuild the StreamingCmc. The append runs outside mu_ — a disk
    // write (worse, an fsync) must not stall every other reader thread's
    // dispatch — while the pending reservation keeps the id exclusive.
    Status logged = Status::Ok();
    if (wal_ != nullptr) {
      wal::WalRecord record;
      record.kind = wal::WalRecordKind::kBegin;
      record.stream_id = msg.stream_id;
      record.seq = msg.seq;
      record.m = msg.m;
      record.k = msg.k;
      record.e = msg.e;
      record.carry_forward_ticks = msg.carry_forward_ticks;
      logged = wal_->Append(record);
    }
    if (!logged.ok()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        pending_streams_.erase(msg.stream_id);
      }
      AckTo(conn, msg.seq, logged.WithContext("wal"));
      return;
    }
    stream = std::make_shared<IngestStream>(msg, options_.ring_capacity, this,
                                            &trace_, wal_.get());
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_streams_.erase(msg.stream_id);
      streams_.emplace(msg.stream_id, stream);
      stream_owner_[msg.stream_id] = conn;
      trace_.CountMax(TraceCounter::kServerActiveSessionsMax,
                      streams_.size());
    }
  }
  // The OK ack tells a resuming producer where to continue: everything at
  // or below resume_seq is applied (resends of it would be absorbed as
  // duplicates anyway).
  AckMsg ack;
  ack.seq = msg.seq;
  ack.resume_seq = stream->LastAppliedSeq();
  WriteTo(conn, Encode(ack));
}

void ConvoyServer::HandleStreamItem(const std::shared_ptr<Connection>& conn,
                                    MsgType type, const std::string& payload) {
  WorkItem item;
  switch (type) {
    case MsgType::kReportBatch: {
      StatusOr<ReportBatchMsg> msg = DecodeReportBatch(payload);
      if (!msg.ok()) {
        AckTo(conn, BestEffortSeq(payload), msg.status());
        return;
      }
      item.kind = WorkItem::Kind::kBatch;
      item.seq = msg->seq;
      item.tick = msg->tick;
      item.rows = std::move(msg->rows);
      break;
    }
    case MsgType::kEndTick: {
      const StatusOr<EndTickMsg> msg = DecodeEndTick(payload);
      if (!msg.ok()) {
        AckTo(conn, BestEffortSeq(payload), msg.status());
        return;
      }
      item.kind = WorkItem::Kind::kEndTick;
      item.seq = msg->seq;
      item.tick = msg->tick;
      break;
    }
    default: {
      const StatusOr<IngestFinishMsg> msg = DecodeIngestFinish(payload);
      if (!msg.ok()) {
        AckTo(conn, BestEffortSeq(payload), msg.status());
        return;
      }
      item.kind = WorkItem::Kind::kFinish;
      item.seq = msg->seq;
      break;
    }
  }

  std::shared_ptr<IngestStream> stream;
  size_t queued = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Batch/tick/finish frames carry no stream id: a connection drives at
    // most one ingest stream (enforced in HandleIngestBegin), so the owner
    // map resolves the route unambiguously.
    for (const auto& [id, owner] : stream_owner_) {
      if (owner == conn) {
        auto it = streams_.find(id);
        if (it != streams_.end()) {
          stream = it->second;
          break;
        }
      }
    }
    if (options_.load_shed_high_water > 0) {
      for (const auto& [id, s] : streams_) queued += s->QueueDepth();
    }
  }
  if (stream == nullptr) {
    AckTo(conn, item.seq,
          Status::FailedPrecondition(
              "no ingest stream on this connection (IngestBegin missing)"));
    return;
  }
  if (options_.load_shed_high_water > 0 &&
      queued >= options_.load_shed_high_water) {
    // Load shedding at the door: above the high water the server is
    // already behind across all streams — tell producers to back off
    // before this item ties up a ring slot.
    trace_.Count(TraceCounter::kServerLoadShed, 1);
    AckTo(conn, item.seq,
          Status::RetryAfter("server overloaded: " + std::to_string(queued) +
                             " items queued across streams"),
          /*retryable=*/true);
    return;
  }
  const uint64_t seq = item.seq;
  switch (stream->Submit(std::move(item))) {
    case PushResult::kAccepted:
      break;
    case PushResult::kFull:
      AckTo(conn, seq,
            Status::FailedPrecondition("ingest ring full: flow control"),
            /*retryable=*/true);
      trace_.Count(TraceCounter::kServerBatchesRejected, 1);
      break;
    case PushResult::kClosed:
      // Shutting-down stream: non-retryable, or the client's flow-control
      // retry loop would resend forever against a ring that will never
      // accept again.
      AckTo(conn, seq,
            Status::FailedPrecondition(
                "stream closed: no longer accepting ingest"));
      trace_.Count(TraceCounter::kServerBatchesRejected, 1);
      break;
  }
}

void ConvoyServer::HandleSubscribe(const std::shared_ptr<Connection>& conn,
                                   const SubscribeMsg& msg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (streams_.find(msg.stream_id) == streams_.end()) {
      AckTo(conn, msg.seq,
            Status::NotFound("no such stream: " +
                             std::to_string(msg.stream_id)));
      return;
    }
    std::vector<std::shared_ptr<Connection>>& subs =
        subscribers_[msg.stream_id];
    bool present = false;
    for (const auto& sub : subs) present = present || sub == conn;
    if (!present) subs.push_back(conn);
  }
  // Start the event sender (lazily, once): it drains this connection's
  // bounded queue onto the socket. Only the connection's own reader
  // thread reaches here, so the flag needs no lock.
  if (!conn->sender_started) {
    conn->sender_started = true;
    conn->sender =
        ServiceThread("event-sender", [this, conn] { SenderLoop(conn); });
  }
  // Subscribers legitimately go quiet — lift the idle read timeout.
  conn->subscriber.store(true);
  if (options_.idle_timeout_ms > 0) {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    if (conn->fd >= 0) {
      timeval tv{};  // zero = block forever
      ::setsockopt(conn->fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
  }
  AckTo(conn, msg.seq, Status::Ok());
  if (msg.replay_closed != 0) {
    // Catch-up after the live registration above: an event emitted in
    // between may arrive twice (once live, once here) — subscribers
    // dedup on event_index, which is stable across crash recovery.
    const std::shared_ptr<IngestStream> stream = FindStream(msg.stream_id);
    if (stream != nullptr) {
      for (const EventMsg& ev : stream->ClosedEvents()) {
        EnqueueEvent(conn, ev, Encode(ev));
      }
    }
  }
}

void ConvoyServer::HandleQuery(const std::shared_ptr<Connection>& conn,
                               const QueryMsg& msg) {
  QueryResultMsg result;
  result.seq = msg.seq;

  const std::shared_ptr<IngestStream> stream = FindStream(msg.stream_id);
  if (stream == nullptr) {
    result.code = static_cast<uint8_t>(StatusCode::kNotFound);
    result.message = "no such stream: " + std::to_string(msg.stream_id);
    WriteTo(conn, Encode(result));
    return;
  }
  if (msg.algo > static_cast<uint8_t>(AlgorithmChoice::kMc2)) {
    result.code = static_cast<uint8_t>(StatusCode::kInvalidArgument);
    result.message = "unknown algorithm choice " + std::to_string(msg.algo);
    WriteTo(conn, Encode(result));
    return;
  }

  ConvoyQuery query;
  query.m = msg.m;
  query.k = msg.k;
  query.e = msg.e;
  query.num_threads = msg.threads == 0 ? 1 : msg.threads;

  // Queries run on the reader thread against an engine snapshot of the
  // stream's accepted rows — ingest keeps flowing through the worker while
  // this executes.
  const std::shared_ptr<const ConvoyEngine> engine = stream->SnapshotEngine();
  const StatusOr<QueryPlan> plan =
      engine->Prepare(query, static_cast<AlgorithmChoice>(msg.algo));
  if (!plan.ok()) {
    result.code = static_cast<uint8_t>(plan.status().code());
    result.message = plan.status().message();
    WriteTo(conn, Encode(result));
    return;
  }
  StatusOr<ConvoyResultSet> executed = engine->Execute(*plan);
  if (!executed.ok()) {
    result.code = static_cast<uint8_t>(executed.status().code());
    result.message = executed.status().message();
    WriteTo(conn, Encode(result));
    return;
  }
  if (msg.explain != 0) result.explain = plan->Explain();
  result.convoys = std::move(*executed).TakeConvoys();
  std::string encoded = Encode(result);
  if (encoded.size() > kMaxFramePayload) {
    // WriteFrame refuses oversized frames and WriteTo would read that as a
    // dead peer and drop the connection — answer in-band instead, so the
    // "errors return in the result frame" contract holds at any size.
    QueryResultMsg too_big;
    too_big.seq = msg.seq;
    too_big.code = static_cast<uint8_t>(StatusCode::kDataError);
    too_big.message = "result of " + std::to_string(result.convoys.size()) +
                      " convoys encodes to " + std::to_string(encoded.size()) +
                      " bytes, over the " + std::to_string(kMaxFramePayload) +
                      "-byte frame limit; narrow the query";
    encoded = Encode(too_big);
  }
  WriteTo(conn, encoded);
}

void ConvoyServer::HandleStats(const std::shared_ptr<Connection>& conn,
                               const StatsRequestMsg& msg) {
  StatsResultMsg result;
  result.seq = msg.seq;
  result.json = StatsJson();
  WriteTo(conn, Encode(result));
}

void ConvoyServer::WriteTo(const std::shared_ptr<Connection>& conn,
                           const std::string& payload) {
  std::lock_guard<std::mutex> lock(conn->write_mu);
  // Both checks sit under write_mu: CloseConnection releases the fd under
  // the same mutex, so a writer can never observe a closed (or reused) fd.
  if (!conn->open.load() || conn->fd < 0) return;
  const Status written = WriteFrame(conn->fd, payload);
  if (!written.ok()) {
    // Dead peer: stop writing and wake the reader so it can exit.
    conn->open.store(false);
    ::shutdown(conn->fd, SHUT_RDWR);
  }
}

void ConvoyServer::CloseConnection(const std::shared_ptr<Connection>& conn) {
  std::lock_guard<std::mutex> lock(conn->write_mu);
  conn->open.store(false);
  if (conn->fd >= 0) {
    ::close(conn->fd);
    conn->fd = -1;
  }
}

void ConvoyServer::AckTo(const std::shared_ptr<Connection>& conn, uint64_t seq,
                         const Status& status, bool retryable) {
  AckMsg ack;
  ack.seq = seq;
  ack.code = static_cast<uint8_t>(status.code());
  ack.retryable = retryable ? 1 : 0;
  ack.message = status.message();
  WriteTo(conn, Encode(ack));
}

std::shared_ptr<IngestStream> ConvoyServer::FindStream(uint64_t stream_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(stream_id);
  return it == streams_.end() ? nullptr : it->second;
}

void ConvoyServer::SendAck(uint64_t stream_id, const AckMsg& ack) {
  std::shared_ptr<Connection> owner;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = stream_owner_.find(stream_id);
    if (it != stream_owner_.end()) owner = it->second;
  }
  if (owner != nullptr) WriteTo(owner, Encode(ack));
}

void ConvoyServer::SendEvent(const EventMsg& event) {
  std::vector<std::shared_ptr<Connection>> subs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = subscribers_.find(event.stream_id);
    if (it != subscribers_.end()) subs = it->second;
  }
  if (subs.empty()) return;
  const std::string payload = Encode(event);
  for (const auto& sub : subs) EnqueueEvent(sub, event, payload);
}

namespace {

/// The in-band loss report for a drop run. Built under eq_mu (reads the
/// connection's drop accounting); `dropped` saturates at u32 max.
EventMsg GapEvent(uint64_t stream_id, uint64_t dropped) {
  EventMsg gap;
  gap.stream_id = stream_id;
  gap.kind = static_cast<uint8_t>(EventKind::kGap);
  gap.live_candidates = static_cast<uint32_t>(
      std::min<uint64_t>(dropped, std::numeric_limits<uint32_t>::max()));
  return gap;
}

}  // namespace

void ConvoyServer::EnqueueEvent(const std::shared_ptr<Connection>& conn,
                                const EventMsg& event,
                                const std::string& frame) {
  {
    std::lock_guard<std::mutex> lock(conn->eq_mu);
    if (conn->eq_closed) return;
    // A pending drop run takes two slots (gap marker + this frame): the
    // queue must never exceed its capacity, even by the marker.
    const size_t needed = conn->dropped_events > 0 ? 2 : 1;
    if (conn->event_queue.size() + needed >
        options_.subscriber_queue_capacity) {
      // Slow subscriber: drop rather than stall the stream worker (the
      // worker's SendEvent must never block on one consumer's socket).
      // Still notify: a drained sender flushes the gap marker itself.
      ++conn->dropped_events;
      conn->dropped_stream_id = event.stream_id;
      trace_.Count(TraceCounter::kServerEventsDropped, 1);
    } else {
      if (conn->dropped_events > 0) {
        // First enqueue after a drop run: tell the subscriber how much it
        // missed, in-band, before the stream resumes.
        conn->event_queue.push_back(
            Encode(GapEvent(event.stream_id, conn->dropped_events)));
        conn->dropped_events = 0;
      }
      conn->event_queue.push_back(frame);
    }
  }
  conn->eq_cv.notify_one();
}

void ConvoyServer::SenderLoop(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    std::string frame;
    {
      std::unique_lock<std::mutex> lock(conn->eq_mu);
      conn->eq_cv.wait(lock, [&conn] {
        return conn->eq_closed || !conn->event_queue.empty() ||
               conn->dropped_events > 0;
      });
      if (!conn->event_queue.empty()) {
        frame = std::move(conn->event_queue.front());
        conn->event_queue.pop_front();
      } else if (conn->dropped_events > 0) {
        // The queue drained (or closed) with a drop run still pending:
        // flush the gap marker now — a subscriber whose final events
        // were shed before the stream went quiet must still learn that
        // events were lost.
        frame = Encode(
            GapEvent(conn->dropped_stream_id, conn->dropped_events));
        conn->dropped_events = 0;
      } else {
        return;  // closed and fully drained
      }
    }
    // Outside eq_mu: a slow socket must not block enqueuers (they shed
    // into drops instead). WriteTo no-ops once the connection died.
    WriteTo(conn, frame);
  }
}

std::string ConvoyServer::StatsJson() const {
  std::ostringstream out;
  out << "{\"schema\":\"convoy-server-stats-v1\",\"metrics\":";
  trace_.Metrics().WriteJson(out);
  out << "}";
  return out.str();
}

}  // namespace convoy::server
