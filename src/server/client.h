#ifndef CONVOY_SERVER_CLIENT_H_
#define CONVOY_SERVER_CLIENT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/convoy_set.h"
#include "server/protocol.h"
#include "util/status.h"

namespace convoy::server {

/// A blocking client for the convoy server — the library behind
/// tools/convoy_loadgen.cc, the CLI's remote mode, and the end-to-end
/// tests. One instance drives one connection from one thread at a time
/// (no internal locking); run several instances for concurrency.
///
/// Requests may be pipelined: every Send* returns immediately with the
/// request's sequence number, and AwaitAck(seq) reads frames until that
/// ack arrives, buffering out-of-order acks and any subscription events
/// encountered along the way (drain events with NextEvent / PollEvent).
class ConvoyClient {
 public:
  /// Connects and performs the kHello handshake. kInternal on socket
  /// errors; kFailedPrecondition when the server rejects the handshake
  /// (version mismatch), with the server's reason in the message.
  static StatusOr<std::unique_ptr<ConvoyClient>> Connect(
      const std::string& host, uint16_t port);

  ~ConvoyClient();
  ConvoyClient(const ConvoyClient&) = delete;
  ConvoyClient& operator=(const ConvoyClient&) = delete;

  // ------------------------------------------------------------- ingest --

  /// Opens the connection's ingest stream. Blocks for the ack.
  Status IngestBegin(uint64_t stream_id, const ConvoyQuery& query,
                     Tick carry_forward_ticks = 0);

  /// Pipelined sends: each returns the frame's sequence number (kInternal
  /// Status surfaces via the later AwaitAck when the socket died).
  uint64_t SendBatch(Tick tick, const std::vector<PositionReport>& rows);
  uint64_t SendEndTick(Tick tick);
  uint64_t SendFinish();

  /// Reads until the ack for `seq` arrives. Acks for other sequence
  /// numbers and subscription events are buffered, so awaiting in any
  /// order works. The returned ack may be a NAK — check `code` (and
  /// `retryable` for flow control).
  StatusOr<AckMsg> AwaitAck(uint64_t seq);

  /// Convenience: send + await, resending up to `max_retries` times on a
  /// retryable (flow control) NAK. Returns the final ack.
  StatusOr<AckMsg> ReportBatch(Tick tick,
                               const std::vector<PositionReport>& rows,
                               int max_retries = 0);
  StatusOr<AckMsg> EndTick(Tick tick, int max_retries = 0);
  StatusOr<AckMsg> Finish(int max_retries = 0);

  // ------------------------------------------------------ subscriptions --

  /// Subscribes this connection to the events of `stream_id`.
  Status Subscribe(uint64_t stream_id);

  /// The next subscription event: buffered first, else blocks reading the
  /// socket. kCancelled when the connection closes.
  StatusOr<EventMsg> NextEvent();

  // ------------------------------------------------------------ queries --

  /// An ad-hoc planned query against the accepted rows of `stream_id`.
  /// `algo` 0 = planner auto-choice; `explain` requests the plan text.
  /// The result's `code` carries server-side errors (invalid query, no
  /// such stream).
  StatusOr<QueryResultMsg> Query(uint64_t stream_id, const ConvoyQuery& query,
                                 uint8_t algo = 0, bool explain = false);

  /// The server's metrics JSON ("/stats"-style dump).
  StatusOr<std::string> Stats();

  /// Half-closes the socket, waking any thread blocked in NextEvent /
  /// AwaitAck with kCancelled. The only member safe to call from another
  /// thread; the fd stays valid until destruction.
  void ShutdownSocket();

 private:
  explicit ConvoyClient(int fd) : fd_(fd) {}

  uint64_t NextSeq() { return next_seq_++; }
  /// Sends one frame; a failed send poisons the connection (every later
  /// Await returns the error).
  void SendFrame(const std::string& payload);
  /// Reads and classifies one frame into the ack/event/result buffers.
  Status PumpOne();

  int fd_ = -1;
  uint64_t next_seq_ = 1;
  Status io_status_;  ///< first socket error, sticky
  std::map<uint64_t, AckMsg> pending_acks_;
  std::deque<EventMsg> events_;
  std::map<uint64_t, QueryResultMsg> query_results_;
  std::map<uint64_t, StatsResultMsg> stats_results_;
};

}  // namespace convoy::server

#endif  // CONVOY_SERVER_CLIENT_H_
