#ifndef CONVOY_SERVER_CLIENT_H_
#define CONVOY_SERVER_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/convoy_set.h"
#include "server/protocol.h"
#include "util/status.h"

namespace convoy::server {

struct ClientOptions {
  /// Wall-clock budget of each blocking operation (AwaitAck, NextEvent,
  /// Query, Stats, the connect handshake). 0 = block forever (PR 8
  /// behavior). Expiry surfaces as kDeadlineExceeded and poisons the
  /// connection — after a timeout the frame stream may be mid-frame, so
  /// the recovery path is reconnect-and-resume, not retry-in-place.
  uint32_t deadline_ms = 0;

  /// Exponential backoff between resends of a retryable NAK (flow
  /// control / load shed): attempt n sleeps ~initial*2^n, capped at max,
  /// each delay jittered into [delay/2, delay] so a fleet of backed-off
  /// producers does not retry in lockstep.
  uint32_t backoff_initial_ms = 2;
  uint32_t backoff_max_ms = 200;
  /// Seed of the jitter stream — seeded, so runs are reproducible.
  uint64_t jitter_seed = 1;
};

/// A blocking client for the convoy server — the library behind
/// tools/convoy_loadgen.cc, the CLI's remote mode, and the end-to-end
/// tests. One instance drives one connection from one thread at a time
/// (no internal locking); run several instances for concurrency.
///
/// Requests may be pipelined: every Send* returns immediately with the
/// request's sequence number, and AwaitAck(seq) reads frames until that
/// ack arrives, buffering out-of-order acks and any subscription events
/// encountered along the way (drain events with NextEvent / PollEvent).
///
/// Resilience: deadlines and backoff come from ClientOptions. To survive
/// a server restart, reconnect and call IngestBegin with the same
/// stream_id — the ack's resume_seq reports the last item the server
/// applied (WAL-recovered work included); this client then continues its
/// sequence numbers after it, and any overlap it resends anyway is acked
/// as a duplicate (kAckFlagDuplicate) without being re-applied.
class ConvoyClient {
 public:
  /// Connects and performs the kHello handshake. kInternal on socket
  /// errors; kFailedPrecondition when the server rejects the handshake
  /// (version mismatch), with the server's reason in the message;
  /// kDeadlineExceeded when options.deadline_ms elapses first.
  static StatusOr<std::unique_ptr<ConvoyClient>> Connect(
      const std::string& host, uint16_t port, ClientOptions options = {});

  ~ConvoyClient();
  ConvoyClient(const ConvoyClient&) = delete;
  ConvoyClient& operator=(const ConvoyClient&) = delete;

  // ------------------------------------------------------------- ingest --

  /// Opens (or, after a reconnect, resumes) the connection's ingest
  /// stream. Blocks for the ack. On success `resume_seq` (nullable)
  /// receives the server's last applied item seq — 0 for a fresh stream —
  /// and the client's own sequence numbering continues after it.
  Status IngestBegin(uint64_t stream_id, const ConvoyQuery& query,
                     Tick carry_forward_ticks = 0,
                     uint64_t* resume_seq = nullptr);

  /// Pipelined sends: each returns the frame's sequence number (kInternal
  /// Status surfaces via the later AwaitAck when the socket died).
  uint64_t SendBatch(Tick tick, const std::vector<PositionReport>& rows);
  uint64_t SendEndTick(Tick tick);
  uint64_t SendFinish();

  /// Reads until the ack for `seq` arrives. Acks for other sequence
  /// numbers and subscription events are buffered, so awaiting in any
  /// order works. The returned ack may be a NAK — check `code` (and
  /// `retryable` for flow control), or a duplicate-absorbed OK (flags &
  /// kAckFlagDuplicate). kDeadlineExceeded when the deadline expires.
  StatusOr<AckMsg> AwaitAck(uint64_t seq);

  /// Convenience: send + await, resending up to `max_retries` times on a
  /// retryable (flow control / load shed) NAK with jittered exponential
  /// backoff between attempts. Returns the final ack.
  StatusOr<AckMsg> ReportBatch(Tick tick,
                               const std::vector<PositionReport>& rows,
                               int max_retries = 0);
  StatusOr<AckMsg> EndTick(Tick tick, int max_retries = 0);
  StatusOr<AckMsg> Finish(int max_retries = 0);

  // ------------------------------------------------------ subscriptions --

  /// Subscribes this connection to the events of `stream_id`.
  /// `replay_closed` first delivers every closed-convoy event recorded so
  /// far (crash-recovered history included); dedup on event_index — the
  /// catch-up may overlap the live feed.
  Status Subscribe(uint64_t stream_id, bool replay_closed = false);

  /// The next subscription event: buffered first, else blocks reading the
  /// socket. kCancelled when the connection closes; kDeadlineExceeded on
  /// deadline expiry.
  StatusOr<EventMsg> NextEvent();

  // ------------------------------------------------------------ queries --

  /// An ad-hoc planned query against the accepted rows of `stream_id`.
  /// `algo` 0 = planner auto-choice; `explain` requests the plan text.
  /// The result's `code` carries server-side errors (invalid query, no
  /// such stream).
  StatusOr<QueryResultMsg> Query(uint64_t stream_id, const ConvoyQuery& query,
                                 uint8_t algo = 0, bool explain = false);

  /// The server's metrics JSON ("/stats"-style dump).
  StatusOr<std::string> Stats();

  /// Half-closes the socket, waking any thread blocked in NextEvent /
  /// AwaitAck with kCancelled. The only member safe to call from another
  /// thread; the fd stays valid until destruction.
  void ShutdownSocket();

 private:
  ConvoyClient(int fd, const ClientOptions& options)
      : options_(options), fd_(fd), jitter_state_(options.jitter_seed) {}

  uint64_t NextSeq() { return next_seq_++; }
  /// Sends one frame; a failed send poisons the connection (every later
  /// Await returns the error).
  void SendFrame(const std::string& payload);
  /// Reads and classifies one frame into the ack/event/result buffers.
  /// With a deadline set, arms SO_RCVTIMEO with the remaining budget
  /// first; expiry poisons the connection with kDeadlineExceeded.
  Status PumpOne(
      const std::optional<std::chrono::steady_clock::time_point>& deadline);
  /// This operation's absolute deadline (nullopt when deadlines are off).
  std::optional<std::chrono::steady_clock::time_point> OpDeadline() const;
  /// Sleeps the jittered exponential-backoff delay for retry `attempt`.
  void Backoff(int attempt);

  const ClientOptions options_;
  int fd_ = -1;
  uint64_t next_seq_ = 1;
  uint64_t jitter_state_ = 1;
  Status io_status_;  ///< first socket error, sticky
  std::map<uint64_t, AckMsg> pending_acks_;
  std::deque<EventMsg> events_;
  std::map<uint64_t, QueryResultMsg> query_results_;
  std::map<uint64_t, StatsResultMsg> stats_results_;
};

}  // namespace convoy::server

#endif  // CONVOY_SERVER_CLIENT_H_
