#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace convoy::server {

namespace {

/// splitmix64 — the jitter stream (seeded via ClientOptions, so retry
/// timing is reproducible in tests).
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void ArmReadTimeout(int fd, std::chrono::steady_clock::time_point deadline) {
  const auto now = std::chrono::steady_clock::now();
  long remaining_us =
      std::chrono::duration_cast<std::chrono::microseconds>(deadline - now)
          .count();
  // Never arm a zero timeout: that means "block forever" to SO_RCVTIMEO.
  if (remaining_us < 1) remaining_us = 1;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(remaining_us / 1000000);
  tv.tv_usec = static_cast<suseconds_t>(remaining_us % 1000000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

StatusOr<std::unique_ptr<ConvoyClient>> ConvoyClient::Connect(
    const std::string& host, uint16_t port, ClientOptions options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status =
        Status::Internal(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  // Request/response frames are small; without TCP_NODELAY, Nagle plus
  // delayed ACK costs ~40ms per pipelined ack round on loopback.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  // make_unique cannot reach the private ctor; ownership is taken on the
  // same line.  convoy-lint: allow-line(naked-new)
  std::unique_ptr<ConvoyClient> client(new ConvoyClient(fd, options));
  const Status sent = WriteFrame(fd, Encode(HelloMsg{}));
  if (!sent.ok()) return sent.WithContext("handshake");
  if (options.deadline_ms > 0) {
    ArmReadTimeout(fd, std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(options.deadline_ms));
  }
  StatusOr<std::string> frame = ReadFrame(fd);
  if (!frame.ok()) return frame.status().WithContext("handshake");
  const StatusOr<HelloAckMsg> ack = DecodeHelloAck(*frame);
  if (!ack.ok()) return ack.status().WithContext("handshake");
  if (ack->accepted == 0) {
    return Status::FailedPrecondition("server rejected handshake: " +
                                      ack->message);
  }
  return client;
}

ConvoyClient::~ConvoyClient() {
  if (fd_ >= 0) ::close(fd_);
}

void ConvoyClient::ShutdownSocket() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void ConvoyClient::SendFrame(const std::string& payload) {
  if (!io_status_.ok()) return;
  const Status sent = WriteFrame(fd_, payload);
  if (!sent.ok()) io_status_ = sent;
}

std::optional<std::chrono::steady_clock::time_point> ConvoyClient::OpDeadline()
    const {
  if (options_.deadline_ms == 0) return std::nullopt;
  return std::chrono::steady_clock::now() +
         std::chrono::milliseconds(options_.deadline_ms);
}

void ConvoyClient::Backoff(int attempt) {
  const uint32_t shift = attempt > 20 ? 20u : static_cast<uint32_t>(attempt);
  uint64_t delay_ms = static_cast<uint64_t>(options_.backoff_initial_ms)
                      << shift;
  delay_ms = std::min<uint64_t>(delay_ms, options_.backoff_max_ms);
  if (delay_ms == 0) return;
  // Jitter into [delay/2, delay]: staggered retries, bounded wait.
  jitter_state_ = SplitMix64(jitter_state_);
  const uint64_t half = delay_ms / 2;
  const uint64_t jittered = half + jitter_state_ % (delay_ms - half + 1);
  ::usleep(static_cast<useconds_t>(jittered * 1000));
}

Status ConvoyClient::PumpOne(
    const std::optional<std::chrono::steady_clock::time_point>& deadline) {
  if (!io_status_.ok()) return io_status_;
  if (deadline.has_value()) {
    if (std::chrono::steady_clock::now() >= *deadline) {
      io_status_ = Status::DeadlineExceeded(
          "client deadline expired awaiting a server frame");
      return io_status_;
    }
    ArmReadTimeout(fd_, *deadline);
  }
  StatusOr<std::string> frame = ReadFrame(fd_);
  if (!frame.ok()) {
    // kDeadlineExceeded included: after a receive timeout the connection
    // may sit mid-frame, so the deadline poisons it too — the documented
    // recovery is reconnect-and-resume.
    io_status_ = frame.status();
    return io_status_;
  }
  const StatusOr<MsgType> type = PeekType(*frame);
  if (!type.ok()) return type.status();
  switch (*type) {
    case MsgType::kAck: {
      StatusOr<AckMsg> msg = DecodeAck(*frame);
      if (!msg.ok()) return msg.status();
      pending_acks_[msg->seq] = std::move(*msg);
      return Status::Ok();
    }
    case MsgType::kEvent: {
      StatusOr<EventMsg> msg = DecodeEvent(*frame);
      if (!msg.ok()) return msg.status();
      events_.push_back(std::move(*msg));
      return Status::Ok();
    }
    case MsgType::kQueryResult: {
      StatusOr<QueryResultMsg> msg = DecodeQueryResult(*frame);
      if (!msg.ok()) return msg.status();
      query_results_[msg->seq] = std::move(*msg);
      return Status::Ok();
    }
    case MsgType::kStatsResult: {
      StatusOr<StatsResultMsg> msg = DecodeStatsResult(*frame);
      if (!msg.ok()) return msg.status();
      stats_results_[msg->seq] = std::move(*msg);
      return Status::Ok();
    }
    default:
      return Status::DataError("unexpected server frame type " +
                               std::to_string(int{(*frame)[0]}));
  }
}

Status ConvoyClient::IngestBegin(uint64_t stream_id, const ConvoyQuery& query,
                                 Tick carry_forward_ticks,
                                 uint64_t* resume_seq) {
  IngestBeginMsg msg;
  msg.seq = NextSeq();
  msg.stream_id = stream_id;
  msg.m = static_cast<uint32_t>(query.m);
  msg.k = query.k;
  msg.e = query.e;
  msg.carry_forward_ticks = carry_forward_ticks;
  SendFrame(Encode(msg));
  StatusOr<AckMsg> ack = AwaitAck(msg.seq);
  if (!ack.ok()) return ack.status();
  if (ack->code != 0) {
    return Status(static_cast<StatusCode>(ack->code), ack->message);
  }
  // Resume bookkeeping: never reuse a sequence number the server already
  // applied, or fresh work would be absorbed as duplicates.
  if (next_seq_ <= ack->resume_seq) next_seq_ = ack->resume_seq + 1;
  if (resume_seq != nullptr) *resume_seq = ack->resume_seq;
  return Status::Ok();
}

uint64_t ConvoyClient::SendBatch(Tick tick,
                                 const std::vector<PositionReport>& rows) {
  ReportBatchMsg msg;
  msg.seq = NextSeq();
  msg.tick = tick;
  msg.rows = rows;
  SendFrame(Encode(msg));
  return msg.seq;
}

uint64_t ConvoyClient::SendEndTick(Tick tick) {
  EndTickMsg msg;
  msg.seq = NextSeq();
  msg.tick = tick;
  SendFrame(Encode(msg));
  return msg.seq;
}

uint64_t ConvoyClient::SendFinish() {
  IngestFinishMsg msg;
  msg.seq = NextSeq();
  SendFrame(Encode(msg));
  return msg.seq;
}

StatusOr<AckMsg> ConvoyClient::AwaitAck(uint64_t seq) {
  const auto deadline = OpDeadline();
  for (;;) {
    auto it = pending_acks_.find(seq);
    if (it != pending_acks_.end()) {
      AckMsg ack = std::move(it->second);
      pending_acks_.erase(it);
      return ack;
    }
    CONVOY_RETURN_IF_ERROR(PumpOne(deadline));
  }
}

namespace {

bool IsRetryableNak(const AckMsg& ack) {
  return ack.code != 0 && ack.retryable != 0;
}

}  // namespace

StatusOr<AckMsg> ConvoyClient::ReportBatch(
    Tick tick, const std::vector<PositionReport>& rows, int max_retries) {
  for (int attempt = 0;; ++attempt) {
    StatusOr<AckMsg> ack = AwaitAck(SendBatch(tick, rows));
    if (!ack.ok() || !IsRetryableNak(*ack) || attempt >= max_retries) {
      return ack;
    }
    Backoff(attempt);
  }
}

StatusOr<AckMsg> ConvoyClient::EndTick(Tick tick, int max_retries) {
  for (int attempt = 0;; ++attempt) {
    StatusOr<AckMsg> ack = AwaitAck(SendEndTick(tick));
    if (!ack.ok() || !IsRetryableNak(*ack) || attempt >= max_retries) {
      return ack;
    }
    Backoff(attempt);
  }
}

StatusOr<AckMsg> ConvoyClient::Finish(int max_retries) {
  for (int attempt = 0;; ++attempt) {
    StatusOr<AckMsg> ack = AwaitAck(SendFinish());
    if (!ack.ok() || !IsRetryableNak(*ack) || attempt >= max_retries) {
      return ack;
    }
    Backoff(attempt);
  }
}

Status ConvoyClient::Subscribe(uint64_t stream_id, bool replay_closed) {
  SubscribeMsg msg;
  msg.seq = NextSeq();
  msg.stream_id = stream_id;
  msg.replay_closed = replay_closed ? 1 : 0;
  SendFrame(Encode(msg));
  StatusOr<AckMsg> ack = AwaitAck(msg.seq);
  if (!ack.ok()) return ack.status();
  if (ack->code != 0) {
    return Status(static_cast<StatusCode>(ack->code), ack->message);
  }
  return Status::Ok();
}

StatusOr<EventMsg> ConvoyClient::NextEvent() {
  const auto deadline = OpDeadline();
  while (events_.empty()) {
    CONVOY_RETURN_IF_ERROR(PumpOne(deadline));
  }
  EventMsg event = std::move(events_.front());
  events_.pop_front();
  return event;
}

StatusOr<QueryResultMsg> ConvoyClient::Query(uint64_t stream_id,
                                             const ConvoyQuery& query,
                                             uint8_t algo, bool explain) {
  QueryMsg msg;
  msg.seq = NextSeq();
  msg.stream_id = stream_id;
  msg.m = static_cast<uint32_t>(query.m);
  msg.k = query.k;
  msg.e = query.e;
  msg.algo = algo;
  msg.explain = explain ? 1 : 0;
  msg.threads = static_cast<uint32_t>(query.num_threads);
  SendFrame(Encode(msg));
  const auto deadline = OpDeadline();
  for (;;) {
    auto it = query_results_.find(msg.seq);
    if (it != query_results_.end()) {
      QueryResultMsg result = std::move(it->second);
      query_results_.erase(it);
      return result;
    }
    CONVOY_RETURN_IF_ERROR(PumpOne(deadline));
  }
}

StatusOr<std::string> ConvoyClient::Stats() {
  StatsRequestMsg msg;
  msg.seq = NextSeq();
  SendFrame(Encode(msg));
  const auto deadline = OpDeadline();
  for (;;) {
    auto it = stats_results_.find(msg.seq);
    if (it != stats_results_.end()) {
      std::string json = std::move(it->second.json);
      stats_results_.erase(it);
      return json;
    }
    CONVOY_RETURN_IF_ERROR(PumpOne(deadline));
  }
}

}  // namespace convoy::server
