#ifndef CONVOY_SERVER_RING_H_
#define CONVOY_SERVER_RING_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace convoy::server {

/// Why a TryPush did not (or did) take an item. The distinction matters
/// at the protocol layer: a full ring is transient flow control (NAK
/// retryable — resend later), a closed ring is terminal (NAK
/// non-retryable — the stream is shutting down and will never accept).
enum class PushResult : uint8_t {
  kAccepted = 0,  ///< item enqueued
  kFull,          ///< no slot free right now — retry after the consumer pops
  kClosed,        ///< ring closed — no push will ever succeed again
};

/// Bounded multi-producer single-consumer FIFO ring — the seam that
/// decouples the server's network I/O from its compute: socket reader
/// threads push parsed work items, one per-stream CMC worker pops them.
///
/// Backpressure is explicit and non-blocking by design: `TryPush` on a
/// full ring returns `PushResult::kFull` immediately — the caller answers
/// the client with a flow-control NAK (retryable) instead of buffering
/// unboundedly — and on a closed ring `PushResult::kClosed`, which the
/// caller must surface as non-retryable (the stream is gone for good).
/// The consumer side blocks in `Pop` until an item arrives or the ring is
/// closed *and drained*, so closing never loses accepted work.
///
/// Built on the same mutex + condition-variable primitives as
/// src/parallel/thread_pool.h rather than atomics: every item already
/// costs a syscall-heavy socket read, so lock-free push buys nothing,
/// while the mutex keeps the ring trivially TSan-clean and the FIFO
/// order — which the bit-identical replay guarantee rests on — obvious.
/// Items pushed by one producer are popped in that producer's push order
/// (global FIFO).
template <typename T>
class BoundedRing {
 public:
  /// A ring with room for `capacity` in-flight items (floored at 1).
  explicit BoundedRing(size_t capacity)
      : slots_(capacity == 0 ? 1 : capacity) {}

  BoundedRing(const BoundedRing&) = delete;
  BoundedRing& operator=(const BoundedRing&) = delete;

  /// Enqueues `item` unless the ring is full or closed; never blocks.
  /// Anything but kAccepted means the item was NOT taken: kFull is
  /// transient (flow-control the producer), kClosed is forever.
  PushResult TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return PushResult::kClosed;
      if (size_ == slots_.size()) return PushResult::kFull;
      slots_[(head_ + size_) % slots_.size()] = std::move(item);
      ++size_;
      if (size_ > high_water_) high_water_ = size_;
    }
    cv_.notify_one();
    return PushResult::kAccepted;
  }

  /// Blocks until an item is available (returns it) or the ring is closed
  /// and fully drained (returns nullopt — the consumer's exit signal).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return size_ > 0 || closed_; });
    if (size_ == 0) return std::nullopt;
    T out = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --size_;
    return out;
  }

  /// Non-blocking Pop: nullopt when the ring is currently empty (whether
  /// or not it is closed).
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (size_ == 0) return std::nullopt;
    T out = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --size_;
    return out;
  }

  /// Rejects all future pushes and wakes the consumer; items already
  /// accepted remain poppable. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool Closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Items currently queued.
  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }

  /// Highest queue depth ever observed — the ring's high-water mark,
  /// surfaced as the server.ring_high_water max counter.
  size_t HighWater() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

  size_t Capacity() const { return slots_.size(); }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Fixed circular storage; sized once in the constructor.
  std::vector<T> slots_;   // GUARDED_BY(mu_)
  size_t head_ = 0;        // GUARDED_BY(mu_)
  size_t size_ = 0;        // GUARDED_BY(mu_)
  size_t high_water_ = 0;  // GUARDED_BY(mu_)
  bool closed_ = false;    // GUARDED_BY(mu_)
};

}  // namespace convoy::server

#endif  // CONVOY_SERVER_RING_H_
