#ifndef CONVOY_SERVER_SESSION_H_
#define CONVOY_SERVER_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "core/engine.h"
#include "core/streaming.h"
#include "parallel/service_thread.h"
#include "server/protocol.h"
#include "server/ring.h"
#include "traj/trajectory.h"

namespace convoy {
class TraceSession;
}  // namespace convoy

namespace convoy::server {

/// One unit of ingest work, moved from a connection reader thread to the
/// stream's worker through the stream's BoundedRing. The reader never
/// touches the StreamingCmc — it only decodes, enqueues, and NAKs when the
/// ring is full — so convoy output order is a pure function of the input
/// sequence, independent of socket scheduling.
struct WorkItem {
  enum class Kind : uint8_t { kBatch = 0, kEndTick, kFinish };
  Kind kind = Kind::kBatch;
  uint64_t seq = 0;  ///< client sequence, echoed in the ack
  Tick tick = 0;     ///< meaningful for kBatch / kEndTick
  std::vector<PositionReport> rows;  ///< meaningful for kBatch
};

/// Where a stream worker delivers its results: per-item acks (to the
/// connection that owns the ingest session) and subscription events (fanned
/// out to whoever subscribed). Implemented by ConvoyServer over sockets and
/// by a recording stub in server_test.cc — the seam that lets the whole
/// session state machine be tested without a network.
class StreamSink {
 public:
  virtual ~StreamSink() = default;

  /// Acks (or NAKs) one processed WorkItem of stream `stream_id`.
  virtual void SendAck(uint64_t stream_id, const AckMsg& ack) = 0;

  /// Pushes one subscription event. Events of one stream arrive in
  /// deterministic order: per processed tick, a kTick summary, then
  /// new/extended convoys in canonical order, then closed convoys.
  virtual void SendEvent(const EventMsg& event) = 0;
};

/// One live ingest session: a BoundedRing of WorkItems consumed by a
/// dedicated ServiceThread that drives a StreamingCmc, emits subscription
/// events through the StreamSink, and records every accepted report into a
/// row table that ad-hoc queries snapshot into a ConvoyEngine.
///
/// Thread model:
///  * `Submit` is called by connection reader threads (any number); it only
///    touches the ring. A full ring returns kFull — the caller sends a
///    retryable flow-control NAK and drops the item. Backpressure is
///    explicit; nothing buffers without bound.
///  * the worker thread owns the StreamingCmc and all event bookkeeping
///    exclusively — no lock needed, FIFO order guaranteed by the ring.
///  * `SnapshotEngine` (query threads) copies the row table under its lock
///    and builds/caches an engine keyed on the table's revision, so
///    repeated queries between batches reuse the build.
///
/// Protocol errors (batch for the wrong tick, finish with a tick open,
/// anything after finish) are NAKed with the underlying recoverable Status
/// and leave the stream exactly as it was — the StreamingCmc contract,
/// surfaced per item.
class IngestStream {
 public:
  /// `sink` and `trace` (nullable) must outlive the stream.
  IngestStream(const IngestBeginMsg& begin, size_t ring_capacity,
               StreamSink* sink, TraceSession* trace);

  /// Closes the ring and joins the worker (drains queued items first).
  ~IngestStream();

  IngestStream(const IngestStream&) = delete;
  IngestStream& operator=(const IngestStream&) = delete;

  uint64_t stream_id() const { return stream_id_; }

  /// Enqueues one item for the worker. kFull means the ring has no slot —
  /// the caller NAKs with retryable=1 (flow control) and the client
  /// resends later. kClosed means the stream is shutting down and will
  /// never accept again — the caller NAKs non-retryable.
  PushResult Submit(WorkItem item);

  /// Closes the ring and joins the worker after it drains. Idempotent.
  /// Queued items are still processed (their acks may go to a dead
  /// connection, which the sink tolerates).
  void Close();

  /// The query parameters the stream was opened with.
  const ConvoyQuery& query() const { return query_; }

  /// An engine over every report accepted so far (last write per
  /// (object, tick) wins, mirroring StreamingCmc's snapshot semantics).
  /// Cached per row-table revision: queries between batches share one
  /// build. Never null; an empty stream yields an empty-database engine.
  std::shared_ptr<const ConvoyEngine> SnapshotEngine();

 private:
  void WorkerLoop();
  void Process(WorkItem& item);
  void ProcessBatch(const WorkItem& item);
  void ProcessEndTick(const WorkItem& item);
  void ProcessFinish(const WorkItem& item);
  /// kTick + new/extended/closed events for one processed tick.
  void EmitTickEvents(Tick tick, const std::vector<Convoy>& closed);
  void Nak(uint64_t seq, const Status& status);

  const uint64_t stream_id_;
  const ConvoyQuery query_;
  StreamSink* const sink_;
  TraceSession* const trace_;

  BoundedRing<WorkItem> ring_;

  // ---- worker-thread-only state (after construction, before Join) ----
  StreamingCmc stream_;
  bool finished_ = false;
  /// Object sets of the convoys open after the previous processed tick,
  /// diffed against the current open set to classify new vs extended.
  std::set<std::vector<ObjectId>> prev_open_;

  // ---- row table shared with query threads ----
  mutable std::mutex rows_mu_;
  std::map<ObjectId, std::vector<TimedPoint>> rows_;  // GUARDED_BY(rows_mu_)
  uint64_t revision_ = 0;                             // GUARDED_BY(rows_mu_)

  mutable std::mutex engine_mu_;
  std::shared_ptr<const ConvoyEngine> engine_;  // GUARDED_BY(engine_mu_)
  uint64_t engine_revision_ = 0;                // GUARDED_BY(engine_mu_)

  /// Last member: the worker must start after every field it touches is
  /// constructed, and the destructor joins it before anything tears down.
  ServiceThread worker_;
};

}  // namespace convoy::server

#endif  // CONVOY_SERVER_SESSION_H_
