#ifndef CONVOY_SERVER_SESSION_H_
#define CONVOY_SERVER_SESSION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "core/engine.h"
#include "core/streaming.h"
#include "parallel/service_thread.h"
#include "server/protocol.h"
#include "server/ring.h"
#include "traj/trajectory.h"
#include "wal/wal.h"

namespace convoy {
class TraceSession;
}  // namespace convoy

namespace convoy::server {

/// One unit of ingest work, moved from a connection reader thread to the
/// stream's worker through the stream's BoundedRing. The reader never
/// touches the StreamingCmc — it only decodes, enqueues, and NAKs when the
/// ring is full — so convoy output order is a pure function of the input
/// sequence, independent of socket scheduling.
struct WorkItem {
  enum class Kind : uint8_t { kBatch = 0, kEndTick, kFinish };
  Kind kind = Kind::kBatch;
  uint64_t seq = 0;  ///< client sequence, echoed in the ack
  Tick tick = 0;     ///< meaningful for kBatch / kEndTick
  std::vector<PositionReport> rows;  ///< meaningful for kBatch
};

/// Where a stream worker delivers its results: per-item acks (to the
/// connection that owns the ingest session) and subscription events (fanned
/// out to whoever subscribed). Implemented by ConvoyServer over sockets and
/// by a recording stub in server_test.cc — the seam that lets the whole
/// session state machine be tested without a network.
class StreamSink {
 public:
  virtual ~StreamSink() = default;

  /// Acks (or NAKs) one processed WorkItem of stream `stream_id`.
  virtual void SendAck(uint64_t stream_id, const AckMsg& ack) = 0;

  /// Pushes one subscription event. Events of one stream arrive in
  /// deterministic order: per processed tick, a kTick summary, then
  /// new/extended convoys in canonical order, then closed convoys.
  virtual void SendEvent(const EventMsg& event) = 0;
};

/// One live ingest session: a BoundedRing of WorkItems consumed by a
/// dedicated ServiceThread that drives a StreamingCmc, emits subscription
/// events through the StreamSink, and records every accepted report into a
/// row table that ad-hoc queries snapshot into a ConvoyEngine.
///
/// Thread model:
///  * `Submit` is called by connection reader threads (any number); it only
///    touches the ring. A full ring returns kFull — the caller sends a
///    retryable flow-control NAK and drops the item. Backpressure is
///    explicit; nothing buffers without bound.
///  * the worker thread owns the StreamingCmc and all event bookkeeping
///    exclusively — no lock needed, FIFO order guaranteed by the ring.
///  * `SnapshotEngine` (query threads) copies the row table under its lock
///    and builds/caches an engine keyed on the table's revision, so
///    repeated queries between batches reuse the build.
///
/// Protocol errors (batch for the wrong tick, finish with a tick open,
/// anything after finish) are NAKed with the underlying recoverable Status
/// and leave the stream exactly as it was — the StreamingCmc contract,
/// surfaced per item.
///
/// Durability: with a WalWriter attached, every *accepted* item is appended
/// to the WAL after it is applied and before its ack leaves — an acked item
/// is always recoverable. A WAL append failure poisons the stream (the
/// in-memory state now holds work the log does not): the failed item and
/// everything after it are NAKed non-retryably and the ring is closed, so
/// the log never develops a gap relative to acked work. Items whose seq is
/// <= the last applied seq (a producer resending after reconnect, or a
/// duplicate WAL record after a crash between append and ack) are absorbed:
/// acked OK with kAckFlagDuplicate, not re-applied.
///
/// Recovery: the server re-creates the stream from its kBegin record with
/// `replaying` = true, feeds the remaining records through ReplayRecord on
/// the recovery thread (the worker is parked in ring_.Pop; the ring mutex
/// orders the hand-off), then calls FinishReplay before the first Submit.
/// Replay drives the exact Process() path — the rebuilt StreamingCmc, row
/// table, and closed-convoy history are bit-identical to an uninterrupted
/// run — with sink sends suppressed and WAL re-appends skipped.
class IngestStream {
 public:
  /// `sink` and `trace` (nullable) must outlive the stream; `wal`
  /// (nullable = no durability) is shared by every stream of the server.
  IngestStream(const IngestBeginMsg& begin, size_t ring_capacity,
               StreamSink* sink, TraceSession* trace,
               wal::WalWriter* wal = nullptr, bool replaying = false);

  /// Closes the ring and joins the worker (drains queued items first).
  ~IngestStream();

  IngestStream(const IngestStream&) = delete;
  IngestStream& operator=(const IngestStream&) = delete;

  uint64_t stream_id() const { return stream_id_; }

  /// Enqueues one item for the worker. kFull means the ring has no slot —
  /// the caller NAKs with retryable=1 (flow control) and the client
  /// resends later. kClosed means the stream is shutting down and will
  /// never accept again — the caller NAKs non-retryable.
  PushResult Submit(WorkItem item);

  /// Closes the ring and joins the worker after it drains. Idempotent.
  /// Queued items are still processed (their acks may go to a dead
  /// connection, which the sink tolerates).
  void Close();

  /// The query parameters the stream was opened with.
  const ConvoyQuery& query() const { return query_; }

  /// Items currently queued for the worker (load-shedding input).
  size_t QueueDepth() const { return ring_.Size(); }

  /// An engine over every report accepted so far (last write per
  /// (object, tick) wins, mirroring StreamingCmc's snapshot semantics).
  /// Cached per row-table revision: queries between batches share one
  /// build. Never null; an empty stream yields an empty-database engine.
  std::shared_ptr<const ConvoyEngine> SnapshotEngine();

  // ------------------------------------------------------------ recovery

  /// Applies one WAL record on the recovery thread (kBegin records are
  /// consumed by stream creation and ignored here). Only valid while the
  /// stream is in replay mode and before any Submit.
  void ReplayRecord(const wal::WalRecord& record);

  /// Leaves replay mode: subsequent items are logged, acked, and fanned
  /// out normally. Must be called before the first Submit.
  void FinishReplay() { replaying_ = false; }

  /// The seq of the last applied (acked or WAL-recovered) stream item —
  /// the resume_seq a reconnecting producer continues after.
  uint64_t LastAppliedSeq() const {
    return last_applied_seq_.load(std::memory_order_relaxed);
  }

  /// Every closed-convoy event recorded so far, in emission order with
  /// 1-based event_index (stable across crash recovery). Powers the
  /// replay_closed subscribe catch-up.
  std::vector<EventMsg> ClosedEvents() const;

 private:
  void WorkerLoop();
  void Process(WorkItem& item);
  void ProcessBatch(const WorkItem& item);
  void ProcessEndTick(const WorkItem& item);
  void ProcessFinish(const WorkItem& item);
  /// kTick + new/extended/closed events for one processed tick.
  void EmitTickEvents(Tick tick, const std::vector<Convoy>& closed);
  /// Assigns the next event_index, records the event in the closed
  /// history, and (when live) fans it out.
  void EmitClosed(Tick tick, uint32_t live_candidates, const Convoy& convoy);
  /// Appends the record for an applied item; on failure NAKs the item,
  /// poisons the stream, and returns false (the caller must not ack).
  bool LogApplied(wal::WalRecordKind kind, const WorkItem& item,
                  std::vector<wal::WalRow> rows);
  void Nak(uint64_t seq, const Status& status);
  /// Sink sends, suppressed during replay (there is nobody to talk to and
  /// the counters must reflect live traffic only).
  void SendAckIfLive(const AckMsg& ack);
  void SendEventIfLive(const EventMsg& event);

  const uint64_t stream_id_;
  const ConvoyQuery query_;
  StreamSink* const sink_;
  TraceSession* const trace_;
  wal::WalWriter* const wal_;

  BoundedRing<WorkItem> ring_;

  // ---- worker-thread-only state (after construction, before Join;
  //      touched by the recovery thread instead while replaying_) ----
  StreamingCmc stream_;
  bool finished_ = false;
  /// True between construction-with-replaying and FinishReplay. Only read
  /// on the thread currently driving Process (recovery, then worker — the
  /// ring mutex orders the hand-off).
  bool replaying_ = false;
  /// Set when a WAL append failed: the log is now behind the in-memory
  /// state, so no further item may be applied (it would be logged over a
  /// gap and recovery would diverge from acked history).
  bool wal_broken_ = false;
  /// Next closed-convoy event_index to assign (1-based).
  uint64_t next_event_index_ = 0;
  /// Object sets of the convoys open after the previous processed tick,
  /// diffed against the current open set to classify new vs extended.
  std::set<std::vector<ObjectId>> prev_open_;

  /// Written by the processing thread, read by reader threads building
  /// IngestBegin acks (resume_seq).
  std::atomic<uint64_t> last_applied_seq_{0};

  // ---- closed-convoy history shared with subscribe threads ----
  mutable std::mutex history_mu_;
  std::vector<EventMsg> closed_history_;  // GUARDED_BY(history_mu_)

  // ---- row table shared with query threads ----
  mutable std::mutex rows_mu_;
  std::map<ObjectId, std::vector<TimedPoint>> rows_;  // GUARDED_BY(rows_mu_)
  uint64_t revision_ = 0;                             // GUARDED_BY(rows_mu_)

  mutable std::mutex engine_mu_;
  std::shared_ptr<const ConvoyEngine> engine_;  // GUARDED_BY(engine_mu_)
  uint64_t engine_revision_ = 0;                // GUARDED_BY(engine_mu_)

  /// Last member: the worker must start after every field it touches is
  /// constructed, and the destructor joins it before anything tears down.
  ServiceThread worker_;
};

}  // namespace convoy::server

#endif  // CONVOY_SERVER_SESSION_H_
