#include "server/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "wal/fault.h"

namespace convoy::server {

namespace {

// ------------------------------------------------------ wire primitives
// Explicit byte-shift little-endian coding: independent of host
// endianness, and -Wconversion-clean by staying in unsigned space.

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF64(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

void PutConvoy(std::string* out, const Convoy& c) {
  PutI64(out, c.start_tick);
  PutI64(out, c.end_tick);
  PutU32(out, static_cast<uint32_t>(c.objects.size()));
  for (const ObjectId id : c.objects) PutU32(out, id);
}

/// Bounds-checked sequential reader over a payload. Every getter returns
/// false once a read would run past the end; `failed()` latches so a
/// decode can check once at the end.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v) {
    if (!Need(1)) return false;
    *v = static_cast<uint8_t>(data_[pos_]);
    ++pos_;
    return true;
  }

  bool GetU32(uint32_t* v) {
    if (!Need(4)) return false;
    uint32_t out = 0;
    for (size_t i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 4;
    *v = out;
    return true;
  }

  bool GetU64(uint64_t* v) {
    if (!Need(8)) return false;
    uint64_t out = 0;
    for (size_t i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return true;
  }

  bool GetI64(int64_t* v) {
    uint64_t raw = 0;
    if (!GetU64(&raw)) return false;
    *v = static_cast<int64_t>(raw);
    return true;
  }

  bool GetF64(double* v) {
    uint64_t bits = 0;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool GetString(std::string* v) {
    uint32_t len = 0;
    if (!GetU32(&len)) return false;
    if (!Need(len)) return false;
    v->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  bool GetConvoy(Convoy* c) {
    uint32_t n = 0;
    if (!GetI64(&c->start_tick) || !GetI64(&c->end_tick) || !GetU32(&n)) {
      return false;
    }
    // Each id is 4 bytes; checking up front caps the reserve below at the
    // payload size, so a hostile length cannot force a huge allocation.
    if (!Need(static_cast<size_t>(n) * 4)) return false;
    c->objects.clear();
    c->objects.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      uint32_t id = 0;
      if (!GetU32(&id)) return false;
      c->objects.push_back(id);
    }
    return true;
  }

  bool AtEnd() const { return pos_ == data_.size() && !failed_; }
  bool failed() const { return failed_; }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool Need(size_t n) {
    if (failed_ || data_.size() - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

std::string Begin(MsgType type) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(type));
  return out;
}

/// Shared decode prologue: non-empty payload with the expected type byte.
Status CheckType(WireReader* reader, MsgType expected, const char* name) {
  uint8_t type = 0;
  if (!reader->GetU8(&type)) {
    return Status::DataError(std::string(name) + ": empty payload");
  }
  if (type != static_cast<uint8_t>(expected)) {
    return Status::DataError(std::string(name) + ": wrong message type " +
                             std::to_string(type));
  }
  return Status::Ok();
}

Status CheckEnd(const WireReader& reader, const char* name) {
  if (reader.failed()) {
    return Status::DataError(std::string(name) + ": truncated payload");
  }
  if (!reader.AtEnd()) {
    return Status::DataError(std::string(name) + ": " +
                             std::to_string(reader.remaining()) +
                             " trailing byte(s)");
  }
  return Status::Ok();
}

}  // namespace

// ---------------------------------------------------------------- encode

std::string Encode(const HelloMsg& msg) {
  std::string out = Begin(MsgType::kHello);
  PutU32(&out, msg.magic);
  PutU8(&out, msg.version);
  return out;
}

std::string Encode(const HelloAckMsg& msg) {
  std::string out = Begin(MsgType::kHelloAck);
  PutU8(&out, msg.version);
  PutU8(&out, msg.accepted);
  PutString(&out, msg.message);
  return out;
}

std::string Encode(const IngestBeginMsg& msg) {
  std::string out = Begin(MsgType::kIngestBegin);
  PutU64(&out, msg.seq);
  PutU64(&out, msg.stream_id);
  PutU32(&out, msg.m);
  PutI64(&out, msg.k);
  PutF64(&out, msg.e);
  PutI64(&out, msg.carry_forward_ticks);
  return out;
}

std::string Encode(const ReportBatchMsg& msg) {
  std::string out = Begin(MsgType::kReportBatch);
  PutU64(&out, msg.seq);
  PutI64(&out, msg.tick);
  PutU32(&out, static_cast<uint32_t>(msg.rows.size()));
  for (const PositionReport& row : msg.rows) {
    PutU32(&out, row.id);
    PutF64(&out, row.x);
    PutF64(&out, row.y);
  }
  return out;
}

std::string Encode(const EndTickMsg& msg) {
  std::string out = Begin(MsgType::kEndTick);
  PutU64(&out, msg.seq);
  PutI64(&out, msg.tick);
  return out;
}

std::string Encode(const IngestFinishMsg& msg) {
  std::string out = Begin(MsgType::kIngestFinish);
  PutU64(&out, msg.seq);
  return out;
}

std::string Encode(const SubscribeMsg& msg) {
  std::string out = Begin(MsgType::kSubscribe);
  PutU64(&out, msg.seq);
  PutU64(&out, msg.stream_id);
  PutU8(&out, msg.replay_closed);
  return out;
}

std::string Encode(const QueryMsg& msg) {
  std::string out = Begin(MsgType::kQuery);
  PutU64(&out, msg.seq);
  PutU64(&out, msg.stream_id);
  PutU32(&out, msg.m);
  PutI64(&out, msg.k);
  PutF64(&out, msg.e);
  PutU8(&out, msg.algo);
  PutU8(&out, msg.explain);
  PutU32(&out, msg.threads);
  return out;
}

std::string Encode(const StatsRequestMsg& msg) {
  std::string out = Begin(MsgType::kStatsRequest);
  PutU64(&out, msg.seq);
  return out;
}

std::string Encode(const AckMsg& msg) {
  std::string out = Begin(MsgType::kAck);
  PutU64(&out, msg.seq);
  PutU8(&out, msg.code);
  PutU8(&out, msg.retryable);
  PutU8(&out, msg.flags);
  PutU32(&out, msg.accepted);
  PutU32(&out, msg.rejected);
  PutU64(&out, msg.resume_seq);
  PutString(&out, msg.message);
  return out;
}

std::string Encode(const EventMsg& msg) {
  std::string out = Begin(MsgType::kEvent);
  PutU64(&out, msg.stream_id);
  PutU8(&out, msg.kind);
  PutI64(&out, msg.tick);
  PutU32(&out, msg.live_candidates);
  PutU64(&out, msg.event_index);
  PutConvoy(&out, msg.convoy);
  return out;
}

std::string Encode(const QueryResultMsg& msg) {
  std::string out = Begin(MsgType::kQueryResult);
  PutU64(&out, msg.seq);
  PutU8(&out, msg.code);
  PutString(&out, msg.message);
  PutString(&out, msg.explain);
  PutU32(&out, static_cast<uint32_t>(msg.convoys.size()));
  for (const Convoy& c : msg.convoys) PutConvoy(&out, c);
  return out;
}

std::string Encode(const StatsResultMsg& msg) {
  std::string out = Begin(MsgType::kStatsResult);
  PutU64(&out, msg.seq);
  PutString(&out, msg.json);
  return out;
}

// ---------------------------------------------------------------- decode

StatusOr<MsgType> PeekType(std::string_view payload) {
  if (payload.empty()) return Status::DataError("empty payload");
  const uint8_t raw = static_cast<uint8_t>(payload[0]);
  switch (static_cast<MsgType>(raw)) {
    case MsgType::kHello:
    case MsgType::kIngestBegin:
    case MsgType::kReportBatch:
    case MsgType::kEndTick:
    case MsgType::kIngestFinish:
    case MsgType::kSubscribe:
    case MsgType::kQuery:
    case MsgType::kStatsRequest:
    case MsgType::kHelloAck:
    case MsgType::kAck:
    case MsgType::kEvent:
    case MsgType::kQueryResult:
    case MsgType::kStatsResult:
      return static_cast<MsgType>(raw);
  }
  return Status::DataError("unknown message type " + std::to_string(raw));
}

StatusOr<HelloMsg> DecodeHello(std::string_view payload) {
  WireReader reader(payload);
  CONVOY_RETURN_IF_ERROR(CheckType(&reader, MsgType::kHello, "Hello"));
  HelloMsg msg;
  reader.GetU32(&msg.magic);
  reader.GetU8(&msg.version);
  CONVOY_RETURN_IF_ERROR(CheckEnd(reader, "Hello"));
  return msg;
}

StatusOr<HelloAckMsg> DecodeHelloAck(std::string_view payload) {
  WireReader reader(payload);
  CONVOY_RETURN_IF_ERROR(CheckType(&reader, MsgType::kHelloAck, "HelloAck"));
  HelloAckMsg msg;
  reader.GetU8(&msg.version);
  reader.GetU8(&msg.accepted);
  reader.GetString(&msg.message);
  CONVOY_RETURN_IF_ERROR(CheckEnd(reader, "HelloAck"));
  return msg;
}

StatusOr<IngestBeginMsg> DecodeIngestBegin(std::string_view payload) {
  WireReader reader(payload);
  CONVOY_RETURN_IF_ERROR(
      CheckType(&reader, MsgType::kIngestBegin, "IngestBegin"));
  IngestBeginMsg msg;
  reader.GetU64(&msg.seq);
  reader.GetU64(&msg.stream_id);
  reader.GetU32(&msg.m);
  reader.GetI64(&msg.k);
  reader.GetF64(&msg.e);
  reader.GetI64(&msg.carry_forward_ticks);
  CONVOY_RETURN_IF_ERROR(CheckEnd(reader, "IngestBegin"));
  return msg;
}

StatusOr<ReportBatchMsg> DecodeReportBatch(std::string_view payload) {
  WireReader reader(payload);
  CONVOY_RETURN_IF_ERROR(
      CheckType(&reader, MsgType::kReportBatch, "ReportBatch"));
  ReportBatchMsg msg;
  uint32_t n = 0;
  reader.GetU64(&msg.seq);
  reader.GetI64(&msg.tick);
  if (reader.GetU32(&n)) {
    // 20 bytes per row; bounding by what is actually present caps the
    // reserve at the payload size for hostile counts, and bailing on the
    // first short read keeps a hostile count from growing the vector
    // beyond the payload either.
    if (reader.remaining() / 20 >= n) msg.rows.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      PositionReport row;
      if (!reader.GetU32(&row.id) || !reader.GetF64(&row.x) ||
          !reader.GetF64(&row.y)) {
        break;
      }
      msg.rows.push_back(row);
    }
  }
  CONVOY_RETURN_IF_ERROR(CheckEnd(reader, "ReportBatch"));
  return msg;
}

StatusOr<EndTickMsg> DecodeEndTick(std::string_view payload) {
  WireReader reader(payload);
  CONVOY_RETURN_IF_ERROR(CheckType(&reader, MsgType::kEndTick, "EndTick"));
  EndTickMsg msg;
  reader.GetU64(&msg.seq);
  reader.GetI64(&msg.tick);
  CONVOY_RETURN_IF_ERROR(CheckEnd(reader, "EndTick"));
  return msg;
}

StatusOr<IngestFinishMsg> DecodeIngestFinish(std::string_view payload) {
  WireReader reader(payload);
  CONVOY_RETURN_IF_ERROR(
      CheckType(&reader, MsgType::kIngestFinish, "IngestFinish"));
  IngestFinishMsg msg;
  reader.GetU64(&msg.seq);
  CONVOY_RETURN_IF_ERROR(CheckEnd(reader, "IngestFinish"));
  return msg;
}

StatusOr<SubscribeMsg> DecodeSubscribe(std::string_view payload) {
  WireReader reader(payload);
  CONVOY_RETURN_IF_ERROR(CheckType(&reader, MsgType::kSubscribe, "Subscribe"));
  SubscribeMsg msg;
  reader.GetU64(&msg.seq);
  reader.GetU64(&msg.stream_id);
  reader.GetU8(&msg.replay_closed);
  CONVOY_RETURN_IF_ERROR(CheckEnd(reader, "Subscribe"));
  return msg;
}

StatusOr<QueryMsg> DecodeQuery(std::string_view payload) {
  WireReader reader(payload);
  CONVOY_RETURN_IF_ERROR(CheckType(&reader, MsgType::kQuery, "Query"));
  QueryMsg msg;
  reader.GetU64(&msg.seq);
  reader.GetU64(&msg.stream_id);
  reader.GetU32(&msg.m);
  reader.GetI64(&msg.k);
  reader.GetF64(&msg.e);
  reader.GetU8(&msg.algo);
  reader.GetU8(&msg.explain);
  reader.GetU32(&msg.threads);
  CONVOY_RETURN_IF_ERROR(CheckEnd(reader, "Query"));
  return msg;
}

StatusOr<StatsRequestMsg> DecodeStatsRequest(std::string_view payload) {
  WireReader reader(payload);
  CONVOY_RETURN_IF_ERROR(
      CheckType(&reader, MsgType::kStatsRequest, "StatsRequest"));
  StatsRequestMsg msg;
  reader.GetU64(&msg.seq);
  CONVOY_RETURN_IF_ERROR(CheckEnd(reader, "StatsRequest"));
  return msg;
}

StatusOr<AckMsg> DecodeAck(std::string_view payload) {
  WireReader reader(payload);
  CONVOY_RETURN_IF_ERROR(CheckType(&reader, MsgType::kAck, "Ack"));
  AckMsg msg;
  reader.GetU64(&msg.seq);
  reader.GetU8(&msg.code);
  reader.GetU8(&msg.retryable);
  reader.GetU8(&msg.flags);
  reader.GetU32(&msg.accepted);
  reader.GetU32(&msg.rejected);
  reader.GetU64(&msg.resume_seq);
  reader.GetString(&msg.message);
  CONVOY_RETURN_IF_ERROR(CheckEnd(reader, "Ack"));
  return msg;
}

StatusOr<EventMsg> DecodeEvent(std::string_view payload) {
  WireReader reader(payload);
  CONVOY_RETURN_IF_ERROR(CheckType(&reader, MsgType::kEvent, "Event"));
  EventMsg msg;
  reader.GetU64(&msg.stream_id);
  reader.GetU8(&msg.kind);
  reader.GetI64(&msg.tick);
  reader.GetU32(&msg.live_candidates);
  reader.GetU64(&msg.event_index);
  reader.GetConvoy(&msg.convoy);
  CONVOY_RETURN_IF_ERROR(CheckEnd(reader, "Event"));
  return msg;
}

StatusOr<QueryResultMsg> DecodeQueryResult(std::string_view payload) {
  WireReader reader(payload);
  CONVOY_RETURN_IF_ERROR(
      CheckType(&reader, MsgType::kQueryResult, "QueryResult"));
  QueryResultMsg msg;
  uint32_t n = 0;
  reader.GetU64(&msg.seq);
  reader.GetU8(&msg.code);
  reader.GetString(&msg.message);
  reader.GetString(&msg.explain);
  if (reader.GetU32(&n)) {
    // Convoys are at least 20 bytes each on the wire.
    if (reader.remaining() / 20 >= n) msg.convoys.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      Convoy c;
      if (!reader.GetConvoy(&c)) break;
      msg.convoys.push_back(std::move(c));
    }
  }
  CONVOY_RETURN_IF_ERROR(CheckEnd(reader, "QueryResult"));
  return msg;
}

StatusOr<StatsResultMsg> DecodeStatsResult(std::string_view payload) {
  WireReader reader(payload);
  CONVOY_RETURN_IF_ERROR(
      CheckType(&reader, MsgType::kStatsResult, "StatsResult"));
  StatsResultMsg msg;
  reader.GetU64(&msg.seq);
  reader.GetString(&msg.json);
  CONVOY_RETURN_IF_ERROR(CheckEnd(reader, "StatsResult"));
  return msg;
}

// ------------------------------------------------------------- frame I/O

Status WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::DataError("frame payload of " +
                             std::to_string(payload.size()) +
                             " bytes exceeds the " +
                             std::to_string(kMaxFramePayload) + " limit");
  }
  std::string frame;
  frame.reserve(4 + payload.size());
  const uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<char>((len >> (8 * i)) & 0xffu));
  }
  frame.append(payload.data(), payload.size());
  size_t sent = 0;
  while (sent < frame.size()) {
    // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE, not a
    // process-wide SIGPIPE — the daemon writes acks and events to sockets
    // whose clients disconnect at will. Routed through the fault hook so
    // the chaos harness can shorten or kill sends (wal/fault.h).
    const ssize_t n = wal::FaultSend(fd, frame.data() + sent,
                                     frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("socket write failed: " +
                              std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

namespace {

/// Reads exactly `len` bytes. `clean_eof_ok`: EOF before the first byte is
/// an orderly close (kCancelled); mid-buffer EOF is always kDataError. An
/// SO_RCVTIMEO expiry surfaces as kDeadlineExceeded — the signal behind
/// both the server's idle reaping and the client's per-operation deadline.
Status ReadExact(int fd, char* buf, size_t len, bool clean_eof_ok) {
  size_t got = 0;
  while (got < len) {
    const ssize_t n = wal::FaultRead(fd, buf + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("socket read timed out");
      }
      return Status::Internal("socket read failed: " +
                              std::string(std::strerror(errno)));
    }
    if (n == 0) {
      if (got == 0 && clean_eof_ok) {
        return Status::Cancelled("connection closed");
      }
      return Status::DataError("connection closed mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::string> ReadFrame(int fd) {
  char len_bytes[4];
  CONVOY_RETURN_IF_ERROR(
      ReadExact(fd, len_bytes, sizeof(len_bytes), /*clean_eof_ok=*/true));
  uint32_t len = 0;
  for (size_t i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(len_bytes[i]))
           << (8 * i);
  }
  if (len > kMaxFramePayload) {
    return Status::DataError("frame length " + std::to_string(len) +
                             " exceeds the " +
                             std::to_string(kMaxFramePayload) + " limit");
  }
  std::string payload(len, '\0');
  if (len > 0) {
    CONVOY_RETURN_IF_ERROR(
        ReadExact(fd, payload.data(), len, /*clean_eof_ok=*/false));
  }
  return payload;
}

}  // namespace convoy::server
