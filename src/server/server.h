#ifndef CONVOY_SERVER_SERVER_H_
#define CONVOY_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "parallel/service_thread.h"
#include "server/protocol.h"
#include "server/session.h"
#include "util/status.h"
#include "wal/wal.h"

namespace convoy::server {

struct ServerOptions {
  /// Loopback by default: the daemon is a local-analysis tool, not an
  /// internet-facing service. Bind elsewhere deliberately.
  std::string host = "127.0.0.1";

  /// 0 picks an ephemeral port; read it back via port() after Start().
  uint16_t port = 0;

  /// Capacity of each ingest stream's reader->worker ring. A full ring is
  /// the backpressure signal (retryable NAK), so this bounds per-stream
  /// memory: at most ring_capacity batches are queued, ever.
  size_t ring_capacity = 64;

  // ------------------------------------------------------------ durability

  /// Directory of the write-ahead log. Empty = no WAL: acks promise only
  /// in-memory application (PR 8 behavior). Non-empty: every accepted item
  /// is logged before its ack leaves, and Start() replays an existing log
  /// so a restarted server resumes bit-identical to the uninterrupted run.
  std::string wal_dir;
  wal::FsyncPolicy fsync = wal::FsyncPolicy::kNone;
  uint32_t fsync_interval_ms = 50;
  size_t wal_segment_bytes = 64u * 1024u * 1024u;

  // ------------------------------------------------------- fault tolerance

  /// Reap a connection whose peer sends nothing for this long (leaked
  /// half-open sockets no longer pin reader threads). 0 = never. Cleared
  /// once a connection subscribes — subscribers legitimately go quiet.
  uint32_t idle_timeout_ms = 0;

  /// Bound of each subscriber connection's outgoing event queue. A slow
  /// subscriber overflowing it loses events — replaced by one kGap event
  /// carrying the dropped count — instead of stalling stream workers.
  size_t subscriber_queue_capacity = 1024;

  /// Load shedding: when the total item count queued across every stream
  /// ring reaches this high water, new stream items are NAKed kRetryAfter
  /// (retryable) before they are enqueued. 0 = disabled.
  size_t load_shed_high_water = 0;
};

/// The convoy server: accepts TCP connections speaking the protocol.h
/// framing, multiplexes any number of ingest sessions (one StreamingCmc
/// worker each), subscription feeds, ad-hoc planned queries, and metrics
/// dumps over them.
///
/// Thread architecture (every thread is a parallel/service_thread.h
/// ServiceThread — the raw-thread lint confines thread creation there):
///
///   acceptor ──> per-connection reader ──TryPush──> per-stream worker
///                     │    (decode, dispatch)            (StreamingCmc)
///                     │── queries/stats run on the reader thread against
///                     │   the stream's SnapshotEngine
///                     └── per-connection event sender drains the bounded
///                         subscription queue (slow subscribers shed, with
///                         kGap markers, instead of stalling workers)
///
/// Readers never block on compute and workers never touch sockets except
/// through the sink (acks to the owning connection, events to subscribers'
/// queues). A full ring NAKs with retryable=1 instead of buffering —
/// explicit flow control.
///
/// Streams outlive their ingest connection: a dropped producer leaves the
/// accepted rows queryable (and the stream resumable by id from a new
/// connection; the IngestBegin ack's resume_seq tells the producer where
/// to continue). With a WAL configured, streams also outlive the process:
/// Start() replays the log through the same Process() path the live
/// server runs, so recovered state — closed-convoy events and their
/// indices included — is bit-identical to an uninterrupted run.
/// Shutdown() closes the listener, wakes every reader via socket shutdown,
/// drains and joins every stream worker, then joins the acceptor — after
/// it returns no thread of the server is alive.
class ConvoyServer : public StreamSink {
 public:
  explicit ConvoyServer(ServerOptions options = {});

  /// Calls Shutdown().
  ~ConvoyServer() override;

  ConvoyServer(const ConvoyServer&) = delete;
  ConvoyServer& operator=(const ConvoyServer&) = delete;

  /// Opens the WAL and replays it (when configured), then binds, listens,
  /// and spawns the acceptor. kInternal with errno context when the socket
  /// setup fails (port in use, bad host, ...) or the WAL dir is unusable.
  Status Start();

  /// Stops accepting, closes every connection, drains every stream worker,
  /// syncs the WAL, and joins all threads. Idempotent; destructor-called.
  void Shutdown();

  /// The bound port (resolves option port 0 to the ephemeral pick).
  uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

  /// {"schema":"convoy-server-stats-v1","metrics":{...}} — the server's
  /// lifetime TraceSession rendered through QueryMetrics::WriteJson, i.e.
  /// the same counter catalog every other execution path reports, plus the
  /// server.* and wal.* counters. Safe to call while the server runs
  /// (monotone approximation; exact after Shutdown).
  std::string StatsJson() const;

  /// The server-lifetime trace (server.* counters, per-stream tick spans).
  TraceSession& trace() { return trace_; }

  // StreamSink: called by stream workers.
  void SendAck(uint64_t stream_id, const AckMsg& ack) override;
  void SendEvent(const EventMsg& event) override;

 private:
  struct Connection {
    /// Set once before the reader spawns; -1 after CloseConnection. All
    /// writes to the socket — and the ::close itself — happen under
    /// write_mu, so no writer can hold the fd across its close (and a
    /// kernel-reused descriptor can never receive a stale frame).
    int fd = -1;  // GUARDED_BY(write_mu) once the reader is live
    /// Serializes frames onto the socket: the reader's replies, worker
    /// acks, and subscription events interleave at frame granularity.
    std::mutex write_mu;
    std::atomic<bool> open{true};
    /// Set once the connection subscribes: exempt from idle reaping.
    std::atomic<bool> subscriber{false};
    ServiceThread reader;  ///< joined before CloseConnection

    // ---- outgoing subscription events (bounded; see EnqueueEvent) ----
    std::mutex eq_mu;
    std::condition_variable eq_cv;
    std::deque<std::string> event_queue;  // GUARDED_BY(eq_mu)
    uint64_t dropped_events = 0;          // GUARDED_BY(eq_mu)
    /// Stream of the most recent drop — addresses the gap marker when the
    /// sender flushes a drop run after the queue drained.
    uint64_t dropped_stream_id = 0;       // GUARDED_BY(eq_mu)
    bool eq_closed = false;               // GUARDED_BY(eq_mu)
    /// Touched only by the connection's own reader thread.
    bool sender_started = false;
    ServiceThread sender;  ///< drains event_queue; started on subscribe
  };

  void AcceptLoop();
  void ReaderLoop(const std::shared_ptr<Connection>& conn);
  /// Dispatches one decoded frame; false ends the connection (handshake
  /// rejection). Recoverable errors answer a NAK and keep reading.
  bool Dispatch(const std::shared_ptr<Connection>& conn,
                const std::string& payload, bool* hello_done);

  void HandleIngestBegin(const std::shared_ptr<Connection>& conn,
                         const IngestBeginMsg& msg);
  void HandleStreamItem(const std::shared_ptr<Connection>& conn, MsgType type,
                        const std::string& payload);
  void HandleSubscribe(const std::shared_ptr<Connection>& conn,
                       const SubscribeMsg& msg);
  void HandleQuery(const std::shared_ptr<Connection>& conn,
                   const QueryMsg& msg);
  void HandleStats(const std::shared_ptr<Connection>& conn,
                   const StatsRequestMsg& msg);

  /// Re-creates every stream recorded in the WAL and replays the log
  /// through it. Runs on the Start() thread before the acceptor exists.
  Status RecoverStreams();

  /// Pushes one encoded event onto the connection's bounded queue. The
  /// capacity check reserves a slot for a pending gap marker, so the
  /// queue never exceeds subscriber_queue_capacity. A full queue drops
  /// the event (counted); the first enqueue after a drop is preceded by
  /// a kGap event carrying the dropped count.
  void EnqueueEvent(const std::shared_ptr<Connection>& conn,
                    const EventMsg& event, const std::string& frame);
  /// The per-connection event sender body: drains the queue to the
  /// socket. When the queue drains (or closes) with a drop run still
  /// pending, it flushes the gap marker itself — a subscriber whose
  /// final events were shed before the stream went quiet still learns
  /// events were lost.
  void SenderLoop(const std::shared_ptr<Connection>& conn);

  /// Writes one frame under the connection's write mutex; a failed write
  /// marks the connection closed (its reader notices on its next read).
  void WriteTo(const std::shared_ptr<Connection>& conn,
               const std::string& payload);
  /// Releases the connection's fd under its write mutex (idempotent).
  /// Call only after the reader has been joined.
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  void AckTo(const std::shared_ptr<Connection>& conn, uint64_t seq,
             const Status& status, bool retryable = false);

  std::shared_ptr<IngestStream> FindStream(uint64_t stream_id);

  ServerOptions options_;
  TraceSession trace_;

  /// Non-null iff options_.wal_dir is set; shared by every stream. Opened
  /// (and the log replayed) in Start() before any socket exists, reset in
  /// Shutdown() after the last worker drained.
  std::unique_ptr<wal::WalWriter> wal_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  ServiceThread acceptor_;

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Connection>> connections_;  // GUARDED_BY(mu_)
  std::map<uint64_t, std::shared_ptr<IngestStream>>
      streams_;  // GUARDED_BY(mu_)
  /// Stream ids whose IngestBegin is mid-flight: reserved under mu_, then
  /// the kBegin WAL append runs *outside* mu_ (a disk write must not
  /// stall every reader thread's dispatch), then the registration is
  /// finalized — or rolled back — under mu_ again.
  std::set<uint64_t> pending_streams_;  // GUARDED_BY(mu_)
  /// stream_id -> connection that owns the ingest session (acks go here).
  std::map<uint64_t, std::shared_ptr<Connection>>
      stream_owner_;  // GUARDED_BY(mu_)
  /// stream_id -> subscribed connections (events fan out here).
  std::map<uint64_t, std::vector<std::shared_ptr<Connection>>>
      subscribers_;  // GUARDED_BY(mu_)
};

}  // namespace convoy::server

#endif  // CONVOY_SERVER_SERVER_H_
