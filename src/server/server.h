#ifndef CONVOY_SERVER_SERVER_H_
#define CONVOY_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "parallel/service_thread.h"
#include "server/protocol.h"
#include "server/session.h"
#include "util/status.h"

namespace convoy::server {

struct ServerOptions {
  /// Loopback by default: the daemon is a local-analysis tool, not an
  /// internet-facing service. Bind elsewhere deliberately.
  std::string host = "127.0.0.1";

  /// 0 picks an ephemeral port; read it back via port() after Start().
  uint16_t port = 0;

  /// Capacity of each ingest stream's reader->worker ring. A full ring is
  /// the backpressure signal (retryable NAK), so this bounds per-stream
  /// memory: at most ring_capacity batches are queued, ever.
  size_t ring_capacity = 64;
};

/// The convoy server: accepts TCP connections speaking the protocol.h
/// framing, multiplexes any number of ingest sessions (one StreamingCmc
/// worker each), subscription feeds, ad-hoc planned queries, and metrics
/// dumps over them.
///
/// Thread architecture (every thread is a parallel/service_thread.h
/// ServiceThread — the raw-thread lint confines thread creation there):
///
///   acceptor ──> per-connection reader ──TryPush──> per-stream worker
///                     │    (decode, dispatch)            (StreamingCmc)
///                     └── queries/stats run on the reader thread against
///                         the stream's SnapshotEngine
///
/// Readers never block on compute and workers never touch sockets except
/// through the sink (acks to the owning connection, events to subscribers,
/// both serialized per connection by its write mutex). A full ring NAKs
/// with retryable=1 instead of buffering — explicit flow control.
///
/// Streams outlive their ingest connection: a dropped producer leaves the
/// accepted rows queryable (and the stream resumable by id from a new
/// connection). Shutdown() closes the listener, wakes every reader via
/// socket shutdown, drains and joins every stream worker, then joins the
/// acceptor — after it returns no thread of the server is alive.
class ConvoyServer : public StreamSink {
 public:
  explicit ConvoyServer(ServerOptions options = {});

  /// Calls Shutdown().
  ~ConvoyServer() override;

  ConvoyServer(const ConvoyServer&) = delete;
  ConvoyServer& operator=(const ConvoyServer&) = delete;

  /// Binds, listens, and spawns the acceptor. kInternal with errno context
  /// when the socket setup fails (port in use, bad host, ...).
  Status Start();

  /// Stops accepting, closes every connection, drains every stream worker,
  /// and joins all threads. Idempotent; called by the destructor.
  void Shutdown();

  /// The bound port (resolves option port 0 to the ephemeral pick).
  uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

  /// {"schema":"convoy-server-stats-v1","metrics":{...}} — the server's
  /// lifetime TraceSession rendered through QueryMetrics::WriteJson, i.e.
  /// the same counter catalog every other execution path reports, plus the
  /// server.* counters. Safe to call while the server runs (monotone
  /// approximation; exact after Shutdown).
  std::string StatsJson() const;

  /// The server-lifetime trace (server.* counters, per-stream tick spans).
  TraceSession& trace() { return trace_; }

  // StreamSink: called by stream workers.
  void SendAck(uint64_t stream_id, const AckMsg& ack) override;
  void SendEvent(const EventMsg& event) override;

 private:
  struct Connection {
    /// Set once before the reader spawns; -1 after CloseConnection. All
    /// writes to the socket — and the ::close itself — happen under
    /// write_mu, so no writer can hold the fd across its close (and a
    /// kernel-reused descriptor can never receive a stale frame).
    int fd = -1;  // GUARDED_BY(write_mu) once the reader is live
    /// Serializes frames onto the socket: the reader's replies, worker
    /// acks, and subscription events interleave at frame granularity.
    std::mutex write_mu;
    std::atomic<bool> open{true};
    ServiceThread reader;  ///< joined before CloseConnection
  };

  void AcceptLoop();
  void ReaderLoop(const std::shared_ptr<Connection>& conn);
  /// Dispatches one decoded frame; false ends the connection (handshake
  /// rejection). Recoverable errors answer a NAK and keep reading.
  bool Dispatch(const std::shared_ptr<Connection>& conn,
                const std::string& payload, bool* hello_done);

  void HandleIngestBegin(const std::shared_ptr<Connection>& conn,
                         const IngestBeginMsg& msg);
  void HandleStreamItem(const std::shared_ptr<Connection>& conn, MsgType type,
                        const std::string& payload);
  void HandleSubscribe(const std::shared_ptr<Connection>& conn,
                       const SubscribeMsg& msg);
  void HandleQuery(const std::shared_ptr<Connection>& conn,
                   const QueryMsg& msg);
  void HandleStats(const std::shared_ptr<Connection>& conn,
                   const StatsRequestMsg& msg);

  /// Writes one frame under the connection's write mutex; a failed write
  /// marks the connection closed (its reader notices on its next read).
  void WriteTo(const std::shared_ptr<Connection>& conn,
               const std::string& payload);
  /// Releases the connection's fd under its write mutex (idempotent).
  /// Call only after the reader has been joined.
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  void AckTo(const std::shared_ptr<Connection>& conn, uint64_t seq,
             const Status& status, bool retryable = false);

  std::shared_ptr<IngestStream> FindStream(uint64_t stream_id);

  ServerOptions options_;
  TraceSession trace_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  ServiceThread acceptor_;

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Connection>> connections_;  // GUARDED_BY(mu_)
  std::map<uint64_t, std::shared_ptr<IngestStream>>
      streams_;  // GUARDED_BY(mu_)
  /// stream_id -> connection that owns the ingest session (acks go here).
  std::map<uint64_t, std::shared_ptr<Connection>>
      stream_owner_;  // GUARDED_BY(mu_)
  /// stream_id -> subscribed connections (events fan out here).
  std::map<uint64_t, std::vector<std::shared_ptr<Connection>>>
      subscribers_;  // GUARDED_BY(mu_)
};

}  // namespace convoy::server

#endif  // CONVOY_SERVER_SERVER_H_
