#include "server/session.h"

#include <string>
#include <utility>

#include "obs/trace.h"

namespace convoy::server {

namespace {

ConvoyQuery QueryFrom(const IngestBeginMsg& begin) {
  ConvoyQuery q;
  q.m = begin.m;
  q.k = begin.k;
  q.e = begin.e;
  q.num_threads = 1;  // the stream worker is the unit of parallelism
  return q;
}

StreamingCmc::Options StreamOptionsFrom(const IngestBeginMsg& begin) {
  StreamingCmc::Options options;
  options.carry_forward_ticks = begin.carry_forward_ticks;
  return options;
}

}  // namespace

IngestStream::IngestStream(const IngestBeginMsg& begin, size_t ring_capacity,
                           StreamSink* sink, TraceSession* trace)
    : stream_id_(begin.stream_id),
      query_(QueryFrom(begin)),
      sink_(sink),
      trace_(trace),
      ring_(ring_capacity),
      stream_(query_, StreamOptionsFrom(begin)),
      worker_("stream-worker", [this] { WorkerLoop(); }) {}

IngestStream::~IngestStream() { Close(); }

PushResult IngestStream::Submit(WorkItem item) {
  return ring_.TryPush(std::move(item));
}

void IngestStream::Close() {
  ring_.Close();
  worker_.Join();
}

void IngestStream::WorkerLoop() {
  while (std::optional<WorkItem> item = ring_.Pop()) {
    TraceCountMax(trace_, TraceCounter::kServerRingHighWater,
                  ring_.HighWater());
    Process(*item);
  }
}

void IngestStream::Process(WorkItem& item) {
  switch (item.kind) {
    case WorkItem::Kind::kBatch:
      ProcessBatch(item);
      return;
    case WorkItem::Kind::kEndTick:
      ProcessEndTick(item);
      return;
    case WorkItem::Kind::kFinish:
      ProcessFinish(item);
      return;
  }
}

void IngestStream::Nak(uint64_t seq, const Status& status) {
  AckMsg nak;
  nak.seq = seq;
  nak.code = static_cast<uint8_t>(status.code());
  nak.retryable = 0;
  nak.message = status.message();
  TraceCount(trace_, TraceCounter::kServerBatchesRejected, 1);
  sink_->SendAck(stream_id_, nak);
}

void IngestStream::ProcessBatch(const WorkItem& item) {
  if (finished_) {
    Nak(item.seq, Status::FailedPrecondition(
                      "ReportBatch after IngestFinish: the stream is over"));
    return;
  }
  if (!stream_.CurrentTick().has_value()) {
    const Status began = stream_.BeginTick(item.tick);
    if (!began.ok()) {
      Nak(item.seq, began);
      return;
    }
  } else if (*stream_.CurrentTick() != item.tick) {
    Nak(item.seq,
        Status::InvalidArgument(
            "ReportBatch for tick " + std::to_string(item.tick) +
            " while tick " + std::to_string(*stream_.CurrentTick()) +
            " is open (EndTick missing)"));
    return;
  }

  AckMsg ack;
  ack.seq = item.seq;
  for (const PositionReport& row : item.rows) {
    const Status reported = stream_.Report(row.id, Point(row.x, row.y));
    if (!reported.ok()) {
      // Row-level rejection (non-finite position): the batch stays
      // accepted, the bad row is dropped and counted.
      ++ack.rejected;
      continue;
    }
    ++ack.accepted;
    std::lock_guard<std::mutex> lock(rows_mu_);
    std::vector<TimedPoint>& samples = rows_[row.id];
    if (!samples.empty() && samples.back().t == item.tick) {
      samples.back().pos = Point(row.x, row.y);  // last report wins
    } else {
      samples.emplace_back(row.x, row.y, item.tick);
    }
    ++revision_;
  }
  TraceCount(trace_, TraceCounter::kServerBatchesAccepted, 1);
  sink_->SendAck(stream_id_, ack);
}

void IngestStream::ProcessEndTick(const WorkItem& item) {
  if (finished_) {
    Nak(item.seq, Status::FailedPrecondition(
                      "EndTick after IngestFinish: the stream is over"));
    return;
  }
  if (!stream_.CurrentTick().has_value()) {
    // A tick with zero reports: open it empty, then close it — the
    // candidate algebra sees an empty snapshot at `tick`.
    const Status began = stream_.BeginTick(item.tick);
    if (!began.ok()) {
      Nak(item.seq, began);
      return;
    }
  } else if (*stream_.CurrentTick() != item.tick) {
    Nak(item.seq,
        Status::InvalidArgument(
            "EndTick(" + std::to_string(item.tick) + ") does not match the " +
            "open tick " + std::to_string(*stream_.CurrentTick())));
    return;
  }

  StatusOr<std::vector<Convoy>> closed = stream_.EndTick();
  if (!closed.ok()) {
    Nak(item.seq, closed.status());
    return;
  }
  EmitTickEvents(item.tick, *closed);

  AckMsg ack;
  ack.seq = item.seq;
  ack.accepted = static_cast<uint32_t>(closed->size());
  sink_->SendAck(stream_id_, ack);
}

void IngestStream::ProcessFinish(const WorkItem& item) {
  if (finished_) {
    Nak(item.seq,
        Status::FailedPrecondition("IngestFinish: the stream is already over"));
    return;
  }
  StatusOr<std::vector<Convoy>> closed = stream_.Finish();
  if (!closed.ok()) {
    // A tick is still open — recoverable: the client can EndTick and retry.
    Nak(item.seq, closed.status());
    return;
  }
  finished_ = true;
  for (const Convoy& convoy : *closed) {
    EventMsg ev;
    ev.stream_id = stream_id_;
    ev.kind = static_cast<uint8_t>(EventKind::kConvoyClosed);
    ev.tick = convoy.end_tick;
    ev.convoy = convoy;
    sink_->SendEvent(ev);
    TraceCount(trace_, TraceCounter::kServerEventsEmitted, 1);
  }
  prev_open_.clear();

  EventMsg end;
  end.stream_id = stream_id_;
  end.kind = static_cast<uint8_t>(EventKind::kStreamEnd);
  sink_->SendEvent(end);
  TraceCount(trace_, TraceCounter::kServerEventsEmitted, 1);

  AckMsg ack;
  ack.seq = item.seq;
  ack.accepted = static_cast<uint32_t>(closed->size());
  sink_->SendAck(stream_id_, ack);
}

void IngestStream::EmitTickEvents(Tick tick,
                                  const std::vector<Convoy>& closed) {
  EventMsg summary;
  summary.stream_id = stream_id_;
  summary.kind = static_cast<uint8_t>(EventKind::kTick);
  summary.tick = tick;
  summary.live_candidates = static_cast<uint32_t>(stream_.LiveCandidates());
  sink_->SendEvent(summary);
  TraceCount(trace_, TraceCounter::kServerEventsEmitted, 1);

  // Open convoys arrive in the tracker's canonical order; the diff against
  // the previous tick's open set classifies each as new or extended, so a
  // subscriber can maintain a live view without replaying the stream.
  const std::vector<Convoy> open_now = stream_.OpenConvoys();
  std::set<std::vector<ObjectId>> open_keys;
  for (const Convoy& convoy : open_now) {
    EventMsg ev;
    ev.stream_id = stream_id_;
    ev.kind = static_cast<uint8_t>(prev_open_.count(convoy.objects) > 0
                                       ? EventKind::kConvoyExtended
                                       : EventKind::kConvoyNew);
    ev.tick = tick;
    ev.live_candidates = summary.live_candidates;
    ev.convoy = convoy;
    sink_->SendEvent(ev);
    TraceCount(trace_, TraceCounter::kServerEventsEmitted, 1);
    open_keys.insert(convoy.objects);
  }
  prev_open_ = std::move(open_keys);

  for (const Convoy& convoy : closed) {
    EventMsg ev;
    ev.stream_id = stream_id_;
    ev.kind = static_cast<uint8_t>(EventKind::kConvoyClosed);
    ev.tick = tick;
    ev.live_candidates = summary.live_candidates;
    ev.convoy = convoy;
    sink_->SendEvent(ev);
    TraceCount(trace_, TraceCounter::kServerEventsEmitted, 1);
  }
}

std::shared_ptr<const ConvoyEngine> IngestStream::SnapshotEngine() {
  std::map<ObjectId, std::vector<TimedPoint>> copy;
  uint64_t revision = 0;
  {
    std::lock_guard<std::mutex> lock(rows_mu_);
    revision = revision_;
    copy = rows_;
  }
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    if (engine_ != nullptr && engine_revision_ == revision) return engine_;
  }
  // Build outside both locks: the worker keeps accepting rows while a
  // query materializes its snapshot. Two racing queries may both build;
  // the later publish wins and the duplicate is dropped (benign).
  TrajectoryDatabase db;
  for (auto& [id, samples] : copy) {
    db.Add(Trajectory(id, std::move(samples)));
  }
  auto built = std::make_shared<const ConvoyEngine>(std::move(db));
  std::lock_guard<std::mutex> lock(engine_mu_);
  engine_ = built;
  engine_revision_ = revision;
  return built;
}

}  // namespace convoy::server
