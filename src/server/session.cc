#include "server/session.h"

#include <string>
#include <utility>

#include "obs/trace.h"

namespace convoy::server {

namespace {

ConvoyQuery QueryFrom(const IngestBeginMsg& begin) {
  ConvoyQuery q;
  q.m = begin.m;
  q.k = begin.k;
  q.e = begin.e;
  q.num_threads = 1;  // the stream worker is the unit of parallelism
  return q;
}

StreamingCmc::Options StreamOptionsFrom(const IngestBeginMsg& begin) {
  StreamingCmc::Options options;
  options.carry_forward_ticks = begin.carry_forward_ticks;
  return options;
}

}  // namespace

IngestStream::IngestStream(const IngestBeginMsg& begin, size_t ring_capacity,
                           StreamSink* sink, TraceSession* trace,
                           wal::WalWriter* wal, bool replaying)
    : stream_id_(begin.stream_id),
      query_(QueryFrom(begin)),
      sink_(sink),
      trace_(trace),
      wal_(wal),
      ring_(ring_capacity),
      stream_(query_, StreamOptionsFrom(begin)),
      replaying_(replaying),
      worker_("stream-worker", [this] { WorkerLoop(); }) {}

IngestStream::~IngestStream() { Close(); }

PushResult IngestStream::Submit(WorkItem item) {
  return ring_.TryPush(std::move(item));
}

void IngestStream::Close() {
  ring_.Close();
  worker_.Join();
}

void IngestStream::WorkerLoop() {
  while (std::optional<WorkItem> item = ring_.Pop()) {
    TraceCountMax(trace_, TraceCounter::kServerRingHighWater,
                  ring_.HighWater());
    Process(*item);
  }
}

void IngestStream::ReplayRecord(const wal::WalRecord& record) {
  WorkItem item;
  item.seq = record.seq;
  item.tick = record.tick;
  switch (record.kind) {
    case wal::WalRecordKind::kBegin:
      return;  // consumed by stream creation
    case wal::WalRecordKind::kBatch:
      item.kind = WorkItem::Kind::kBatch;
      item.rows.reserve(record.rows.size());
      for (const wal::WalRow& row : record.rows) {
        item.rows.push_back(PositionReport{row.id, row.x, row.y});
      }
      break;
    case wal::WalRecordKind::kEndTick:
      item.kind = WorkItem::Kind::kEndTick;
      break;
    case wal::WalRecordKind::kFinish:
      item.kind = WorkItem::Kind::kFinish;
      break;
  }
  Process(item);
}

void IngestStream::Process(WorkItem& item) {
  // Seq-dedup: a producer resending after a reconnect (or a duplicate WAL
  // record from a crash between append and ack) is acked OK without
  // re-applying — the crash-recovery idempotence guarantee. Only applied
  // items advance last_applied_seq_, so a retried NAK is not mistaken for
  // a duplicate unless a later item was applied in between.
  if (item.seq != 0 &&
      item.seq <= last_applied_seq_.load(std::memory_order_relaxed)) {
    AckMsg ack;
    ack.seq = item.seq;
    ack.flags = kAckFlagDuplicate;
    SendAckIfLive(ack);
    return;
  }
  if (wal_broken_) {
    Nak(item.seq, Status::Internal(
                      "write-ahead log failed; the stream is closed"));
    return;
  }
  switch (item.kind) {
    case WorkItem::Kind::kBatch:
      ProcessBatch(item);
      return;
    case WorkItem::Kind::kEndTick:
      ProcessEndTick(item);
      return;
    case WorkItem::Kind::kFinish:
      ProcessFinish(item);
      return;
  }
}

void IngestStream::Nak(uint64_t seq, const Status& status) {
  AckMsg nak;
  nak.seq = seq;
  nak.code = static_cast<uint8_t>(status.code());
  nak.retryable = 0;
  nak.message = status.message();
  TraceCount(trace_, TraceCounter::kServerBatchesRejected, 1);
  SendAckIfLive(nak);
}

void IngestStream::SendAckIfLive(const AckMsg& ack) {
  if (replaying_) return;
  sink_->SendAck(stream_id_, ack);
}

void IngestStream::SendEventIfLive(const EventMsg& event) {
  if (replaying_) return;
  sink_->SendEvent(event);
  TraceCount(trace_, TraceCounter::kServerEventsEmitted, 1);
}

bool IngestStream::LogApplied(wal::WalRecordKind kind, const WorkItem& item,
                              std::vector<wal::WalRow> rows) {
  if (wal_ == nullptr || replaying_) return true;
  wal::WalRecord record;
  record.kind = kind;
  record.stream_id = stream_id_;
  record.seq = item.seq;
  record.tick = item.tick;
  record.rows = std::move(rows);
  const Status appended = wal_->Append(record);
  if (appended.ok()) return true;
  // The item is applied in memory but not logged: anything applied after
  // it would be logged over a gap and recovery would diverge from acked
  // history. Poison the stream — this item and everything behind it in
  // the ring are NAKed non-retryably (never acked, so "acked implies
  // recoverable" still holds) and no new work is accepted.
  wal_broken_ = true;
  ring_.Close();
  Nak(item.seq, appended);
  return false;
}

void IngestStream::ProcessBatch(const WorkItem& item) {
  if (finished_) {
    Nak(item.seq, Status::FailedPrecondition(
                      "ReportBatch after IngestFinish: the stream is over"));
    return;
  }
  if (!stream_.CurrentTick().has_value()) {
    const Status began = stream_.BeginTick(item.tick);
    if (!began.ok()) {
      Nak(item.seq, began);
      return;
    }
  } else if (*stream_.CurrentTick() != item.tick) {
    Nak(item.seq,
        Status::InvalidArgument(
            "ReportBatch for tick " + std::to_string(item.tick) +
            " while tick " + std::to_string(*stream_.CurrentTick()) +
            " is open (EndTick missing)"));
    return;
  }

  AckMsg ack;
  ack.seq = item.seq;
  std::vector<wal::WalRow> accepted_rows;
  for (const PositionReport& row : item.rows) {
    const Status reported = stream_.Report(row.id, Point(row.x, row.y));
    if (!reported.ok()) {
      // Row-level rejection (non-finite position): the batch stays
      // accepted, the bad row is dropped and counted.
      ++ack.rejected;
      continue;
    }
    ++ack.accepted;
    accepted_rows.push_back(wal::WalRow{row.id, row.x, row.y});
    std::lock_guard<std::mutex> lock(rows_mu_);
    std::vector<TimedPoint>& samples = rows_[row.id];
    if (!samples.empty() && samples.back().t == item.tick) {
      samples.back().pos = Point(row.x, row.y);  // last report wins
    } else {
      samples.emplace_back(row.x, row.y, item.tick);
    }
    ++revision_;
  }
  // Only the rows that survived validation are logged — replay re-accepts
  // exactly them, keeping the recovered row table bit-identical.
  if (!LogApplied(wal::WalRecordKind::kBatch, item, std::move(accepted_rows)))
    return;
  last_applied_seq_.store(item.seq, std::memory_order_relaxed);
  TraceCount(trace_, TraceCounter::kServerBatchesAccepted, 1);
  SendAckIfLive(ack);
}

void IngestStream::ProcessEndTick(const WorkItem& item) {
  if (finished_) {
    Nak(item.seq, Status::FailedPrecondition(
                      "EndTick after IngestFinish: the stream is over"));
    return;
  }
  if (!stream_.CurrentTick().has_value()) {
    // A tick with zero reports: open it empty, then close it — the
    // candidate algebra sees an empty snapshot at `tick`.
    const Status began = stream_.BeginTick(item.tick);
    if (!began.ok()) {
      Nak(item.seq, began);
      return;
    }
  } else if (*stream_.CurrentTick() != item.tick) {
    Nak(item.seq,
        Status::InvalidArgument(
            "EndTick(" + std::to_string(item.tick) + ") does not match the " +
            "open tick " + std::to_string(*stream_.CurrentTick())));
    return;
  }

  StatusOr<std::vector<Convoy>> closed = stream_.EndTick();
  if (!closed.ok()) {
    Nak(item.seq, closed.status());
    return;
  }
  // Log before the events fan out and before the ack: a crash after the
  // append replays this tick to the same closed set; a crash before it
  // leaves the tick unacked and the producer resends.
  if (!LogApplied(wal::WalRecordKind::kEndTick, item, {})) return;
  last_applied_seq_.store(item.seq, std::memory_order_relaxed);
  EmitTickEvents(item.tick, *closed);

  AckMsg ack;
  ack.seq = item.seq;
  ack.accepted = static_cast<uint32_t>(closed->size());
  SendAckIfLive(ack);
}

void IngestStream::ProcessFinish(const WorkItem& item) {
  if (finished_) {
    Nak(item.seq,
        Status::FailedPrecondition("IngestFinish: the stream is already over"));
    return;
  }
  StatusOr<std::vector<Convoy>> closed = stream_.Finish();
  if (!closed.ok()) {
    // A tick is still open — recoverable: the client can EndTick and retry.
    Nak(item.seq, closed.status());
    return;
  }
  if (!LogApplied(wal::WalRecordKind::kFinish, item, {})) return;
  finished_ = true;
  last_applied_seq_.store(item.seq, std::memory_order_relaxed);
  for (const Convoy& convoy : *closed) {
    EmitClosed(convoy.end_tick, 0, convoy);
  }
  prev_open_.clear();

  EventMsg end;
  end.stream_id = stream_id_;
  end.kind = static_cast<uint8_t>(EventKind::kStreamEnd);
  SendEventIfLive(end);

  AckMsg ack;
  ack.seq = item.seq;
  ack.accepted = static_cast<uint32_t>(closed->size());
  SendAckIfLive(ack);
}

void IngestStream::EmitClosed(Tick tick, uint32_t live_candidates,
                              const Convoy& convoy) {
  EventMsg ev;
  ev.stream_id = stream_id_;
  ev.kind = static_cast<uint8_t>(EventKind::kConvoyClosed);
  ev.tick = tick;
  ev.live_candidates = live_candidates;
  ev.event_index = ++next_event_index_;
  ev.convoy = convoy;
  {
    // Recorded during replay too — that is how the closed sequence (and
    // its indices) survive a crash for replay_closed subscribers.
    std::lock_guard<std::mutex> lock(history_mu_);
    closed_history_.push_back(ev);
  }
  SendEventIfLive(ev);
}

std::vector<EventMsg> IngestStream::ClosedEvents() const {
  std::lock_guard<std::mutex> lock(history_mu_);
  return closed_history_;
}

void IngestStream::EmitTickEvents(Tick tick,
                                  const std::vector<Convoy>& closed) {
  EventMsg summary;
  summary.stream_id = stream_id_;
  summary.kind = static_cast<uint8_t>(EventKind::kTick);
  summary.tick = tick;
  summary.live_candidates = static_cast<uint32_t>(stream_.LiveCandidates());
  SendEventIfLive(summary);

  // Open convoys arrive in the tracker's canonical order; the diff against
  // the previous tick's open set classifies each as new or extended, so a
  // subscriber can maintain a live view without replaying the stream.
  const std::vector<Convoy> open_now = stream_.OpenConvoys();
  std::set<std::vector<ObjectId>> open_keys;
  for (const Convoy& convoy : open_now) {
    EventMsg ev;
    ev.stream_id = stream_id_;
    ev.kind = static_cast<uint8_t>(prev_open_.count(convoy.objects) > 0
                                       ? EventKind::kConvoyExtended
                                       : EventKind::kConvoyNew);
    ev.tick = tick;
    ev.live_candidates = summary.live_candidates;
    ev.convoy = convoy;
    SendEventIfLive(ev);
    open_keys.insert(convoy.objects);
  }
  prev_open_ = std::move(open_keys);

  for (const Convoy& convoy : closed) {
    EmitClosed(tick, summary.live_candidates, convoy);
  }
}

std::shared_ptr<const ConvoyEngine> IngestStream::SnapshotEngine() {
  std::map<ObjectId, std::vector<TimedPoint>> copy;
  uint64_t revision = 0;
  {
    std::lock_guard<std::mutex> lock(rows_mu_);
    revision = revision_;
    copy = rows_;
  }
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    if (engine_ != nullptr && engine_revision_ == revision) return engine_;
  }
  // Build outside both locks: the worker keeps accepting rows while a
  // query materializes its snapshot. Two racing queries may both build;
  // the later publish wins and the duplicate is dropped (benign).
  TrajectoryDatabase db;
  for (auto& [id, samples] : copy) {
    db.Add(Trajectory(id, std::move(samples)));
  }
  auto built = std::make_shared<const ConvoyEngine>(std::move(db));
  std::lock_guard<std::mutex> lock(engine_mu_);
  engine_ = built;
  engine_revision_ = revision;
  return built;
}

}  // namespace convoy::server
