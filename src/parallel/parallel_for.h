#ifndef CONVOY_PARALLEL_PARALLEL_FOR_H_
#define CONVOY_PARALLEL_PARALLEL_FOR_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "parallel/thread_pool.h"

namespace convoy {

/// Resolves a thread-count knob: 0 means "all hardware threads", any other
/// value is taken literally.
inline size_t ResolveThreadCount(size_t requested) {
  return requested == 0 ? ThreadPool::HardwareThreads() : requested;
}

/// Maps [0, n) through `fn` on `pool` and returns the results in index
/// order: slot i always holds fn(i), independent of which worker ran which
/// chunk. A null pool, a single-thread pool, or a trivial range degenerates
/// to a plain serial loop on the calling thread. The result type must be
/// default-constructible and movable. Exceptions propagate per
/// ThreadPool::ParallelFor.
template <typename Fn>
auto ParallelMap(ThreadPool* pool, size_t n, Fn&& fn)
    -> std::vector<decltype(fn(size_t{0}))> {
  using Result = decltype(fn(size_t{0}));
  std::vector<Result> results(n);
  if (pool == nullptr || pool->num_threads() <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) results[i] = fn(i);
    return results;
  }
  pool->ParallelFor(n, [&results, &fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) results[i] = fn(i);
  });
  return results;
}

}  // namespace convoy

#endif  // CONVOY_PARALLEL_PARALLEL_FOR_H_
