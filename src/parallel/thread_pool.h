#ifndef CONVOY_PARALLEL_THREAD_POOL_H_
#define CONVOY_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace convoy {

/// A fixed-size pool of worker threads with a chunk-based ParallelFor — the
/// task-submission seam the parallel discovery runners are built on.
///
/// Design notes:
///  * No work stealing: ParallelFor splits [0, n) into at most num_threads()
///    balanced contiguous chunks, one task per chunk. Chunk boundaries
///    depend only on (n, chunk count), never on scheduling, so any
///    per-chunk state a caller accumulates is deterministic.
///  * Deterministic result ordering is achieved in the caller's index
///    space: workers write into caller-owned slots keyed by loop index
///    (see ParallelMap in parallel_for.h), so output order never depends
///    on which worker ran which chunk.
///  * Re-entrancy: a ParallelFor issued from inside a pool task runs inline
///    on the calling worker (serially over its whole range) instead of
///    enqueueing, so nested parallel sections cannot deadlock the
///    fixed-size pool.
///  * Exceptions thrown by a chunk body are captured per chunk; after all
///    chunks finish, the exception of the lowest-indexed failing chunk is
///    rethrown on the calling thread.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means HardwareThreads(). Requests are
  /// capped at 256 workers — protects against wrapped negative values and
  /// absurd oversubscription.
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains nothing: joins after finishing tasks already in the queue.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a single task; the future reports completion and rethrows the
  /// task's exception, if any. Safe to call from inside a pool task, but
  /// blocking on the future from inside a pool task can deadlock — use
  /// ParallelFor for nested parallelism instead.
  std::future<void> Submit(std::function<void()> task);

  /// Runs body(begin, end) over disjoint contiguous chunks covering [0, n)
  /// and blocks until every chunk completed. The calling thread executes
  /// chunk 0 itself, so a pool of T workers runs at most T concurrent
  /// chunks. `max_chunks` caps the number of chunks (0 = one per worker).
  /// An empty range returns immediately without invoking the body.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body,
                   size_t max_chunks = 0);

  /// True when called from one of this pool's worker threads.
  bool OnWorkerThread() const;

  /// std::thread::hardware_concurrency() with a floor of 1.
  static size_t HardwareThreads();

 private:
  void WorkerLoop();

  /// Written only by the constructor / joined by the destructor; never
  /// touched by workers, so no guard.
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;  // GUARDED_BY(mu_)
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;                        // GUARDED_BY(mu_)
};

}  // namespace convoy

#endif  // CONVOY_PARALLEL_THREAD_POOL_H_
