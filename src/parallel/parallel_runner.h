#ifndef CONVOY_PARALLEL_PARALLEL_RUNNER_H_
#define CONVOY_PARALLEL_PARALLEL_RUNNER_H_

#include <vector>

#include "core/cmc.h"
#include "core/cuts.h"
#include "core/cuts_filter.h"
#include "core/discovery_stats.h"
#include "traj/database.h"

namespace convoy {

/// Parallel convoy-discovery runners. Every function here produces results
/// identical to its serial counterpart for every thread count (enforced by
/// tests/parallel_equivalence_test.cc): parallelism is confined to the
/// embarrassingly parallel phases — per-snapshot DBSCAN for CMC,
/// per-partition TRAJ-DBSCAN and per-candidate refinement for CuTS — while
/// the order-sensitive candidate extension stays sequential over
/// deterministically ordered per-snapshot / per-partition results.
///
/// Thread-count resolution everywhere: an explicit `num_threads` argument
/// wins; 0 falls back to query.num_threads; a final 0 means "all hardware
/// threads"; 1 runs the plain serial code path.

/// Snapshot-parallel CMC (paper Algorithm 1): the per-tick snapshots are
/// interpolated and clustered concurrently in blocks, then candidates are
/// extended sequentially over the tick-ordered cluster lists, so the output
/// is bit-identical to Cmc(). `hooks` (optional) adds cancellation checks in
/// both the parallel clustering lambda and the sequential tracker pass,
/// per-tick progress, and incremental convoy emission (core/exec_hooks.h).
/// `scratch` (optional) is used only when the call degenerates to the
/// serial loop; parallel runs pool one arena per worker chunk internally.
std::vector<Convoy> ParallelCmc(const TrajectoryDatabase& db,
                                const ConvoyQuery& query,
                                const CmcOptions& options = {},
                                DiscoveryStats* stats = nullptr,
                                size_t num_threads = 0,
                                const ExecHooks* hooks = nullptr,
                                SnapshotScratch* scratch = nullptr);

/// Range-restricted variant, mirroring CmcRange().
std::vector<Convoy> ParallelCmcRange(const TrajectoryDatabase& db,
                                     const ConvoyQuery& query, Tick begin_tick,
                                     Tick end_tick,
                                     const CmcOptions& options = {},
                                     DiscoveryStats* stats = nullptr,
                                     size_t num_threads = 0,
                                     const ExecHooks* hooks = nullptr,
                                     SnapshotScratch* scratch = nullptr);

/// Store-backed snapshot-parallel CMC: per-tick clustering reads the
/// SnapshotStore's columnar views and cached grid indexes instead of
/// re-deriving snapshots, with output bit-identical to every other CMC
/// entry point over the store's source database at any thread count.
std::vector<Convoy> ParallelCmc(const SnapshotStore& store,
                                const ConvoyQuery& query,
                                const CmcOptions& options = {},
                                DiscoveryStats* stats = nullptr,
                                size_t num_threads = 0,
                                const ExecHooks* hooks = nullptr,
                                SnapshotScratch* scratch = nullptr);

/// Store-backed range-restricted variant.
std::vector<Convoy> ParallelCmcRange(const SnapshotStore& store,
                                     const ConvoyQuery& query, Tick begin_tick,
                                     Tick end_tick,
                                     const CmcOptions& options = {},
                                     DiscoveryStats* stats = nullptr,
                                     size_t num_threads = 0,
                                     const ExecHooks* hooks = nullptr,
                                     SnapshotScratch* scratch = nullptr);

/// Partition-parallel CuTS filter (paper Algorithm 2): simplification and
/// the per-partition polyline clustering run concurrently in balanced
/// chunks; candidate tracking stays sequential in partition order, so the
/// candidate list comes out exactly as CutsFilter() emits it.
CutsFilterResult ParallelCutsFilter(const TrajectoryDatabase& db,
                                    const ConvoyQuery& query,
                                    CutsFilterOptions options,
                                    DiscoveryStats* stats = nullptr,
                                    size_t num_threads = 0);

/// End-to-end parallel CuTS: ParallelCutsFilter plus multi-threaded
/// refinement. Identical results to Cuts() on every input.
std::vector<Convoy> ParallelCuts(const TrajectoryDatabase& db,
                                 const ConvoyQuery& query,
                                 CutsVariant variant = CutsVariant::kCutsStar,
                                 CutsFilterOptions options = {},
                                 DiscoveryStats* stats = nullptr,
                                 size_t num_threads = 0);

}  // namespace convoy

#endif  // CONVOY_PARALLEL_PARALLEL_RUNNER_H_
