#include "parallel/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "obs/trace.h"

namespace convoy {

namespace {
// The pool whose worker loop is running on this thread, if any. Used to
// detect re-entrant ParallelFor calls (which must not block on the queue
// they would have to drain themselves).
thread_local const ThreadPool* current_pool = nullptr;
}  // namespace

size_t ThreadPool::HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = HardwareThreads();
  // Oversubscribing past a few hundred workers is never useful for this
  // workload and absurd requests (e.g. a -1 that wrapped through an
  // unsigned parse) must not take the process down trying to spawn them.
  constexpr size_t kMaxThreads = 256;
  num_threads = std::min(num_threads, kMaxThreads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::OnWorkerThread() const { return current_pool == this; }

void ThreadPool::WorkerLoop() {
  current_pool = this;
  // Trace spans recorded on this thread land on a track labeled with the
  // worker role (one Chrome-trace track per worker thread).
  SetTraceThreadLabel("pool-worker");
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  auto packaged = std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.emplace_back([packaged] { (*packaged)(); });
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& body,
                             size_t max_chunks) {
  if (n == 0) return;
  size_t chunks = num_threads();
  if (max_chunks > 0) chunks = std::min(chunks, max_chunks);
  chunks = std::min(chunks, n);
  if (chunks <= 1 || OnWorkerThread()) {
    body(0, n);
    return;
  }

  struct JoinState {
    std::mutex mu;
    std::condition_variable done;
    size_t remaining;
    std::vector<std::exception_ptr> errors;
  };
  JoinState state;
  state.remaining = chunks;
  state.errors.resize(chunks);

  // The state lives on this stack frame; the wait below keeps it alive
  // until every chunk has signalled completion.
  const auto run_chunk = [&state, &body, n, chunks](size_t c) {
    const size_t begin = c * n / chunks;
    const size_t end = (c + 1) * n / chunks;
    try {
      body(begin, end);
    } catch (...) {
      state.errors[c] = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(state.mu);
      --state.remaining;
      // Notify while holding the lock: the waiter can only re-check the
      // predicate (and destroy `state`) after we release the mutex, so the
      // condition_variable is never touched after its destruction.
      state.done.notify_all();
    }
  };

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t c = 1; c < chunks; ++c) {
      queue_.emplace_back([run_chunk, c] { run_chunk(c); });
    }
  }
  cv_.notify_all();

  run_chunk(0);
  {
    std::unique_lock<std::mutex> lock(state.mu);
    state.done.wait(lock, [&state] { return state.remaining == 0; });
  }
  for (const std::exception_ptr& error : state.errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace convoy
