#include "parallel/parallel_runner.h"

#include <algorithm>
#include <utility>

#include "core/candidate.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "util/stopwatch.h"

namespace convoy {

namespace {

// The block-parallel CMC loop shared by the row-oriented and store-backed
// entry points, generic over the per-tick clustering `cluster_at(t,
// &clustered, &scratch)`: ticks are clustered concurrently in blocks,
// candidates extended sequentially in tick order — the sequential pass is
// what makes every variant bit-identical to serial CMC.
template <typename ClusterAt>
std::vector<Convoy> ParallelCmcRangeImpl(const ConvoyQuery& query,
                                         Tick begin_tick, Tick end_tick,
                                         const CmcOptions& options,
                                         DiscoveryStats* stats,
                                         size_t threads,
                                         const ExecHooks* hooks,
                                         ClusterAt&& cluster_at) {
  Stopwatch total;
  TraceSession* const trace = TraceOf(hooks);
  ThreadPool pool(threads);
  CandidateTracker tracker(query.m, query.k);
  std::vector<Candidate> completed;

  struct TickClusters {
    std::vector<std::vector<ObjectId>> clusters;
    bool clustered = false;
  };

  // Cluster snapshots in blocks: within a block every tick is clustered
  // concurrently, then the tracker advances sequentially in tick order —
  // that sequential pass is what makes the output bit-identical to serial
  // CMC. Blocks bound peak memory to O(block * clusters-per-tick) instead
  // of the whole time domain.
  const size_t total_ticks =
      static_cast<size_t>(end_tick - begin_tick) + 1;
  const size_t block = std::max<size_t>(threads * 16, 256);
  size_t num_clusterings = 0;
  size_t emitted = 0;
  for (size_t block_begin = 0; block_begin < total_ticks;
       block_begin += block) {
    const size_t block_size = std::min(block, total_ticks - block_begin);
    // One snapshot/DBSCAN arena per contiguous chunk: each worker chunk
    // reuses its arena across its ticks (chunk boundaries are
    // deterministic, and scratch contents never affect results), so the
    // parallel path sheds the same per-tick allocations the serial loop
    // does. Writes land in per-tick slots, keeping tick order.
    std::vector<TickClusters> per_tick(block_size);
    pool.ParallelFor(block_size, [&](size_t chunk_begin, size_t chunk_end) {
      SnapshotScratch scratch;
      for (size_t i = chunk_begin; i < chunk_end; ++i) {
        CheckCancelled(hooks);
        const Tick t = begin_tick + static_cast<Tick>(block_begin + i);
        // Worker-side spans land on the worker's own trace track; the
        // counters folded inside cluster_at are per-tick integer tallies,
        // so their totals are independent of the chunking (and therefore
        // of the thread count).
        ScopedSpan span(trace, "snapshot.cluster");
        per_tick[i].clusters =
            cluster_at(t, &per_tick[i].clustered, &scratch);
      }
    });
    for (size_t i = 0; i < block_size; ++i) {
      CheckCancelled(hooks);
      const Tick t = begin_tick + static_cast<Tick>(block_begin + i);
      if (per_tick[i].clustered) {
        ++num_clusterings;
        TraceCount(trace, TraceCounter::kSnapshotsClustered, 1);
      }
      tracker.Advance(per_tick[i].clusters, t, t, /*step_weight=*/1,
                      &completed);
      emitted = EmitCompletedSince(completed, emitted, hooks);
      ReportProgress(hooks, "cmc", block_begin + i + 1, total_ticks);
    }
  }
  tracker.Flush(&completed);
  EmitCompletedSince(completed, emitted, hooks);
  // The tracker only ever advances on this sequential pass, so its tally
  // is read once here — bit-identical at every thread count.
  TraceTrackerTally(trace, tracker.tally());

  std::vector<Convoy> result;
  {
    ScopedSpan finalize_span(trace, "cmc.finalize");
    result = FinalizeCmcResult(completed, options);
  }

  if (stats != nullptr) {
    stats->num_clusterings += num_clusterings;
    stats->total_seconds += total.ElapsedSeconds();
    stats->num_convoys = result.size();
  }
  return result;
}

}  // namespace

std::vector<Convoy> ParallelCmcRange(const TrajectoryDatabase& db,
                                     const ConvoyQuery& query, Tick begin_tick,
                                     Tick end_tick, const CmcOptions& options,
                                     DiscoveryStats* stats, size_t num_threads,
                                     const ExecHooks* hooks,
                                     SnapshotScratch* scratch) {
  const size_t threads = ResolveWorkerThreads(num_threads, query);
  if (threads <= 1 || begin_tick > end_tick) {
    return CmcRange(db, query, begin_tick, end_tick, options, stats, hooks,
                    scratch);
  }
  TraceSession* const trace = TraceOf(hooks);
  return ParallelCmcRangeImpl(
      query, begin_tick, end_tick, options, stats, threads, hooks,
      [&](Tick t, bool* clustered, SnapshotScratch* worker_scratch) {
        std::vector<std::vector<ObjectId>> clusters =
            SnapshotClusters(db, t, query, clustered, worker_scratch);
        if (*clustered) TraceDbscanRun(trace, worker_scratch->dbscan.tally);
        return clusters;
      });
}

std::vector<Convoy> ParallelCmc(const TrajectoryDatabase& db,
                                const ConvoyQuery& query,
                                const CmcOptions& options,
                                DiscoveryStats* stats, size_t num_threads,
                                const ExecHooks* hooks,
                                SnapshotScratch* scratch) {
  if (db.Empty()) return {};
  return ParallelCmcRange(db, query, db.BeginTick(), db.EndTick(), options,
                          stats, num_threads, hooks, scratch);
}

std::vector<Convoy> ParallelCmcRange(const SnapshotStore& store,
                                     const ConvoyQuery& query, Tick begin_tick,
                                     Tick end_tick, const CmcOptions& options,
                                     DiscoveryStats* stats, size_t num_threads,
                                     const ExecHooks* hooks,
                                     SnapshotScratch* scratch) {
  const size_t threads = ResolveWorkerThreads(num_threads, query);
  if (threads <= 1 || begin_tick > end_tick) {
    return CmcRange(store, query, begin_tick, end_tick, options, stats,
                    hooks, scratch);
  }
  TraceSession* const trace = TraceOf(hooks);
  return ParallelCmcRangeImpl(
      query, begin_tick, end_tick, options, stats, threads, hooks,
      [&](Tick t, bool* clustered, SnapshotScratch* worker_scratch) {
        bool grid_hit = false;
        std::vector<std::vector<ObjectId>> clusters = SnapshotClusters(
            store, t, query, clustered, &worker_scratch->dbscan, &grid_hit);
        if (*clustered) {
          TraceDbscanRun(trace, worker_scratch->dbscan.tally);
          TraceCount(trace,
                     grid_hit ? TraceCounter::kGridCacheHits
                              : TraceCounter::kGridCacheMisses,
                     1);
        }
        return clusters;
      });
}

std::vector<Convoy> ParallelCmc(const SnapshotStore& store,
                                const ConvoyQuery& query,
                                const CmcOptions& options,
                                DiscoveryStats* stats, size_t num_threads,
                                const ExecHooks* hooks,
                                SnapshotScratch* scratch) {
  if (store.Empty()) return {};
  return ParallelCmcRange(store, query, store.begin_tick(), store.end_tick(),
                          options, stats, num_threads, hooks, scratch);
}

CutsFilterResult ParallelCutsFilter(const TrajectoryDatabase& db,
                                    const ConvoyQuery& query,
                                    CutsFilterOptions options,
                                    DiscoveryStats* stats,
                                    size_t num_threads) {
  options.num_threads = ResolveWorkerThreads(
      num_threads > 0 ? num_threads : options.num_threads, query);
  return CutsFilter(db, query, options, stats);
}

std::vector<Convoy> ParallelCuts(const TrajectoryDatabase& db,
                                 const ConvoyQuery& query, CutsVariant variant,
                                 CutsFilterOptions options,
                                 DiscoveryStats* stats, size_t num_threads) {
  const size_t threads = ResolveWorkerThreads(
      num_threads > 0 ? num_threads : options.num_threads, query);
  options.num_threads = threads;
  if (options.refine_threads == 0) options.refine_threads = threads;
  return Cuts(db, query, variant, options, stats);
}

}  // namespace convoy
