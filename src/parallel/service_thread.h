#ifndef CONVOY_PARALLEL_SERVICE_THREAD_H_
#define CONVOY_PARALLEL_SERVICE_THREAD_H_

#include <functional>
#include <thread>
#include <utility>

#include "obs/trace.h"

namespace convoy {

/// A named, joinable thread for long-lived service loops — the second
/// sanctioned way to create a thread in this repo, next to ThreadPool
/// (machine-checked: the raw-thread lint rule confines thread creation to
/// src/parallel).
///
/// ThreadPool is the right home for *bounded computations*: its chunking
/// discipline is what makes parallel results bit-identical, and a blocking
/// accept()/recv() loop parked on a pool worker would starve the pool
/// instead of helping it. ServiceThread exists for exactly those loops —
/// the convoy server's socket acceptor, per-connection readers, and
/// per-stream CMC workers. It spawns one std::thread, labels the thread's
/// trace track (so Chrome trace exports name server threads), and joins in
/// the destructor.
///
/// Determinism note: service threads must never produce results whose
/// order depends on scheduling. The server upholds this by routing all
/// result-producing work through per-stream FIFO rings (src/server/ring.h)
/// consumed by exactly one worker, so convoy output order is a pure
/// function of the input stream — see README "Server".
class ServiceThread {
 public:
  ServiceThread() = default;

  /// Spawns a thread running `body`. `label` must be a string literal (or
  /// otherwise outlive every TraceSession the thread records into) — it
  /// becomes the thread's trace-track label.
  ServiceThread(const char* label, std::function<void()> body)
      : thread_([label, fn = std::move(body)]() mutable {
          SetTraceThreadLabel(label);
          fn();
        }) {}

  /// Joins, so a ServiceThread can never outlive the state its body
  /// captured. Bodies must therefore be unblockable from outside (close
  /// the socket, close the ring) before destruction.
  ~ServiceThread() { Join(); }

  ServiceThread(ServiceThread&&) = default;
  ServiceThread& operator=(ServiceThread&& other) {
    if (this != &other) {
      Join();
      thread_ = std::move(other.thread_);
    }
    return *this;
  }
  ServiceThread(const ServiceThread&) = delete;
  ServiceThread& operator=(const ServiceThread&) = delete;

  /// Blocks until the body returns. Idempotent.
  void Join() {
    if (thread_.joinable()) thread_.join();
  }

  bool Joinable() const { return thread_.joinable(); }

 private:
  std::thread thread_;
};

}  // namespace convoy

#endif  // CONVOY_PARALLEL_SERVICE_THREAD_H_
