#ifndef CONVOY_CORE_VALIDATE_H_
#define CONVOY_CORE_VALIDATE_H_

#include "core/convoy_set.h"
#include "core/cuts_filter.h"
#include "util/status.h"

namespace convoy {

/// Validates a convoy query against Definition 3's domain:
///  * m >= 2 (a convoy is a *group*; the pattern needs at least two objects),
///  * k >= 1 (a lifetime of at least one tick),
///  * e > 0 and finite (the density range is a positive distance).
///
/// The Status-returning entry points (`StreamingCmc`, the `ConvoyEngine`
/// Try* overloads, `convoy_cli`) reject invalid queries up front with this.
/// The legacy free functions (`Cmc`, `Cuts`, `Mc2`) deliberately stay
/// permissive — degenerate queries like m = 1 or e = 0 have well-defined
/// (if rarely useful) semantics there, exercised by edge_cases_test.cc.
Status ValidateQuery(const ConvoyQuery& query);

/// Validates the CuTS filter knobs: delta may be non-positive (meaning
/// "derive automatically with ComputeDelta") but must not be NaN/infinite,
/// since a non-finite delta poisons every simplification tolerance
/// comparison. (lambda is an integral Tick; every value is well-formed,
/// with <= 0 meaning "derive with ComputeLambda".)
Status ValidateFilterOptions(const CutsFilterOptions& options);

}  // namespace convoy

#endif  // CONVOY_CORE_VALIDATE_H_
