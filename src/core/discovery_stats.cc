#include "core/discovery_stats.h"

namespace convoy {

std::ostream& operator<<(std::ostream& os, const DiscoveryStats& s) {
  os << "total=" << s.total_seconds << "s (simplify=" << s.simplify_seconds
     << "s filter=" << s.filter_seconds << "s refine=" << s.refine_seconds
     << "s) candidates=" << s.num_candidates
     << " refinement_unit=" << s.refinement_unit
     << " convoys=" << s.num_convoys;
  return os;
}

}  // namespace convoy
