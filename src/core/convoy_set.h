#ifndef CONVOY_CORE_CONVOY_SET_H_
#define CONVOY_CORE_CONVOY_SET_H_

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "traj/trajectory.h"

namespace convoy {

/// Parameters of a convoy query (paper Definition 3): at least `m` objects
/// density-connected with respect to distance `e` during at least `k`
/// consecutive time points.
struct ConvoyQuery {
  size_t m = 2;   ///< minimum number of objects in a convoy
  Tick k = 2;     ///< minimum lifetime in consecutive ticks
  double e = 1.0; ///< neighborhood range for density connection

  /// Default worker-thread count for the discovery phases that can run in
  /// parallel (snapshot clustering in ParallelCmc, partition clustering in
  /// the CuTS filter, candidate refinement). Per-phase knobs
  /// (CutsFilterOptions::num_threads / refine_threads) override it when
  /// set; 0 means "all hardware threads". Results are identical for every
  /// value — parallelism never changes the output.
  size_t num_threads = 1;
};

/// One discovered convoy: a set of objects together with the maximal time
/// interval during which they travel density-connected.
struct Convoy {
  std::vector<ObjectId> objects;  ///< sorted, unique
  Tick start_tick = 0;
  Tick end_tick = 0;

  /// Number of ticks in [start_tick, end_tick], inclusive.
  Tick Lifetime() const { return end_tick - start_tick + 1; }

  bool operator==(const Convoy& o) const {
    return objects == o.objects && start_tick == o.start_tick &&
           end_tick == o.end_tick;
  }
};

std::ostream& operator<<(std::ostream& os, const Convoy& c);

/// Compact "{1,2,3}@[t0,t9]" rendering for reports and test failures.
std::string ToString(const Convoy& c);

/// True if `big` covers `small`: big's objects are a superset and big's
/// interval contains small's. Every covered convoy is implied by the
/// covering one, so reporting both is redundant.
bool Covers(const Convoy& big, const Convoy& small);

/// Sorts convoys canonically (by start tick, then end tick, then objects)
/// and removes exact duplicates.
void Canonicalize(std::vector<Convoy>* convoys);

/// Removes every convoy that is covered by a different convoy in the set
/// (the dominance pruning described in DESIGN.md). Also canonicalizes.
/// When two convoys cover each other they are identical and one survives.
std::vector<Convoy> RemoveDominated(std::vector<Convoy> convoys);

/// True if the two result sets are equal after canonicalization — the
/// equality the CuTS == CMC exactness property tests assert.
bool SameResultSet(std::vector<Convoy> a, std::vector<Convoy> b);

/// Result-set difference used by the appendix B.1 accuracy study: returns
/// the convoys of `expected` that are not covered by any convoy in `got`.
std::vector<Convoy> Uncovered(const std::vector<Convoy>& expected,
                              const std::vector<Convoy>& got);

}  // namespace convoy

#endif  // CONVOY_CORE_CONVOY_SET_H_
