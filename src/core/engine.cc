#include "core/engine.h"

#include <bit>
#include <utility>

#include "core/cuts_filter.h"
#include "core/validate.h"
#include "obs/trace.h"
#include "query/algorithm.h"
#include "util/cancel.h"
#include "util/stopwatch.h"

namespace convoy {

namespace {

AlgorithmChoice ChoiceFor(CutsVariant variant) {
  switch (variant) {
    case CutsVariant::kCuts:
      return AlgorithmChoice::kCuts;
    case CutsVariant::kCutsPlus:
      return AlgorithmChoice::kCutsPlus;
    case CutsVariant::kCutsStar:
      return AlgorithmChoice::kCutsStar;
  }
  return AlgorithmChoice::kCutsStar;
}

// Span name for the execution of one physical algorithm (string literals —
// TraceEvent never copies names).
const char* AlgorithmSpanName(AlgorithmId id) {
  switch (id) {
    case AlgorithmId::kCmc:
      return "algorithm.cmc";
    case AlgorithmId::kCuts:
      return "algorithm.cuts";
    case AlgorithmId::kCutsPlus:
      return "algorithm.cuts+";
    case AlgorithmId::kCutsStar:
      return "algorithm.cuts*";
    case AlgorithmId::kMc2:
      return "algorithm.mc2";
  }
  return "algorithm";
}

}  // namespace

std::shared_ptr<const std::vector<SimplifiedTrajectory>>
ConvoyEngine::SimplifiedFor(SimplifierKind kind, double delta, size_t threads,
                            bool* cache_hit) const {
  const CacheKey key{kind, std::bit_cast<uint64_t>(delta)};
  if (cache_hit != nullptr) *cache_hit = false;
  std::unique_lock<std::mutex> lock(cache_mu_);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    // Simplify outside the lock so concurrent queries with other keys
    // (or CMC runs) are not serialized behind this one. A racing miss on
    // the same key recomputes; the first emplace wins.
    lock.unlock();
    auto computed = std::make_shared<const std::vector<SimplifiedTrajectory>>(
        SimplifyDatabase(db_, delta, kind, threads));
    lock.lock();
    it = cache_.emplace(key, std::move(computed)).first;
    // Relaxed (both counters): independent monotone tallies surfaced by
    // StoreMetrics, which tolerates missing in-flight increments; they
    // order nothing — the cache entry itself is published under cache_mu_.
    simplify_cache_misses_.fetch_add(1, std::memory_order_relaxed);
  } else {
    if (cache_hit != nullptr) *cache_hit = true;
    simplify_cache_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return it->second;  // entries are immutable; a hit is a pointer copy
}

const DatabaseStats& ConvoyEngine::CachedStats() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (!db_stats_.has_value() || db_stats_generation_ != db_.generation()) {
    db_stats_ = db_.Stats();
    db_stats_generation_ = db_.generation();
  }
  return *db_stats_;
}

std::shared_ptr<const SnapshotStore> ConvoyEngine::Store(size_t num_threads,
                                                         bool* reused) const {
  if (reused != nullptr) *reused = false;
  std::unique_lock<std::mutex> lock(cache_mu_);
  if (store_ != nullptr && !store_->IsStaleFor(db_)) {
    if (reused != nullptr) *reused = true;
    return store_;
  }
  if (store_declined_generation_ == db_.generation()) return nullptr;
  lock.unlock();
  // Over-budget databases (sparse feeds whose domain dwarfs their sample
  // count) decline the store rather than OOM-ing the build; callers fall
  // back to the row-oriented path, which needs per-tick scratch only.
  // The decision is remembered per generation so later queries skip the
  // O(N) estimate.
  if (SnapshotStore::EstimateColumnarSlots(db_) > kSnapshotStoreSlotBudget) {
    lock.lock();
    store_declined_generation_ = db_.generation();
    return nullptr;
  }
  // Build outside the lock (the pass touches every trajectory) so
  // concurrent queries already holding a store are not serialized behind
  // it. Racing misses both build; the first publish wins.
  auto built = std::make_shared<const SnapshotStore>(
      SnapshotStore::Build(db_, num_threads));
  lock.lock();
  if (store_ == nullptr || store_->IsStaleFor(db_)) store_ = built;
  return store_;
}

std::shared_ptr<const SnapshotStore> ConvoyEngine::PeekStore() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return store_ != nullptr && !store_->IsStaleFor(db_) ? store_ : nullptr;
}

EngineStoreMetrics ConvoyEngine::StoreMetrics() const {
  EngineStoreMetrics m;
  // Any fresh-enough store, even mid-build races: the counters live in the
  // store itself, so whichever instance the engine currently publishes
  // carries the traffic it has served.
  if (const std::shared_ptr<const SnapshotStore> store = PeekStore()) {
    m.store = store->CacheMetrics();
  }
  // Relaxed loads: tally reads need no ordering with the cache they
  // describe (see the fetch_add sites in SimplifiedFor).
  m.simplify_cache_hits =
      simplify_cache_hits_.load(std::memory_order_relaxed);
  m.simplify_cache_misses =
      simplify_cache_misses_.load(std::memory_order_relaxed);
  return m;
}

QueryPlan ConvoyEngine::MakePlan(const ConvoyQuery& query,
                                 AlgorithmChoice choice,
                                 const CutsFilterOptions& options,
                                 const Mc2Options& mc2,
                                 TraceSession* trace) const {
  PlannerOptions planner_options;
  planner_options.db_stats = &CachedStats();
  planner_options.trace = trace;
  planner_options.simplify = [this, &query, &options](
                                 SimplifierKind kind, double delta,
                                 bool* hit) {
    return SimplifiedFor(kind, delta,
                         ResolveWorkerThreads(options.num_threads, query),
                         hit);
  };
  planner_options.store = [this, &query, &options](bool build_if_missing,
                                                   bool* reused) {
    if (build_if_missing) {
      return Store(ResolveWorkerThreads(options.num_threads, query), reused);
    }
    std::shared_ptr<const SnapshotStore> peeked = PeekStore();
    if (reused != nullptr) *reused = peeked != nullptr;
    return peeked;
  };
  const QueryPlanner planner(db_, std::move(planner_options));
  return planner.Plan(query, choice, options, mc2);
}

StatusOr<QueryPlan> ConvoyEngine::Prepare(const ConvoyQuery& query,
                                          AlgorithmChoice choice,
                                          const CutsFilterOptions& options,
                                          const Mc2Options& mc2,
                                          TraceSession* trace) const {
  CONVOY_RETURN_IF_ERROR(ValidateQuery(query).WithContext("Prepare"));
  CONVOY_RETURN_IF_ERROR(
      ValidateFilterOptions(options).WithContext("Prepare"));
  return MakePlan(query, choice, options, mc2, trace);
}

ConvoyResultSet ConvoyEngine::RunPlan(const QueryPlan& plan,
                                      const ExecHooks& hooks,
                                      DiscoveryStats* external_stats) const {
  Stopwatch total;
  hooks.cancel.ThrowIfCancelled();

  // The legacy shims pass the caller's DiscoveryStats straight through so
  // the algorithms' historical accumulate-vs-assign behavior per field is
  // preserved exactly (phase times +=, num_convoys/num_candidates =, ...);
  // the v2 Execute path uses a fresh struct reporting this execution only —
  // a reused plan's one-time planning cost is not re-charged per run.
  DiscoveryStats local;
  DiscoveryStats* stats = external_stats != nullptr ? external_stats : &local;

  TraceSession* const trace = hooks.trace;
  ExecContext ctx;
  ctx.db = &db_;
  ctx.plan = &plan;
  ctx.num_threads = ResolveWorkerThreads(0, plan.query);
  ctx.hooks = hooks;
  ctx.stats = stats;
  ctx.trace = trace;
  if (trace != nullptr && ctx.hooks.sink) {
    // Wrap the caller's sink with emission telemetry: time-to-first-convoy
    // and inter-emission delay (both measured from the execution, on the
    // sequential emission pass), plus the emitted-convoy counter. Batch
    // counts are deterministic — emission order is — but the delays are
    // wall-clock like every Observe'd series.
    ctx.hooks.sink = [trace, inner = std::move(ctx.hooks.sink),
                      start_ns = trace->NowNs(),
                      last_ns = std::make_shared<std::optional<uint64_t>>()](
                         std::vector<Convoy>&& batch) {
      trace->Count(TraceCounter::kConvoysEmitted, batch.size());
      const uint64_t now = trace->NowNs();
      if (!last_ns->has_value()) {
        trace->Observe("sink.time_to_first_convoy_ms",
                       static_cast<double>(now - start_ns) / 1e6);
      } else {
        trace->Observe("sink.inter_emission_ms",
                       static_cast<double>(now - **last_ns) / 1e6);
      }
      *last_ns = now;
      inner(std::move(batch));
    };
  }
  // Snapshot-consuming algorithms get the store built (a cache hit in the
  // steady state — Prepare already did it; a hand-built plan pays here);
  // the CuTS family only borrows an existing one for its time domain.
  ctx.store = GetAlgorithm(plan.algorithm).Capabilities().uses_snapshot_store
                  ? Store(ctx.num_threads)
                  : PeekStore();
  ctx.simplified = [this, &plan, stats](SimplifierKind kind, double delta,
                                        bool* hit) {
    // Normally a cache hit (Prepare primed the entry); on a miss — a
    // hand-built plan, or an engine whose cache was raced — the time is
    // real simplification work of this execution.
    bool local_hit = false;
    Stopwatch simplify_watch;
    std::shared_ptr<const std::vector<SimplifiedTrajectory>> result =
        SimplifiedFor(
            kind, delta,
            ResolveWorkerThreads(plan.filter.num_threads, plan.query),
            &local_hit);
    if (!local_hit) stats->simplify_seconds += simplify_watch.ElapsedSeconds();
    if (hit != nullptr) *hit = local_hit;
    return result;
  };

  std::vector<Convoy> convoys;
  {
    ScopedSpan execute_span(trace, "execute");
    ScopedSpan algo_span(trace, AlgorithmSpanName(plan.algorithm));
    convoys = GetAlgorithm(plan.algorithm).Run(ctx);
  }

  if (external_stats == nullptr) {
    stats->num_convoys = convoys.size();
    stats->total_seconds = total.ElapsedSeconds();
  }
  ConvoyResultSet result(std::move(convoys), *stats, plan);
  // Snapshot the whole session — planning spans included when the caller
  // traced Prepare with the same session. The algorithm's workers have
  // joined by here, so the merge sees complete, quiescent buffers.
  if (trace != nullptr) result.set_metrics(trace->Metrics());
  return result;
}

StatusOr<ConvoyResultSet> ConvoyEngine::Execute(const QueryPlan& plan,
                                                ExecHooks hooks) const {
  try {
    return RunPlan(plan, hooks);
  } catch (const CancelledError&) {
    return Status::Cancelled("query cancelled by CancelToken (" +
                             std::string(ToString(plan.algorithm)) + ")");
  }
}

std::vector<Convoy> ConvoyEngine::Discover(const ConvoyQuery& query,
                                           CutsVariant variant,
                                           CutsFilterOptions options,
                                           DiscoveryStats* stats) const {
  Stopwatch total;
  const QueryPlan plan = MakePlan(query, ChoiceFor(variant), options, {});
  // Planning did the simplification (cache miss only): charge it to the
  // caller's stats the way the old single-call body did.
  if (stats != nullptr) stats->simplify_seconds += plan.simplify_seconds;
  ConvoyResultSet result = RunPlan(plan, {}, stats);
  if (stats != nullptr) {
    stats->total_seconds = total.ElapsedSeconds();
    stats->num_convoys = result.Count();
  }
  return std::move(result).TakeConvoys();
}

std::vector<Convoy> ConvoyEngine::DiscoverExact(const ConvoyQuery& query,
                                                DiscoveryStats* stats) const {
  const QueryPlan plan = MakePlan(query, AlgorithmChoice::kCmc, {}, {});
  ConvoyResultSet result = RunPlan(plan, {}, stats);
  return std::move(result).TakeConvoys();
}

StatusOr<std::vector<Convoy>> ConvoyEngine::TryDiscover(
    const ConvoyQuery& query, CutsVariant variant, CutsFilterOptions options,
    DiscoveryStats* stats) const {
  CONVOY_RETURN_IF_ERROR(ValidateQuery(query).WithContext("TryDiscover"));
  CONVOY_RETURN_IF_ERROR(
      ValidateFilterOptions(options).WithContext("TryDiscover"));
  return Discover(query, variant, options, stats);
}

StatusOr<std::vector<Convoy>> ConvoyEngine::TryDiscoverExact(
    const ConvoyQuery& query, DiscoveryStats* stats) const {
  CONVOY_RETURN_IF_ERROR(
      ValidateQuery(query).WithContext("TryDiscoverExact"));
  return DiscoverExact(query, stats);
}

std::optional<Convoy> ConvoyEngine::LongestConvoy(
    const std::vector<Convoy>& result) {
  return LongestConvoyOf(result);
}

std::vector<Convoy> ConvoyEngine::Involving(const std::vector<Convoy>& result,
                                            ObjectId id) {
  return ConvoysInvolving(result, id);
}

std::vector<Convoy> ConvoyEngine::During(const std::vector<Convoy>& result,
                                         Tick from, Tick to) {
  return ConvoysDuring(result, from, to);
}

}  // namespace convoy
