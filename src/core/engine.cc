#include "core/engine.h"

#include <algorithm>
#include <cmath>

#include "core/cmc.h"
#include "core/cuts_refine.h"
#include "core/params.h"
#include "core/validate.h"
#include "parallel/parallel_runner.h"
#include "util/stopwatch.h"

namespace convoy {

std::vector<Convoy> ConvoyEngine::Discover(const ConvoyQuery& query,
                                           CutsVariant variant,
                                           CutsFilterOptions options,
                                           DiscoveryStats* stats) {
  Stopwatch total;
  options = MakeFilterOptions(variant, options);
  const double delta =
      options.delta > 0.0 ? options.delta : ComputeDelta(db_, query.e);

  const CacheKey key{options.simplifier,
                     static_cast<int64_t>(std::llround(delta * 1e6))};
  std::vector<SimplifiedTrajectory> simplified;
  {
    std::unique_lock<std::mutex> lock(cache_mu_);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      // Simplify outside the lock so concurrent queries with other keys
      // (or CMC runs) are not serialized behind this one. A racing miss on
      // the same key recomputes; the first emplace wins.
      lock.unlock();
      Stopwatch simplify;
      std::vector<SimplifiedTrajectory> computed =
          SimplifyDatabase(db_, delta, options.simplifier,
                           ResolveWorkerThreads(options.num_threads, query));
      if (stats != nullptr) {
        stats->simplify_seconds += simplify.ElapsedSeconds();
      }
      lock.lock();
      it = cache_.emplace(key, std::move(computed)).first;
    }
    simplified = it->second;  // copied under the lock; entries never mutate
  }

  const CutsFilterResult filtered = CutsFilterPresimplified(
      db_, query, options, std::move(simplified), delta, stats);
  std::vector<Convoy> result =
      CutsRefine(db_, query, filtered.candidates, options.refine_mode, stats,
                 ResolveWorkerThreads(options.refine_threads, query));
  if (stats != nullptr) {
    stats->total_seconds = total.ElapsedSeconds();
    stats->num_convoys = result.size();
  }
  return result;
}

std::vector<Convoy> ConvoyEngine::DiscoverExact(const ConvoyQuery& query,
                                                DiscoveryStats* stats) const {
  // ParallelCmc degenerates to the serial CMC loop for num_threads == 1 and
  // is result-identical for every other value.
  return ParallelCmc(db_, query, {}, stats);
}

StatusOr<std::vector<Convoy>> ConvoyEngine::TryDiscover(
    const ConvoyQuery& query, CutsVariant variant, CutsFilterOptions options,
    DiscoveryStats* stats) {
  CONVOY_RETURN_IF_ERROR(ValidateQuery(query).WithContext("TryDiscover"));
  CONVOY_RETURN_IF_ERROR(
      ValidateFilterOptions(options).WithContext("TryDiscover"));
  return Discover(query, variant, options, stats);
}

StatusOr<std::vector<Convoy>> ConvoyEngine::TryDiscoverExact(
    const ConvoyQuery& query, DiscoveryStats* stats) const {
  CONVOY_RETURN_IF_ERROR(
      ValidateQuery(query).WithContext("TryDiscoverExact"));
  return DiscoverExact(query, stats);
}

std::optional<Convoy> ConvoyEngine::LongestConvoy(
    const std::vector<Convoy>& result) {
  if (result.empty()) return std::nullopt;
  const auto best = std::max_element(
      result.begin(), result.end(), [](const Convoy& a, const Convoy& b) {
        if (a.Lifetime() != b.Lifetime()) return a.Lifetime() < b.Lifetime();
        return a.objects.size() < b.objects.size();
      });
  return *best;
}

std::vector<Convoy> ConvoyEngine::Involving(const std::vector<Convoy>& result,
                                            ObjectId id) {
  std::vector<Convoy> out;
  for (const Convoy& c : result) {
    if (std::binary_search(c.objects.begin(), c.objects.end(), id)) {
      out.push_back(c);
    }
  }
  return out;
}

std::vector<Convoy> ConvoyEngine::During(const std::vector<Convoy>& result,
                                         Tick from, Tick to) {
  std::vector<Convoy> out;
  for (const Convoy& c : result) {
    if (c.start_tick <= to && from <= c.end_tick) out.push_back(c);
  }
  return out;
}

}  // namespace convoy
