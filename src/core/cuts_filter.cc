#include "core/cuts_filter.h"

#include <algorithm>

#include "core/params.h"
#include "util/stopwatch.h"

namespace convoy {

CutsFilterResult CutsFilter(const TrajectoryDatabase& db,
                            const ConvoyQuery& query,
                            const CutsFilterOptions& options,
                            DiscoveryStats* stats) {
  if (db.Empty()) return CutsFilterResult{};

  Stopwatch phase;
  const double delta =
      options.delta > 0.0 ? options.delta : ComputeDelta(db, query.e);
  std::vector<SimplifiedTrajectory> simplified =
      SimplifyDatabase(db, delta, options.simplifier);
  if (stats != nullptr) stats->simplify_seconds += phase.ElapsedSeconds();

  return CutsFilterPresimplified(db, query, options, std::move(simplified),
                                 delta, stats);
}

CutsFilterResult CutsFilterPresimplified(
    const TrajectoryDatabase& db, const ConvoyQuery& query,
    const CutsFilterOptions& options,
    std::vector<SimplifiedTrajectory> simplified, double delta_used,
    DiscoveryStats* stats) {
  CutsFilterResult result;
  if (db.Empty()) return result;
  result.delta_used = delta_used;
  result.simplified = std::move(simplified);
  if (stats != nullptr) {
    stats->delta_used = result.delta_used;
    stats->vertex_reduction_percent =
        VertexReductionPercent(db, result.simplified);
  }

  // --- Filter phase ---------------------------------------------------------
  Stopwatch phase;
  result.lambda_used = options.lambda > 0
                           ? options.lambda
                           : ComputeLambda(db, result.simplified, query.k);
  if (stats != nullptr) stats->lambda_used = result.lambda_used;

  const Tick begin = db.BeginTick();
  const Tick end = db.EndTick();
  const Tick lambda = std::max<Tick>(result.lambda_used, 1);

  CandidateTracker tracker(query.m, query.k);
  PolylineClusterStats cluster_stats;
  PolylineDbscanOptions cluster_options;
  cluster_options.eps = query.e;
  cluster_options.min_pts = query.m;
  cluster_options.distance = options.distance;
  cluster_options.use_box_pruning = options.use_box_pruning;
  cluster_options.use_rtree = options.use_rtree;

  std::vector<PartitionPolyline> polylines;
  std::vector<std::vector<ObjectId>> cluster_objects;

  for (Tick part_start = begin; part_start <= end; part_start += lambda) {
    const Tick part_end = std::min<Tick>(part_start + lambda - 1, end);

    // Gather each object's sub-polyline: the simplified segments whose time
    // intervals intersect the partition (a segment spanning a boundary goes
    // into both partitions, as in Figure 9(b)).
    polylines.clear();
    for (const SimplifiedTrajectory& simp : result.simplified) {
      PartitionPolyline poly;
      poly.object = simp.id();
      if (simp.NumSegments() == 0) {
        // Single-sample trajectory: represent it as a degenerate zero-
        // length segment so the filter can still see the object (a
        // one-tick convoy through it must not be dismissed).
        if (simp.NumVertices() != 1) continue;
        const TimedPoint& v = simp.vertices().front();
        if (v.t < part_start || v.t > part_end) continue;
        poly.segments.push_back(TimedSegment(v, v));
        poly.tolerances.push_back(0.0);
      } else {
        const auto range = simp.SegmentsIntersecting(part_start, part_end);
        if (!range.has_value()) continue;
        for (size_t s = range->first; s <= range->second; ++s) {
          poly.segments.push_back(simp.GetSegment(s));
          poly.tolerances.push_back(options.use_actual_tolerance
                                        ? simp.SegmentTolerance(s)
                                        : result.delta_used);
        }
      }
      poly.FinalizeBounds();
      polylines.push_back(std::move(poly));
    }

    cluster_objects.clear();
    if (polylines.size() >= query.m) {
      const Clustering clustering =
          PolylineDbscan(polylines, cluster_options, &cluster_stats);
      if (stats != nullptr) ++stats->num_clusterings;
      for (const std::vector<size_t>& cluster : clustering.clusters) {
        std::vector<ObjectId> ids;
        ids.reserve(cluster.size());
        for (const size_t idx : cluster) ids.push_back(polylines[idx].object);
        std::sort(ids.begin(), ids.end());
        cluster_objects.push_back(std::move(ids));
      }
    }
    tracker.Advance(cluster_objects, part_start, part_end,
                    /*step_weight=*/lambda, &result.candidates);
  }
  tracker.Flush(&result.candidates);

  if (stats != nullptr) {
    stats->filter_seconds += phase.ElapsedSeconds();
    stats->num_candidates = result.candidates.size();
    stats->polyline_pair_tests += cluster_stats.pair_tests;
    stats->polyline_box_pruned += cluster_stats.box_pruned;
    stats->segment_distance_tests += cluster_stats.segment_tests;
    for (const Candidate& cand : result.candidates) {
      const double n = static_cast<double>(cand.objects.size());
      const double lifetime =
          static_cast<double>(cand.end_tick - cand.start_tick + 1);
      stats->refinement_unit += n * n * lifetime;
    }
  }
  return result;
}

}  // namespace convoy
