#include "core/cuts_filter.h"

#include <algorithm>
#include <utility>

#include "cluster/polyline_soa.h"
#include "core/cmc.h"
#include "core/params.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "traj/snapshot_store.h"
#include "util/stopwatch.h"

namespace convoy {

size_t ResolveWorkerThreads(size_t phase_threads, const ConvoyQuery& query) {
  if (phase_threads > 0) return phase_threads;
  return ResolveThreadCount(query.num_threads);
}

std::vector<PartitionPolyline> BuildPartitionPolylines(
    const std::vector<SimplifiedTrajectory>& simplified, Tick part_start,
    Tick part_end, bool use_actual_tolerance, double delta_used) {
  std::vector<PartitionPolyline> polylines;
  for (const SimplifiedTrajectory& simp : simplified) {
    PartitionPolyline poly;
    poly.object = simp.id();
    if (simp.NumSegments() == 0) {
      // Single-sample trajectory: represent it as a degenerate zero-
      // length segment so the filter can still see the object (a
      // one-tick convoy through it must not be dismissed).
      if (simp.NumVertices() != 1) continue;
      const TimedPoint& v = simp.vertices().front();
      if (v.t < part_start || v.t > part_end) continue;
      poly.segments.push_back(TimedSegment(v, v));
      poly.tolerances.push_back(0.0);
    } else {
      const auto range = simp.SegmentsIntersecting(part_start, part_end);
      if (!range.has_value()) continue;
      for (size_t s = range->first; s <= range->second; ++s) {
        poly.segments.push_back(simp.GetSegment(s));
        poly.tolerances.push_back(use_actual_tolerance
                                      ? simp.SegmentTolerance(s)
                                      : delta_used);
      }
    }
    poly.FinalizeBounds();
    polylines.push_back(std::move(poly));
  }
  return polylines;
}

namespace {

// The result of clustering one time partition: the cluster object-id lists
// the tracker consumes, plus per-partition stats so parallel runs can
// aggregate them deterministically (in partition order).
struct PartitionClusters {
  std::vector<std::vector<ObjectId>> cluster_objects;
  PolylineClusterStats cluster_stats;
  size_t num_polylines = 0;
  bool clustered = false;
};

// `scratch` is the worker's arena: the SoA storage and every clustering
// buffer live there and are reused across the partitions one worker
// processes, so the steady-state hot path performs no allocations.
PartitionClusters ClusterPartition(
    const std::vector<SimplifiedTrajectory>& simplified, Tick part_start,
    Tick part_end, const ConvoyQuery& query, const CutsFilterOptions& options,
    double delta_used, PolylineDbscanScratch* scratch) {
  PartitionClusters out;
  BuildPolylineSoa(simplified, part_start, part_end,
                   options.use_actual_tolerance, delta_used, &scratch->soa);
  out.num_polylines = scratch->soa.NumPolylines();
  if (out.num_polylines < query.m) return out;

  PolylineDbscanOptions cluster_options;
  cluster_options.eps = query.e;
  cluster_options.min_pts = query.m;
  cluster_options.distance = options.distance;
  cluster_options.use_box_pruning = options.use_box_pruning;
  cluster_options.use_rtree = options.use_rtree;

  const Clustering clustering =
      PolylineDbscanSoa(cluster_options, scratch, &out.cluster_stats);
  out.clustered = true;
  // One polyline per object and DBSCAN partitions are disjoint, so the
  // partition's object-id clusters are disjoint sorted sets — the invariant
  // CandidateTracker::Advance's labeled single-pass intersection relies on
  // (overlap would silently demote it to the pairwise fallback).
  for (const std::vector<size_t>& cluster : clustering.clusters) {
    std::vector<ObjectId> ids;
    ids.reserve(cluster.size());
    for (const size_t idx : cluster) ids.push_back(scratch->soa.object[idx]);
    std::sort(ids.begin(), ids.end());
    out.cluster_objects.push_back(std::move(ids));
  }
  return out;
}

}  // namespace

CutsFilterResult CutsFilter(const TrajectoryDatabase& db,
                            const ConvoyQuery& query,
                            const CutsFilterOptions& options,
                            DiscoveryStats* stats) {
  if (db.Empty()) return CutsFilterResult{};

  Stopwatch phase;
  const double delta =
      options.delta > 0.0 ? options.delta : ComputeDelta(db, query.e);
  std::vector<SimplifiedTrajectory> simplified =
      SimplifyDatabase(db, delta, options.simplifier,
                       ResolveWorkerThreads(options.num_threads, query));
  if (stats != nullptr) stats->simplify_seconds += phase.ElapsedSeconds();

  return CutsFilterPresimplified(db, query, options, std::move(simplified),
                                 delta, stats);
}

CutsFilterResult CutsFilterPresimplified(
    const TrajectoryDatabase& db, const ConvoyQuery& query,
    const CutsFilterOptions& options,
    std::vector<SimplifiedTrajectory> simplified, double delta_used,
    DiscoveryStats* stats, const ExecHooks* hooks,
    const SnapshotStore* store) {
  CutsFilterResult result;
  if (db.Empty()) return result;
  result.delta_used = delta_used;
  result.simplified = std::move(simplified);
  if (stats != nullptr) {
    stats->delta_used = result.delta_used;
    stats->vertex_reduction_percent =
        VertexReductionPercent(db, result.simplified);
  }

  // --- Filter phase ---------------------------------------------------------
  Stopwatch phase;
  result.lambda_used = options.lambda > 0
                           ? options.lambda
                           : ComputeLambda(db, result.simplified, query.k);
  if (stats != nullptr) stats->lambda_used = result.lambda_used;

  // The store materializes the time domain at build; without one, the
  // bounds cost a full trajectory scan each.
  const Tick begin = store != nullptr ? store->begin_tick() : db.BeginTick();
  const Tick end = store != nullptr ? store->end_tick() : db.EndTick();
  const Tick lambda = std::max<Tick>(result.lambda_used, 1);

  std::vector<std::pair<Tick, Tick>> partitions;
  for (Tick part_start = begin; part_start <= end; part_start += lambda) {
    partitions.emplace_back(part_start,
                            std::min<Tick>(part_start + lambda - 1, end));
  }

  // Cluster the partitions (concurrently when asked to — partitions are
  // independent), then advance the candidate tracker sequentially in
  // partition order. The sequential tracker pass is what makes the
  // parallel filter bit-identical to the serial one.
  const size_t threads =
      std::min(ResolveWorkerThreads(options.num_threads, query),
               partitions.size());
  TraceSession* const trace = TraceOf(hooks);
  CandidateTracker tracker(query.m, query.k);
  PolylineClusterStats cluster_stats;
  size_t num_clusterings = 0;
  const auto consume = [&](size_t i, const PartitionClusters& part) {
    CheckCancelled(hooks);
    TraceCount(trace, TraceCounter::kFilterPartitions, 1);
    TraceCount(trace, TraceCounter::kFilterPolylines, part.num_polylines);
    TraceCount(trace, TraceCounter::kFilterSegmentTests,
               part.cluster_stats.segment_tests);
    TraceCount(trace, TraceCounter::kFilterMbrRejects,
               part.cluster_stats.mbr_rejects);
    if (part.clustered) ++num_clusterings;
    cluster_stats.pair_tests += part.cluster_stats.pair_tests;
    cluster_stats.box_pruned += part.cluster_stats.box_pruned;
    cluster_stats.segment_tests += part.cluster_stats.segment_tests;
    cluster_stats.mbr_rejects += part.cluster_stats.mbr_rejects;
    tracker.Advance(part.cluster_objects, partitions[i].first,
                    partitions[i].second, /*step_weight=*/lambda,
                    &result.candidates);
    ReportProgress(hooks, "filter", i + 1, partitions.size());
  };
  if (threads > 1) {
    // Blocks bound peak memory to O(block) buffered partition results
    // instead of the whole time domain (mirroring ParallelCmcRange).
    ThreadPool pool(threads);
    const size_t block = std::max<size_t>(threads * 16, 256);
    std::vector<PartitionClusters> per_partition;
    for (size_t block_begin = 0; block_begin < partitions.size();
         block_begin += block) {
      const size_t block_size =
          std::min(block, partitions.size() - block_begin);
      per_partition.clear();
      per_partition.resize(block_size);
      // One scratch arena per contiguous chunk: a worker clusters its whole
      // chunk out of a single reused allocation set.
      pool.ParallelFor(block_size, [&](size_t chunk_begin, size_t chunk_end) {
        PolylineDbscanScratch scratch;
        for (size_t i = chunk_begin; i < chunk_end; ++i) {
          CheckCancelled(hooks);
          ScopedSpan span(trace, "filter.partition");
          const auto& part = partitions[block_begin + i];
          per_partition[i] =
              ClusterPartition(result.simplified, part.first, part.second,
                               query, options, result.delta_used, &scratch);
        }
      });
      for (size_t i = 0; i < block_size; ++i) {
        consume(block_begin + i, per_partition[i]);
      }
    }
  } else {
    // Serial path streams one partition at a time — no buffering; the
    // scratch arena is hoisted so every partition reuses it.
    PolylineDbscanScratch scratch;
    for (size_t i = 0; i < partitions.size(); ++i) {
      CheckCancelled(hooks);
      PartitionClusters part;
      {
        ScopedSpan span(trace, "filter.partition");
        part = ClusterPartition(result.simplified, partitions[i].first,
                                partitions[i].second, query, options,
                                result.delta_used, &scratch);
      }
      consume(i, part);
    }
  }
  tracker.Flush(&result.candidates);
  // Read once after the sequential consume pass — thread-count invariant.
  TraceTrackerTally(trace, tracker.tally());

  if (stats != nullptr) {
    stats->filter_seconds += phase.ElapsedSeconds();
    stats->num_candidates = result.candidates.size();
    stats->num_clusterings += num_clusterings;
    stats->polyline_pair_tests += cluster_stats.pair_tests;
    stats->polyline_box_pruned += cluster_stats.box_pruned;
    stats->segment_distance_tests += cluster_stats.segment_tests;
    stats->segment_mbr_rejects += cluster_stats.mbr_rejects;
    for (const Candidate& cand : result.candidates) {
      const double n = static_cast<double>(cand.objects.size());
      const double lifetime =
          static_cast<double>(cand.end_tick - cand.start_tick + 1);
      stats->refinement_unit += n * n * lifetime;
    }
  }
  return result;
}

}  // namespace convoy
