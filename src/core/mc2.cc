#include "core/mc2.h"

#include <algorithm>
#include <map>

#include "core/candidate.h"
#include "core/cmc.h"
#include "core/verify.h"
#include "traj/interpolate.h"

namespace convoy {

namespace {

// One live moving-cluster chain: the most recent snapshot cluster plus the
// intersection of every cluster seen so far.
struct Chain {
  std::vector<ObjectId> current;  ///< cluster at the previous tick
  std::vector<ObjectId> common;   ///< intersection across the chain
  Tick start_tick = 0;
  Tick end_tick = 0;
};

double Jaccard(const std::vector<ObjectId>& a,
               const std::vector<ObjectId>& b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t common = IntersectSorted(a, b).size();
  const size_t uni = a.size() + b.size() - common;
  return static_cast<double>(common) / static_cast<double>(uni);
}

// The moving-cluster chaining loop, generic over how a tick's clusters are
// produced so the row-oriented and store-backed entry points share one
// implementation (and the same snapshot path as CMC — ClusterSnapshot /
// the store's cached grid indexes).
template <typename ClusterAt>
std::vector<Convoy> Mc2Impl(Tick begin_tick, Tick end_tick,
                            const Mc2Options& options, ClusterAt&& cluster_at) {
  std::vector<Convoy> reports;
  std::vector<Chain> live;

  const auto finish = [&](const Chain& chain) {
    if (chain.end_tick - chain.start_tick + 1 < options.min_duration) return;
    if (chain.common.size() < 2) return;
    reports.push_back(Convoy{chain.common, chain.start_tick, chain.end_tick});
  };

  for (Tick t = begin_tick; t <= end_tick; ++t) {
    const std::vector<std::vector<ObjectId>> clusters = cluster_at(t);

    // Extend chains whose previous cluster overlaps a current cluster by at
    // least theta; like the convoy tracker, splits spawn one successor per
    // qualifying pair and identical successors collapse.
    std::map<std::vector<ObjectId>, Chain> next;
    const auto offer = [&next](Chain chain) {
      auto [it, inserted] = next.try_emplace(chain.current, chain);
      if (!inserted && chain.start_tick < it->second.start_tick) {
        it->second = chain;
      }
    };

    std::vector<bool> cluster_used(clusters.size(), false);
    for (const Chain& chain : live) {
      bool extended = false;
      for (size_t ci = 0; ci < clusters.size(); ++ci) {
        if (Jaccard(chain.current, clusters[ci]) < options.theta) continue;
        extended = true;
        cluster_used[ci] = true;
        Chain successor;
        successor.current = clusters[ci];
        successor.common = IntersectSorted(chain.common, clusters[ci]);
        successor.start_tick = chain.start_tick;
        successor.end_tick = t;
        offer(std::move(successor));
      }
      if (!extended) finish(chain);
    }
    for (size_t ci = 0; ci < clusters.size(); ++ci) {
      if (cluster_used[ci]) continue;
      Chain fresh;
      fresh.current = clusters[ci];
      fresh.common = clusters[ci];
      fresh.start_tick = t;
      fresh.end_tick = t;
      offer(std::move(fresh));
    }

    live.clear();
    live.reserve(next.size());
    for (auto& [key, chain] : next) live.push_back(std::move(chain));
  }
  for (const Chain& chain : live) finish(chain);

  Canonicalize(&reports);
  return reports;
}

}  // namespace

std::vector<Convoy> Mc2(const TrajectoryDatabase& db, const ConvoyQuery& query,
                        const Mc2Options& options) {
  if (db.Empty()) return {};
  std::vector<Point> snapshot;
  std::vector<ObjectId> snapshot_ids;
  return Mc2Impl(db.BeginTick(), db.EndTick(), options, [&](Tick t) {
    snapshot.clear();
    snapshot_ids.clear();
    for (const Trajectory& traj : db.trajectories()) {
      const auto pos = InterpolateAt(traj, t);
      if (!pos.has_value()) continue;
      snapshot.push_back(*pos);
      snapshot_ids.push_back(traj.id());
    }
    return ClusterSnapshot(snapshot, snapshot_ids, query);
  });
}

std::vector<Convoy> Mc2(const SnapshotStore& store, const ConvoyQuery& query,
                        const Mc2Options& options) {
  if (store.Empty()) return {};
  return Mc2Impl(store.begin_tick(), store.end_tick(), options, [&](Tick t) {
    return SnapshotClusters(store, t, query);
  });
}

Mc2Accuracy MeasureMc2Accuracy(const TrajectoryDatabase& db,
                               const ConvoyQuery& query,
                               const Mc2Options& options,
                               const std::vector<Convoy>& exact_result) {
  Mc2Accuracy acc;
  const std::vector<Convoy> reported = Mc2(db, query, options);
  acc.reported = reported.size();
  acc.actual = exact_result.size();

  size_t false_pos = 0;
  for (const Convoy& r : reported) {
    if (!VerifyConvoy(db, query, r)) ++false_pos;
  }
  if (!reported.empty()) {
    acc.false_positive_pct =
        100.0 * static_cast<double>(false_pos) /
        static_cast<double>(reported.size());
  }

  const std::vector<Convoy> missed = Uncovered(exact_result, reported);
  if (!exact_result.empty()) {
    acc.false_negative_pct = 100.0 * static_cast<double>(missed.size()) /
                             static_cast<double>(exact_result.size());
  }
  return acc;
}

}  // namespace convoy
