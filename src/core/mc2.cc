#include "core/mc2.h"

#include <algorithm>
#include <map>

#include "core/candidate.h"
#include "core/cmc.h"
#include "core/verify.h"
#include "traj/interpolate.h"

namespace convoy {

namespace {

// One live moving-cluster chain: the most recent snapshot cluster plus the
// intersection of every cluster seen so far.
struct Chain {
  std::vector<ObjectId> current;  ///< cluster at the previous tick
  std::vector<ObjectId> common;   ///< intersection across the chain
  Tick start_tick = 0;
  Tick end_tick = 0;
};

double Jaccard(const std::vector<ObjectId>& a,
               const std::vector<ObjectId>& b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t common = IntersectSorted(a, b).size();
  const size_t uni = a.size() + b.size() - common;
  return static_cast<double>(common) / static_cast<double>(uni);
}

// The moving-cluster chaining loop, generic over how a tick's clusters are
// produced so the row-oriented and store-backed entry points share one
// implementation (and the same snapshot path as CMC — ClusterSnapshot /
// the store's cached grid indexes).
template <typename ClusterAt>
std::vector<Convoy> Mc2Impl(Tick begin_tick, Tick end_tick,
                            const Mc2Options& options, ClusterAt&& cluster_at) {
  std::vector<Convoy> reports;
  std::vector<Chain> live;
  ClusterLabeler labeler;
  std::vector<size_t> overlap_count;
  std::vector<uint32_t> touched;

  const auto finish = [&](const Chain& chain) {
    if (chain.end_tick - chain.start_tick + 1 < options.min_duration) return;
    if (chain.common.size() < 2) return;
    reports.push_back(Convoy{chain.common, chain.start_tick, chain.end_tick});
  };

  for (Tick t = begin_tick; t <= end_tick; ++t) {
    const std::vector<std::vector<ObjectId>> clusters = cluster_at(t);

    // Extend chains whose previous cluster overlaps a current cluster by at
    // least theta; like the convoy tracker, splits spawn one successor per
    // qualifying pair and identical successors collapse.
    std::map<std::vector<ObjectId>, Chain> next;
    const auto offer = [&next](Chain chain) {
      auto [it, inserted] = next.try_emplace(chain.current, chain);
      if (!inserted && chain.start_tick < it->second.start_tick) {
        it->second = chain;
      }
    };

    // Snapshot clusters are disjoint, so every |chain.current ∩ cluster|
    // of the tick falls out of one labeled pass over chain.current — and
    // the Jaccard screen needs only those counts. Clusters the chain never
    // touches have overlap 0 and a Jaccard of 0, so they qualify only for
    // theta <= 0, where (like the overlapping-cluster API edge) the
    // pairwise loop below handles them instead.
    const bool labeled = options.theta > 0.0 && labeler.Label(clusters);
    if (overlap_count.size() < clusters.size()) {
      overlap_count.resize(clusters.size(), 0);
    }

    const auto extend = [&](const Chain& chain, size_t ci, bool* extended,
                            std::vector<bool>* cluster_used) {
      *extended = true;
      (*cluster_used)[ci] = true;
      Chain successor;
      successor.current = clusters[ci];
      successor.common = IntersectSorted(chain.common, clusters[ci]);
      successor.start_tick = chain.start_tick;
      successor.end_tick = t;
      offer(std::move(successor));
    };

    std::vector<bool> cluster_used(clusters.size(), false);
    for (const Chain& chain : live) {
      bool extended = false;
      if (labeled) {
        touched.clear();
        for (const ObjectId id : chain.current) {
          const uint32_t c = labeler.LabelOf(id);
          if (c == ClusterLabeler::kNoLabel) continue;
          if (overlap_count[c] == 0) touched.push_back(c);
          ++overlap_count[c];
        }
        std::sort(touched.begin(), touched.end());
        for (const uint32_t ci : touched) {
          // The same arithmetic Jaccard() applies, fed by the counted
          // intersection size instead of a materialized intersection.
          const size_t common = overlap_count[ci];
          overlap_count[ci] = 0;
          const size_t uni =
              chain.current.size() + clusters[ci].size() - common;
          const double jaccard =
              static_cast<double>(common) / static_cast<double>(uni);
          if (jaccard < options.theta) continue;
          extend(chain, ci, &extended, &cluster_used);
        }
      } else {
        for (size_t ci = 0; ci < clusters.size(); ++ci) {
          if (Jaccard(chain.current, clusters[ci]) < options.theta) continue;
          extend(chain, ci, &extended, &cluster_used);
        }
      }
      if (!extended) finish(chain);
    }
    for (size_t ci = 0; ci < clusters.size(); ++ci) {
      if (cluster_used[ci]) continue;
      Chain fresh;
      fresh.current = clusters[ci];
      fresh.common = clusters[ci];
      fresh.start_tick = t;
      fresh.end_tick = t;
      offer(std::move(fresh));
    }

    live.clear();
    live.reserve(next.size());
    for (auto& [key, chain] : next) live.push_back(std::move(chain));
  }
  for (const Chain& chain : live) finish(chain);

  Canonicalize(&reports);
  return reports;
}

}  // namespace

std::vector<Convoy> Mc2(const TrajectoryDatabase& db, const ConvoyQuery& query,
                        const Mc2Options& options) {
  if (db.Empty()) return {};
  std::vector<Point> snapshot;
  std::vector<ObjectId> snapshot_ids;
  return Mc2Impl(db.BeginTick(), db.EndTick(), options, [&](Tick t) {
    snapshot.clear();
    snapshot_ids.clear();
    for (const Trajectory& traj : db.trajectories()) {
      const auto pos = InterpolateAt(traj, t);
      if (!pos.has_value()) continue;
      snapshot.push_back(*pos);
      snapshot_ids.push_back(traj.id());
    }
    return ClusterSnapshot(snapshot, snapshot_ids, query);
  });
}

std::vector<Convoy> Mc2(const SnapshotStore& store, const ConvoyQuery& query,
                        const Mc2Options& options) {
  if (store.Empty()) return {};
  return Mc2Impl(store.begin_tick(), store.end_tick(), options, [&](Tick t) {
    return SnapshotClusters(store, t, query);
  });
}

Mc2Accuracy MeasureMc2Accuracy(const TrajectoryDatabase& db,
                               const ConvoyQuery& query,
                               const Mc2Options& options,
                               const std::vector<Convoy>& exact_result) {
  Mc2Accuracy acc;
  const std::vector<Convoy> reported = Mc2(db, query, options);
  acc.reported = reported.size();
  acc.actual = exact_result.size();

  size_t false_pos = 0;
  for (const Convoy& r : reported) {
    if (!VerifyConvoy(db, query, r)) ++false_pos;
  }
  if (!reported.empty()) {
    acc.false_positive_pct =
        100.0 * static_cast<double>(false_pos) /
        static_cast<double>(reported.size());
  }

  const std::vector<Convoy> missed = Uncovered(exact_result, reported);
  if (!exact_result.empty()) {
    acc.false_negative_pct = 100.0 * static_cast<double>(missed.size()) /
                             static_cast<double>(exact_result.size());
  }
  return acc;
}

}  // namespace convoy
