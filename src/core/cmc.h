#ifndef CONVOY_CORE_CMC_H_
#define CONVOY_CORE_CMC_H_

#include <vector>

#include "core/convoy_set.h"
#include "core/discovery_stats.h"
#include "traj/database.h"

namespace convoy {

/// Options for the Coherent Moving Cluster algorithm.
struct CmcOptions {
  /// When true (default) the raw candidate output is dominance-pruned so
  /// the result contains only maximal convoys. Disable to inspect the raw
  /// candidate algebra (some tests do).
  bool remove_dominated = true;
};

/// CMC — Coherent Moving Cluster (paper Algorithm 1, Section 4): the exact
/// baseline convoy-discovery algorithm. For every tick it interpolates
/// virtual points for objects with missing samples, clusters the snapshot
/// with DBSCAN(e, m), and intersects the clusters with the candidates kept
/// from the previous tick; candidates that survive k consecutive ticks are
/// convoys.
///
/// Runs over the database's full time domain.
std::vector<Convoy> Cmc(const TrajectoryDatabase& db, const ConvoyQuery& query,
                        const CmcOptions& options = {},
                        DiscoveryStats* stats = nullptr);

/// CMC restricted to ticks [begin_tick, end_tick] — the refinement step of
/// CuTS runs this on each candidate's objects and time interval
/// (paper Algorithm 3).
std::vector<Convoy> CmcRange(const TrajectoryDatabase& db,
                             const ConvoyQuery& query, Tick begin_tick,
                             Tick end_tick, const CmcOptions& options = {},
                             DiscoveryStats* stats = nullptr);

}  // namespace convoy

#endif  // CONVOY_CORE_CMC_H_
