#ifndef CONVOY_CORE_CMC_H_
#define CONVOY_CORE_CMC_H_

#include <vector>

#include "cluster/dbscan.h"
#include "core/candidate.h"
#include "core/convoy_set.h"
#include "core/discovery_stats.h"
#include "core/exec_hooks.h"
#include "geom/point.h"
#include "traj/database.h"
#include "traj/snapshot_store.h"

namespace convoy {

class TraceSession;

/// Options for the Coherent Moving Cluster algorithm.
struct CmcOptions {
  /// When true (default) the raw candidate output is dominance-pruned so
  /// the result contains only maximal convoys. Disable to inspect the raw
  /// candidate algebra (some tests do).
  bool remove_dominated = true;
};

/// Scratch buffers a caller may reuse across SnapshotClusters calls so the
/// per-tick loops do not reallocate the snapshot, the grid index, or the
/// DBSCAN working set every iteration. Serial loops hold one; the parallel
/// runners hold one per worker chunk; the query executor carries one in its
/// ExecContext. Contents never carry information between ticks (everything
/// is reset per use), so reuse cannot change results.
struct SnapshotScratch {
  std::vector<Point> points;
  std::vector<ObjectId> ids;
  DbscanScratch dbscan;
};

/// CMC — Coherent Moving Cluster (paper Algorithm 1, Section 4): the exact
/// baseline convoy-discovery algorithm. For every tick it interpolates
/// virtual points for objects with missing samples, clusters the snapshot
/// with DBSCAN(e, m), and intersects the clusters with the candidates kept
/// from the previous tick; candidates that survive k consecutive ticks are
/// convoys.
///
/// Runs over the database's full time domain. `hooks` (optional) adds
/// per-tick cancellation checks, progress reports, and incremental convoy
/// emission — see core/exec_hooks.h; results are unaffected. `scratch`
/// (optional) supplies the per-tick arena; without one a call-local arena
/// is used, so passing it only moves the allocation, never the result.
std::vector<Convoy> Cmc(const TrajectoryDatabase& db, const ConvoyQuery& query,
                        const CmcOptions& options = {},
                        DiscoveryStats* stats = nullptr,
                        const ExecHooks* hooks = nullptr,
                        SnapshotScratch* scratch = nullptr);

/// CMC restricted to ticks [begin_tick, end_tick] — the refinement step of
/// CuTS runs this on each candidate's objects and time interval
/// (paper Algorithm 3).
std::vector<Convoy> CmcRange(const TrajectoryDatabase& db,
                             const ConvoyQuery& query, Tick begin_tick,
                             Tick end_tick, const CmcOptions& options = {},
                             DiscoveryStats* stats = nullptr,
                             const ExecHooks* hooks = nullptr,
                             SnapshotScratch* scratch = nullptr);

/// Store-backed CMC: identical to Cmc(db, ...) over the database the store
/// was built from — the store's per-tick columnar views reproduce the
/// row-oriented snapshot gather bit for bit — but skips all per-tick
/// re-derivation (interpolation, alive-object scans) and reuses the
/// store's cached per-tick grid indexes at query.e instead of rebuilding
/// them every call.
std::vector<Convoy> Cmc(const SnapshotStore& store, const ConvoyQuery& query,
                        const CmcOptions& options = {},
                        DiscoveryStats* stats = nullptr,
                        const ExecHooks* hooks = nullptr,
                        SnapshotScratch* scratch = nullptr);

/// Store-backed range-restricted CMC, mirroring CmcRange(db, ...).
std::vector<Convoy> CmcRange(const SnapshotStore& store,
                             const ConvoyQuery& query, Tick begin_tick,
                             Tick end_tick, const CmcOptions& options = {},
                             DiscoveryStats* stats = nullptr,
                             const ExecHooks* hooks = nullptr,
                             SnapshotScratch* scratch = nullptr);

/// The per-tick unit of work of CMC, shared by the serial loop above and
/// the snapshot-parallel runner (parallel/parallel_runner.h): every object
/// alive at `t` contributes its (possibly interpolated) position, the
/// snapshot is clustered with DBSCAN(query.e, query.m) over a per-snapshot
/// grid index, and each cluster comes back as a sorted object-id list.
/// Snapshots with fewer than m alive objects return an empty list without
/// clustering. `clustered` (optional) reports whether DBSCAN actually ran,
/// for stats accounting; `scratch` (optional) supplies reusable snapshot
/// buffers.
std::vector<std::vector<ObjectId>> SnapshotClusters(
    const TrajectoryDatabase& db, Tick t, const ConvoyQuery& query,
    bool* clustered = nullptr, SnapshotScratch* scratch = nullptr);

/// Store-backed per-tick unit of work: clusters the store's columnar view
/// of tick `t` over the store's cached grid index at query.e. Identical
/// output to SnapshotClusters(db, t, ...) on the source database.
/// `scratch` (optional) supplies the reusable DBSCAN working set.
/// `grid_cache_hit` (optional out) reports whether the store served the
/// grid from its cache (meaningful only when `clustered` comes back true —
/// under-m ticks never consult the cache).
std::vector<std::vector<ObjectId>> SnapshotClusters(
    const SnapshotStore& store, Tick t, const ConvoyQuery& query,
    bool* clustered = nullptr, DbscanScratch* scratch = nullptr,
    bool* grid_cache_hit = nullptr);

/// Clusters one already-materialized snapshot (`points` with aligned
/// `ids`): DBSCAN(query.e, query.m) over a fresh grid index, clusters
/// returned as sorted object-id lists, snapshots smaller than m skipped.
/// The snapshot path shared by batch CMC, MC2, and StreamingCmc — one
/// implementation, so their per-tick semantics can never drift apart.
/// With `scratch`, the grid index and DBSCAN working set build into the
/// caller's arena instead of allocating per snapshot.
std::vector<std::vector<ObjectId>> ClusterSnapshot(
    const std::vector<Point>& points, const std::vector<ObjectId>& ids,
    const ConvoyQuery& query, bool* clustered = nullptr,
    DbscanScratch* scratch = nullptr);

/// The shared tail of CMC: converts completed candidates to convoys and
/// applies dominance pruning (or mere canonicalization, per `options`).
std::vector<Convoy> FinalizeCmcResult(const std::vector<Candidate>& completed,
                                      const CmcOptions& options);

/// Converts completed candidates [from, end) to convoys and hands them to
/// the hooks' incremental sink (no-op without one) — the emission tail
/// shared by the serial and parallel CMC loops, so their sink streams
/// cannot diverge. Returns the new emission watermark.
size_t EmitCompletedSince(const std::vector<Candidate>& completed, size_t from,
                          const ExecHooks* hooks);

/// Folds one clustering run's DBSCAN tally into the trace — the shared
/// counting step of the serial loop, the parallel runner, and the stream
/// (one call per clustered tick, so a disabled trace costs one branch per
/// tick). No-op on a null trace.
void TraceDbscanRun(TraceSession* trace, const DbscanTally& tally);

/// Folds a tracker's lifetime tally into the trace, once per run on the
/// sequential pass — which is what keeps the totals bit-identical at every
/// thread count. No-op on a null trace.
void TraceTrackerTally(TraceSession* trace, const TrackerTally& tally);

}  // namespace convoy

#endif  // CONVOY_CORE_CMC_H_
