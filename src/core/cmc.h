#ifndef CONVOY_CORE_CMC_H_
#define CONVOY_CORE_CMC_H_

#include <vector>

#include "core/candidate.h"
#include "core/convoy_set.h"
#include "core/discovery_stats.h"
#include "core/exec_hooks.h"
#include "geom/point.h"
#include "traj/database.h"

namespace convoy {

/// Options for the Coherent Moving Cluster algorithm.
struct CmcOptions {
  /// When true (default) the raw candidate output is dominance-pruned so
  /// the result contains only maximal convoys. Disable to inspect the raw
  /// candidate algebra (some tests do).
  bool remove_dominated = true;
};

/// CMC — Coherent Moving Cluster (paper Algorithm 1, Section 4): the exact
/// baseline convoy-discovery algorithm. For every tick it interpolates
/// virtual points for objects with missing samples, clusters the snapshot
/// with DBSCAN(e, m), and intersects the clusters with the candidates kept
/// from the previous tick; candidates that survive k consecutive ticks are
/// convoys.
///
/// Runs over the database's full time domain. `hooks` (optional) adds
/// per-tick cancellation checks, progress reports, and incremental convoy
/// emission — see core/exec_hooks.h; results are unaffected.
std::vector<Convoy> Cmc(const TrajectoryDatabase& db, const ConvoyQuery& query,
                        const CmcOptions& options = {},
                        DiscoveryStats* stats = nullptr,
                        const ExecHooks* hooks = nullptr);

/// CMC restricted to ticks [begin_tick, end_tick] — the refinement step of
/// CuTS runs this on each candidate's objects and time interval
/// (paper Algorithm 3).
std::vector<Convoy> CmcRange(const TrajectoryDatabase& db,
                             const ConvoyQuery& query, Tick begin_tick,
                             Tick end_tick, const CmcOptions& options = {},
                             DiscoveryStats* stats = nullptr,
                             const ExecHooks* hooks = nullptr);

/// Scratch buffers a caller may reuse across SnapshotClusters calls so the
/// serial per-tick loop does not reallocate the snapshot every iteration.
struct SnapshotScratch {
  std::vector<Point> points;
  std::vector<ObjectId> ids;
};

/// The per-tick unit of work of CMC, shared by the serial loop above and
/// the snapshot-parallel runner (parallel/parallel_runner.h): every object
/// alive at `t` contributes its (possibly interpolated) position, the
/// snapshot is clustered with DBSCAN(query.e, query.m) over a per-snapshot
/// grid index, and each cluster comes back as a sorted object-id list.
/// Snapshots with fewer than m alive objects return an empty list without
/// clustering. `clustered` (optional) reports whether DBSCAN actually ran,
/// for stats accounting; `scratch` (optional) supplies reusable snapshot
/// buffers.
std::vector<std::vector<ObjectId>> SnapshotClusters(
    const TrajectoryDatabase& db, Tick t, const ConvoyQuery& query,
    bool* clustered = nullptr, SnapshotScratch* scratch = nullptr);

/// The shared tail of CMC: converts completed candidates to convoys and
/// applies dominance pruning (or mere canonicalization, per `options`).
std::vector<Convoy> FinalizeCmcResult(const std::vector<Candidate>& completed,
                                      const CmcOptions& options);

}  // namespace convoy

#endif  // CONVOY_CORE_CMC_H_
