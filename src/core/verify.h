#ifndef CONVOY_CORE_VERIFY_H_
#define CONVOY_CORE_VERIFY_H_

#include "core/convoy_set.h"
#include "traj/database.h"

namespace convoy {

/// Independent checker of the convoy definition (paper Definition 3),
/// implemented directly from first principles — no shared code with the
/// discovery algorithms — so tests and the Appendix B.1 accuracy study can
/// use it as ground truth.
///
/// `candidate` qualifies when:
///  * it has at least query.m objects,
///  * its interval spans at least query.k ticks,
///  * at every tick of the interval all of its objects are alive and belong
///    to one common DBSCAN(e, m) cluster of the *full* snapshot (density
///    connection is defined over all objects' locations, matching how CMC
///    constructs convoys).
bool VerifyConvoy(const TrajectoryDatabase& db, const ConvoyQuery& query,
                  const Convoy& candidate);

/// True if all of the candidate's objects are in one density-connected
/// cluster of the snapshot at tick t (and all alive). Exposed for tests.
bool ObjectsConnectedAt(const TrajectoryDatabase& db, const ConvoyQuery& query,
                        const std::vector<ObjectId>& objects, Tick t);

}  // namespace convoy

#endif  // CONVOY_CORE_VERIFY_H_
