#ifndef CONVOY_CORE_FLOCK_H_
#define CONVOY_CORE_FLOCK_H_

#include <vector>

#include "core/convoy_set.h"
#include "geom/point.h"
#include "traj/database.h"

namespace convoy {

/// Parameters of a flock query (Gudmundsson et al.; paper Section 1 and
/// 2.1): at least `m` objects staying together within a *disc of radius
/// `radius`* for at least `k` consecutive ticks. The disc may be placed
/// anywhere — it is not centered on an object.
struct FlockQuery {
  size_t m = 2;
  Tick k = 2;
  double radius = 1.0;
};

/// All maximal groups of >= m objects that fit in some radius-`radius`
/// disc at tick positions interpolated like CMC's. Exact: uses the classic
/// O(N^3) candidate-disc enumeration (every maximal disc group is realized
/// by a disc through two points, or centered on one point). Exposed for
/// tests and for the snapshot step of FlockDiscovery.
std::vector<std::vector<ObjectId>> FlockSnapshotGroups(
    const std::vector<Point>& positions, const std::vector<ObjectId>& ids,
    double radius, size_t m);

/// Flock discovery over a trajectory database, with the same candidate
/// bookkeeping across ticks as convoy discovery (so the *only* semantic
/// difference from Cmc is disc containment versus density connection).
///
/// This baseline exists to quantify the paper's Figure 1 "lossy flock"
/// motivation: a linear formation whose extent exceeds the disc diameter is
/// found by the convoy query but missed by every flock query with that
/// disc — see tests/flock_test.cc and bench/fig1_lossy_flock.
std::vector<Convoy> FlockDiscovery(const TrajectoryDatabase& db,
                                   const FlockQuery& query);

}  // namespace convoy

#endif  // CONVOY_CORE_FLOCK_H_
