#include "core/validate.h"

#include <cmath>
#include <string>

namespace convoy {

Status ValidateQuery(const ConvoyQuery& query) {
  if (query.m < 2) {
    return Status::InvalidArgument(
        "query.m = " + std::to_string(query.m) +
        "; a convoy needs at least 2 objects (Definition 3)");
  }
  if (query.k < 1) {
    return Status::InvalidArgument(
        "query.k = " + std::to_string(query.k) +
        "; the minimum lifetime must be at least 1 tick");
  }
  if (!std::isfinite(query.e) || query.e <= 0.0) {
    return Status::InvalidArgument(
        "query.e = " + std::to_string(query.e) +
        "; the density range must be a finite positive distance");
  }
  return Status::Ok();
}

Status ValidateFilterOptions(const CutsFilterOptions& options) {
  if (std::isnan(options.delta) || std::isinf(options.delta)) {
    return Status::InvalidArgument(
        "options.delta = " + std::to_string(options.delta) +
        "; the simplification tolerance must be finite (<= 0 means "
        "derive it with ComputeDelta)");
  }
  return Status::Ok();
}

}  // namespace convoy
