#include "core/streaming.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "core/cmc.h"
#include "core/validate.h"
#include "obs/trace.h"

namespace convoy {

StreamingCmc::StreamingCmc(const ConvoyQuery& query, const Options& options)
    : query_(query),
      options_(options),
      query_status_(ValidateQuery(query)),
      tracker_(query.m, query.k) {}

Status StreamingCmc::BeginTick(Tick t) {
  if (!query_status_.ok()) {
    return query_status_.WithContext("StreamingCmc has an invalid query");
  }
  if (current_tick_.has_value()) {
    return Status::FailedPrecondition(
        "BeginTick(" + std::to_string(t) + ") while tick " +
        std::to_string(*current_tick_) + " is still open (EndTick() missing)");
  }
  if (last_processed_.has_value() && t <= *last_processed_) {
    return Status::InvalidArgument(
        "BeginTick(" + std::to_string(t) + ") is not after the last " +
        "processed tick " + std::to_string(*last_processed_) +
        "; ticks must be fed in strictly increasing order");
  }
  // Process skipped ticks as empty snapshots so that candidate lifetimes
  // remain strictly consecutive.
  if (last_processed_.has_value()) {
    for (Tick gap = *last_processed_ + 1; gap < t; ++gap) AdvanceEmpty(gap);
  }
  current_tick_ = t;
  snapshot_.clear();
  return Status::Ok();
}

Status StreamingCmc::Report(ObjectId id, const Point& position) {
  if (!current_tick_.has_value()) {
    return Status::FailedPrecondition(
        "Report(" + std::to_string(id) + ") outside a tick "
        "(BeginTick() missing)");
  }
  if (!std::isfinite(position.x) || !std::isfinite(position.y)) {
    return Status::InvalidArgument(
        "Report(" + std::to_string(id) + ") at tick " +
        std::to_string(*current_tick_) + ": non-finite position (" +
        std::to_string(position.x) + ", " + std::to_string(position.y) + ")");
  }
  snapshot_[id] = position;
  return Status::Ok();
}

void StreamingCmc::AdvanceEmpty(Tick t) {
  tracker_.Advance({}, t, t, /*step_weight=*/1, &completed_);
}

StatusOr<std::vector<Convoy>> StreamingCmc::EndTick() {
  if (!current_tick_.has_value()) {
    return Status::FailedPrecondition(
        "EndTick() outside a tick (BeginTick() missing)");
  }
  const Tick t = *current_tick_;
  // One trace branch per tick; the clock only runs with a trace attached.
  const uint64_t tick_start = trace_ != nullptr ? trace_->NowNs() : 0;

  // Record last-seen for the objects actually reported this tick BEFORE
  // carrying silent ones forward: a carried entry must keep the tick of
  // its last real report, or one tick of carry allowance would refresh
  // itself and bridge unbounded silence.
  // Keyed upsert per id; the resulting last_seen_ contents are
  // iteration-order-free.
  // convoy-lint: allow-line(unordered-iter)
  for (const auto& [id, pos] : snapshot_) {
    last_seen_[id] = LastSeen{pos, t};
  }
  // Carry forward recently seen objects that stayed silent this tick.
  if (options_.carry_forward_ticks > 0) {
    // Keyed inserts into snapshot_; the resulting map contents are
    // iteration-order-free.
    // convoy-lint: allow-line(unordered-iter)
    for (const auto& [id, seen] : last_seen_) {
      if (snapshot_.count(id) > 0) continue;
      if (t - seen.tick <= options_.carry_forward_ticks) {
        snapshot_.emplace(id, seen.position);
      }
    }
  }

  // The snapshot path shared with batch CMC / MC2 (ClusterSnapshot): the
  // stream differs only in where the positions come from, never in how a
  // snapshot is clustered. Under-m ticks skip the gather entirely — on a
  // sparse stream most ticks end here.
  std::vector<std::vector<ObjectId>> clusters;
  bool clustered = false;
  if (snapshot_.size() >= query_.m) {
    gather_points_.clear();
    gather_ids_.clear();
    gather_points_.reserve(snapshot_.size());
    gather_ids_.reserve(snapshot_.size());
    // Gather in ascending id order, never hash-map order: DBSCAN assigns
    // a border point to whichever core point reaches it first, so the
    // cluster input order must be a pure function of the reported
    // (id, position) set. unordered_map iteration order depends on
    // bucket history (and standard-library version) — feeding it to the
    // clusterer made identical ticks potentially cluster differently.
    // convoy-lint: allow-line(unordered-iter) — keys only; sorted below.
    for (const auto& [id, pos] : snapshot_) gather_ids_.push_back(id);
    std::sort(gather_ids_.begin(), gather_ids_.end());
    for (const ObjectId id : gather_ids_) {
      gather_points_.push_back(snapshot_.find(id)->second);
    }
    clusters = ClusterSnapshot(gather_points_, gather_ids_, query_,
                               &clustered, &dbscan_scratch_);
  }
  tracker_.Advance(clusters, t, t, /*step_weight=*/1, &completed_);

  last_processed_ = t;
  current_tick_.reset();
  if (trace_ != nullptr) {
    if (clustered) {
      trace_->Count(TraceCounter::kSnapshotsClustered, 1);
      TraceDbscanRun(trace_, dbscan_scratch_.tally);
    }
    const uint64_t tick_end = trace_->NowNs();
    trace_->RecordSpan("stream.tick", tick_start, tick_end);
    trace_->Observe("stream.tick_ms",
                    static_cast<double>(tick_end - tick_start) / 1e6);
  }
  return DrainCompleted();
}

StatusOr<std::vector<Convoy>> StreamingCmc::Finish() {
  if (current_tick_.has_value()) {
    return Status::FailedPrecondition(
        "Finish() while tick " + std::to_string(*current_tick_) +
        " is still open (EndTick() missing)");
  }
  tracker_.Flush(&completed_);
  last_seen_.clear();
  TraceTrackerTally(trace_, tracker_.tally());
  return DrainCompleted();
}

std::vector<Convoy> StreamingCmc::OpenConvoys() const {
  std::vector<Convoy> open;
  for (const Candidate& cand : tracker_.live()) {
    if (cand.lifetime >= query_.k) open.push_back(cand.ToConvoy());
  }
  return open;
}

std::vector<Convoy> StreamingCmc::DrainCompleted() {
  std::vector<Convoy> out;
  out.reserve(completed_.size());
  for (const Candidate& cand : completed_) out.push_back(cand.ToConvoy());
  completed_.clear();
  if (options_.remove_dominated) {
    out = RemoveDominated(std::move(out));
  } else {
    Canonicalize(&out);
  }
  return out;
}

}  // namespace convoy
