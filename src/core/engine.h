#ifndef CONVOY_CORE_ENGINE_H_
#define CONVOY_CORE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "core/convoy_set.h"
#include "core/cuts.h"
#include "core/discovery_stats.h"
#include "core/exec_hooks.h"
#include "core/mc2.h"
#include "query/planner.h"
#include "query/result_set.h"
#include "simplify/simplifier.h"
#include "traj/database.h"
#include "traj/snapshot_store.h"
#include "util/status.h"

namespace convoy {

/// Engine-lifetime cache counters, accumulated across every query the
/// engine has served — available without an active trace (the per-query
/// view of the same events lives in ConvoyResultSet::metrics). Snapshot
/// via ConvoyEngine::StoreMetrics.
struct EngineStoreMetrics {
  /// Grid-cache traffic of the engine's SnapshotStore (zero while no
  /// store has been built).
  StoreCacheMetrics store;
  /// Simplification-cache hits/misses across Prepare/Execute/Discover.
  uint64_t simplify_cache_hits = 0;
  uint64_t simplify_cache_misses = 0;
};

/// High-level convoy query interface over a fixed trajectory database.
///
/// The primary API is the planner/executor pair:
///
///   ConvoyEngine engine(std::move(db));
///   StatusOr<QueryPlan> plan = engine.Prepare(query);   // validate + plan
///   std::cout << plan->Explain();                       // inspect (EXPLAIN)
///   StatusOr<ConvoyResultSet> result = engine.Execute(*plan);
///
/// Prepare validates the query, picks a physical algorithm (exact CMC,
/// CuTS/CuTS+/CuTS*, or — explicitly only — approximate MC2), and resolves
/// the Section 7.4 tunables; Execute runs the plan and returns a
/// ConvoyResultSet owning convoys + stats + plan. Execute optionally takes
/// ExecHooks: a cooperative CancelToken (a fired token aborts the run with
/// StatusCode::kCancelled), a progress callback, and an incremental sink
/// that receives verified convoys while the query still runs.
///
/// Analysts rarely run one query: they sweep `e`, `m`, and `k` until the
/// result set is meaningful (the paper tunes e per dataset until 1-100
/// convoys appear). The engine amortizes the query-independent work — the
/// trajectory simplifications, which depend only on (simplifier, delta) —
/// across such sweeps.
///
/// The pre-v2 entry points (Discover, DiscoverExact, Try*) remain as thin
/// forwarding shims over Prepare/Execute with bit-identical results
/// (enforced by tests/query_exec_test.cc); prefer the v2 API in new code.
///
/// Thread-safety: const after construction except for the internal
/// simplification cache and memoized database statistics, which are
/// mutex-guarded, so concurrent Prepare / Execute / Discover calls from
/// different threads are safe without external synchronization. Two threads
/// missing the same cache key may both compute the simplification; the
/// first insert wins and the duplicate work is discarded (benign, and only
/// on the first query of a sweep). Cache entries are immutable shared
/// snapshots: readers hold a shared_ptr, and consumers that need ownership
/// (the filter) copy the vector themselves.
class ConvoyEngine {
 public:
  explicit ConvoyEngine(TrajectoryDatabase db) : db_(std::move(db)) {}

  const TrajectoryDatabase& db() const { return db_; }

  // ----------------------------------------------------------- v2 API ----

  /// Validates the query and filter options (ValidateQuery /
  /// ValidateFilterOptions; kInvalidArgument on violation) and resolves
  /// them into an executable QueryPlan: the physical algorithm (the
  /// QueryPlanner's auto-policy for kAuto, otherwise the explicit choice),
  /// delta/lambda via the ComputeDelta/ComputeLambda guidelines (priming
  /// the simplification cache — the plan records hit/miss), and work
  /// estimates from database statistics. The plan is inspectable via
  /// QueryPlan::Explain() and reusable across Execute calls.
  /// `trace` (optional) records planning spans ("prepare",
  /// "prepare.simplify") and cache/store counters into a TraceSession
  /// (obs/trace.h); pass the same session to Execute via ExecHooks::trace
  /// for a single merged timeline.
  StatusOr<QueryPlan> Prepare(const ConvoyQuery& query,
                              AlgorithmChoice choice = AlgorithmChoice::kAuto,
                              const CutsFilterOptions& options = {},
                              const Mc2Options& mc2 = {},
                              TraceSession* trace = nullptr) const;

  /// Runs a prepared plan. Returns the materialized ConvoyResultSet, or
  /// kCancelled when `hooks.cancel` fired mid-run (the query unwinds at its
  /// next per-tick/per-partition cancellation point; no partial state
  /// escapes — the engine cache only ever publishes complete entries and a
  /// later re-Execute returns the full, correct result). `hooks.progress`
  /// and `hooks.sink` deliver progress and incremental convoys on the
  /// calling thread; see core/exec_hooks.h.
  StatusOr<ConvoyResultSet> Execute(const QueryPlan& plan,
                                    ExecHooks hooks = {}) const;

  // -------------------------------------------- legacy API (shims) ------

  /// Runs a convoy query with the given CuTS variant. Thin forwarding shim
  /// over Prepare/Execute (minus validation: like the free functions, it
  /// trusts its inputs, and degenerate queries get their
  /// degenerate-but-defined answers). Servers handling untrusted query
  /// parameters should call TryDiscover or Prepare, which validate first.
  std::vector<Convoy> Discover(const ConvoyQuery& query,
                               CutsVariant variant = CutsVariant::kCutsStar,
                               CutsFilterOptions options = {},
                               DiscoveryStats* stats = nullptr) const;

  /// Runs the exact CMC baseline. Shim over the kCmc plan.
  std::vector<Convoy> DiscoverExact(const ConvoyQuery& query,
                                    DiscoveryStats* stats = nullptr) const;

  /// Validating form of Discover: rejects out-of-contract queries and
  /// filter options (ValidateQuery / ValidateFilterOptions — m < 2, k < 1,
  /// non-positive or non-finite e, NaN delta, ...) with a descriptive
  /// kInvalidArgument Status instead of computing a garbage answer. This is
  /// the entry point for untrusted parameters (HTTP handlers, CLIs);
  /// enforced in every build type, including NDEBUG.
  StatusOr<std::vector<Convoy>> TryDiscover(
      const ConvoyQuery& query, CutsVariant variant = CutsVariant::kCutsStar,
      CutsFilterOptions options = {}, DiscoveryStats* stats = nullptr) const;

  /// Validating form of DiscoverExact.
  StatusOr<std::vector<Convoy>> TryDiscoverExact(
      const ConvoyQuery& query, DiscoveryStats* stats = nullptr) const;

  /// Legacy statics, forwarding to the query/result_set.h free helpers
  /// (ConvoyResultSet offers the same operations as methods, plus TopK).
  static std::optional<Convoy> LongestConvoy(
      const std::vector<Convoy>& result);
  static std::vector<Convoy> Involving(const std::vector<Convoy>& result,
                                       ObjectId id);
  static std::vector<Convoy> During(const std::vector<Convoy>& result,
                                    Tick from, Tick to);

  /// Number of cached simplification sets (for tests / monitoring).
  size_t CacheSize() const {
    std::lock_guard<std::mutex> lock(cache_mu_);
    return cache_.size();
  }

  /// The engine's cached SnapshotStore: built on first use (any Prepare,
  /// Execute, or legacy Discover), then shared by every later query until
  /// the database generation changes. `reused` (optional out) reports
  /// whether the call was served from cache; `num_threads` sizes the build
  /// pass on a miss (0 = all hardware threads). Thread-safe; the returned
  /// pointer stays valid across a concurrent rebuild. Returns null — and
  /// every query runs the legacy row-oriented path — when materializing
  /// the database would exceed kSnapshotStoreSlotBudget.
  std::shared_ptr<const SnapshotStore> Store(size_t num_threads = 0,
                                             bool* reused = nullptr) const;

  /// The cached store if one is already built and fresh, else null —
  /// never triggers a build. Non-snapshot-consuming plans (CuTS) use this
  /// to borrow an existing store's time domain without paying for one.
  std::shared_ptr<const SnapshotStore> PeekStore() const;

  /// Engine-lifetime cache counters: the store's grid-cache traffic plus
  /// the simplification cache's hits/misses, accumulated across every
  /// query since construction. Always maintained (relaxed atomics — no
  /// trace required); exact once concurrent queries have returned.
  EngineStoreMetrics StoreMetrics() const;

 private:
  /// Keyed on the simplifier and the *exact bit pattern* of delta. An
  /// earlier version truncated delta to integer micro-units, which aliased
  /// any two deltas within 1e-6 of each other (and every delta below 1e-6
  /// to zero) onto one entry, returning the wrong simplification for the
  /// second query; the bit pattern makes distinct doubles distinct keys
  /// (regression-tested in engine_test.cc).
  using CacheKey = std::pair<SimplifierKind, uint64_t>;

  /// The database simplified with (kind, delta) as an immutable shared
  /// snapshot, served from cache_ when present; computes with `threads`
  /// workers and inserts on miss. `cache_hit` (optional out) reports
  /// which happened. A hit costs a map lookup and a shared_ptr copy —
  /// consumers needing ownership copy the vector themselves.
  std::shared_ptr<const std::vector<SimplifiedTrajectory>> SimplifiedFor(
      SimplifierKind kind, double delta, size_t threads,
      bool* cache_hit) const;

  /// db_.Stats(), memoized and keyed on the database generation counter —
  /// the same counter the SnapshotStore uses — so repeated Prepare calls
  /// on an unchanged database never rescan the trajectories (guarded by
  /// cache_mu_).
  const DatabaseStats& CachedStats() const;

  /// Prepare without validation — the permissive planning path the legacy
  /// shims use.
  QueryPlan MakePlan(const ConvoyQuery& query, AlgorithmChoice choice,
                     const CutsFilterOptions& options, const Mc2Options& mc2,
                     TraceSession* trace = nullptr) const;

  /// Execute's body; throws CancelledError instead of returning a Status
  /// (Execute converts, the non-cancellable shims call it directly).
  /// `external_stats` (legacy shims) routes the algorithms' instrumentation
  /// into the caller's struct with the historical accumulate-vs-assign
  /// semantics; null (v2 Execute) reports this execution in a fresh struct.
  ConvoyResultSet RunPlan(const QueryPlan& plan, const ExecHooks& hooks,
                          DiscoveryStats* external_stats = nullptr) const;

  TrajectoryDatabase db_;
  /// Guards cache_, db_stats_ (+ generation), and store_. The GUARDED_BY
  /// comments below are machine-checked by tools/lint (guarded-member):
  /// mutating an annotated member in a function that never takes the
  /// named mutex is a lint error.
  mutable std::mutex cache_mu_;
  mutable std::map<CacheKey,
                   std::shared_ptr<const std::vector<SimplifiedTrajectory>>>
      cache_;                                  // GUARDED_BY(cache_mu_)
  mutable std::optional<DatabaseStats> db_stats_;  // GUARDED_BY(cache_mu_)
  mutable uint64_t db_stats_generation_ = 0;   // GUARDED_BY(cache_mu_)
  /// The tick-partitioned store, built lazily and invalidated when its
  /// built_generation falls behind db_.generation() (impossible through
  /// the engine's own const surface — belt and braces for future mutable
  /// entry points). shared_ptr so in-flight executions keep their store
  /// alive across a rebuild.
  mutable std::shared_ptr<const SnapshotStore>
      store_;                                  // GUARDED_BY(cache_mu_)
  /// Generation at which the store was last declined as over budget, so
  /// repeated queries against an over-budget database do not re-pay the
  /// O(N) estimate on every Prepare/Execute.
  mutable std::optional<uint64_t>
      store_declined_generation_;              // GUARDED_BY(cache_mu_)
  /// Engine-lifetime simplification-cache counters (see StoreMetrics).
  /// Atomic rather than cache_mu_-guarded: SimplifiedFor counts its result
  /// after dropping the lock.
  mutable std::atomic<uint64_t> simplify_cache_hits_{0};
  mutable std::atomic<uint64_t> simplify_cache_misses_{0};
};

}  // namespace convoy

#endif  // CONVOY_CORE_ENGINE_H_
