#ifndef CONVOY_CORE_ENGINE_H_
#define CONVOY_CORE_ENGINE_H_

#include <map>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "core/convoy_set.h"
#include "core/cuts.h"
#include "core/discovery_stats.h"
#include "simplify/simplifier.h"
#include "traj/database.h"
#include "util/status.h"

namespace convoy {

/// High-level convoy query interface over a fixed trajectory database.
///
/// Analysts rarely run one query: they sweep `e`, `m`, and `k` until the
/// result set is meaningful (the paper tunes e per dataset until 1-100
/// convoys appear). The engine amortizes the query-independent work — the
/// trajectory simplifications, which depend only on (simplifier, delta) —
/// across such sweeps, and offers small conveniences over the raw result
/// vectors.
///
/// Thread-safety: const after construction except for the internal
/// simplification cache, which is mutex-guarded, so concurrent Discover /
/// DiscoverExact calls from different threads are safe without external
/// synchronization. Two threads missing the same cache key may both compute
/// the simplification; the first insert wins and the duplicate work is
/// discarded (benign, and only on the first query of a sweep). Simplified
/// trajectories are handed to the filter by value (copied out under the
/// lock), so cache entries are never mutated after insertion.
class ConvoyEngine {
 public:
  explicit ConvoyEngine(TrajectoryDatabase db) : db_(std::move(db)) {}

  const TrajectoryDatabase& db() const { return db_; }

  /// Runs a convoy query with the given CuTS variant. Equivalent to
  /// `Cuts(db, query, variant, options)` but reuses cached simplifications
  /// when the (simplifier, delta) pair repeats. A non-positive
  /// options.delta is resolved once per query.e via ComputeDelta and then
  /// cached the same way.
  ///
  /// Like the free functions, this trusts its inputs (degenerate queries
  /// get their degenerate-but-defined answers). Servers handling untrusted
  /// query parameters should call TryDiscover, which validates first.
  std::vector<Convoy> Discover(const ConvoyQuery& query,
                               CutsVariant variant = CutsVariant::kCutsStar,
                               CutsFilterOptions options = {},
                               DiscoveryStats* stats = nullptr);

  /// Runs the exact CMC baseline (no caching to exploit).
  std::vector<Convoy> DiscoverExact(const ConvoyQuery& query,
                                    DiscoveryStats* stats = nullptr) const;

  /// Validating form of Discover: rejects out-of-contract queries and
  /// filter options (ValidateQuery / ValidateFilterOptions — m < 2, k < 1,
  /// non-positive or non-finite e, NaN delta, ...) with a descriptive
  /// kInvalidArgument Status instead of computing a garbage answer. This is
  /// the entry point for untrusted parameters (HTTP handlers, CLIs);
  /// enforced in every build type, including NDEBUG.
  StatusOr<std::vector<Convoy>> TryDiscover(
      const ConvoyQuery& query, CutsVariant variant = CutsVariant::kCutsStar,
      CutsFilterOptions options = {}, DiscoveryStats* stats = nullptr);

  /// Validating form of DiscoverExact.
  StatusOr<std::vector<Convoy>> TryDiscoverExact(
      const ConvoyQuery& query, DiscoveryStats* stats = nullptr) const;

  /// The convoy with the longest lifetime in `result` (ties: more objects,
  /// then canonical order). nullopt for an empty result.
  static std::optional<Convoy> LongestConvoy(
      const std::vector<Convoy>& result);

  /// Convoys of `result` that involve the given object.
  static std::vector<Convoy> Involving(const std::vector<Convoy>& result,
                                       ObjectId id);

  /// Convoys of `result` whose interval intersects [from, to].
  static std::vector<Convoy> During(const std::vector<Convoy>& result,
                                    Tick from, Tick to);

  /// Number of cached simplification sets (for tests / monitoring).
  size_t CacheSize() const {
    std::lock_guard<std::mutex> lock(cache_mu_);
    return cache_.size();
  }

 private:
  using CacheKey = std::pair<SimplifierKind, int64_t>;  // delta in micro-units
  TrajectoryDatabase db_;
  mutable std::mutex cache_mu_;  ///< guards cache_ (see class comment)
  std::map<CacheKey, std::vector<SimplifiedTrajectory>> cache_;
};

}  // namespace convoy

#endif  // CONVOY_CORE_ENGINE_H_
