#ifndef CONVOY_CORE_MC2_H_
#define CONVOY_CORE_MC2_H_

#include <vector>

#include "core/convoy_set.h"
#include "traj/database.h"
#include "traj/snapshot_store.h"

namespace convoy {

/// Options for the moving-cluster baseline.
struct Mc2Options {
  /// Jaccard threshold theta: consecutive snapshot clusters c_t, c_{t+1}
  /// belong to the same moving cluster when |c_t cap c_{t+1}| /
  /// |c_t cup c_{t+1}| >= theta (Kalnis et al.).
  double theta = 0.5;

  /// Minimum number of ticks a chain must span before it is reported. The
  /// moving-cluster model itself has no lifetime constraint — that absence
  /// is precisely what Appendix B.1 measures — so this is only a floor to
  /// keep single-snapshot chains out (2 = any chain of two clusters).
  Tick min_duration = 2;
};

/// MC2 — the moving-cluster discovery method (Kalnis et al., SSTD 2005)
/// adapted as a convoy baseline the way the paper's Appendix B.1 uses it.
/// Snapshot clusters are chained over consecutive ticks while their Jaccard
/// overlap stays >= theta; a finished chain is reported as a pseudo-convoy
/// consisting of the objects common to *all* clusters of the chain and the
/// chain's time interval.
///
/// The same snapshot construction as CMC (virtual-point interpolation,
/// DBSCAN with the query's e and m) is used so that the comparison isolates
/// the semantic difference, not data preparation.
std::vector<Convoy> Mc2(const TrajectoryDatabase& db, const ConvoyQuery& query,
                        const Mc2Options& options = {});

/// Store-backed MC2: identical reports over the database the store was
/// built from, reading the columnar per-tick views and cached grid
/// indexes instead of re-deriving every snapshot.
std::vector<Convoy> Mc2(const SnapshotStore& store, const ConvoyQuery& query,
                        const Mc2Options& options = {});

/// Accuracy of MC2 against the exact convoy result, as plotted in
/// Figure 19: `false_positive_pct` is the share of MC2 reports that fail
/// convoy verification; `false_negative_pct` is the share of true convoys
/// not covered by any MC2 report.
struct Mc2Accuracy {
  double false_positive_pct = 0.0;
  double false_negative_pct = 0.0;
  size_t reported = 0;
  size_t actual = 0;
};

Mc2Accuracy MeasureMc2Accuracy(const TrajectoryDatabase& db,
                               const ConvoyQuery& query,
                               const Mc2Options& options,
                               const std::vector<Convoy>& exact_result);

}  // namespace convoy

#endif  // CONVOY_CORE_MC2_H_
