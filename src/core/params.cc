#include "core/params.h"

#include <algorithm>
#include <cmath>

#include "simplify/douglas_peucker.h"
#include "util/random.h"

namespace convoy {

double DeltaPickForTrajectory(const Trajectory& traj, double e) {
  std::vector<double> deviations = CollectSplitDeviations(traj);
  // Keep only deviations below the query range; larger tolerances collapse
  // the search bounds (Section 7.4 observes filtering power degrades when
  // the pick exceeds e).
  std::vector<double> eligible;
  for (const double d : deviations) {
    if (d < e) eligible.push_back(d);
  }
  if (eligible.size() < 2) return e / 2.0;
  // Largest variance between adjacent (sorted) tolerances; pick the smaller
  // endpoint of that gap.
  size_t best = 0;
  double best_gap = -1.0;
  for (size_t i = 0; i + 1 < eligible.size(); ++i) {
    const double gap = eligible[i + 1] - eligible[i];
    if (gap > best_gap) {
      best_gap = gap;
      best = i;
    }
  }
  return eligible[best];
}

double ComputeDelta(const TrajectoryDatabase& db, double e,
                    double sample_fraction, uint64_t seed) {
  if (db.Empty()) return e / 2.0;
  const size_t n = db.Size();
  size_t sample = static_cast<size_t>(
      std::ceil(sample_fraction * static_cast<double>(n)));
  sample = std::clamp<size_t>(sample, 1, n);

  Rng rng(seed);
  const std::vector<size_t> order = rng.Permutation(n);

  double sum = 0.0;
  size_t used = 0;
  for (size_t i = 0; i < n && used < sample; ++i) {
    const Trajectory& traj = db[order[i]];
    if (traj.Size() < 3) continue;  // nothing to learn from
    sum += DeltaPickForTrajectory(traj, e);
    ++used;
  }
  if (used == 0) return e / 2.0;
  return sum / static_cast<double>(used);
}

Tick ComputeLambda(const TrajectoryDatabase& db,
                   const std::vector<SimplifiedTrajectory>& simplified,
                   Tick k) {
  const DatabaseStats stats = db.Stats();
  const double domain = static_cast<double>(stats.time_domain_length);
  if (domain <= 0.0) return 2;

  double sum = 0.0;
  size_t used = 0;
  for (size_t i = 0; i < db.Size() && i < simplified.size(); ++i) {
    const Trajectory& traj = db[i];
    if (traj.Size() < 2) continue;
    const double tau = static_cast<double>(traj.DurationTicks());
    const double ratio = static_cast<double>(simplified[i].NumVertices()) /
                         static_cast<double>(traj.Size());
    const double lambda1 = ratio * tau;
    double lambda_o = lambda1;
    if (tau < domain) {
      // Endpoint-probability correction for objects appearing/disappearing
      // inside the domain (see the header for why full-lifetime objects
      // are exempt).
      lambda_o = lambda1 - (lambda1 - 2.0) * tau / domain;
    }
    sum += lambda_o;
    ++used;
  }
  if (used == 0) return 2;
  const double lambda = sum / static_cast<double>(used);
  const double hi =
      k > 0 ? std::max(2.0, static_cast<double>(k) / 4.0) : domain;
  const double clamped = std::clamp(lambda, 2.0, hi);
  return static_cast<Tick>(std::llround(clamped));
}

}  // namespace convoy
