#ifndef CONVOY_CORE_CUTS_H_
#define CONVOY_CORE_CUTS_H_

#include <string>
#include <vector>

#include "core/convoy_set.h"
#include "core/cuts_filter.h"
#include "core/discovery_stats.h"
#include "traj/database.h"

namespace convoy {

/// The three filter-and-refine convoy discovery algorithms of the paper.
enum class CutsVariant {
  kCuts,      ///< DP simplification + DLL distance bound (Section 5)
  kCutsPlus,  ///< DP+ simplification + DLL distance bound (Section 6.1)
  kCutsStar,  ///< DP* simplification + D* distance bound (Section 6.2)
};

/// Human-readable variant name ("CuTS", "CuTS+", "CuTS*").
std::string ToString(CutsVariant variant);

/// Maps a variant to its filter configuration (simplifier + distance);
/// the remaining fields of `base` (delta, lambda, toggles) are preserved.
CutsFilterOptions MakeFilterOptions(CutsVariant variant,
                                    CutsFilterOptions base = {});

/// Convoy discovery with trajectory simplification (paper Sections 5-6):
/// simplifies the trajectories, finds candidate convoys by clustering the
/// simplified polylines per time partition, and refines each candidate with
/// exact CMC. Returns exactly the convoys CMC returns on the same query —
/// the filter's distance bounds guarantee no false dismissals, and the
/// refinement removes all false hits.
std::vector<Convoy> Cuts(const TrajectoryDatabase& db,
                         const ConvoyQuery& query,
                         CutsVariant variant = CutsVariant::kCutsStar,
                         const CutsFilterOptions& base_options = {},
                         DiscoveryStats* stats = nullptr);

}  // namespace convoy

#endif  // CONVOY_CORE_CUTS_H_
