#ifndef CONVOY_CORE_DISCOVERY_STATS_H_
#define CONVOY_CORE_DISCOVERY_STATS_H_

#include <cstddef>
#include <ostream>

#include "geom/point.h"

namespace convoy {

/// Per-run instrumentation of a convoy discovery, mirroring the quantities
/// the paper's evaluation plots: the phase cost breakdown of Figure 13, the
/// candidate counts of Figure 14, and the *refinement unit* of Figures 16-17
/// (sum over candidates of |objects|^2 x lifetime — the index-free
/// clustering cost a candidate implies for the refinement step).
struct DiscoveryStats {
  double simplify_seconds = 0.0;
  double filter_seconds = 0.0;
  double refine_seconds = 0.0;

  /// Wall-clock total of the run (>= sum of the phases; includes result
  /// post-processing).
  double total_seconds = 0.0;

  /// Number of candidates the filter handed to refinement (CMC: 0).
  size_t num_candidates = 0;

  /// Sum over candidates of |objects|^2 * lifetime-in-ticks (paper §7.3).
  double refinement_unit = 0.0;

  /// Number of convoys in the final result.
  size_t num_convoys = 0;

  /// Snapshot clusterings performed (CMC: one per tick; CuTS: one per time
  /// partition in the filter plus the refinement's per-tick clusterings).
  size_t num_clusterings = 0;

  /// TRAJ-DBSCAN neighborhood evaluations (CuTS family only).
  size_t polyline_pair_tests = 0;
  /// ... of which the Lemma 2 bounding-box bound rejected outright.
  size_t polyline_box_pruned = 0;
  /// Segment-pair distance evaluations that survived pruning.
  size_t segment_distance_tests = 0;
  /// Segment pairs the SoA filter's per-segment MBR bound rejected before
  /// any distance was computed (subset of the merge-scan's candidate pairs).
  size_t segment_mbr_rejects = 0;

  /// Vertex reduction achieved by the simplification step, in percent.
  double vertex_reduction_percent = 0.0;

  /// The internal parameter values actually used (auto-derived or given).
  double delta_used = 0.0;
  Tick lambda_used = 0;
};

std::ostream& operator<<(std::ostream& os, const DiscoveryStats& s);

}  // namespace convoy

#endif  // CONVOY_CORE_DISCOVERY_STATS_H_
