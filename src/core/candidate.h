#ifndef CONVOY_CORE_CANDIDATE_H_
#define CONVOY_CORE_CANDIDATE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/convoy_set.h"
#include "traj/trajectory.h"

namespace convoy {

/// A convoy candidate being grown across consecutive steps (timestamps for
/// CMC, time partitions for the CuTS filter).
struct Candidate {
  std::vector<ObjectId> objects;  ///< sorted, unique
  Tick start_tick = 0;            ///< first tick covered by the candidate
  Tick end_tick = 0;              ///< last tick covered so far
  Tick lifetime = 0;              ///< accumulated lifetime in the caller's
                                  ///< unit (ticks for CMC, lambda per
                                  ///< partition for the CuTS filter)

  Convoy ToConvoy() const { return Convoy{objects, start_tick, end_tick}; }
};

/// Dense object -> cluster-label map over one step's clusters. The clusters
/// a snapshot DBSCAN produces are disjoint, so "which cluster holds object
/// o" is a single label per object — which turns intersecting a candidate
/// against *all* clusters of a step into one O(|candidate|) pass instead of
/// one set_intersection per cluster. Object ids map to dense slots that
/// persist across steps (database order for dense id spaces, a hash map for
/// adversarial ones), and labels are epoch-stamped so relabeling a step is
/// O(members), never O(universe).
///
/// Shared by CandidateTracker (CMC / the CuTS filter) and the MC2 chain
/// overlap test.
class ClusterLabeler {
 public:
  static constexpr uint32_t kNoLabel = 0xFFFFFFFFu;

  /// Labels every member of `clusters` with its cluster index. Returns
  /// false when the clusters are not disjoint (an object appears twice) —
  /// labels are then meaningless and the caller must fall back to pairwise
  /// intersection; every algorithmic producer (DBSCAN partitions) is
  /// disjoint, so the fallback only guards direct API callers.
  bool Label(const std::vector<std::vector<ObjectId>>& clusters);

  /// The cluster index `id` belongs to in the step most recently passed to
  /// Label, or kNoLabel when it is in no cluster.
  uint32_t LabelOf(ObjectId id) const {
    const uint32_t slot = LookupSlot(id);
    if (slot == kNoSlot || epoch_of_[slot] != epoch_) return kNoLabel;
    return label_[slot];
  }

 private:
  static constexpr uint32_t kNoSlot = 0xFFFFFFFFu;
  /// Ids below this index a flat array directly (the expected dense-id
  /// regime, per ObjectId's contract); larger ids — 64 MB of slots would
  /// otherwise be charged to one stray id — go through the overflow map.
  static constexpr ObjectId kDenseIdCap = ObjectId{1} << 24;

  uint32_t LookupSlot(ObjectId id) const {
    if (id < kDenseIdCap) {
      return id < dense_.size() ? dense_[id] : kNoSlot;
    }
    const auto it = overflow_.find(id);
    return it == overflow_.end() ? kNoSlot : it->second;
  }
  uint32_t EnsureSlot(ObjectId id);

  std::vector<uint32_t> dense_;  ///< id -> slot for ids < kDenseIdCap
  std::unordered_map<ObjectId, uint32_t> overflow_;
  std::vector<uint32_t> label_;     ///< slot -> cluster index
  std::vector<uint32_t> epoch_of_;  ///< slot -> epoch label_ was written at
  uint32_t epoch_ = 0;
};

/// Accumulated work tallies of a CandidateTracker — the observability
/// layer's view into the candidate algebra (obs/trace.h). Maintained
/// unconditionally (a handful of integer adds per step, noise next to the
/// intersections themselves); the sequential consumer reads it once per
/// run, so totals are deterministic at every thread count (the tracker
/// only ever advances on the sequential pass).
struct TrackerTally {
  uint64_t steps = 0;              ///< Advance calls
  uint64_t candidates_offered = 0; ///< successors + fresh candidates offered
  uint64_t dedup_probes = 0;       ///< open-addressing probe steps
  uint64_t dedup_hits = 0;         ///< offers collapsing onto an existing set
  uint64_t completed = 0;          ///< candidates retired with lifetime >= k
  uint64_t live_max = 0;           ///< high water mark of the live set
};

/// The candidate bookkeeping shared by Algorithm 1 (CMC) and the filter step
/// of Algorithm 2 (CuTS): at every step, snapshot clusters are intersected
/// with live candidates; intersections with at least m objects continue,
/// candidates that fail to continue are emitted when their lifetime reaches
/// k, and clusters seed new candidates.
///
/// Two deliberate deviations from the published pseudocode (see DESIGN.md):
///  * a candidate intersecting several clusters (cluster split) spawns one
///    successor per qualifying cluster instead of being updated in place;
///  * every step cluster also *always* starts a fresh candidate, because a
///    convoy may begin at this step inside a cluster that happens to extend
///    an unrelated older candidate. Successor deduplication (by object set,
///    keeping the earliest start) keeps the candidate set small.
///
/// Hot path: because a step's clusters are disjoint, each live candidate is
/// intersected against all of them in one labeled pass (see ClusterLabeler),
/// and successors dedup through an open-addressing table keyed on the object
/// set instead of an ordered map of vectors. Results — content and order —
/// are identical to the historical set_intersection/std::map implementation
/// (the live set is kept in its lexicographic order), which tests retain as
/// a reference (tests/reference_impl.h).
class CandidateTracker {
 public:
  /// `m` and `k` are the convoy query parameters.
  CandidateTracker(size_t m, Tick k) : m_(m), k_(k) {}

  /// Advances one step covering ticks [step_start, step_end] whose clusters
  /// (as object-id sets, each sorted ascending) are `clusters`.
  /// `step_weight` is the lifetime increment (1 for CMC, lambda for CuTS).
  /// Candidates that ended at this step with lifetime >= k are appended to
  /// `completed`.
  void Advance(const std::vector<std::vector<ObjectId>>& clusters,
               Tick step_start, Tick step_end, Tick step_weight,
               std::vector<Candidate>* completed);

  /// Ends the stream: every live candidate with lifetime >= k is appended
  /// to `completed`; the live set is cleared.
  void Flush(std::vector<Candidate>* completed);

  /// Number of currently live candidates.
  size_t LiveCount() const { return live_.size(); }

  /// Read-only view of the live candidate set, in its canonical
  /// lexicographic-by-object-set order. Used by StreamingCmc to expose the
  /// convoys that are open (lifetime >= k but not yet closed) so the server
  /// can emit new/extended subscription events between ticks.
  const std::vector<Candidate>& live() const { return live_; }

  /// Work tallies accumulated since construction (see TrackerTally).
  const TrackerTally& tally() const { return tally_; }

 private:
  void Offer(Candidate&& cand);
  void GrowTable();

  size_t m_;
  Tick k_;
  std::vector<Candidate> live_;  ///< lexicographic by object set

  ClusterLabeler labeler_;
  /// Per-cluster intersection buffers for the labeled pass (cleared after
  /// each candidate; sized to the step's cluster count).
  std::vector<std::vector<ObjectId>> buckets_;
  std::vector<uint32_t> touched_;

  /// Successor dedup: open addressing over `pool_` keyed on the object
  /// set. `table_` holds pool indices + 1 (0 = empty slot); `hash_` caches
  /// each pooled successor's object-set hash so growth never re-hashes.
  std::vector<Candidate> pool_;
  std::vector<uint64_t> hash_;
  std::vector<uint32_t> table_;

  TrackerTally tally_;
};

/// Sorted-vector intersection helper shared with the MC2 baseline.
std::vector<ObjectId> IntersectSorted(const std::vector<ObjectId>& a,
                                      const std::vector<ObjectId>& b);

}  // namespace convoy

#endif  // CONVOY_CORE_CANDIDATE_H_
