#ifndef CONVOY_CORE_CANDIDATE_H_
#define CONVOY_CORE_CANDIDATE_H_

#include <cstddef>
#include <vector>

#include "core/convoy_set.h"
#include "traj/trajectory.h"

namespace convoy {

/// A convoy candidate being grown across consecutive steps (timestamps for
/// CMC, time partitions for the CuTS filter).
struct Candidate {
  std::vector<ObjectId> objects;  ///< sorted, unique
  Tick start_tick = 0;            ///< first tick covered by the candidate
  Tick end_tick = 0;              ///< last tick covered so far
  Tick lifetime = 0;              ///< accumulated lifetime in the caller's
                                  ///< unit (ticks for CMC, lambda per
                                  ///< partition for the CuTS filter)

  Convoy ToConvoy() const { return Convoy{objects, start_tick, end_tick}; }
};

/// The candidate bookkeeping shared by Algorithm 1 (CMC) and the filter step
/// of Algorithm 2 (CuTS): at every step, snapshot clusters are intersected
/// with live candidates; intersections with at least m objects continue,
/// candidates that fail to continue are emitted when their lifetime reaches
/// k, and clusters seed new candidates.
///
/// Two deliberate deviations from the published pseudocode (see DESIGN.md):
///  * a candidate intersecting several clusters (cluster split) spawns one
///    successor per qualifying cluster instead of being updated in place;
///  * every step cluster also *always* starts a fresh candidate, because a
///    convoy may begin at this step inside a cluster that happens to extend
///    an unrelated older candidate. Successor deduplication (by object set,
///    keeping the earliest start) keeps the candidate set small.
class CandidateTracker {
 public:
  /// `m` and `k` are the convoy query parameters.
  CandidateTracker(size_t m, Tick k) : m_(m), k_(k) {}

  /// Advances one step covering ticks [step_start, step_end] whose clusters
  /// (as object-id sets, each sorted ascending) are `clusters`.
  /// `step_weight` is the lifetime increment (1 for CMC, lambda for CuTS).
  /// Candidates that ended at this step with lifetime >= k are appended to
  /// `completed`.
  void Advance(const std::vector<std::vector<ObjectId>>& clusters,
               Tick step_start, Tick step_end, Tick step_weight,
               std::vector<Candidate>* completed);

  /// Ends the stream: every live candidate with lifetime >= k is appended
  /// to `completed`; the live set is cleared.
  void Flush(std::vector<Candidate>* completed);

  /// Number of currently live candidates.
  size_t LiveCount() const { return live_.size(); }

 private:
  size_t m_;
  Tick k_;
  std::vector<Candidate> live_;
};

/// Sorted-vector intersection helper shared with the MC2 baseline.
std::vector<ObjectId> IntersectSorted(const std::vector<ObjectId>& a,
                                      const std::vector<ObjectId>& b);

}  // namespace convoy

#endif  // CONVOY_CORE_CANDIDATE_H_
