#include "core/cuts.h"

#include "core/cuts_refine.h"
#include "util/stopwatch.h"

namespace convoy {

std::string ToString(CutsVariant variant) {
  switch (variant) {
    case CutsVariant::kCuts:
      return "CuTS";
    case CutsVariant::kCutsPlus:
      return "CuTS+";
    case CutsVariant::kCutsStar:
      return "CuTS*";
  }
  return "?";
}

CutsFilterOptions MakeFilterOptions(CutsVariant variant,
                                    CutsFilterOptions base) {
  switch (variant) {
    case CutsVariant::kCuts:
      base.simplifier = SimplifierKind::kDp;
      base.distance = SegmentDistanceKind::kDll;
      break;
    case CutsVariant::kCutsPlus:
      base.simplifier = SimplifierKind::kDpPlus;
      base.distance = SegmentDistanceKind::kDll;
      break;
    case CutsVariant::kCutsStar:
      base.simplifier = SimplifierKind::kDpStar;
      base.distance = SegmentDistanceKind::kDStar;
      break;
  }
  return base;
}

std::vector<Convoy> Cuts(const TrajectoryDatabase& db,
                         const ConvoyQuery& query, CutsVariant variant,
                         const CutsFilterOptions& base_options,
                         DiscoveryStats* stats) {
  Stopwatch total;
  const CutsFilterOptions options = MakeFilterOptions(variant, base_options);
  const CutsFilterResult filtered = CutsFilter(db, query, options, stats);
  std::vector<Convoy> result =
      CutsRefine(db, query, filtered.candidates, options.refine_mode, stats,
                 ResolveWorkerThreads(options.refine_threads, query));
  if (stats != nullptr) {
    stats->total_seconds = total.ElapsedSeconds();
    stats->num_convoys = result.size();
  }
  return result;
}

}  // namespace convoy
