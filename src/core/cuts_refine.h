#ifndef CONVOY_CORE_CUTS_REFINE_H_
#define CONVOY_CORE_CUTS_REFINE_H_

#include <vector>

#include "core/candidate.h"
#include "core/convoy_set.h"
#include "core/discovery_stats.h"
#include "core/exec_hooks.h"
#include "traj/database.h"

namespace convoy {

/// How the refinement step verifies candidates.
enum class RefineMode {
  /// Paper Algorithm 3: per candidate, run exact CMC over the *candidate's
  /// objects only*, restricted to the candidate's time interval. Fast, and
  /// what the paper benchmarks. Sound (never reports a false convoy), but in
  /// rare adversarial inputs a convoy whose density chain passes through an
  /// object outside the candidate's intersection set can be missed (see
  /// DESIGN.md).
  kProjected,

  /// Exact mode: merge the candidates' time intervals into disjoint windows
  /// and run full-database CMC over each window. Guarantees result-set
  /// equality with CMC on every input; degrades toward CMC's cost when the
  /// filter is ineffective (huge windows), which is the correct trade-off.
  kFullWindow,
};

/// The refinement step of CuTS (paper Algorithm 3): trims the filter's
/// candidate convoys down to actual convoys with exact CMC runs, then
/// merges, deduplicates and dominance-prunes into the final convoy set.
///
/// `threads` > 1 refines candidates (projected mode) or merged windows
/// (full-window mode) concurrently; each unit of work is independent, so
/// the merged result is identical to the sequential one (property-tested).
///
/// `hooks` (optional, core/exec_hooks.h) adds a cancellation check per
/// refinement unit, per-unit "refine" progress, and incremental emission:
/// each unit's verified convoys are handed to the sink in unit order as
/// soon as the unit completes — callers consume convoys while later units
/// are still refining instead of waiting for full materialization. The
/// returned (materialized) result is unaffected.
std::vector<Convoy> CutsRefine(const TrajectoryDatabase& db,
                               const ConvoyQuery& query,
                               const std::vector<Candidate>& candidates,
                               RefineMode mode = RefineMode::kProjected,
                               DiscoveryStats* stats = nullptr,
                               size_t threads = 1,
                               const ExecHooks* hooks = nullptr);

}  // namespace convoy

#endif  // CONVOY_CORE_CUTS_REFINE_H_
