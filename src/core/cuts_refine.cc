#include "core/cuts_refine.h"

#include <algorithm>
#include <optional>

#include "core/cmc.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "util/stopwatch.h"

namespace convoy {

namespace {

// Runs `work(i)` for i in [0, n) on up to `threads` workers via the shared
// chunk-based pool; slot i always holds work(i), so output order is
// deterministic. Units are processed in blocks so the sequential pass after
// each block can emit every finished unit's convoys to the sink and report
// progress *while later blocks are still refining* — that bounded emission
// latency is the incremental execution mode, and because the pass runs in
// index order the sink sequence is deterministic at every thread count.
template <typename WorkFn>
std::vector<std::vector<Convoy>> RefineMap(size_t n, size_t threads,
                                           WorkFn work,
                                           const ExecHooks* hooks) {
  threads = std::max<size_t>(1, std::min(threads, n == 0 ? 1 : n));
  // Without live hooks (the free functions, benches, shims without a
  // token) the blocked machinery below buys nothing — keep the plain
  // single-pass paths and their performance.
  const bool live_hooks =
      hooks != nullptr && (hooks->sink || hooks->progress ||
                           hooks->cancel.CanBeCancelled());
  if (!live_hooks) {
    if (threads <= 1) {
      std::vector<std::vector<Convoy>> results(n);
      for (size_t i = 0; i < n; ++i) results[i] = work(i);
      return results;
    }
    ThreadPool pool(threads);
    return ParallelMap(&pool, n, work);
  }

  std::optional<ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);
  // Serial refinement emits after every unit; parallel refinement after
  // every block of a few units per worker.
  const size_t block = pool ? std::max<size_t>(threads * 8, 64) : 1;
  std::vector<std::vector<Convoy>> results(n);
  for (size_t block_begin = 0; block_begin < n; block_begin += block) {
    const size_t block_size = std::min(block, n - block_begin);
    std::vector<std::vector<Convoy>> part =
        ParallelMap(pool ? &*pool : nullptr, block_size, [&](size_t i) {
          CheckCancelled(hooks);
          return work(block_begin + i);
        });
    for (size_t i = 0; i < block_size; ++i) {
      CheckCancelled(hooks);
      results[block_begin + i] = std::move(part[i]);
      if (hooks != nullptr && hooks->sink) {
        // The caller still needs the unit's convoys for the merged result,
        // so the sink gets a copy (only when a sink is installed).
        EmitConvoys(hooks,
                    std::vector<Convoy>(results[block_begin + i]));
      }
      ReportProgress(hooks, "refine", block_begin + i + 1, n);
    }
  }
  return results;
}

std::vector<Convoy> Flatten(std::vector<std::vector<Convoy>> parts) {
  std::vector<Convoy> all;
  for (std::vector<Convoy>& part : parts) {
    all.insert(all.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return all;
}

std::vector<Convoy> RefineProjected(const TrajectoryDatabase& db,
                                    const ConvoyQuery& query,
                                    const std::vector<Candidate>& candidates,
                                    DiscoveryStats* stats, size_t threads,
                                    const ExecHooks* hooks) {
  CmcOptions cmc_options;
  cmc_options.remove_dominated = false;  // pruned globally by the caller
  // Stats are only threadable when single-threaded; CmcRange mutates them.
  DiscoveryStats* per_run_stats = threads <= 1 ? stats : nullptr;
  TraceSession* const trace = TraceOf(hooks);
  // Trace-only hooks for the nested CMC runs: counters and spans flow, but
  // the outer sink / progress / cancellation stay exclusively with the
  // refine loop (a nested emit would double-report every convoy).
  ExecHooks trace_hooks;
  trace_hooks.trace = trace;
  const ExecHooks* nested =
      trace != nullptr ? &trace_hooks : nullptr;
  auto parts = RefineMap(
      candidates.size(), threads,
      [&](size_t i) {
        ScopedSpan span(trace, "refine.unit");
        TraceCount(trace, TraceCounter::kRefineUnits, 1);
        const Candidate& cand = candidates[i];
        const TrajectoryDatabase subset = db.Project(cand.objects);
        return CmcRange(subset, query, cand.start_tick, cand.end_tick,
                        cmc_options, per_run_stats, nested);
      },
      hooks);
  return Flatten(std::move(parts));
}

std::vector<Convoy> RefineFullWindow(const TrajectoryDatabase& db,
                                     const ConvoyQuery& query,
                                     const std::vector<Candidate>& candidates,
                                     DiscoveryStats* stats, size_t threads,
                                     const ExecHooks* hooks) {
  // Merge candidate intervals into disjoint windows; every true convoy is
  // contained in some candidate's interval, hence in some window.
  std::vector<std::pair<Tick, Tick>> intervals;
  intervals.reserve(candidates.size());
  for (const Candidate& cand : candidates) {
    intervals.emplace_back(cand.start_tick, cand.end_tick);
  }
  std::sort(intervals.begin(), intervals.end());
  std::vector<std::pair<Tick, Tick>> windows;
  for (const auto& iv : intervals) {
    if (!windows.empty() && iv.first <= windows.back().second + 1) {
      windows.back().second = std::max(windows.back().second, iv.second);
    } else {
      windows.push_back(iv);
    }
  }

  CmcOptions cmc_options;
  cmc_options.remove_dominated = false;
  DiscoveryStats* per_run_stats = threads <= 1 ? stats : nullptr;
  TraceSession* const trace = TraceOf(hooks);
  ExecHooks trace_hooks;
  trace_hooks.trace = trace;
  const ExecHooks* nested =
      trace != nullptr ? &trace_hooks : nullptr;
  auto parts = RefineMap(
      windows.size(), threads,
      [&](size_t i) {
        ScopedSpan span(trace, "refine.unit");
        TraceCount(trace, TraceCounter::kRefineUnits, 1);
        return CmcRange(db, query, windows[i].first, windows[i].second,
                        cmc_options, per_run_stats, nested);
      },
      hooks);
  return Flatten(std::move(parts));
}

}  // namespace

std::vector<Convoy> CutsRefine(const TrajectoryDatabase& db,
                               const ConvoyQuery& query,
                               const std::vector<Candidate>& candidates,
                               RefineMode mode, DiscoveryStats* stats,
                               size_t threads, const ExecHooks* hooks) {
  Stopwatch phase;
  std::vector<Convoy> all =
      mode == RefineMode::kProjected
          ? RefineProjected(db, query, candidates, stats, threads, hooks)
          : RefineFullWindow(db, query, candidates, stats, threads, hooks);
  std::vector<Convoy> result = RemoveDominated(std::move(all));
  if (stats != nullptr) {
    stats->refine_seconds += phase.ElapsedSeconds();
    stats->num_convoys = result.size();
  }
  return result;
}

}  // namespace convoy
