#include "core/cuts_refine.h"

#include <algorithm>

#include "core/cmc.h"
#include "parallel/parallel_for.h"
#include "util/stopwatch.h"

namespace convoy {

namespace {

// Runs `work(i)` for i in [0, n) on up to `threads` workers via the shared
// chunk-based pool; slot i always holds work(i), so output order is
// deterministic.
template <typename WorkFn>
std::vector<std::vector<Convoy>> RefineMap(size_t n, size_t threads,
                                           WorkFn work) {
  threads = std::max<size_t>(1, std::min(threads, n == 0 ? 1 : n));
  if (threads <= 1) {
    std::vector<std::vector<Convoy>> results(n);
    for (size_t i = 0; i < n; ++i) results[i] = work(i);
    return results;
  }
  ThreadPool pool(threads);
  return ParallelMap(&pool, n, work);
}

std::vector<Convoy> Flatten(std::vector<std::vector<Convoy>> parts) {
  std::vector<Convoy> all;
  for (std::vector<Convoy>& part : parts) {
    all.insert(all.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return all;
}

std::vector<Convoy> RefineProjected(const TrajectoryDatabase& db,
                                    const ConvoyQuery& query,
                                    const std::vector<Candidate>& candidates,
                                    DiscoveryStats* stats, size_t threads) {
  CmcOptions cmc_options;
  cmc_options.remove_dominated = false;  // pruned globally by the caller
  // Stats are only threadable when single-threaded; CmcRange mutates them.
  DiscoveryStats* per_run_stats = threads <= 1 ? stats : nullptr;
  auto parts = RefineMap(
      candidates.size(), threads, [&](size_t i) {
        const Candidate& cand = candidates[i];
        const TrajectoryDatabase subset = db.Project(cand.objects);
        return CmcRange(subset, query, cand.start_tick, cand.end_tick,
                        cmc_options, per_run_stats);
      });
  return Flatten(std::move(parts));
}

std::vector<Convoy> RefineFullWindow(const TrajectoryDatabase& db,
                                     const ConvoyQuery& query,
                                     const std::vector<Candidate>& candidates,
                                     DiscoveryStats* stats, size_t threads) {
  // Merge candidate intervals into disjoint windows; every true convoy is
  // contained in some candidate's interval, hence in some window.
  std::vector<std::pair<Tick, Tick>> intervals;
  intervals.reserve(candidates.size());
  for (const Candidate& cand : candidates) {
    intervals.emplace_back(cand.start_tick, cand.end_tick);
  }
  std::sort(intervals.begin(), intervals.end());
  std::vector<std::pair<Tick, Tick>> windows;
  for (const auto& iv : intervals) {
    if (!windows.empty() && iv.first <= windows.back().second + 1) {
      windows.back().second = std::max(windows.back().second, iv.second);
    } else {
      windows.push_back(iv);
    }
  }

  CmcOptions cmc_options;
  cmc_options.remove_dominated = false;
  DiscoveryStats* per_run_stats = threads <= 1 ? stats : nullptr;
  auto parts = RefineMap(windows.size(), threads, [&](size_t i) {
    return CmcRange(db, query, windows[i].first, windows[i].second,
                    cmc_options, per_run_stats);
  });
  return Flatten(std::move(parts));
}

}  // namespace

std::vector<Convoy> CutsRefine(const TrajectoryDatabase& db,
                               const ConvoyQuery& query,
                               const std::vector<Candidate>& candidates,
                               RefineMode mode, DiscoveryStats* stats,
                               size_t threads) {
  Stopwatch phase;
  std::vector<Convoy> all =
      mode == RefineMode::kProjected
          ? RefineProjected(db, query, candidates, stats, threads)
          : RefineFullWindow(db, query, candidates, stats, threads);
  std::vector<Convoy> result = RemoveDominated(std::move(all));
  if (stats != nullptr) {
    stats->refine_seconds += phase.ElapsedSeconds();
    stats->num_convoys = result.size();
  }
  return result;
}

}  // namespace convoy
