#ifndef CONVOY_CORE_STREAMING_H_
#define CONVOY_CORE_STREAMING_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/dbscan.h"
#include "core/candidate.h"
#include "core/convoy_set.h"
#include "traj/trajectory.h"
#include "util/status.h"

namespace convoy {

class TraceSession;

/// Online convoy discovery over a live position stream.
///
/// `StreamingCmc` is the incremental form of CMC (paper Algorithm 1): feed
/// it one snapshot of object positions per tick, in tick order, and it
/// reports each convoy as soon as the convoy *closes* (its group disperses
/// or the stream ends). Internally it runs the same snapshot DBSCAN and
/// candidate algebra as the batch algorithm, so — given the same virtual
/// points for missing samples — its output equals batch CMC's
/// (property-tested in streaming_test.cc).
///
/// Live feeds are messy, so every protocol violation is a *recoverable
/// error*, not an assert: out-of-order or duplicate ticks, reports outside
/// a tick, and invalid queries return a non-OK Status (enforced in every
/// build type, including NDEBUG ones) and leave the stream's state exactly
/// as it was — the caller can drop the offending input and continue the
/// stream. See README "Error handling" for the conventions.
///
/// Unlike batch CMC it cannot interpolate a gap it has not seen yet; the
/// caller decides how to handle missing reports:
///  * feed every live object's position each tick (e.g. from a tracker
///    that already extrapolates), or
///  * use `CarryForwardTicks` to let the engine repeat an object's last
///    position for up to that many ticks (0 disables carrying).
///
/// Typical loop:
///
///   StreamingCmc stream(query);
///   for (Tick t = ...; ...; ++t) {
///     if (!stream.BeginTick(t).ok()) continue;  // e.g. replayed tick
///     for (auto& [id, pos] : live_positions) {
///       stream.Report(id, pos).IgnoreError();   // or log it
///     }
///     for (const Convoy& c : stream.EndTick().value()) alert(c);
///   }
///   for (const Convoy& c : stream.Finish().value()) alert(c);
class StreamingCmc {
 public:
  struct Options {
    /// Repeat an object's last known position for up to this many ticks
    /// when no report arrives (crude dead reckoning). 0 = objects vanish
    /// immediately when silent.
    Tick carry_forward_ticks = 0;

    /// Apply dominance pruning to the convoys emitted by one EndTick()
    /// batch (across batches the stream already avoids duplicates).
    bool remove_dominated = true;
  };

  explicit StreamingCmc(const ConvoyQuery& query)
      : StreamingCmc(query, Options()) {}
  StreamingCmc(const ConvoyQuery& query, const Options& options);

  /// Starts tick `t`. Ticks must be fed in strictly increasing order;
  /// skipped ticks are processed as empty snapshots (every candidate's
  /// consecutiveness breaks there, as the definition requires).
  ///
  /// Errors (state unchanged): kInvalidArgument when `t` is not greater
  /// than the last processed tick or the query failed ValidateQuery;
  /// kFailedPrecondition when the previous tick is still open.
  Status BeginTick(Tick t);

  /// Reports the position of `id` at the current tick. At most one report
  /// per object per tick; the last one wins.
  ///
  /// Errors (report dropped): kFailedPrecondition when no tick is open;
  /// kInvalidArgument for a non-finite position (NaN coordinates would
  /// poison every DBSCAN distance comparison of the snapshot).
  Status Report(ObjectId id, const Point& position);

  /// Finishes the current tick: clusters the snapshot, advances the
  /// candidate algebra, and returns every convoy that closed at this tick.
  /// kFailedPrecondition when no tick is open.
  StatusOr<std::vector<Convoy>> EndTick();

  /// Ends the stream and returns the convoys still alive (lifetime >= k).
  /// kFailedPrecondition while a tick is open (EndTick() missing).
  StatusOr<std::vector<Convoy>> Finish();

  /// Number of convoy candidates currently alive.
  size_t LiveCandidates() const { return tracker_.LiveCount(); }

  /// The convoys currently *open*: live candidates whose lifetime already
  /// reached k, i.e. groups that are convoys as of the last processed tick
  /// but have not closed yet. Sorted in the tracker's canonical
  /// lexicographic order. A later EndTick may extend them (same objects,
  /// larger end_tick), close them, or split them; the server's subscription
  /// layer diffs consecutive snapshots of this set to emit new/extended
  /// events.
  std::vector<Convoy> OpenConvoys() const;

  /// The current tick, if a stream is in progress.
  std::optional<Tick> CurrentTick() const { return current_tick_; }

  /// Attaches a trace (obs/trace.h) — every subsequent EndTick records a
  /// "stream.tick" span, a "stream.tick_ms" latency sample, and the tick's
  /// DBSCAN counters; Finish folds the tracker tally. Pass nullptr to
  /// detach (the default: one branch per tick, nothing recorded). The
  /// session must outlive the stream or the next detach.
  void set_trace(TraceSession* trace) { trace_ = trace; }
  TraceSession* trace() const { return trace_; }

 private:
  struct LastSeen {
    Point position;
    Tick tick;
  };

  std::vector<Convoy> DrainCompleted();
  void AdvanceEmpty(Tick t);

  ConvoyQuery query_;
  Options options_;
  Status query_status_;  ///< ValidateQuery result, reported by BeginTick
  CandidateTracker tracker_;
  std::optional<Tick> current_tick_;
  std::optional<Tick> last_processed_;
  std::unordered_map<ObjectId, Point> snapshot_;
  std::unordered_map<ObjectId, LastSeen> last_seen_;
  std::vector<Candidate> completed_;
  /// Snapshot gather + DBSCAN arena reused across EndTick calls (a stream
  /// clusters one snapshot per tick for its whole lifetime; per-tick
  /// allocations would dominate sparse feeds). Reset every use.
  std::vector<Point> gather_points_;
  std::vector<ObjectId> gather_ids_;
  DbscanScratch dbscan_scratch_;
  TraceSession* trace_ = nullptr;
};

}  // namespace convoy

#endif  // CONVOY_CORE_STREAMING_H_
