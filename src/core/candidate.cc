#include "core/candidate.h"

#include <algorithm>
#include <map>

namespace convoy {

std::vector<ObjectId> IntersectSorted(const std::vector<ObjectId>& a,
                                      const std::vector<ObjectId>& b) {
  std::vector<ObjectId> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

void CandidateTracker::Advance(
    const std::vector<std::vector<ObjectId>>& clusters, Tick step_start,
    Tick step_end, Tick step_weight, std::vector<Candidate>* completed) {
  // Successors keyed by object set; the earliest start (largest lifetime)
  // wins, so dominated duplicates never multiply.
  std::map<std::vector<ObjectId>, Candidate> next;

  const auto offer = [&next](Candidate cand) {
    auto [it, inserted] = next.try_emplace(cand.objects, cand);
    if (!inserted && cand.lifetime > it->second.lifetime) it->second = cand;
  };

  for (const Candidate& v : live_) {
    bool continued_intact = false;  // some successor kept v's full object set
    for (const std::vector<ObjectId>& c : clusters) {
      std::vector<ObjectId> common = IntersectSorted(v.objects, c);
      if (common.size() < m_) continue;
      continued_intact |= common.size() == v.objects.size();
      Candidate successor;
      successor.objects = std::move(common);
      successor.start_tick = v.start_tick;
      successor.end_tick = step_end;
      successor.lifetime = v.lifetime + step_weight;
      offer(std::move(successor));
    }
    // Emit v when it dies — and also when every successor lost members
    // ("emit on shrink"): otherwise a maximal convoy whose subgroup keeps
    // traveling would be narrowed away and never reported (see DESIGN.md).
    if (!continued_intact && v.lifetime >= k_) completed->push_back(v);
  }

  // Every cluster also begins its own candidate: a convoy may be born at
  // this step. If an identical successor already exists it has an earlier
  // start and wins the dedup above.
  for (const std::vector<ObjectId>& c : clusters) {
    if (c.size() < m_) continue;
    Candidate fresh;
    fresh.objects = c;
    fresh.start_tick = step_start;
    fresh.end_tick = step_end;
    fresh.lifetime = step_weight;
    offer(std::move(fresh));
  }

  live_.clear();
  live_.reserve(next.size());
  for (auto& [objects, cand] : next) live_.push_back(std::move(cand));
}

void CandidateTracker::Flush(std::vector<Candidate>* completed) {
  for (Candidate& v : live_) {
    if (v.lifetime >= k_) completed->push_back(std::move(v));
  }
  live_.clear();
}

}  // namespace convoy
