#include "core/candidate.h"

#include <algorithm>

namespace convoy {

namespace {

// 64-bit FNV-1a over the object ids, finished with a Murmur-style mix so
// the open-addressing probe sees well-scattered high bits even for the
// near-sequential id sets real snapshots produce.
uint64_t HashObjects(const std::vector<ObjectId>& objects) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const ObjectId id : objects) {
    h = (h ^ id) * 0x100000001b3ull;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return h;
}

}  // namespace

std::vector<ObjectId> IntersectSorted(const std::vector<ObjectId>& a,
                                      const std::vector<ObjectId>& b) {
  std::vector<ObjectId> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

uint32_t ClusterLabeler::EnsureSlot(ObjectId id) {
  uint32_t slot = LookupSlot(id);
  if (slot != kNoSlot) return slot;
  slot = static_cast<uint32_t>(label_.size());
  label_.push_back(kNoLabel);
  epoch_of_.push_back(0);
  if (id < kDenseIdCap) {
    if (id >= dense_.size()) dense_.resize(id + 1, kNoSlot);
    dense_[id] = slot;
  } else {
    overflow_.emplace(id, slot);
  }
  return slot;
}

bool ClusterLabeler::Label(
    const std::vector<std::vector<ObjectId>>& clusters) {
  if (++epoch_ == 0) {
    // Epoch counter wrapped (once per 2^32 steps): stale stamps could
    // alias, so reset them all and restart at 1.
    std::fill(epoch_of_.begin(), epoch_of_.end(), 0);
    epoch_ = 1;
  }
  for (uint32_t ci = 0; ci < clusters.size(); ++ci) {
    for (const ObjectId id : clusters[ci]) {
      const uint32_t slot = EnsureSlot(id);
      if (epoch_of_[slot] == epoch_) return false;  // overlapping clusters
      label_[slot] = ci;
      epoch_of_[slot] = epoch_;
    }
  }
  return true;
}

void CandidateTracker::GrowTable() {
  size_t size = table_.empty() ? 64 : table_.size() * 2;
  table_.assign(size, 0);
  const size_t mask = size - 1;
  for (uint32_t i = 0; i < pool_.size(); ++i) {
    size_t at = static_cast<size_t>(hash_[i]) & mask;
    while (table_[at] != 0) at = (at + 1) & mask;
    table_[at] = i + 1;
  }
}

void CandidateTracker::Offer(Candidate&& cand) {
  // Successors dedup by object set; the earliest start (largest lifetime)
  // wins, so dominated duplicates never multiply. Equal lifetimes keep the
  // first offer — the same tie-break the ordered-map implementation's
  // try_emplace applied, and offers arrive in the same order.
  if ((pool_.size() + 1) * 4 >= table_.size() * 3) GrowTable();
  ++tally_.candidates_offered;
  const uint64_t h = HashObjects(cand.objects);
  const size_t mask = table_.size() - 1;
  size_t at = static_cast<size_t>(h) & mask;
  while (table_[at] != 0) {
    ++tally_.dedup_probes;
    Candidate& existing = pool_[table_[at] - 1];
    if (hash_[table_[at] - 1] == h && existing.objects == cand.objects) {
      ++tally_.dedup_hits;
      if (cand.lifetime > existing.lifetime) existing = std::move(cand);
      return;
    }
    at = (at + 1) & mask;
  }
  table_[at] = static_cast<uint32_t>(pool_.size()) + 1;
  pool_.push_back(std::move(cand));
  hash_.push_back(h);
}

void CandidateTracker::Advance(
    const std::vector<std::vector<ObjectId>>& clusters, Tick step_start,
    Tick step_end, Tick step_weight, std::vector<Candidate>* completed) {
  ++tally_.steps;
  const size_t completed_before = completed->size();
  pool_.clear();
  hash_.clear();
  std::fill(table_.begin(), table_.end(), 0);

  // One pass labels every cluster member; disjointness (guaranteed for
  // DBSCAN partitions) makes "intersect v with every cluster" a single
  // O(|v|) bucketing sweep per candidate below. Overlapping clusters —
  // possible only through direct API use — fall back to the pairwise
  // set_intersection the labels replace.
  const bool disjoint = labeler_.Label(clusters);
  if (buckets_.size() < clusters.size()) buckets_.resize(clusters.size());

  for (Candidate& v : live_) {
    bool continued_intact = false;  // some successor kept v's full object set
    if (disjoint) {
      touched_.clear();
      for (const ObjectId id : v.objects) {
        const uint32_t c = labeler_.LabelOf(id);
        if (c == ClusterLabeler::kNoLabel) continue;
        if (buckets_[c].empty()) touched_.push_back(c);
        buckets_[c].push_back(id);  // v is sorted, so each bucket is sorted
      }
      // Ascending cluster index: the order the historical per-cluster loop
      // offered successors in.
      std::sort(touched_.begin(), touched_.end());
      for (const uint32_t c : touched_) {
        std::vector<ObjectId>& common = buckets_[c];
        if (common.size() >= m_) {
          continued_intact |= common.size() == v.objects.size();
          Candidate successor;
          successor.objects = common;
          successor.start_tick = v.start_tick;
          successor.end_tick = step_end;
          successor.lifetime = v.lifetime + step_weight;
          Offer(std::move(successor));
        }
        common.clear();
      }
    } else {
      for (const std::vector<ObjectId>& c : clusters) {
        std::vector<ObjectId> common = IntersectSorted(v.objects, c);
        if (common.size() < m_) continue;
        continued_intact |= common.size() == v.objects.size();
        Candidate successor;
        successor.objects = std::move(common);
        successor.start_tick = v.start_tick;
        successor.end_tick = step_end;
        successor.lifetime = v.lifetime + step_weight;
        Offer(std::move(successor));
      }
    }
    // Emit v when it dies — and also when every successor lost members
    // ("emit on shrink"): otherwise a maximal convoy whose subgroup keeps
    // traveling would be narrowed away and never reported (see DESIGN.md).
    if (!continued_intact && v.lifetime >= k_) {
      completed->push_back(std::move(v));
    }
  }

  // Every cluster also begins its own candidate: a convoy may be born at
  // this step. If an identical successor already exists it has an earlier
  // start and wins the dedup above.
  for (const std::vector<ObjectId>& c : clusters) {
    if (c.size() < m_) continue;
    Candidate fresh;
    fresh.objects = c;
    fresh.start_tick = step_start;
    fresh.end_tick = step_end;
    fresh.lifetime = step_weight;
    Offer(std::move(fresh));
  }

  // Keep the live set in lexicographic object-set order — the iteration
  // order the ordered-map implementation handed every downstream consumer
  // (and the next step's emission order). Keys are unique post-dedup.
  live_.swap(pool_);
  std::sort(live_.begin(), live_.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.objects < b.objects;
            });
  tally_.completed += completed->size() - completed_before;
  tally_.live_max = std::max<uint64_t>(tally_.live_max, live_.size());
}

void CandidateTracker::Flush(std::vector<Candidate>* completed) {
  const size_t completed_before = completed->size();
  for (Candidate& v : live_) {
    if (v.lifetime >= k_) completed->push_back(std::move(v));
  }
  tally_.completed += completed->size() - completed_before;
  live_.clear();
}

}  // namespace convoy
