#include "core/convoy_set.h"

#include <algorithm>
#include <sstream>

namespace convoy {

std::ostream& operator<<(std::ostream& os, const Convoy& c) {
  os << "{";
  for (size_t i = 0; i < c.objects.size(); ++i) {
    if (i > 0) os << ",";
    os << c.objects[i];
  }
  return os << "}@[" << c.start_tick << "," << c.end_tick << "]";
}

std::string ToString(const Convoy& c) {
  std::ostringstream os;
  os << c;
  return os.str();
}

bool Covers(const Convoy& big, const Convoy& small) {
  if (big.start_tick > small.start_tick || big.end_tick < small.end_tick) {
    return false;
  }
  // objects are sorted: subset test by inclusion scan.
  return std::includes(big.objects.begin(), big.objects.end(),
                       small.objects.begin(), small.objects.end());
}

namespace {

bool CanonicalLess(const Convoy& a, const Convoy& b) {
  if (a.start_tick != b.start_tick) return a.start_tick < b.start_tick;
  if (a.end_tick != b.end_tick) return a.end_tick < b.end_tick;
  return a.objects < b.objects;
}

}  // namespace

void Canonicalize(std::vector<Convoy>* convoys) {
  for (Convoy& c : *convoys) {
    std::sort(c.objects.begin(), c.objects.end());
    c.objects.erase(std::unique(c.objects.begin(), c.objects.end()),
                    c.objects.end());
  }
  std::sort(convoys->begin(), convoys->end(), CanonicalLess);
  convoys->erase(std::unique(convoys->begin(), convoys->end()),
                 convoys->end());
}

std::vector<Convoy> RemoveDominated(std::vector<Convoy> convoys) {
  Canonicalize(&convoys);
  std::vector<Convoy> kept;
  for (size_t i = 0; i < convoys.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < convoys.size() && !dominated; ++j) {
      if (i == j) continue;
      if (!Covers(convoys[j], convoys[i])) continue;
      // Mutual coverage means equality, which Canonicalize already removed;
      // so coverage here is strict domination — except for the symmetric
      // case of identical object sets and intervals differing only in the
      // vector identity, which cannot occur post-unique. Break ties by
      // letting the canonically-earlier convoy win.
      if (Covers(convoys[i], convoys[j])) {
        dominated = j < i;
      } else {
        dominated = true;
      }
    }
    if (!dominated) kept.push_back(convoys[i]);
  }
  return kept;
}

bool SameResultSet(std::vector<Convoy> a, std::vector<Convoy> b) {
  Canonicalize(&a);
  Canonicalize(&b);
  return a == b;
}

std::vector<Convoy> Uncovered(const std::vector<Convoy>& expected,
                              const std::vector<Convoy>& got) {
  std::vector<Convoy> missing;
  for (const Convoy& e : expected) {
    bool covered = false;
    for (const Convoy& g : got) {
      if (Covers(g, e)) {
        covered = true;
        break;
      }
    }
    if (!covered) missing.push_back(e);
  }
  return missing;
}

}  // namespace convoy
