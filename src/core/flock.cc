#include "core/flock.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "core/candidate.h"
#include "traj/interpolate.h"

namespace convoy {

namespace {

// Members within `radius` of `center`, as sorted object ids.
std::vector<ObjectId> DiscMembers(const std::vector<Point>& positions,
                                  const std::vector<ObjectId>& ids,
                                  const Point& center, double radius) {
  std::vector<ObjectId> members;
  const double r2 = radius * radius * (1.0 + 1e-12);
  for (size_t i = 0; i < positions.size(); ++i) {
    if (D2(positions[i], center) <= r2) members.push_back(ids[i]);
  }
  std::sort(members.begin(), members.end());
  return members;
}

// The two centers of radius-r circles passing through points a and b
// (which must satisfy D(a,b) <= 2r). Degenerate (a == b) yields a itself.
void CircleCenters(const Point& a, const Point& b, double r,
                   std::vector<Point>* out) {
  const Point mid = (a + b) * 0.5;
  const double half = D(a, b) / 2.0;
  if (half < 1e-12) {
    out->push_back(a);
    return;
  }
  const double h2 = r * r - half * half;
  if (h2 < 0.0) return;
  const double h = std::sqrt(h2);
  const Point dir = (b - a) * (1.0 / (2.0 * half));
  const Point normal(-dir.y, dir.x);
  out->push_back(mid + normal * h);
  out->push_back(mid - normal * h);
}

}  // namespace

std::vector<std::vector<ObjectId>> FlockSnapshotGroups(
    const std::vector<Point>& positions, const std::vector<ObjectId>& ids,
    double radius, size_t m) {
  std::set<std::vector<ObjectId>> groups;
  const size_t n = positions.size();
  if (n < m) return {};

  // Candidate disc centers: every point (disc centered on a lone cluster)
  // and the two radius-r circles through every close-enough pair. Any
  // maximal group realized by *some* disc is realized by one of these
  // (standard flock argument: shrink-translate the disc until two members
  // touch its boundary, or one member coincides with the center).
  std::vector<Point> centers;
  for (size_t i = 0; i < n; ++i) {
    centers.push_back(positions[i]);
    for (size_t j = i + 1; j < n; ++j) {
      if (D(positions[i], positions[j]) <= 2.0 * radius) {
        CircleCenters(positions[i], positions[j], radius, &centers);
      }
    }
  }

  for (const Point& center : centers) {
    std::vector<ObjectId> members = DiscMembers(positions, ids, center,
                                                radius);
    if (members.size() >= m) groups.insert(std::move(members));
  }

  // Keep only maximal groups (a disc group contained in another adds no
  // information to the candidate tracker).
  std::vector<std::vector<ObjectId>> result;
  for (const std::vector<ObjectId>& g : groups) {
    bool maximal = true;
    for (const std::vector<ObjectId>& other : groups) {
      if (&g != &other && g.size() < other.size() &&
          std::includes(other.begin(), other.end(), g.begin(), g.end())) {
        maximal = false;
        break;
      }
    }
    if (maximal) result.push_back(g);
  }
  return result;
}

std::vector<Convoy> FlockDiscovery(const TrajectoryDatabase& db,
                                   const FlockQuery& query) {
  if (db.Empty()) return {};
  CandidateTracker tracker(query.m, query.k);
  std::vector<Candidate> completed;

  std::vector<Point> snapshot;
  std::vector<ObjectId> snapshot_ids;
  for (Tick t = db.BeginTick(); t <= db.EndTick(); ++t) {
    snapshot.clear();
    snapshot_ids.clear();
    for (const Trajectory& traj : db.trajectories()) {
      const auto pos = InterpolateAt(traj, t);
      if (!pos.has_value()) continue;
      snapshot.push_back(*pos);
      snapshot_ids.push_back(traj.id());
    }
    std::vector<std::vector<ObjectId>> groups;
    if (snapshot.size() >= query.m) {
      groups = FlockSnapshotGroups(snapshot, snapshot_ids, query.radius,
                                   query.m);
    }
    tracker.Advance(groups, t, t, /*step_weight=*/1, &completed);
  }
  tracker.Flush(&completed);

  std::vector<Convoy> result;
  result.reserve(completed.size());
  for (const Candidate& cand : completed) result.push_back(cand.ToConvoy());
  return RemoveDominated(std::move(result));
}

}  // namespace convoy
