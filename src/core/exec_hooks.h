#ifndef CONVOY_CORE_EXEC_HOOKS_H_
#define CONVOY_CORE_EXEC_HOOKS_H_

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "core/convoy_set.h"
#include "util/cancel.h"

namespace convoy {

class TraceSession;

/// A progress report from a running discovery. `done`/`total` count the
/// algorithm's sequential consumption units — ticks for CMC, time
/// partitions for the CuTS filter, refinement units (candidates or merged
/// windows) for the refine phase — so `done == total` means the named phase
/// finished. Phases arrive in order; a multi-phase algorithm (CuTS) reports
/// "filter" to completion, then "refine".
struct ProgressUpdate {
  const char* phase = "";  ///< "cmc", "filter", or "refine"
  size_t done = 0;
  size_t total = 0;
};

/// Optional execution hooks threaded through the discovery loops. All
/// callbacks are invoked on the *calling* thread's sequential consumption
/// pass — never from pool workers — so they need no synchronization, and
/// the emission order is deterministic at every thread count.
struct ExecHooks {
  /// Cooperative cancellation: checked once per consumption unit both in
  /// the parallel map lambdas and in the sequential consumption loops. When
  /// it fires, the discovery unwinds with CancelledError (converted to a
  /// kCancelled Status by ConvoyEngine::Execute).
  CancelToken cancel;

  /// Invoked after every consumed unit. Keep it cheap: it runs on the
  /// critical sequential path.
  std::function<void(const ProgressUpdate&)> progress;

  /// Incremental result delivery: receives batches of *verified* convoys as
  /// the units producing them complete (CMC: candidates retiring with
  /// lifetime >= k; CuTS: each refinement unit's output), in deterministic
  /// unit order. The union of all batches is a superset of the final result
  /// set — cross-unit deduplication and dominance pruning happen only in
  /// the materialized result — but every emitted convoy is a true convoy.
  std::function<void(std::vector<Convoy>&&)> sink;

  /// Optional per-execution trace (obs/trace.h). Null — the default —
  /// disables all instrumentation at a cost of one branch per phase.
  /// Counters recorded through it are deterministic at any thread count;
  /// span timings are wall-clock. The engine mirrors this into
  /// ExecContext::trace; deeper layers reached only through hooks read it
  /// via TraceOf below.
  TraceSession* trace = nullptr;
};

/// Cancellation point guarded for a null hooks pointer (the default
/// everywhere hooks are threaded through).
inline void CheckCancelled(const ExecHooks* hooks) {
  if (hooks != nullptr) hooks->cancel.ThrowIfCancelled();
}

inline void ReportProgress(const ExecHooks* hooks, const char* phase,
                           size_t done, size_t total) {
  if (hooks != nullptr && hooks->progress) {
    hooks->progress(ProgressUpdate{phase, done, total});
  }
}

inline void EmitConvoys(const ExecHooks* hooks, std::vector<Convoy> batch) {
  if (hooks != nullptr && hooks->sink && !batch.empty()) {
    hooks->sink(std::move(batch));
  }
}

/// The hooks' trace session, null-guarded like the helpers above.
inline TraceSession* TraceOf(const ExecHooks* hooks) {
  return hooks != nullptr ? hooks->trace : nullptr;
}

}  // namespace convoy

#endif  // CONVOY_CORE_EXEC_HOOKS_H_
