#ifndef CONVOY_CORE_PARAMS_H_
#define CONVOY_CORE_PARAMS_H_

#include <vector>

#include "simplify/simplified_trajectory.h"
#include "traj/database.h"

namespace convoy {

/// The Section 7.4 guideline for the simplification tolerance delta:
/// for a sample of trajectories (default 10% of N, at least 1), run DP with
/// delta = 0, collect the division-step deviations in ascending order, keep
/// those below the query range e, and pick the value just below the largest
/// gap between adjacent deviations; the final delta is the average of the
/// per-trajectory picks. The parameter affects performance only, never
/// correctness.
///
/// Degenerate trajectories (fewer than two recorded deviations under e)
/// contribute e/2, a neutral mid-scale default.
double ComputeDelta(const TrajectoryDatabase& db, double e,
                    double sample_fraction = 0.1, uint64_t seed = 42);

/// The Section 7.4 guideline for the time-partition length lambda:
/// per object, lambda_1 = (|o'|/|o|) * tau with tau = |o.tau| (lifetime in
/// ticks) and |o'|/|o| the simplification survival ratio; objects whose
/// lifetime is a strict subset of the domain are discounted by the paper's
/// endpoint-probability correction lambda = lambda_1 - (lambda_1-2)*tau/T.
/// The result is the average over objects, clamped to [2, max(2, k/4)]
/// (pass k <= 0 to clamp to [2, T] instead) and rounded.
///
/// Deviations from the text as published (documented in DESIGN.md): the
/// correction is skipped for full-lifetime objects — applied literally it
/// degenerates to lambda = 2 whenever tau = T, contradicting the paper's
/// own Table 3 (lambda = 36 for Cattle, which matches the *uncorrected*
/// formula) — and the k-derived cap realizes the k argument that
/// Algorithm 2 passes to ComputeLambda but the text never uses: partitions
/// longer than the query lifetime make every single-partition cluster a
/// candidate and destroy the filter.
///
/// `simplified` must be the database's simplified trajectories (any of the
/// DP variants; only the vertex counts matter).
Tick ComputeLambda(const TrajectoryDatabase& db,
                   const std::vector<SimplifiedTrajectory>& simplified,
                   Tick k = -1);

/// Per-trajectory delta pick used by ComputeDelta; exposed for tests.
double DeltaPickForTrajectory(const Trajectory& traj, double e);

}  // namespace convoy

#endif  // CONVOY_CORE_PARAMS_H_
