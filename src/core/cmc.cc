#include "core/cmc.h"

#include <algorithm>

#include "cluster/dbscan.h"
#include "core/candidate.h"
#include "traj/interpolate.h"
#include "util/stopwatch.h"

namespace convoy {

std::vector<Convoy> CmcRange(const TrajectoryDatabase& db,
                             const ConvoyQuery& query, Tick begin_tick,
                             Tick end_tick, const CmcOptions& options,
                             DiscoveryStats* stats) {
  Stopwatch total;
  CandidateTracker tracker(query.m, query.k);
  std::vector<Candidate> completed;

  std::vector<Point> snapshot;
  std::vector<ObjectId> snapshot_ids;
  std::vector<std::vector<ObjectId>> cluster_objects;

  for (Tick t = begin_tick; t <= end_tick; ++t) {
    // O_t: every object alive at t contributes its (possibly virtual,
    // linearly interpolated) location.
    snapshot.clear();
    snapshot_ids.clear();
    for (const Trajectory& traj : db.trajectories()) {
      const auto pos = InterpolateAt(traj, t);
      if (!pos.has_value()) continue;
      snapshot.push_back(*pos);
      snapshot_ids.push_back(traj.id());
    }

    cluster_objects.clear();
    if (snapshot.size() >= query.m) {
      const Clustering clustering = Dbscan(snapshot, query.e, query.m);
      if (stats != nullptr) ++stats->num_clusterings;
      cluster_objects.reserve(clustering.clusters.size());
      for (const std::vector<size_t>& cluster : clustering.clusters) {
        std::vector<ObjectId> ids;
        ids.reserve(cluster.size());
        for (const size_t idx : cluster) ids.push_back(snapshot_ids[idx]);
        std::sort(ids.begin(), ids.end());
        cluster_objects.push_back(std::move(ids));
      }
    }
    // Advancing with an empty cluster list retires every live candidate,
    // which is exactly what a tick with < m alive objects must do: the
    // "consecutive time points" requirement breaks there.
    tracker.Advance(cluster_objects, t, t, /*step_weight=*/1, &completed);
  }
  tracker.Flush(&completed);

  std::vector<Convoy> result;
  result.reserve(completed.size());
  for (const Candidate& cand : completed) result.push_back(cand.ToConvoy());
  if (options.remove_dominated) {
    result = RemoveDominated(std::move(result));
  } else {
    Canonicalize(&result);
  }

  if (stats != nullptr) {
    stats->total_seconds += total.ElapsedSeconds();
    stats->num_convoys = result.size();
  }
  return result;
}

std::vector<Convoy> Cmc(const TrajectoryDatabase& db, const ConvoyQuery& query,
                        const CmcOptions& options, DiscoveryStats* stats) {
  if (db.Empty()) return {};
  return CmcRange(db, query, db.BeginTick(), db.EndTick(), options, stats);
}

}  // namespace convoy
