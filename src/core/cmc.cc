#include "core/cmc.h"

#include <algorithm>

#include "cluster/dbscan.h"
#include "cluster/grid_index.h"
#include "obs/trace.h"
#include "traj/interpolate.h"
#include "util/stopwatch.h"

namespace convoy {

namespace {

// Maps a clustering's point indices to sorted object-id lists — the shape
// the candidate tracker consumes.
std::vector<std::vector<ObjectId>> ClustersToObjectIds(
    const Clustering& clustering, const ObjectId* ids) {
  std::vector<std::vector<ObjectId>> cluster_objects;
  cluster_objects.reserve(clustering.clusters.size());
  for (const std::vector<size_t>& cluster : clustering.clusters) {
    std::vector<ObjectId> members;
    members.reserve(cluster.size());
    for (const size_t idx : cluster) members.push_back(ids[idx]);
    std::sort(members.begin(), members.end());
    cluster_objects.push_back(std::move(members));
  }
  return cluster_objects;
}

}  // namespace

std::vector<std::vector<ObjectId>> ClusterSnapshot(
    const std::vector<Point>& points, const std::vector<ObjectId>& ids,
    const ConvoyQuery& query, bool* clustered, DbscanScratch* scratch) {
  if (clustered != nullptr) *clustered = false;
  if (points.size() < query.m) return {};
  Clustering clustering;
  if (scratch != nullptr) {
    // Arena path: rebuild the scratch grid in place (identical state to a
    // fresh index) and run DBSCAN out of the same working set.
    scratch->grid.Assign(points, query.e);
    clustering = Dbscan(points, scratch->grid, query.e, query.m, scratch);
  } else {
    const GridIndex index(points, query.e);
    clustering = Dbscan(points, index, query.e, query.m);
  }
  if (clustered != nullptr) *clustered = true;
  return ClustersToObjectIds(clustering, ids.data());
}

std::vector<std::vector<ObjectId>> SnapshotClusters(
    const TrajectoryDatabase& db, Tick t, const ConvoyQuery& query,
    bool* clustered, SnapshotScratch* scratch) {
  SnapshotScratch local;
  if (scratch == nullptr) scratch = &local;
  std::vector<Point>& snapshot = scratch->points;
  std::vector<ObjectId>& snapshot_ids = scratch->ids;
  snapshot.clear();
  snapshot_ids.clear();

  // O_t: every object alive at t contributes its (possibly virtual,
  // linearly interpolated) location.
  for (const Trajectory& traj : db.trajectories()) {
    const auto pos = InterpolateAt(traj, t);
    if (!pos.has_value()) continue;
    snapshot.push_back(*pos);
    snapshot_ids.push_back(traj.id());
  }
  return ClusterSnapshot(snapshot, snapshot_ids, query, clustered,
                         &scratch->dbscan);
}

std::vector<std::vector<ObjectId>> SnapshotClusters(
    const SnapshotStore& store, Tick t, const ConvoyQuery& query,
    bool* clustered, DbscanScratch* scratch, bool* grid_cache_hit) {
  if (clustered != nullptr) *clustered = false;
  const SnapshotView view = store.At(t);
  if (view.size < query.m) return {};
  // Hold the shared_ptr across the scan: the store may evict the grid
  // from its cache mid-query (eps-sweep bound), never from under us.
  const std::shared_ptr<const GridIndex> grid =
      store.GridFor(t, query.e, grid_cache_hit);
  const Clustering clustering =
      Dbscan(view.xs, view.ys, view.size, *grid, query.e, query.m, scratch);
  if (clustered != nullptr) *clustered = true;
  return ClustersToObjectIds(clustering, view.ids);
}

std::vector<Convoy> FinalizeCmcResult(const std::vector<Candidate>& completed,
                                      const CmcOptions& options) {
  std::vector<Convoy> result;
  result.reserve(completed.size());
  for (const Candidate& cand : completed) result.push_back(cand.ToConvoy());
  if (options.remove_dominated) {
    result = RemoveDominated(std::move(result));
  } else {
    Canonicalize(&result);
  }
  return result;
}

size_t EmitCompletedSince(const std::vector<Candidate>& completed, size_t from,
                          const ExecHooks* hooks) {
  if (hooks == nullptr || !hooks->sink) return completed.size();
  std::vector<Convoy> batch;
  batch.reserve(completed.size() - from);
  for (size_t i = from; i < completed.size(); ++i) {
    batch.push_back(completed[i].ToConvoy());
  }
  EmitConvoys(hooks, std::move(batch));
  return completed.size();
}

void TraceDbscanRun(TraceSession* trace, const DbscanTally& tally) {
  if (trace == nullptr) return;
  trace->Count(TraceCounter::kDbscanPointsScanned, tally.points_scanned);
  trace->Count(TraceCounter::kDbscanNeighborQueries, tally.neighbor_queries);
  trace->Count(TraceCounter::kDbscanNeighborsVisited,
               tally.neighbors_visited);
  trace->Count(TraceCounter::kDbscanClustersFormed, tally.clusters_formed);
}

void TraceTrackerTally(TraceSession* trace, const TrackerTally& tally) {
  if (trace == nullptr) return;
  trace->Count(TraceCounter::kTrackerSteps, tally.steps);
  trace->Count(TraceCounter::kTrackerCandidatesOffered,
               tally.candidates_offered);
  trace->Count(TraceCounter::kTrackerDedupProbes, tally.dedup_probes);
  trace->Count(TraceCounter::kTrackerDedupHits, tally.dedup_hits);
  trace->Count(TraceCounter::kTrackerCompleted, tally.completed);
  trace->CountMax(TraceCounter::kTrackerLiveMax, tally.live_max);
}

namespace {

// The serial CMC loop, generic over how a tick's clusters are produced
// (row-oriented re-derivation or the SnapshotStore's columnar views): the
// candidate algebra is identical either way, so the two entry points can
// never diverge. `cluster_at(t, &clustered)` returns the tick's clusters.
template <typename ClusterAt>
std::vector<Convoy> CmcRangeImpl(const ConvoyQuery& query, Tick begin_tick,
                                 Tick end_tick, const CmcOptions& options,
                                 DiscoveryStats* stats, const ExecHooks* hooks,
                                 ClusterAt&& cluster_at) {
  Stopwatch total;
  TraceSession* const trace = TraceOf(hooks);
  CandidateTracker tracker(query.m, query.k);
  std::vector<Candidate> completed;
  const size_t total_ticks =
      begin_tick <= end_tick ? static_cast<size_t>(end_tick - begin_tick) + 1
                             : 0;
  size_t emitted = 0;

  for (Tick t = begin_tick; t <= end_tick; ++t) {
    CheckCancelled(hooks);
    bool clustered = false;
    const std::vector<std::vector<ObjectId>> cluster_objects =
        cluster_at(t, &clustered);
    if (clustered) {
      if (stats != nullptr) ++stats->num_clusterings;
      TraceCount(trace, TraceCounter::kSnapshotsClustered, 1);
    }
    // Advancing with an empty cluster list retires every live candidate,
    // which is exactly what a tick with < m alive objects must do: the
    // "consecutive time points" requirement breaks there.
    tracker.Advance(cluster_objects, t, t, /*step_weight=*/1, &completed);
    emitted = EmitCompletedSince(completed, emitted, hooks);
    ReportProgress(hooks, "cmc",
                   static_cast<size_t>(t - begin_tick) + 1, total_ticks);
  }
  tracker.Flush(&completed);
  EmitCompletedSince(completed, emitted, hooks);
  TraceTrackerTally(trace, tracker.tally());

  std::vector<Convoy> result;
  {
    ScopedSpan finalize_span(trace, "cmc.finalize");
    result = FinalizeCmcResult(completed, options);
  }

  if (stats != nullptr) {
    stats->total_seconds += total.ElapsedSeconds();
    stats->num_convoys = result.size();
  }
  return result;
}

}  // namespace

std::vector<Convoy> CmcRange(const TrajectoryDatabase& db,
                             const ConvoyQuery& query, Tick begin_tick,
                             Tick end_tick, const CmcOptions& options,
                             DiscoveryStats* stats, const ExecHooks* hooks,
                             SnapshotScratch* scratch) {
  SnapshotScratch local;
  if (scratch == nullptr) scratch = &local;
  TraceSession* const trace = TraceOf(hooks);
  return CmcRangeImpl(
      query, begin_tick, end_tick, options, stats, hooks,
      [&](Tick t, bool* clustered) {
        ScopedSpan span(trace, "snapshot.cluster");
        std::vector<std::vector<ObjectId>> clusters =
            SnapshotClusters(db, t, query, clustered, scratch);
        if (*clustered) TraceDbscanRun(trace, scratch->dbscan.tally);
        return clusters;
      });
}

std::vector<Convoy> Cmc(const TrajectoryDatabase& db, const ConvoyQuery& query,
                        const CmcOptions& options, DiscoveryStats* stats,
                        const ExecHooks* hooks, SnapshotScratch* scratch) {
  if (db.Empty()) return {};
  return CmcRange(db, query, db.BeginTick(), db.EndTick(), options, stats,
                  hooks, scratch);
}

std::vector<Convoy> CmcRange(const SnapshotStore& store,
                             const ConvoyQuery& query, Tick begin_tick,
                             Tick end_tick, const CmcOptions& options,
                             DiscoveryStats* stats, const ExecHooks* hooks,
                             SnapshotScratch* scratch) {
  SnapshotScratch local;
  if (scratch == nullptr) scratch = &local;
  TraceSession* const trace = TraceOf(hooks);
  return CmcRangeImpl(
      query, begin_tick, end_tick, options, stats, hooks,
      [&](Tick t, bool* clustered) {
        ScopedSpan span(trace, "snapshot.cluster");
        bool grid_hit = false;
        std::vector<std::vector<ObjectId>> clusters = SnapshotClusters(
            store, t, query, clustered, &scratch->dbscan, &grid_hit);
        if (*clustered) {
          TraceDbscanRun(trace, scratch->dbscan.tally);
          TraceCount(trace,
                     grid_hit ? TraceCounter::kGridCacheHits
                              : TraceCounter::kGridCacheMisses,
                     1);
        }
        return clusters;
      });
}

std::vector<Convoy> Cmc(const SnapshotStore& store, const ConvoyQuery& query,
                        const CmcOptions& options, DiscoveryStats* stats,
                        const ExecHooks* hooks, SnapshotScratch* scratch) {
  if (store.Empty()) return {};
  return CmcRange(store, query, store.begin_tick(), store.end_tick(), options,
                  stats, hooks, scratch);
}

}  // namespace convoy
