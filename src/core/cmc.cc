#include "core/cmc.h"

#include <algorithm>

#include "cluster/dbscan.h"
#include "cluster/grid_index.h"
#include "traj/interpolate.h"
#include "util/stopwatch.h"

namespace convoy {

std::vector<std::vector<ObjectId>> SnapshotClusters(
    const TrajectoryDatabase& db, Tick t, const ConvoyQuery& query,
    bool* clustered, SnapshotScratch* scratch) {
  SnapshotScratch local;
  if (scratch == nullptr) scratch = &local;
  std::vector<Point>& snapshot = scratch->points;
  std::vector<ObjectId>& snapshot_ids = scratch->ids;
  snapshot.clear();
  snapshot_ids.clear();

  // O_t: every object alive at t contributes its (possibly virtual,
  // linearly interpolated) location.
  for (const Trajectory& traj : db.trajectories()) {
    const auto pos = InterpolateAt(traj, t);
    if (!pos.has_value()) continue;
    snapshot.push_back(*pos);
    snapshot_ids.push_back(traj.id());
  }

  std::vector<std::vector<ObjectId>> cluster_objects;
  if (clustered != nullptr) *clustered = false;
  if (snapshot.size() >= query.m) {
    const GridIndex index(snapshot, query.e);
    const Clustering clustering = Dbscan(snapshot, index, query.e, query.m);
    if (clustered != nullptr) *clustered = true;
    cluster_objects.reserve(clustering.clusters.size());
    for (const std::vector<size_t>& cluster : clustering.clusters) {
      std::vector<ObjectId> ids;
      ids.reserve(cluster.size());
      for (const size_t idx : cluster) ids.push_back(snapshot_ids[idx]);
      std::sort(ids.begin(), ids.end());
      cluster_objects.push_back(std::move(ids));
    }
  }
  return cluster_objects;
}

std::vector<Convoy> FinalizeCmcResult(const std::vector<Candidate>& completed,
                                      const CmcOptions& options) {
  std::vector<Convoy> result;
  result.reserve(completed.size());
  for (const Candidate& cand : completed) result.push_back(cand.ToConvoy());
  if (options.remove_dominated) {
    result = RemoveDominated(std::move(result));
  } else {
    Canonicalize(&result);
  }
  return result;
}

namespace {

// Converts completed candidates [from, end) to convoys and hands them to the
// sink — the shared incremental-emission tail of the serial and parallel CMC
// loops. Returns the new emission watermark.
size_t EmitCompletedSince(const std::vector<Candidate>& completed, size_t from,
                          const ExecHooks* hooks) {
  if (hooks == nullptr || !hooks->sink) return completed.size();
  std::vector<Convoy> batch;
  batch.reserve(completed.size() - from);
  for (size_t i = from; i < completed.size(); ++i) {
    batch.push_back(completed[i].ToConvoy());
  }
  EmitConvoys(hooks, std::move(batch));
  return completed.size();
}

}  // namespace

std::vector<Convoy> CmcRange(const TrajectoryDatabase& db,
                             const ConvoyQuery& query, Tick begin_tick,
                             Tick end_tick, const CmcOptions& options,
                             DiscoveryStats* stats, const ExecHooks* hooks) {
  Stopwatch total;
  CandidateTracker tracker(query.m, query.k);
  std::vector<Candidate> completed;
  const size_t total_ticks =
      begin_tick <= end_tick ? static_cast<size_t>(end_tick - begin_tick) + 1
                             : 0;
  size_t emitted = 0;

  SnapshotScratch scratch;
  for (Tick t = begin_tick; t <= end_tick; ++t) {
    CheckCancelled(hooks);
    bool clustered = false;
    const std::vector<std::vector<ObjectId>> cluster_objects =
        SnapshotClusters(db, t, query, &clustered, &scratch);
    if (clustered && stats != nullptr) ++stats->num_clusterings;
    // Advancing with an empty cluster list retires every live candidate,
    // which is exactly what a tick with < m alive objects must do: the
    // "consecutive time points" requirement breaks there.
    tracker.Advance(cluster_objects, t, t, /*step_weight=*/1, &completed);
    emitted = EmitCompletedSince(completed, emitted, hooks);
    ReportProgress(hooks, "cmc",
                   static_cast<size_t>(t - begin_tick) + 1, total_ticks);
  }
  tracker.Flush(&completed);
  EmitCompletedSince(completed, emitted, hooks);

  std::vector<Convoy> result = FinalizeCmcResult(completed, options);

  if (stats != nullptr) {
    stats->total_seconds += total.ElapsedSeconds();
    stats->num_convoys = result.size();
  }
  return result;
}

std::vector<Convoy> Cmc(const TrajectoryDatabase& db, const ConvoyQuery& query,
                        const CmcOptions& options, DiscoveryStats* stats,
                        const ExecHooks* hooks) {
  if (db.Empty()) return {};
  return CmcRange(db, query, db.BeginTick(), db.EndTick(), options, stats,
                  hooks);
}

}  // namespace convoy
