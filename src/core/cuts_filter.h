#ifndef CONVOY_CORE_CUTS_FILTER_H_
#define CONVOY_CORE_CUTS_FILTER_H_

#include <vector>

#include "cluster/polyline_dbscan.h"
#include "core/candidate.h"
#include "core/convoy_set.h"
#include "core/cuts_refine.h"
#include "core/discovery_stats.h"
#include "simplify/simplifier.h"
#include "traj/database.h"

namespace convoy {

/// Tuning knobs of the CuTS filter step (paper Algorithm 2). The variant
/// table of Section 6 maps onto `simplifier` + `distance`:
///
///   CuTS   = kDp     + kDll
///   CuTS+  = kDpPlus + kDll
///   CuTS*  = kDpStar + kDStar
struct CutsFilterOptions {
  SimplifierKind simplifier = SimplifierKind::kDp;
  SegmentDistanceKind distance = SegmentDistanceKind::kDll;

  /// Simplification tolerance; <= 0 means derive it with ComputeDelta.
  double delta = -1.0;

  /// Time-partition length; <= 0 means derive it with ComputeLambda.
  Tick lambda = -1;

  /// Use per-segment actual tolerances in the range-search bounds (the
  /// paper's Figure 14 optimization). When false the global delta is
  /// charged for every segment — still correct, just looser.
  bool use_actual_tolerance = true;

  /// Apply the Lemma 2 bounding-box pre-test per polyline pair.
  bool use_box_pruning = true;

  /// Generate neighbor candidates through an STR R-tree over polyline
  /// bounding boxes instead of all-pairs scanning (see
  /// PolylineDbscanOptions::use_rtree). Identical results either way.
  bool use_rtree = false;

  /// How the refinement step verifies candidates (consumed by Cuts(), which
  /// forwards it to CutsRefine). kProjected is the paper's Algorithm 3;
  /// kFullWindow guarantees exact equality with CMC on every input.
  RefineMode refine_mode = RefineMode::kProjected;

  /// Worker threads for the refinement step (candidates / windows are
  /// independent units of work). 1 = sequential; results are identical
  /// regardless.
  size_t refine_threads = 1;
};

/// Output of the filter step: candidate convoys (object sets with the tick
/// span of the partitions that produced them) plus the simplified
/// trajectories, so the refinement can reuse them if needed.
struct CutsFilterResult {
  std::vector<Candidate> candidates;
  std::vector<SimplifiedTrajectory> simplified;
  double delta_used = 0.0;
  Tick lambda_used = 0;
};

/// Runs trajectory simplification and the partition-by-partition
/// TRAJ-DBSCAN candidate generation of Algorithm 2. Every actual convoy is
/// contained in some candidate (no false dismissal — the exactness the
/// Lemma 1/2/3 bounds guarantee); candidates may be larger or spurious and
/// are trimmed by the refinement step.
CutsFilterResult CutsFilter(const TrajectoryDatabase& db,
                            const ConvoyQuery& query,
                            const CutsFilterOptions& options,
                            DiscoveryStats* stats = nullptr);

/// Variant that reuses already-simplified trajectories (index-aligned with
/// `db`, produced with `delta_used` and the simplifier matching
/// `options.simplifier`). `ConvoyEngine` uses this to amortize the
/// simplification cost across repeated queries.
CutsFilterResult CutsFilterPresimplified(
    const TrajectoryDatabase& db, const ConvoyQuery& query,
    const CutsFilterOptions& options,
    std::vector<SimplifiedTrajectory> simplified, double delta_used,
    DiscoveryStats* stats = nullptr);

}  // namespace convoy

#endif  // CONVOY_CORE_CUTS_FILTER_H_
