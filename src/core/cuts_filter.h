#ifndef CONVOY_CORE_CUTS_FILTER_H_
#define CONVOY_CORE_CUTS_FILTER_H_

#include <vector>

#include "cluster/polyline_dbscan.h"
#include "core/candidate.h"
#include "core/convoy_set.h"
#include "core/cuts_refine.h"
#include "core/discovery_stats.h"
#include "core/exec_hooks.h"
#include "simplify/simplifier.h"
#include "traj/database.h"

namespace convoy {

/// Tuning knobs of the CuTS filter step (paper Algorithm 2). The variant
/// table of Section 6 maps onto `simplifier` + `distance`:
///
///   CuTS   = kDp     + kDll
///   CuTS+  = kDpPlus + kDll
///   CuTS*  = kDpStar + kDStar
struct CutsFilterOptions {
  SimplifierKind simplifier = SimplifierKind::kDp;
  SegmentDistanceKind distance = SegmentDistanceKind::kDll;

  /// Simplification tolerance; <= 0 means derive it with ComputeDelta.
  double delta = -1.0;

  /// Time-partition length; <= 0 means derive it with ComputeLambda.
  Tick lambda = -1;

  /// Use per-segment actual tolerances in the range-search bounds (the
  /// paper's Figure 14 optimization). When false the global delta is
  /// charged for every segment — still correct, just looser.
  bool use_actual_tolerance = true;

  /// Apply the Lemma 2 bounding-box pre-test per polyline pair.
  bool use_box_pruning = true;

  /// Generate neighbor candidates through an STR R-tree over polyline
  /// bounding boxes instead of all-pairs scanning (see
  /// PolylineDbscanOptions::use_rtree). Identical results either way.
  bool use_rtree = false;

  /// How the refinement step verifies candidates (consumed by Cuts(), which
  /// forwards it to CutsRefine). kProjected is the paper's Algorithm 3;
  /// kFullWindow guarantees exact equality with CMC on every input.
  RefineMode refine_mode = RefineMode::kProjected;

  /// Worker threads for the filter phase: database simplification and the
  /// per-partition TRAJ-DBSCAN run concurrently (partitions are balanced
  /// chunks of the time domain) while candidate tracking stays sequential
  /// in partition order, so results are identical for every value.
  /// 0 = inherit ConvoyQuery::num_threads.
  size_t num_threads = 0;

  /// Worker threads for the refinement step (candidates / windows are
  /// independent units of work). Results are identical regardless.
  /// 0 = inherit ConvoyQuery::num_threads.
  size_t refine_threads = 0;
};

/// Resolves a per-phase thread knob against the query-wide default: a
/// positive per-phase value wins, 0 falls back to query.num_threads, where
/// a final 0 means "all hardware threads". Never returns 0.
size_t ResolveWorkerThreads(size_t phase_threads, const ConvoyQuery& query);

/// Output of the filter step: candidate convoys (object sets with the tick
/// span of the partitions that produced them) plus the simplified
/// trajectories, so the refinement can reuse them if needed.
struct CutsFilterResult {
  std::vector<Candidate> candidates;
  std::vector<SimplifiedTrajectory> simplified;
  double delta_used = 0.0;
  Tick lambda_used = 0;
};

/// Runs trajectory simplification and the partition-by-partition
/// TRAJ-DBSCAN candidate generation of Algorithm 2. Every actual convoy is
/// contained in some candidate (no false dismissal — the exactness the
/// Lemma 1/2/3 bounds guarantee); candidates may be larger or spurious and
/// are trimmed by the refinement step.
CutsFilterResult CutsFilter(const TrajectoryDatabase& db,
                            const ConvoyQuery& query,
                            const CutsFilterOptions& options,
                            DiscoveryStats* stats = nullptr);

/// Gathers each object's sub-polyline for the partition
/// [part_start, part_end]: the simplified segments whose time intervals
/// intersect the partition (a segment spanning a boundary goes into both
/// partitions, as in paper Figure 9(b)). The per-partition unit of work
/// shared by the serial and parallel filter paths.
std::vector<PartitionPolyline> BuildPartitionPolylines(
    const std::vector<SimplifiedTrajectory>& simplified, Tick part_start,
    Tick part_end, bool use_actual_tolerance, double delta_used);

/// Variant that reuses already-simplified trajectories (index-aligned with
/// `db`, produced with `delta_used` and the simplifier matching
/// `options.simplifier`). `ConvoyEngine` uses this to amortize the
/// simplification cost across repeated queries. `hooks` (optional) adds a
/// cancellation check per time partition — in the parallel clustering
/// lambda and the sequential tracker pass — plus per-partition "filter"
/// progress reports; results are unaffected (core/exec_hooks.h). `store`
/// (optional; must be built from `db`) supplies the precomputed time
/// domain, so partitioning skips the O(N) BeginTick/EndTick rescans;
/// partition boundaries — and results — are identical either way.
class SnapshotStore;
CutsFilterResult CutsFilterPresimplified(
    const TrajectoryDatabase& db, const ConvoyQuery& query,
    const CutsFilterOptions& options,
    std::vector<SimplifiedTrajectory> simplified, double delta_used,
    DiscoveryStats* stats = nullptr, const ExecHooks* hooks = nullptr,
    const SnapshotStore* store = nullptr);

}  // namespace convoy

#endif  // CONVOY_CORE_CUTS_FILTER_H_
