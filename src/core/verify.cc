#include "core/verify.h"

#include <algorithm>

#include "cluster/dbscan.h"
#include "traj/interpolate.h"

namespace convoy {

bool ObjectsConnectedAt(const TrajectoryDatabase& db, const ConvoyQuery& query,
                        const std::vector<ObjectId>& objects, Tick t) {
  std::vector<Point> snapshot;
  std::vector<ObjectId> snapshot_ids;
  for (const Trajectory& traj : db.trajectories()) {
    const auto pos = InterpolateAt(traj, t);
    if (!pos.has_value()) continue;
    snapshot.push_back(*pos);
    snapshot_ids.push_back(traj.id());
  }

  // Two sorted vectors replace the per-(convoy, tick) unordered_sets the
  // checker used to rebuild: convoy object lists arrive sorted (candidates
  // are sorted unique — re-sorted here only if a direct caller passed an
  // unsorted list), and the snapshot ids sort once per tick. Membership is
  // then a binary search — no hashing, no node allocations.
  std::vector<ObjectId> wanted = objects;
  if (!std::is_sorted(wanted.begin(), wanted.end())) {
    std::sort(wanted.begin(), wanted.end());
  }
  // Dedupe to keep the hits == wanted.size() test meaning "all distinct
  // queried objects", exactly as the old set semantics had it.
  wanted.erase(std::unique(wanted.begin(), wanted.end()), wanted.end());
  std::vector<ObjectId> alive = snapshot_ids;
  std::sort(alive.begin(), alive.end());

  // Every queried object must be alive at t.
  for (const ObjectId id : wanted) {
    if (!std::binary_search(alive.begin(), alive.end(), id)) return false;
  }

  const Clustering clustering = Dbscan(snapshot, query.e, query.m);
  for (const std::vector<size_t>& cluster : clustering.clusters) {
    size_t hits = 0;
    for (const size_t idx : cluster) {
      if (std::binary_search(wanted.begin(), wanted.end(),
                             snapshot_ids[idx])) {
        ++hits;
      }
    }
    if (hits == wanted.size()) return true;
    if (hits > 0) return false;  // split across clusters (or partly noise)
  }
  return false;
}

bool VerifyConvoy(const TrajectoryDatabase& db, const ConvoyQuery& query,
                  const Convoy& candidate) {
  if (candidate.objects.size() < query.m) return false;
  if (candidate.Lifetime() < query.k) return false;
  for (Tick t = candidate.start_tick; t <= candidate.end_tick; ++t) {
    if (!ObjectsConnectedAt(db, query, candidate.objects, t)) return false;
  }
  return true;
}

}  // namespace convoy
