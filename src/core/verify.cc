#include "core/verify.h"

#include <algorithm>
#include <unordered_set>

#include "cluster/dbscan.h"
#include "traj/interpolate.h"

namespace convoy {

bool ObjectsConnectedAt(const TrajectoryDatabase& db, const ConvoyQuery& query,
                        const std::vector<ObjectId>& objects, Tick t) {
  std::vector<Point> snapshot;
  std::vector<ObjectId> snapshot_ids;
  for (const Trajectory& traj : db.trajectories()) {
    const auto pos = InterpolateAt(traj, t);
    if (!pos.has_value()) continue;
    snapshot.push_back(*pos);
    snapshot_ids.push_back(traj.id());
  }

  // Every queried object must be alive at t.
  std::unordered_set<ObjectId> alive(snapshot_ids.begin(), snapshot_ids.end());
  for (const ObjectId id : objects) {
    if (alive.count(id) == 0) return false;
  }

  const Clustering clustering = Dbscan(snapshot, query.e, query.m);
  const std::unordered_set<ObjectId> wanted(objects.begin(), objects.end());
  for (const std::vector<size_t>& cluster : clustering.clusters) {
    size_t hits = 0;
    for (const size_t idx : cluster) {
      if (wanted.count(snapshot_ids[idx]) > 0) ++hits;
    }
    if (hits == wanted.size()) return true;
    if (hits > 0) return false;  // split across clusters (or partly noise)
  }
  return false;
}

bool VerifyConvoy(const TrajectoryDatabase& db, const ConvoyQuery& query,
                  const Convoy& candidate) {
  if (candidate.objects.size() < query.m) return false;
  if (candidate.Lifetime() < query.k) return false;
  for (Tick t = candidate.start_tick; t <= candidate.end_tick; ++t) {
    if (!ObjectsConnectedAt(db, query, candidate.objects, t)) return false;
  }
  return true;
}

}  // namespace convoy
