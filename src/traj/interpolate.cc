#include "traj/interpolate.h"

namespace convoy {

std::optional<Point> InterpolateAt(const Trajectory& traj, Tick t) {
  if (!traj.CoversTick(t)) return std::nullopt;
  const auto idx = traj.IndexAtOrBefore(t);
  const TimedPoint& before = traj[*idx];
  if (before.t == t) return before.pos;
  const TimedPoint& after = traj[*idx + 1];  // exists because t <= EndTick
  const double frac = static_cast<double>(t - before.t) /
                      static_cast<double>(after.t - before.t);
  return before.pos + (after.pos - before.pos) * frac;
}

Trajectory Densify(const Trajectory& traj) {
  Trajectory out(traj.id());
  if (traj.Empty()) return out;
  for (Tick t = traj.BeginTick(); t <= traj.EndTick(); ++t) {
    out.Append(TimedPoint(*InterpolateAt(traj, t), t));
  }
  return out;
}

}  // namespace convoy
