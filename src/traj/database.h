#ifndef CONVOY_TRAJ_DATABASE_H_
#define CONVOY_TRAJ_DATABASE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "traj/trajectory.h"

namespace convoy {

/// Aggregate statistics of a trajectory database, matching the rows of the
/// paper's Table 3 (number of objects N, time-domain length T, average
/// trajectory length, total data size in points).
struct DatabaseStats {
  size_t num_objects = 0;
  Tick time_domain_begin = 0;
  Tick time_domain_end = 0;
  /// Number of ticks spanned by the database: T in the paper.
  Tick time_domain_length = 0;
  /// Mean number of stored samples per trajectory.
  double avg_trajectory_length = 0.0;
  /// Total number of stored samples across all trajectories.
  size_t total_points = 0;
  /// Fraction of lifetime ticks that lack a sample, averaged over objects —
  /// how irregular the sampling is (high for the taxi-like workload).
  double avg_missing_ratio = 0.0;
};

/// A collection of trajectories: the "set of trajectories O" every query in
/// the paper ranges over. Object ids inside one database are unique.
class TrajectoryDatabase {
 public:
  TrajectoryDatabase() = default;
  explicit TrajectoryDatabase(std::vector<Trajectory> trajectories);

  /// Adds a trajectory; empty trajectories are stored too (harmless, but
  /// they never participate in clustering). Bumps the generation counter.
  void Add(Trajectory traj);

  size_t Size() const { return trajectories_.size(); }
  bool Empty() const { return trajectories_.empty(); }

  const std::vector<Trajectory>& trajectories() const { return trajectories_; }
  const Trajectory& operator[](size_t i) const { return trajectories_[i]; }

  /// Mutation counter: bumped by every Add, so derived structures
  /// (SnapshotStore, the engine's memoized DatabaseStats) can detect a
  /// stale snapshot of *this instance* cheaply. Copies carry the counter
  /// along; two independently built databases are not comparable by it.
  uint64_t generation() const { return generation_; }

  /// Index of the trajectory with the given object id, or nullopt. O(1)
  /// via the id map maintained by Add; if several trajectories share an id
  /// (out of contract — ids are documented unique) the first one wins.
  std::optional<size_t> IndexOf(ObjectId id) const;

  /// The trajectory with the given object id, or nullptr.
  const Trajectory* Find(ObjectId id) const;

  /// Earliest tick across all trajectories (0 when empty).
  Tick BeginTick() const;

  /// Latest tick across all trajectories (-1 when empty so that the usual
  /// `for (t = BeginTick(); t <= EndTick(); ...)` loop body never runs).
  Tick EndTick() const;

  /// Computes Table 3-style statistics in one pass.
  DatabaseStats Stats() const;

  /// Returns the subset database containing only the given objects, in
  /// database order. Order of `ids` is irrelevant; unknown and duplicate
  /// ids are ignored. O(|ids| log |ids|) via the id map — refinement calls
  /// this once per candidate, so it must not rescan all N trajectories.
  TrajectoryDatabase Project(const std::vector<ObjectId>& ids) const;

 private:
  std::vector<Trajectory> trajectories_;
  std::unordered_map<ObjectId, size_t> id_index_;
  uint64_t generation_ = 0;
};

}  // namespace convoy

#endif  // CONVOY_TRAJ_DATABASE_H_
