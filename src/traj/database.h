#ifndef CONVOY_TRAJ_DATABASE_H_
#define CONVOY_TRAJ_DATABASE_H_

#include <cstddef>
#include <vector>

#include "traj/trajectory.h"

namespace convoy {

/// Aggregate statistics of a trajectory database, matching the rows of the
/// paper's Table 3 (number of objects N, time-domain length T, average
/// trajectory length, total data size in points).
struct DatabaseStats {
  size_t num_objects = 0;
  Tick time_domain_begin = 0;
  Tick time_domain_end = 0;
  /// Number of ticks spanned by the database: T in the paper.
  Tick time_domain_length = 0;
  /// Mean number of stored samples per trajectory.
  double avg_trajectory_length = 0.0;
  /// Total number of stored samples across all trajectories.
  size_t total_points = 0;
  /// Fraction of lifetime ticks that lack a sample, averaged over objects —
  /// how irregular the sampling is (high for the taxi-like workload).
  double avg_missing_ratio = 0.0;
};

/// A collection of trajectories: the "set of trajectories O" every query in
/// the paper ranges over. Object ids inside one database are unique.
class TrajectoryDatabase {
 public:
  TrajectoryDatabase() = default;
  explicit TrajectoryDatabase(std::vector<Trajectory> trajectories);

  /// Adds a trajectory; empty trajectories are stored too (harmless, but
  /// they never participate in clustering).
  void Add(Trajectory traj) { trajectories_.push_back(std::move(traj)); }

  size_t Size() const { return trajectories_.size(); }
  bool Empty() const { return trajectories_.empty(); }

  const std::vector<Trajectory>& trajectories() const { return trajectories_; }
  const Trajectory& operator[](size_t i) const { return trajectories_[i]; }

  /// Earliest tick across all trajectories (0 when empty).
  Tick BeginTick() const;

  /// Latest tick across all trajectories (-1 when empty so that the usual
  /// `for (t = BeginTick(); t <= EndTick(); ...)` loop body never runs).
  Tick EndTick() const;

  /// Computes Table 3-style statistics in one pass.
  DatabaseStats Stats() const;

  /// Returns the subset database containing only the given objects.
  /// Order of `ids` is irrelevant; unknown ids are ignored.
  TrajectoryDatabase Project(const std::vector<ObjectId>& ids) const;

 private:
  std::vector<Trajectory> trajectories_;
};

}  // namespace convoy

#endif  // CONVOY_TRAJ_DATABASE_H_
