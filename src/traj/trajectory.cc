#include "traj/trajectory.h"

#include <algorithm>

namespace convoy {

Trajectory::Trajectory(ObjectId id, std::vector<TimedPoint> samples)
    : id_(id), samples_(std::move(samples)) {
  CollapseDuplicateTicks(&samples_);
}

size_t Trajectory::CollapseDuplicateTicks(std::vector<TimedPoint>* samples) {
  std::stable_sort(
      samples->begin(), samples->end(),
      [](const TimedPoint& a, const TimedPoint& b) { return a.t < b.t; });
  // Collapse duplicate ticks, keeping the last reported location.
  auto out = samples->begin();
  for (auto it = samples->begin(); it != samples->end(); ++it) {
    auto next = std::next(it);
    if (next != samples->end() && next->t == it->t) continue;
    *out++ = *it;
  }
  const size_t collapsed =
      static_cast<size_t>(std::distance(out, samples->end()));
  samples->erase(out, samples->end());
  return collapsed;
}

bool Trajectory::Append(const TimedPoint& p) {
  if (!samples_.empty() && p.t <= samples_.back().t) return false;
  samples_.push_back(p);
  return true;
}

std::optional<size_t> Trajectory::IndexAtOrBefore(Tick t) const {
  if (samples_.empty() || t < samples_.front().t) return std::nullopt;
  auto it = std::upper_bound(
      samples_.begin(), samples_.end(), t,
      [](Tick tick, const TimedPoint& p) { return tick < p.t; });
  return static_cast<size_t>(std::distance(samples_.begin(), it)) - 1;
}

std::optional<Point> Trajectory::LocationAt(Tick t) const {
  const auto idx = IndexAtOrBefore(t);
  if (!idx.has_value() || samples_[*idx].t != t) return std::nullopt;
  return samples_[*idx].pos;
}

}  // namespace convoy
