#include "traj/snapshot_store.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "parallel/parallel_for.h"

namespace convoy {

SnapshotStore::SnapshotStore() : grid_cache_(std::make_unique<GridCache>()) {}

size_t SnapshotStore::EstimateColumnarSlots(const TrajectoryDatabase& db) {
  const Tick begin = db.BeginTick();
  const Tick end = db.EndTick();
  if (db.Empty() || end < begin) return 0;
  // Unsigned arithmetic with saturation: adversarial tick values (epoch
  // nanoseconds, INT64_MIN sentinels) must report "too big", not overflow.
  const auto saturating_add = [](uint64_t a, uint64_t b) {
    const uint64_t sum = a + b;
    return sum < a ? std::numeric_limits<uint64_t>::max() : sum;
  };
  uint64_t slots = saturating_add(
      static_cast<uint64_t>(end) - static_cast<uint64_t>(begin), 1);
  for (const Trajectory& traj : db.trajectories()) {
    if (traj.Empty()) continue;
    slots = saturating_add(
        slots, saturating_add(static_cast<uint64_t>(traj.EndTick()) -
                                  static_cast<uint64_t>(traj.BeginTick()),
                              1));
  }
  return slots > std::numeric_limits<size_t>::max()
             ? std::numeric_limits<size_t>::max()
             : static_cast<size_t>(slots);
}

SnapshotStore SnapshotStore::Build(const TrajectoryDatabase& db,
                                   size_t num_threads) {
  SnapshotStore store;
  store.built_generation_ = db.generation();

  const Tick begin = db.BeginTick();
  const Tick end = db.EndTick();
  if (db.Empty() || end < begin) return store;  // no nonempty trajectory
  store.begin_tick_ = begin;
  store.end_tick_ = end;
  const size_t num_ticks = store.NumTicks();

  // Pass 1 — per-tick alive counts via a difference array: a trajectory
  // alive over [b, e] contributes one point to every tick of that range
  // (its samples plus the interpolated virtual points between them).
  std::vector<int64_t> diff(num_ticks + 1, 0);
  for (const Trajectory& traj : db.trajectories()) {
    if (traj.Empty()) continue;
    ++diff[static_cast<size_t>(traj.BeginTick() - begin)];
    --diff[static_cast<size_t>(traj.EndTick() - begin) + 1];
  }
  store.offsets_.assign(num_ticks + 1, 0);
  int64_t alive = 0;
  for (size_t s = 0; s < num_ticks; ++s) {
    alive += diff[s];
    store.offsets_[s + 1] = store.offsets_[s] + static_cast<size_t>(alive);
  }

  const size_t total = store.offsets_[num_ticks];
  store.xs_.resize(total);
  store.ys_.resize(total);
  store.ids_.resize(total);
  // Byte-per-point during the fill (bytes are distinct objects, so
  // concurrent blocks cannot race on a shared bitmap word); packed into
  // the bitmap afterwards.
  std::vector<uint8_t> virtual_flags(total, 0);

  // Pass 2 — fill, parallelized over disjoint tick blocks. Within a block
  // the trajectories are visited in database order and each appends its
  // block overlap tick by tick, so every tick's points come out in
  // database order — the exact sequence the legacy row-oriented gather
  // (and therefore DBSCAN downstream) sees. The interpolation below
  // mirrors InterpolateAt step for step: identical operations on
  // identical samples give bit-identical virtual points.
  const auto fill_block = [&](Tick block_begin, Tick block_end) {
    std::vector<size_t> cursor(
        static_cast<size_t>(block_end - block_begin) + 1);
    for (size_t s = 0; s < cursor.size(); ++s) {
      cursor[s] = store.offsets_[store.TickSlot(block_begin) + s];
    }
    for (const Trajectory& traj : db.trajectories()) {
      if (traj.Empty()) continue;
      const Tick from = std::max(traj.BeginTick(), block_begin);
      const Tick to = std::min(traj.EndTick(), block_end);
      if (from > to) continue;
      const std::vector<TimedPoint>& samples = traj.samples();
      size_t idx = *traj.IndexAtOrBefore(from);
      for (Tick t = from; t <= to; ++t) {
        while (idx + 1 < samples.size() && samples[idx + 1].t <= t) ++idx;
        const TimedPoint& before = samples[idx];
        const size_t slot = cursor[static_cast<size_t>(t - block_begin)]++;
        if (before.t == t) {
          store.xs_[slot] = before.pos.x;
          store.ys_[slot] = before.pos.y;
        } else {
          const TimedPoint& after = samples[idx + 1];
          const double frac = static_cast<double>(t - before.t) /
                              static_cast<double>(after.t - before.t);
          const Point p = before.pos + (after.pos - before.pos) * frac;
          store.xs_[slot] = p.x;
          store.ys_[slot] = p.y;
          virtual_flags[slot] = 1;
        }
        store.ids_[slot] = traj.id();
      }
    }
  };

  const size_t threads =
      std::min(ResolveThreadCount(num_threads), num_ticks);
  if (threads > 1) {
    const size_t block =
        std::max<size_t>(64, (num_ticks + threads * 8 - 1) / (threads * 8));
    const size_t num_blocks = (num_ticks + block - 1) / block;
    ThreadPool pool(threads);
    ParallelMap(&pool, num_blocks, [&](size_t b) {
      const Tick block_begin = begin + static_cast<Tick>(b * block);
      const Tick block_end =
          std::min(end, block_begin + static_cast<Tick>(block) - 1);
      fill_block(block_begin, block_end);
      return 0;
    });
  } else {
    fill_block(begin, end);
  }

  store.virtual_bits_.assign((total + 63) / 64, 0);
  for (size_t i = 0; i < total; ++i) {
    if (virtual_flags[i] != 0) {
      store.virtual_bits_[i / 64] |= uint64_t{1} << (i % 64);
      ++store.num_virtual_;
    }
  }
  return store;
}

SnapshotView SnapshotStore::At(Tick t) const {
  SnapshotView view;
  if (t < begin_tick_ || t > end_tick_) return view;
  const size_t s = TickSlot(t);
  const size_t lo = offsets_[s];
  view.xs = xs_.data() + lo;
  view.ys = ys_.data() + lo;
  view.ids = ids_.data() + lo;
  view.size = offsets_[s + 1] - lo;
  return view;
}

bool SnapshotStore::IsVirtual(Tick t, size_t i) const {
  const size_t slot = offsets_[TickSlot(t)] + i;
  return (virtual_bits_[slot / 64] >> (slot % 64)) & 1;
}

std::shared_ptr<const GridIndex> SnapshotStore::GridFor(
    Tick t, double eps, bool* cache_hit) const {
  const uint64_t eps_bits = std::bit_cast<uint64_t>(eps);
  const std::pair<Tick, uint64_t> key{t, eps_bits};
  std::unique_lock<std::mutex> lock(grid_cache_->mu);
  const auto it = grid_cache_->grids.find(key);
  if (it != grid_cache_->grids.end()) {
    // Relaxed (here and for misses/evictions below): independent monotone
    // tallies read only by CacheMetrics, which documents that concurrent
    // reads are approximations — no ordering with the cache state needed.
    grid_cache_->hits.fetch_add(1, std::memory_order_relaxed);
    if (cache_hit != nullptr) *cache_hit = true;
    return it->second;
  }
  grid_cache_->misses.fetch_add(1, std::memory_order_relaxed);
  if (cache_hit != nullptr) *cache_hit = false;
  // Build outside the lock so concurrent misses on *other* ticks are not
  // serialized behind this one; a racing miss on the same key recomputes
  // and the first insert wins. Eviction is safe because callers hold the
  // grid through the shared_ptr, never a raw reference into the map.
  lock.unlock();
  const SnapshotView view = At(t);
  auto built = std::make_shared<const GridIndex>(view.xs, view.ys, view.size,
                                                 eps);
  lock.lock();
  GridCache& cache = *grid_cache_;
  const auto raced = cache.grids.find(key);
  if (raced != cache.grids.end()) return raced->second;
  // Retires every grid of the oldest cached eps. Safe while references
  // are in flight: callers hold shared_ptrs, never map iterators.
  const auto evict_oldest_eps = [&cache] {
    const uint64_t evicted = cache.eps_order.front();
    cache.eps_order.erase(cache.eps_order.begin());
    for (auto entry = cache.grids.begin(); entry != cache.grids.end();) {
      if (entry->first.second == evicted) {
        cache.cached_slots -= entry->second->FootprintSlots();
        entry = cache.grids.erase(entry);
        cache.evictions.fetch_add(1, std::memory_order_relaxed);
      } else {
        entry = std::next(entry);
      }
    }
  };
  if (std::find(cache.eps_order.begin(), cache.eps_order.end(), eps_bits) ==
      cache.eps_order.end()) {
    // An eps sweep holds at most kMaxCachedEpsValues point-set copies
    // instead of one per value ever tried.
    if (cache.eps_order.size() >= kMaxCachedEpsValues) evict_oldest_eps();
    cache.eps_order.push_back(eps_bits);
  }
  // Total cached grid slots stay within the same slot budget as the store
  // itself, so the cache cannot multiply a near-budget store's footprint.
  // Charged at the grids' actual CSR footprint (coordinate copies + index
  // + cell arrays, ~3.5 slots per point) rather than a per-point proxy.
  // Grids of the current eps are never evicted — in-flight sweeps keep
  // their working set; older eps values go first.
  while (cache.cached_slots + built->FootprintSlots() >
             kSnapshotStoreSlotBudget &&
         cache.eps_order.size() > 1 && cache.eps_order.front() != eps_bits) {
    evict_oldest_eps();
  }
  cache.cached_slots += built->FootprintSlots();
  cache.grids.emplace(key, built);
  return built;
}

size_t SnapshotStore::GridCacheSize() const {
  std::lock_guard<std::mutex> lock(grid_cache_->mu);
  return grid_cache_->grids.size();
}

StoreCacheMetrics SnapshotStore::CacheMetrics() const {
  StoreCacheMetrics m;
  // Relaxed loads: lifetime tallies, exact once queries are quiescent;
  // a read racing GridFor may miss in-flight increments (documented in
  // StoreCacheMetrics), which needs no cross-counter ordering.
  m.grid_cache_hits = grid_cache_->hits.load(std::memory_order_relaxed);
  m.grid_cache_misses = grid_cache_->misses.load(std::memory_order_relaxed);
  m.grid_evictions = grid_cache_->evictions.load(std::memory_order_relaxed);
  return m;
}

void SnapshotStoreBuilder::AddRow(ObjectId id, Tick t, double x, double y) {
  rows_[id].emplace_back(x, y, t);
  ++num_rows_;
}

SnapshotStore SnapshotStoreBuilder::Finish(TrajectoryDatabase* db_out,
                                           size_t num_threads,
                                           size_t* duplicates_collapsed,
                                           size_t max_slots) {
  TrajectoryDatabase db;
  size_t dups = 0;
  for (auto& [id, samples] : rows_) {
    // Trajectory's constructor sorts by tick and collapses duplicates to
    // the last occurrence — the canonicalization the CSV loader counts.
    const size_t raw = samples.size();
    Trajectory traj(id, std::move(samples));
    dups += raw - traj.Size();
    db.Add(std::move(traj));
  }
  rows_.clear();
  num_rows_ = 0;
  if (duplicates_collapsed != nullptr) *duplicates_collapsed = dups;
  // Estimate before materializing: the rows are untrusted and a huge
  // tick span must degrade to "no store", never to an OOM.
  SnapshotStore store;
  if (SnapshotStore::EstimateColumnarSlots(db) <= max_slots) {
    store = SnapshotStore::Build(db, num_threads);
  }
  if (db_out != nullptr) *db_out = std::move(db);
  return store;
}

}  // namespace convoy
