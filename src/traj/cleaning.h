#ifndef CONVOY_TRAJ_CLEANING_H_
#define CONVOY_TRAJ_CLEANING_H_

#include <vector>

#include "traj/database.h"
#include "traj/trajectory.h"

namespace convoy {

/// Statistics of one cleaning pass, for operator visibility.
struct CleaningReport {
  size_t spikes_removed = 0;      ///< samples rejected as GPS spikes
  size_t duplicates_removed = 0;  ///< consecutive identical positions dropped
  size_t trajectories_split = 0;  ///< splits performed at long gaps
  size_t trajectories_dropped = 0;  ///< fragments below the length floor
};

/// Options for CleanDatabase.
struct CleaningOptions {
  /// Reject a sample whose implied speed from the previous kept sample
  /// exceeds this (distance units per tick). <= 0 disables spike removal.
  /// GPS receivers under multipath emit isolated positions hundreds of
  /// meters off; one spike at tick t otherwise breaks every convoy through
  /// t, so discovery pipelines filter them first.
  double max_speed = -1.0;

  /// Split a trajectory into separate objects when consecutive samples are
  /// more than this many ticks apart (<= 0 disables). Interpolating across
  /// an hours-long gap fabricates a straight-line "ghost" path that can
  /// create convoys that never happened.
  Tick max_gap_ticks = -1;

  /// Drop consecutive samples at the exact same position beyond the first
  /// (stationary beacons at 1 Hz) — lossless for discovery because linear
  /// interpolation re-creates them, and it feeds the simplifier less data.
  /// The last sample is always kept so the lifetime is preserved.
  bool drop_stationary_duplicates = false;

  /// Discard trajectories (or split fragments) with fewer samples.
  size_t min_samples = 2;
};

/// Cleans a single trajectory. Splitting can yield several output
/// trajectories; their ids are `base_id`, `base_id + id_stride`, ...
std::vector<Trajectory> CleanTrajectory(const Trajectory& traj,
                                        const CleaningOptions& options,
                                        ObjectId base_id,
                                        ObjectId id_stride = 0,
                                        CleaningReport* report = nullptr);

/// Cleans every trajectory of a database. Split fragments get fresh ids
/// above the current maximum so object identities stay unique.
TrajectoryDatabase CleanDatabase(const TrajectoryDatabase& db,
                                 const CleaningOptions& options,
                                 CleaningReport* report = nullptr);

}  // namespace convoy

#endif  // CONVOY_TRAJ_CLEANING_H_
