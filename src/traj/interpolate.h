#ifndef CONVOY_TRAJ_INTERPOLATE_H_
#define CONVOY_TRAJ_INTERPOLATE_H_

#include <optional>

#include "traj/trajectory.h"

namespace convoy {

/// Linear interpolation of an object's position at tick t, the "virtual
/// point" generation CMC performs for ticks where the object's trajectory
/// has no sample (paper Section 4).
///
/// Returns nullopt when t lies outside the trajectory's lifetime o.tau —
/// virtual points are created only *between* existing samples, never by
/// extrapolation. When t hits an exact sample the sample itself is returned.
std::optional<Point> InterpolateAt(const Trajectory& traj, Tick t);

/// Materializes a copy of `traj` with a sample at every tick of its
/// lifetime, filling gaps by linear interpolation. Used by tests and by the
/// "regular sampling" path of the dataset generators; CMC itself
/// interpolates lazily and never builds this.
Trajectory Densify(const Trajectory& traj);

}  // namespace convoy

#endif  // CONVOY_TRAJ_INTERPOLATE_H_
