#include "traj/resample.h"

#include <algorithm>

#include "traj/interpolate.h"

namespace convoy {

Trajectory Resample(const Trajectory& traj, Tick interval) {
  interval = std::max<Tick>(1, interval);
  Trajectory out(traj.id());
  if (traj.Empty()) return out;
  const Tick begin = traj.BeginTick();
  const Tick end = traj.EndTick();
  for (Tick t = begin; t < end; t += interval) {
    out.Append(TimedPoint(*InterpolateAt(traj, t), t));
  }
  out.Append(TimedPoint(*InterpolateAt(traj, end), end));
  return out;
}

TrajectoryDatabase ResampleDatabase(const TrajectoryDatabase& db,
                                    Tick interval) {
  TrajectoryDatabase out;
  for (const Trajectory& traj : db.trajectories()) {
    out.Add(Resample(traj, interval));
  }
  return out;
}

}  // namespace convoy
