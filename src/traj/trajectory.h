#ifndef CONVOY_TRAJ_TRAJECTORY_H_
#define CONVOY_TRAJ_TRAJECTORY_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "geom/point.h"

namespace convoy {

/// Identifier of a moving object. Dense small integers are expected; the
/// discovery algorithms use them to index bitsets and candidate tables.
using ObjectId = uint32_t;

/// The trajectory of one object: a polyline of timestamped samples
/// o = <p_a, ..., p_b> with strictly increasing ticks (paper Section 3).
///
/// The model deliberately admits the paper's "practical trajectory database"
/// conditions: trajectories may start and end anywhere in the time domain and
/// may skip ticks (irregular sampling). `LocationAt` answers exact samples
/// only; `InterpolateAt` (traj/interpolate.h) linearly fills missing ticks
/// the way CMC's virtual-point generation does.
class Trajectory {
 public:
  Trajectory() = default;
  explicit Trajectory(ObjectId id) : id_(id) {}

  /// Builds a trajectory from samples; the samples are sorted by tick and
  /// duplicate ticks collapse to the last occurrence.
  Trajectory(ObjectId id, std::vector<TimedPoint> samples);

  /// Sorts `samples` by tick (stably) and collapses duplicate ticks to
  /// their last occurrence — the canonicalization the constructor applies.
  /// Returns the number of samples collapsed away. (Loaders that need to
  /// report the count can also construct and compare sizes; see
  /// CsvLoadResult::duplicates_collapsed.)
  static size_t CollapseDuplicateTicks(std::vector<TimedPoint>* samples);

  /// Appends a sample. Ticks must be strictly increasing; out-of-order
  /// appends are rejected (returns false) to keep the invariant cheap.
  bool Append(const TimedPoint& p);
  bool Append(double x, double y, Tick t) {
    return Append(TimedPoint(x, y, t));
  }

  ObjectId id() const { return id_; }
  void set_id(ObjectId id) { id_ = id; }

  /// Number of stored samples |o|.
  size_t Size() const { return samples_.size(); }
  bool Empty() const { return samples_.empty(); }

  /// Start tick t_a of the time interval o.tau (undefined when empty).
  Tick BeginTick() const { return samples_.front().t; }

  /// End tick t_b of the time interval o.tau (undefined when empty).
  Tick EndTick() const { return samples_.back().t; }

  /// True if tick t falls within o.tau = [t_a, t_b].
  bool CoversTick(Tick t) const {
    return !Empty() && BeginTick() <= t && t <= EndTick();
  }

  /// Duration of o.tau in ticks, inclusive of both ends. Empty -> 0.
  Tick DurationTicks() const {
    return Empty() ? 0 : EndTick() - BeginTick() + 1;
  }

  /// The sample exactly at tick t, or nullopt if the object did not report
  /// at t (missing sample or outside lifetime). O(log |o|).
  std::optional<Point> LocationAt(Tick t) const;

  /// True if a sample exists exactly at tick t.
  bool HasSampleAt(Tick t) const { return LocationAt(t).has_value(); }

  /// Index of the last sample with tick <= t, or nullopt if t precedes the
  /// first sample. O(log |o|). Used by interpolation and simplification.
  std::optional<size_t> IndexAtOrBefore(Tick t) const;

  const std::vector<TimedPoint>& samples() const { return samples_; }
  const TimedPoint& operator[](size_t i) const { return samples_[i]; }

 private:
  ObjectId id_ = 0;
  std::vector<TimedPoint> samples_;
};

}  // namespace convoy

#endif  // CONVOY_TRAJ_TRAJECTORY_H_
