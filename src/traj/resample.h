#ifndef CONVOY_TRAJ_RESAMPLE_H_
#define CONVOY_TRAJ_RESAMPLE_H_

#include "traj/database.h"
#include "traj/trajectory.h"

namespace convoy {

/// Re-samples a trajectory onto a regular tick grid: one sample every
/// `interval` ticks starting at the trajectory's first sample (the last
/// sample is always kept so the lifetime is exact). Positions at grid
/// ticks are linearly interpolated, matching the virtual-point semantics
/// the discovery algorithms use — so downsampling with this function
/// changes results only insofar as genuine position detail is discarded.
///
/// Use cases: normalizing mixed-rate fleets before analysis, or thinning
/// 1 Hz data when the query's k is in minutes.
Trajectory Resample(const Trajectory& traj, Tick interval);

/// Resamples every trajectory of a database.
TrajectoryDatabase ResampleDatabase(const TrajectoryDatabase& db,
                                    Tick interval);

}  // namespace convoy

#endif  // CONVOY_TRAJ_RESAMPLE_H_
