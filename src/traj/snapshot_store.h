#ifndef CONVOY_TRAJ_SNAPSHOT_STORE_H_
#define CONVOY_TRAJ_SNAPSHOT_STORE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "cluster/grid_index.h"
#include "geom/point.h"
#include "traj/database.h"

namespace convoy {

/// Upper bound on the columnar slots (stored points + tick offsets, ~20
/// bytes each) the budgeted store entry points will materialize.
/// Interpolation can expand a sparse feed far beyond its sample count —
/// ticks in epoch seconds with per-day samples mean millions of virtual
/// points per object — and past this budget the store would trade an
/// O(samples) row scan for an out-of-memory build. Over-budget databases
/// run the row-oriented path instead (bit-identical results). Applied by
/// ConvoyEngine::Store and SnapshotStoreBuilder::Finish; direct
/// SnapshotStore::Build calls are unbudgeted.
inline constexpr size_t kSnapshotStoreSlotBudget = size_t{1} << 24;

/// One tick's snapshot in the store's columnar layout: parallel coordinate
/// arrays plus the aligned object ids, in database (trajectory) order — the
/// exact sequence the legacy row-oriented gather produces for that tick.
/// Borrowed from a SnapshotStore; valid while the store lives.
struct SnapshotView {
  const double* xs = nullptr;
  const double* ys = nullptr;
  const ObjectId* ids = nullptr;
  size_t size = 0;

  bool Empty() const { return size == 0; }
  Point At(size_t i) const { return Point(xs[i], ys[i]); }
};

/// Lifetime counters of a SnapshotStore's grid cache, accumulated across
/// every query the store has served (relaxed atomics — exact totals once
/// readers are quiescent, monotone approximations while queries run).
/// Surfaced by ConvoyEngine::StoreMetrics even when no trace is attached.
struct StoreCacheMetrics {
  uint64_t grid_cache_hits = 0;    ///< GridFor served from cache
  uint64_t grid_cache_misses = 0;  ///< GridFor built a fresh index
  uint64_t grid_evictions = 0;     ///< cached grids retired by the bounds
};

/// SnapshotStore — a tick-partitioned, structure-of-arrays materialization
/// of "the set of objects at time t", the unit every convoy algorithm in
/// the paper iterates.
///
/// The row-oriented TrajectoryDatabase stores one polyline per object, so
/// each discovery call re-derives every per-tick snapshot: interpolate the
/// virtual points (paper Section 4), gather alive objects, and build a
/// throw-away GridIndex — per tick, per query. The store pays that
/// derivation once, in a single (optionally parallel) build pass:
///
///  * per tick, contiguous `xs[]` / `ys[]` / `ids[]` arrays (CSR layout
///    over the whole time domain), holding every object alive at the tick
///    with its possibly-interpolated position — bit-identical to
///    InterpolateAt, since the build applies the same arithmetic to the
///    same samples;
///  * a presence bitmap marking which stored points are *virtual*
///    (interpolated) rather than recorded samples — the interpolation
///    policy, materialized;
///  * per-tick GridIndex instances built lazily at a requested eps and
///    cached (thread-safe), so repeated queries at the same eps reuse
///    indexes instead of rebuilding them every call.
///
/// Staleness: the store remembers the database's generation() at build
/// time; IsStaleFor detects mutation of the same database instance. The
/// engine keys its cached store on this (see ConvoyEngine).
///
/// Thread-safety: immutable after Build apart from the mutex-guarded grid
/// cache, so concurrent readers (ParallelCmc workers, concurrent engine
/// queries) need no external synchronization.
class SnapshotStore {
 public:
  /// Empty store (no ticks); assign from Build to populate.
  SnapshotStore();
  SnapshotStore(SnapshotStore&&) noexcept = default;
  SnapshotStore& operator=(SnapshotStore&&) noexcept = default;

  /// Builds the store from `db` in one pass over the trajectories,
  /// parallelized over tick blocks (0 = all hardware threads; any value
  /// yields bit-identical contents).
  static SnapshotStore Build(const TrajectoryDatabase& db,
                             size_t num_threads = 1);

  /// Columnar slots Build would allocate for `db`: one per tick of the
  /// domain (CSR offset) plus one per alive object per tick (stored
  /// point, virtual points included). O(N); lets callers bound the
  /// materialization cost *before* paying it — a sparse feed whose ticks
  /// are epoch seconds can expand samples by orders of magnitude (see
  /// ConvoyEngine::Store's budget).
  static size_t EstimateColumnarSlots(const TrajectoryDatabase& db);

  /// Time domain covered, matching TrajectoryDatabase::BeginTick/EndTick
  /// of the source database ([0, -1] when empty).
  Tick begin_tick() const { return begin_tick_; }
  Tick end_tick() const { return end_tick_; }

  /// Number of ticks in the domain (0 when empty).
  size_t NumTicks() const {
    return begin_tick_ <= end_tick_
               ? static_cast<size_t>(end_tick_ - begin_tick_) + 1
               : 0;
  }
  bool Empty() const { return NumTicks() == 0; }

  /// Total stored points across all ticks — alive objects summed over the
  /// domain, virtual points included (>= the database's total_points).
  size_t TotalPoints() const { return ids_.size(); }

  /// The snapshot at tick t; an empty view outside the domain.
  SnapshotView At(Tick t) const;

  /// True if point i of tick t is a virtual (interpolated) point rather
  /// than a recorded sample. Precondition: i < At(t).size.
  bool IsVirtual(Tick t, size_t i) const;

  /// Number of virtual points across the whole store.
  size_t NumVirtualPoints() const { return num_virtual_; }

  /// The grid cache keeps indexes for at most this many distinct eps
  /// values at a time (each cached GridIndex copies its tick's points, so
  /// an unbounded eps sweep would otherwise grow memory linearly in the
  /// number of eps values tried). Exceeding it — or exceeding
  /// kSnapshotStoreSlotBudget total cached grid slots, charged at each
  /// grid's actual CSR footprint (GridIndex::FootprintSlots — coordinate
  /// copies, index array, cell keys/offsets), so the cache can never
  /// dwarf the store it serves — evicts every grid of the oldest cached
  /// eps; in-flight users keep theirs alive through the returned
  /// shared_ptr, and the current eps is never evicted.
  static constexpr size_t kMaxCachedEpsValues = 4;

  /// The grid index over tick t's points with cell side `eps`, built on
  /// first request and cached per (tick, eps) — identical to
  /// `GridIndex(points, eps)` over the tick's snapshot, so DBSCAN results
  /// are unchanged. Thread-safe; two threads missing the same key may
  /// both build, the first insert wins. Never null. `cache_hit` (optional
  /// out) reports whether the grid came from the cache — per-execution
  /// hit/miss counts are deterministic on a fresh store, where each
  /// (tick, eps) key is first touched exactly once per run.
  std::shared_ptr<const GridIndex> GridFor(Tick t, double eps,
                                           bool* cache_hit = nullptr) const;

  /// Number of cached grid indexes (for tests / monitoring).
  size_t GridCacheSize() const;

  /// Lifetime grid-cache counters (see StoreCacheMetrics). Always
  /// maintained — three relaxed atomic adds per GridFor, no trace needed.
  StoreCacheMetrics CacheMetrics() const;

  /// The database generation this store was built from.
  uint64_t built_generation() const { return built_generation_; }

  /// True when `db` has been mutated since this store was built from it.
  /// Only meaningful for the same database instance (or copies sharing its
  /// mutation history) the store was built from.
  bool IsStaleFor(const TrajectoryDatabase& db) const {
    return built_generation_ != db.generation();
  }

 private:
  size_t TickSlot(Tick t) const { return static_cast<size_t>(t - begin_tick_); }

  Tick begin_tick_ = 0;
  Tick end_tick_ = -1;
  /// CSR offsets: tick slot s covers [offsets_[s], offsets_[s + 1]).
  std::vector<size_t> offsets_;
  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<ObjectId> ids_;
  /// 1 bit per stored point (CSR-aligned): set = virtual point.
  std::vector<uint64_t> virtual_bits_;
  size_t num_virtual_ = 0;
  uint64_t built_generation_ = 0;

  /// Lazily built per-(tick, eps) grid indexes, bounded to the
  /// kMaxCachedEpsValues most recently introduced eps values (FIFO over
  /// eps bit patterns). Behind a unique_ptr so the store stays movable
  /// despite the mutex.
  struct GridCache {
    mutable std::mutex mu;
    std::map<std::pair<Tick, uint64_t>, std::shared_ptr<const GridIndex>>
        grids;                        // GUARDED_BY(mu)
    /// Distinct eps, oldest first.
    std::vector<uint64_t> eps_order;  // GUARDED_BY(mu)
    /// Sum of FootprintSlots over cached grids.
    size_t cached_slots = 0;          // GUARDED_BY(mu)
    /// Lifetime counters (StoreCacheMetrics). Atomic because hits are
    /// counted after the lock drops; riding in the unique_ptr'd cache
    /// keeps the store movable.
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> evictions{0};
  };
  std::unique_ptr<GridCache> grid_cache_;
};

/// Accumulates (id, tick, x, y) rows — in any order — and finishes into a
/// canonical TrajectoryDatabase plus the SnapshotStore built over it, so
/// loaders (io/csv) can stream rows straight into the storage layer
/// without materializing the database twice.
class SnapshotStoreBuilder {
 public:
  /// Adds one sample row. Rows for one object may arrive in any order;
  /// duplicate (id, tick) rows collapse to the last occurrence at Finish.
  void AddRow(ObjectId id, Tick t, double x, double y);

  /// Number of rows accumulated so far.
  size_t NumRows() const { return num_rows_; }

  /// Canonicalizes the accumulated rows into `db_out` (ids ascending,
  /// samples tick-sorted, duplicates collapsed — exactly what the CSV
  /// loader historically produced) and builds the store over it.
  /// `duplicates_collapsed` (optional out) reports the number of dropped
  /// duplicate rows. The builder is left empty.
  ///
  /// Rows are untrusted input (a two-line CSV with epoch-second ticks
  /// implies a multi-gigabyte materialization), so the build is budgeted:
  /// when the database would exceed `max_slots` columnar slots the store
  /// comes back *empty* — detectable via store.IsStaleFor(db), which is
  /// true exactly when the store was declined — while the database is
  /// produced normally.
  SnapshotStore Finish(TrajectoryDatabase* db_out, size_t num_threads = 1,
                       size_t* duplicates_collapsed = nullptr,
                       size_t max_slots = kSnapshotStoreSlotBudget);

 private:
  std::map<ObjectId, std::vector<TimedPoint>> rows_;
  size_t num_rows_ = 0;
};

}  // namespace convoy

#endif  // CONVOY_TRAJ_SNAPSHOT_STORE_H_
