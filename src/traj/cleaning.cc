#include "traj/cleaning.h"

#include <algorithm>

namespace convoy {

std::vector<Trajectory> CleanTrajectory(const Trajectory& traj,
                                        const CleaningOptions& options,
                                        ObjectId base_id, ObjectId id_stride,
                                        CleaningReport* report) {
  CleaningReport local;
  CleaningReport* rep = report != nullptr ? report : &local;

  // Pass 1: spike and duplicate removal into a flat sample list.
  std::vector<TimedPoint> kept;
  kept.reserve(traj.Size());
  for (const TimedPoint& sample : traj.samples()) {
    if (!kept.empty() && options.max_speed > 0.0) {
      const TimedPoint& prev = kept.back();
      const double dt = static_cast<double>(sample.t - prev.t);
      if (D(sample.pos, prev.pos) > options.max_speed * dt) {
        ++rep->spikes_removed;
        continue;
      }
    }
    kept.push_back(sample);
  }
  if (options.drop_stationary_duplicates && kept.size() > 2) {
    std::vector<TimedPoint> dedup;
    dedup.reserve(kept.size());
    for (size_t i = 0; i < kept.size(); ++i) {
      const bool last = i + 1 == kept.size();
      if (!last && !dedup.empty() && kept[i].pos == dedup.back().pos) {
        ++rep->duplicates_removed;
        continue;
      }
      dedup.push_back(kept[i]);
    }
    kept = std::move(dedup);
  }

  // Pass 2: split at long gaps.
  std::vector<Trajectory> out;
  ObjectId next_id = base_id;
  Trajectory current(next_id);
  const auto flush = [&]() {
    if (current.Size() >= std::max<size_t>(options.min_samples, 1)) {
      out.push_back(std::move(current));
      next_id += id_stride;
    } else if (!current.Empty()) {
      ++rep->trajectories_dropped;
    }
    current = Trajectory(next_id);
  };
  for (const TimedPoint& sample : kept) {
    if (!current.Empty() && options.max_gap_ticks > 0 &&
        sample.t - current.EndTick() > options.max_gap_ticks) {
      ++rep->trajectories_split;
      flush();
    }
    current.Append(sample);
  }
  flush();
  return out;
}

TrajectoryDatabase CleanDatabase(const TrajectoryDatabase& db,
                                 const CleaningOptions& options,
                                 CleaningReport* report) {
  // Fragments receive ids above every existing id so that identities of
  // unsplit objects are stable.
  ObjectId max_id = 0;
  for (const Trajectory& traj : db.trajectories()) {
    max_id = std::max(max_id, traj.id());
  }
  ObjectId next_fragment_id = max_id + 1;

  TrajectoryDatabase out;
  for (const Trajectory& traj : db.trajectories()) {
    std::vector<Trajectory> cleaned =
        CleanTrajectory(traj, options, traj.id(), /*id_stride=*/0, report);
    for (size_t i = 0; i < cleaned.size(); ++i) {
      if (i > 0) cleaned[i].set_id(next_fragment_id++);
      out.Add(std::move(cleaned[i]));
    }
  }
  return out;
}

}  // namespace convoy
