#include "traj/database.h"

#include <algorithm>
#include <limits>

namespace convoy {

TrajectoryDatabase::TrajectoryDatabase(std::vector<Trajectory> trajectories)
    : trajectories_(std::move(trajectories)) {
  id_index_.reserve(trajectories_.size());
  for (size_t i = 0; i < trajectories_.size(); ++i) {
    id_index_.try_emplace(trajectories_[i].id(), i);
  }
  generation_ = trajectories_.size();
}

void TrajectoryDatabase::Add(Trajectory traj) {
  id_index_.try_emplace(traj.id(), trajectories_.size());
  trajectories_.push_back(std::move(traj));
  ++generation_;
}

std::optional<size_t> TrajectoryDatabase::IndexOf(ObjectId id) const {
  const auto it = id_index_.find(id);
  if (it == id_index_.end()) return std::nullopt;
  return it->second;
}

const Trajectory* TrajectoryDatabase::Find(ObjectId id) const {
  const auto idx = IndexOf(id);
  return idx.has_value() ? &trajectories_[*idx] : nullptr;
}

Tick TrajectoryDatabase::BeginTick() const {
  Tick lo = std::numeric_limits<Tick>::max();
  for (const Trajectory& traj : trajectories_) {
    if (!traj.Empty()) lo = std::min(lo, traj.BeginTick());
  }
  return lo == std::numeric_limits<Tick>::max() ? 0 : lo;
}

Tick TrajectoryDatabase::EndTick() const {
  Tick hi = std::numeric_limits<Tick>::min();
  for (const Trajectory& traj : trajectories_) {
    if (!traj.Empty()) hi = std::max(hi, traj.EndTick());
  }
  return hi == std::numeric_limits<Tick>::min() ? -1 : hi;
}

DatabaseStats TrajectoryDatabase::Stats() const {
  DatabaseStats stats;
  stats.num_objects = trajectories_.size();
  stats.time_domain_begin = BeginTick();
  stats.time_domain_end = EndTick();
  stats.time_domain_length =
      Empty() ? 0 : stats.time_domain_end - stats.time_domain_begin + 1;

  size_t nonempty = 0;
  double missing_sum = 0.0;
  for (const Trajectory& traj : trajectories_) {
    stats.total_points += traj.Size();
    if (traj.Empty()) continue;
    ++nonempty;
    const double lifetime = static_cast<double>(traj.DurationTicks());
    missing_sum += 1.0 - static_cast<double>(traj.Size()) / lifetime;
  }
  if (nonempty > 0) {
    stats.avg_trajectory_length =
        static_cast<double>(stats.total_points) / static_cast<double>(nonempty);
    stats.avg_missing_ratio = missing_sum / static_cast<double>(nonempty);
  }
  return stats;
}

TrajectoryDatabase TrajectoryDatabase::Project(
    const std::vector<ObjectId>& ids) const {
  // Resolve through the id map instead of scanning all N trajectories:
  // the CuTS refinement projects once per candidate, and candidates carry
  // a handful of ids against databases of thousands of objects. Sorting
  // the resolved indices preserves the historical database-order output.
  std::vector<size_t> indices;
  indices.reserve(ids.size());
  for (const ObjectId id : ids) {
    const auto idx = IndexOf(id);
    if (idx.has_value()) indices.push_back(*idx);
  }
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  TrajectoryDatabase out;
  for (const size_t idx : indices) out.Add(trajectories_[idx]);
  return out;
}

}  // namespace convoy
