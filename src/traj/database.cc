#include "traj/database.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

namespace convoy {

TrajectoryDatabase::TrajectoryDatabase(std::vector<Trajectory> trajectories)
    : trajectories_(std::move(trajectories)) {}

Tick TrajectoryDatabase::BeginTick() const {
  Tick lo = std::numeric_limits<Tick>::max();
  for (const Trajectory& traj : trajectories_) {
    if (!traj.Empty()) lo = std::min(lo, traj.BeginTick());
  }
  return lo == std::numeric_limits<Tick>::max() ? 0 : lo;
}

Tick TrajectoryDatabase::EndTick() const {
  Tick hi = std::numeric_limits<Tick>::min();
  for (const Trajectory& traj : trajectories_) {
    if (!traj.Empty()) hi = std::max(hi, traj.EndTick());
  }
  return hi == std::numeric_limits<Tick>::min() ? -1 : hi;
}

DatabaseStats TrajectoryDatabase::Stats() const {
  DatabaseStats stats;
  stats.num_objects = trajectories_.size();
  stats.time_domain_begin = BeginTick();
  stats.time_domain_end = EndTick();
  stats.time_domain_length =
      Empty() ? 0 : stats.time_domain_end - stats.time_domain_begin + 1;

  size_t nonempty = 0;
  double missing_sum = 0.0;
  for (const Trajectory& traj : trajectories_) {
    stats.total_points += traj.Size();
    if (traj.Empty()) continue;
    ++nonempty;
    const double lifetime = static_cast<double>(traj.DurationTicks());
    missing_sum += 1.0 - static_cast<double>(traj.Size()) / lifetime;
  }
  if (nonempty > 0) {
    stats.avg_trajectory_length =
        static_cast<double>(stats.total_points) / static_cast<double>(nonempty);
    stats.avg_missing_ratio = missing_sum / static_cast<double>(nonempty);
  }
  return stats;
}

TrajectoryDatabase TrajectoryDatabase::Project(
    const std::vector<ObjectId>& ids) const {
  std::unordered_set<ObjectId> keep(ids.begin(), ids.end());
  TrajectoryDatabase out;
  for (const Trajectory& traj : trajectories_) {
    if (keep.count(traj.id()) > 0) out.Add(traj);
  }
  return out;
}

}  // namespace convoy
