#include "wal/fault.h"

#include <unistd.h>

#include <cerrno>
#include <sys/socket.h>

namespace convoy::wal {

namespace {

/// The process-wide injector. Relaxed is sufficient: installation happens
/// before traffic in every harness, and the hooks only dereference what
/// they loaded (no cross-field ordering depends on the pointer).
std::atomic<FaultInjector*> g_injector{nullptr};

/// splitmix64: tiny, seedable, and statistically fine for fault draws.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

FaultInjector::FaultInjector(const Options& options)
    : options_(options), rng_state_(options.seed) {}

double FaultInjector::NextUniform() {
  // fetch_add gives every caller a distinct stream position; SplitMix64
  // of the position is the draw. Thread-safe without a lock.
  const uint64_t pos = rng_state_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t bits = SplitMix64(pos);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

ssize_t FaultInjector::Send(int fd, const void* buf, size_t len, int flags) {
  const uint64_t call = write_calls_.fetch_add(1) + 1;
  if (options_.fail_writes_after != 0 && call >= options_.fail_writes_after) {
    writes_killed_.fetch_add(1);
    errno = ECONNRESET;
    return -1;
  }
  if (options_.eintr_prob > 0.0 && NextUniform() < options_.eintr_prob) {
    eintrs_.fetch_add(1);
    errno = EINTR;
    return -1;
  }
  size_t send_len = len;
  if (len > 1 && options_.short_write_prob > 0.0 &&
      NextUniform() < options_.short_write_prob) {
    short_writes_.fetch_add(1);
    // At least one byte goes out — a zero-byte send is not a short write,
    // and frame boundaries must still make progress.
    send_len = 1 + static_cast<size_t>(NextUniform() *
                                       static_cast<double>(len - 1));
  }
  return ::send(fd, buf, send_len, flags);
}

ssize_t FaultInjector::Read(int fd, void* buf, size_t len) {
  if (options_.eintr_prob > 0.0 && NextUniform() < options_.eintr_prob) {
    eintrs_.fetch_add(1);
    errno = EINTR;
    return -1;
  }
  return ::read(fd, buf, len);
}

ssize_t FaultInjector::Write(int fd, const void* buf, size_t len) {
  const uint64_t call = write_calls_.fetch_add(1) + 1;
  if (options_.fail_writes_after != 0 && call >= options_.fail_writes_after) {
    writes_killed_.fetch_add(1);
    errno = EIO;
    return -1;
  }
  if (options_.eintr_prob > 0.0 && NextUniform() < options_.eintr_prob) {
    eintrs_.fetch_add(1);
    errno = EINTR;
    return -1;
  }
  size_t write_len = len;
  if (len > 1 && options_.short_write_prob > 0.0 &&
      NextUniform() < options_.short_write_prob) {
    short_writes_.fetch_add(1);
    write_len = 1 + static_cast<size_t>(NextUniform() *
                                        static_cast<double>(len - 1));
  }
  return ::write(fd, buf, write_len);
}

int FaultInjector::Fsync(int fd) {
  if (options_.fsync_delay_us > 0) {
    ::usleep(options_.fsync_delay_us);
  }
  if (options_.fsync_fail_prob > 0.0 &&
      NextUniform() < options_.fsync_fail_prob) {
    fsync_failures_.fetch_add(1);
    errno = EIO;
    return -1;
  }
  return ::fsync(fd);
}

void SetFaultInjector(FaultInjector* injector) {
  g_injector.store(injector, std::memory_order_relaxed);
}

FaultInjector* GetFaultInjector() {
  return g_injector.load(std::memory_order_relaxed);
}

ssize_t FaultSend(int fd, const void* buf, size_t len, int flags) {
  FaultInjector* fi = GetFaultInjector();
  return fi != nullptr ? fi->Send(fd, buf, len, flags)
                       : ::send(fd, buf, len, flags);
}

ssize_t FaultRead(int fd, void* buf, size_t len) {
  FaultInjector* fi = GetFaultInjector();
  return fi != nullptr ? fi->Read(fd, buf, len) : ::read(fd, buf, len);
}

ssize_t FaultWrite(int fd, const void* buf, size_t len) {
  FaultInjector* fi = GetFaultInjector();
  return fi != nullptr ? fi->Write(fd, buf, len) : ::write(fd, buf, len);
}

int FaultFsync(int fd) {
  FaultInjector* fi = GetFaultInjector();
  return fi != nullptr ? fi->Fsync(fd) : ::fsync(fd);
}

}  // namespace convoy::wal
