#include "wal/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "obs/trace.h"
#include "wal/fault.h"

namespace convoy::wal {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

// --------------------------------------------------------------- LE coding
// Same explicit byte-shift coding as the wire protocol: host-endianness
// independent, unsigned arithmetic throughout.

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF64(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

/// Bounds-checked reader (the WAL is parsed from disk bytes that a torn
/// write or bit rot may have mangled — same discipline as the wire).
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v) {
    if (!Need(1)) return false;
    *v = static_cast<uint8_t>(data_[pos_]);
    ++pos_;
    return true;
  }

  bool GetU32(uint32_t* v) {
    if (!Need(4)) return false;
    uint32_t out = 0;
    for (size_t i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 4;
    *v = out;
    return true;
  }

  bool GetU64(uint64_t* v) {
    if (!Need(8)) return false;
    uint64_t out = 0;
    for (size_t i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return true;
  }

  bool GetI64(int64_t* v) {
    uint64_t raw = 0;
    if (!GetU64(&raw)) return false;
    *v = static_cast<int64_t>(raw);
    return true;
  }

  bool GetF64(double* v) {
    uint64_t bits = 0;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool AtEnd() const { return pos_ == data_.size() && !failed_; }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool Need(size_t n) {
    if (failed_ || data_.size() - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

// ------------------------------------------------------------------ CRC32

/// The CRC32 lookup table (IEEE 802.3 / zlib polynomial), built once.
struct Crc32Table {
  std::array<uint32_t, 256> entries{};
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) != 0 ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
      }
      entries[i] = c;
    }
  }
};

const Crc32Table& GetCrc32Table() {
  static const Crc32Table table;
  return table;
}

// --------------------------------------------------------------- file I/O

/// Reads exactly `len` bytes at the current offset. Returns the byte count
/// actually read (< len only at EOF); -1 with errno on a hard error.
ssize_t ReadUpTo(int fd, char* buf, size_t len) {
  size_t got = 0;
  while (got < len) {
    const ssize_t n = FaultRead(fd, buf + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) break;  // EOF
    got += static_cast<size_t>(n);
  }
  return static_cast<ssize_t>(got);
}

uint32_t DecodeU32(const char* p) {
  uint32_t out = 0;
  for (size_t i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return out;
}

/// fsync(2) on the directory fd: file creations/unlinks inside `dir` are
/// only durable once the directory itself is synced — without this, a
/// freshly rotated segment full of fsynced records can vanish on power
/// loss because its directory entry was never written back.
Status FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("open dir " + dir);
  const int rc = FaultFsync(fd);
  const Status status =
      rc != 0 ? ErrnoStatus("fsync dir " + dir) : Status::Ok();
  ::close(fd);
  return status;
}

/// The directory holding `path` ("." when the path has no slash) — the
/// one whose fsync makes `path`'s own directory entry durable.
std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

struct SegmentEntry {
  uint64_t index = 0;
  std::string path;
};

/// Segment files under `dir`, sorted by index. A missing directory is an
/// empty list (fresh WAL), any other readdir failure is an error.
StatusOr<std::vector<SegmentEntry>> ListSegments(const std::string& dir) {
  std::vector<SegmentEntry> segments;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return segments;
    return ErrnoStatus("opendir " + dir);
  }
  for (;;) {
    errno = 0;
    const dirent* entry = ::readdir(d);
    if (entry == nullptr) break;
    const std::string name = entry->d_name;
    // wal-NNNNNN.log
    if (name.size() < 9 || name.compare(0, 4, "wal-") != 0 ||
        name.compare(name.size() - 4, 4, ".log") != 0) {
      continue;
    }
    const std::string digits = name.substr(4, name.size() - 8);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    SegmentEntry seg;
    seg.index = std::strtoull(digits.c_str(), nullptr, 10);
    seg.path = dir + "/" + name;
    segments.push_back(std::move(seg));
  }
  ::closedir(d);
  std::sort(segments.begin(), segments.end(),
            [](const SegmentEntry& a, const SegmentEntry& b) {
              return a.index < b.index;
            });
  return segments;
}

/// Scans one segment, delivering each valid record payload to `fn`
/// (nullable). On return, `*valid_bytes` is the deterministic truncation
/// point: everything before it parsed and passed its CRC; everything from
/// it on is torn/corrupt (or the file simply ends there, `*clean`=true).
/// Only hard I/O errors (or `fn` failing) return non-OK.
Status ScanSegment(const std::string& path,
                   const std::function<Status(std::string_view)>* fn,
                   uint64_t* valid_bytes, bool* clean, std::string* detail) {
  *valid_bytes = 0;
  *clean = false;
  detail->clear();
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("open " + path);

  char header[kWalHeaderBytes];
  const ssize_t got = ReadUpTo(fd, header, sizeof(header));
  if (got < 0) {
    const Status status = ErrnoStatus("read " + path);
    ::close(fd);
    return status;
  }
  if (static_cast<size_t>(got) < kWalHeaderBytes ||
      DecodeU32(header) != kWalMagic ||
      DecodeU32(header + 4) != kWalFormatVersion) {
    // A crash can tear even the 8-byte header of a freshly rotated
    // segment; everything in this file is unrecoverable but the WAL as a
    // whole stays readable — truncation point 0.
    *detail = "bad or torn segment header";
    ::close(fd);
    return Status::Ok();
  }
  uint64_t offset = kWalHeaderBytes;
  std::string payload;
  for (;;) {
    char rec_header[8];
    const ssize_t n = ReadUpTo(fd, rec_header, sizeof(rec_header));
    if (n < 0) {
      const Status status = ErrnoStatus("read " + path);
      ::close(fd);
      return status;
    }
    if (n == 0) {
      *clean = true;  // ended exactly on a record boundary
      break;
    }
    if (static_cast<size_t>(n) < sizeof(rec_header)) {
      *detail = "torn record header at offset " + std::to_string(offset);
      break;
    }
    const uint32_t len = DecodeU32(rec_header);
    const uint32_t crc = DecodeU32(rec_header + 4);
    if (len == 0 || len > kMaxWalRecordPayload) {
      *detail = "implausible record length " + std::to_string(len) +
                " at offset " + std::to_string(offset);
      break;
    }
    payload.resize(len);
    const ssize_t body = ReadUpTo(fd, payload.data(), len);
    if (body < 0) {
      const Status status = ErrnoStatus("read " + path);
      ::close(fd);
      return status;
    }
    if (static_cast<size_t>(body) < len) {
      *detail = "torn record body at offset " + std::to_string(offset);
      break;
    }
    if (Crc32(payload) != crc) {
      *detail = "CRC mismatch at offset " + std::to_string(offset);
      break;
    }
    if (fn != nullptr) {
      const Status delivered = (*fn)(payload);
      if (!delivered.ok()) {
        ::close(fd);
        return delivered;
      }
    }
    offset += sizeof(rec_header) + len;
    *valid_bytes = offset;
  }
  if (*valid_bytes == 0) *valid_bytes = kWalHeaderBytes;
  ::close(fd);
  return Status::Ok();
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  const Crc32Table& table = GetCrc32Table();
  uint32_t crc = 0xffffffffu;
  for (const char ch : data) {
    crc = table.entries[(crc ^ static_cast<uint8_t>(ch)) & 0xffu] ^
          (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::string_view ToString(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNone:
      return "none";
    case FsyncPolicy::kInterval:
      return "interval";
    case FsyncPolicy::kEveryTick:
      return "every_tick";
  }
  return "none";
}

StatusOr<FsyncPolicy> ParseFsyncPolicy(std::string_view name) {
  if (name == "none") return FsyncPolicy::kNone;
  if (name == "interval") return FsyncPolicy::kInterval;
  if (name == "every_tick") return FsyncPolicy::kEveryTick;
  return Status::InvalidArgument("unknown fsync policy '" + std::string(name) +
                                 "' (expected none|interval|every_tick)");
}

std::string EncodeWalRecord(const WalRecord& record) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(record.kind));
  PutU64(&out, record.stream_id);
  PutU64(&out, record.seq);
  PutI64(&out, record.tick);
  switch (record.kind) {
    case WalRecordKind::kBegin:
      PutU32(&out, record.m);
      PutI64(&out, record.k);
      PutF64(&out, record.e);
      PutI64(&out, record.carry_forward_ticks);
      break;
    case WalRecordKind::kBatch:
      PutU32(&out, static_cast<uint32_t>(record.rows.size()));
      for (const WalRow& row : record.rows) {
        PutU32(&out, row.id);
        PutF64(&out, row.x);
        PutF64(&out, row.y);
      }
      break;
    case WalRecordKind::kEndTick:
    case WalRecordKind::kFinish:
      break;
  }
  return out;
}

StatusOr<WalRecord> DecodeWalRecord(std::string_view payload) {
  ByteReader reader(payload);
  WalRecord record;
  uint8_t kind = 0;
  if (!reader.GetU8(&kind) || !reader.GetU64(&record.stream_id) ||
      !reader.GetU64(&record.seq) || !reader.GetI64(&record.tick)) {
    return Status::DataError("WAL record: truncated common header");
  }
  switch (static_cast<WalRecordKind>(kind)) {
    case WalRecordKind::kBegin: {
      record.kind = WalRecordKind::kBegin;
      if (!reader.GetU32(&record.m) || !reader.GetI64(&record.k) ||
          !reader.GetF64(&record.e) ||
          !reader.GetI64(&record.carry_forward_ticks)) {
        return Status::DataError("WAL begin record: truncated parameters");
      }
      break;
    }
    case WalRecordKind::kBatch: {
      record.kind = WalRecordKind::kBatch;
      uint32_t n = 0;
      if (!reader.GetU32(&n)) {
        return Status::DataError("WAL batch record: truncated row count");
      }
      // 20 bytes per row: bound the reserve by the bytes actually present
      // so a corrupt count cannot force a huge allocation.
      if (reader.remaining() / 20 >= n) record.rows.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        WalRow row;
        if (!reader.GetU32(&row.id) || !reader.GetF64(&row.x) ||
            !reader.GetF64(&row.y)) {
          return Status::DataError("WAL batch record: truncated rows");
        }
        record.rows.push_back(row);
      }
      break;
    }
    case WalRecordKind::kEndTick:
      record.kind = WalRecordKind::kEndTick;
      break;
    case WalRecordKind::kFinish:
      record.kind = WalRecordKind::kFinish;
      break;
    default:
      return Status::DataError("WAL record: unknown kind " +
                               std::to_string(int{kind}));
  }
  if (!reader.AtEnd()) {
    return Status::DataError("WAL record: " +
                             std::to_string(reader.remaining()) +
                             " trailing byte(s)");
  }
  return record;
}

Status ReadWalDir(const std::string& dir,
                  const std::function<Status(const WalRecord&)>& fn,
                  WalReadStats* stats) {
  *stats = WalReadStats{};
  StatusOr<std::vector<SegmentEntry>> segments = ListSegments(dir);
  if (!segments.ok()) return segments.status();

  const std::function<Status(std::string_view)> deliver =
      [&fn, stats](std::string_view payload) -> Status {
    StatusOr<WalRecord> record = DecodeWalRecord(payload);
    if (!record.ok()) {
      // The framing CRC passed but the payload grammar did not — corrupt
      // bytes written as a valid record cannot happen in our own writer,
      // but the reader must not crash on them either. Treated as a tear
      // by the caller via this sentinel.
      return record.status();
    }
    ++stats->records;
    return fn(*record);
  };

  for (const SegmentEntry& segment : *segments) {
    ++stats->segments;
    uint64_t valid_bytes = 0;
    bool clean = false;
    std::string detail;
    const Status scanned =
        ScanSegment(segment.path, &deliver, &valid_bytes, &clean, &detail);
    if (!scanned.ok()) {
      if (scanned.code() == StatusCode::kDataError) {
        // A framing-valid record with an undecodable payload: stop here,
        // deterministically, like any other tear.
        stats->torn = true;
        stats->torn_segment = segment.path;
        stats->torn_offset = valid_bytes;
        stats->detail = scanned.message();
        stats->bytes += valid_bytes;
        return Status::Ok();
      }
      return scanned;
    }
    stats->bytes += valid_bytes;
    if (!clean) {
      stats->torn = true;  // includes the valid prefix counted above
      stats->torn_segment = segment.path;
      stats->torn_offset = valid_bytes;
      stats->detail = detail;
      // Everything after a tear — including whole later segments — is
      // unrecoverable by definition: records are only meaningful in order.
      return Status::Ok();
    }
  }
  return Status::Ok();
}

// ------------------------------------------------------------- WalWriter

std::string WalSegmentPath(const std::string& dir, uint64_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%06llu.log",
                static_cast<unsigned long long>(index));
  return dir + "/" + name;
}

WalWriter::WalWriter(const WalOptions& options, TraceSession* trace)
    : options_(options),
      trace_(trace),
      last_fsync_(std::chrono::steady_clock::now()) {}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(const WalOptions& options,
                                                     TraceSession* trace) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("WAL dir must not be empty");
  }
  if (::mkdir(options.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return ErrnoStatus("mkdir " + options.dir);
  }
  if (options.fsync != FsyncPolicy::kNone) {
    // The WAL dir's own directory entry must survive power loss before
    // any record in it can claim durability.
    TraceCount(trace, TraceCounter::kWalFsyncs, 1);
    CONVOY_RETURN_IF_ERROR(FsyncDir(ParentDir(options.dir)));
  }
  // make_unique cannot reach the private ctor; ownership is taken on the
  // same line.  convoy-lint: allow-line(naked-new)
  std::unique_ptr<WalWriter> writer(new WalWriter(options, trace));

  StatusOr<std::vector<SegmentEntry>> segments = ListSegments(options.dir);
  if (!segments.ok()) return segments.status();

  std::lock_guard<std::mutex> lock(writer->mu_);
  if (segments->empty()) {
    CONVOY_RETURN_IF_ERROR(
        writer->OpenSegmentLocked(0, /*truncate_to_header=*/true));
    return writer;
  }

  // Find the first torn segment (if any): it becomes the append target,
  // truncated to its valid prefix, and every later segment is unlinked —
  // those bytes sit after the tear in log order and can never replay.
  size_t append_at = segments->size() - 1;
  uint64_t append_valid = 0;
  bool tear_found = false;
  for (size_t i = 0; i < segments->size(); ++i) {
    uint64_t valid_bytes = 0;
    bool clean = false;
    std::string detail;
    CONVOY_RETURN_IF_ERROR(ScanSegment((*segments)[i].path, nullptr,
                                       &valid_bytes, &clean, &detail));
    if (!clean) {
      tear_found = true;
      append_at = i;
      append_valid = valid_bytes;
      TraceCount(trace, TraceCounter::kWalTruncatedTails, 1);
      break;
    }
    if (i == segments->size() - 1) append_valid = valid_bytes;
  }
  if (tear_found) {
    for (size_t i = append_at + 1; i < segments->size(); ++i) {
      ::unlink((*segments)[i].path.c_str());
    }
    if (append_at + 1 < segments->size() &&
        options.fsync != FsyncPolicy::kNone) {
      // Make the unlinks durable: if power loss resurrected a post-tear
      // segment after new records were appended over the tear, the next
      // recovery would replay its stale garbage as a valid continuation.
      TraceCount(trace, TraceCounter::kWalFsyncs, 1);
      CONVOY_RETURN_IF_ERROR(FsyncDir(options.dir));
    }
  }
  const SegmentEntry& target = (*segments)[append_at];
  const int fd =
      ::open(target.path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoStatus("open " + target.path);
  if (::ftruncate(fd, static_cast<off_t>(append_valid)) != 0 ||
      ::lseek(fd, 0, SEEK_END) < 0) {
    const Status status = ErrnoStatus("truncate " + target.path);
    ::close(fd);
    return status;
  }
  writer->fd_ = fd;
  writer->segment_index_ = target.index;
  writer->segment_size_ = append_valid;
  if (append_valid < kWalHeaderBytes) {
    // The tear ate the header itself; rewrite it so the segment re-opens.
    std::string header;
    PutU32(&header, kWalMagic);
    PutU32(&header, kWalFormatVersion);
    CONVOY_RETURN_IF_ERROR(writer->WriteAllLocked(header));
    writer->segment_size_ = kWalHeaderBytes;
  }
  return writer;
}

WalWriter::~WalWriter() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status WalWriter::OpenSegmentLocked(uint64_t index, bool truncate_to_header) {
  if (fd_ >= 0) {
    ::close(fd_);
    // convoy-lint: allow-line(guarded-member) — mu_ held by every caller.
    fd_ = -1;
  }
  const std::string path = WalSegmentPath(options_.dir, index);
  int flags = O_WRONLY | O_CREAT | O_CLOEXEC;
  if (truncate_to_header) flags |= O_TRUNC;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return ErrnoStatus("open " + path);
  // convoy-lint: allow-line(guarded-member) — mu_ held by every caller.
  fd_ = fd;
  // convoy-lint: allow-line(guarded-member) — mu_ held by every caller.
  segment_index_ = index;
  // convoy-lint: allow-line(guarded-member) — mu_ held by every caller.
  segment_size_ = 0;
  std::string header;
  PutU32(&header, kWalMagic);
  PutU32(&header, kWalFormatVersion);
  CONVOY_RETURN_IF_ERROR(WriteAllLocked(header));
  if (options_.fsync != FsyncPolicy::kNone) {
    // The new segment's directory entry must be durable before any record
    // in it is — otherwise an fsynced, acked tick can vanish with the
    // whole file on power loss right after rotation.
    TraceCount(trace_, TraceCounter::kWalFsyncs, 1);
    CONVOY_RETURN_IF_ERROR(FsyncDir(options_.dir));
  }
  return Status::Ok();
}

Status WalWriter::WriteAllLocked(std::string_view data) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        FaultWrite(fd_, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("WAL write");
    }
    written += static_cast<size_t>(n);
  }
  // convoy-lint: allow-line(guarded-member) — mu_ held by every caller.
  segment_size_ += data.size();
  TraceCount(trace_, TraceCounter::kWalBytesAppended, data.size());
  return Status::Ok();
}

Status WalWriter::MaybeFsyncLocked(const WalRecord& record) {
  bool want_fsync = false;
  switch (options_.fsync) {
    case FsyncPolicy::kNone:
      break;
    case FsyncPolicy::kInterval: {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_fsync_ >=
          std::chrono::milliseconds(options_.fsync_interval_ms)) {
        want_fsync = true;
      }
      break;
    }
    case FsyncPolicy::kEveryTick:
      want_fsync = record.kind == WalRecordKind::kEndTick ||
                   record.kind == WalRecordKind::kFinish;
      break;
  }
  if (!want_fsync) return Status::Ok();
  // convoy-lint: allow-line(guarded-member) — mu_ held by every caller.
  last_fsync_ = std::chrono::steady_clock::now();
  TraceCount(trace_, TraceCounter::kWalFsyncs, 1);
  if (FaultFsync(fd_) != 0) {
    // Linux (post-4.16 fsyncgate semantics): a failed fsync may have
    // dropped the dirty pages while marking them clean, so a later
    // "successful" fsync proves nothing about them. The policy demanded
    // durability here — surface the failure as an append failure (the
    // item is NAKed, never acked) and poison the writer; only a restart,
    // which re-reads the real on-disk state, can re-establish the
    // acked-implies-durable claim.
    // convoy-lint: allow-line(guarded-member) — mu_ held by every caller.
    broken_ = true;
    return ErrnoStatus("WAL fsync");
  }
  return Status::Ok();
}

Status WalWriter::Append(const WalRecord& record) {
  const std::string payload = EncodeWalRecord(record);
  std::string framed;
  framed.reserve(8 + payload.size());
  PutU32(&framed, static_cast<uint32_t>(payload.size()));
  PutU32(&framed, Crc32(payload));
  framed.append(payload);

  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::FailedPrecondition("WAL writer is closed");
  if (broken_) {
    return Status::Internal(
        "WAL writer poisoned by an earlier I/O failure; restart to recover");
  }
  if (segment_size_ + framed.size() > options_.segment_bytes &&
      segment_size_ > kWalHeaderBytes) {
    // Rotation keeps each record whole within one segment. Flush the old
    // segment to disk first when any fsync policy is on, so rotation is
    // never the event that loses a durable-claimed tail.
    if (options_.fsync != FsyncPolicy::kNone) {
      TraceCount(trace_, TraceCounter::kWalFsyncs, 1);
      if (FaultFsync(fd_) != 0) {
        // Same fsyncgate reasoning as MaybeFsyncLocked: the old segment's
        // tail can no longer be proven durable, so nothing after it may
        // be acked.
        broken_ = true;
        return ErrnoStatus("WAL fsync before rotation");
      }
    }
    const Status rotated =
        OpenSegmentLocked(segment_index_ + 1, /*truncate_to_header=*/true);
    if (!rotated.ok()) {
      // The new segment may carry a torn header; records appended on top
      // of it could never replay, so no stream may append again.
      broken_ = true;
      return rotated;
    }
    TraceCount(trace_, TraceCounter::kWalSegmentsRotated, 1);
  }
  const size_t pre_size = segment_size_;
  const Status written = WriteAllLocked(framed);
  if (!written.ok()) {
    // A partial write left torn bytes in the *shared* log: another
    // stream's next record would land after the tear, and the next Open
    // would truncate it away even though it was acked. Cut the file back
    // to the last record boundary so healthy streams keep their
    // guarantee; if even the cleanup fails, poison the writer so every
    // stream NAKs from here on.
    if (::ftruncate(fd_, static_cast<off_t>(pre_size)) != 0 ||
        ::lseek(fd_, static_cast<off_t>(pre_size), SEEK_SET) < 0) {
      broken_ = true;
    }
    return written;
  }
  TraceCount(trace_, TraceCounter::kWalRecordsAppended, 1);
  return MaybeFsyncLocked(record);
}

Status WalWriter::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::FailedPrecondition("WAL writer is closed");
  if (broken_) {
    return Status::Internal(
        "WAL writer poisoned by an earlier I/O failure; restart to recover");
  }
  last_fsync_ = std::chrono::steady_clock::now();
  TraceCount(trace_, TraceCounter::kWalFsyncs, 1);
  if (FaultFsync(fd_) != 0) {
    broken_ = true;  // fsyncgate: a later fsync cannot cover this failure
    return ErrnoStatus("WAL fsync");
  }
  return Status::Ok();
}

}  // namespace convoy::wal
