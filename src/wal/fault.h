#ifndef CONVOY_WAL_FAULT_H_
#define CONVOY_WAL_FAULT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <sys/types.h>

namespace convoy::wal {

/// Seeded syscall-level fault injection for the durability tests and the
/// loadgen chaos mode. The server and WAL route every socket/file syscall
/// through the hooks below; with no injector installed each hook is one
/// relaxed atomic load plus a never-taken branch (zero-cost-when-disabled),
/// and with one installed the injector deterministically (per seed)
/// shortens writes, raises EINTR, fails or delays fsync, and kills chosen
/// write calls with ECONNRESET — the failure modes a production daemon
/// meets on real networks and disks, reproduced on loopback.
///
/// Probabilities are evaluated on a splitmix64 stream owned by the
/// injector, so a given seed yields the same fault schedule regardless of
/// wall clock; the atomic stream state makes concurrent callers safe (the
/// per-thread interleaving of draws is scheduling-dependent, which is fine:
/// the tests assert recovery invariants, not exact fault placement).
class FaultInjector {
 public:
  struct Options {
    uint64_t seed = 1;
    /// Probability a Send/Write call transfers only a prefix (>= 1 byte)
    /// of the buffer — exercises every partial-write loop.
    double short_write_prob = 0.0;
    /// Probability a Send/Read/Write call fails once with EINTR.
    double eintr_prob = 0.0;
    /// Probability an Fsync call fails with EIO.
    double fsync_fail_prob = 0.0;
    /// Fixed delay added to every Fsync call (slow-disk simulation).
    uint32_t fsync_delay_us = 0;
    /// Fail the Nth Write/Send call (1-based) and every later one with
    /// ECONNRESET — a connection cut at a chosen frame boundary. 0 = off.
    uint64_t fail_writes_after = 0;
  };

  explicit FaultInjector(const Options& options);

  // Syscall wrappers: same contract as the underlying call (return value
  // and errno), with faults injected per the options.
  ssize_t Send(int fd, const void* buf, size_t len, int flags);
  ssize_t Read(int fd, void* buf, size_t len);
  ssize_t Write(int fd, const void* buf, size_t len);
  int Fsync(int fd);

  /// How many faults of each kind actually fired (tests assert > 0 so a
  /// "passing" chaos run cannot silently be a fault-free run).
  uint64_t short_writes() const { return short_writes_.load(); }
  uint64_t eintrs() const { return eintrs_.load(); }
  uint64_t fsync_failures() const { return fsync_failures_.load(); }
  uint64_t writes_killed() const { return writes_killed_.load(); }

 private:
  /// One draw in [0, 1) from the seeded stream.
  double NextUniform();

  const Options options_;
  std::atomic<uint64_t> rng_state_;
  std::atomic<uint64_t> write_calls_{0};
  std::atomic<uint64_t> short_writes_{0};
  std::atomic<uint64_t> eintrs_{0};
  std::atomic<uint64_t> fsync_failures_{0};
  std::atomic<uint64_t> writes_killed_{0};
};

/// Installs `injector` (nullptr to disable) process-wide. The caller keeps
/// ownership and must keep it alive until after SetFaultInjector(nullptr);
/// intended for test / chaos-tool setup before traffic starts.
void SetFaultInjector(FaultInjector* injector);
FaultInjector* GetFaultInjector();

// ------------------------------------------------------------ call sites
// The hooks the server/WAL code calls in place of the raw syscalls. Each
// is a single relaxed load + branch when no injector is installed.

ssize_t FaultSend(int fd, const void* buf, size_t len, int flags);
ssize_t FaultRead(int fd, void* buf, size_t len);
ssize_t FaultWrite(int fd, const void* buf, size_t len);
int FaultFsync(int fd);

}  // namespace convoy::wal

#endif  // CONVOY_WAL_FAULT_H_
