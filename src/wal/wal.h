#ifndef CONVOY_WAL_WAL_H_
#define CONVOY_WAL_WAL_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace convoy {
class TraceSession;
}  // namespace convoy

namespace convoy::wal {

/// Write-ahead log of accepted ingest work — the durability layer under
/// the convoy server and the ingest-log building block of the out-of-core
/// SnapshotStore (see ROADMAP).
///
/// On-disk layout: a directory of segment files `wal-NNNNNN.log`, each
///
///   segment  := header record*
///   header   := u32 LE magic "CWAL" | u32 LE format version
///   record   := u32 LE payload_len | u32 LE CRC32(payload) | payload
///   payload  := u8 kind | u64 stream_id | u64 seq | i64 tick | body
///
/// where `body` is kind-specific: kBegin carries the stream's query
/// parameters (so recovery can reconstruct the StreamingCmc exactly),
/// kBatch carries the *accepted* rows of one ReportBatch, kEndTick and
/// kFinish carry nothing. All integers little-endian fixed width; doubles
/// as IEEE-754 bits in a u64.
///
/// Only work that was accepted (and therefore acked) is logged, and it is
/// logged *before* the ack leaves the server — so an acked item is always
/// recoverable, and replaying a WAL through StreamingCmc reproduces the
/// uninterrupted run bit-identically. A crash between write and ack at
/// worst re-delivers an unacked item, which the server's seq-dedup absorbs.
///
/// Torn tails: a crash can leave the last record half-written. The reader
/// stops at the first record whose length/CRC fails, reporting the exact
/// byte offset — deterministic for a given byte string, fuzz-tested — and
/// the writer truncates the segment there and appends on top
/// (truncate-and-continue; recovery never crashes on a torn log).
inline constexpr uint32_t kWalMagic = 0x4c415743;  // "CWAL"
inline constexpr uint32_t kWalFormatVersion = 1;
inline constexpr size_t kWalHeaderBytes = 8;

/// Hostile-input guard, mirroring the wire framing: record payloads above
/// this are treated as corruption, not allocated.
inline constexpr size_t kMaxWalRecordPayload = 8u * 1024u * 1024u;

/// When the WAL writer calls fsync(2):
///  * kNone — never; page cache only. Survives process death (SIGKILL
///    included: written pages belong to the kernel), not OS/power loss.
///  * kInterval — group commit: at most one fsync per fsync_interval_ms,
///    issued from the append path. Bounds data-at-risk by time.
///  * kEveryTick — on every kEndTick/kFinish record: a processed tick is
///    durable before its ack leaves.
enum class FsyncPolicy : uint8_t { kNone = 0, kInterval, kEveryTick };

/// "none" / "interval" / "every_tick" (the --fsync flag vocabulary).
std::string_view ToString(FsyncPolicy policy);
StatusOr<FsyncPolicy> ParseFsyncPolicy(std::string_view name);

enum class WalRecordKind : uint8_t {
  kBegin = 1,    ///< stream opened (carries query parameters)
  kBatch = 2,    ///< accepted rows of one ReportBatch
  kEndTick = 3,  ///< tick closed
  kFinish = 4,   ///< stream finished
};

/// One logged row (mirrors the wire's PositionReport; the WAL stays
/// independent of the protocol headers).
struct WalRow {
  uint32_t id = 0;
  double x = 0.0;
  double y = 0.0;

  bool operator==(const WalRow& other) const {
    return id == other.id && x == other.x && y == other.y;
  }
};

struct WalRecord {
  WalRecordKind kind = WalRecordKind::kBatch;
  uint64_t stream_id = 0;
  uint64_t seq = 0;   ///< the client sequence the ack echoed
  int64_t tick = 0;   ///< kBatch/kEndTick; 0 otherwise

  // kBegin only: the stream's query parameters.
  uint32_t m = 0;
  int64_t k = 0;
  double e = 0.0;
  int64_t carry_forward_ticks = 0;

  // kBatch only: the accepted rows.
  std::vector<WalRow> rows;
};

/// CRC32 (IEEE 802.3 polynomial, zlib-compatible) of `data`.
uint32_t Crc32(std::string_view data);

/// Record payload <-> struct (exposed for wal_test's fuzzing; the framing
/// bytes — length + CRC — are the writer/reader's job).
std::string EncodeWalRecord(const WalRecord& record);
StatusOr<WalRecord> DecodeWalRecord(std::string_view payload);

// ------------------------------------------------------------------ read

struct WalReadStats {
  uint64_t records = 0;        ///< valid records delivered
  uint64_t bytes = 0;          ///< valid bytes consumed (headers included)
  uint64_t segments = 0;       ///< segment files visited
  bool torn = false;           ///< a torn/corrupt tail was found
  std::string torn_segment;    ///< segment file holding the torn tail
  uint64_t torn_offset = 0;    ///< valid byte length of that segment
  std::string detail;          ///< human-readable reason for the tear
};

/// Replays every valid record of the WAL in `dir` (segments in index
/// order, records in file order) through `fn`. Stops cleanly at the first
/// torn/corrupt record — `stats->torn` plus the segment/offset identify
/// the deterministic truncation point — and *never* errors for tail
/// corruption; a non-OK return is a real I/O failure (unreadable dir) or
/// `fn` itself failing. A missing directory reads as an empty WAL.
Status ReadWalDir(const std::string& dir,
                  const std::function<Status(const WalRecord&)>& fn,
                  WalReadStats* stats);

// ----------------------------------------------------------------- write

struct WalOptions {
  std::string dir;  ///< created if missing
  FsyncPolicy fsync = FsyncPolicy::kNone;
  uint32_t fsync_interval_ms = 50;  ///< kInterval group-commit window
  /// Rotate to a fresh segment once the current one reaches this size.
  size_t segment_bytes = 64u * 1024u * 1024u;
};

/// The append side. Open() scans the existing segments, truncates a torn
/// tail in place (unlinking any later segments, which can only be garbage
/// once a tear is found), and appends after the last valid record — so a
/// crashed server restarts onto its own WAL with no manual repair step.
///
/// Append() is serialized by an internal mutex: the per-stream workers of
/// one server share one WAL. One buffered write(2) per record (through the
/// fault-injection hooks), CRC computed per append.
///
/// Under a durable policy (interval/every_tick) the WAL directory itself
/// is fsynced after mkdir, after every segment creation/rotation, and
/// after tear-repair unlinks — a freshly rotated segment full of fsynced
/// records must not vanish on power loss because its directory entry was
/// never made durable (and unlinked post-tear garbage must not reappear).
class WalWriter {
 public:
  /// `trace` (nullable) receives the wal.* counters.
  static StatusOr<std::unique_ptr<WalWriter>> Open(const WalOptions& options,
                                                   TraceSession* trace);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record and applies the fsync policy. kInternal on an
  /// unrecoverable I/O failure (disk full, injected EIO past retry) — the
  /// caller must then NAK instead of ack, since durability was promised.
  ///
  /// Failure containment: the WAL is shared by every stream, so a failed
  /// append must not leave torn bytes for the next stream to write after
  /// (Open would truncate at the tear and silently discard those acked
  /// records). A failed record write is ftruncate'd back to the last
  /// record boundary; if even that cleanup fails — or an fsync the policy
  /// demanded fails (post-fsyncgate, a later fsync cannot resurrect
  /// dropped dirty pages) — the whole writer is poisoned and every
  /// subsequent Append fails, so every stream NAKs until a restart
  /// re-opens from the real on-disk state.
  Status Append(const WalRecord& record);

  /// Forces an fsync of the current segment regardless of policy.
  Status Sync();

  const std::string& dir() const { return options_.dir; }

 private:
  WalWriter(const WalOptions& options, TraceSession* trace);

  Status OpenSegmentLocked(uint64_t index, bool truncate_to_header);
  Status WriteAllLocked(std::string_view data);
  Status MaybeFsyncLocked(const WalRecord& record);

  const WalOptions options_;
  TraceSession* const trace_;

  std::mutex mu_;
  int fd_ = -1;                   // GUARDED_BY(mu_)
  uint64_t segment_index_ = 0;    // GUARDED_BY(mu_)
  size_t segment_size_ = 0;       // GUARDED_BY(mu_)
  /// Set on an I/O failure the writer could not contain (see Append);
  /// once true every Append/Sync fails until the process restarts.
  bool broken_ = false;           // GUARDED_BY(mu_)
  std::chrono::steady_clock::time_point last_fsync_;  // GUARDED_BY(mu_)
};

/// The segment file path for index `index` under `dir`.
std::string WalSegmentPath(const std::string& dir, uint64_t index);

}  // namespace convoy::wal

#endif  // CONVOY_WAL_WAL_H_
