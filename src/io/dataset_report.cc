#include "io/dataset_report.h"

#include <iomanip>
#include <ostream>

namespace convoy {

void PrintDatasetReport(const TrajectoryDatabase& db, const std::string& name,
                        std::ostream& out) {
  const DatabaseStats stats = db.Stats();
  out << "dataset: " << name << "\n"
      << "  number of objects (N):      " << stats.num_objects << "\n"
      << "  time domain length (T):     " << stats.time_domain_length << "\n"
      << "  average trajectory length:  " << std::fixed << std::setprecision(1)
      << stats.avg_trajectory_length << "\n"
      << "  data size (points):         " << stats.total_points << "\n"
      << "  avg missing-sample ratio:   " << std::setprecision(3)
      << stats.avg_missing_ratio << "\n"
      << std::defaultfloat;
}

}  // namespace convoy
