#ifndef CONVOY_IO_CSV_H_
#define CONVOY_IO_CSV_H_

#include <iosfwd>
#include <string>

#include "traj/database.h"

namespace convoy {

/// Result of a CSV load: the database plus parse diagnostics.
struct CsvLoadResult {
  TrajectoryDatabase db;
  size_t lines_parsed = 0;
  size_t lines_skipped = 0;  ///< malformed or out-of-order rows
  bool ok = false;           ///< false when the file could not be opened
  std::string error;
};

/// Loads trajectories from a CSV stream of rows `object_id,tick,x,y`.
/// A single header line is tolerated (detected by a non-numeric first
/// field). Rows may appear in any order; rows with duplicate (id, tick)
/// collapse to the last occurrence, mirroring Trajectory's constructor.
CsvLoadResult LoadTrajectoriesCsv(std::istream& in);

/// Convenience overload opening `path`. Sets ok=false on I/O failure.
CsvLoadResult LoadTrajectoriesCsv(const std::string& path);

/// Writes the database as `object_id,tick,x,y` rows with a header line.
void SaveTrajectoriesCsv(const TrajectoryDatabase& db, std::ostream& out);

/// Convenience overload writing to `path`; returns false on I/O failure.
bool SaveTrajectoriesCsv(const TrajectoryDatabase& db,
                         const std::string& path);

}  // namespace convoy

#endif  // CONVOY_IO_CSV_H_
