#ifndef CONVOY_IO_CSV_H_
#define CONVOY_IO_CSV_H_

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "traj/database.h"

namespace convoy {

/// One rejected CSV line: its 1-based line number and why it was skipped.
/// Only the first `CsvLoadResult::kMaxDiagnostics` rejects are recorded
/// verbatim (a multi-gigabyte feed of garbage must not balloon memory);
/// `lines_skipped` always holds the full count.
struct CsvLineDiagnostic {
  size_t line_number = 0;
  std::string reason;
};

/// Result of a CSV load: the database plus parse diagnostics.
struct CsvLoadResult {
  static constexpr size_t kMaxDiagnostics = 32;

  TrajectoryDatabase db;
  size_t lines_parsed = 0;
  size_t lines_skipped = 0;  ///< malformed rows or non-finite coordinates
  size_t duplicates_collapsed = 0;  ///< repeated (id, tick) rows dropped
  std::vector<CsvLineDiagnostic> diagnostics;  ///< first rejects, in order
  bool ok = false;  ///< false when the file could not be opened
  std::string error;
};

/// Loads trajectories from a CSV stream of rows `object_id,tick,x,y`.
/// A single header line is tolerated (detected by a non-numeric first
/// field). Rows may appear in any order. Defenses against messy feeds
/// (each skip/collapse is counted and the first few are described in
/// `diagnostics`):
///  * malformed rows (wrong field count, unparsable numbers, negative ids)
///    are skipped;
///  * rows with non-finite coordinates (`nan`, `inf` — which a NaN-naive
///    parse would happily accept and which poison every DBSCAN distance
///    comparison downstream) are skipped;
///  * rows with duplicate (id, tick) collapse to the last occurrence,
///    counted in `duplicates_collapsed`.
CsvLoadResult LoadTrajectoriesCsv(std::istream& in);

/// Convenience overload opening `path`. Sets ok=false on I/O failure.
CsvLoadResult LoadTrajectoriesCsv(const std::string& path);

/// Variant that streams the accepted rows straight into a
/// SnapshotStoreBuilder, producing the tick-partitioned SnapshotStore
/// together with the database in one load (`num_threads` sizes the store's
/// build pass; 0 = all hardware threads). The returned database and every
/// diagnostic are identical to LoadTrajectoriesCsv on the same input; on
/// I/O failure (ok = false) `*store` is left empty. CSV is untrusted
/// input, so the build is budgeted (kSnapshotStoreSlotBudget): a file
/// whose tick span would materialize beyond it — epoch-second ticks, say —
/// loads normally but leaves the store empty, detectable via
/// store->IsStaleFor(result.db).
class SnapshotStore;
CsvLoadResult LoadTrajectoriesCsv(std::istream& in, SnapshotStore* store,
                                  size_t num_threads = 1);
CsvLoadResult LoadTrajectoriesCsv(const std::string& path,
                                  SnapshotStore* store,
                                  size_t num_threads = 1);

/// Writes the database as `object_id,tick,x,y` rows with a header line.
void SaveTrajectoriesCsv(const TrajectoryDatabase& db, std::ostream& out);

/// Convenience overload writing to `path`; returns false on I/O failure.
bool SaveTrajectoriesCsv(const TrajectoryDatabase& db,
                         const std::string& path);

}  // namespace convoy

#endif  // CONVOY_IO_CSV_H_
