#ifndef CONVOY_IO_DATASET_REPORT_H_
#define CONVOY_IO_DATASET_REPORT_H_

#include <iosfwd>
#include <string>

#include "traj/database.h"

namespace convoy {

/// Prints the Table 3-style statistics block of a dataset: object count N,
/// time-domain length T, average trajectory length, total points, and the
/// average missing-sample ratio (sampling irregularity).
void PrintDatasetReport(const TrajectoryDatabase& db, const std::string& name,
                        std::ostream& out);

}  // namespace convoy

#endif  // CONVOY_IO_DATASET_REPORT_H_
