#ifndef CONVOY_IO_RESULT_IO_H_
#define CONVOY_IO_RESULT_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "core/convoy_set.h"
#include "query/result_set.h"

namespace convoy {

/// Writes convoys as CSV rows `start_tick,end_tick,object_ids` where the
/// object ids are ';'-separated (object ids may not contain commas, so the
/// format stays a plain 3-column CSV). A header row is emitted.
void SaveConvoysCsv(const std::vector<Convoy>& convoys, std::ostream& out);
bool SaveConvoysCsv(const std::vector<Convoy>& convoys,
                    const std::string& path);

/// Parses the format written by SaveConvoysCsv. Malformed rows are skipped
/// and counted in `*skipped` when provided. A header is tolerated.
std::vector<Convoy> LoadConvoysCsv(std::istream& in,
                                   size_t* skipped = nullptr);

/// Writes convoys as a JSON array:
///   [{"objects":[1,2,3],"start":0,"end":9}, ...]
/// Stable field order; no external JSON dependency needed for output.
void SaveConvoysJson(const std::vector<Convoy>& convoys, std::ostream& out);

/// Writes an executed query's full answer — the resolved plan (algorithm,
/// requested choice, delta/lambda with provenance, cache status, database
/// statistics, work estimate), the run's DiscoveryStats, and the convoys —
/// as one JSON object:
///   {"plan":{...},"stats":{...},"convoys":[...]}
/// The convoys array is exactly SaveConvoysJson's format, so existing
/// consumers can read `.convoys` unchanged. Stable field order; the CLI's
/// --report writes this.
void SaveResultSetJson(const ConvoyResultSet& result, std::ostream& out);
bool SaveResultSetJson(const ConvoyResultSet& result,
                       const std::string& path);

}  // namespace convoy

#endif  // CONVOY_IO_RESULT_IO_H_
