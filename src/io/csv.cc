#include "io/csv.h"

#include <charconv>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <string_view>

#include "traj/snapshot_store.h"

namespace convoy {

namespace {

// Splits a CSV line into at most 4 fields; returns false on field count
// mismatch. No quoting support — trajectory rows are purely numeric.
bool SplitFields(std::string_view line, std::string_view fields[4]) {
  size_t field = 0;
  size_t start = 0;
  for (size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == ',') {
      if (field >= 4) return false;
      fields[field++] = line.substr(start, i - start);
      start = i + 1;
    }
  }
  return field == 4;
}

bool ParseDouble(std::string_view s, double* out) {
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

bool ParseInt(std::string_view s, int64_t* out) {
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

void Reject(CsvLoadResult* result, size_t line_number, std::string reason) {
  ++result->lines_skipped;
  if (result->diagnostics.size() < CsvLoadResult::kMaxDiagnostics) {
    result->diagnostics.push_back(
        CsvLineDiagnostic{line_number, std::move(reason)});
  }
}

// The shared parse-and-filter loop: every accepted row goes to `row(id,
// tick, x, y)` — accumulated into a per-object map by the plain loader,
// streamed into a SnapshotStoreBuilder by the store-producing one — so the
// two entry points can never disagree on what counts as a valid row.
template <typename RowFn>
void ParseCsvRows(std::istream& in, CsvLoadResult* result, RowFn&& row) {
  std::string line;
  size_t line_number = 0;
  bool first_line = true;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view view = Trim(line);
    if (view.empty()) continue;
    std::string_view fields[4];
    int64_t id = 0;
    if (!SplitFields(view, fields) || !ParseInt(Trim(fields[0]), &id)) {
      if (first_line) {
        first_line = false;  // header
        continue;
      }
      Reject(result, line_number,
             "expected `object_id,tick,x,y` with a numeric object_id");
      continue;
    }
    first_line = false;
    int64_t tick = 0;
    double x = 0.0;
    double y = 0.0;
    if (id < 0) {
      Reject(result, line_number, "negative object_id");
      continue;
    }
    if (!ParseInt(Trim(fields[1]), &tick)) {
      Reject(result, line_number, "unparsable tick");
      continue;
    }
    if (!ParseDouble(Trim(fields[2]), &x) ||
        !ParseDouble(Trim(fields[3]), &y)) {
      Reject(result, line_number, "unparsable coordinate");
      continue;
    }
    // from_chars happily parses "nan" and "inf"; a single NaN coordinate
    // poisons every distance comparison DBSCAN makes downstream, so
    // non-finite rows are data errors, not data.
    if (!std::isfinite(x) || !std::isfinite(y)) {
      Reject(result, line_number, "non-finite coordinate");
      continue;
    }
    row(static_cast<ObjectId>(id), static_cast<Tick>(tick), x, y);
    ++result->lines_parsed;
  }
}

}  // namespace

CsvLoadResult LoadTrajectoriesCsv(std::istream& in) {
  CsvLoadResult result;
  std::map<ObjectId, std::vector<TimedPoint>> rows;
  ParseCsvRows(in, &result, [&rows](ObjectId id, Tick tick, double x,
                                    double y) {
    rows[id].emplace_back(x, y, tick);
  });

  for (auto& [id, samples] : rows) {
    // Trajectory's constructor collapses repeated (id, tick) rows to their
    // last occurrence; the size difference makes the collapse *counted*
    // and reportable instead of silent.
    const size_t raw_samples = samples.size();
    Trajectory traj(id, std::move(samples));
    result.duplicates_collapsed += raw_samples - traj.Size();
    result.db.Add(std::move(traj));
  }
  result.ok = true;
  return result;
}

CsvLoadResult LoadTrajectoriesCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    CsvLoadResult result;
    result.error = "cannot open " + path;
    return result;
  }
  return LoadTrajectoriesCsv(in);
}

CsvLoadResult LoadTrajectoriesCsv(std::istream& in, SnapshotStore* store,
                                  size_t num_threads) {
  CsvLoadResult result;
  SnapshotStoreBuilder builder;
  ParseCsvRows(in, &result, [&builder](ObjectId id, Tick tick, double x,
                                       double y) {
    builder.AddRow(id, tick, x, y);
  });
  *store = builder.Finish(&result.db, num_threads,
                          &result.duplicates_collapsed);
  result.ok = true;
  return result;
}

CsvLoadResult LoadTrajectoriesCsv(const std::string& path,
                                  SnapshotStore* store, size_t num_threads) {
  std::ifstream in(path);
  if (!in) {
    *store = SnapshotStore{};  // documented contract: empty on I/O failure
    CsvLoadResult result;
    result.error = "cannot open " + path;
    return result;
  }
  return LoadTrajectoriesCsv(in, store, num_threads);
}

void SaveTrajectoriesCsv(const TrajectoryDatabase& db, std::ostream& out) {
  // Round-trip-exact doubles: discovery results must not depend on whether
  // the data took a detour through a file.
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "object_id,tick,x,y\n";
  for (const Trajectory& traj : db.trajectories()) {
    for (const TimedPoint& p : traj.samples()) {
      out << traj.id() << "," << p.t << "," << p.pos.x << "," << p.pos.y
          << "\n";
    }
  }
}

bool SaveTrajectoriesCsv(const TrajectoryDatabase& db,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  SaveTrajectoriesCsv(db, out);
  return out.good();
}

}  // namespace convoy
