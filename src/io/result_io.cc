#include "io/result_io.h"

#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>

namespace convoy {

void SaveConvoysCsv(const std::vector<Convoy>& convoys, std::ostream& out) {
  out << "start_tick,end_tick,object_ids\n";
  for (const Convoy& c : convoys) {
    out << c.start_tick << "," << c.end_tick << ",";
    for (size_t i = 0; i < c.objects.size(); ++i) {
      if (i > 0) out << ";";
      out << c.objects[i];
    }
    out << "\n";
  }
}

bool SaveConvoysCsv(const std::vector<Convoy>& convoys,
                    const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  SaveConvoysCsv(convoys, out);
  return out.good();
}

namespace {

bool ParseI64(std::string_view s, int64_t* out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

}  // namespace

std::vector<Convoy> LoadConvoysCsv(std::istream& in, size_t* skipped) {
  std::vector<Convoy> out;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    std::string_view view = line;
    while (!view.empty() && (view.back() == '\r' || view.back() == ' ')) {
      view.remove_suffix(1);
    }
    if (view.empty()) continue;

    const size_t c1 = view.find(',');
    const size_t c2 = c1 == std::string_view::npos
                          ? std::string_view::npos
                          : view.find(',', c1 + 1);
    int64_t start = 0;
    int64_t end = 0;
    bool ok = c2 != std::string_view::npos &&
              ParseI64(view.substr(0, c1), &start) &&
              ParseI64(view.substr(c1 + 1, c2 - c1 - 1), &end);
    Convoy convoy;
    if (ok) {
      convoy.start_tick = start;
      convoy.end_tick = end;
      std::string_view ids = view.substr(c2 + 1);
      while (ok && !ids.empty()) {
        const size_t semi = ids.find(';');
        const std::string_view tok = ids.substr(0, semi);
        int64_t id = 0;
        ok = ParseI64(tok, &id) && id >= 0;
        if (ok) convoy.objects.push_back(static_cast<ObjectId>(id));
        if (semi == std::string_view::npos) break;
        ids.remove_prefix(semi + 1);
      }
      ok = ok && !convoy.objects.empty() && start <= end;
    }
    if (ok) {
      out.push_back(std::move(convoy));
    } else if (first) {
      // header
    } else if (skipped != nullptr) {
      ++*skipped;
    }
    first = false;
  }
  Canonicalize(&out);
  return out;
}

void SaveConvoysJson(const std::vector<Convoy>& convoys, std::ostream& out) {
  out << "[";
  for (size_t i = 0; i < convoys.size(); ++i) {
    const Convoy& c = convoys[i];
    if (i > 0) out << ",";
    out << "\n  {\"objects\":[";
    for (size_t j = 0; j < c.objects.size(); ++j) {
      if (j > 0) out << ",";
      out << c.objects[j];
    }
    out << "],\"start\":" << c.start_tick << ",\"end\":" << c.end_tick << "}";
  }
  out << (convoys.empty() ? "]" : "\n]") << "\n";
}

void SaveResultSetJson(const ConvoyResultSet& result, std::ostream& out) {
  const QueryPlan& plan = result.plan();
  const DiscoveryStats& stats = result.stats();
  const ConvoyAlgorithm& algo = GetAlgorithm(plan.algorithm);
  const AlgorithmCapabilities caps = algo.Capabilities();

  out << "{\n\"plan\":{";
  out << "\"algorithm\":\"" << algo.Name() << "\"";
  out << ",\"requested\":\"" << ToString(plan.requested) << "\"";
  out << ",\"query\":{\"m\":" << plan.query.m << ",\"k\":" << plan.query.k
      << ",\"e\":" << plan.query.e
      << ",\"threads\":" << plan.query.num_threads << "}";
  if (caps.uses_simplification) {
    out << ",\"delta\":" << plan.delta
        << ",\"delta_derived\":" << (plan.delta_derived ? "true" : "false");
    out << ",\"lambda\":" << plan.lambda
        << ",\"lambda_derived\":" << (plan.lambda_derived ? "true" : "false");
  }
  out << ",\"cache\":\"" << ToString(plan.cache) << "\"";
  out << ",\"exact\":" << (caps.exact ? "true" : "false");
  out << ",\"database\":{\"objects\":" << plan.db_stats.num_objects
      << ",\"ticks\":" << plan.db_stats.time_domain_length
      << ",\"points\":" << plan.db_stats.total_points << "}";
  out << ",\"estimated_clusterings\":" << plan.estimated_clusterings
      << ",\"estimated_work\":" << plan.estimated_work;
  out << "},\n";

  out << "\"stats\":{";
  out << "\"total_seconds\":" << stats.total_seconds
      << ",\"simplify_seconds\":" << stats.simplify_seconds
      << ",\"filter_seconds\":" << stats.filter_seconds
      << ",\"refine_seconds\":" << stats.refine_seconds
      << ",\"num_candidates\":" << stats.num_candidates
      << ",\"num_clusterings\":" << stats.num_clusterings
      << ",\"num_convoys\":" << stats.num_convoys;
  out << "},\n";

  // Observability block: present (with "enabled":false) even for untraced
  // runs so consumers can key on it unconditionally. Counters are
  // deterministic; spans/series are wall-clock.
  out << "\"metrics\":";
  result.metrics().WriteJson(out);
  out << ",\n";

  out << "\"convoys\":";
  SaveConvoysJson(result.convoys(), out);
  out << "}\n";
}

bool SaveResultSetJson(const ConvoyResultSet& result,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  SaveResultSetJson(result, out);
  return out.good();
}

}  // namespace convoy
