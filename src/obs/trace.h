#ifndef CONVOY_OBS_TRACE_H_
#define CONVOY_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

namespace convoy {

/// The deterministic counter catalog — every named counter the execution
/// layers increment. Counters are *logical work measures* (points scanned,
/// probes performed, candidates created): their totals are bit-identical at
/// any worker-thread count, because every increment is attributable to a
/// deterministic work unit (a tick, a partition, a refinement unit) and
/// integer sums are order-independent. Wall-clock data goes into spans and
/// value series instead, which are explicitly excluded from determinism.
///
/// kTrackerLiveMax is a *max* counter (merged by max, not sum): the high
/// water mark of live candidates across the run.
enum class TraceCounter : uint32_t {
  kSnapshotsClustered = 0,   ///< ticks/partitions where DBSCAN actually ran
  kDbscanPointsScanned,      ///< points labeled across all clusterings
  kDbscanNeighborQueries,    ///< grid neighborhood lookups issued
  kDbscanNeighborsVisited,   ///< neighbor list entries returned in total
  kDbscanClustersFormed,     ///< clusters produced across all clusterings
  kTrackerSteps,             ///< CandidateTracker::Advance calls
  kTrackerCandidatesOffered, ///< successor/fresh candidates offered
  kTrackerDedupProbes,       ///< open-addressing probe steps in the dedup
  kTrackerDedupHits,         ///< offers that collapsed onto an existing set
  kTrackerCompleted,         ///< candidates retired with lifetime >= k
  kTrackerLiveMax,           ///< max live candidates after any step (max)
  kGridCacheHits,            ///< SnapshotStore::GridFor served from cache
  kGridCacheMisses,          ///< SnapshotStore::GridFor built a grid
  kSimplifyCacheHits,        ///< engine simplification cache hits
  kSimplifyCacheMisses,      ///< engine simplification cache misses
  kStoreTicksBuilt,          ///< ticks materialized by a store build
  kStorePointsBuilt,         ///< columnar points materialized by a build
  kFilterPartitions,         ///< CuTS filter partitions clustered
  kRefineUnits,              ///< CuTS refinement units run
  kConvoysEmitted,           ///< convoys handed to the incremental sink
  kServerBatchesAccepted,    ///< ingest batches the stream workers processed
  kServerBatchesRejected,    ///< batches NAKed (malformed/out-of-order/full)
  kServerRingHighWater,      ///< max reader->worker ring depth seen (max)
  kServerEventsEmitted,      ///< subscription events fanned out to clients
  kServerActiveSessionsMax,  ///< max concurrently open ingest streams (max)
  kFilterPolylines,          ///< partition polylines built by the filter
  kFilterSegmentTests,       ///< segment pairs whose distance was computed
  kFilterMbrRejects,         ///< segment pairs rejected by the MBR bound
  kWalRecordsAppended,       ///< WAL records written (accepted ingest items)
  kWalBytesAppended,         ///< WAL bytes written (records + headers)
  kWalFsyncs,                ///< fsync(2) calls issued by the WAL writer
  kWalSegmentsRotated,       ///< WAL segment files rotated out
  kWalRecoveredRecords,      ///< records replayed during crash recovery
  kWalTruncatedTails,        ///< torn/corrupt WAL tails truncated on open
  kServerIdleReaped,         ///< connections reaped by the idle read timeout
  kServerEventsDropped,      ///< events dropped by the slow-subscriber policy
  kServerLoadShed,           ///< ingest items NAKed kRetryAfter (high water)
  kNumTraceCounters          ///< sentinel, not a counter
};

inline constexpr size_t kNumTraceCounters =
    static_cast<size_t>(TraceCounter::kNumTraceCounters);

/// Stable snake_case name of a counter (the key used in metrics JSON and
/// EXPLAIN ANALYZE output; see README "Observability" for the catalog).
const char* ToString(TraceCounter c);

/// True for counters merged across threads by max instead of sum.
bool IsMaxCounter(TraceCounter c);

/// One completed span: a named wall-clock interval on one thread's track.
/// Names must be string literals (or otherwise outlive the session) — spans
/// never copy them, so recording one allocates at most a vector slot.
struct TraceEvent {
  const char* name = "";
  uint64_t start_ns = 0;  ///< steady-clock ns since the session's origin
  uint64_t dur_ns = 0;
  uint32_t track = 0;  ///< per-thread track id (registration order)
};

/// Sets/reads a thread-role label attached to this thread's trace track
/// ("main" by default; the ThreadPool labels its workers "pool-worker").
/// The pointer must outlive every session the thread records into — pass
/// string literals.
void SetTraceThreadLabel(const char* label);
const char* GetTraceThreadLabel();

/// TraceSession — a per-execution recorder of spans, counters, and value
/// series, built for a near-zero disabled cost: every instrumentation point
/// in the engine takes a `TraceSession*` that is null when tracing is off,
/// and the null check is hoisted to once per *phase* (per tick, partition,
/// or refinement unit), never per point.
///
/// Thread model: each recording thread lazily registers a private buffer
/// (spans + counter array + series), so counter recording from ThreadPool
/// workers is lock-free after the first touch (relaxed atomics on cells
/// owned by one writer); span/series recording takes the buffer's own
/// mutex, uncontended in the steady state because spans are per-phase,
/// never per-point. Reads (Metrics / counter / Events / Chrome trace
/// export) merge the buffers under the session mutex plus each buffer's
/// mutex, so reading WHILE recording is safe: a live read returns a
/// monotone approximation (some in-flight tallies may be missing), and a
/// read after the recording threads joined is exact — joining
/// happens-before the read, so even relaxed counter cells are final.
/// This is what lets a monitor thread poll Metrics() against a live
/// StreamingCmc without stopping the stream.
///
/// Determinism: counter totals are bit-identical at 1/2/8 threads (integer
/// sums over deterministic per-unit tallies); span timings and Observe()d
/// values are wall-clock and carry no determinism guarantee.
class TraceSession {
 public:
  TraceSession();
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Adds `delta` to a sum counter (thread-safe; lock-free after the
  /// calling thread's first record into this session).
  void Count(TraceCounter c, uint64_t delta);

  /// Raises a max counter to at least `value`.
  void CountMax(TraceCounter c, uint64_t value);

  /// Appends one observation to the named value series (histogram source:
  /// per-tick latencies, inter-emission delays, ...). `series` must be a
  /// string literal or otherwise outlive the session.
  void Observe(const char* series, double value);

  /// Records a completed span. Prefer ScopedSpan below.
  void RecordSpan(const char* name, uint64_t start_ns, uint64_t end_ns);

  /// Steady-clock nanoseconds since the session was created.
  uint64_t NowNs() const;

  /// Merged totals (sum counters) / high water marks (max counters).
  uint64_t counter(TraceCounter c) const;

  /// All recorded spans, merged across threads (per-track order preserved;
  /// tracks concatenated in registration order).
  std::vector<TraceEvent> Events() const;

  /// Number of per-thread tracks registered so far.
  size_t NumTracks() const;

  /// Snapshot of counters, series summaries (count/min/mean/max/p50/p90/
  /// p99 via util/stats.h), and per-name span aggregates — the payload of
  /// every sink (EXPLAIN ANALYZE, metrics JSON, bench phase breakdown).
  QueryMetrics Metrics() const;

  /// Chrome trace-event JSON (the "JSON Array Format"): one complete "X"
  /// event per span, one track (tid) per recording thread with a
  /// thread_name metadata record — loads in Perfetto / chrome://tracing.
  void WriteChromeTrace(std::ostream& out) const;

 private:
  struct ThreadBuf {
    /// Counter cells are relaxed atomics: each cell has exactly one
    /// writer (the owning thread) and any number of merging readers.
    /// The cells are independent monotone tallies — no cross-cell
    /// ordering is meaningful — so relaxed is sufficient: a concurrent
    /// read sees some valid earlier value (monotone approximation), and
    /// the join of the recording threads before a final read supplies
    /// the happens-before that makes quiescent totals exact.
    std::array<std::atomic<uint64_t>, kNumTraceCounters> counts{};
    std::array<std::atomic<uint64_t>, kNumTraceCounters> maxes{};
    /// Guards this buffer's events and series only. Taken by the owning
    /// thread per span/observation (rare — per phase, never per point)
    /// and by readers during a merge, so live exports cannot race
    /// recording.
    std::mutex buf_mu;
    std::vector<TraceEvent> events;  // GUARDED_BY(buf_mu)
    std::vector<std::pair<const char*, std::vector<double>>>
        series;                      // GUARDED_BY(buf_mu)
    uint32_t track = 0;
    const char* label = "main";
  };

  ThreadBuf* LocalBuf();
  static std::vector<double>* SeriesSlot(ThreadBuf* buf, const char* name);

  const uint64_t session_id_;  ///< process-unique, keys the thread cache
  const std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mu_;  ///< guards bufs_ registration and merged reads
  std::vector<std::unique_ptr<ThreadBuf>> bufs_;  // GUARDED_BY(mu_)
};

/// RAII span guarded for a null session — the one-branch-per-phase idiom:
///
///   ScopedSpan span(trace, "filter.partition");   // no-op when trace==null
///
/// Zero allocation and two branches total when disabled.
class ScopedSpan {
 public:
  ScopedSpan(TraceSession* session, const char* name) : session_(session) {
    if (session_ != nullptr) {
      name_ = name;
      start_ns_ = session_->NowNs();
    }
  }
  ~ScopedSpan() {
    if (session_ != nullptr) {
      session_->RecordSpan(name_, start_ns_, session_->NowNs());
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceSession* session_;
  const char* name_ = "";
  uint64_t start_ns_ = 0;
};

/// Null-guarded free helpers, mirroring CheckCancelled/ReportProgress in
/// core/exec_hooks.h: a disabled trace costs exactly one branch.
inline void TraceCount(TraceSession* t, TraceCounter c, uint64_t delta) {
  if (t != nullptr) t->Count(c, delta);
}

inline void TraceCountMax(TraceSession* t, TraceCounter c, uint64_t value) {
  if (t != nullptr) t->CountMax(c, value);
}

inline void TraceObserve(TraceSession* t, const char* series, double value) {
  if (t != nullptr) t->Observe(series, value);
}

}  // namespace convoy

#endif  // CONVOY_OBS_TRACE_H_
