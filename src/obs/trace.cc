#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <ostream>

#include "util/stats.h"

namespace convoy {

namespace {

// Session ids start at 1 so a default-initialized thread cache (id 0)
// never matches a live session.
std::atomic<uint64_t> next_session_id{1};

thread_local const char* trace_thread_label = "main";

struct CounterInfo {
  const char* name;
  bool is_max;
};

constexpr CounterInfo kCounterInfo[kNumTraceCounters] = {
    {"snapshots_clustered", false},
    {"dbscan.points_scanned", false},
    {"dbscan.neighbor_queries", false},
    {"dbscan.neighbors_visited", false},
    {"dbscan.clusters_formed", false},
    {"tracker.steps", false},
    {"tracker.candidates_offered", false},
    {"tracker.dedup_probes", false},
    {"tracker.dedup_hits", false},
    {"tracker.completed", false},
    {"tracker.live_max", true},
    {"store.grid_cache_hits", false},
    {"store.grid_cache_misses", false},
    {"engine.simplify_cache_hits", false},
    {"engine.simplify_cache_misses", false},
    {"store.ticks_built", false},
    {"store.points_built", false},
    {"filter.partitions", false},
    {"refine.units", false},
    {"sink.convoys_emitted", false},
    {"server.batches_accepted", false},
    {"server.batches_rejected", false},
    {"server.ring_high_water", true},
    {"server.events_emitted", false},
    {"server.active_sessions_max", true},
    {"filter.polylines", false},
    {"filter.segment_tests", false},
    {"filter.mbr_rejects", false},
    {"wal.records_appended", false},
    {"wal.bytes_appended", false},
    {"wal.fsyncs", false},
    {"wal.segments_rotated", false},
    {"wal.recovered_records", false},
    {"wal.truncated_tails", false},
    {"server.idle_reaped", false},
    {"server.events_dropped", false},
    {"server.load_shed", false},
};

static_assert(kNumTraceCounters == kQueryMetricsCounters,
              "obs/metrics.h kQueryMetricsCounters must mirror TraceCounter");

}  // namespace

const char* ToString(TraceCounter c) {
  return kCounterInfo[static_cast<size_t>(c)].name;
}

bool IsMaxCounter(TraceCounter c) {
  return kCounterInfo[static_cast<size_t>(c)].is_max;
}

void SetTraceThreadLabel(const char* label) { trace_thread_label = label; }

const char* GetTraceThreadLabel() { return trace_thread_label; }

TraceSession::TraceSession()
    // Relaxed: the counter only needs uniqueness (atomic RMW guarantees
    // distinct values); it orders nothing and nobody reads it back.
    : session_id_(next_session_id.fetch_add(1, std::memory_order_relaxed)),
      origin_(std::chrono::steady_clock::now()) {}

TraceSession::~TraceSession() = default;

uint64_t TraceSession::NowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
}

TraceSession::ThreadBuf* TraceSession::LocalBuf() {
  // One cached (session, buffer) pair per thread: the common case — one
  // session alive at a time — registers once and then records lock-free.
  // A thread alternating between sessions re-registers a fresh buffer;
  // totals still merge correctly, the thread merely spans two tracks.
  thread_local uint64_t cached_session = 0;
  thread_local ThreadBuf* cached_buf = nullptr;
  if (cached_session != session_id_) {
    std::lock_guard<std::mutex> lock(mu_);
    bufs_.push_back(std::make_unique<ThreadBuf>());
    cached_buf = bufs_.back().get();
    cached_buf->track = static_cast<uint32_t>(bufs_.size() - 1);
    cached_buf->label = trace_thread_label;
    cached_session = session_id_;
  }
  return cached_buf;
}

void TraceSession::Count(TraceCounter c, uint64_t delta) {
  // Relaxed: this cell's only writer is the calling thread, and readers
  // merging mid-run accept a monotone approximation (see ThreadBuf).
  LocalBuf()->counts[static_cast<size_t>(c)].fetch_add(
      delta, std::memory_order_relaxed);
}

void TraceSession::CountMax(TraceCounter c, uint64_t value) {
  std::atomic<uint64_t>& slot = LocalBuf()->maxes[static_cast<size_t>(c)];
  // Single-writer max: a plain load-compare-store would suffice for the
  // owning thread, but the CAS keeps the cell's value transitions atomic
  // for concurrent readers (relaxed for the same reasons as Count).
  uint64_t cur = slot.load(std::memory_order_relaxed);
  while (value > cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

std::vector<double>* TraceSession::SeriesSlot(ThreadBuf* buf,
                                              const char* name) {
  // Precondition: the caller holds buf->buf_mu (sole caller is Observe).
  // Series are few (a handful of names, observed from one or two sites),
  // so a strcmp scan beats a map — and pointer identity alone would tie
  // correctness to string literal merging across translation units.
  for (auto& [existing, values] : buf->series) {
    if (existing == name || std::strcmp(existing, name) == 0) return &values;
  }
  // convoy-lint: allow-line(guarded-member) — lock held by caller, above.
  buf->series.emplace_back(name, std::vector<double>{});
  return &buf->series.back().second;
}

void TraceSession::Observe(const char* series, double value) {
  ThreadBuf* buf = LocalBuf();
  // The buffer's own mutex, not the session's: uncontended unless a
  // reader is merging this very buffer, and never shared between
  // recording threads.
  std::lock_guard<std::mutex> lock(buf->buf_mu);
  SeriesSlot(buf, series)->push_back(value);
}

void TraceSession::RecordSpan(const char* name, uint64_t start_ns,
                              uint64_t end_ns) {
  ThreadBuf* buf = LocalBuf();
  std::lock_guard<std::mutex> lock(buf->buf_mu);
  buf->events.push_back(TraceEvent{
      name, start_ns, end_ns >= start_ns ? end_ns - start_ns : 0,
      buf->track});
}

uint64_t TraceSession::counter(TraceCounter c) const {
  const size_t i = static_cast<size_t>(c);
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& buf : bufs_) {
    // Relaxed loads: exact once recorders have joined (the join is the
    // synchronization point); a monotone approximation while they run.
    total = IsMaxCounter(c)
                ? std::max(total,
                           buf->maxes[i].load(std::memory_order_relaxed))
                : total + buf->counts[i].load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<TraceEvent> TraceSession::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> merged;
  for (const auto& buf : bufs_) {
    std::lock_guard<std::mutex> buf_lock(buf->buf_mu);
    merged.insert(merged.end(), buf->events.begin(), buf->events.end());
  }
  return merged;
}

size_t TraceSession::NumTracks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bufs_.size();
}

QueryMetrics TraceSession::Metrics() const {
  QueryMetrics m;
  m.enabled = true;
  std::lock_guard<std::mutex> lock(mu_);

  for (size_t i = 0; i < kNumTraceCounters; ++i) {
    uint64_t total = 0;
    for (const auto& buf : bufs_) {
      // Relaxed loads: see counter() — exact after recorders join.
      const uint64_t cell =
          (kCounterInfo[i].is_max ? buf->maxes[i] : buf->counts[i])
              .load(std::memory_order_relaxed);
      total = kCounterInfo[i].is_max ? std::max(total, cell) : total + cell;
    }
    m.counters[i] = total;
  }

  // Span aggregates by name, map-sorted so the rendered order is stable.
  std::map<std::string, QueryMetrics::SpanAggregate> spans;
  for (const auto& buf : bufs_) {
    std::lock_guard<std::mutex> buf_lock(buf->buf_mu);
    for (const TraceEvent& e : buf->events) {
      QueryMetrics::SpanAggregate& agg = spans[e.name];
      agg.name = e.name;
      ++agg.count;
      agg.total_ms += static_cast<double>(e.dur_ns) / 1e6;
    }
  }
  m.spans.reserve(spans.size());
  for (auto& [name, agg] : spans) m.spans.push_back(std::move(agg));

  // Series merged by name across threads; Quantile sorts internally, so
  // concatenation order cannot change the summary.
  std::map<std::string, std::vector<double>> series;
  for (const auto& buf : bufs_) {
    std::lock_guard<std::mutex> buf_lock(buf->buf_mu);
    for (const auto& [name, values] : buf->series) {
      std::vector<double>& merged = series[name];
      merged.insert(merged.end(), values.begin(), values.end());
    }
  }
  m.series.reserve(series.size());
  for (auto& [name, values] : series) {
    QueryMetrics::SeriesSummary summary;
    summary.name = name;
    summary.count = values.size();
    SummaryStats stats;
    for (const double v : values) stats.Add(v);
    summary.min = stats.Min();
    summary.mean = stats.Mean();
    summary.max = stats.Max();
    summary.p50 = Quantile(values, 0.50);
    summary.p90 = Quantile(values, 0.90);
    summary.p99 = Quantile(std::move(values), 0.99);
    m.series.push_back(std::move(summary));
  }
  return m;
}

void TraceSession::WriteChromeTrace(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };
  for (const auto& buf : bufs_) {
    comma();
    // One named track (tid) per recording thread: the session thread plus
    // each ThreadPool worker that touched the trace.
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
        << buf->track << ",\"args\":{\"name\":\"" << buf->label << "-"
        << buf->track << "\"}}";
  }
  for (const auto& buf : bufs_) {
    std::lock_guard<std::mutex> buf_lock(buf->buf_mu);
    for (const TraceEvent& e : buf->events) {
      comma();
      // Complete ("X") events; ts/dur in microseconds per the trace-event
      // format. Fractional microseconds keep sub-us spans visible.
      out << "{\"name\":\"" << e.name << "\",\"cat\":\"convoy\","
          << "\"ph\":\"X\",\"pid\":1,\"tid\":" << e.track
          << ",\"ts\":" << static_cast<double>(e.start_ns) / 1e3
          << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1e3 << "}";
    }
  }
  out << (first ? "]" : "\n]") << ",\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace convoy
