#include "obs/metrics.h"

#include <ostream>
#include <sstream>

#include "obs/trace.h"

namespace convoy {

std::string QueryMetrics::ToText() const {
  std::ostringstream out;
  if (!enabled) {
    out << "analyze\n  (no trace attached — pass a TraceSession via "
           "ExecHooks::trace)\n";
    return out.str();
  }
  out << "analyze\n";
  out << "  counters:\n";
  for (size_t i = 0; i < kQueryMetricsCounters; ++i) {
    if (counters[i] == 0) continue;  // the catalog is long; show work done
    out << "    " << ToString(static_cast<TraceCounter>(i)) << ": "
        << counters[i] << "\n";
  }
  if (!spans.empty()) {
    out << "  spans (wall-clock):\n";
    for (const SpanAggregate& s : spans) {
      out << "    " << s.name << ": " << s.count << " x, " << s.total_ms
          << " ms total\n";
    }
  }
  if (!series.empty()) {
    out << "  series (wall-clock):\n";
    for (const SeriesSummary& s : series) {
      out << "    " << s.name << ": n=" << s.count << " min=" << s.min
          << " mean=" << s.mean << " p50=" << s.p50 << " p90=" << s.p90
          << " p99=" << s.p99 << " max=" << s.max << "\n";
    }
  }
  return out.str();
}

void QueryMetrics::WriteJson(std::ostream& out) const {
  out << "{\"enabled\":" << (enabled ? "true" : "false");
  out << ",\"counters\":{";
  for (size_t i = 0; i < kQueryMetricsCounters; ++i) {
    if (i > 0) out << ",";
    out << "\"" << ToString(static_cast<TraceCounter>(i))
        << "\":" << counters[i];
  }
  out << "},\"spans\":[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanAggregate& s = spans[i];
    if (i > 0) out << ",";
    out << "{\"name\":\"" << s.name << "\",\"count\":" << s.count
        << ",\"total_ms\":" << s.total_ms << "}";
  }
  out << "],\"series\":[";
  for (size_t i = 0; i < series.size(); ++i) {
    const SeriesSummary& s = series[i];
    if (i > 0) out << ",";
    out << "{\"name\":\"" << s.name << "\",\"count\":" << s.count
        << ",\"min\":" << s.min << ",\"mean\":" << s.mean
        << ",\"max\":" << s.max << ",\"p50\":" << s.p50
        << ",\"p90\":" << s.p90 << ",\"p99\":" << s.p99 << "}";
  }
  out << "]}";
}

}  // namespace convoy
