#ifndef CONVOY_OBS_METRICS_H_
#define CONVOY_OBS_METRICS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace convoy {

// Mirrors TraceCounter::kNumTraceCounters (static_assert'd in metrics.cc);
// kept as a plain constant so this header stays light enough for
// query/result_set.h to include.
inline constexpr size_t kQueryMetricsCounters = 37;

/// A merged, immutable snapshot of one execution's trace: the deterministic
/// counter totals, per-name span aggregates (wall-clock), and value-series
/// summaries (wall-clock quantiles). Produced by TraceSession::Metrics();
/// carried by ConvoyResultSet so EXPLAIN ANALYZE and the --report JSON can
/// render it after the session is gone. Copyable and self-contained.
struct QueryMetrics {
  /// False when the execution ran without a trace (the default); sinks
  /// then render nothing.
  bool enabled = false;

  /// Merged totals indexed by TraceCounter (max counters hold the high
  /// water mark). Deterministic across thread counts.
  std::array<uint64_t, kQueryMetricsCounters> counters{};

  /// Aggregated spans, sorted by name: total wall-clock per instrumented
  /// phase. Excluded from determinism checks.
  struct SpanAggregate {
    std::string name;
    uint64_t count = 0;
    double total_ms = 0.0;
  };
  std::vector<SpanAggregate> spans;

  /// Value-series summaries (per-tick latency, time-to-first-convoy,
  /// inter-emission delay, ...), sorted by name. Quantiles via
  /// util/stats.h Quantile; excluded from determinism checks.
  struct SeriesSummary {
    std::string name;
    uint64_t count = 0;
    double min = 0.0;
    double mean = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };
  std::vector<SeriesSummary> series;

  /// Counter total by TraceCounter index (bounds-unchecked enum cast lives
  /// with the callers that hold the enum; this is for rendered sinks).
  uint64_t CounterAt(size_t i) const { return counters[i]; }

  /// The EXPLAIN ANALYZE block: non-zero counters, span totals, and series
  /// summaries as indented text (appended to QueryPlan::Explain()).
  std::string ToText() const;

  /// The metrics JSON object (no surrounding key): {"counters":{...},
  /// "spans":[...],"series":[...]}. Stable field order, no JSON library —
  /// the same discipline as io/result_io.cc.
  void WriteJson(std::ostream& out) const;
};

}  // namespace convoy

#endif  // CONVOY_OBS_METRICS_H_
