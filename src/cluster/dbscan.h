#ifndef CONVOY_CLUSTER_DBSCAN_H_
#define CONVOY_CLUSTER_DBSCAN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/grid_index.h"
#include "geom/point.h"

namespace convoy {

/// Result of a snapshot clustering: each cluster is a list of input indices;
/// points in no cluster are DBSCAN noise.
struct Clustering {
  std::vector<std::vector<size_t>> clusters;

  /// True if index i belongs to some cluster (computed on demand in tests).
  size_t NumClusteredPoints() const {
    size_t n = 0;
    for (const auto& c : clusters) n += c.size();
    return n;
  }
};

/// Work tallies of the most recent Dbscan run through a scratch arena —
/// the raw material for the observability layer's deterministic counters
/// (obs/trace.h). Derived purely from the input and the expansion order,
/// so for a given snapshot the tally is identical at every thread count.
/// Maintained as plain local accumulators inside the scan (two integer
/// adds per neighborhood query — far below measurement noise) and stored
/// once per run, so no per-point branch on any trace state is ever paid.
struct DbscanTally {
  uint64_t points_scanned = 0;    ///< n — points labeled this run
  uint64_t neighbor_queries = 0;  ///< grid neighborhood lookups issued
  uint64_t neighbors_visited = 0; ///< neighbor list entries returned
  uint64_t clusters_formed = 0;   ///< clusters in the result
};

/// Reusable working set for Dbscan: the label array, the neighbor buffer,
/// and the BFS frontier (a vector drained front-to-back — FIFO order, same
/// expansion as the historical deque, without its per-node allocation).
/// Also carries a GridIndex arena for callers that build a fresh index per
/// snapshot (ClusterSnapshot). A default-constructed instance is ready to
/// use; contents carry no information between calls — every run fully
/// resets what it reads — so reuse can never change results, only spare
/// the per-snapshot allocations that dominate small-snapshot ticks.
struct DbscanScratch {
  std::vector<uint32_t> labels;
  std::vector<size_t> neighbors;
  std::vector<size_t> frontier;
  GridIndex grid;
  /// Overwritten by every run through this scratch; callers that trace
  /// read it right after the call (core/cmc.cc, core/streaming.cc).
  DbscanTally tally;
};

/// DBSCAN (Ester et al. 1996), the snapshot clustering the paper's density
/// connection is defined through (Definition 2).
///
/// A point is a *core* point when its e-neighborhood (which includes the
/// point itself) holds at least `min_pts` points. Clusters are the maximal
/// density-connected sets: connected components of core points under the
/// "within e" relation, plus every border point reachable from a core point.
/// Border points equidistant to several clusters join the first cluster that
/// reaches them (the classic DBSCAN tie-break); noise points appear in no
/// cluster.
///
/// Runs on a uniform-grid index: expected O(N) neighborhood cost for the
/// near-uniform snapshots the datasets produce, O(N^2) worst case.
Clustering Dbscan(const std::vector<Point>& points, double eps,
                  size_t min_pts);

/// Variant taking a prebuilt GridIndex over the same `points` (built with a
/// cell size >= eps). SnapshotClusters — the per-tick unit of work of CMC —
/// builds the index itself and feeds it in, so under ParallelCmc the index
/// builds run concurrently across snapshots; results are identical to the
/// index-less overload. `scratch` (optional) supplies the reusable working
/// set; without one, a call-local arena is used.
Clustering Dbscan(const std::vector<Point>& points, const GridIndex& index,
                  double eps, size_t min_pts,
                  DbscanScratch* scratch = nullptr);

/// Columnar overload over parallel coordinate arrays — the SnapshotStore's
/// per-tick structure-of-arrays layout — with a prebuilt index over the
/// same coordinates in the same order (e.g. SnapshotStore::GridFor).
/// Results are identical to the Point-vector overloads: the probe points
/// are bitwise the same and expansion order depends only on index order.
Clustering Dbscan(const double* xs, const double* ys, size_t n,
                  const GridIndex& index, double eps, size_t min_pts,
                  DbscanScratch* scratch = nullptr);

}  // namespace convoy

#endif  // CONVOY_CLUSTER_DBSCAN_H_
