#include "cluster/polyline_dbscan.h"

#include <algorithm>
#include <deque>

#include "cluster/str_tree.h"
#include "geom/distance.h"

namespace convoy {

void PartitionPolyline::FinalizeBounds() {
  bbox = Box();
  max_tolerance = 0.0;
  for (const TimedSegment& seg : segments) {
    bbox.Extend(seg.start.pos);
    bbox.Extend(seg.end.pos);
  }
  for (const double tol : tolerances) {
    max_tolerance = std::max(max_tolerance, tol);
  }
}

bool PolylinesAreNeighbors(const PartitionPolyline& q,
                           const PartitionPolyline& i,
                           const PolylineDbscanOptions& opts,
                           PolylineClusterStats* stats) {
  if (stats != nullptr) ++stats->pair_tests;

  // Lemma 2 at the polyline level: if even the closest points of the two
  // bounding boxes are farther than e plus both maximum tolerances, no
  // segment pair can qualify.
  if (opts.use_box_pruning) {
    if (Dmin(q.bbox, i.bbox) > opts.eps + q.max_tolerance + i.max_tolerance) {
      if (stats != nullptr) ++stats->box_pruned;
      return false;
    }
  }

  // Merge-scan the two time-sorted segment lists so only time-overlapping
  // pairs are examined (the omega definition ranges over exactly those).
  size_t a = 0;
  size_t b = 0;
  while (a < q.segments.size() && b < i.segments.size()) {
    const TimedSegment& sq = q.segments[a];
    const TimedSegment& si = i.segments[b];
    const TickOverlap ov = OverlapTicks(sq, si);
    if (ov.valid) {
      if (stats != nullptr) ++stats->segment_tests;
      const double bound = opts.eps + q.tolerances[a] + i.tolerances[b];
      const double dist = opts.distance == SegmentDistanceKind::kDll
                              ? DLL(sq.Spatial(), si.Spatial())
                              : DStar(sq, si);
      if (dist <= bound) return true;
    }
    // Advance the segment that ends earlier; ties advance both.
    if (sq.EndTick() < si.EndTick()) {
      ++a;
    } else if (si.EndTick() < sq.EndTick()) {
      ++b;
    } else {
      ++a;
      ++b;
    }
  }
  return false;
}

Clustering PolylineDbscan(const std::vector<PartitionPolyline>& polylines,
                          const PolylineDbscanOptions& opts,
                          PolylineClusterStats* stats) {
  Clustering result;
  const size_t n = polylines.size();
  if (n == 0) return result;

  // Partitions hold at most one polyline per object (a few hundred), so an
  // explicit adjacency table is affordable and lets the DBSCAN expansion
  // reuse each symmetric omega evaluation.
  std::vector<std::vector<size_t>> adjacency(n);
  if (opts.use_rtree && n >= 8) {
    // Candidate generation through the STR tree: by Lemma 2 a neighbor
    // pair (a, b) satisfies Dmin(box_a, box_b) <= eps + tol_a + tol_b
    // <= eps + tol_a + tol_max, so querying with that radius misses
    // nothing; PolylinesAreNeighbors re-checks each survivor exactly.
    double tol_max = 0.0;
    for (const PartitionPolyline& poly : polylines) {
      tol_max = std::max(tol_max, poly.max_tolerance);
    }
    std::vector<StrTree::Entry> entries(n);
    for (size_t i = 0; i < n; ++i) {
      entries[i] = StrTree::Entry{polylines[i].bbox,
                                  static_cast<uint32_t>(i)};
    }
    const StrTree tree(std::move(entries));
    std::vector<uint32_t> hits;
    for (size_t a = 0; a < n; ++a) {
      tree.WithinDistanceInto(
          polylines[a].bbox,
          opts.eps + polylines[a].max_tolerance + tol_max, &hits);
      for (const uint32_t b : hits) {
        if (b <= a) continue;  // each unordered pair once
        if (PolylinesAreNeighbors(polylines[a], polylines[b], opts, stats)) {
          adjacency[a].push_back(b);
          adjacency[b].push_back(a);
        }
      }
    }
  } else {
    for (size_t a = 0; a < n; ++a) {
      for (size_t b = a + 1; b < n; ++b) {
        if (PolylinesAreNeighbors(polylines[a], polylines[b], opts, stats)) {
          adjacency[a].push_back(b);
          adjacency[b].push_back(a);
        }
      }
    }
  }

  constexpr uint32_t kUnvisited = 0xFFFFFFFF;
  constexpr uint32_t kNoise = 0xFFFFFFFE;
  std::vector<uint32_t> label(n, kUnvisited);
  std::deque<size_t> frontier;

  // |NH(p)| counts p itself, mirroring the point DBSCAN.
  const auto is_core = [&](size_t p) {
    return adjacency[p].size() + 1 >= opts.min_pts;
  };

  for (size_t seed = 0; seed < n; ++seed) {
    if (label[seed] != kUnvisited) continue;
    if (!is_core(seed)) {
      label[seed] = kNoise;
      continue;
    }
    const uint32_t cluster_id = static_cast<uint32_t>(result.clusters.size());
    result.clusters.emplace_back();
    label[seed] = cluster_id;
    result.clusters.back().push_back(seed);

    frontier.assign(adjacency[seed].begin(), adjacency[seed].end());
    while (!frontier.empty()) {
      const size_t p = frontier.front();
      frontier.pop_front();
      if (label[p] == kNoise) {
        label[p] = cluster_id;  // border polyline
        result.clusters.back().push_back(p);
        continue;
      }
      if (label[p] != kUnvisited) continue;
      label[p] = cluster_id;
      result.clusters.back().push_back(p);
      if (is_core(p)) {
        for (const size_t nb : adjacency[p]) {
          if (label[nb] == kUnvisited || label[nb] == kNoise) {
            frontier.push_back(nb);
          }
        }
      }
    }
  }
  return result;
}

}  // namespace convoy
