#ifndef CONVOY_CLUSTER_POLYLINE_DBSCAN_H_
#define CONVOY_CLUSTER_POLYLINE_DBSCAN_H_

#include <cstddef>
#include <vector>

#include "cluster/dbscan.h"
#include "geom/box.h"
#include "geom/segment.h"
#include "traj/trajectory.h"

namespace convoy {

/// One object's sub-polyline inside a time partition: the line segments of
/// its simplified trajectory whose time intervals intersect the partition,
/// each with the tolerance the filter should account for (the per-segment
/// *actual* tolerance, or the global delta when the actual-tolerance
/// optimization is disabled — paper Figure 14 compares the two).
struct PartitionPolyline {
  ObjectId object = 0;
  std::vector<TimedSegment> segments;  ///< ascending, contiguous in time
  std::vector<double> tolerances;      ///< one per segment
  Box bbox;                            ///< spatial bound of all segments
  double max_tolerance = 0.0;          ///< delta_max over `tolerances`

  /// Recomputes bbox and max_tolerance from the segment lists.
  void FinalizeBounds();
};

/// Which segment-pair distance the neighborhood test uses.
enum class SegmentDistanceKind {
  kDll,    ///< spatial shortest distance DLL (CuTS, CuTS+; Lemma 1)
  kDStar,  ///< time-aware CPA distance D* (CuTS*; Lemma 3)
};

/// Statistics of one TRAJ-DBSCAN invocation, used by the pruning-ablation
/// benchmark: how often the Lemma 2 bounding-box test rejected a polyline
/// pair before any segment pair was inspected.
struct PolylineClusterStats {
  size_t pair_tests = 0;      ///< polyline pairs examined
  size_t box_pruned = 0;      ///< pairs rejected by the Lemma 2 box bound
  size_t segment_tests = 0;   ///< segment pairs whose distance was computed
  size_t mbr_rejects = 0;     ///< segment pairs rejected by the MBR bound
                              ///< (SoA path only; the reference scan has no
                              ///< segment-level prune and leaves this 0)
};

/// Options for TRAJ-DBSCAN.
struct PolylineDbscanOptions {
  double eps = 0.0;                 ///< the convoy query's e
  size_t min_pts = 1;               ///< the convoy query's m
  SegmentDistanceKind distance = SegmentDistanceKind::kDll;
  bool use_box_pruning = true;      ///< apply Lemma 2 before segment pairs

  /// Find neighbor-candidate pairs through an STR R-tree over the polyline
  /// bounding boxes instead of testing all O(P^2) pairs. The Lemma 2 bound
  /// guarantees no candidate pair is missed; results are identical either
  /// way (property-tested). Pays off once partitions hold a few hundred
  /// polylines.
  bool use_rtree = false;
};

/// The e-neighborhood test for two partition polylines: true if
/// omega(q, i) <= e, i.e. some pair of time-overlapping segments satisfies
///   dist(l'_q, l'_i) <= e + tol(l'_q) + tol(l'_i)
/// (Lemma 1 for DLL, Lemma 3 for D*). This is the condition under which the
/// original trajectories can possibly come within distance e of each other
/// at some shared tick, so keeping such pairs guarantees no false dismissal.
bool PolylinesAreNeighbors(const PartitionPolyline& q,
                           const PartitionPolyline& i,
                           const PolylineDbscanOptions& opts,
                           PolylineClusterStats* stats = nullptr);

/// TRAJ-DBSCAN (paper Section 5.2/5.3): density-connected clustering of the
/// sub-polylines of one time partition under the neighborhood test above.
/// Returns clusters of input indices; unclustered polylines are noise.
Clustering PolylineDbscan(const std::vector<PartitionPolyline>& polylines,
                          const PolylineDbscanOptions& opts,
                          PolylineClusterStats* stats = nullptr);

}  // namespace convoy

#endif  // CONVOY_CLUSTER_POLYLINE_DBSCAN_H_
