#include "cluster/grid_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "simd/dist_kernels.h"

namespace convoy {

namespace {

// Packs the two signed cell coordinates into one 64-bit key. The sign bit
// of each coordinate is flipped (offset-binary bias), which makes the
// unsigned key order agree with the numeric (cx, then cy) order — that is
// what turns one grid row of a query block into a contiguous key interval.
uint64_t PackCell(int32_t cx, int32_t cy) {
  const uint32_t bx = static_cast<uint32_t>(cx) ^ 0x80000000u;
  const uint32_t by = static_cast<uint32_t>(cy) ^ 0x80000000u;
  return (static_cast<uint64_t>(bx) << 32) | static_cast<uint64_t>(by);
}

int32_t UnpackCellX(uint64_t key) {
  return static_cast<int32_t>(static_cast<uint32_t>(key >> 32) ^ 0x80000000u);
}

int32_t UnpackCellY(uint64_t key) {
  return static_cast<int32_t>(static_cast<uint32_t>(key) ^ 0x80000000u);
}

}  // namespace

GridIndex::GridIndex(const std::vector<Point>& points, double cell_size) {
  Assign(points, cell_size);
  // One-shot build: drop the per-point key buffer so instances that live on
  // (the store's grid cache) carry only the CSR arrays.
  key_scratch_ = {};
}

GridIndex::GridIndex(const double* xs, const double* ys, size_t n,
                     double cell_size) {
  Assign(xs, ys, n, cell_size);
  key_scratch_ = {};
}

void GridIndex::Assign(const std::vector<Point>& points, double cell_size) {
  AssignImpl(points.size(), cell_size,
             [&points](size_t i) { return points[i].x; },
             [&points](size_t i) { return points[i].y; });
}

void GridIndex::Assign(const double* xs, const double* ys, size_t n,
                       double cell_size) {
  AssignImpl(n, cell_size, [xs](size_t i) { return xs[i]; },
             [ys](size_t i) { return ys[i]; });
}

template <typename XAt, typename YAt>
void GridIndex::AssignImpl(size_t n, double cell_size, XAt&& x_at,
                           YAt&& y_at) {
  n_ = n;
  cell_size_ = cell_size;
  // Degenerate cell sizes (eps = 0 queries, corrupted options) fall back to
  // a unit grid: correctness only needs *some* positive cell side, since
  // WithinRadiusInto widens its scan to cover any radius.
  if (!std::isfinite(cell_size_) || cell_size_ <= 0.0) cell_size_ = 1.0;

  // (key, index) pairs sort without gathering through a side array, and
  // pair order (key first, index second) gives ascending original index
  // within a cell — exactly the order the per-bucket push_backs of the
  // old hash layout produced, so downstream DBSCAN expansion order is
  // unchanged.
  key_scratch_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    key_scratch_[i] = {KeyFor(x_at(i), y_at(i)), static_cast<uint32_t>(i)};
  }
  std::sort(key_scratch_.begin(), key_scratch_.end());

  point_of_.resize(n);
  sx_.resize(n);
  sy_.resize(n);
  cell_keys_.clear();
  cell_starts_.clear();
  for (size_t j = 0; j < n; ++j) {
    const uint32_t p = key_scratch_[j].second;
    point_of_[j] = p;
    sx_[j] = x_at(p);
    sy_[j] = y_at(p);
    const CellKey key = key_scratch_[j].first;
    if (cell_keys_.empty() || key != cell_keys_.back()) {
      cell_keys_.push_back(key);
      cell_starts_.push_back(static_cast<uint32_t>(j));
    }
  }
  cell_starts_.push_back(static_cast<uint32_t>(n));

  // NeighborsOfInto acceleration — only worthwhile when radius-sized
  // queries take the block path at all (more than the 3x3 block's 9 cells
  // occupied; below that every query is a full scan and never reads these
  // tables).
  const size_t num_cells = cell_keys_.size();
  if (num_cells <= 9) return;
  cell_of_point_.resize(n);
  for (size_t c = 0; c < num_cells; ++c) {
    for (uint32_t j = cell_starts_[c]; j < cell_starts_[c + 1]; ++j) {
      cell_of_point_[point_of_[j]] = static_cast<uint32_t>(c);
    }
  }
  row_lo_.resize(3 * num_cells);
  row_hi_.resize(3 * num_cells);
  // For each block row dx, the target key interval of cell (cx, cy) is
  // [Pack(cx+dx, cy-1), Pack(cx+dx, cy+1)] — nondecreasing as cells ascend
  // in key order, so one merge pointer per dx resolves every cell's
  // interval in O(cells) total. Cells whose cy sits at the int32 boundary
  // (their dy range wraps, so it is not one key interval) are marked slow
  // and answered by the general path; a wrapped cx target (saturated
  // boundary cells) only breaks the pointer's monotonicity, handled by a
  // rare reset.
  for (int64_t dx = -1; dx <= 1; ++dx) {
    const size_t row = static_cast<size_t>(dx + 1);
    size_t hint = 0;
    CellKey prev_lo = 0;
    for (size_t c = 0; c < num_cells; ++c) {
      const int32_t cx = UnpackCellX(cell_keys_[c]);
      const int32_t cy = UnpackCellY(cell_keys_[c]);
      if (cy == INT32_MIN || cy == INT32_MAX) {
        row_lo_[3 * c] = kSlowCell;
        continue;
      }
      const int32_t x = static_cast<int32_t>(cx + dx);  // wraps like the
                                                        // general path
      const CellKey lo = PackCell(x, cy - 1);
      const CellKey hi = PackCell(x, cy + 1);
      if (lo < prev_lo) hint = 0;
      prev_lo = lo;
      while (hint < num_cells && cell_keys_[hint] < lo) ++hint;
      size_t end = hint;
      while (end < num_cells && cell_keys_[end] <= hi) ++end;
      row_lo_[3 * c + row] = cell_starts_[hint];
      row_hi_[3 * c + row] = cell_starts_[end];
    }
  }
}

int32_t GridIndex::CellCoord(double v) const {
  const double c = std::floor(v / cell_size_);
  // Saturate instead of invoking the UB float->int cast on out-of-range or
  // NaN values: coordinates this far out (beyond ~2^31 cells) all collapse
  // onto the boundary cell together with any probe near them, so queries
  // remain exhaustive; NaN deterministically saturates low and is then
  // rejected by the distance test (NaN compares false).
  if (!(c >= static_cast<double>(INT32_MIN))) return INT32_MIN;
  if (c >= static_cast<double>(INT32_MAX)) return INT32_MAX;
  return static_cast<int32_t>(c);
}

GridIndex::CellKey GridIndex::KeyFor(double x, double y) const {
  return PackCell(CellCoord(x), CellCoord(y));
}

std::vector<size_t> GridIndex::WithinRadius(const Point& probe,
                                            double radius) const {
  std::vector<size_t> out;
  WithinRadiusInto(probe, radius, &out);
  return out;
}

void GridIndex::ScanRange(size_t lo, size_t hi, const Point& probe, double r2,
                          std::vector<size_t>* out) const {
  // The SIMD kernel runs the exact compares of the old scalar loop here and
  // appends the same indices in the same order (see simd/dist_kernels.h).
  simd::RadiusScan(sx_.data(), sy_.data(), point_of_.data(), lo, hi, probe.x,
                   probe.y, r2, out);
}

void GridIndex::NeighborsOfInto(size_t i, const Point& probe, double radius,
                                std::vector<size_t>* out) const {
  // Every early-out below mirrors WithinRadiusInto exactly — the fast path
  // may only change *how* the 3x3 block is enumerated, never which cells
  // it covers or in what order (row-major, ascending cell-y, ascending
  // point index within a cell).
  out->clear();
  if (n_ == 0 || !(radius >= 0.0)) return;
  if (!(radius <= cell_size_)) {
    // Multi-ring radius: the precomputed intervals cover reach 1 only.
    WithinRadiusInto(probe, radius, out);
    return;
  }
  const double r2 = radius * radius;
  if (cell_keys_.size() <= 9) {
    ScanRange(0, n_, probe, r2, out);  // the general path's full-scan case
    return;
  }
  const uint32_t c = cell_of_point_[i];
  if (row_lo_[3 * c] == kSlowCell) {
    WithinRadiusInto(probe, radius, out);
    return;
  }
  ScanRange(row_lo_[3 * c], row_hi_[3 * c], probe, r2, out);
  ScanRange(row_lo_[3 * c + 1], row_hi_[3 * c + 1], probe, r2, out);
  ScanRange(row_lo_[3 * c + 2], row_hi_[3 * c + 2], probe, r2, out);
}

void GridIndex::WithinRadiusInto(const Point& probe, double radius,
                                 std::vector<size_t>* out) const {
  out->clear();
  if (n_ == 0 || !(radius >= 0.0)) return;  // NaN/negative: no hits
  const double r2 = radius * radius;
  // Reach 1 (the 3x3 block) covers radius <= cell_size; larger radii scan
  // proportionally more rings so the result stays exhaustive for every
  // radius. When the block would visit at least as many keys as the grid
  // has occupied cells (huge radii — e.g. "group everything" queries with
  // e = 1e9 — or tiny grids), scanning the whole CSR directly is both
  // cheaper and trivially exhaustive.
  const double rings = std::max(1.0, std::ceil(radius / cell_size_));
  const double block_cells = (2.0 * rings + 1.0) * (2.0 * rings + 1.0);
  if (!(block_cells < static_cast<double>(cell_keys_.size()))) {
    ScanRange(0, n_, probe, r2, out);
    return;
  }
  const int64_t reach = static_cast<int64_t>(rings);
  const int32_t cx = CellCoord(probe.x);
  const int32_t cy = CellCoord(probe.y);
  const int64_t y_lo = static_cast<int64_t>(cy) - reach;
  const int64_t y_hi = static_cast<int64_t>(cy) + reach;
  const bool y_wraps = y_lo < INT32_MIN || y_hi > INT32_MAX;
  for (int64_t dx = -reach; dx <= reach; ++dx) {
    // The historical layout computed the neighbour cell as a wrapping
    // int32 cast; keep that so saturated boundary cells resolve
    // identically.
    const int32_t x = static_cast<int32_t>(cx + dx);
    if (!y_wraps) {
      // The row's cells are consecutive keys: one binary search finds the
      // first occupied cell of the row block, then a linear walk covers
      // the rest — cells come out in ascending cell-y order, the same
      // order the historical dy loop probed them in.
      const CellKey lo = PackCell(x, static_cast<int32_t>(y_lo));
      const CellKey hi = PackCell(x, static_cast<int32_t>(y_hi));
      const auto first =
          std::lower_bound(cell_keys_.begin(), cell_keys_.end(), lo);
      for (size_t c = static_cast<size_t>(first - cell_keys_.begin());
           c < cell_keys_.size() && cell_keys_[c] <= hi; ++c) {
        ScanRange(cell_starts_[c], cell_starts_[c + 1], probe, r2, out);
      }
    } else {
      // Pathological probe at the int32 cell boundary: the y range wraps,
      // so probe each cell of the row individually with the same wrapping
      // cast the historical layout applied.
      for (int64_t dy = -reach; dy <= reach; ++dy) {
        const CellKey key = PackCell(x, static_cast<int32_t>(cy + dy));
        const auto it =
            std::lower_bound(cell_keys_.begin(), cell_keys_.end(), key);
        if (it == cell_keys_.end() || *it != key) continue;
        const size_t c = static_cast<size_t>(it - cell_keys_.begin());
        ScanRange(cell_starts_[c], cell_starts_[c + 1], probe, r2, out);
      }
    }
  }
}

}  // namespace convoy
