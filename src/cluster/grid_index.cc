#include "cluster/grid_index.h"

#include <algorithm>
#include <cmath>

namespace convoy {

namespace {

// Packs the two signed cell coordinates into one 64-bit key.
uint64_t PackCell(int32_t cx, int32_t cy) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(cx)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(cy));
}

}  // namespace

void GridIndex::Init(double cell_size) {
  cell_size_ = cell_size;
  // Degenerate cell sizes (eps = 0 queries, corrupted options) fall back to
  // a unit grid: correctness only needs *some* positive cell side, since
  // WithinRadiusInto widens its scan to cover any radius.
  if (!std::isfinite(cell_size_) || cell_size_ <= 0.0) cell_size_ = 1.0;
  cells_.reserve(points_.size());
  for (size_t i = 0; i < points_.size(); ++i) {
    cells_[KeyFor(points_[i].x, points_[i].y)].push_back(
        static_cast<uint32_t>(i));
  }
}

GridIndex::GridIndex(const std::vector<Point>& points, double cell_size)
    : points_(points) {
  Init(cell_size);
}

GridIndex::GridIndex(const double* xs, const double* ys, size_t n,
                     double cell_size) {
  points_.reserve(n);
  for (size_t i = 0; i < n; ++i) points_.emplace_back(xs[i], ys[i]);
  Init(cell_size);
}

int32_t GridIndex::CellCoord(double v) const {
  const double c = std::floor(v / cell_size_);
  // Saturate instead of invoking the UB float->int cast on out-of-range or
  // NaN values: coordinates this far out (beyond ~2^31 cells) all collapse
  // onto the boundary cell together with any probe near them, so queries
  // remain exhaustive; NaN deterministically saturates low and is then
  // rejected by the distance test (NaN compares false).
  if (!(c >= static_cast<double>(INT32_MIN))) return INT32_MIN;
  if (c >= static_cast<double>(INT32_MAX)) return INT32_MAX;
  return static_cast<int32_t>(c);
}

GridIndex::CellKey GridIndex::KeyFor(double x, double y) const {
  return PackCell(CellCoord(x), CellCoord(y));
}

std::vector<size_t> GridIndex::WithinRadius(const Point& probe,
                                            double radius) const {
  std::vector<size_t> out;
  WithinRadiusInto(probe, radius, &out);
  return out;
}

void GridIndex::WithinRadiusInto(const Point& probe, double radius,
                                 std::vector<size_t>* out) const {
  out->clear();
  if (cells_.empty() || !(radius >= 0.0)) return;  // NaN/negative: no hits
  const double r2 = radius * radius;
  // Reach 1 (the 3x3 block) covers radius <= cell_size; larger radii scan
  // proportionally more rings so the result stays exhaustive for every
  // radius. When the block would visit at least as many keys as the grid
  // has occupied cells (huge radii — e.g. "group everything" queries with
  // e = 1e9 — or tiny grids), scanning the occupied cells directly is both
  // cheaper and trivially exhaustive.
  const double rings = std::max(1.0, std::ceil(radius / cell_size_));
  const double block_cells = (2.0 * rings + 1.0) * (2.0 * rings + 1.0);
  if (!(block_cells < static_cast<double>(cells_.size()))) {
    for (const auto& [key, bucket] : cells_) {
      for (const uint32_t idx : bucket) {
        if (D2(points_[idx], probe) <= r2) out->push_back(idx);
      }
    }
    return;
  }
  const int64_t reach = static_cast<int64_t>(rings);
  const int32_t cx = CellCoord(probe.x);
  const int32_t cy = CellCoord(probe.y);
  for (int64_t dx = -reach; dx <= reach; ++dx) {
    for (int64_t dy = -reach; dy <= reach; ++dy) {
      const auto it = cells_.find(PackCell(static_cast<int32_t>(cx + dx),
                                           static_cast<int32_t>(cy + dy)));
      if (it == cells_.end()) continue;
      for (const uint32_t idx : it->second) {
        if (D2(points_[idx], probe) <= r2) out->push_back(idx);
      }
    }
  }
}

}  // namespace convoy
