#include "cluster/grid_index.h"

#include <cassert>
#include <cmath>

namespace convoy {

namespace {

// Packs the two signed cell coordinates into one 64-bit key.
uint64_t PackCell(int32_t cx, int32_t cy) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(cx)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(cy));
}

}  // namespace

GridIndex::GridIndex(const std::vector<Point>& points, double cell_size)
    : points_(points), cell_size_(cell_size) {
  assert(cell_size_ > 0.0);
  cells_.reserve(points_.size());
  for (size_t i = 0; i < points_.size(); ++i) {
    cells_[KeyFor(points_[i].x, points_[i].y)].push_back(
        static_cast<uint32_t>(i));
  }
}

GridIndex::CellKey GridIndex::KeyFor(double x, double y) const {
  const int32_t cx = static_cast<int32_t>(std::floor(x / cell_size_));
  const int32_t cy = static_cast<int32_t>(std::floor(y / cell_size_));
  return PackCell(cx, cy);
}

std::vector<size_t> GridIndex::WithinRadius(const Point& probe,
                                            double radius) const {
  std::vector<size_t> out;
  WithinRadiusInto(probe, radius, &out);
  return out;
}

void GridIndex::WithinRadiusInto(const Point& probe, double radius,
                                 std::vector<size_t>* out) const {
  assert(radius <= cell_size_ + 1e-12);
  out->clear();
  const double r2 = radius * radius;
  const int32_t cx = static_cast<int32_t>(std::floor(probe.x / cell_size_));
  const int32_t cy = static_cast<int32_t>(std::floor(probe.y / cell_size_));
  for (int32_t dx = -1; dx <= 1; ++dx) {
    for (int32_t dy = -1; dy <= 1; ++dy) {
      const auto it = cells_.find(PackCell(cx + dx, cy + dy));
      if (it == cells_.end()) continue;
      for (const uint32_t idx : it->second) {
        if (D2(points_[idx], probe) <= r2) out->push_back(idx);
      }
    }
  }
}

}  // namespace convoy
