#ifndef CONVOY_CLUSTER_POLYLINE_SOA_H_
#define CONVOY_CLUSTER_POLYLINE_SOA_H_

#include <cstdint>
#include <vector>

#include "cluster/polyline_dbscan.h"
#include "cluster/str_tree.h"
#include "simd/dist_kernels.h"
#include "simplify/simplified_trajectory.h"

namespace convoy {

/// The partition polylines of one time partition in CSR structure-of-arrays
/// form: all segments of all polylines live in one set of contiguous arrays
/// (scan order — polyline by polyline, ascending in time within each), and
/// `seg_start` delimits each polyline's slice. This is the layout the SIMD
/// distance kernels consume; semantically it carries exactly the same data
/// as a vector<PartitionPolyline> (property-tested bit-for-bit).
struct PolylineSoa {
  // Per polyline (NumPolylines() entries; seg_start has one extra).
  std::vector<ObjectId> object;
  std::vector<uint32_t> seg_start;  ///< CSR offsets into the segment arrays
  std::vector<double> bminx, bmaxx, bminy, bmaxy;  ///< polyline bounding box
  std::vector<double> ptol;                        ///< max segment tolerance

  // Per segment, global scan order.
  std::vector<double> x0, y0, x1, y1;  ///< endpoints
  std::vector<double> t0, t1;          ///< tick interval, exact doubles
  std::vector<double> sminx, smaxx, sminy, smaxy;  ///< per-segment MBR
  std::vector<double> stol;                        ///< per-segment tolerance

  size_t NumPolylines() const { return object.size(); }
  size_t NumSegments() const { return x0.size(); }

  /// Drops all content but keeps every array's capacity (arena discipline:
  /// one PolylineSoa per worker amortizes allocation across partitions).
  void Clear();

  /// Appends one segment to the open (not yet finalized) polyline.
  void PushSegment(double px0, double py0, double px1, double py1, Tick tick0,
                   Tick tick1, double tolerance);

  /// Closes the polyline whose first segment sits at index `first_segment`:
  /// records the object id, the CSR end offset, the bounding box, and the
  /// max tolerance. Requires at least one segment since the previous close.
  void FinalizePolyline(ObjectId id, size_t first_segment);

  /// The kernel-facing borrowed view of the segment arrays.
  simd::SegmentSoa SegmentView() const;
};

/// Builds the partition's polylines directly into SoA form. Selection and
/// values mirror BuildPartitionPolylines exactly: same segment ranges, same
/// degenerate single-vertex handling, same tolerance choice, and bounds that
/// are bit-identical to PartitionPolyline::FinalizeBounds.
void BuildPolylineSoa(const std::vector<SimplifiedTrajectory>& simplified,
                      Tick part_start, Tick part_end,
                      bool use_actual_tolerance, double delta_used,
                      PolylineSoa* out);

/// Reusable working set for PolylineDbscanSoa — the SoA storage itself plus
/// every per-partition buffer the clustering needs, so a worker thread that
/// processes many partitions performs O(1) allocations at steady state
/// (mirroring DbscanScratch for the point DBSCAN).
struct PolylineDbscanScratch {
  PolylineSoa soa;
  std::vector<std::vector<uint32_t>> adjacency;  ///< inner capacity retained
  std::vector<uint32_t> label;
  std::vector<uint32_t> frontier;   ///< vector-backed FIFO (head index)
  std::vector<uint32_t> survivors;  ///< box-prune sweep output buffer
  std::vector<uint32_t> hits;       ///< STR-tree query result buffer
};

/// TRAJ-DBSCAN over the SoA layout, dispatching the neighborhood tests to
/// the SIMD kernels. Produces clusters (of polyline indices) identical to
/// PolylineDbscan on the equivalent vector<PartitionPolyline> input — the
/// kernels are bit-identical to the reference merge scan, candidate pairs
/// are enumerated in the same ascending order, and the expansion replays
/// the same FIFO walk. `stats` additionally receives `mbr_rejects`, which
/// the reference path (no segment-MBR prune) leaves at zero.
Clustering PolylineDbscanSoa(const PolylineDbscanOptions& opts,
                             PolylineDbscanScratch* scratch,
                             PolylineClusterStats* stats = nullptr);

}  // namespace convoy

#endif  // CONVOY_CLUSTER_POLYLINE_SOA_H_
