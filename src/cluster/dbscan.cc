#include "cluster/dbscan.h"

namespace convoy {

namespace {

// The classic label-propagation DBSCAN, generic over how probe point i is
// fetched (row-oriented Point vector or the store's coordinate columns) so
// both overloads share one expansion order — and therefore one result.
// All working state lives in `scratch` and is fully reset here, so arena
// reuse across snapshots cannot leak information between calls.
template <typename PointAt>
Clustering DbscanImpl(size_t n, const GridIndex& index, double eps,
                      size_t min_pts, DbscanScratch& scratch,
                      PointAt&& point_at) {
  Clustering result;
  scratch.tally = DbscanTally{};
  if (n == 0) return result;
  // Local accumulators, stored into the scratch tally once at the end —
  // the observability counters cost two adds per neighborhood query, with
  // no branch on any trace state inside the scan.
  uint64_t neighbor_queries = 0;
  uint64_t neighbors_visited = 0;

  constexpr uint32_t kUnvisited = 0xFFFFFFFF;
  constexpr uint32_t kNoise = 0xFFFFFFFE;
  std::vector<uint32_t>& label = scratch.labels;
  label.assign(n, kUnvisited);

  std::vector<size_t>& neighbors = scratch.neighbors;
  // FIFO frontier as a vector with a read cursor: push_back / read `head`
  // visits nodes in exactly the order the historical deque did, minus the
  // deque's chunked allocations.
  std::vector<size_t>& frontier = scratch.frontier;

  for (size_t seed = 0; seed < n; ++seed) {
    if (label[seed] != kUnvisited) continue;
    index.NeighborsOfInto(seed, point_at(seed), eps, &neighbors);
    ++neighbor_queries;
    neighbors_visited += neighbors.size();
    if (neighbors.size() < min_pts) {
      label[seed] = kNoise;  // may be claimed later as a border point
      continue;
    }

    const uint32_t cluster_id = static_cast<uint32_t>(result.clusters.size());
    result.clusters.emplace_back();
    label[seed] = cluster_id;
    result.clusters.back().push_back(seed);

    frontier.assign(neighbors.begin(), neighbors.end());
    for (size_t head = 0; head < frontier.size(); ++head) {
      const size_t p = frontier[head];
      if (label[p] == kNoise) {
        // Border point: joins the cluster but is not expanded.
        label[p] = cluster_id;
        result.clusters.back().push_back(p);
        continue;
      }
      if (label[p] != kUnvisited) continue;
      label[p] = cluster_id;
      result.clusters.back().push_back(p);
      index.NeighborsOfInto(p, point_at(p), eps, &neighbors);
      ++neighbor_queries;
      neighbors_visited += neighbors.size();
      if (neighbors.size() >= min_pts) {
        // p is core: its whole neighborhood is density-reachable.
        for (const size_t q : neighbors) {
          if (label[q] == kUnvisited || label[q] == kNoise) {
            frontier.push_back(q);
          }
        }
      }
    }
  }
  scratch.tally.points_scanned = n;
  scratch.tally.neighbor_queries = neighbor_queries;
  scratch.tally.neighbors_visited = neighbors_visited;
  scratch.tally.clusters_formed = result.clusters.size();
  return result;
}

}  // namespace

Clustering Dbscan(const std::vector<Point>& points, double eps,
                  size_t min_pts) {
  if (points.empty()) return Clustering{};
  const GridIndex index(points, eps);
  return Dbscan(points, index, eps, min_pts);
}

Clustering Dbscan(const std::vector<Point>& points, const GridIndex& index,
                  double eps, size_t min_pts, DbscanScratch* scratch) {
  DbscanScratch local;
  return DbscanImpl(points.size(), index, eps, min_pts,
                    scratch != nullptr ? *scratch : local,
                    [&points](size_t i) -> const Point& { return points[i]; });
}

Clustering Dbscan(const double* xs, const double* ys, size_t n,
                  const GridIndex& index, double eps, size_t min_pts,
                  DbscanScratch* scratch) {
  DbscanScratch local;
  return DbscanImpl(n, index, eps, min_pts,
                    scratch != nullptr ? *scratch : local,
                    [xs, ys](size_t i) { return Point(xs[i], ys[i]); });
}

}  // namespace convoy
