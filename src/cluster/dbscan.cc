#include "cluster/dbscan.h"

#include <deque>

#include "cluster/grid_index.h"

namespace convoy {

namespace {

// The classic label-propagation DBSCAN, generic over how probe point i is
// fetched (row-oriented Point vector or the store's coordinate columns) so
// both overloads share one expansion order — and therefore one result.
template <typename PointAt>
Clustering DbscanImpl(size_t n, const GridIndex& index, double eps,
                      size_t min_pts, PointAt&& point_at);

}  // namespace

Clustering Dbscan(const std::vector<Point>& points, double eps,
                  size_t min_pts) {
  if (points.empty()) return Clustering{};
  const GridIndex index(points, eps);
  return Dbscan(points, index, eps, min_pts);
}

Clustering Dbscan(const std::vector<Point>& points, const GridIndex& index,
                  double eps, size_t min_pts) {
  return DbscanImpl(points.size(), index, eps, min_pts,
                    [&points](size_t i) -> const Point& { return points[i]; });
}

Clustering Dbscan(const double* xs, const double* ys, size_t n,
                  const GridIndex& index, double eps, size_t min_pts) {
  return DbscanImpl(n, index, eps, min_pts,
                    [xs, ys](size_t i) { return Point(xs[i], ys[i]); });
}

namespace {

template <typename PointAt>
Clustering DbscanImpl(size_t n, const GridIndex& index, double eps,
                      size_t min_pts, PointAt&& point_at) {
  Clustering result;
  if (n == 0) return result;

  constexpr uint32_t kUnvisited = 0xFFFFFFFF;
  constexpr uint32_t kNoise = 0xFFFFFFFE;
  std::vector<uint32_t> label(n, kUnvisited);

  std::vector<size_t> neighbors;
  std::deque<size_t> frontier;

  for (size_t seed = 0; seed < n; ++seed) {
    if (label[seed] != kUnvisited) continue;
    index.WithinRadiusInto(point_at(seed), eps, &neighbors);
    if (neighbors.size() < min_pts) {
      label[seed] = kNoise;  // may be claimed later as a border point
      continue;
    }

    const uint32_t cluster_id = static_cast<uint32_t>(result.clusters.size());
    result.clusters.emplace_back();
    label[seed] = cluster_id;
    result.clusters.back().push_back(seed);

    frontier.assign(neighbors.begin(), neighbors.end());
    while (!frontier.empty()) {
      const size_t p = frontier.front();
      frontier.pop_front();
      if (label[p] == kNoise) {
        // Border point: joins the cluster but is not expanded.
        label[p] = cluster_id;
        result.clusters.back().push_back(p);
        continue;
      }
      if (label[p] != kUnvisited) continue;
      label[p] = cluster_id;
      result.clusters.back().push_back(p);
      index.WithinRadiusInto(point_at(p), eps, &neighbors);
      if (neighbors.size() >= min_pts) {
        // p is core: its whole neighborhood is density-reachable.
        for (const size_t q : neighbors) {
          if (label[q] == kUnvisited || label[q] == kNoise) {
            frontier.push_back(q);
          }
        }
      }
    }
  }
  return result;
}

}  // namespace

}  // namespace convoy
