#ifndef CONVOY_CLUSTER_GRID_INDEX_H_
#define CONVOY_CLUSTER_GRID_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geom/point.h"

namespace convoy {

/// Uniform-grid spatial index over a fixed set of points, supporting
/// e-neighborhood queries (the core operation of DBSCAN, paper Section 5.2).
///
/// Cell side equals the query radius, so a radius query inspects at most the
/// 3x3 block of cells around the probe. This gives the O(N log N)-style
/// behaviour the paper attributes to "DBSCAN with a spatial index" without
/// pulling in an R-tree; snapshot point sets are rebuilt every timestamp, so
/// build cost matters as much as query cost.
class GridIndex {
 public:
  /// Builds the index over `points` with cell side `cell_size` (> 0).
  GridIndex(const std::vector<Point>& points, double cell_size);

  /// Returns the indices of all points within distance `radius` of `probe`
  /// (inclusive). `radius` must be <= cell_size for the 3x3 scan to be
  /// exhaustive; this is asserted in debug builds.
  std::vector<size_t> WithinRadius(const Point& probe, double radius) const;

  /// Appends the result of WithinRadius to `out` (no allocation churn in
  /// DBSCAN's inner loop).
  void WithinRadiusInto(const Point& probe, double radius,
                        std::vector<size_t>* out) const;

  size_t NumPoints() const { return points_.size(); }

 private:
  using CellKey = uint64_t;
  CellKey KeyFor(double x, double y) const;

  std::vector<Point> points_;
  double cell_size_;
  std::unordered_map<CellKey, std::vector<uint32_t>> cells_;
};

}  // namespace convoy

#endif  // CONVOY_CLUSTER_GRID_INDEX_H_
