#ifndef CONVOY_CLUSTER_GRID_INDEX_H_
#define CONVOY_CLUSTER_GRID_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "geom/point.h"

namespace convoy {

/// Uniform-grid spatial index over a fixed set of points, supporting
/// e-neighborhood queries (the core operation of DBSCAN, paper Section 5.2).
///
/// Cell side equals the query radius, so a radius query inspects at most the
/// 3x3 block of cells around the probe. This gives the O(N log N)-style
/// behaviour the paper attributes to "DBSCAN with a spatial index" without
/// pulling in an R-tree; snapshot point sets are rebuilt every timestamp, so
/// build cost matters as much as query cost.
///
/// Layout: a flat CSR over the sorted occupied-cell keys — one contiguous
/// array of point indices grouped by cell (ascending within each cell) with
/// the point coordinates copied into the same order. Building is one sort
/// of (cell key, point index) pairs instead of a hash insert per point. A
/// general radius query probes whole grid rows with one binary search each
/// (the cells of a row are consecutive keys) and then distance-tests
/// coordinates it reads linearly; the DBSCAN query shape (NeighborsOfInto:
/// probe == an indexed point, radius <= cell size) skips even those — each
/// cell's 3x3 block is precomputed at build time as three contiguous CSR
/// intervals. Query answers — including result order — are identical to
/// the historical unordered_map-of-buckets layout on the 3x3/multi-ring
/// path; the huge-radius fallback scan enumerates cells in sorted key
/// order (the hash layout scanned them in unspecified bucket order).
class GridIndex {
 public:
  /// Empty index (no points); Assign to populate. Exists so scratch arenas
  /// can hold a reusable instance.
  GridIndex() = default;

  /// Builds the index over `points` with cell side `cell_size`. A
  /// non-positive or non-finite `cell_size` (e.g. a DBSCAN eps of 0, which
  /// "exact coincidence" queries legitimately use) falls back to a unit
  /// cell — queries stay exhaustive, only their cost changes.
  GridIndex(const std::vector<Point>& points, double cell_size);

  /// Columnar overload: the same index built from parallel coordinate
  /// arrays (the SnapshotStore's per-tick layout). Internal state — and
  /// therefore every query answer, including result order — is identical
  /// to the Point-vector constructor over the same coordinates in the
  /// same order.
  GridIndex(const double* xs, const double* ys, size_t n, double cell_size);

  /// Rebuilds the index in place, reusing the CSR arrays' capacity — the
  /// arena path for callers that build one index per snapshot in a hot
  /// loop (ClusterSnapshot). State after Assign is identical to a freshly
  /// constructed index over the same input.
  void Assign(const double* xs, const double* ys, size_t n, double cell_size);
  void Assign(const std::vector<Point>& points, double cell_size);

  /// Returns the indices of all points within distance `radius` of `probe`
  /// (inclusive). Radii up to cell_size scan the 3x3 block around the
  /// probe; larger radii automatically widen to the multi-ring block of
  /// ceil(radius / cell_size) cells, so the result is exhaustive for every
  /// radius — a radius > cell_size costs more, it is never silently
  /// incomplete.
  std::vector<size_t> WithinRadius(const Point& probe, double radius) const;

  /// Appends the result of WithinRadius to `out` (no allocation churn in
  /// DBSCAN's inner loop).
  void WithinRadiusInto(const Point& probe, double radius,
                        std::vector<size_t>* out) const;

  /// WithinRadiusInto for a probe that *is* indexed point `i` — DBSCAN's
  /// only query shape. `probe` must be the indexed coordinates of point
  /// `i` (the caller owns the point arrays; passing them back avoids an
  /// indirection here). Output — content and order — is exactly
  /// WithinRadiusInto(probe, radius, out); the speedup is structural: for
  /// radius <= cell_size the point's 3x3 block was precomputed at build
  /// time as three contiguous CSR intervals (cells of one block row are
  /// consecutive keys, and consecutive cells hold consecutive point
  /// ranges), so the query is three linear scans with no cell lookups at
  /// all. Larger radii and degenerate grids fall through to the general
  /// path.
  void NeighborsOfInto(size_t i, const Point& probe, double radius,
                       std::vector<size_t>* out) const;

  size_t NumPoints() const { return n_; }

  /// Number of occupied grid cells (distinct cell keys).
  size_t NumCells() const { return cell_keys_.size(); }

  /// The index's memory footprint in array slots (one slot per element of
  /// the CSR arrays — comparable to the SnapshotStore's columnar-slot
  /// unit). The store's grid cache budgets on this, so cached grids are
  /// charged for what they actually hold rather than a per-point proxy.
  size_t FootprintSlots() const {
    return sx_.size() + sy_.size() + point_of_.size() + cell_keys_.size() +
           cell_starts_.size() + key_scratch_.size() + cell_of_point_.size() +
           row_lo_.size() + row_hi_.size();
  }

 private:
  using CellKey = uint64_t;
  /// Shared build: applies the degenerate-cell-size fallback and fills the
  /// CSR arrays, generic over how coordinate i is fetched so the
  /// row-oriented and columnar entry points cannot drift apart (their
  /// identical internal state is what the store-vs-legacy parity contract
  /// rests on). Defined in the .cc; instantiated only there.
  template <typename XAt, typename YAt>
  void AssignImpl(size_t n, double cell_size, XAt&& x_at, YAt&& y_at);
  CellKey KeyFor(double x, double y) const;
  int32_t CellCoord(double v) const;
  /// Distance-tests CSR positions [lo, hi) against the probe and appends
  /// the matching original point indices to out.
  void ScanRange(size_t lo, size_t hi, const Point& probe, double r2,
                 std::vector<size_t>* out) const;

  size_t n_ = 0;
  double cell_size_ = 1.0;
  /// Sorted unique keys of the occupied cells. Keys order rows by cell-x
  /// and, within a row, by cell-y (sign-bit-biased packing, see PackCell),
  /// so one grid row of a query block is a contiguous key interval.
  std::vector<CellKey> cell_keys_;
  /// CSR offsets: cell c covers point_of_[cell_starts_[c], cell_starts_[c+1]).
  std::vector<uint32_t> cell_starts_;
  /// Original point indices grouped by cell, ascending within each cell.
  std::vector<uint32_t> point_of_;
  /// Point coordinates permuted into point_of_ order: the query inner loop
  /// reads them linearly instead of gathering through point_of_.
  std::vector<double> sx_, sy_;
  /// Per-point (cell key, point index) pairs, kept between Assign calls
  /// as build scratch; the one-shot constructors release it (cached store
  /// grids should not carry build buffers).
  std::vector<std::pair<CellKey, uint32_t>> key_scratch_;

  /// NeighborsOfInto acceleration, built only when the grid has more than
  /// 9 occupied cells (smaller grids answer every query with the full
  /// scan): for each point its cell index, and for each cell the three
  /// contiguous CSR point intervals covering its 3x3 block (one per block
  /// row dx in {-1, 0, 1}; slot 3*cell + dx + 1). row_lo_[3*cell] ==
  /// kSlowCell marks cells at the int32 coordinate boundary, where block
  /// rows are not key-contiguous — those fall back to the general path.
  static constexpr uint32_t kSlowCell = 0xFFFFFFFFu;
  std::vector<uint32_t> cell_of_point_;
  std::vector<uint32_t> row_lo_, row_hi_;
};

}  // namespace convoy

#endif  // CONVOY_CLUSTER_GRID_INDEX_H_
