#ifndef CONVOY_CLUSTER_GRID_INDEX_H_
#define CONVOY_CLUSTER_GRID_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geom/point.h"

namespace convoy {

/// Uniform-grid spatial index over a fixed set of points, supporting
/// e-neighborhood queries (the core operation of DBSCAN, paper Section 5.2).
///
/// Cell side equals the query radius, so a radius query inspects at most the
/// 3x3 block of cells around the probe. This gives the O(N log N)-style
/// behaviour the paper attributes to "DBSCAN with a spatial index" without
/// pulling in an R-tree; snapshot point sets are rebuilt every timestamp, so
/// build cost matters as much as query cost.
class GridIndex {
 public:
  /// Builds the index over `points` with cell side `cell_size`. A
  /// non-positive or non-finite `cell_size` (e.g. a DBSCAN eps of 0, which
  /// "exact coincidence" queries legitimately use) falls back to a unit
  /// cell — queries stay exhaustive, only their cost changes.
  GridIndex(const std::vector<Point>& points, double cell_size);

  /// Columnar overload: the same index built from parallel coordinate
  /// arrays (the SnapshotStore's per-tick layout). Internal state — and
  /// therefore every query answer, including result order — is identical
  /// to the Point-vector constructor over the same coordinates in the
  /// same order.
  GridIndex(const double* xs, const double* ys, size_t n, double cell_size);

  /// Returns the indices of all points within distance `radius` of `probe`
  /// (inclusive). Radii up to cell_size scan the 3x3 block around the
  /// probe; larger radii automatically widen to the multi-ring block of
  /// ceil(radius / cell_size) cells, so the result is exhaustive for every
  /// radius — a radius > cell_size costs more, it is never silently
  /// incomplete.
  std::vector<size_t> WithinRadius(const Point& probe, double radius) const;

  /// Appends the result of WithinRadius to `out` (no allocation churn in
  /// DBSCAN's inner loop).
  void WithinRadiusInto(const Point& probe, double radius,
                        std::vector<size_t>* out) const;

  size_t NumPoints() const { return points_.size(); }

 private:
  using CellKey = uint64_t;
  /// Shared constructor tail: applies the degenerate-cell-size fallback
  /// and fills the cell buckets from points_, so the row-oriented and
  /// columnar constructors cannot drift apart (their identical internal
  /// state is what the store-vs-legacy parity contract rests on).
  void Init(double cell_size);
  CellKey KeyFor(double x, double y) const;
  int32_t CellCoord(double v) const;

  std::vector<Point> points_;
  double cell_size_;
  std::unordered_map<CellKey, std::vector<uint32_t>> cells_;
};

}  // namespace convoy

#endif  // CONVOY_CLUSTER_GRID_INDEX_H_
