#ifndef CONVOY_CLUSTER_STR_TREE_H_
#define CONVOY_CLUSTER_STR_TREE_H_

#include <cstdint>
#include <vector>

#include "geom/box.h"

namespace convoy {

/// A static, bulk-loaded R-tree (Sort-Tile-Recursive packing) over
/// rectangles. The paper's complexity discussion assumes a spatial index
/// brings the e-neighborhood search of the clustering step from O(N^2) to
/// O(N log N); this tree is that index for the filter step's polyline
/// bounding boxes: a `WithinDistance` query returns every entry whose box
/// could be within the Lemma 2 bound of the probe box.
///
/// The tree is immutable after construction — partitions are rebuilt every
/// filter round, so bulk-load cost matters more than update support (same
/// trade-off as GridIndex for points).
class StrTree {
 public:
  struct Entry {
    Box box;
    uint32_t id = 0;
  };

  /// Bulk-loads the tree. `node_capacity` is the fan-out (>= 2).
  explicit StrTree(std::vector<Entry> entries, size_t node_capacity = 16);

  /// Appends the ids of all entries whose box has Dmin(entry, probe) <=
  /// `distance` to `out` (cleared first). Exact: no false negatives, and
  /// every returned id really satisfies the predicate.
  void WithinDistanceInto(const Box& probe, double distance,
                          std::vector<uint32_t>* out) const;

  /// Convenience wrapper returning a fresh vector.
  std::vector<uint32_t> WithinDistance(const Box& probe,
                                       double distance) const;

  size_t Size() const { return num_entries_; }

  /// Height of the tree (0 for an empty tree, 1 for a single leaf level).
  size_t Height() const { return height_; }

 private:
  struct Node {
    Box box;
    // Children are a contiguous range in `nodes_` (internal) or in
    // `entries_` (leaf).
    uint32_t first = 0;
    uint32_t count = 0;
    bool leaf = true;
  };

  std::vector<Entry> entries_;
  std::vector<Node> nodes_;
  uint32_t root_ = 0;
  size_t num_entries_ = 0;
  size_t height_ = 0;
};

}  // namespace convoy

#endif  // CONVOY_CLUSTER_STR_TREE_H_
