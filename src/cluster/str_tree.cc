#include "cluster/str_tree.h"

#include <algorithm>
#include <cmath>

namespace convoy {

namespace {

double CenterX(const Box& b) { return 0.5 * (b.min().x + b.max().x); }
double CenterY(const Box& b) { return 0.5 * (b.min().y + b.max().y); }

}  // namespace

StrTree::StrTree(std::vector<Entry> entries, size_t node_capacity)
    : entries_(std::move(entries)), num_entries_(entries_.size()) {
  if (node_capacity < 2) node_capacity = 2;
  if (entries_.empty()) return;

  // --- Sort-Tile-Recursive leaf packing ------------------------------------
  // Sort by x-center, cut into vertical slabs of ~sqrt(n/cap) leaves each,
  // sort each slab by y-center, emit runs of `node_capacity`.
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              return CenterX(a.box) < CenterX(b.box);
            });
  const size_t n = entries_.size();
  const size_t num_leaves =
      (n + node_capacity - 1) / node_capacity;
  const size_t slabs = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const size_t slab_size =
      ((num_leaves + slabs - 1) / slabs) * node_capacity;

  for (size_t slab_start = 0; slab_start < n; slab_start += slab_size) {
    const size_t slab_end = std::min(n, slab_start + slab_size);
    std::sort(entries_.begin() + static_cast<long>(slab_start),
              entries_.begin() + static_cast<long>(slab_end),
              [](const Entry& a, const Entry& b) {
                return CenterY(a.box) < CenterY(b.box);
              });
    for (size_t i = slab_start; i < slab_end; i += node_capacity) {
      Node leaf;
      leaf.leaf = true;
      leaf.first = static_cast<uint32_t>(i);
      leaf.count = static_cast<uint32_t>(
          std::min(node_capacity, slab_end - i));
      for (uint32_t c = 0; c < leaf.count; ++c) {
        leaf.box.Extend(entries_[leaf.first + c].box);
      }
      nodes_.push_back(leaf);
    }
  }
  height_ = 1;

  // --- Build upper levels by packing runs of children -----------------------
  size_t level_first = 0;
  size_t level_count = nodes_.size();
  while (level_count > 1) {
    const size_t next_first = nodes_.size();
    for (size_t i = 0; i < level_count; i += node_capacity) {
      Node inner;
      inner.leaf = false;
      inner.first = static_cast<uint32_t>(level_first + i);
      inner.count = static_cast<uint32_t>(
          std::min(node_capacity, level_count - i));
      for (uint32_t c = 0; c < inner.count; ++c) {
        inner.box.Extend(nodes_[inner.first + c].box);
      }
      nodes_.push_back(inner);
    }
    level_first = next_first;
    level_count = nodes_.size() - next_first;
    ++height_;
  }
  root_ = static_cast<uint32_t>(nodes_.size() - 1);
}

void StrTree::WithinDistanceInto(const Box& probe, double distance,
                                 std::vector<uint32_t>* out) const {
  out->clear();
  if (entries_.empty()) return;
  // Iterative DFS with a small explicit stack.
  std::vector<uint32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (Dmin(node.box, probe) > distance) continue;
    if (node.leaf) {
      for (uint32_t c = 0; c < node.count; ++c) {
        const Entry& entry = entries_[node.first + c];
        if (Dmin(entry.box, probe) <= distance) out->push_back(entry.id);
      }
    } else {
      for (uint32_t c = 0; c < node.count; ++c) {
        stack.push_back(node.first + c);
      }
    }
  }
}

std::vector<uint32_t> StrTree::WithinDistance(const Box& probe,
                                              double distance) const {
  std::vector<uint32_t> out;
  WithinDistanceInto(probe, distance, &out);
  return out;
}

}  // namespace convoy
