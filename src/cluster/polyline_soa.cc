#include "cluster/polyline_soa.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "geom/point.h"

namespace convoy {

void PolylineSoa::Clear() {
  object.clear();
  seg_start.clear();
  bminx.clear();
  bmaxx.clear();
  bminy.clear();
  bmaxy.clear();
  ptol.clear();
  x0.clear();
  y0.clear();
  x1.clear();
  y1.clear();
  t0.clear();
  t1.clear();
  sminx.clear();
  smaxx.clear();
  sminy.clear();
  smaxy.clear();
  stol.clear();
}

void PolylineSoa::PushSegment(double px0, double py0, double px1, double py1,
                              Tick tick0, Tick tick1, double tolerance) {
  x0.push_back(px0);
  y0.push_back(py0);
  x1.push_back(px1);
  y1.push_back(py1);
  t0.push_back(static_cast<double>(tick0));
  t1.push_back(static_cast<double>(tick1));
  sminx.push_back(std::min(px0, px1));
  smaxx.push_back(std::max(px0, px1));
  sminy.push_back(std::min(py0, py1));
  smaxy.push_back(std::max(py0, py1));
  stol.push_back(tolerance);
}

void PolylineSoa::FinalizePolyline(ObjectId id, size_t first_segment) {
  object.push_back(id);
  seg_start.push_back(static_cast<uint32_t>(x0.size()));
  // min over {min(x0,x1)} equals the min over all endpoints Box::Extend
  // takes — same doubles, so the bounds match FinalizeBounds bit-for-bit.
  double pminx = std::numeric_limits<double>::infinity();
  double pmaxx = -std::numeric_limits<double>::infinity();
  double pminy = std::numeric_limits<double>::infinity();
  double pmaxy = -std::numeric_limits<double>::infinity();
  double tol = 0.0;
  for (size_t s = first_segment; s < x0.size(); ++s) {
    pminx = std::min(pminx, sminx[s]);
    pmaxx = std::max(pmaxx, smaxx[s]);
    pminy = std::min(pminy, sminy[s]);
    pmaxy = std::max(pmaxy, smaxy[s]);
    tol = std::max(tol, stol[s]);
  }
  bminx.push_back(pminx);
  bmaxx.push_back(pmaxx);
  bminy.push_back(pminy);
  bmaxy.push_back(pmaxy);
  ptol.push_back(tol);
}

simd::SegmentSoa PolylineSoa::SegmentView() const {
  simd::SegmentSoa view;
  view.x0 = x0.data();
  view.y0 = y0.data();
  view.x1 = x1.data();
  view.y1 = y1.data();
  view.t0 = t0.data();
  view.t1 = t1.data();
  view.minx = sminx.data();
  view.maxx = smaxx.data();
  view.miny = sminy.data();
  view.maxy = smaxy.data();
  view.tol = stol.data();
  return view;
}

void BuildPolylineSoa(const std::vector<SimplifiedTrajectory>& simplified,
                      Tick part_start, Tick part_end,
                      bool use_actual_tolerance, double delta_used,
                      PolylineSoa* out) {
  out->Clear();
  out->seg_start.push_back(0);
  for (const SimplifiedTrajectory& simp : simplified) {
    const size_t first_segment = out->x0.size();
    if (simp.NumSegments() == 0) {
      // Single-sample trajectory: a degenerate zero-length segment keeps
      // the object visible to the filter (same as BuildPartitionPolylines).
      if (simp.NumVertices() != 1) continue;
      const TimedPoint& v = simp.vertices().front();
      if (v.t < part_start || v.t > part_end) continue;
      out->PushSegment(v.pos.x, v.pos.y, v.pos.x, v.pos.y, v.t, v.t, 0.0);
    } else {
      const auto range = simp.SegmentsIntersecting(part_start, part_end);
      if (!range.has_value()) continue;
      const std::vector<TimedPoint>& verts = simp.vertices();
      for (size_t s = range->first; s <= range->second; ++s) {
        const TimedPoint& a = verts[s];
        const TimedPoint& b = verts[s + 1];
        out->PushSegment(a.pos.x, a.pos.y, b.pos.x, b.pos.y, a.t, b.t,
                         use_actual_tolerance ? simp.SegmentTolerance(s)
                                              : delta_used);
      }
    }
    out->FinalizePolyline(simp.id(), first_segment);
  }
}

Clustering PolylineDbscanSoa(const PolylineDbscanOptions& opts,
                             PolylineDbscanScratch* scratch,
                             PolylineClusterStats* stats) {
  Clustering result;
  const PolylineSoa& soa = scratch->soa;
  const size_t n = soa.NumPolylines();
  if (n == 0) return result;

  const simd::SegmentSoa segs = soa.SegmentView();
  size_t pair_tests = 0;
  size_t box_pruned = 0;
  simd::PairCounters pair_counters;
  const auto qualify = [&](size_t a, size_t b) {
    return simd::PairSegmentsQualify(
        segs, soa.seg_start[a], soa.seg_start[a + 1], soa.seg_start[b],
        soa.seg_start[b + 1], opts.eps,
        opts.distance == SegmentDistanceKind::kDStar,
        /*mbr_prune=*/opts.use_box_pruning, &pair_counters);
  };

  // Capacity-retaining adjacency reset (inner clear keeps each vector's
  // backing store across partitions).
  if (scratch->adjacency.size() < n) scratch->adjacency.resize(n);
  std::vector<std::vector<uint32_t>>& adjacency = scratch->adjacency;
  for (size_t i = 0; i < n; ++i) adjacency[i].clear();

  if (opts.use_rtree && n >= 8) {
    // STR-tree candidate generation (see PolylineDbscan). Hits stay in
    // tree-traversal order — the reference iterates them unsorted, and the
    // adjacency order feeds the expansion FIFO, so sorting here would
    // reorder cluster members relative to the reference.
    double tol_max = 0.0;
    for (size_t i = 0; i < n; ++i) tol_max = std::max(tol_max, soa.ptol[i]);
    std::vector<StrTree::Entry> entries(n);
    for (size_t i = 0; i < n; ++i) {
      entries[i] = StrTree::Entry{
          Box(Point{soa.bminx[i], soa.bminy[i]},
              Point{soa.bmaxx[i], soa.bmaxy[i]}),
          static_cast<uint32_t>(i)};
    }
    const StrTree tree(std::move(entries));
    std::vector<uint32_t>& hits = scratch->hits;
    for (size_t a = 0; a < n; ++a) {
      tree.WithinDistanceInto(Box(Point{soa.bminx[a], soa.bminy[a]},
                                  Point{soa.bmaxx[a], soa.bmaxy[a]}),
                              opts.eps + soa.ptol[a] + tol_max, &hits);
      for (const uint32_t b : hits) {
        if (b <= a) continue;  // each unordered pair once
        ++pair_tests;
        bool neighbors = false;
        if (opts.use_box_pruning &&
            simd::PolylineBoxPruned(
                soa.bminx[a], soa.bmaxx[a], soa.bminy[a], soa.bmaxy[a],
                soa.bminx[b], soa.bmaxx[b], soa.bminy[b], soa.bmaxy[b],
                opts.eps + soa.ptol[a] + soa.ptol[b])) {
          ++box_pruned;
        } else {
          neighbors = qualify(a, b);
        }
        if (neighbors) {
          adjacency[a].push_back(b);
          adjacency[b].push_back(static_cast<uint32_t>(a));
        }
      }
    }
  } else if (opts.use_box_pruning) {
    // Lemma 2 sweep over the contiguous box arrays, then exact tests on the
    // survivors — the hot path the SIMD box kernel accelerates.
    std::vector<uint32_t>& survivors = scratch->survivors;
    if (survivors.size() < n) survivors.resize(n);
    for (size_t a = 0; a + 1 < n; ++a) {
      const uint32_t count = simd::BoxPruneSweep(
          soa.bminx.data(), soa.bmaxx.data(), soa.bminy.data(),
          soa.bmaxy.data(), soa.ptol.data(), static_cast<uint32_t>(a + 1),
          static_cast<uint32_t>(n), soa.bminx[a], soa.bmaxx[a], soa.bminy[a],
          soa.bmaxy[a], opts.eps + soa.ptol[a], survivors.data());
      pair_tests += n - 1 - a;
      box_pruned += (n - 1 - a) - count;
      for (uint32_t s = 0; s < count; ++s) {
        const uint32_t b = survivors[s];
        if (qualify(a, b)) {
          adjacency[a].push_back(b);
          adjacency[b].push_back(static_cast<uint32_t>(a));
        }
      }
    }
  } else {
    for (size_t a = 0; a + 1 < n; ++a) {
      for (size_t b = a + 1; b < n; ++b) {
        ++pair_tests;
        if (qualify(a, b)) {
          adjacency[a].push_back(static_cast<uint32_t>(b));
          adjacency[b].push_back(static_cast<uint32_t>(a));
        }
      }
    }
  }

  // Expansion: the same FIFO walk as PolylineDbscan, over scratch-backed
  // label/frontier storage (a vector with a head index is deque order).
  constexpr uint32_t kUnvisited = 0xFFFFFFFF;
  constexpr uint32_t kNoise = 0xFFFFFFFE;
  std::vector<uint32_t>& label = scratch->label;
  label.assign(n, kUnvisited);
  std::vector<uint32_t>& frontier = scratch->frontier;

  const auto is_core = [&](size_t p) {
    return adjacency[p].size() + 1 >= opts.min_pts;
  };

  for (size_t seed = 0; seed < n; ++seed) {
    if (label[seed] != kUnvisited) continue;
    if (!is_core(seed)) {
      label[seed] = kNoise;
      continue;
    }
    const uint32_t cluster_id = static_cast<uint32_t>(result.clusters.size());
    result.clusters.emplace_back();
    label[seed] = cluster_id;
    result.clusters.back().push_back(seed);

    frontier.assign(adjacency[seed].begin(), adjacency[seed].end());
    size_t head = 0;
    while (head < frontier.size()) {
      const size_t p = frontier[head++];
      if (label[p] == kNoise) {
        label[p] = cluster_id;  // border polyline
        result.clusters.back().push_back(p);
        continue;
      }
      if (label[p] != kUnvisited) continue;
      label[p] = cluster_id;
      result.clusters.back().push_back(p);
      if (is_core(p)) {
        for (const uint32_t nb : adjacency[p]) {
          if (label[nb] == kUnvisited || label[nb] == kNoise) {
            frontier.push_back(nb);
          }
        }
      }
    }
  }

  if (stats != nullptr) {
    stats->pair_tests += pair_tests;
    stats->box_pruned += box_pruned;
    stats->segment_tests += pair_counters.segment_tests;
    stats->mbr_rejects += pair_counters.mbr_rejects;
  }
  return result;
}

}  // namespace convoy
