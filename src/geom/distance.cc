#include "geom/distance.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace convoy {

double DPL2(const Point& p, const Segment& l) {
  const Point d = l.b - l.a;
  const double len2 = d.Norm2();
  if (len2 == 0.0) return D2(p, l.a);  // degenerate segment
  const double s = std::clamp((p - l.a).Dot(d) / len2, 0.0, 1.0);
  return D2(p, l.At(s));
}

double DPL(const Point& p, const Segment& l) { return std::sqrt(DPL2(p, l)); }

namespace {

// Orientation of the ordered triple (a, b, c): >0 counter-clockwise,
// <0 clockwise, 0 collinear (within exact double arithmetic).
double Cross(const Point& a, const Point& b, const Point& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

bool OnSegment(const Point& a, const Point& b, const Point& p) {
  return std::min(a.x, b.x) <= p.x && p.x <= std::max(a.x, b.x) &&
         std::min(a.y, b.y) <= p.y && p.y <= std::max(a.y, b.y);
}

}  // namespace

bool SegmentsIntersect(const Segment& u, const Segment& v) {
  const double d1 = Cross(v.a, v.b, u.a);
  const double d2 = Cross(v.a, v.b, u.b);
  const double d3 = Cross(u.a, u.b, v.a);
  const double d4 = Cross(u.a, u.b, v.b);
  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  if (d1 == 0 && OnSegment(v.a, v.b, u.a)) return true;
  if (d2 == 0 && OnSegment(v.a, v.b, u.b)) return true;
  if (d3 == 0 && OnSegment(u.a, u.b, v.a)) return true;
  if (d4 == 0 && OnSegment(u.a, u.b, v.b)) return true;
  return false;
}

double DLL(const Segment& u, const Segment& v) {
  if (SegmentsIntersect(u, v)) return 0.0;
  // Disjoint segments: the minimum is attained endpoint-to-segment.
  const double d = std::min(std::min(DPL2(u.a, v), DPL2(u.b, v)),
                            std::min(DPL2(v.a, u), DPL2(v.b, u)));
  return std::sqrt(d);
}

double CpaTime(const TimedSegment& p, const TimedSegment& q) {
  const TickOverlap ov = OverlapTicks(p, q);
  const double lo = static_cast<double>(ov.lo);
  const double hi = static_cast<double>(ov.hi);
  // Relative position and velocity of the two moving points as linear
  // functions of absolute time t: d(t) = d0 + (t - lo) * dv.
  const Point p0 = p.PositionAt(lo);
  const Point q0 = q.PositionAt(lo);
  const Point d0 = p0 - q0;
  const Point dv = p.Velocity() - q.Velocity();
  const double dv2 = dv.Norm2();
  if (dv2 <= 0.0) return lo;  // parallel motion: distance constant over time
  // Unclamped minimizer of |d0 + s*dv|^2 with s = t - lo.
  const double s = -d0.Dot(dv) / dv2;
  return std::clamp(lo + s, lo, hi);
}

double DStar(const TimedSegment& p, const TimedSegment& q) {
  const TickOverlap ov = OverlapTicks(p, q);
  if (!ov.valid) return std::numeric_limits<double>::infinity();
  const double t = CpaTime(p, q);
  return D(p.PositionAt(t), q.PositionAt(t));
}

}  // namespace convoy
