#ifndef CONVOY_GEOM_POINT_H_
#define CONVOY_GEOM_POINT_H_

#include <cmath>
#include <cstdint>
#include <ostream>

namespace convoy {

/// Discrete time point. The paper's time domain is the ordered set
/// {t_1, ..., t_T}; we model it as integer ticks so that "k consecutive time
/// points" is exact arithmetic rather than floating-point comparison.
using Tick = int64_t;

/// A location in the 2-D spatial domain.
struct Point {
  double x = 0.0;
  double y = 0.0;

  Point() = default;
  Point(double px, double py) : x(px), y(py) {}

  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  Point operator*(double s) const { return {x * s, y * s}; }

  /// Dot product treating the point as a vector from the origin.
  double Dot(const Point& o) const { return x * o.x + y * o.y; }

  /// Squared Euclidean norm.
  double Norm2() const { return x * x + y * y; }

  /// Euclidean norm.
  double Norm() const { return std::sqrt(Norm2()); }

  bool operator==(const Point& o) const { return x == o.x && y == o.y; }
  bool operator!=(const Point& o) const { return !(*this == o); }
};

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

/// A timestamped location: one sample p_j = (x_j, y_j, t_j) of a trajectory.
struct TimedPoint {
  Point pos;
  Tick t = 0;

  TimedPoint() = default;
  TimedPoint(double x, double y, Tick tick) : pos(x, y), t(tick) {}
  TimedPoint(const Point& p, Tick tick) : pos(p), t(tick) {}

  bool operator==(const TimedPoint& o) const {
    return pos == o.pos && t == o.t;
  }
};

inline std::ostream& operator<<(std::ostream& os, const TimedPoint& p) {
  return os << "(" << p.pos.x << ", " << p.pos.y << ", t=" << p.t << ")";
}

/// Euclidean distance D(p_u, p_v) between two points (paper Definition 1).
inline double D(const Point& a, const Point& b) { return (a - b).Norm(); }

/// Squared Euclidean distance; cheaper when only comparisons are needed.
inline double D2(const Point& a, const Point& b) { return (a - b).Norm2(); }

}  // namespace convoy

#endif  // CONVOY_GEOM_POINT_H_
