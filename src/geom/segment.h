#ifndef CONVOY_GEOM_SEGMENT_H_
#define CONVOY_GEOM_SEGMENT_H_

#include <algorithm>

#include "geom/point.h"

namespace convoy {

/// A line segment in the spatial domain.
struct Segment {
  Point a;
  Point b;

  Segment() = default;
  Segment(const Point& pa, const Point& pb) : a(pa), b(pb) {}

  /// Segment length.
  double Length() const { return D(a, b); }

  /// The point at parameter s in [0,1] along the segment.
  Point At(double s) const { return a + (b - a) * s; }
};

/// A line segment of a *simplified trajectory*: both endpoints carry
/// timestamps (they are retained samples of the original trajectory), so the
/// segment has a time interval l'.tau = [start.t, end.t] and a linearly
/// time-parameterized position l'(t) (paper Section 6.2).
struct TimedSegment {
  TimedPoint start;
  TimedPoint end;

  TimedSegment() = default;
  TimedSegment(const TimedPoint& s, const TimedPoint& e) : start(s), end(e) {}

  /// The purely spatial segment.
  Segment Spatial() const { return Segment(start.pos, end.pos); }

  /// First tick of the segment's time interval.
  Tick BeginTick() const { return start.t; }

  /// Last tick of the segment's time interval.
  Tick EndTick() const { return end.t; }

  /// True if tick t lies inside [BeginTick, EndTick].
  bool CoversTick(Tick t) const { return start.t <= t && t <= end.t; }

  /// True if the segment's time interval intersects [lo, hi].
  bool IntersectsTickRange(Tick lo, Tick hi) const {
    return start.t <= hi && lo <= end.t;
  }

  /// The time-ratio position l'(t) = p_u + (t-u)/(v-u) * (p_v - p_u)
  /// (paper Section 6.2). For a zero-length time interval returns start.
  /// `t` is clamped to the segment's interval.
  Point PositionAt(double t) const {
    const double u = static_cast<double>(start.t);
    const double v = static_cast<double>(end.t);
    if (v <= u) return start.pos;
    const double s = std::clamp((t - u) / (v - u), 0.0, 1.0);
    return start.pos + (end.pos - start.pos) * s;
  }

  /// Velocity vector in space units per tick (zero if the interval is empty).
  Point Velocity() const {
    const double dt = static_cast<double>(end.t - start.t);
    if (dt <= 0.0) return Point(0.0, 0.0);
    return (end.pos - start.pos) * (1.0 / dt);
  }
};

/// Returns the overlap [lo, hi] of the two segments' time intervals;
/// `valid` is false when the intervals are disjoint.
struct TickOverlap {
  Tick lo = 0;
  Tick hi = 0;
  bool valid = false;
};

inline TickOverlap OverlapTicks(const TimedSegment& p, const TimedSegment& q) {
  TickOverlap o;
  o.lo = std::max(p.BeginTick(), q.BeginTick());
  o.hi = std::min(p.EndTick(), q.EndTick());
  o.valid = o.lo <= o.hi;
  return o;
}

}  // namespace convoy

#endif  // CONVOY_GEOM_SEGMENT_H_
