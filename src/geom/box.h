#ifndef CONVOY_GEOM_BOX_H_
#define CONVOY_GEOM_BOX_H_

#include <limits>

#include "geom/point.h"
#include "geom/segment.h"

namespace convoy {

/// Axis-aligned minimum bounding box. Used by Lemma 2 to prune whole groups
/// of simplified line segments before their pairwise distances are examined.
class Box {
 public:
  /// Creates an empty box (contains nothing; Extend() makes it valid).
  Box()
      : min_(std::numeric_limits<double>::infinity(),
             std::numeric_limits<double>::infinity()),
        max_(-std::numeric_limits<double>::infinity(),
             -std::numeric_limits<double>::infinity()) {}

  /// Creates the box spanning the two corner points.
  Box(const Point& lo, const Point& hi) : min_(lo), max_(hi) {}

  /// The bounding box B(l) of a line segment (paper Table 1).
  static Box Of(const Segment& s);

  /// The bounding box of a timed segment's spatial extent.
  static Box Of(const TimedSegment& s) { return Of(s.Spatial()); }

  /// True if no point has ever been added.
  bool Empty() const { return min_.x > max_.x; }

  /// Grows the box to cover point p.
  void Extend(const Point& p);

  /// Grows the box to cover another box.
  void Extend(const Box& other);

  /// True if the point lies inside (inclusive) the box.
  bool Contains(const Point& p) const {
    return min_.x <= p.x && p.x <= max_.x && min_.y <= p.y && p.y <= max_.y;
  }

  const Point& min() const { return min_; }
  const Point& max() const { return max_; }

 private:
  Point min_;
  Point max_;
};

/// Dmin(B_u, B_v): the minimum distance between any pair of points belonging
/// to the two boxes (paper Definition 1). Zero when the boxes intersect.
/// Either box being empty yields +infinity (nothing to be close to).
double Dmin(const Box& a, const Box& b);

}  // namespace convoy

#endif  // CONVOY_GEOM_BOX_H_
