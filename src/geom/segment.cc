#include "geom/segment.h"

// All members are inline; the TU anchors the module in the build graph.
