#ifndef CONVOY_GEOM_DISTANCE_H_
#define CONVOY_GEOM_DISTANCE_H_

#include "geom/point.h"
#include "geom/segment.h"

namespace convoy {

/// DPL(p, l): the shortest Euclidean distance between point p and any point
/// on segment l (paper Definition 1).
double DPL(const Point& p, const Segment& l);

/// Squared version of DPL for comparison-only callers.
double DPL2(const Point& p, const Segment& l);

/// DLL(l_u, l_v): the shortest Euclidean distance between any two points on
/// the two segments (paper Definition 1). Zero if the segments intersect.
double DLL(const Segment& u, const Segment& v);

/// True if the two spatial segments properly or improperly intersect.
bool SegmentsIntersect(const Segment& u, const Segment& v);

/// The time of Closest Point of Approach for two linearly moving points
/// (paper Section 6.2). The motions are given by the timed segments' linear
/// time parameterizations; the returned time is clamped to the segments'
/// common time interval. Requires the intervals to overlap.
///
/// If the relative velocity is zero (objects move in parallel), any time in
/// the common interval attains the minimum; the interval start is returned.
double CpaTime(const TimedSegment& p, const TimedSegment& q);

/// D*(l'_1, l'_2): the tightened, time-aware distance between two simplified
/// line segments (paper Section 6.2) — the Euclidean distance between the two
/// moving positions at the (clamped) CPA time. Returns +infinity when the
/// segments' time intervals do not intersect.
double DStar(const TimedSegment& p, const TimedSegment& q);

}  // namespace convoy

#endif  // CONVOY_GEOM_DISTANCE_H_
