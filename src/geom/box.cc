#include "geom/box.h"

#include <algorithm>
#include <cmath>

namespace convoy {

Box Box::Of(const Segment& s) {
  return Box(Point(std::min(s.a.x, s.b.x), std::min(s.a.y, s.b.y)),
             Point(std::max(s.a.x, s.b.x), std::max(s.a.y, s.b.y)));
}

void Box::Extend(const Point& p) {
  min_.x = std::min(min_.x, p.x);
  min_.y = std::min(min_.y, p.y);
  max_.x = std::max(max_.x, p.x);
  max_.y = std::max(max_.y, p.y);
}

void Box::Extend(const Box& other) {
  if (other.Empty()) return;
  Extend(other.min_);
  Extend(other.max_);
}

double Dmin(const Box& a, const Box& b) {
  if (a.Empty() || b.Empty()) return std::numeric_limits<double>::infinity();
  // Per-axis gap between the intervals; zero when they overlap.
  const double dx =
      std::max({0.0, a.min().x - b.max().x, b.min().x - a.max().x});
  const double dy =
      std::max({0.0, a.min().y - b.max().y, b.min().y - a.max().y});
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace convoy
