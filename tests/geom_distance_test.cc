#include "geom/distance.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/random.h"

namespace convoy {
namespace {

// ---------------------------------------------------------------- DPL ------

TEST(DplTest, PointOnSegment) {
  const Segment s(Point(0, 0), Point(10, 0));
  EXPECT_DOUBLE_EQ(DPL(Point(5, 0), s), 0.0);
  EXPECT_DOUBLE_EQ(DPL(Point(0, 0), s), 0.0);
  EXPECT_DOUBLE_EQ(DPL(Point(10, 0), s), 0.0);
}

TEST(DplTest, PerpendicularProjectionInside) {
  const Segment s(Point(0, 0), Point(10, 0));
  EXPECT_DOUBLE_EQ(DPL(Point(5, 3), s), 3.0);
  EXPECT_DOUBLE_EQ(DPL(Point(5, -3), s), 3.0);
}

TEST(DplTest, ProjectionBeyondEndpoints) {
  const Segment s(Point(0, 0), Point(10, 0));
  EXPECT_DOUBLE_EQ(DPL(Point(-3, 4), s), 5.0);  // nearest is (0,0)
  EXPECT_DOUBLE_EQ(DPL(Point(13, 4), s), 5.0);  // nearest is (10,0)
}

TEST(DplTest, DegenerateSegmentIsPointDistance) {
  const Segment s(Point(2, 2), Point(2, 2));
  EXPECT_DOUBLE_EQ(DPL(Point(5, 6), s), 5.0);
}

TEST(DplTest, SquaredMatchesUnsquared) {
  const Segment s(Point(1, 1), Point(4, 5));
  const Point p(-2, 3);
  EXPECT_DOUBLE_EQ(DPL2(p, s), DPL(p, s) * DPL(p, s));
}

// ------------------------------------------------------ SegmentsIntersect --

TEST(SegmentsIntersectTest, ProperCrossing) {
  EXPECT_TRUE(SegmentsIntersect(Segment(Point(0, 0), Point(10, 10)),
                                Segment(Point(0, 10), Point(10, 0))));
}

TEST(SegmentsIntersectTest, NoIntersection) {
  EXPECT_FALSE(SegmentsIntersect(Segment(Point(0, 0), Point(1, 0)),
                                 Segment(Point(0, 1), Point(1, 1))));
}

TEST(SegmentsIntersectTest, SharedEndpoint) {
  EXPECT_TRUE(SegmentsIntersect(Segment(Point(0, 0), Point(1, 1)),
                                Segment(Point(1, 1), Point(2, 0))));
}

TEST(SegmentsIntersectTest, TShapedTouch) {
  EXPECT_TRUE(SegmentsIntersect(Segment(Point(0, 0), Point(10, 0)),
                                Segment(Point(5, 0), Point(5, 5))));
}

TEST(SegmentsIntersectTest, CollinearOverlapping) {
  EXPECT_TRUE(SegmentsIntersect(Segment(Point(0, 0), Point(5, 0)),
                                Segment(Point(3, 0), Point(8, 0))));
}

TEST(SegmentsIntersectTest, CollinearDisjoint) {
  EXPECT_FALSE(SegmentsIntersect(Segment(Point(0, 0), Point(2, 0)),
                                 Segment(Point(3, 0), Point(8, 0))));
}

// ---------------------------------------------------------------- DLL ------

TEST(DllTest, IntersectingSegmentsIsZero) {
  EXPECT_DOUBLE_EQ(DLL(Segment(Point(0, 0), Point(10, 10)),
                       Segment(Point(0, 10), Point(10, 0))),
                   0.0);
}

TEST(DllTest, ParallelSegments) {
  EXPECT_DOUBLE_EQ(DLL(Segment(Point(0, 0), Point(10, 0)),
                       Segment(Point(0, 4), Point(10, 4))),
                   4.0);
}

TEST(DllTest, EndpointToInterior) {
  // Closest pair is the endpoint (12,0) of one segment against interior of
  // the other? Here: segments on the same line, gap of 2.
  EXPECT_DOUBLE_EQ(DLL(Segment(Point(0, 0), Point(10, 0)),
                       Segment(Point(12, 0), Point(20, 0))),
                   2.0);
}

TEST(DllTest, SkewSegments) {
  // Vertical segment above the right end of a horizontal one.
  EXPECT_DOUBLE_EQ(DLL(Segment(Point(0, 0), Point(10, 0)),
                       Segment(Point(13, 4), Point(13, 10))),
                   5.0);
}

TEST(DllTest, Symmetric) {
  const Segment a(Point(0, 0), Point(3, 1));
  const Segment b(Point(7, -2), Point(9, 4));
  EXPECT_DOUBLE_EQ(DLL(a, b), DLL(b, a));
}

TEST(DllTest, LowerBoundsSampledPointDistances) {
  // Property: DLL is the minimum over all point pairs, so any sampled pair
  // must be at least DLL apart.
  Rng rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    const Segment a(Point(rng.Uniform(0, 100), rng.Uniform(0, 100)),
                    Point(rng.Uniform(0, 100), rng.Uniform(0, 100)));
    const Segment b(Point(rng.Uniform(0, 100), rng.Uniform(0, 100)),
                    Point(rng.Uniform(0, 100), rng.Uniform(0, 100)));
    const double dll = DLL(a, b);
    for (int s = 0; s <= 10; ++s) {
      for (int t = 0; t <= 10; ++t) {
        const double dist = D(a.At(s / 10.0), b.At(t / 10.0));
        EXPECT_GE(dist + 1e-9, dll);
      }
    }
  }
}

// ---------------------------------------------------------------- CPA ------

TEST(CpaTest, HeadOnApproach) {
  // Two objects moving toward each other along the x axis over [0,10]:
  // closest at t=5 where they meet.
  const TimedSegment p(TimedPoint(0, 0, 0), TimedPoint(10, 0, 10));
  const TimedSegment q(TimedPoint(10, 0, 0), TimedPoint(0, 0, 10));
  EXPECT_DOUBLE_EQ(CpaTime(p, q), 5.0);
  EXPECT_DOUBLE_EQ(DStar(p, q), 0.0);
}

TEST(CpaTest, ParallelMotionConstantDistance) {
  const TimedSegment p(TimedPoint(0, 0, 0), TimedPoint(10, 0, 10));
  const TimedSegment q(TimedPoint(0, 3, 0), TimedPoint(10, 3, 10));
  EXPECT_DOUBLE_EQ(DStar(p, q), 3.0);
}

TEST(CpaTest, CpaClampedToCommonInterval) {
  // Both move right; q trails p and gains, but their common interval ends
  // before q catches up, so the clamped CPA is the interval end.
  const TimedSegment p(TimedPoint(5, 0, 0), TimedPoint(15, 0, 10));
  const TimedSegment q(TimedPoint(0, 0, 0), TimedPoint(12, 0, 8));
  const double t = CpaTime(p, q);
  EXPECT_DOUBLE_EQ(t, 8.0);
  // At t=8, p is at x=13, q at x=12.
  EXPECT_NEAR(DStar(p, q), 1.0, 1e-12);
}

TEST(CpaTest, DisjointIntervalsGiveInfiniteDStar) {
  const TimedSegment p(TimedPoint(0, 0, 0), TimedPoint(1, 0, 5));
  const TimedSegment q(TimedPoint(0, 0, 6), TimedPoint(1, 0, 10));
  EXPECT_EQ(DStar(p, q), std::numeric_limits<double>::infinity());
}

TEST(DStarTest, NeverBelowDll) {
  // Property (paper Section 6.2): D* >= DLL, since D* restricts both points
  // to time-synchronized positions while DLL minimizes freely.
  Rng rng(1234);
  for (int iter = 0; iter < 500; ++iter) {
    const Tick a0 = rng.UniformInt(0, 50);
    const Tick a1 = a0 + rng.UniformInt(1, 20);
    const Tick b0 = rng.UniformInt(0, 50);
    const Tick b1 = b0 + rng.UniformInt(1, 20);
    const TimedSegment p(
        TimedPoint(rng.Uniform(0, 100), rng.Uniform(0, 100), a0),
        TimedPoint(rng.Uniform(0, 100), rng.Uniform(0, 100), a1));
    const TimedSegment q(
        TimedPoint(rng.Uniform(0, 100), rng.Uniform(0, 100), b0),
        TimedPoint(rng.Uniform(0, 100), rng.Uniform(0, 100), b1));
    const double dstar = DStar(p, q);
    if (std::isinf(dstar)) continue;
    EXPECT_GE(dstar + 1e-9, DLL(p.Spatial(), q.Spatial()));
  }
}

TEST(DStarTest, IsMinimumOverCommonInterval) {
  // Property: D* equals the minimum time-synchronized distance over the
  // common interval (sampled densely).
  Rng rng(777);
  for (int iter = 0; iter < 300; ++iter) {
    const Tick a0 = rng.UniformInt(0, 20);
    const Tick a1 = a0 + rng.UniformInt(1, 20);
    const Tick b0 = rng.UniformInt(0, 20);
    const Tick b1 = b0 + rng.UniformInt(1, 20);
    const TimedSegment p(
        TimedPoint(rng.Uniform(0, 50), rng.Uniform(0, 50), a0),
        TimedPoint(rng.Uniform(0, 50), rng.Uniform(0, 50), a1));
    const TimedSegment q(
        TimedPoint(rng.Uniform(0, 50), rng.Uniform(0, 50), b0),
        TimedPoint(rng.Uniform(0, 50), rng.Uniform(0, 50), b1));
    const TickOverlap ov = OverlapTicks(p, q);
    if (!ov.valid) continue;
    const double dstar = DStar(p, q);
    double sampled_min = std::numeric_limits<double>::infinity();
    const double lo = static_cast<double>(ov.lo);
    const double hi = static_cast<double>(ov.hi);
    for (int s = 0; s <= 200; ++s) {
      const double t = lo + (hi - lo) * s / 200.0;
      sampled_min =
          std::min(sampled_min, D(p.PositionAt(t), q.PositionAt(t)));
    }
    // D* is the exact minimum; sampling can only be >= it.
    EXPECT_GE(sampled_min + 1e-9, dstar);
    // And the sampled minimum should approach it.
    EXPECT_NEAR(sampled_min, dstar, 0.5);
  }
}

}  // namespace
}  // namespace convoy
