#include "core/cuts.h"

#include <gtest/gtest.h>

#include <tuple>

#include "core/cmc.h"
#include "core/verify.h"
#include "tests/test_util.h"

namespace convoy {
namespace {

using testutil::FromXRows;
using testutil::RandomClumpyDb;

TEST(CutsTest, VariantNames) {
  EXPECT_EQ(ToString(CutsVariant::kCuts), "CuTS");
  EXPECT_EQ(ToString(CutsVariant::kCutsPlus), "CuTS+");
  EXPECT_EQ(ToString(CutsVariant::kCutsStar), "CuTS*");
}

TEST(CutsTest, VariantConfigTable) {
  // The Section 6 summary table.
  const auto cuts = MakeFilterOptions(CutsVariant::kCuts);
  EXPECT_EQ(cuts.simplifier, SimplifierKind::kDp);
  EXPECT_EQ(cuts.distance, SegmentDistanceKind::kDll);
  const auto plus = MakeFilterOptions(CutsVariant::kCutsPlus);
  EXPECT_EQ(plus.simplifier, SimplifierKind::kDpPlus);
  EXPECT_EQ(plus.distance, SegmentDistanceKind::kDll);
  const auto star = MakeFilterOptions(CutsVariant::kCutsStar);
  EXPECT_EQ(star.simplifier, SimplifierKind::kDpStar);
  EXPECT_EQ(star.distance, SegmentDistanceKind::kDStar);
}

TEST(CutsTest, EmptyDatabase) {
  EXPECT_TRUE(
      Cuts(TrajectoryDatabase(), ConvoyQuery{2, 2, 1.0}).empty());
}

TEST(CutsTest, SimpleConvoyMatchesCmc) {
  const auto db = FromXRows({{0, 1, 2, 3, 4, 5, 6, 7},
                             {0, 1, 2, 3, 4, 5, 6, 7},
                             {50, 40, 30, 20, 10, 0, -10, -20}},
                            0.4);
  const ConvoyQuery query{2, 4, 1.0};
  const auto expected = Cmc(db, query);
  ASSERT_EQ(expected.size(), 1u);
  for (const auto variant :
       {CutsVariant::kCuts, CutsVariant::kCutsPlus, CutsVariant::kCutsStar}) {
    const auto got = Cuts(db, query, variant);
    EXPECT_TRUE(SameResultSet(expected, got)) << ToString(variant);
  }
}

TEST(CutsTest, FilterProducesCandidatesAndStats) {
  const auto db = FromXRows({{0, 1, 2, 3, 4, 5, 6, 7},
                             {0, 1, 2, 3, 4, 5, 6, 7}},
                            0.4);
  DiscoveryStats stats;
  CutsFilterOptions options;
  options.lambda = 2;
  const auto result = Cuts(db, ConvoyQuery{2, 4, 1.0},
                           CutsVariant::kCutsStar, options, &stats);
  EXPECT_EQ(result.size(), 1u);
  EXPECT_GE(stats.num_candidates, 1u);
  EXPECT_GT(stats.refinement_unit, 0.0);
  EXPECT_GT(stats.num_clusterings, 0u);
  EXPECT_EQ(stats.lambda_used, 2);
  // Perfectly straight synthetic rows legitimately auto-derive delta = 0.
  EXPECT_GE(stats.delta_used, 0.0);
}

// ---------------------------------------------------------------------------
// The paper's central exactness guarantee: CuTS returns exactly CMC's
// convoys. Randomized sweep over variants, internal parameters, and
// workload shapes, using the exact full-window refinement (see DESIGN.md
// for why the paper's projected refinement is only *almost* exact).
// ---------------------------------------------------------------------------

struct ExactnessCase {
  CutsVariant variant;
  double delta;  // <= 0: auto
  Tick lambda;   // <= 0: auto
  bool actual_tolerance;
  bool box_pruning;
  int seed;
};

class CutsExactnessTest : public ::testing::TestWithParam<ExactnessCase> {};

TEST_P(CutsExactnessTest, MatchesCmcOnRandomWorkload) {
  const ExactnessCase param = GetParam();
  Rng rng(static_cast<uint64_t>(param.seed));
  const TrajectoryDatabase db =
      RandomClumpyDb(rng, /*num_objects=*/24, /*ticks=*/60, /*world=*/60.0,
                     /*step=*/0.8, /*keep_prob=*/0.9);
  const ConvoyQuery query{3, 6, 4.0};

  const auto expected = Cmc(db, query);

  CutsFilterOptions options;
  options.delta = param.delta;
  options.lambda = param.lambda;
  options.use_actual_tolerance = param.actual_tolerance;
  options.use_box_pruning = param.box_pruning;
  options.refine_mode = RefineMode::kFullWindow;
  const auto got = Cuts(db, query, param.variant, options);

  EXPECT_TRUE(SameResultSet(expected, got))
      << ToString(param.variant) << " delta=" << param.delta
      << " lambda=" << param.lambda << " seed=" << param.seed
      << " expected=" << expected.size() << " got=" << got.size();
}

std::vector<ExactnessCase> MakeExactnessCases() {
  std::vector<ExactnessCase> cases;
  const CutsVariant variants[] = {CutsVariant::kCuts, CutsVariant::kCutsPlus,
                                  CutsVariant::kCutsStar};
  int seed = 100;
  for (const CutsVariant variant : variants) {
    for (const double delta : {-1.0, 0.5, 2.0}) {
      for (const Tick lambda : {Tick{-1}, Tick{3}, Tick{10}}) {
        cases.push_back(ExactnessCase{variant, delta, lambda,
                                      /*actual_tolerance=*/true,
                                      /*box_pruning=*/true, seed++});
      }
    }
    // Toggle the optimizations off as well.
    cases.push_back(ExactnessCase{variant, 1.0, 5, false, true, seed++});
    cases.push_back(ExactnessCase{variant, 1.0, 5, true, false, seed++});
    cases.push_back(ExactnessCase{variant, 1.0, 5, false, false, seed++});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CutsExactnessTest,
                         ::testing::ValuesIn(MakeExactnessCases()));

// With the paper's projected refinement (Algorithm 3), soundness must still
// hold on arbitrary inputs: every reported convoy verifies true and is
// covered by a CMC convoy.
class CutsProjectedSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(CutsProjectedSoundnessTest, ProjectedRefinementIsSound) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const TrajectoryDatabase db =
      RandomClumpyDb(rng, 20, 50, 50.0, 0.8, 0.85);
  const ConvoyQuery query{3, 5, 4.0};
  const auto exact = Cmc(db, query);

  CutsFilterOptions options;
  options.refine_mode = RefineMode::kProjected;
  for (const auto variant :
       {CutsVariant::kCuts, CutsVariant::kCutsPlus, CutsVariant::kCutsStar}) {
    const auto got = Cuts(db, query, variant, options);
    for (const Convoy& c : got) {
      EXPECT_TRUE(VerifyConvoy(db, query, c))
          << ToString(variant) << " reported false convoy " << ToString(c);
      EXPECT_TRUE(Uncovered({c}, exact).empty())
          << ToString(variant) << " reported convoy not covered by CMC: "
          << ToString(c);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CutsProjectedSoundnessTest,
                         ::testing::Range(500, 512));

// Irregular sampling (taxi-style) stresses the interpolation-aware bounds.
class CutsIrregularSamplingTest : public ::testing::TestWithParam<int> {};

TEST_P(CutsIrregularSamplingTest, ExactOnIrregularlySampledData) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const TrajectoryDatabase db =
      RandomClumpyDb(rng, 18, 70, 50.0, 0.7, /*keep_prob=*/0.45);
  const ConvoyQuery query{2, 8, 4.0};
  const auto expected = Cmc(db, query);

  CutsFilterOptions options;
  options.refine_mode = RefineMode::kFullWindow;
  for (const auto variant :
       {CutsVariant::kCuts, CutsVariant::kCutsPlus, CutsVariant::kCutsStar}) {
    const auto got = Cuts(db, query, variant, options);
    EXPECT_TRUE(SameResultSet(expected, got))
        << ToString(variant) << " seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CutsIrregularSamplingTest,
                         ::testing::Range(900, 910));

// Large lambda (sloppy filter) and tiny lambda (tight filter) must both be
// correct; only performance may differ.
TEST(CutsTest, ExtremeLambdaStillExact) {
  Rng rng(4242);
  const TrajectoryDatabase db = RandomClumpyDb(rng, 16, 48, 40.0, 0.8);
  const ConvoyQuery query{2, 6, 4.0};
  const auto expected = Cmc(db, query);
  for (const Tick lambda : {Tick{1}, Tick{2}, Tick{48}, Tick{100}}) {
    CutsFilterOptions options;
    options.lambda = lambda;
    options.refine_mode = RefineMode::kFullWindow;
    const auto got = Cuts(db, query, CutsVariant::kCutsStar, options);
    EXPECT_TRUE(SameResultSet(expected, got)) << "lambda=" << lambda;
  }
}

TEST(CutsTest, HugeDeltaStillExact) {
  // Absurd tolerance: everything collapses to 2-point lines, the filter
  // admits nearly everything, refinement still fixes it.
  Rng rng(777);
  const TrajectoryDatabase db = RandomClumpyDb(rng, 14, 40, 40.0, 0.8);
  const ConvoyQuery query{2, 5, 4.0};
  const auto expected = Cmc(db, query);
  CutsFilterOptions options;
  options.delta = 1000.0;
  options.refine_mode = RefineMode::kFullWindow;
  const auto got = Cuts(db, query, CutsVariant::kCuts, options);
  EXPECT_TRUE(SameResultSet(expected, got));
}

TEST(CutsTest, ActualToleranceNeverLoosensFilter) {
  // Figure 14's claim: actual tolerances yield no more candidates than the
  // global tolerance (they are <= the global delta everywhere).
  Rng rng(31);
  const TrajectoryDatabase db = RandomClumpyDb(rng, 24, 60, 50.0, 0.8);
  const ConvoyQuery query{3, 6, 4.0};
  for (const auto variant :
       {CutsVariant::kCuts, CutsVariant::kCutsStar}) {
    CutsFilterOptions with = MakeFilterOptions(variant);
    with.delta = 2.0;
    with.lambda = 5;
    CutsFilterOptions without = with;
    without.use_actual_tolerance = false;

    DiscoveryStats stats_with;
    DiscoveryStats stats_without;
    (void)CutsFilter(db, query, with, &stats_with);
    (void)CutsFilter(db, query, without, &stats_without);
    EXPECT_LE(stats_with.refinement_unit, stats_without.refinement_unit + 1e-6)
        << ToString(variant);
  }
}

TEST(CutsTest, RtreeFilterGivesSameConvoys) {
  Rng rng(606);
  const TrajectoryDatabase db = RandomClumpyDb(rng, 24, 60, 50.0, 0.8);
  const ConvoyQuery query{3, 6, 4.0};
  for (const auto variant :
       {CutsVariant::kCuts, CutsVariant::kCutsStar}) {
    CutsFilterOptions scan;
    scan.use_rtree = false;
    scan.refine_mode = RefineMode::kFullWindow;
    CutsFilterOptions rtree = scan;
    rtree.use_rtree = true;
    EXPECT_TRUE(SameResultSet(Cuts(db, query, variant, scan),
                              Cuts(db, query, variant, rtree)))
        << ToString(variant);
  }
}

TEST(CutsTest, ParallelRefinementGivesSameConvoys) {
  Rng rng(909);
  const TrajectoryDatabase db = RandomClumpyDb(rng, 24, 60, 50.0, 0.8);
  const ConvoyQuery query{2, 5, 4.0};
  for (const RefineMode mode :
       {RefineMode::kProjected, RefineMode::kFullWindow}) {
    CutsFilterOptions sequential;
    sequential.refine_mode = mode;
    sequential.refine_threads = 1;
    CutsFilterOptions parallel = sequential;
    parallel.refine_threads = 4;
    EXPECT_TRUE(SameResultSet(
        Cuts(db, query, CutsVariant::kCutsStar, sequential),
        Cuts(db, query, CutsVariant::kCutsStar, parallel)))
        << (mode == RefineMode::kProjected ? "projected" : "full-window");
  }
}

TEST(CutsTest, PhaseTimingsAccumulate) {
  Rng rng(8);
  const TrajectoryDatabase db = RandomClumpyDb(rng, 20, 60, 50.0, 0.8);
  DiscoveryStats stats;
  (void)Cuts(db, ConvoyQuery{3, 6, 4.0}, CutsVariant::kCutsStar, {}, &stats);
  EXPECT_GT(stats.total_seconds, 0.0);
  EXPECT_GE(stats.simplify_seconds, 0.0);
  EXPECT_GT(stats.filter_seconds, 0.0);
  EXPECT_GE(stats.total_seconds, stats.simplify_seconds);
  EXPECT_GT(stats.vertex_reduction_percent, -1e-9);
}

}  // namespace
}  // namespace convoy
