#include "core/cmc.h"

#include <gtest/gtest.h>

#include "core/verify.h"
#include "tests/test_util.h"

namespace convoy {
namespace {

using testutil::FromXRows;

// Paper Figure 4 / Section 3 example: o2 and o3 travel together from t1 to
// t3 while o1 drifts away; query m=2, k=3 returns <o2,o3,[t1,t3]>.
TEST(CmcTest, PaperFigure4Example) {
  TrajectoryDatabase db;
  Trajectory o1(1);
  o1.Append(0, 0, 1);
  o1.Append(5, 5, 2);
  o1.Append(12, 10, 3);
  o1.Append(20, 15, 4);
  Trajectory o2(2);
  o2.Append(0.5, 0, 1);
  o2.Append(1.0, 1.0, 2);
  o2.Append(1.5, 2.0, 3);
  o2.Append(10.0, 2.0, 4);  // leaves at t4
  Trajectory o3(3);
  o3.Append(1.0, 0, 1);
  o3.Append(1.5, 1.0, 2);
  o3.Append(2.0, 2.0, 3);
  o3.Append(2.5, 3.0, 4);
  db.Add(std::move(o1));
  db.Add(std::move(o2));
  db.Add(std::move(o3));

  const auto result = Cmc(db, ConvoyQuery{2, 3, 1.0});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].objects, (std::vector<ObjectId>{2, 3}));
  EXPECT_EQ(result[0].start_tick, 1);
  EXPECT_EQ(result[0].end_tick, 3);
}

TEST(CmcTest, EmptyDatabase) {
  EXPECT_TRUE(Cmc(TrajectoryDatabase(), ConvoyQuery{2, 2, 1.0}).empty());
}

TEST(CmcTest, NoConvoyWhenObjectsApart) {
  const auto db = FromXRows({{0, 1, 2, 3}, {100, 101, 102, 103}});
  EXPECT_TRUE(Cmc(db, ConvoyQuery{2, 2, 1.0}).empty());
}

TEST(CmcTest, ConvoySpansWholeLifetime) {
  // Two objects 0.5 apart for 5 ticks.
  const auto db = FromXRows({{0, 1, 2, 3, 4}, {0, 1, 2, 3, 4}}, 0.5);
  const auto result = Cmc(db, ConvoyQuery{2, 5, 1.0});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].start_tick, 0);
  EXPECT_EQ(result[0].end_tick, 4);
}

TEST(CmcTest, LifetimeRequirementFiltersShortMeetings) {
  // Together for exactly 3 ticks (2..4), then split.
  const auto db = FromXRows({{0, 1, 2, 3, 4, 5, 6},
                             {50, 20, 2.2, 3.2, 4.2, 30, 60}});
  EXPECT_EQ(Cmc(db, ConvoyQuery{2, 3, 1.0}).size(), 1u);
  EXPECT_TRUE(Cmc(db, ConvoyQuery{2, 4, 1.0}).empty());
}

TEST(CmcTest, GapBreaksConsecutiveness) {
  // Near at ticks 0-2, far at 3, near again 4-6: two 3-tick convoys with
  // k=3, none with k=4.
  const auto db = FromXRows(
      {{0, 1, 2, 3, 4, 5, 6}, {0.2, 1.2, 2.2, 50, 4.2, 5.2, 6.2}});
  const auto k3 = Cmc(db, ConvoyQuery{2, 3, 1.0});
  ASSERT_EQ(k3.size(), 2u);
  EXPECT_EQ(k3[0].start_tick, 0);
  EXPECT_EQ(k3[0].end_tick, 2);
  EXPECT_EQ(k3[1].start_tick, 4);
  EXPECT_EQ(k3[1].end_tick, 6);
  EXPECT_TRUE(Cmc(db, ConvoyQuery{2, 4, 1.0}).empty());
}

TEST(CmcTest, VirtualPointsBridgeMissingSamples) {
  // Object 1 misses ticks 1 and 2 but interpolates along the same line as
  // object 0, so the convoy is unbroken (the Section 4 motivation).
  TrajectoryDatabase db;
  Trajectory a(0);
  for (Tick t = 0; t <= 4; ++t) a.Append(static_cast<double>(t), 0.0, t);
  Trajectory b(1);
  b.Append(0, 0.5, 0);
  b.Append(3, 0.5, 3);
  b.Append(4, 0.5, 4);
  db.Add(std::move(a));
  db.Add(std::move(b));

  const auto result = Cmc(db, ConvoyQuery{2, 5, 1.0});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].start_tick, 0);
  EXPECT_EQ(result[0].end_tick, 4);
}

TEST(CmcTest, ObjectLeavingEndsConvoyInterval) {
  // Third object joins only ticks 1..3 of a 5-tick pair convoy: both the
  // longer pair convoy and the shorter triple convoy are maximal.
  const auto db = FromXRows({{0, 1, 2, 3, 4},
                             {0, 1, 2, 3, 4},
                             {90, 1, 2, 3, 80}},
                            0.4);
  const auto result = Cmc(db, ConvoyQuery{2, 3, 1.5});
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].objects.size(), 2u);
  EXPECT_EQ(result[0].Lifetime(), 5);
  EXPECT_EQ(result[1].objects.size(), 3u);
  EXPECT_EQ(result[1].start_tick, 1);
  EXPECT_EQ(result[1].end_tick, 3);
}

TEST(CmcTest, DensityConnectionCapturesNonCircularShapes) {
  // The lossy-flock scenario (Figure 1): four objects in a line, each 1.0
  // from the next. No disc of radius ~1.2 holds all four, but they are
  // density-connected with e=1.2 and m=3 (interior objects have three
  // neighbors counting themselves), so the convoy query finds the whole
  // line as one group.
  const auto db = FromXRows({{0, 1, 2}, {0, 1, 2}, {0, 1, 2}, {0, 1, 2}},
                            1.0);
  const auto result = Cmc(db, ConvoyQuery{3, 3, 1.2});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].objects.size(), 4u);
}

TEST(CmcTest, MinPtsAboveGroupSizeFindsNothing) {
  const auto db = FromXRows({{0, 1, 2}, {0, 1, 2}}, 0.5);
  EXPECT_TRUE(Cmc(db, ConvoyQuery{3, 2, 1.0}).empty());
}

TEST(CmcTest, FewerThanMObjectsAliveKillsTick) {
  // Pair convoy ticks 0..2; object 1 ends at tick 2; at ticks 3+ only one
  // object is alive.
  TrajectoryDatabase db;
  Trajectory a(0);
  for (Tick t = 0; t <= 5; ++t) a.Append(static_cast<double>(t), 0.0, t);
  Trajectory b(1);
  for (Tick t = 0; t <= 2; ++t) b.Append(static_cast<double>(t), 0.4, t);
  db.Add(std::move(a));
  db.Add(std::move(b));
  const auto result = Cmc(db, ConvoyQuery{2, 3, 1.0});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].end_tick, 2);
}

TEST(CmcRangeTest, RestrictsDiscoveryWindow) {
  const auto db = FromXRows({{0, 1, 2, 3, 4, 5}, {0, 1, 2, 3, 4, 5}}, 0.5);
  const auto result = CmcRange(db, ConvoyQuery{2, 3, 1.0}, 2, 5);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].start_tick, 2);
  EXPECT_EQ(result[0].end_tick, 5);
}

TEST(CmcTest, ResultsPassIndependentVerification) {
  const auto db = FromXRows({{0, 1, 2, 3, 4},
                             {0, 1, 2, 3, 4},
                             {0, 1, 2, 3, 4},
                             {9, 9, 9, 9, 9}},
                            0.4);
  const ConvoyQuery query{3, 3, 1.5};
  for (const Convoy& c : Cmc(db, query)) {
    EXPECT_TRUE(VerifyConvoy(db, query, c)) << ToString(c);
  }
}

TEST(CmcTest, StatsCountClusterings) {
  const auto db = FromXRows({{0, 1, 2}, {0, 1, 2}}, 0.5);
  DiscoveryStats stats;
  Cmc(db, ConvoyQuery{2, 2, 1.0}, {}, &stats);
  EXPECT_EQ(stats.num_clusterings, 3u);  // one per tick
  EXPECT_EQ(stats.num_convoys, 1u);
}

TEST(CmcTest, DominatedResultsPrunedByDefault) {
  // Raw candidate algebra reports both {0,1,2}@[1,3] and its fragments;
  // the default output must be dominance-free.
  const auto db = FromXRows({{0, 1, 2, 3, 4},
                             {0, 1, 2, 3, 4},
                             {90, 1, 2, 3, 80}},
                            0.4);
  const auto result = Cmc(db, ConvoyQuery{2, 3, 1.5});
  for (size_t i = 0; i < result.size(); ++i) {
    for (size_t j = 0; j < result.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(Covers(result[j], result[i]));
      }
    }
  }
}

}  // namespace
}  // namespace convoy
