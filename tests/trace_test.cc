#include "obs/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/exec_hooks.h"
#include "io/result_io.h"
#include "obs/metrics.h"
#include "query/algorithm.h"
#include "tests/test_util.h"
#include "util/random.h"

// ---------------------------------------------------------------------------
// Allocation counting for the disabled-trace test. Overriding the global
// operator new in this TU lets DisabledTraceAllocatesNothing assert that the
// null-session fast path really is allocation-free (spans, counters, and
// observations all reduce to one branch). The counter is process-wide, so
// that test runs its probe single-threaded and compares before/after.
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_alloc_count{0};

void* CountedAlloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace convoy {
namespace {

using testutil::RandomClumpyDb;

// Minimal JSON syntax checker (recursive descent over one value). Not a
// parser — just enough to catch unbalanced brackets, bad commas, and
// non-JSON tokens (e.g. nan/inf leaking from double formatting) in the
// metrics and Chrome-trace emitters without a JSON library.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Literal(const char* lit) {
    const size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool Number() {
    const size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(s_[pos_]))) digits = true;
      ++pos_;
    }
    return digits && pos_ > start;
  }
  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Value() {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') return ++pos_, true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      if (!Value()) return false;
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= s_.size() || s_[pos_] != '}') return false;
    ++pos_;
    return true;
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') return ++pos_, true;
    while (true) {
      if (!Value()) return false;
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= s_.size() || s_[pos_] != ']') return false;
    ++pos_;
    return true;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

TEST(TraceSessionTest, CountersSumAndMax) {
  TraceSession trace;
  trace.Count(TraceCounter::kDbscanPointsScanned, 3);
  trace.Count(TraceCounter::kDbscanPointsScanned, 4);
  trace.CountMax(TraceCounter::kTrackerLiveMax, 7);
  trace.CountMax(TraceCounter::kTrackerLiveMax, 5);  // lower: ignored
  EXPECT_EQ(trace.counter(TraceCounter::kDbscanPointsScanned), 7u);
  EXPECT_EQ(trace.counter(TraceCounter::kTrackerLiveMax), 7u);
  EXPECT_EQ(trace.counter(TraceCounter::kConvoysEmitted), 0u);
  EXPECT_TRUE(IsMaxCounter(TraceCounter::kTrackerLiveMax));
  EXPECT_FALSE(IsMaxCounter(TraceCounter::kDbscanPointsScanned));
}

TEST(TraceSessionTest, SpanNestingOnOneTrack) {
  TraceSession trace;
  {
    ScopedSpan outer(&trace, "outer");
    {
      ScopedSpan inner(&trace, "inner");
    }
  }
  const std::vector<TraceEvent> events = trace.Events();
  ASSERT_EQ(events.size(), 2u);
  // Spans close inner-first, so "inner" is recorded before "outer".
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[0].track, events[1].track);
  // The inner interval nests inside the outer one.
  EXPECT_GE(events[0].start_ns, events[1].start_ns);
  EXPECT_LE(events[0].start_ns + events[0].dur_ns,
            events[1].start_ns + events[1].dur_ns);
  EXPECT_EQ(trace.NumTracks(), 1u);
}

TEST(TraceSessionTest, ThreadsMergeOntoSeparateOrderedTracks) {
  TraceSession trace;
  constexpr int kThreads = 3;
  constexpr int kSpansPerThread = 5;
  std::vector<std::thread> workers;
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&trace] {
      for (int j = 0; j < kSpansPerThread; ++j) {
        ScopedSpan span(&trace, "work");
        trace.Count(TraceCounter::kFilterPartitions, 1);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(trace.NumTracks(), static_cast<size_t>(kThreads));
  EXPECT_EQ(trace.counter(TraceCounter::kFilterPartitions),
            static_cast<uint64_t>(kThreads * kSpansPerThread));

  // Events() concatenates tracks; within a track, spans appear in the
  // order the thread recorded them (monotone start times).
  const std::vector<TraceEvent> events = trace.Events();
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads * kSpansPerThread));
  uint64_t prev_start = 0;
  uint32_t prev_track = events[0].track;
  for (const TraceEvent& e : events) {
    if (e.track != prev_track) {
      prev_track = e.track;
      prev_start = 0;
    }
    EXPECT_GE(e.start_ns, prev_start);
    prev_start = e.start_ns;
  }
}

TEST(TraceSessionTest, ObservedSeriesSummarized) {
  TraceSession trace;
  for (int i = 1; i <= 100; ++i) {
    trace.Observe("latency_ms", static_cast<double>(i));
  }
  const QueryMetrics metrics = trace.Metrics();
  ASSERT_EQ(metrics.series.size(), 1u);
  const QueryMetrics::SeriesSummary& s = metrics.series[0];
  EXPECT_EQ(s.name, "latency_ms");
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  EXPECT_GE(s.p90, s.p50);
  EXPECT_GE(s.p99, s.p90);
}

TEST(TraceSessionTest, DisabledTraceAllocatesNothing) {
  TraceSession* const trace = nullptr;
  // Warm up anything lazy on this thread, then measure.
  {
    ScopedSpan span(trace, "warmup");
  }
  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    ScopedSpan span(trace, "disabled");
    TraceCount(trace, TraceCounter::kDbscanPointsScanned, 1);
    TraceCountMax(trace, TraceCounter::kTrackerLiveMax, 9);
    TraceObserve(trace, "series", 1.0);
  }
  const uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
}

// ---------------------------------------------------------------------------
// Engine integration: counter determinism, sinks, metrics plumbing.
// ---------------------------------------------------------------------------

// One traced CMC-family execution on a FRESH engine (a fresh engine builds a
// fresh store, so grid-cache hit/miss counts depend only on the query, not
// on what earlier runs left cached).
QueryMetrics TracedRun(const TrajectoryDatabase& db, AlgorithmChoice choice,
                       size_t num_threads, size_t* num_convoys = nullptr) {
  ConvoyEngine engine(db);
  ConvoyQuery query{3, 3, 5.0};
  query.num_threads = num_threads;
  TraceSession trace;
  const auto plan = engine.Prepare(query, choice, {}, {}, &trace);
  EXPECT_TRUE(plan.ok());
  ExecHooks hooks;
  hooks.trace = &trace;
  const auto result = engine.Execute(*plan, hooks);
  EXPECT_TRUE(result.ok());
  if (num_convoys != nullptr) *num_convoys = result->Count();
  return result->metrics();
}

TEST(TraceEngineTest, CounterTotalsBitIdenticalAcrossThreadCounts) {
  Rng rng(20260807);
  const TrajectoryDatabase db = RandomClumpyDb(rng, 40, 30, 60.0, 1.0);
  for (const AlgorithmChoice choice :
       {AlgorithmChoice::kCmc, AlgorithmChoice::kCutsStar}) {
    const QueryMetrics base = TracedRun(db, choice, 1);
    ASSERT_TRUE(base.enabled);
    // The run must have done real work, or this test vacuously passes.
    EXPECT_GT(
        base.CounterAt(static_cast<size_t>(TraceCounter::kDbscanPointsScanned)),
        0u);
    for (const size_t threads : {2u, 8u}) {
      const QueryMetrics other = TracedRun(db, choice, threads);
      for (size_t i = 0; i < kNumTraceCounters; ++i) {
        EXPECT_EQ(base.CounterAt(i), other.CounterAt(i))
            << "counter " << ToString(static_cast<TraceCounter>(i))
            << " diverged at " << threads << " threads";
      }
    }
  }
}

TEST(TraceEngineTest, SinkCountsEmissionsAndRecordsSeries) {
  Rng rng(7);
  const TrajectoryDatabase db = RandomClumpyDb(rng, 30, 20, 40.0, 1.0);
  ConvoyEngine engine(db);
  TraceSession trace;
  const auto plan = engine.Prepare(ConvoyQuery{3, 3, 5.0},
                                   AlgorithmChoice::kCmc, {}, {}, &trace);
  ASSERT_TRUE(plan.ok());
  ExecHooks hooks;
  hooks.trace = &trace;
  size_t sink_total = 0;
  hooks.sink = [&sink_total](std::vector<Convoy>&& batch) {
    sink_total += batch.size();
  };
  const auto result = engine.Execute(*plan, hooks);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(trace.counter(TraceCounter::kConvoysEmitted), sink_total);
  if (sink_total > 0) {
    const QueryMetrics metrics = result->metrics();
    bool found = false;
    for (const QueryMetrics::SeriesSummary& s : metrics.series) {
      if (s.name == "sink.time_to_first_convoy_ms") found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(TraceEngineTest, EngineStoreMetricsAccumulateWithoutTrace) {
  Rng rng(11);
  const TrajectoryDatabase db = RandomClumpyDb(rng, 30, 20, 40.0, 1.0);
  ConvoyEngine engine(db);
  const auto plan = engine.Prepare(ConvoyQuery{3, 3, 5.0},
                                   AlgorithmChoice::kCmc);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.Execute(*plan).ok());
  const EngineStoreMetrics cold = engine.StoreMetrics();
  EXPECT_GT(cold.store.grid_cache_misses, 0u);
  ASSERT_TRUE(engine.Execute(*plan).ok());
  const EngineStoreMetrics warm = engine.StoreMetrics();
  EXPECT_GT(warm.store.grid_cache_hits, cold.store.grid_cache_hits);
  EXPECT_EQ(warm.store.grid_cache_misses, cold.store.grid_cache_misses);

  // The simplification cache is CuTS-family territory: first Prepare
  // misses, the second hits.
  const auto cuts1 = engine.Prepare(ConvoyQuery{3, 3, 5.0},
                                    AlgorithmChoice::kCutsStar);
  ASSERT_TRUE(cuts1.ok());
  const auto cuts2 = engine.Prepare(ConvoyQuery{3, 3, 5.0},
                                    AlgorithmChoice::kCutsStar);
  ASSERT_TRUE(cuts2.ok());
  const EngineStoreMetrics simp = engine.StoreMetrics();
  EXPECT_GT(simp.simplify_cache_misses, 0u);
  EXPECT_GT(simp.simplify_cache_hits, 0u);
}

TEST(TraceEngineTest, ExplainAnalyzeRendersMetricsOrHint) {
  Rng rng(13);
  const TrajectoryDatabase db = RandomClumpyDb(rng, 25, 15, 40.0, 1.0);
  ConvoyEngine engine(db);
  const auto plan = engine.Prepare(ConvoyQuery{3, 3, 5.0},
                                   AlgorithmChoice::kCmc);
  ASSERT_TRUE(plan.ok());

  // Untraced: the analyze block explains how to enable tracing.
  const auto untraced = engine.Execute(*plan);
  ASSERT_TRUE(untraced.ok());
  EXPECT_FALSE(untraced->metrics().enabled);
  EXPECT_NE(untraced->ExplainAnalyze().find("no trace attached"),
            std::string::npos);

  // Traced: counters and spans appear.
  TraceSession trace;
  const auto traced_plan = engine.Prepare(ConvoyQuery{3, 3, 5.0},
                                          AlgorithmChoice::kCmc, {}, {},
                                          &trace);
  ASSERT_TRUE(traced_plan.ok());
  ExecHooks hooks;
  hooks.trace = &trace;
  const auto traced = engine.Execute(*traced_plan, hooks);
  ASSERT_TRUE(traced.ok());
  EXPECT_TRUE(traced->metrics().enabled);
  const std::string text = traced->ExplainAnalyze();
  EXPECT_NE(text.find("analyze"), std::string::npos);
  EXPECT_NE(text.find("dbscan.points_scanned"), std::string::npos);
  EXPECT_NE(text.find("execute"), std::string::npos);
}

TEST(TraceEngineTest, ResultSetJsonCarriesValidMetricsBlock) {
  Rng rng(17);
  const TrajectoryDatabase db = RandomClumpyDb(rng, 25, 15, 40.0, 1.0);
  ConvoyEngine engine(db);
  TraceSession trace;
  const auto plan = engine.Prepare(ConvoyQuery{3, 3, 5.0},
                                   AlgorithmChoice::kCutsStar, {}, {}, &trace);
  ASSERT_TRUE(plan.ok());
  ExecHooks hooks;
  hooks.trace = &trace;
  const auto result = engine.Execute(*plan, hooks);
  ASSERT_TRUE(result.ok());

  std::ostringstream report;
  SaveResultSetJson(*result, report);
  const std::string json = report.str();
  EXPECT_NE(json.find("\"metrics\":{\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"store.grid_cache_hits\""), std::string::npos)
      << "counter catalog missing from metrics JSON";
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
}

TEST(TraceSessionTest, ChromeTraceExportIsValidJson) {
  TraceSession trace;
  {
    ScopedSpan span(&trace, "phase_a");
    ScopedSpan nested(&trace, "phase_b");
  }
  std::thread worker([&trace] {
    SetTraceThreadLabel("pool-worker");
    ScopedSpan span(&trace, "worker_phase");
  });
  worker.join();

  std::ostringstream out;
  trace.WriteChromeTrace(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("pool-worker"), std::string::npos);
  EXPECT_NE(json.find("phase_b"), std::string::npos);
}

}  // namespace
}  // namespace convoy
