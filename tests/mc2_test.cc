#include "core/mc2.h"

#include <gtest/gtest.h>

#include "core/cmc.h"
#include "tests/test_util.h"

namespace convoy {
namespace {

using testutil::FromXRows;

Mc2Options Theta(double theta) {
  Mc2Options o;
  o.theta = theta;
  return o;
}

TEST(Mc2Test, EmptyDatabase) {
  EXPECT_TRUE(Mc2(TrajectoryDatabase(), ConvoyQuery{2, 3, 1.0}).empty());
}

TEST(Mc2Test, StableGroupReported) {
  const auto db = FromXRows({{0, 1, 2, 3}, {0, 1, 2, 3}}, 0.5);
  const auto result = Mc2(db, ConvoyQuery{2, 3, 1.0}, Theta(1.0));
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].objects, (std::vector<ObjectId>{0, 1}));
  EXPECT_EQ(result[0].start_tick, 0);
  EXPECT_EQ(result[0].end_tick, 3);
}

// Paper Figure 2(a): o2,o3,o4 form a convoy but with theta = 1 the overlap
// between consecutive clusters is 3/4 (o1 is in the first cluster only), so
// MC2 misses the group — a false negative of the moving-cluster model.
TEST(Mc2Test, PaperFigure2aFalseNegativeAtThetaOne) {
  // Four objects; o1 (index 0) is close at t=0 only, the other three stay
  // together through t=0..2.
  const auto db = FromXRows({{0.0, 30.0, 60.0},
                             {0.6, 1.6, 2.6},
                             {1.2, 2.2, 3.2},
                             {1.8, 2.8, 3.8}});
  const ConvoyQuery query{3, 3, 1.0};

  // CMC finds the 3-object convoy over all 3 ticks.
  const auto exact = Cmc(db, query);
  ASSERT_EQ(exact.size(), 1u);
  EXPECT_EQ(exact[0].objects, (std::vector<ObjectId>{1, 2, 3}));

  // MC2 with theta=1.0: cluster at t0 is {0,1,2,3}, at t1 it is {1,2,3};
  // Jaccard 3/4 < 1, the chain breaks; the t1..t2 chain spans only 2 ticks.
  const auto reported = Mc2(db, query, Theta(1.0));
  EXPECT_TRUE(Uncovered(exact, reported).empty() == false)
      << "theta=1 should miss the paper's Figure 2(a) convoy";

  // With theta = 0.5 the chain survives.
  const auto relaxed = Mc2(db, query, Theta(0.5));
  EXPECT_TRUE(Uncovered(exact, relaxed).empty());
}

// Paper Figure 2(b): gradual membership turnover keeps consecutive overlap
// high though no common object set survives. The chain exists as a moving
// cluster, but since the running intersection empties out, the adapter
// reports nothing — turnover chains cannot masquerade as convoys.
TEST(Mc2Test, GradualTurnoverChainHasNoCommonObjects) {
  // t0: {0,1} together; t1: {1,2} together; t2: {2,3} together.
  const auto db = FromXRows({{0.0, 50.0, 90.0, 130.0},
                             {0.6, 10.0, 60.0, 95.0},
                             {30.0, 10.6, 20.0, 65.0},
                             {70.0, 40.0, 20.6, 30.0}});
  // No pair stays within e for 2 consecutive ticks:
  const ConvoyQuery query{2, 2, 1.0};
  EXPECT_TRUE(Cmc(db, query).empty());
  // MC2 with theta <= 1/3 chains {0,1} -> {1,2} -> {2,3}, but the common
  // object set of the chain is empty, so nothing is reported either.
  EXPECT_TRUE(Mc2(db, query, Theta(0.3)).empty());
}

TEST(Mc2Test, NoLifetimeConstraint) {
  // Two ticks together only — a convoy query with k=3 has no result, but
  // MC2 reports the chain (its model has no k).
  const auto db = FromXRows({{0, 1, 40}, {0.4, 1.4, 80}});
  EXPECT_TRUE(Cmc(db, ConvoyQuery{2, 3, 1.0}).empty());
  const auto reported = Mc2(db, ConvoyQuery{2, 3, 1.0}, Theta(0.9));
  ASSERT_EQ(reported.size(), 1u);
  EXPECT_EQ(reported[0].Lifetime(), 2);
}

TEST(Mc2Test, MinDurationFloorSuppressesSingletons) {
  const auto db = FromXRows({{0, 50}, {0.4, 90}});
  Mc2Options options = Theta(0.5);
  options.min_duration = 2;
  // Together at tick 0 only: chain of one snapshot, not reported.
  EXPECT_TRUE(Mc2(db, ConvoyQuery{2, 2, 1.0}, options).empty());
}

TEST(Mc2AccuracyTest, PerfectInputGivesZeroErrors) {
  const auto db = FromXRows({{0, 1, 2, 3}, {0, 1, 2, 3}}, 0.5);
  const ConvoyQuery query{2, 3, 1.0};
  const auto exact = Cmc(db, query);
  const Mc2Accuracy acc = MeasureMc2Accuracy(db, query, Theta(1.0), exact);
  EXPECT_DOUBLE_EQ(acc.false_positive_pct, 0.0);
  EXPECT_DOUBLE_EQ(acc.false_negative_pct, 0.0);
  EXPECT_EQ(acc.reported, 1u);
  EXPECT_EQ(acc.actual, 1u);
}

TEST(Mc2AccuracyTest, ShortChainsCountAsFalsePositives) {
  // MC2 reports the 2-tick chain; with k=3 it fails verification.
  const auto db = FromXRows({{0, 1, 40}, {0.4, 1.4, 80}});
  const ConvoyQuery query{2, 3, 1.0};
  const auto exact = Cmc(db, query);
  const Mc2Accuracy acc = MeasureMc2Accuracy(db, query, Theta(0.9), exact);
  EXPECT_DOUBLE_EQ(acc.false_positive_pct, 100.0);
  EXPECT_EQ(acc.actual, 0u);
}

TEST(Mc2AccuracyTest, MissedConvoyCountsAsFalseNegative) {
  const auto db = FromXRows({{0.0, 30.0, 60.0},
                             {0.6, 1.6, 2.6},
                             {1.2, 2.2, 3.2},
                             {1.8, 2.8, 3.8}});
  const ConvoyQuery query{3, 3, 1.0};
  const auto exact = Cmc(db, query);
  ASSERT_EQ(exact.size(), 1u);
  const Mc2Accuracy acc = MeasureMc2Accuracy(db, query, Theta(1.0), exact);
  EXPECT_DOUBLE_EQ(acc.false_negative_pct, 100.0);
}

}  // namespace
}  // namespace convoy
