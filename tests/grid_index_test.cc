#include "cluster/grid_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/random.h"

namespace convoy {
namespace {

TEST(GridIndexTest, EmptyIndex) {
  const GridIndex index({}, 1.0);
  EXPECT_EQ(index.NumPoints(), 0u);
  EXPECT_TRUE(index.WithinRadius(Point(0, 0), 1.0).empty());
}

TEST(GridIndexTest, SinglePointSelfQuery) {
  const GridIndex index({Point(5, 5)}, 2.0);
  const auto hits = index.WithinRadius(Point(5, 5), 2.0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 0u);
}

TEST(GridIndexTest, RadiusIsInclusive) {
  const GridIndex index({Point(0, 0), Point(3, 4)}, 5.0);
  // D((0,0),(3,4)) = 5 exactly.
  EXPECT_EQ(index.WithinRadius(Point(0, 0), 5.0).size(), 2u);
}

TEST(GridIndexTest, PointsAcrossCellBoundaries) {
  // Points in adjacent cells must still be found.
  const GridIndex index({Point(0.9, 0.9), Point(1.1, 1.1)}, 1.0);
  EXPECT_EQ(index.WithinRadius(Point(1.0, 1.0), 1.0).size(), 2u);
}

TEST(GridIndexTest, NegativeCoordinates) {
  const GridIndex index({Point(-5.5, -3.2), Point(-5.0, -3.0)}, 1.0);
  EXPECT_EQ(index.WithinRadius(Point(-5.2, -3.1), 1.0).size(), 2u);
}

TEST(GridIndexTest, MatchesBruteForceOnRandomData) {
  Rng rng(2024);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<Point> points;
    const size_t n = 50 + static_cast<size_t>(rng.UniformInt(0, 150));
    points.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      points.emplace_back(rng.Uniform(-50, 50), rng.Uniform(-50, 50));
    }
    const double radius = rng.Uniform(1.0, 10.0);
    const GridIndex index(points, radius);
    for (int probe_i = 0; probe_i < 10; ++probe_i) {
      const Point probe(rng.Uniform(-50, 50), rng.Uniform(-50, 50));
      std::vector<size_t> got = index.WithinRadius(probe, radius);
      std::vector<size_t> want;
      for (size_t i = 0; i < n; ++i) {
        if (D(points[i], probe) <= radius) want.push_back(i);
      }
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, want);
    }
  }
}

TEST(GridIndexTest, SmallerQueryRadiusThanCellSize) {
  Rng rng(7);
  std::vector<Point> points;
  for (int i = 0; i < 100; ++i) {
    points.emplace_back(rng.Uniform(0, 20), rng.Uniform(0, 20));
  }
  const GridIndex index(points, 5.0);
  const Point probe(10, 10);
  std::vector<size_t> got = index.WithinRadius(probe, 2.5);
  std::vector<size_t> want;
  for (size_t i = 0; i < points.size(); ++i) {
    if (D(points[i], probe) <= 2.5) want.push_back(i);
  }
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, want);
}

TEST(GridIndexTest, WithinRadiusIntoClearsOutput) {
  const GridIndex index({Point(0, 0)}, 1.0);
  std::vector<size_t> out = {99, 98};
  index.WithinRadiusInto(Point(10, 10), 1.0, &out);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace convoy
