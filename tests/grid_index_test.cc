#include "cluster/grid_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace convoy {
namespace {

TEST(GridIndexTest, EmptyIndex) {
  const GridIndex index({}, 1.0);
  EXPECT_EQ(index.NumPoints(), 0u);
  EXPECT_TRUE(index.WithinRadius(Point(0, 0), 1.0).empty());
}

TEST(GridIndexTest, SinglePointSelfQuery) {
  const GridIndex index({Point(5, 5)}, 2.0);
  const auto hits = index.WithinRadius(Point(5, 5), 2.0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 0u);
}

TEST(GridIndexTest, RadiusIsInclusive) {
  const GridIndex index({Point(0, 0), Point(3, 4)}, 5.0);
  // D((0,0),(3,4)) = 5 exactly.
  EXPECT_EQ(index.WithinRadius(Point(0, 0), 5.0).size(), 2u);
}

TEST(GridIndexTest, PointsAcrossCellBoundaries) {
  // Points in adjacent cells must still be found.
  const GridIndex index({Point(0.9, 0.9), Point(1.1, 1.1)}, 1.0);
  EXPECT_EQ(index.WithinRadius(Point(1.0, 1.0), 1.0).size(), 2u);
}

TEST(GridIndexTest, NegativeCoordinates) {
  const GridIndex index({Point(-5.5, -3.2), Point(-5.0, -3.0)}, 1.0);
  EXPECT_EQ(index.WithinRadius(Point(-5.2, -3.1), 1.0).size(), 2u);
}

TEST(GridIndexTest, MatchesBruteForceOnRandomData) {
  Rng rng(2024);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<Point> points;
    const size_t n = 50 + static_cast<size_t>(rng.UniformInt(0, 150));
    points.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      points.emplace_back(rng.Uniform(-50, 50), rng.Uniform(-50, 50));
    }
    const double radius = rng.Uniform(1.0, 10.0);
    const GridIndex index(points, radius);
    for (int probe_i = 0; probe_i < 10; ++probe_i) {
      const Point probe(rng.Uniform(-50, 50), rng.Uniform(-50, 50));
      std::vector<size_t> got = index.WithinRadius(probe, radius);
      std::vector<size_t> want;
      for (size_t i = 0; i < n; ++i) {
        if (D(points[i], probe) <= radius) want.push_back(i);
      }
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, want);
    }
  }
}

TEST(GridIndexTest, SmallerQueryRadiusThanCellSize) {
  Rng rng(7);
  std::vector<Point> points;
  for (int i = 0; i < 100; ++i) {
    points.emplace_back(rng.Uniform(0, 20), rng.Uniform(0, 20));
  }
  const GridIndex index(points, 5.0);
  const Point probe(10, 10);
  std::vector<size_t> got = index.WithinRadius(probe, 2.5);
  std::vector<size_t> want;
  for (size_t i = 0; i < points.size(); ++i) {
    if (D(points[i], probe) <= 2.5) want.push_back(i);
  }
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, want);
}

// Regression for the NDEBUG contract gap: radius > cell_size used to be an
// assert (compiled out in release builds, silently returning the 3x3 subset
// of the true neighborhood). The index now widens to a multi-ring scan and
// must stay exhaustive for any radius/cell_size ratio.
TEST(GridIndexTest, LargerQueryRadiusThanCellSizeIsExhaustive) {
  Rng rng(31);
  std::vector<Point> points;
  for (int i = 0; i < 400; ++i) {
    points.emplace_back(rng.Uniform(-40, 40), rng.Uniform(-40, 40));
  }
  const GridIndex index(points, 2.0);
  for (const double radius : {2.5, 5.0, 13.7, 60.0, 1e9}) {
    for (int probe_i = 0; probe_i < 5; ++probe_i) {
      const Point probe(rng.Uniform(-40, 40), rng.Uniform(-40, 40));
      std::vector<size_t> got = index.WithinRadius(probe, radius);
      std::vector<size_t> want;
      for (size_t i = 0; i < points.size(); ++i) {
        if (D(points[i], probe) <= radius) want.push_back(i);
      }
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      EXPECT_EQ(got, want) << "radius " << radius;
    }
  }
}

TEST(GridIndexTest, DegenerateCellSizeStillExhaustive) {
  // eps = 0 queries ("exact coincidence") legitimately build a zero-sized
  // grid; it must behave, not divide by zero.
  const GridIndex zero({Point(1, 1), Point(1, 1), Point(2, 2)}, 0.0);
  EXPECT_EQ(zero.WithinRadius(Point(1, 1), 0.0).size(), 2u);
  EXPECT_EQ(zero.WithinRadius(Point(1, 1), 5.0).size(), 3u);
  const GridIndex nan_cell({Point(0, 0)}, std::nan(""));
  EXPECT_EQ(nan_cell.WithinRadius(Point(0, 0), 1.0).size(), 1u);
}

TEST(GridIndexTest, HostileQueriesReturnNoFalsePositives) {
  const GridIndex index({Point(0, 0), Point(1, 0)}, 1.0);
  // NaN / negative radii: no hits, no crash.
  EXPECT_TRUE(index.WithinRadius(Point(0, 0), std::nan("")).empty());
  EXPECT_TRUE(index.WithinRadius(Point(0, 0), -1.0).empty());
  // A NaN probe matches nothing (distance comparisons are false).
  EXPECT_TRUE(index.WithinRadius(Point(std::nan(""), 0.0), 10.0).empty());
  // Astronomical coordinates saturate onto boundary cells instead of
  // invoking UB; nothing nearby, nothing returned.
  EXPECT_TRUE(index.WithinRadius(Point(1e300, -1e300), 1.0).empty());
}

TEST(GridIndexTest, WithinRadiusIntoClearsOutput) {
  const GridIndex index({Point(0, 0)}, 1.0);
  std::vector<size_t> out = {99, 98};
  index.WithinRadiusInto(Point(10, 10), 1.0, &out);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace convoy
