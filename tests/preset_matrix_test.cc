// Full preset x variant exactness matrix at small scale: every CuTS
// variant against CMC on every dataset shape the paper evaluates,
// including the R-tree candidate path and both refinement modes for the
// recommended variant. Complements cuts_test.cc's random-workload sweep
// with the actual workload *shapes* (short scattered trajectories, dense
// herding, variable lengths, sparse sampling).

#include <gtest/gtest.h>

#include "convoy/convoy.h"

namespace convoy {
namespace {

struct MatrixCase {
  std::string label;
  int preset;  // 0..3 = truck/cattle/car/taxi
  CutsVariant variant;
  bool rtree;
};

ScenarioConfig SmallPreset(int preset) {
  switch (preset) {
    case 0: {
      ScenarioConfig c = TruckLikeConfig(0.05);
      c.num_objects = 60;
      c.num_groups = 3;
      return c;
    }
    case 1: {
      ScenarioConfig c = CattleLikeConfig(0.006);
      c.group_duration_min = 250;
      c.group_duration_max = 450;
      return c;
    }
    case 2: {
      ScenarioConfig c = CarLikeConfig(0.06);
      c.num_objects = 40;
      c.num_groups = 2;
      return c;
    }
    default: {
      ScenarioConfig c = TaxiLikeConfig(0.35);
      c.num_objects = 80;
      c.query.k = 90;
      c.group_duration_min = 110;
      c.group_duration_max = 180;
      return c;
    }
  }
}

class PresetMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(PresetMatrixTest, VariantMatchesCmcOnPresetShape) {
  const MatrixCase& param = GetParam();
  const ScenarioData data =
      GenerateScenario(SmallPreset(param.preset), 3000 + param.preset);
  const auto exact = Cmc(data.db, data.query);

  CutsFilterOptions options;
  options.refine_mode = RefineMode::kFullWindow;
  options.use_rtree = param.rtree;
  const auto got = Cuts(data.db, data.query, param.variant, options);
  EXPECT_TRUE(SameResultSet(exact, got))
      << param.label << ": got " << got.size() << " vs " << exact.size();
}

std::vector<MatrixCase> MakeMatrix() {
  static const char* kNames[] = {"truck", "cattle", "car", "taxi"};
  std::vector<MatrixCase> cases;
  for (int preset = 0; preset < 4; ++preset) {
    for (const CutsVariant variant :
         {CutsVariant::kCuts, CutsVariant::kCutsPlus,
          CutsVariant::kCutsStar}) {
      for (const bool rtree : {false, true}) {
        const std::string label =
            std::string(kNames[preset]) + "_" +
            std::to_string(static_cast<int>(variant)) +
            (rtree ? "_rtree" : "_scan");
        cases.push_back(MatrixCase{label, preset, variant, rtree});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetMatrixTest,
                         ::testing::ValuesIn(MakeMatrix()),
                         [](const auto& param_info) {
                           return param_info.param.label;
                         });

}  // namespace
}  // namespace convoy
