#include "cluster/polyline_dbscan.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "geom/distance.h"
#include "util/random.h"

namespace convoy {
namespace {

PartitionPolyline MakeLine(ObjectId id, double y, Tick t0, Tick t1,
                           double tolerance = 0.0) {
  PartitionPolyline poly;
  poly.object = id;
  poly.segments.push_back(
      TimedSegment(TimedPoint(0, y, t0), TimedPoint(10, y, t1)));
  poly.tolerances.push_back(tolerance);
  poly.FinalizeBounds();
  return poly;
}

PolylineDbscanOptions Opts(double eps, size_t min_pts,
                           SegmentDistanceKind dist = SegmentDistanceKind::kDll,
                           bool box_pruning = true) {
  PolylineDbscanOptions o;
  o.eps = eps;
  o.min_pts = min_pts;
  o.distance = dist;
  o.use_box_pruning = box_pruning;
  return o;
}

TEST(PolylineNeighborTest, ParallelLinesWithinBound) {
  const PartitionPolyline a = MakeLine(0, 0.0, 0, 10);
  const PartitionPolyline b = MakeLine(1, 3.0, 0, 10);
  EXPECT_TRUE(PolylinesAreNeighbors(a, b, Opts(3.0, 2)));
  EXPECT_FALSE(PolylinesAreNeighbors(a, b, Opts(2.9, 2)));
}

TEST(PolylineNeighborTest, ToleranceEnlargesBound) {
  // Lemma 1: prune only if DLL > e + tol_q + tol_i. Distance 3.0 with
  // e=2 fails, but adding tolerances 0.6 + 0.6 admits it.
  const PartitionPolyline a = MakeLine(0, 0.0, 0, 10, 0.6);
  const PartitionPolyline b = MakeLine(1, 3.0, 0, 10, 0.6);
  EXPECT_TRUE(PolylinesAreNeighbors(a, b, Opts(2.0, 2)));

  const PartitionPolyline c = MakeLine(2, 3.0, 0, 10, 0.0);
  EXPECT_FALSE(PolylinesAreNeighbors(a, c, Opts(2.0, 2)));
}

TEST(PolylineNeighborTest, DisjointTimeIntervalsNeverNeighbors) {
  const PartitionPolyline a = MakeLine(0, 0.0, 0, 5);
  const PartitionPolyline b = MakeLine(1, 0.0, 6, 10);  // same place, later
  EXPECT_FALSE(PolylinesAreNeighbors(a, b, Opts(100.0, 2)));
}

TEST(PolylineNeighborTest, DStarTighterThanDll) {
  // Two objects crossing the same spot at different moments within the
  // shared interval: DLL sees distance 0, D* sees them apart.
  PartitionPolyline a;
  a.object = 0;
  a.segments.push_back(
      TimedSegment(TimedPoint(0, 0, 0), TimedPoint(10, 0, 10)));
  a.tolerances.push_back(0.0);
  a.FinalizeBounds();

  PartitionPolyline b;
  b.object = 1;
  b.segments.push_back(
      TimedSegment(TimedPoint(10, 0, 0), TimedPoint(20, 0, 10)));
  b.tolerances.push_back(0.0);
  b.FinalizeBounds();

  // Spatially the segments touch at x=10 => DLL = 0 <= e: neighbors.
  EXPECT_TRUE(
      PolylinesAreNeighbors(a, b, Opts(1.0, 2, SegmentDistanceKind::kDll)));
  // Time-synchronized: the gap is always 10 => not neighbors under D*.
  EXPECT_FALSE(
      PolylinesAreNeighbors(a, b, Opts(1.0, 2, SegmentDistanceKind::kDStar)));
}

TEST(PolylineNeighborTest, BoxPruningCountsStats) {
  const PartitionPolyline a = MakeLine(0, 0.0, 0, 10);
  const PartitionPolyline b = MakeLine(1, 100.0, 0, 10);
  PolylineClusterStats stats;
  EXPECT_FALSE(PolylinesAreNeighbors(a, b, Opts(1.0, 2), &stats));
  EXPECT_EQ(stats.pair_tests, 1u);
  EXPECT_EQ(stats.box_pruned, 1u);
  EXPECT_EQ(stats.segment_tests, 0u);
}

TEST(PolylineNeighborTest, BoxPruningNeverChangesTheAnswer) {
  Rng rng(555);
  for (int iter = 0; iter < 300; ++iter) {
    PartitionPolyline a;
    a.object = 0;
    PartitionPolyline b;
    b.object = 1;
    Tick t = 0;
    for (int s = 0; s < 3; ++s) {
      const Tick t2 = t + rng.UniformInt(1, 5);
      a.segments.push_back(TimedSegment(
          TimedPoint(rng.Uniform(0, 40), rng.Uniform(0, 40), t),
          TimedPoint(rng.Uniform(0, 40), rng.Uniform(0, 40), t2)));
      a.tolerances.push_back(rng.Uniform(0, 2));
      t = t2;
    }
    t = rng.UniformInt(0, 8);
    for (int s = 0; s < 3; ++s) {
      const Tick t2 = t + rng.UniformInt(1, 5);
      b.segments.push_back(TimedSegment(
          TimedPoint(rng.Uniform(0, 40), rng.Uniform(0, 40), t),
          TimedPoint(rng.Uniform(0, 40), rng.Uniform(0, 40), t2)));
      b.tolerances.push_back(rng.Uniform(0, 2));
      t = t2;
    }
    a.FinalizeBounds();
    b.FinalizeBounds();
    const double eps = rng.Uniform(1, 15);
    for (const auto dist :
         {SegmentDistanceKind::kDll, SegmentDistanceKind::kDStar}) {
      const bool with = PolylinesAreNeighbors(a, b, Opts(eps, 2, dist, true));
      const bool without =
          PolylinesAreNeighbors(a, b, Opts(eps, 2, dist, false));
      EXPECT_EQ(with, without);
    }
  }
}

TEST(PolylineDbscanTest, EmptyInput) {
  EXPECT_TRUE(PolylineDbscan({}, Opts(1.0, 2)).clusters.empty());
}

TEST(PolylineDbscanTest, ThreeParallelTrajectoriesOneCluster) {
  const std::vector<PartitionPolyline> polys = {
      MakeLine(0, 0.0, 0, 10), MakeLine(1, 1.0, 0, 10),
      MakeLine(2, 2.0, 0, 10)};
  const Clustering c = PolylineDbscan(polys, Opts(1.5, 3));
  ASSERT_EQ(c.clusters.size(), 1u);
  EXPECT_EQ(c.clusters[0].size(), 3u);
}

TEST(PolylineDbscanTest, ChainConnectivityAcrossPolylines) {
  // 0 and 2 are 4 apart but connected through 1 (density connection).
  const std::vector<PartitionPolyline> polys = {
      MakeLine(0, 0.0, 0, 10), MakeLine(1, 2.0, 0, 10),
      MakeLine(2, 4.0, 0, 10)};
  const Clustering c = PolylineDbscan(polys, Opts(2.0, 2));
  ASSERT_EQ(c.clusters.size(), 1u);
  EXPECT_EQ(c.clusters[0].size(), 3u);
}

TEST(PolylineDbscanTest, FarGroupSeparates) {
  const std::vector<PartitionPolyline> polys = {
      MakeLine(0, 0.0, 0, 10), MakeLine(1, 1.0, 0, 10),
      MakeLine(2, 50.0, 0, 10), MakeLine(3, 51.0, 0, 10)};
  const Clustering c = PolylineDbscan(polys, Opts(1.5, 2));
  ASSERT_EQ(c.clusters.size(), 2u);
  EXPECT_EQ(c.clusters[0].size(), 2u);
  EXPECT_EQ(c.clusters[1].size(), 2u);
}

TEST(PolylineDbscanTest, MinPtsRespected) {
  const std::vector<PartitionPolyline> polys = {MakeLine(0, 0.0, 0, 10),
                                                MakeLine(1, 1.0, 0, 10)};
  EXPECT_EQ(PolylineDbscan(polys, Opts(1.5, 3)).clusters.size(), 0u);
  EXPECT_EQ(PolylineDbscan(polys, Opts(1.5, 2)).clusters.size(), 1u);
}

TEST(PolylineDbscanTest, RtreeCandidateGenerationIsEquivalent) {
  // The STR-tree path must produce exactly the same clustering as the
  // all-pairs scan, for both distance kinds, across random inputs.
  Rng rng(808);
  for (int iter = 0; iter < 30; ++iter) {
    std::vector<PartitionPolyline> polys;
    const size_t n = 10 + static_cast<size_t>(rng.UniformInt(0, 60));
    for (size_t i = 0; i < n; ++i) {
      PartitionPolyline poly;
      poly.object = static_cast<ObjectId>(i);
      Tick t = rng.UniformInt(0, 5);
      Point pos(rng.Uniform(0, 80), rng.Uniform(0, 80));
      for (int s = 0; s < 3; ++s) {
        const Tick t2 = t + rng.UniformInt(1, 4);
        const Point next =
            pos + Point(rng.Gaussian(0, 4), rng.Gaussian(0, 4));
        poly.segments.push_back(
            TimedSegment(TimedPoint(pos, t), TimedPoint(next, t2)));
        poly.tolerances.push_back(rng.Uniform(0, 1.5));
        pos = next;
        t = t2;
      }
      poly.FinalizeBounds();
      polys.push_back(std::move(poly));
    }
    for (const auto dist :
         {SegmentDistanceKind::kDll, SegmentDistanceKind::kDStar}) {
      PolylineDbscanOptions scan = Opts(5.0, 3, dist);
      scan.use_rtree = false;
      PolylineDbscanOptions rtree = Opts(5.0, 3, dist);
      rtree.use_rtree = true;
      const Clustering a = PolylineDbscan(polys, scan);
      const Clustering b = PolylineDbscan(polys, rtree);
      ASSERT_EQ(a.clusters.size(), b.clusters.size()) << "iter=" << iter;
      // Same clusters as sets (order of discovery may differ).
      auto canonical = [](Clustering c) {
        for (auto& cl : c.clusters) std::sort(cl.begin(), cl.end());
        std::sort(c.clusters.begin(), c.clusters.end());
        return c.clusters;
      };
      EXPECT_EQ(canonical(a), canonical(b)) << "iter=" << iter;
    }
  }
}

TEST(PolylineDbscanTest, MultiSegmentTimeMerge) {
  // Polylines with several segments; only time-overlapping pairs count.
  PartitionPolyline a;
  a.object = 0;
  a.segments = {TimedSegment(TimedPoint(0, 0, 0), TimedPoint(5, 0, 5)),
                TimedSegment(TimedPoint(5, 0, 5), TimedPoint(10, 0, 10))};
  a.tolerances = {0.0, 0.0};
  a.FinalizeBounds();

  PartitionPolyline b;
  b.object = 1;
  // Far during [0,5], near during [5,10].
  b.segments = {TimedSegment(TimedPoint(0, 50, 0), TimedPoint(5, 50, 5)),
                TimedSegment(TimedPoint(5, 1, 5), TimedPoint(10, 1, 10))};
  b.tolerances = {0.0, 0.0};
  b.FinalizeBounds();

  EXPECT_TRUE(PolylinesAreNeighbors(a, b, Opts(2.0, 2)));
}

}  // namespace
}  // namespace convoy
