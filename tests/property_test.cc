// Cross-cutting randomized properties that tie the whole system together:
// soundness of every reported convoy, determinism, result-set algebra, and
// the structural invariants a result set must satisfy.

#include <gtest/gtest.h>

#include <sstream>

#include "convoy/convoy.h"
#include "tests/test_util.h"

namespace convoy {
namespace {

using testutil::RandomClumpyDb;

class SoundnessTest : public ::testing::TestWithParam<int> {};

// Every convoy any algorithm reports verifies against the definition, and
// the result set is dominance-free.
TEST_P(SoundnessTest, AllReportedConvoysVerifyTrue) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const TrajectoryDatabase db = RandomClumpyDb(rng, 16, 40, 40.0, 0.8, 0.9);
  const ConvoyQuery query{2, 4, 4.0};

  const auto check = [&](const std::vector<Convoy>& result,
                         const char* label) {
    for (const Convoy& c : result) {
      EXPECT_TRUE(VerifyConvoy(db, query, c))
          << label << " reported " << ToString(c);
    }
    for (size_t i = 0; i < result.size(); ++i) {
      for (size_t j = 0; j < result.size(); ++j) {
        if (i != j) {
          EXPECT_FALSE(Covers(result[j], result[i]))
              << label << " kept a dominated convoy";
        }
      }
    }
  };

  check(Cmc(db, query), "CMC");
  check(Cuts(db, query, CutsVariant::kCuts), "CuTS");
  check(Cuts(db, query, CutsVariant::kCutsStar), "CuTS*");
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoundnessTest, ::testing::Range(2000, 2010));

class MaximalityTest : public ::testing::TestWithParam<int> {};

// Completeness at the boundary: every reported convoy is *maximal* — it
// cannot be extended by one tick on either side, and no alive object can
// be added over its whole interval.
TEST_P(MaximalityTest, ReportedConvoysCannotBeExtended) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const TrajectoryDatabase db = RandomClumpyDb(rng, 14, 36, 40.0, 0.8);
  const ConvoyQuery query{2, 4, 4.0};
  for (const Convoy& c : Cmc(db, query)) {
    Convoy earlier = c;
    earlier.start_tick -= 1;
    EXPECT_FALSE(VerifyConvoy(db, query, earlier))
        << ToString(c) << " extends left";
    Convoy later = c;
    later.end_tick += 1;
    EXPECT_FALSE(VerifyConvoy(db, query, later))
        << ToString(c) << " extends right";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaximalityTest, ::testing::Range(2100, 2108));

class DeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(DeterminismTest, RepeatedRunsAreIdentical) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const TrajectoryDatabase db = RandomClumpyDb(rng, 16, 40, 40.0, 0.8);
  const ConvoyQuery query{2, 4, 4.0};
  const auto a = Cuts(db, query, CutsVariant::kCutsStar);
  const auto b = Cuts(db, query, CutsVariant::kCutsStar);
  EXPECT_TRUE(SameResultSet(a, b));
  const auto c = Cmc(db, query);
  const auto d = Cmc(db, query);
  EXPECT_TRUE(SameResultSet(c, d));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismTest,
                         ::testing::Range(2200, 2205));

// Query-parameter monotonicity: loosening a query never loses coverage.
class MonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(MonotonicityTest, SmallerKCoversLargerK) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const TrajectoryDatabase db = RandomClumpyDb(rng, 14, 40, 40.0, 0.8);
  const auto strict = Cmc(db, ConvoyQuery{2, 8, 4.0});
  const auto loose = Cmc(db, ConvoyQuery{2, 4, 4.0});
  // Every k=8 convoy must be covered by some k=4 convoy.
  EXPECT_TRUE(Uncovered(strict, loose).empty());
}

TEST_P(MonotonicityTest, LargerMConvoysAreSubsetsOfSmallerMCoverage) {
  Rng rng(static_cast<uint64_t>(GetParam() + 50));
  const TrajectoryDatabase db = RandomClumpyDb(rng, 16, 40, 40.0, 0.8);
  const auto m3 = Cmc(db, ConvoyQuery{3, 4, 4.0});
  const auto m2 = Cmc(db, ConvoyQuery{2, 4, 4.0});
  // Not exact containment (m changes DBSCAN's core threshold, which can
  // split clusters), but every m=3 convoy's objects travel together, so a
  // covering m=2 convoy must exist whenever density did not *increase*...
  // Density connection with smaller m is strictly weaker, so coverage
  // holds exactly:
  EXPECT_TRUE(Uncovered(m3, m2).empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotonicityTest,
                         ::testing::Range(2300, 2306));

// Result-set algebra sanity on random convoy sets.
class ConvoySetAlgebraTest : public ::testing::TestWithParam<int> {};

TEST_P(ConvoySetAlgebraTest, RemoveDominatedIsSoundAndIdempotent) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  std::vector<Convoy> convoys;
  const size_t n = 5 + static_cast<size_t>(rng.UniformInt(0, 30));
  for (size_t i = 0; i < n; ++i) {
    Convoy c;
    const size_t size = 1 + static_cast<size_t>(rng.UniformInt(0, 4));
    for (size_t j = 0; j < size; ++j) {
      c.objects.push_back(static_cast<ObjectId>(rng.UniformInt(0, 6)));
    }
    c.start_tick = rng.UniformInt(0, 20);
    c.end_tick = c.start_tick + rng.UniformInt(0, 20);
    convoys.push_back(std::move(c));
  }
  const auto pruned = RemoveDominated(convoys);
  // (1) nothing kept is dominated;
  for (size_t i = 0; i < pruned.size(); ++i) {
    for (size_t j = 0; j < pruned.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(Covers(pruned[j], pruned[i]));
      }
    }
  }
  // (2) everything dropped is covered by something kept;
  Canonicalize(&convoys);
  for (const Convoy& original : convoys) {
    bool covered = false;
    for (const Convoy& keep : pruned) {
      if (Covers(keep, original)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << ToString(original);
  }
  // (3) idempotent.
  EXPECT_TRUE(SameResultSet(pruned, RemoveDominated(pruned)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvoySetAlgebraTest,
                         ::testing::Range(2400, 2412));

// CSV round trip of discovery results through the trajectory format: the
// full "save data, reload, re-discover" loop is lossless.
class PersistenceLoopTest : public ::testing::TestWithParam<int> {};

TEST_P(PersistenceLoopTest, ReloadedDataGivesIdenticalConvoys) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const TrajectoryDatabase db = RandomClumpyDb(rng, 12, 30, 40.0, 0.8, 0.8);
  const ConvoyQuery query{2, 4, 4.0};
  std::stringstream buffer;
  SaveTrajectoriesCsv(db, buffer);
  const CsvLoadResult loaded = LoadTrajectoriesCsv(buffer);
  ASSERT_TRUE(loaded.ok);
  EXPECT_TRUE(SameResultSet(Cmc(db, query), Cmc(loaded.db, query)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PersistenceLoopTest,
                         ::testing::Range(2500, 2506));

}  // namespace
}  // namespace convoy
