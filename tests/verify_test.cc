#include "core/verify.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace convoy {
namespace {

using testutil::FromXRows;

TEST(VerifyTest, AcceptsTrueConvoy) {
  const auto db = FromXRows({{0, 1, 2, 3}, {0, 1, 2, 3}}, 0.5);
  EXPECT_TRUE(VerifyConvoy(db, ConvoyQuery{2, 3, 1.0}, Convoy{{0, 1}, 0, 3}));
}

TEST(VerifyTest, RejectsTooFewObjects) {
  const auto db = FromXRows({{0, 1, 2, 3}, {0, 1, 2, 3}}, 0.5);
  EXPECT_FALSE(VerifyConvoy(db, ConvoyQuery{3, 3, 1.0}, Convoy{{0, 1}, 0, 3}));
}

TEST(VerifyTest, RejectsTooShortInterval) {
  const auto db = FromXRows({{0, 1, 2, 3}, {0, 1, 2, 3}}, 0.5);
  EXPECT_FALSE(VerifyConvoy(db, ConvoyQuery{2, 5, 1.0}, Convoy{{0, 1}, 0, 3}));
}

TEST(VerifyTest, RejectsDisconnectedTick) {
  // Objects far apart at tick 2.
  const auto db = FromXRows({{0, 1, 2, 3}, {0.4, 1.4, 50.0, 3.4}});
  EXPECT_FALSE(VerifyConvoy(db, ConvoyQuery{2, 4, 1.0}, Convoy{{0, 1}, 0, 3}));
}

TEST(VerifyTest, RejectsObjectOutsideLifetime) {
  TrajectoryDatabase db;
  Trajectory a(0);
  for (Tick t = 0; t <= 5; ++t) a.Append(static_cast<double>(t), 0, t);
  Trajectory b(1);
  for (Tick t = 2; t <= 5; ++t) b.Append(static_cast<double>(t), 0.4, t);
  db.Add(std::move(a));
  db.Add(std::move(b));
  EXPECT_FALSE(
      VerifyConvoy(db, ConvoyQuery{2, 3, 1.0}, Convoy{{0, 1}, 0, 5}));
  EXPECT_TRUE(VerifyConvoy(db, ConvoyQuery{2, 3, 1.0}, Convoy{{0, 1}, 2, 5}));
}

TEST(VerifyTest, AcceptsChainConnection) {
  // 0 and 2 are 2.0 apart but chained through 1 (density connection).
  const auto db = FromXRows({{0, 1, 2}, {0, 1, 2}, {0, 1, 2}}, 1.0);
  EXPECT_TRUE(
      VerifyConvoy(db, ConvoyQuery{3, 3, 1.1}, Convoy{{0, 1, 2}, 0, 2}));
}

TEST(VerifyTest, ConnectionMayUseOutsideObjects) {
  // The queried pair {0,2} is connected through object 1, which is not part
  // of the convoy: Definition 2's chain ranges over all points.
  const auto db = FromXRows({{0, 1, 2}, {0, 1, 2}, {0, 1, 2}}, 1.0);
  EXPECT_TRUE(VerifyConvoy(db, ConvoyQuery{2, 3, 1.1}, Convoy{{0, 2}, 0, 2}));
}

TEST(VerifyTest, RejectsSplitAcrossClusters) {
  const auto db = FromXRows({{0, 1, 2}, {0, 1, 2}, {50, 51, 52},
                             {50, 51, 52}},
                            0.4);
  EXPECT_FALSE(
      VerifyConvoy(db, ConvoyQuery{2, 3, 1.0}, Convoy{{0, 2}, 0, 2}));
}

TEST(ObjectsConnectedAtTest, InterpolatedPositionsUsed) {
  TrajectoryDatabase db;
  Trajectory a(0);
  a.Append(0, 0, 0);
  a.Append(4, 0, 4);  // ticks 1-3 interpolated
  Trajectory b(1);
  for (Tick t = 0; t <= 4; ++t) b.Append(static_cast<double>(t), 0.4, t);
  db.Add(std::move(a));
  db.Add(std::move(b));
  for (Tick t = 0; t <= 4; ++t) {
    EXPECT_TRUE(ObjectsConnectedAt(db, ConvoyQuery{2, 2, 1.0}, {0, 1}, t));
  }
}

TEST(ObjectsConnectedAtTest, NoiseObjectNotConnected) {
  const auto db = FromXRows({{0, 1}, {0.4, 1.4}, {90, 91}});
  EXPECT_FALSE(ObjectsConnectedAt(db, ConvoyQuery{2, 2, 1.0}, {0, 2}, 0));
}

}  // namespace
}  // namespace convoy
