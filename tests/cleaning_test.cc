#include "traj/cleaning.h"

#include <gtest/gtest.h>

#include "core/cmc.h"
#include "tests/test_util.h"

namespace convoy {
namespace {

Trajectory Walk(ObjectId id, std::initializer_list<TimedPoint> pts) {
  Trajectory traj(id);
  for (const TimedPoint& p : pts) traj.Append(p);
  return traj;
}

TEST(CleaningTest, NoOpOnCleanData) {
  const Trajectory traj = Walk(1, {{0, 0, 0}, {1, 0, 1}, {2, 0, 2}});
  CleaningOptions options;
  options.max_speed = 5.0;
  options.max_gap_ticks = 10;
  CleaningReport report;
  const auto out = CleanTrajectory(traj, options, 1, 0, &report);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].Size(), 3u);
  EXPECT_EQ(report.spikes_removed, 0u);
  EXPECT_EQ(report.trajectories_split, 0u);
}

TEST(CleaningTest, RemovesSpeedSpike) {
  // Sample at tick 2 jumps 500 units in one tick, then returns.
  const Trajectory traj = Walk(
      1, {{0, 0, 0}, {1, 0, 1}, {500, 0, 2}, {3, 0, 3}, {4, 0, 4}});
  CleaningOptions options;
  options.max_speed = 10.0;
  CleaningReport report;
  const auto out = CleanTrajectory(traj, options, 1, 0, &report);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].Size(), 4u);
  EXPECT_EQ(report.spikes_removed, 1u);
  EXPECT_FALSE(out[0].LocationAt(2).has_value());
}

TEST(CleaningTest, SpikeRemovalDisabledByDefault) {
  const Trajectory traj = Walk(1, {{0, 0, 0}, {500, 0, 1}, {0, 0, 2}});
  const auto out = CleanTrajectory(traj, CleaningOptions{}, 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].Size(), 3u);
}

TEST(CleaningTest, SplitsAtLongGap) {
  const Trajectory traj = Walk(
      1, {{0, 0, 0}, {1, 0, 1}, {2, 0, 100}, {3, 0, 101}});
  CleaningOptions options;
  options.max_gap_ticks = 10;
  CleaningReport report;
  const auto out = CleanTrajectory(traj, options, 1, /*id_stride=*/100,
                                   &report);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(report.trajectories_split, 1u);
  EXPECT_EQ(out[0].EndTick(), 1);
  EXPECT_EQ(out[1].BeginTick(), 100);
  EXPECT_EQ(out[0].id(), 1u);
  EXPECT_EQ(out[1].id(), 101u);
}

TEST(CleaningTest, DropsShortFragments) {
  const Trajectory traj = Walk(1, {{0, 0, 0}, {1, 0, 50}, {2, 0, 51}});
  CleaningOptions options;
  options.max_gap_ticks = 10;
  options.min_samples = 2;
  CleaningReport report;
  const auto out = CleanTrajectory(traj, options, 1, 0, &report);
  // First fragment is the lone tick-0 sample: dropped.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].BeginTick(), 50);
  EXPECT_EQ(report.trajectories_dropped, 1u);
}

TEST(CleaningTest, StationaryDuplicatesDropped) {
  const Trajectory traj = Walk(
      1, {{5, 5, 0}, {5, 5, 1}, {5, 5, 2}, {5, 5, 3}, {6, 5, 4}, {6, 5, 5}});
  CleaningOptions options;
  options.drop_stationary_duplicates = true;
  CleaningReport report;
  const auto out = CleanTrajectory(traj, options, 1, 0, &report);
  ASSERT_EQ(out.size(), 1u);
  // Kept: first (5,5), the move to (6,5), and the forced last sample.
  EXPECT_EQ(out[0].Size(), 3u);
  EXPECT_EQ(report.duplicates_removed, 3u);
  // Lifetime preserved.
  EXPECT_EQ(out[0].BeginTick(), 0);
  EXPECT_EQ(out[0].EndTick(), 5);
}

TEST(CleaningTest, StationaryDropIsLosslessForDiscovery) {
  // Two objects parked together, then driving together: cleaning must not
  // change the convoy result (interpolation re-creates dropped samples).
  TrajectoryDatabase db;
  for (ObjectId id = 0; id < 2; ++id) {
    Trajectory traj(id);
    for (Tick t = 0; t < 6; ++t) {
      traj.Append(0.0, 0.4 * static_cast<double>(id), t);  // parked
    }
    for (Tick t = 6; t < 12; ++t) {
      traj.Append(static_cast<double>(t - 5),
                  0.4 * static_cast<double>(id), t);
    }
    db.Add(std::move(traj));
  }
  CleaningOptions options;
  options.drop_stationary_duplicates = true;
  const TrajectoryDatabase cleaned = CleanDatabase(db, options);
  ASSERT_LT(cleaned.Stats().total_points, db.Stats().total_points);
  const ConvoyQuery query{2, 8, 1.0};
  EXPECT_TRUE(SameResultSet(Cmc(db, query), Cmc(cleaned, query)));
}

TEST(CleanDatabaseTest, FragmentsGetFreshIds) {
  TrajectoryDatabase db;
  db.Add(Walk(0, {{0, 0, 0}, {1, 0, 1}}));
  db.Add(Walk(7, {{0, 0, 0}, {1, 0, 1}, {2, 0, 100}, {3, 0, 101}}));
  CleaningOptions options;
  options.max_gap_ticks = 10;
  const TrajectoryDatabase cleaned = CleanDatabase(db, options);
  ASSERT_EQ(cleaned.Size(), 3u);
  // Ids: 0 and 7 unchanged; the split fragment gets 8 (max+1).
  std::vector<ObjectId> ids;
  for (const Trajectory& traj : cleaned.trajectories()) {
    ids.push_back(traj.id());
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<ObjectId>{0, 7, 8}));
}

TEST(CleanDatabaseTest, ReportAggregatesAcrossObjects) {
  TrajectoryDatabase db;
  db.Add(Walk(0, {{0, 0, 0}, {900, 0, 1}, {2, 0, 2}}));
  db.Add(Walk(1, {{0, 0, 0}, {901, 0, 1}, {2, 0, 2}}));
  CleaningOptions options;
  options.max_speed = 10.0;
  CleaningReport report;
  (void)CleanDatabase(db, options, &report);
  EXPECT_EQ(report.spikes_removed, 2u);
}

TEST(CleaningTest, SpikeRemovalPreventsFalseConvoyBreak) {
  // Without cleaning, object 1's single GPS spike at tick 3 breaks an
  // otherwise continuous 7-tick convoy into two pieces; with cleaning the
  // full convoy is found.
  TrajectoryDatabase db;
  Trajectory a(0);
  Trajectory b(1);
  for (Tick t = 0; t < 7; ++t) {
    a.Append(static_cast<double>(t), 0.0, t);
    const double spike = t == 3 ? 800.0 : 0.4;
    b.Append(static_cast<double>(t), spike, t);
  }
  db.Add(std::move(a));
  db.Add(std::move(b));

  const ConvoyQuery query{2, 7, 1.0};
  EXPECT_TRUE(Cmc(db, query).empty());

  CleaningOptions options;
  options.max_speed = 5.0;
  const TrajectoryDatabase cleaned = CleanDatabase(db, options);
  const auto result = Cmc(cleaned, query);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].Lifetime(), 7);
}

}  // namespace
}  // namespace convoy
