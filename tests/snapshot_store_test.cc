// SnapshotStore construction tests: the columnar per-tick views must
// reproduce the legacy row-oriented snapshot gather bit for bit, at every
// build thread count, including the gappy (taxi-like) sampling patterns
// where most stored points are interpolated virtual points.

#include "traj/snapshot_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <tuple>

#include "traj/interpolate.h"
#include "tests/test_util.h"

namespace convoy {
namespace {

using testutil::RandomClumpyDb;

// The reference: the row-oriented per-tick gather every algorithm
// performed before the store existed (see SnapshotClusters).
void LegacyGather(const TrajectoryDatabase& db, Tick t,
                  std::vector<Point>* points, std::vector<ObjectId>* ids) {
  points->clear();
  ids->clear();
  for (const Trajectory& traj : db.trajectories()) {
    const auto pos = InterpolateAt(traj, t);
    if (!pos.has_value()) continue;
    points->push_back(*pos);
    ids->push_back(traj.id());
  }
}

void ExpectStoreMatchesLegacy(const TrajectoryDatabase& db,
                              const SnapshotStore& store) {
  EXPECT_EQ(store.begin_tick(), db.BeginTick());
  EXPECT_EQ(store.end_tick(), db.EndTick());
  std::vector<Point> points;
  std::vector<ObjectId> ids;
  size_t total = 0;
  for (Tick t = db.BeginTick(); t <= db.EndTick(); ++t) {
    LegacyGather(db, t, &points, &ids);
    const SnapshotView view = store.At(t);
    ASSERT_EQ(view.size, points.size()) << "tick " << t;
    total += view.size;
    for (size_t i = 0; i < view.size; ++i) {
      // Bitwise equality: Point::operator== is exact double comparison.
      EXPECT_EQ(view.At(i), points[i]) << "tick " << t << " slot " << i;
      EXPECT_EQ(view.ids[i], ids[i]) << "tick " << t << " slot " << i;
    }
  }
  EXPECT_EQ(store.TotalPoints(), total);
}

TEST(SnapshotStoreTest, EmptyDatabase) {
  const SnapshotStore store = SnapshotStore::Build(TrajectoryDatabase{});
  EXPECT_TRUE(store.Empty());
  EXPECT_EQ(store.NumTicks(), 0u);
  EXPECT_EQ(store.TotalPoints(), 0u);
  EXPECT_EQ(store.At(0).size, 0u);
  EXPECT_EQ(store.At(-5).size, 0u);
}

TEST(SnapshotStoreTest, DatabaseOfEmptyTrajectoriesIsEmpty) {
  TrajectoryDatabase db;
  db.Add(Trajectory(0));
  db.Add(Trajectory(1));
  const SnapshotStore store = SnapshotStore::Build(db);
  EXPECT_TRUE(store.Empty());
  EXPECT_EQ(store.TotalPoints(), 0u);
}

TEST(SnapshotStoreTest, SingleTickDatabase) {
  TrajectoryDatabase db;
  Trajectory a(7);
  a.Append(1.5, 2.5, 42);
  db.Add(std::move(a));
  const SnapshotStore store = SnapshotStore::Build(db);
  EXPECT_EQ(store.NumTicks(), 1u);
  EXPECT_EQ(store.begin_tick(), 42);
  EXPECT_EQ(store.end_tick(), 42);
  const SnapshotView view = store.At(42);
  ASSERT_EQ(view.size, 1u);
  EXPECT_EQ(view.At(0), Point(1.5, 2.5));
  EXPECT_EQ(view.ids[0], 7u);
  EXPECT_FALSE(store.IsVirtual(42, 0));
  EXPECT_EQ(store.NumVirtualPoints(), 0u);
}

TEST(SnapshotStoreTest, AllInteriorTicksMissingAreVirtual) {
  // Two samples 10 ticks apart: every interior tick exists only as a
  // virtual (interpolated) point — the extreme of irregular sampling.
  TrajectoryDatabase db;
  Trajectory a(3);
  a.Append(0.0, 0.0, 0);
  a.Append(10.0, 20.0, 10);
  db.Add(std::move(a));
  const SnapshotStore store = SnapshotStore::Build(db);
  EXPECT_EQ(store.TotalPoints(), 11u);
  EXPECT_EQ(store.NumVirtualPoints(), 9u);
  for (Tick t = 0; t <= 10; ++t) {
    const SnapshotView view = store.At(t);
    ASSERT_EQ(view.size, 1u);
    EXPECT_EQ(store.IsVirtual(t, 0), t != 0 && t != 10) << "tick " << t;
    EXPECT_EQ(view.At(0), *InterpolateAt(db[0], t)) << "tick " << t;
  }
}

TEST(SnapshotStoreTest, DisjointLifetimesLeaveEmptyMiddleTicks) {
  // Object 0 lives [0, 3], object 1 lives [8, 10]: ticks 4..7 are covered
  // by the domain but hold no alive object at all.
  TrajectoryDatabase db;
  Trajectory a(0);
  a.Append(0, 0, 0);
  a.Append(3, 0, 3);
  Trajectory b(1);
  b.Append(0, 1, 8);
  b.Append(2, 1, 10);
  db.Add(std::move(a));
  db.Add(std::move(b));
  const SnapshotStore store = SnapshotStore::Build(db);
  EXPECT_EQ(store.NumTicks(), 11u);
  for (Tick t = 4; t <= 7; ++t) EXPECT_EQ(store.At(t).size, 0u);
  EXPECT_EQ(store.At(2).size, 1u);
  EXPECT_EQ(store.At(9).size, 1u);
  ExpectStoreMatchesLegacy(db, store);
}

TEST(SnapshotStoreTest, ViewsMatchLegacyGatherOnSeededDatabases) {
  for (const uint64_t seed : {11u, 29u, 47u}) {
    // keep_prob sweeps from dense to taxi-like gappy sampling.
    for (const double keep_prob : {1.0, 0.7, 0.35}) {
      Rng rng(seed);
      const TrajectoryDatabase db =
          RandomClumpyDb(rng, 24, 50, 60.0, 1.0, keep_prob);
      ExpectStoreMatchesLegacy(db, SnapshotStore::Build(db));
    }
  }
}

TEST(SnapshotStoreTest, BuildThreadCountDoesNotChangeContents) {
  Rng rng(5);
  const TrajectoryDatabase db = RandomClumpyDb(rng, 24, 60, 60.0, 1.0, 0.6);
  const SnapshotStore serial = SnapshotStore::Build(db, 1);
  for (const size_t threads : {2u, 8u}) {
    const SnapshotStore parallel = SnapshotStore::Build(db, threads);
    ASSERT_EQ(parallel.TotalPoints(), serial.TotalPoints());
    EXPECT_EQ(parallel.NumVirtualPoints(), serial.NumVirtualPoints());
    for (Tick t = db.BeginTick(); t <= db.EndTick(); ++t) {
      const SnapshotView a = serial.At(t);
      const SnapshotView b = parallel.At(t);
      ASSERT_EQ(a.size, b.size);
      for (size_t i = 0; i < a.size; ++i) {
        EXPECT_EQ(a.At(i), b.At(i));
        EXPECT_EQ(a.ids[i], b.ids[i]);
      }
    }
  }
}

TEST(SnapshotStoreTest, GridForCachesPerTickAndEps) {
  Rng rng(9);
  const TrajectoryDatabase db = RandomClumpyDb(rng, 12, 20, 40.0, 1.0);
  const SnapshotStore store = SnapshotStore::Build(db);
  EXPECT_EQ(store.GridCacheSize(), 0u);
  const auto a = store.GridFor(3, 2.0);
  const auto b = store.GridFor(3, 2.0);
  EXPECT_EQ(a.get(), b.get());  // cached: same instance, not a rebuild
  EXPECT_EQ(store.GridCacheSize(), 1u);
  const auto c = store.GridFor(3, 4.0);  // other eps: new entry
  EXPECT_NE(a.get(), c.get());
  const auto d = store.GridFor(4, 2.0);  // other tick: new entry
  EXPECT_NE(a.get(), d.get());
  EXPECT_EQ(store.GridCacheSize(), 3u);

  // The cached index answers exactly like a fresh index over the same
  // snapshot.
  const SnapshotView view = store.At(3);
  std::vector<Point> points;
  for (size_t i = 0; i < view.size; ++i) points.push_back(view.At(i));
  const GridIndex fresh(points, 2.0);
  for (size_t i = 0; i < view.size; ++i) {
    EXPECT_EQ(a->WithinRadius(view.At(i), 2.0),
              fresh.WithinRadius(points[i], 2.0));
  }
}

TEST(SnapshotStoreTest, GridCacheEvictsOldestEpsBeyondBudget) {
  Rng rng(13);
  const TrajectoryDatabase db = RandomClumpyDb(rng, 8, 12, 30.0, 1.0);
  const SnapshotStore store = SnapshotStore::Build(db);
  const Tick t0 = store.begin_tick();

  // Two ticks at eps=1, then one grid for each further eps up to the
  // budget: 5 entries across kMaxCachedEpsValues distinct eps.
  const auto eps1_grid = store.GridFor(t0, 1.0);
  (void)store.GridFor(t0 + 1, 1.0);
  for (size_t i = 1; i < SnapshotStore::kMaxCachedEpsValues; ++i) {
    (void)store.GridFor(t0, 1.0 + static_cast<double>(i));
  }
  EXPECT_EQ(store.GridCacheSize(),
            SnapshotStore::kMaxCachedEpsValues + 1);

  // One eps beyond the budget retires every eps=1 grid (the oldest).
  (void)store.GridFor(t0, 99.0);
  EXPECT_EQ(store.GridCacheSize(), SnapshotStore::kMaxCachedEpsValues);
  // The evicted grid stays usable through the shared_ptr we still hold,
  // and re-requesting it builds a fresh instance.
  EXPECT_GT(eps1_grid->NumPoints(), 0u);
  const auto rebuilt = store.GridFor(t0, 1.0);
  EXPECT_NE(rebuilt.get(), eps1_grid.get());
}

TEST(SnapshotStoreTest, EstimateColumnarSlotsMatchesBuild) {
  Rng rng(17);
  const TrajectoryDatabase db = RandomClumpyDb(rng, 16, 30, 40.0, 1.0, 0.5);
  const SnapshotStore store = SnapshotStore::Build(db);
  EXPECT_EQ(SnapshotStore::EstimateColumnarSlots(db),
            store.NumTicks() + store.TotalPoints());
  EXPECT_EQ(SnapshotStore::EstimateColumnarSlots(TrajectoryDatabase{}), 0u);
}

TEST(SnapshotStoreTest, StalenessTracksDatabaseGeneration) {
  TrajectoryDatabase db;
  Trajectory a(0);
  a.Append(0, 0, 0);
  a.Append(1, 0, 1);
  db.Add(std::move(a));
  const SnapshotStore store = SnapshotStore::Build(db);
  EXPECT_FALSE(store.IsStaleFor(db));
  Trajectory b(1);
  b.Append(5, 5, 0);
  db.Add(std::move(b));  // mutation bumps the generation
  EXPECT_TRUE(store.IsStaleFor(db));
  EXPECT_FALSE(SnapshotStore::Build(db).IsStaleFor(db));
}

TEST(SnapshotStoreTest, BuilderMatchesBuildFromDatabase) {
  Rng rng(21);
  const TrajectoryDatabase db = RandomClumpyDb(rng, 10, 30, 40.0, 1.0, 0.8);

  // Feed the builder the same samples in a shuffled row order, with one
  // duplicated (id, tick) row; Finish must canonicalize to the same
  // database shape and an identical store.
  std::vector<std::tuple<ObjectId, Tick, double, double>> rows;
  for (const Trajectory& traj : db.trajectories()) {
    for (const TimedPoint& p : traj.samples()) {
      rows.emplace_back(traj.id(), p.t, p.pos.x, p.pos.y);
    }
  }
  std::shuffle(rows.begin(), rows.end(), std::mt19937(7));

  SnapshotStoreBuilder builder;
  for (const auto& [id, t, x, y] : rows) builder.AddRow(id, t, x, y);
  // Stale duplicate for object 0's first sample; the later (canonical)
  // occurrence must win.
  const TimedPoint& first = db[0].samples().front();
  builder.AddRow(db[0].id(), first.t, first.pos.x, first.pos.y);

  TrajectoryDatabase rebuilt;
  size_t dups = 0;
  const SnapshotStore store = builder.Finish(&rebuilt, 1, &dups);
  EXPECT_EQ(dups, 1u);
  EXPECT_EQ(builder.NumRows(), 0u);  // builder drained
  ASSERT_EQ(rebuilt.Size(), db.Size());
  ExpectStoreMatchesLegacy(rebuilt, store);

  const SnapshotStore direct = SnapshotStore::Build(rebuilt);
  ASSERT_EQ(store.TotalPoints(), direct.TotalPoints());
  for (Tick t = rebuilt.BeginTick(); t <= rebuilt.EndTick(); ++t) {
    const SnapshotView a = store.At(t);
    const SnapshotView b = direct.At(t);
    ASSERT_EQ(a.size, b.size);
    for (size_t i = 0; i < a.size; ++i) {
      EXPECT_EQ(a.At(i), b.At(i));
      EXPECT_EQ(a.ids[i], b.ids[i]);
    }
  }
}

}  // namespace
}  // namespace convoy
