#include "core/engine.h"

#include <gtest/gtest.h>

#include "core/cmc.h"
#include "tests/test_util.h"

namespace convoy {
namespace {

using testutil::RandomClumpyDb;

ConvoyEngine MakeEngine(uint64_t seed) {
  Rng rng(seed);
  return ConvoyEngine(RandomClumpyDb(rng, 20, 60, 50.0, 0.8));
}

TEST(EngineTest, DiscoverMatchesFreestandingCuts) {
  ConvoyEngine engine = MakeEngine(1);
  const ConvoyQuery query{3, 6, 4.0};
  const auto via_engine = engine.Discover(query, CutsVariant::kCutsStar);
  const auto direct = Cuts(engine.db(), query, CutsVariant::kCutsStar);
  EXPECT_TRUE(SameResultSet(via_engine, direct));
}

TEST(EngineTest, DiscoverExactMatchesCmc) {
  ConvoyEngine engine = MakeEngine(2);
  const ConvoyQuery query{3, 6, 4.0};
  EXPECT_TRUE(
      SameResultSet(engine.DiscoverExact(query), Cmc(engine.db(), query)));
}

TEST(EngineTest, CacheReusedAcrossQueriesWithSameDelta) {
  ConvoyEngine engine = MakeEngine(3);
  CutsFilterOptions options;
  options.delta = 1.5;
  (void)engine.Discover(ConvoyQuery{3, 6, 4.0}, CutsVariant::kCutsStar,
                        options);
  EXPECT_EQ(engine.CacheSize(), 1u);
  // Different m/k/e, same simplifier+delta: no new cache entry.
  (void)engine.Discover(ConvoyQuery{2, 10, 3.0}, CutsVariant::kCutsStar,
                        options);
  EXPECT_EQ(engine.CacheSize(), 1u);
  // Different variant -> different simplifier -> new entry.
  (void)engine.Discover(ConvoyQuery{3, 6, 4.0}, CutsVariant::kCuts, options);
  EXPECT_EQ(engine.CacheSize(), 2u);
  // Different delta -> new entry.
  options.delta = 2.5;
  (void)engine.Discover(ConvoyQuery{3, 6, 4.0}, CutsVariant::kCuts, options);
  EXPECT_EQ(engine.CacheSize(), 3u);
}

TEST(EngineTest, CacheKeySeparatesDeltasWithinOneMicroUnit) {
  // Regression: the cache key used to truncate delta to integer micro-units
  // (llround(delta * 1e6)), so two distinct deltas within 1e-6 of each
  // other — or any two below 1e-6 — aliased to one entry and the second
  // query silently reused the first query's simplification. The key is now
  // the exact bit pattern of delta.
  ConvoyEngine engine = MakeEngine(6);
  const ConvoyQuery query{3, 6, 4.0};
  CutsFilterOptions options;

  options.delta = 0.5;
  (void)engine.Discover(query, CutsVariant::kCutsStar, options);
  options.delta = 0.5000004;  // same micro-unit bucket as 0.5
  (void)engine.Discover(query, CutsVariant::kCutsStar, options);
  EXPECT_EQ(engine.CacheSize(), 2u);

  // Sub-micro-unit deltas used to collapse onto bucket 0 too.
  options.delta = 1e-7;
  (void)engine.Discover(query, CutsVariant::kCutsStar, options);
  options.delta = 2e-7;
  (void)engine.Discover(query, CutsVariant::kCutsStar, options);
  EXPECT_EQ(engine.CacheSize(), 4u);
}

TEST(EngineTest, SnapshotStoreBuiltOnceAndShared) {
  ConvoyEngine engine = MakeEngine(8);
  bool reused = true;
  const auto first = engine.Store(1, &reused);
  ASSERT_NE(first, nullptr);
  EXPECT_FALSE(reused);  // first call pays the build
  EXPECT_FALSE(first->IsStaleFor(engine.db()));

  const auto second = engine.Store(1, &reused);
  EXPECT_TRUE(reused);
  EXPECT_EQ(first.get(), second.get());  // same instance, not a rebuild

  // Every query path attaches the same store: a Prepare after the manual
  // Store() call reports a cache hit.
  const auto plan = engine.Prepare(ConvoyQuery{3, 6, 4.0});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->store_cache, PlanCacheStatus::kHit);
}

TEST(EngineTest, CachedRunSkipsSimplifyTime) {
  ConvoyEngine engine = MakeEngine(4);
  CutsFilterOptions options;
  options.delta = 1.5;
  const ConvoyQuery query{3, 6, 4.0};
  DiscoveryStats first;
  (void)engine.Discover(query, CutsVariant::kCutsStar, options, &first);
  DiscoveryStats second;
  (void)engine.Discover(query, CutsVariant::kCutsStar, options, &second);
  EXPECT_EQ(second.simplify_seconds, 0.0);
  EXPECT_GT(first.total_seconds, 0.0);
}

TEST(EngineTest, CachedResultsStayCorrect) {
  ConvoyEngine engine = MakeEngine(5);
  CutsFilterOptions options;
  options.delta = 1.2;
  options.refine_mode = RefineMode::kFullWindow;
  for (const double e : {3.0, 4.0, 5.0}) {
    const ConvoyQuery query{2, 5, e};
    const auto got = engine.Discover(query, CutsVariant::kCutsStar, options);
    EXPECT_TRUE(SameResultSet(got, Cmc(engine.db(), query))) << "e=" << e;
  }
}

TEST(EngineTest, LongestConvoy) {
  const std::vector<Convoy> result = {
      Convoy{{1, 2}, 0, 9},       // lifetime 10
      Convoy{{3, 4, 5}, 20, 25},  // lifetime 6
  };
  const auto longest = ConvoyEngine::LongestConvoy(result);
  ASSERT_TRUE(longest.has_value());
  EXPECT_EQ(longest->objects, (std::vector<ObjectId>{1, 2}));
  EXPECT_FALSE(ConvoyEngine::LongestConvoy({}).has_value());
}

TEST(EngineTest, LongestConvoyTieBreaksOnSize) {
  const std::vector<Convoy> result = {
      Convoy{{1, 2}, 0, 9},
      Convoy{{3, 4, 5}, 10, 19},
  };
  const auto longest = ConvoyEngine::LongestConvoy(result);
  ASSERT_TRUE(longest.has_value());
  EXPECT_EQ(longest->objects.size(), 3u);
}

TEST(EngineTest, InvolvingFiltersByObject) {
  const std::vector<Convoy> result = {
      Convoy{{1, 2}, 0, 9},
      Convoy{{2, 3}, 5, 14},
      Convoy{{4, 5}, 0, 9},
  };
  const auto involving2 = ConvoyEngine::Involving(result, 2);
  EXPECT_EQ(involving2.size(), 2u);
  EXPECT_TRUE(ConvoyEngine::Involving(result, 9).empty());
}

TEST(EngineTest, DuringFiltersByInterval) {
  const std::vector<Convoy> result = {
      Convoy{{1, 2}, 0, 9},
      Convoy{{2, 3}, 20, 30},
  };
  EXPECT_EQ(ConvoyEngine::During(result, 5, 25).size(), 2u);
  EXPECT_EQ(ConvoyEngine::During(result, 10, 19).size(), 0u);
  EXPECT_EQ(ConvoyEngine::During(result, 9, 9).size(), 1u);
}

}  // namespace
}  // namespace convoy
