#include "traj/database.h"

#include <gtest/gtest.h>

namespace convoy {
namespace {

TrajectoryDatabase MakeDb() {
  TrajectoryDatabase db;
  Trajectory a(0);
  a.Append(0, 0, 0);
  a.Append(1, 0, 9);  // lifetime 10, 2 samples
  Trajectory b(1);
  for (Tick t = 5; t <= 14; ++t) b.Append(0, static_cast<double>(t), t);
  db.Add(std::move(a));
  db.Add(std::move(b));
  return db;
}

TEST(DatabaseTest, EmptyDatabase) {
  TrajectoryDatabase db;
  EXPECT_TRUE(db.Empty());
  EXPECT_EQ(db.BeginTick(), 0);
  EXPECT_EQ(db.EndTick(), -1);  // makes begin..end loops empty
  const DatabaseStats stats = db.Stats();
  EXPECT_EQ(stats.num_objects, 0u);
  EXPECT_EQ(stats.total_points, 0u);
}

TEST(DatabaseTest, TickBounds) {
  const TrajectoryDatabase db = MakeDb();
  EXPECT_EQ(db.BeginTick(), 0);
  EXPECT_EQ(db.EndTick(), 14);
}

TEST(DatabaseTest, StatsMatchPaperTable3Shape) {
  const TrajectoryDatabase db = MakeDb();
  const DatabaseStats stats = db.Stats();
  EXPECT_EQ(stats.num_objects, 2u);
  EXPECT_EQ(stats.time_domain_length, 15);
  EXPECT_EQ(stats.total_points, 12u);
  EXPECT_DOUBLE_EQ(stats.avg_trajectory_length, 6.0);
  // Object 0 misses 8 of its 10 lifetime ticks; object 1 misses none.
  EXPECT_DOUBLE_EQ(stats.avg_missing_ratio, 0.4);
}

TEST(DatabaseTest, ProjectKeepsOnlyRequestedObjects) {
  const TrajectoryDatabase db = MakeDb();
  const TrajectoryDatabase sub = db.Project({1});
  EXPECT_EQ(sub.Size(), 1u);
  EXPECT_EQ(sub[0].id(), 1u);
}

TEST(DatabaseTest, ProjectUnknownIdsIgnored) {
  const TrajectoryDatabase db = MakeDb();
  const TrajectoryDatabase sub = db.Project({1, 99});
  EXPECT_EQ(sub.Size(), 1u);
}

TEST(DatabaseTest, ProjectEmptyList) {
  const TrajectoryDatabase db = MakeDb();
  EXPECT_TRUE(db.Project({}).Empty());
}

TEST(DatabaseTest, ConstructFromVector) {
  std::vector<Trajectory> trajs;
  trajs.emplace_back(5);
  const TrajectoryDatabase db(std::move(trajs));
  EXPECT_EQ(db.Size(), 1u);
  EXPECT_EQ(db[0].id(), 5u);
}

TEST(DatabaseTest, StatsSkipEmptyTrajectoriesForAverages) {
  TrajectoryDatabase db;
  db.Add(Trajectory(0));
  Trajectory b(1);
  b.Append(0, 0, 0);
  b.Append(1, 1, 1);
  db.Add(std::move(b));
  const DatabaseStats stats = db.Stats();
  EXPECT_EQ(stats.num_objects, 2u);
  EXPECT_DOUBLE_EQ(stats.avg_trajectory_length, 2.0);
}

TEST(DatabaseTest, IndexOfAndFindResolveById) {
  const TrajectoryDatabase db = MakeDb();
  EXPECT_EQ(db.IndexOf(0), std::optional<size_t>(0));
  EXPECT_EQ(db.IndexOf(1), std::optional<size_t>(1));
  EXPECT_EQ(db.IndexOf(99), std::nullopt);
  ASSERT_NE(db.Find(1), nullptr);
  EXPECT_EQ(db.Find(1)->id(), 1u);
  EXPECT_EQ(db.Find(99), nullptr);
}

TEST(DatabaseTest, GenerationBumpsOnEveryAdd) {
  TrajectoryDatabase db;
  const uint64_t g0 = db.generation();
  db.Add(Trajectory(0));
  EXPECT_GT(db.generation(), g0);
  const uint64_t g1 = db.generation();
  db.Add(Trajectory(1));
  EXPECT_GT(db.generation(), g1);
}

// Regression for the O(ids x N)-shaped projection: on a large database,
// projecting a handful of ids must return exactly the same subset (in
// database order) the old full-scan implementation produced.
TEST(DatabaseTest, ProjectOnLargeDatabaseMatchesFullScan) {
  TrajectoryDatabase db;
  constexpr size_t kObjects = 2000;
  for (size_t i = 0; i < kObjects; ++i) {
    // Non-monotonic ids so database order != id order.
    const ObjectId id = static_cast<ObjectId>((i * 7919) % 30011);
    Trajectory traj(id);
    traj.Append(static_cast<double>(i), 0.0, 0);
    traj.Append(static_cast<double>(i), 1.0, 5);
    db.Add(std::move(traj));
  }
  const std::vector<ObjectId> wanted = {db[1500].id(), db[3].id(),
                                        db[999].id(), db[3].id(),  // dup
                                        4294967295u};              // unknown
  const TrajectoryDatabase sub = db.Project(wanted);

  // Reference: the old implementation — scan everything, keep members.
  std::vector<ObjectId> expected_order;
  for (const Trajectory& traj : db.trajectories()) {
    for (const ObjectId id : wanted) {
      if (traj.id() == id) {
        expected_order.push_back(traj.id());
        break;
      }
    }
  }
  ASSERT_EQ(sub.Size(), expected_order.size());
  for (size_t i = 0; i < sub.Size(); ++i) {
    EXPECT_EQ(sub[i].id(), expected_order[i]);
    EXPECT_EQ(sub[i].Size(), 2u);
  }
}

}  // namespace
}  // namespace convoy
