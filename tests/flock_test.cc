#include "core/flock.h"

#include <gtest/gtest.h>

#include "core/cmc.h"
#include "tests/test_util.h"

namespace convoy {
namespace {

using testutil::FromXRows;

TEST(FlockSnapshotTest, CompactGroupFound) {
  const std::vector<Point> pts = {Point(0, 0), Point(1, 0), Point(0.5, 0.8)};
  const std::vector<ObjectId> ids = {1, 2, 3};
  const auto groups = FlockSnapshotGroups(pts, ids, 1.0, 3);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], (std::vector<ObjectId>{1, 2, 3}));
}

TEST(FlockSnapshotTest, LineLongerThanDiameterSplits) {
  // Four collinear points spaced 1.0; disc radius 1.0 covers any 3
  // consecutive (span 2.0 = diameter) but never all 4 (span 3.0).
  std::vector<Point> pts;
  std::vector<ObjectId> ids;
  for (int i = 0; i < 4; ++i) {
    pts.emplace_back(static_cast<double>(i), 0.0);
    ids.push_back(static_cast<ObjectId>(i));
  }
  const auto groups = FlockSnapshotGroups(pts, ids, 1.0, 3);
  for (const auto& g : groups) {
    EXPECT_LT(g.size(), 4u) << "a radius-1 disc cannot hold a 3-long line";
  }
  // The 3-consecutive subsets are found.
  bool found_prefix = false;
  for (const auto& g : groups) {
    if (g == std::vector<ObjectId>{0, 1, 2}) found_prefix = true;
  }
  EXPECT_TRUE(found_prefix);
}

TEST(FlockSnapshotTest, TooFewPoints) {
  EXPECT_TRUE(FlockSnapshotGroups({Point(0, 0)}, {1}, 1.0, 2).empty());
}

TEST(FlockSnapshotTest, DiscNeedNotBeCenteredOnObject) {
  // Two points 1.9 apart with radius 1: no disc centered on either point
  // covers both, but a disc centered between them does.
  const auto groups = FlockSnapshotGroups({Point(0, 0), Point(1.9, 0)},
                                          {5, 6}, 1.0, 2);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], (std::vector<ObjectId>{5, 6}));
}

TEST(FlockSnapshotTest, GroupsAreMaximal) {
  // A tight pair plus a third point coverable together with either.
  const auto groups = FlockSnapshotGroups(
      {Point(0, 0), Point(0.2, 0), Point(0.4, 0)}, {1, 2, 3}, 1.0, 2);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 3u);
}

TEST(FlockDiscoveryTest, StableFlockAcrossTicks) {
  const auto db = FromXRows({{0, 1, 2, 3}, {0, 1, 2, 3}}, 0.5);
  const auto flocks = FlockDiscovery(db, FlockQuery{2, 4, 1.0});
  ASSERT_EQ(flocks.size(), 1u);
  EXPECT_EQ(flocks[0].Lifetime(), 4);
}

TEST(FlockDiscoveryTest, LifetimeConstraintEnforced) {
  const auto db = FromXRows({{0, 1, 50}, {0.4, 1.4, 90}});
  EXPECT_TRUE(FlockDiscovery(db, FlockQuery{2, 3, 1.0}).empty());
  EXPECT_EQ(FlockDiscovery(db, FlockQuery{2, 2, 1.0}).size(), 1u);
}

// The paper's Figure 1, as a test: an elongated formation is one convoy
// under density connection but no flock under any same-scale disc.
TEST(FlockDiscoveryTest, LossyFlockProblem) {
  // Five objects in a moving line, consecutive gaps 1.0 => total extent 4.
  TrajectoryDatabase db;
  for (ObjectId id = 0; id < 5; ++id) {
    Trajectory traj(id);
    for (Tick t = 0; t < 5; ++t) {
      traj.Append(static_cast<double>(t) * 2.0, static_cast<double>(id), t);
    }
    db.Add(std::move(traj));
  }
  // Convoy query: e = 1.2 chains the line; all 5 objects form one convoy.
  const auto convoys = Cmc(db, ConvoyQuery{3, 5, 1.2});
  ASSERT_EQ(convoys.size(), 1u);
  EXPECT_EQ(convoys[0].objects.size(), 5u);

  // Flock query with the corresponding disc (radius = e): a disc of
  // radius 1.2 has diameter 2.4 < 4, so no flock of all 5 exists — only
  // fragments are reported. This is the lossy-flock problem.
  const auto flocks = FlockDiscovery(db, FlockQuery{3, 5, 1.2});
  for (const Convoy& f : flocks) {
    EXPECT_LT(f.objects.size(), 5u);
  }
  EXPECT_FALSE(flocks.empty());  // fragments are found
}

TEST(FlockDiscoveryTest, CompactGroupsAgreeWithConvoys) {
  // When the group diameter is well under the disc diameter, flock and
  // convoy queries see the same group.
  const auto db = FromXRows({{0, 1, 2, 3}, {0, 1, 2, 3}, {0, 1, 2, 3}},
                            0.3);
  const auto convoys = Cmc(db, ConvoyQuery{3, 4, 1.0});
  const auto flocks = FlockDiscovery(db, FlockQuery{3, 4, 1.0});
  ASSERT_EQ(convoys.size(), 1u);
  ASSERT_EQ(flocks.size(), 1u);
  EXPECT_EQ(convoys[0].objects, flocks[0].objects);
}

TEST(FlockDiscoveryTest, EmptyDatabase) {
  EXPECT_TRUE(FlockDiscovery(TrajectoryDatabase(), FlockQuery{}).empty());
}

}  // namespace
}  // namespace convoy
