// The recoverable error model, exercised end to end: every API contract
// that used to be an `assert` (and therefore vanished in the default
// RelWithDebInfo build) must now fail with a descriptive Status — in every
// build type. run_checks.sh runs this suite in both RelWithDebInfo and
// Debug so a regression to assert-only enforcement cannot hide.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "convoy/convoy.h"
#include "tests/test_util.h"

namespace convoy {
namespace {

using testutil::FromXRows;

// ------------------------------------------------------ Status/StatusOr ---

TEST(StatusTest, OkByDefault) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s, Status::Ok());
}

TEST(StatusTest, CarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad radius");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad radius");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad radius");
  std::ostringstream os;
  os << s;
  EXPECT_EQ(os.str(), "INVALID_ARGUMENT: bad radius");
}

TEST(StatusTest, WithContextChainsOutermostFirst) {
  const Status inner = Status::DataError("non-finite x");
  const Status mid = inner.WithContext("line 7");
  const Status outer = mid.WithContext("loading data.csv");
  EXPECT_EQ(outer.message(), "loading data.csv: line 7: non-finite x");
  EXPECT_EQ(outer.code(), StatusCode::kDataError);
  // Context on OK is a no-op, so it can be applied unconditionally.
  EXPECT_EQ(Status::Ok().WithContext("anything"), Status::Ok());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kFailedPrecondition),
            "FAILED_PRECONDITION");
  EXPECT_EQ(StatusCodeName(StatusCode::kDataError), "DATA_ERROR");
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> good = 42;
  EXPECT_TRUE(good.ok());
  EXPECT_TRUE(good.status().ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_EQ(*good, 42);
  EXPECT_EQ(good.value_or(-1), 42);

  const StatusOr<int> bad = Status::OutOfRange("tick 3 after tick 5");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  const std::vector<int> moved = std::move(v).value();
  EXPECT_EQ(moved.size(), 3u);
}

// ---------------------------------------------------------- validation ----

TEST(ValidateQueryTest, AcceptsPaperStyleQueries) {
  EXPECT_TRUE(ValidateQuery(ConvoyQuery{3, 180, 8.0}).ok());
  EXPECT_TRUE(ValidateQuery(ConvoyQuery{2, 1, 0.001}).ok());
}

TEST(ValidateQueryTest, RejectsOutOfContractParameters) {
  EXPECT_EQ(ValidateQuery(ConvoyQuery{1, 2, 1.0}).code(),
            StatusCode::kInvalidArgument);  // m < 2
  EXPECT_EQ(ValidateQuery(ConvoyQuery{0, 2, 1.0}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ValidateQuery(ConvoyQuery{2, 0, 1.0}).code(),
            StatusCode::kInvalidArgument);  // k < 1
  EXPECT_EQ(ValidateQuery(ConvoyQuery{2, -3, 1.0}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ValidateQuery(ConvoyQuery{2, 2, 0.0}).code(),
            StatusCode::kInvalidArgument);  // e <= 0
  EXPECT_EQ(ValidateQuery(ConvoyQuery{2, 2, -1.0}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      ValidateQuery(ConvoyQuery{2, 2, std::nan("")}).code(),
      StatusCode::kInvalidArgument);  // non-finite e
  EXPECT_EQ(ValidateQuery(
                ConvoyQuery{2, 2, std::numeric_limits<double>::infinity()})
                .code(),
            StatusCode::kInvalidArgument);
  // The message names the offending parameter.
  EXPECT_NE(ValidateQuery(ConvoyQuery{1, 2, 1.0}).message().find("query.m"),
            std::string::npos);
}

TEST(ValidateFilterOptionsTest, NanDeltaRejectedAutoDeltaAllowed) {
  CutsFilterOptions options;
  EXPECT_TRUE(ValidateFilterOptions(options).ok());  // delta = -1 is "auto"
  options.delta = 0.5;
  EXPECT_TRUE(ValidateFilterOptions(options).ok());
  options.delta = std::nan("");
  EXPECT_EQ(ValidateFilterOptions(options).code(),
            StatusCode::kInvalidArgument);
  options.delta = std::numeric_limits<double>::infinity();
  EXPECT_EQ(ValidateFilterOptions(options).code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------ streaming ---

TEST(ErrorHandlingTest, StreamingOutOfOrderTickIsError) {
  StreamingCmc stream(ConvoyQuery{2, 2, 1.0});
  ASSERT_TRUE(stream.BeginTick(10).ok());
  ASSERT_TRUE(stream.EndTick().ok());
  EXPECT_EQ(stream.BeginTick(10).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(stream.BeginTick(9).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(stream.BeginTick(11).ok());
}

TEST(ErrorHandlingTest, StreamingReportOutsideTickIsError) {
  StreamingCmc stream(ConvoyQuery{2, 2, 1.0});
  EXPECT_EQ(stream.Report(7, Point(0, 0)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ErrorHandlingTest, StreamingNonFiniteReportDropped) {
  StreamingCmc stream(ConvoyQuery{2, 1, 1.0});
  ASSERT_TRUE(stream.BeginTick(0).ok());
  EXPECT_EQ(stream.Report(0, Point(std::nan(""), 0.0)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      stream.Report(0, Point(0.0, std::numeric_limits<double>::infinity()))
          .code(),
      StatusCode::kInvalidArgument);
  // The poisoned reports never entered the snapshot; clean ones still work.
  ASSERT_TRUE(stream.Report(0, Point(0, 0)).ok());
  ASSERT_TRUE(stream.Report(1, Point(0, 0.5)).ok());
  ASSERT_TRUE(stream.EndTick().ok());
  EXPECT_EQ(stream.Finish().value().size(), 1u);
}

TEST(ErrorHandlingTest, StreamingInvalidQueryReportedAtBeginTick) {
  StreamingCmc stream(ConvoyQuery{1, 2, 1.0});  // m < 2
  const Status s = stream.BeginTick(0);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("query.m"), std::string::npos);
}

// ---------------------------------------------------------------- engine --

TEST(ErrorHandlingTest, TryDiscoverRejectsInvalidQuery) {
  ConvoyEngine engine(FromXRows({{0, 1, 2}, {0, 1, 2}}, 0.1));
  const auto bad_m = engine.TryDiscover(ConvoyQuery{1, 2, 1.0});
  EXPECT_EQ(bad_m.status().code(), StatusCode::kInvalidArgument);
  const auto bad_e = engine.TryDiscover(ConvoyQuery{2, 2, std::nan("")});
  EXPECT_EQ(bad_e.status().code(), StatusCode::kInvalidArgument);
  const auto bad_exact = engine.TryDiscoverExact(ConvoyQuery{2, 0, 1.0});
  EXPECT_EQ(bad_exact.status().code(), StatusCode::kInvalidArgument);

  CutsFilterOptions nan_delta;
  nan_delta.delta = std::nan("");
  const auto bad_opts = engine.TryDiscover(ConvoyQuery{2, 2, 1.0},
                                           CutsVariant::kCutsStar, nan_delta);
  EXPECT_EQ(bad_opts.status().code(), StatusCode::kInvalidArgument);
}

TEST(ErrorHandlingTest, TryDiscoverMatchesDiscoverOnValidQueries) {
  ConvoyEngine engine(FromXRows({{0, 1, 2, 3}, {0, 1, 2, 3}}, 0.1));
  const ConvoyQuery query{2, 4, 1.0};
  const auto tried = engine.TryDiscover(query);
  ASSERT_TRUE(tried.ok());
  EXPECT_TRUE(SameResultSet(*tried, engine.Discover(query)));
  const auto tried_exact = engine.TryDiscoverExact(query);
  ASSERT_TRUE(tried_exact.ok());
  EXPECT_TRUE(SameResultSet(*tried_exact, engine.DiscoverExact(query)));
}

// ------------------------------------------------------------ grid index --

TEST(ErrorHandlingTest, GridRadiusBeyondCellSizeIsComplete) {
  // The old 3x3-only scan silently dropped neighbors beyond the adjacent
  // cells in NDEBUG builds. Points 3 cells apart must be found.
  const GridIndex index({Point(0, 0), Point(6.5, 0), Point(100, 100)}, 2.0);
  const auto hits = index.WithinRadius(Point(0, 0), 7.0);
  EXPECT_EQ(hits.size(), 2u);
}

TEST(ErrorHandlingTest, DbscanWithPrebuiltCoarseIndexStaysExact) {
  // The precomputed-index Dbscan overload documents cell_size >= eps; the
  // reverse (eps > cell_size) used to violate the 3x3 assumption and lose
  // cluster members in NDEBUG builds. With the multi-ring scan every index
  // granularity must find the same (well-separated, hence unique)
  // clustering.
  Rng rng(17);
  std::vector<Point> points;
  for (int clump = 0; clump < 3; ++clump) {
    for (int i = 0; i < 12; ++i) {
      points.emplace_back(100.0 * clump + rng.Uniform(0, 4),
                          rng.Uniform(0, 4));
    }
  }
  const auto canonical = [](Clustering c) {
    for (auto& members : c.clusters) std::sort(members.begin(), members.end());
    std::sort(c.clusters.begin(), c.clusters.end());
    return c.clusters;
  };
  const double eps = 6.0;
  const auto plain = canonical(Dbscan(points, eps, 4));
  ASSERT_EQ(plain.size(), 3u);
  for (const double cell : {6.0, 1.5, 0.25}) {  // down to eps/24
    const GridIndex index(points, cell);
    EXPECT_EQ(canonical(Dbscan(points, index, eps, 4)), plain)
        << "cell_size " << cell;
  }
}

// ----------------------------------------------------------------- CSV ----

TEST(ErrorHandlingTest, CsvNanRowsSkippedWithDiagnostics) {
  std::istringstream in("0,0,0,0\n0,1,nan,0\n1,0,inf,1\n1,1,1,1\n");
  const CsvLoadResult result = LoadTrajectoriesCsv(in);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.lines_parsed, 2u);
  EXPECT_EQ(result.lines_skipped, 2u);
  ASSERT_EQ(result.diagnostics.size(), 2u);
  EXPECT_EQ(result.diagnostics[0].line_number, 2u);
  EXPECT_EQ(result.diagnostics[1].line_number, 3u);
  // And the surviving database is safe to run discovery over.
  const auto convoys = Cmc(result.db, ConvoyQuery{2, 2, 10.0});
  for (const Convoy& c : convoys) {
    EXPECT_TRUE(VerifyConvoy(result.db, ConvoyQuery{2, 2, 10.0}, c));
  }
}

TEST(ErrorHandlingTest, CsvDuplicateRowsDedupedKeepingLast) {
  std::istringstream in("5,2,1,1\n5,2,2,2\n5,2,3,3\n");
  const CsvLoadResult result = LoadTrajectoriesCsv(in);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.duplicates_collapsed, 2u);
  ASSERT_EQ(result.db.Size(), 1u);
  ASSERT_EQ(result.db[0].Size(), 1u);
  EXPECT_EQ(*result.db[0].LocationAt(2), Point(3, 3));
}

// ------------------------------------------------- release-mode property --

// The acceptance scenario of the issue, end to end: a messy feed (NaN rows,
// duplicates, garbage) loads with full accounting, a validated query runs,
// and every reported convoy verifies against Definition 3 — in whatever
// build type this test was compiled as.
TEST(ErrorHandlingTest, MessyFeedEndToEnd) {
  std::ostringstream feed;
  feed << "object_id,tick,x,y\n";
  for (ObjectId id = 0; id < 4; ++id) {
    for (Tick t = 0; t < 8; ++t) {
      feed << id << "," << t << "," << static_cast<double>(t) << ","
           << 0.2 * static_cast<double>(id) << "\n";
    }
  }
  feed << "0,3,nan,nan\n";      // poison attempt (skipped; tick 3 already
                                // parsed from the clean block above)
  feed << "2,5,5,0.4\n";        // duplicate of (2,5): collapses to the last
                                // occurrence, which matches the clean row
  feed << "broken,row\n";       // garbage
  feed << "3,100,inf,0\n";      // more poison

  std::istringstream in(feed.str());
  const CsvLoadResult loaded = LoadTrajectoriesCsv(in);
  ASSERT_TRUE(loaded.ok);
  EXPECT_EQ(loaded.lines_skipped, 3u);
  EXPECT_EQ(loaded.duplicates_collapsed, 1u);
  ASSERT_EQ(loaded.db.Size(), 4u);

  ConvoyEngine engine(loaded.db);
  const ConvoyQuery query{3, 8, 1.0};
  const auto result = engine.TryDiscover(query);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].objects.size(), 4u);
  for (const Convoy& c : *result) {
    EXPECT_TRUE(VerifyConvoy(loaded.db, query, c));
  }
  EXPECT_TRUE(SameResultSet(*result, *engine.TryDiscoverExact(query)));
}

}  // namespace
}  // namespace convoy
