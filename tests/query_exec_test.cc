// End-to-end tests of the v2 planner/executor API: bit-identical parity
// with the free-function algorithms and the legacy shims, cooperative
// cancellation at 1 and 8 threads, and the incremental sink mode.

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "core/cmc.h"
#include "core/cuts.h"
#include "core/engine.h"
#include "core/mc2.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace convoy {
namespace {

using testutil::RandomClumpyDb;

TrajectoryDatabase SeededDb(uint64_t seed, size_t objects = 24,
                            Tick ticks = 80) {
  Rng rng(seed);
  return RandomClumpyDb(rng, objects, ticks, 60.0, 0.8);
}

AlgorithmChoice ChoiceFor(CutsVariant variant) {
  switch (variant) {
    case CutsVariant::kCuts:
      return AlgorithmChoice::kCuts;
    case CutsVariant::kCutsPlus:
      return AlgorithmChoice::kCutsPlus;
    case CutsVariant::kCutsStar:
      return AlgorithmChoice::kCutsStar;
  }
  return AlgorithmChoice::kCutsStar;
}

// The acceptance property: Execute(Prepare(q)) returns *bit-identical*
// convoys (EXPECT_EQ on the vectors, not just set equality) to the free
// functions and to the legacy Discover shims, for every variant and for
// exact CMC, over seeded random databases.
TEST(QueryExecTest, ExecutePrepareMatchesFreeFunctionsBitIdentical) {
  for (const uint64_t seed : {11u, 22u, 33u}) {
    const ConvoyEngine engine(SeededDb(seed));
    const ConvoyQuery query{3, 6, 4.0};

    for (const CutsVariant variant :
         {CutsVariant::kCuts, CutsVariant::kCutsPlus,
          CutsVariant::kCutsStar}) {
      const auto plan = engine.Prepare(query, ChoiceFor(variant));
      ASSERT_TRUE(plan.ok());
      const auto executed = engine.Execute(*plan);
      ASSERT_TRUE(executed.ok());
      const std::vector<Convoy> direct = Cuts(engine.db(), query, variant);
      EXPECT_EQ(executed->convoys(), direct)
          << "seed " << seed << " variant " << ToString(variant);
      const std::vector<Convoy> shim = engine.Discover(query, variant);
      EXPECT_EQ(executed->convoys(), shim);
    }

    const auto plan = engine.Prepare(query, AlgorithmChoice::kCmc);
    ASSERT_TRUE(plan.ok());
    const auto executed = engine.Execute(*plan);
    ASSERT_TRUE(executed.ok());
    EXPECT_EQ(executed->convoys(), Cmc(engine.db(), query)) << seed;
    EXPECT_EQ(executed->convoys(), engine.DiscoverExact(query));
  }
}

TEST(QueryExecTest, ExecuteMatchesAtMultipleThreadCounts) {
  const ConvoyEngine engine(SeededDb(44));
  ConvoyQuery query{3, 6, 4.0};
  const auto serial =
      engine.Execute(engine.Prepare(query, AlgorithmChoice::kCutsStar)
                         .value());
  ASSERT_TRUE(serial.ok());
  for (const size_t threads : {2u, 8u}) {
    query.num_threads = threads;
    const auto plan = engine.Prepare(query, AlgorithmChoice::kCutsStar);
    ASSERT_TRUE(plan.ok());
    const auto parallel = engine.Execute(*plan);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->convoys(), serial->convoys()) << threads;
  }
}

TEST(QueryExecTest, Mc2PlanMatchesFreeFunction) {
  const ConvoyEngine engine(SeededDb(55));
  const ConvoyQuery query{3, 4, 4.0};
  Mc2Options mc2;
  mc2.theta = 0.6;
  const auto plan =
      engine.Prepare(query, AlgorithmChoice::kMc2, {}, mc2);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm, AlgorithmId::kMc2);
  const auto executed = engine.Execute(*plan);
  ASSERT_TRUE(executed.ok());
  EXPECT_EQ(executed->convoys(), Mc2(engine.db(), query, mc2));
}

TEST(QueryExecTest, ResultSetCarriesPlanAndStats) {
  const ConvoyEngine engine(SeededDb(66));
  const auto plan = engine.Prepare(ConvoyQuery{3, 6, 4.0});
  ASSERT_TRUE(plan.ok());
  const auto executed = engine.Execute(*plan);
  ASSERT_TRUE(executed.ok());
  EXPECT_EQ(executed->plan().algorithm, plan->algorithm);
  EXPECT_EQ(executed->stats().num_convoys, executed->Count());
  EXPECT_GT(executed->stats().total_seconds, 0.0);
}

TEST(QueryExecTest, PreCancelledTokenAbortsImmediately) {
  const ConvoyEngine engine(SeededDb(77));
  const auto plan = engine.Prepare(ConvoyQuery{3, 6, 4.0});
  ASSERT_TRUE(plan.ok());
  ExecHooks hooks;
  hooks.cancel = CancelToken::Cancellable();
  hooks.cancel.RequestCancel();
  const auto executed = engine.Execute(*plan, hooks);
  EXPECT_EQ(executed.status().code(), StatusCode::kCancelled);
}

// A token fired mid-query (from the first progress callback) aborts with
// kCancelled and leaves no partial state behind: re-executing the same plan
// afterwards yields the full, correct result. Exercised at 1 and 8 threads
// for both the CMC and the CuTS* execution paths.
TEST(QueryExecTest, MidQueryCancellationAbortsCleanly) {
  const TrajectoryDatabase db = SeededDb(88, 24, 600);
  const ConvoyEngine engine(db);
  for (const AlgorithmChoice choice :
       {AlgorithmChoice::kCmc, AlgorithmChoice::kCutsStar}) {
    for (const size_t threads : {1u, 8u}) {
      ConvoyQuery query{3, 20, 4.0};
      query.num_threads = threads;
      CutsFilterOptions options;
      options.lambda = 5;  // plenty of partitions -> many cancel points
      const auto plan = engine.Prepare(query, choice, options);
      ASSERT_TRUE(plan.ok());

      ExecHooks hooks;
      hooks.cancel = CancelToken::Cancellable();
      std::atomic<size_t> updates{0};
      hooks.progress = [&](const ProgressUpdate&) {
        ++updates;
        hooks.cancel.RequestCancel();
      };
      const auto cancelled = engine.Execute(*plan, hooks);
      EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled)
          << ToString(choice) << " threads=" << threads;
      EXPECT_GE(updates.load(), 1u);

      // No partial-state corruption: the same plan re-executes to the
      // correct, complete answer.
      const auto clean = engine.Execute(*plan);
      ASSERT_TRUE(clean.ok());
      const std::vector<Convoy> expected =
          choice == AlgorithmChoice::kCmc
              ? Cmc(db, query)
              : Cuts(db, query, CutsVariant::kCutsStar, options);
      EXPECT_EQ(clean->convoys(), expected)
          << ToString(choice) << " threads=" << threads;
    }
  }
}

// The sink receives batches of verified convoys while the query runs; their
// union, dominance-pruned, equals the materialized result set.
TEST(QueryExecTest, SinkBatchesCoverMaterializedResult) {
  const ConvoyEngine engine(SeededDb(99, 24, 200));
  for (const AlgorithmChoice choice :
       {AlgorithmChoice::kCmc, AlgorithmChoice::kCutsStar}) {
    for (const size_t threads : {1u, 8u}) {
      ConvoyQuery query{3, 6, 4.0};
      query.num_threads = threads;
      const auto plan = engine.Prepare(query, choice);
      ASSERT_TRUE(plan.ok());

      std::vector<Convoy> streamed;
      ExecHooks hooks;
      hooks.sink = [&](std::vector<Convoy>&& batch) {
        streamed.insert(streamed.end(), batch.begin(), batch.end());
      };
      const auto executed = engine.Execute(*plan, hooks);
      ASSERT_TRUE(executed.ok());

      EXPECT_TRUE(SameResultSet(RemoveDominated(streamed),
                                executed->convoys()))
          << ToString(choice) << " threads=" << threads;
      // Streaming must not change the materialized answer.
      const auto plain = engine.Execute(*plan);
      ASSERT_TRUE(plain.ok());
      EXPECT_EQ(executed->convoys(), plain->convoys());
    }
  }
}

TEST(QueryExecTest, ProgressReportsPhasesInOrder) {
  const ConvoyEngine engine(SeededDb(101, 24, 200));
  const auto plan =
      engine.Prepare(ConvoyQuery{3, 6, 4.0}, AlgorithmChoice::kCutsStar);
  ASSERT_TRUE(plan.ok());
  std::vector<std::string> phases;
  ExecHooks hooks;
  hooks.progress = [&](const ProgressUpdate& update) {
    EXPECT_LE(update.done, update.total);
    if (phases.empty() || phases.back() != update.phase) {
      phases.push_back(update.phase);
    }
  };
  ASSERT_TRUE(engine.Execute(*plan, hooks).ok());
  // Filter runs to completion before refinement starts; refinement only
  // reports when there are candidates to refine.
  ASSERT_FALSE(phases.empty());
  EXPECT_EQ(phases.front(), "filter");
  for (const std::string& phase : phases) {
    EXPECT_TRUE(phase == "filter" || phase == "refine" || phase == "cmc")
        << phase;
  }
}

}  // namespace
}  // namespace convoy
