#include "query/result_set.h"

#include <algorithm>
#include <utility>

#include <gtest/gtest.h>

#include "core/engine.h"

namespace convoy {
namespace {

std::vector<Convoy> SampleConvoys() {
  return {
      Convoy{{1, 2}, 0, 9},        // lifetime 10
      Convoy{{2, 3}, 5, 14},       // lifetime 10
      Convoy{{3, 4, 5}, 20, 25},   // lifetime 6, 3 objects
      Convoy{{6, 7}, 30, 33},      // lifetime 4
  };
}

ConvoyResultSet SampleResultSet() {
  return ConvoyResultSet(SampleConvoys(), DiscoveryStats{}, QueryPlan{});
}

TEST(ResultSetTest, CountEmptyAndIteration) {
  const ConvoyResultSet result = SampleResultSet();
  EXPECT_EQ(result.Count(), 4u);
  EXPECT_FALSE(result.Empty());
  size_t seen = 0;
  for (const Convoy& c : result) {
    EXPECT_EQ(c, result[seen]);
    ++seen;
  }
  EXPECT_EQ(seen, result.Count());
  EXPECT_TRUE(ConvoyResultSet().Empty());
  EXPECT_EQ(ConvoyResultSet().Count(), 0u);
}

TEST(ResultSetTest, HelpersMatchLegacyEngineStatics) {
  const std::vector<Convoy> convoys = SampleConvoys();
  const ConvoyResultSet result = SampleResultSet();

  EXPECT_EQ(result.Longest(), ConvoyEngine::LongestConvoy(convoys));
  for (const ObjectId id : {ObjectId{2}, ObjectId{5}, ObjectId{9}}) {
    EXPECT_EQ(result.Involving(id), ConvoyEngine::Involving(convoys, id));
  }
  EXPECT_EQ(result.During(5, 25), ConvoyEngine::During(convoys, 5, 25));
  EXPECT_EQ(result.During(40, 50), ConvoyEngine::During(convoys, 40, 50));
}

TEST(ResultSetTest, LongestPrefersLifetimeThenSize) {
  const ConvoyResultSet result = SampleResultSet();
  const auto longest = result.Longest();
  ASSERT_TRUE(longest.has_value());
  EXPECT_EQ(longest->Lifetime(), 10);
  EXPECT_TRUE(ConvoyResultSet().Longest() == std::nullopt);
}

TEST(ResultSetTest, TopKRanksByLifetimeSizeThenCanonical) {
  const ConvoyResultSet result = SampleResultSet();
  const std::vector<Convoy> top = result.TopK(3);
  ASSERT_EQ(top.size(), 3u);
  // Two lifetime-10 convoys first (same object count -> canonical order:
  // earlier start first), then the 3-object lifetime-6 convoy.
  EXPECT_EQ(top[0], (Convoy{{1, 2}, 0, 9}));
  EXPECT_EQ(top[1], (Convoy{{2, 3}, 5, 14}));
  EXPECT_EQ(top[2], (Convoy{{3, 4, 5}, 20, 25}));
}

TEST(ResultSetTest, TopKClampsToSize) {
  const ConvoyResultSet result = SampleResultSet();
  EXPECT_EQ(result.TopK(100).size(), result.Count());
  EXPECT_TRUE(result.TopK(0).empty());
  // The full TopK is a permutation of the input.
  EXPECT_TRUE(SameResultSet(result.TopK(100), result.convoys()));
}

TEST(ResultSetTest, TopKIsDeterministicAcrossInputOrder) {
  std::vector<Convoy> shuffled = SampleConvoys();
  std::reverse(shuffled.begin(), shuffled.end());
  EXPECT_EQ(TopKConvoys(shuffled, 4), TopKConvoys(SampleConvoys(), 4));
}

TEST(ResultSetTest, TakeConvoysMovesOut) {
  ConvoyResultSet result = SampleResultSet();
  const std::vector<Convoy> taken = std::move(result).TakeConvoys();
  EXPECT_EQ(taken, SampleConvoys());
}

}  // namespace
}  // namespace convoy
