#include "geom/point.h"

#include <gtest/gtest.h>

#include <sstream>

namespace convoy {
namespace {

TEST(PointTest, DefaultIsOrigin) {
  Point p;
  EXPECT_EQ(p.x, 0.0);
  EXPECT_EQ(p.y, 0.0);
}

TEST(PointTest, Arithmetic) {
  const Point a(1.0, 2.0);
  const Point b(3.0, -4.0);
  EXPECT_EQ(a + b, Point(4.0, -2.0));
  EXPECT_EQ(a - b, Point(-2.0, 6.0));
  EXPECT_EQ(a * 2.0, Point(2.0, 4.0));
}

TEST(PointTest, DotProduct) {
  EXPECT_DOUBLE_EQ(Point(1.0, 2.0).Dot(Point(3.0, 4.0)), 11.0);
  EXPECT_DOUBLE_EQ(Point(1.0, 0.0).Dot(Point(0.0, 1.0)), 0.0);
}

TEST(PointTest, Norms) {
  const Point p(3.0, 4.0);
  EXPECT_DOUBLE_EQ(p.Norm2(), 25.0);
  EXPECT_DOUBLE_EQ(p.Norm(), 5.0);
}

TEST(PointTest, EuclideanDistance) {
  EXPECT_DOUBLE_EQ(D(Point(0, 0), Point(3, 4)), 5.0);
  EXPECT_DOUBLE_EQ(D(Point(1, 1), Point(1, 1)), 0.0);
  EXPECT_DOUBLE_EQ(D2(Point(0, 0), Point(3, 4)), 25.0);
}

TEST(PointTest, DistanceIsSymmetric) {
  const Point a(1.5, -2.5);
  const Point b(-3.0, 7.0);
  EXPECT_DOUBLE_EQ(D(a, b), D(b, a));
}

TEST(PointTest, EqualityAndInequality) {
  EXPECT_EQ(Point(1, 2), Point(1, 2));
  EXPECT_NE(Point(1, 2), Point(2, 1));
}

TEST(PointTest, StreamOutput) {
  std::ostringstream os;
  os << Point(1.5, 2.5);
  EXPECT_EQ(os.str(), "(1.5, 2.5)");
}

TEST(TimedPointTest, ConstructionAndEquality) {
  const TimedPoint p(1.0, 2.0, 42);
  EXPECT_EQ(p.pos, Point(1.0, 2.0));
  EXPECT_EQ(p.t, 42);
  EXPECT_EQ(p, TimedPoint(Point(1.0, 2.0), 42));
  EXPECT_FALSE(p == TimedPoint(1.0, 2.0, 43));
}

TEST(TimedPointTest, StreamOutput) {
  std::ostringstream os;
  os << TimedPoint(1.0, 2.0, 7);
  EXPECT_EQ(os.str(), "(1, 2, t=7)");
}

}  // namespace
}  // namespace convoy
