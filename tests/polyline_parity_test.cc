// Parity contract for the CuTS* hot-path rewrite: the CSR-SoA polyline
// storage, the arena-backed SoA TRAJ-DBSCAN, and the SIMD distance kernels
// must be bit-identical to the retained reference path (PartitionPolyline +
// PolylinesAreNeighbors' merge scan + PolylineDbscan) on adversarial
// segment shapes — collinear runs, zero-length segments, eps-boundary
// straddles, duplicate polylines, single-segment and single-vertex
// trajectories — and the end-to-end CuTS/CuTS+/CuTS* filters built on them
// must agree at 1, 2, and 8 threads, with the AVX2 and forced-scalar
// kernels interchangeable everywhere.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/polyline_dbscan.h"
#include "cluster/polyline_soa.h"
#include "core/cuts.h"
#include "core/cuts_filter.h"
#include "core/cuts_refine.h"
#include "core/params.h"
#include "geom/distance.h"
#include "simd/dist_kernels.h"
#include "simplify/simplifier.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace convoy {
namespace {

uint64_t Bits(double v) {
  uint64_t b = 0;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

// Whether the AVX2 kernel entry points may be called directly on this
// build/host (CONVOY_SIMD=OFF builds forward them to scalar, so they are
// always callable there; with AVX2 codegen the CPU must support it).
bool Avx2Callable() {
  return !simd::Avx2Compiled() || simd::Avx2Available();
}

// ----------------------------------------------------- polyline builders --

PartitionPolyline MakePoly(ObjectId id, const std::vector<TimedPoint>& verts,
                           double tol) {
  PartitionPolyline p;
  p.object = id;
  if (verts.size() == 1) {
    // The degenerate single-vertex shape BuildPartitionPolylines emits.
    p.segments.push_back(TimedSegment(verts[0], verts[0]));
    p.tolerances.push_back(0.0);
  } else {
    for (size_t i = 0; i + 1 < verts.size(); ++i) {
      p.segments.push_back(TimedSegment(verts[i], verts[i + 1]));
      p.tolerances.push_back(tol);
    }
  }
  p.FinalizeBounds();
  return p;
}

PolylineSoa SoaFrom(const std::vector<PartitionPolyline>& polys) {
  PolylineSoa soa;
  soa.seg_start.push_back(0);
  for (const PartitionPolyline& p : polys) {
    const size_t first = soa.NumSegments();
    for (size_t s = 0; s < p.segments.size(); ++s) {
      const TimedSegment& seg = p.segments[s];
      soa.PushSegment(seg.start.pos.x, seg.start.pos.y, seg.end.pos.x,
                      seg.end.pos.y, seg.start.t, seg.end.t,
                      p.tolerances[s]);
    }
    soa.FinalizePolyline(p.object, first);
  }
  return soa;
}

struct NamedPolylines {
  const char* name;
  std::vector<PartitionPolyline> polys;
};

// The adversarial shapes the ISSUE calls out. eps for all suites is 5.0.
std::vector<NamedPolylines> AdversarialPolylineSets() {
  constexpr double kEps = 5.0;
  std::vector<NamedPolylines> out;

  {  // Collinear segments: several polylines along the same line, shifted
     // in time, plus one crossing them (DLL = 0 through SegmentsIntersect).
    NamedPolylines d{"collinear", {}};
    for (int i = 0; i < 6; ++i) {
      std::vector<TimedPoint> v;
      for (int s = 0; s <= 4; ++s) {
        v.emplace_back(s * 10.0, 0.0, static_cast<Tick>(i + s * 2));
      }
      d.polys.push_back(MakePoly(static_cast<ObjectId>(i), v, 0.5));
    }
    d.polys.push_back(MakePoly(100,
                               {TimedPoint(20.0, -8.0, 0),
                                TimedPoint(20.0, 8.0, 10)},
                               0.25));
    out.push_back(std::move(d));
  }
  {  // Zero-length segments (stationary objects) and single-vertex
     // degenerates; some within eps of each other, some not.
    NamedPolylines d{"zero_length", {}};
    for (int i = 0; i < 5; ++i) {
      const double x = i * 3.0;
      d.polys.push_back(MakePoly(static_cast<ObjectId>(i),
                                 {TimedPoint(x, 1.0, 0), TimedPoint(x, 1.0, 5),
                                  TimedPoint(x, 1.0, 9)},
                                 0.0));
    }
    d.polys.push_back(MakePoly(50, {TimedPoint(6.0, 1.0, 4)}, 0.0));
    d.polys.push_back(MakePoly(51, {TimedPoint(200.0, 200.0, 4)}, 0.0));
    out.push_back(std::move(d));
  }
  {  // eps-boundary straddle: parallel tracks at exactly eps, exactly
     // eps + both tolerances, and one ulp beyond — the band where any
     // reordered arithmetic would flip the decision.
    NamedPolylines d{"eps_boundary", {}};
    const double tol = 0.125;  // exact in binary
    const auto track = [&](ObjectId id, double y) {
      return MakePoly(id,
                      {TimedPoint(0.0, y, 0), TimedPoint(40.0, y, 10)}, tol);
    };
    d.polys.push_back(track(0, 0.0));
    d.polys.push_back(track(1, kEps));
    d.polys.push_back(track(2, kEps + 2.0 * tol));
    d.polys.push_back(
        track(3, (kEps + 2.0 * tol) * (1.0 + 4e-16)));  // just outside
    d.polys.push_back(track(4, kEps * 3.0));
    out.push_back(std::move(d));
  }
  {  // Duplicate polylines: byte-identical tracks under different ids —
     // distance 0 everywhere, every pair neighbors, one big cluster.
    NamedPolylines d{"duplicates", {}};
    for (int i = 0; i < 5; ++i) {
      d.polys.push_back(MakePoly(static_cast<ObjectId>(i),
                                 {TimedPoint(1.0, 2.0, 0),
                                  TimedPoint(7.0, 5.0, 4),
                                  TimedPoint(3.0, 9.0, 9)},
                                 0.5));
    }
    d.polys.push_back(MakePoly(60,
                               {TimedPoint(100.0, 100.0, 0),
                                TimedPoint(108.0, 100.0, 9)},
                               0.5));
    out.push_back(std::move(d));
  }
  {  // Single-segment trajectories scattered on a grid with mixed time
     // intervals — lots of 1-vs-1 segment pairs, partial time overlap.
    NamedPolylines d{"single_segment", {}};
    Rng rng(1234);
    for (int i = 0; i < 24; ++i) {
      const double x = rng.Uniform(0, 30);
      const double y = rng.Uniform(0, 30);
      const Tick t0 = rng.UniformInt(0, 10);
      const Tick t1 = t0 + rng.UniformInt(1, 6);
      d.polys.push_back(MakePoly(
          static_cast<ObjectId>(i),
          {TimedPoint(x, y, t0),
           TimedPoint(x + rng.Uniform(-4, 4), y + rng.Uniform(-4, 4), t1)},
          rng.Uniform(0.0, 1.0)));
    }
    out.push_back(std::move(d));
  }
  {  // Random clumpy walks: broad coverage with varying segment counts.
    NamedPolylines d{"random_walks", {}};
    Rng rng(99);
    for (int i = 0; i < 30; ++i) {
      std::vector<TimedPoint> v;
      double x = rng.Uniform(0, 40);
      double y = rng.Uniform(0, 40);
      Tick t = rng.UniformInt(0, 4);
      const int steps = static_cast<int>(rng.UniformInt(1, 6));
      v.emplace_back(x, y, t);
      for (int s = 0; s < steps; ++s) {
        x += rng.Gaussian(0, 3);
        y += rng.Gaussian(0, 3);
        t += rng.UniformInt(1, 3);
        v.emplace_back(x, y, t);
      }
      d.polys.push_back(MakePoly(static_cast<ObjectId>(i), v,
                                 rng.Uniform(0.0, 0.8)));
    }
    out.push_back(std::move(d));
  }
  return out;
}

PolylineDbscanOptions OptsFor(SegmentDistanceKind kind, bool box_pruning,
                              bool rtree) {
  PolylineDbscanOptions o;
  o.eps = 5.0;
  o.min_pts = 2;
  o.distance = kind;
  o.use_box_pruning = box_pruning;
  o.use_rtree = rtree;
  return o;
}

// -------------------------------------------- distance kernel bit parity --

// The scalar DistanceBatch must reproduce geom::DLL / geom::DStar bit-for-
// bit (it calls them), and the AVX2 lanes must reproduce the scalar batch
// bit-for-bit — per lane, including inf for non-overlapping D* pairs.
TEST(PolylineParity, DistanceBatchBitIdentical) {
  for (const NamedPolylines& dist : AdversarialPolylineSets()) {
    SCOPED_TRACE(dist.name);
    const PolylineSoa soa = SoaFrom(dist.polys);
    const simd::SegmentSoa segs = soa.SegmentView();
    const size_t n = soa.NumPolylines();
    for (size_t pa = 0; pa < n; ++pa) {
      for (size_t pb = 0; pb < n; ++pb) {
        if (pa == pb) continue;
        const size_t b_begin = soa.seg_start[pb];
        const size_t count = soa.seg_start[pb + 1] - b_begin;
        std::vector<double> scalar(count);
        std::vector<double> vec(count);
        for (size_t a = soa.seg_start[pa]; a < soa.seg_start[pa + 1]; ++a) {
          for (const bool dstar : {false, true}) {
            simd::DistanceBatchScalar(segs, a, b_begin, count, dstar,
                                      scalar.data());
            // Reference: the exact calls the legacy merge scan makes.
            const size_t qa = a - soa.seg_start[pa];
            const TimedSegment& sq = dist.polys[pa].segments[qa];
            for (size_t l = 0; l < count; ++l) {
              const TimedSegment& si = dist.polys[pb].segments[l];
              const double want = dstar ? DStar(sq, si)
                                        : DLL(sq.Spatial(), si.Spatial());
              ASSERT_EQ(Bits(want), Bits(scalar[l]))
                  << "scalar vs geom, a=" << a << " lane=" << l
                  << " dstar=" << dstar;
            }
            if (Avx2Callable()) {
              simd::DistanceBatchAvx2(segs, a, b_begin, count, dstar,
                                      vec.data());
              for (size_t l = 0; l < count; ++l) {
                ASSERT_EQ(Bits(scalar[l]), Bits(vec[l]))
                    << "avx2 vs scalar, a=" << a << " lane=" << l
                    << " dstar=" << dstar;
              }
            }
          }
        }
      }
    }
  }
}

// The qualify kernel (merge-scan replacement) must return the reference
// boolean for every polyline pair, and the scalar/AVX2 variants must agree
// on the work counters too (same block-of-four discipline).
TEST(PolylineParity, PairQualifyMatchesReferenceScan) {
  for (const NamedPolylines& dist : AdversarialPolylineSets()) {
    SCOPED_TRACE(dist.name);
    const PolylineSoa soa = SoaFrom(dist.polys);
    const simd::SegmentSoa segs = soa.SegmentView();
    const size_t n = soa.NumPolylines();
    for (const SegmentDistanceKind kind :
         {SegmentDistanceKind::kDll, SegmentDistanceKind::kDStar}) {
      for (const bool mbr : {false, true}) {
        // Reference boolean: the merge scan without box pruning (the
        // polyline-level box test is a separate kernel).
        PolylineDbscanOptions ref_opts = OptsFor(kind, false, false);
        for (size_t pa = 0; pa < n; ++pa) {
          for (size_t pb = 0; pb < n; ++pb) {
            if (pa == pb) continue;
            const bool want = PolylinesAreNeighbors(
                dist.polys[pa], dist.polys[pb], ref_opts, nullptr);
            simd::PairCounters sc;
            const bool got_scalar = simd::PairSegmentsQualifyScalar(
                segs, soa.seg_start[pa], soa.seg_start[pa + 1],
                soa.seg_start[pb], soa.seg_start[pb + 1], ref_opts.eps,
                kind == SegmentDistanceKind::kDStar, mbr, &sc);
            EXPECT_EQ(want, got_scalar)
                << "pa=" << pa << " pb=" << pb << " mbr=" << mbr;
            if (Avx2Callable()) {
              simd::PairCounters vc;
              const bool got_vec = simd::PairSegmentsQualifyAvx2(
                  segs, soa.seg_start[pa], soa.seg_start[pa + 1],
                  soa.seg_start[pb], soa.seg_start[pb + 1], ref_opts.eps,
                  kind == SegmentDistanceKind::kDStar, mbr, &vc);
              EXPECT_EQ(got_scalar, got_vec) << "pa=" << pa << " pb=" << pb;
              EXPECT_EQ(sc.segment_tests, vc.segment_tests)
                  << "pa=" << pa << " pb=" << pb;
              EXPECT_EQ(sc.mbr_rejects, vc.mbr_rejects)
                  << "pa=" << pa << " pb=" << pb;
            }
          }
        }
      }
    }
  }
}

// The Lemma 2 box sweep: per-candidate decisions must equal the reference
// formula Dmin(box_a, box_b) > eps + tol_a + tol_b exactly, and the AVX2
// sweep (sqrt-free two-sided compare + exact fallback in the ambiguous
// band) must produce the same survivor list as the scalar sweep.
TEST(PolylineParity, BoxPruneSweepBitIdentical) {
  for (const NamedPolylines& dist : AdversarialPolylineSets()) {
    SCOPED_TRACE(dist.name);
    const PolylineSoa soa = SoaFrom(dist.polys);
    const uint32_t n = static_cast<uint32_t>(soa.NumPolylines());
    std::vector<uint32_t> s_scalar(n);
    std::vector<uint32_t> s_vec(n);
    for (uint32_t a = 0; a < n; ++a) {
      const double eps_plus_atol = 5.0 + soa.ptol[a];
      const uint32_t c_scalar = simd::BoxPruneSweepScalar(
          soa.bminx.data(), soa.bmaxx.data(), soa.bminy.data(),
          soa.bmaxy.data(), soa.ptol.data(), 0, n, soa.bminx[a],
          soa.bmaxx[a], soa.bminy[a], soa.bmaxy[a], eps_plus_atol,
          s_scalar.data());
      // Reference decision, straight from the legacy neighborhood test.
      std::vector<uint32_t> want;
      for (uint32_t b = 0; b < n; ++b) {
        const double bound = eps_plus_atol + soa.ptol[b];
        if (!(Dmin(dist.polys[a].bbox, dist.polys[b].bbox) > bound)) {
          want.push_back(b);
        }
        EXPECT_EQ(Dmin(dist.polys[a].bbox, dist.polys[b].bbox) > bound,
                  simd::PolylineBoxPruned(
                      soa.bminx[a], soa.bmaxx[a], soa.bminy[a], soa.bmaxy[a],
                      soa.bminx[b], soa.bmaxx[b], soa.bminy[b], soa.bmaxy[b],
                      bound))
            << "a=" << a << " b=" << b;
      }
      ASSERT_EQ(want.size(), c_scalar);
      for (uint32_t i = 0; i < c_scalar; ++i) {
        EXPECT_EQ(want[i], s_scalar[i]) << "a=" << a;
      }
      if (Avx2Callable()) {
        const uint32_t c_vec = simd::BoxPruneSweepAvx2(
            soa.bminx.data(), soa.bmaxx.data(), soa.bminy.data(),
            soa.bmaxy.data(), soa.ptol.data(), 0, n, soa.bminx[a],
            soa.bmaxx[a], soa.bminy[a], soa.bmaxy[a], eps_plus_atol,
            s_vec.data());
        ASSERT_EQ(c_scalar, c_vec) << "a=" << a;
        for (uint32_t i = 0; i < c_scalar; ++i) {
          EXPECT_EQ(s_scalar[i], s_vec[i]) << "a=" << a;
        }
      }
    }
  }
}

// The point-radius scan behind GridIndex::ScanRange: identical output,
// identical order, including eps-boundary and duplicate points.
TEST(PolylineParity, RadiusScanBitIdentical) {
  if (!Avx2Callable()) GTEST_SKIP() << "AVX2 compiled but not supported";
  Rng rng(7);
  std::vector<double> sx;
  std::vector<double> sy;
  std::vector<uint32_t> point_of;
  for (uint32_t i = 0; i < 257; ++i) {  // odd size: exercises the tail
    sx.push_back(rng.Uniform(0, 20));
    sy.push_back(rng.Uniform(0, 20));
    point_of.push_back(1000 + i);
  }
  // Duplicates and exact-boundary points.
  sx.push_back(10.0); sy.push_back(10.0); point_of.push_back(1);
  sx.push_back(10.0); sy.push_back(10.0); point_of.push_back(2);
  sx.push_back(13.0); sy.push_back(14.0); point_of.push_back(3);  // d = 5
  for (int probe = 0; probe < 50; ++probe) {
    const double px = probe == 0 ? 10.0 : rng.Uniform(0, 20);
    const double py = probe == 0 ? 10.0 : rng.Uniform(0, 20);
    const double r = probe == 0 ? 5.0 : rng.Uniform(0.1, 8.0);
    std::vector<size_t> got_scalar;
    std::vector<size_t> got_vec;
    simd::RadiusScanScalar(sx.data(), sy.data(), point_of.data(), 0,
                           sx.size(), px, py, r * r, &got_scalar);
    simd::RadiusScanAvx2(sx.data(), sy.data(), point_of.data(), 0, sx.size(),
                         px, py, r * r, &got_vec);
    ASSERT_EQ(got_scalar, got_vec) << "probe " << probe;
  }
}

// ------------------------------------------------------ clustering parity --

// PolylineDbscanSoa must reproduce PolylineDbscan's clusters exactly for
// every option combination, with the kernels forced scalar and (when the
// host supports it) on the AVX2 path, and the shared stats must agree.
TEST(PolylineParity, SoaDbscanMatchesReference) {
  for (const NamedPolylines& dist : AdversarialPolylineSets()) {
    SCOPED_TRACE(dist.name);
    for (const SegmentDistanceKind kind :
         {SegmentDistanceKind::kDll, SegmentDistanceKind::kDStar}) {
      for (const bool box_pruning : {false, true}) {
        for (const bool rtree : {false, true}) {
          const PolylineDbscanOptions opts = OptsFor(kind, box_pruning, rtree);
          PolylineClusterStats ref_stats;
          const Clustering want =
              PolylineDbscan(dist.polys, opts, &ref_stats);
          for (const bool force_scalar : {true, false}) {
            if (!force_scalar && !Avx2Callable()) continue;
            simd::ForceScalar(force_scalar);
            PolylineDbscanScratch scratch;
            scratch.soa = SoaFrom(dist.polys);
            PolylineClusterStats soa_stats;
            const Clustering got =
                PolylineDbscanSoa(opts, &scratch, &soa_stats);
            EXPECT_EQ(want.clusters, got.clusters)
                << "kind=" << static_cast<int>(kind)
                << " box=" << box_pruning << " rtree=" << rtree
                << " scalar=" << force_scalar;
            EXPECT_EQ(ref_stats.pair_tests, soa_stats.pair_tests);
            EXPECT_EQ(ref_stats.box_pruned, soa_stats.box_pruned);
          }
          simd::ForceScalar(false);
        }
      }
    }
  }
}

// The scratch arena must not leak state between partitions: reusing one
// scratch across all distributions in sequence gives the same clusters as
// a fresh scratch per call.
TEST(PolylineParity, ScratchReuseIsStateless) {
  const PolylineDbscanOptions opts =
      OptsFor(SegmentDistanceKind::kDStar, true, false);
  PolylineDbscanScratch reused;
  for (int round = 0; round < 2; ++round) {
    for (const NamedPolylines& dist : AdversarialPolylineSets()) {
      SCOPED_TRACE(dist.name);
      PolylineDbscanScratch fresh;
      fresh.soa = SoaFrom(dist.polys);
      reused.soa = SoaFrom(dist.polys);
      const Clustering want = PolylineDbscanSoa(opts, &fresh, nullptr);
      const Clustering got = PolylineDbscanSoa(opts, &reused, nullptr);
      EXPECT_EQ(want.clusters, got.clusters) << "round " << round;
    }
  }
}

// BuildPolylineSoa must select and value segments exactly like
// BuildPartitionPolylines — same objects, same segment ranges, same
// degenerate single-vertex handling, bit-identical bounds and tolerances.
TEST(PolylineParity, BuildPolylineSoaMatchesReferenceBuilder) {
  Rng rng(31);
  const TrajectoryDatabase db =
      testutil::RandomClumpyDb(rng, 40, 60, 80.0, 2.0, 0.9);
  const double delta = ComputeDelta(db, 6.0);
  const std::vector<SimplifiedTrajectory> simplified =
      SimplifyDatabase(db, delta, SimplifierKind::kDpStar);
  for (const Tick lambda : {Tick{7}, Tick{20}}) {
    for (Tick ps = db.BeginTick(); ps <= db.EndTick(); ps += lambda) {
      const Tick pe = std::min<Tick>(ps + lambda - 1, db.EndTick());
      for (const bool actual_tol : {true, false}) {
        const std::vector<PartitionPolyline> want = BuildPartitionPolylines(
            simplified, ps, pe, actual_tol, delta);
        PolylineSoa got;
        BuildPolylineSoa(simplified, ps, pe, actual_tol, delta, &got);
        const PolylineSoa mirrored = SoaFrom(want);
        ASSERT_EQ(mirrored.NumPolylines(), got.NumPolylines());
        EXPECT_EQ(mirrored.object, got.object);
        EXPECT_EQ(mirrored.seg_start, got.seg_start);
        const auto bits_equal = [](const std::vector<double>& x,
                                   const std::vector<double>& y) {
          if (x.size() != y.size()) return false;
          for (size_t i = 0; i < x.size(); ++i) {
            if (Bits(x[i]) != Bits(y[i])) return false;
          }
          return true;
        };
        EXPECT_TRUE(bits_equal(mirrored.x0, got.x0));
        EXPECT_TRUE(bits_equal(mirrored.y0, got.y0));
        EXPECT_TRUE(bits_equal(mirrored.x1, got.x1));
        EXPECT_TRUE(bits_equal(mirrored.y1, got.y1));
        EXPECT_TRUE(bits_equal(mirrored.t0, got.t0));
        EXPECT_TRUE(bits_equal(mirrored.t1, got.t1));
        EXPECT_TRUE(bits_equal(mirrored.stol, got.stol));
        EXPECT_TRUE(bits_equal(mirrored.bminx, got.bminx));
        EXPECT_TRUE(bits_equal(mirrored.bmaxx, got.bmaxx));
        EXPECT_TRUE(bits_equal(mirrored.bminy, got.bminy));
        EXPECT_TRUE(bits_equal(mirrored.bmaxy, got.bmaxy));
        EXPECT_TRUE(bits_equal(mirrored.ptol, got.ptol));
      }
    }
  }
}

// ------------------------------------------------------------ e2e parity --

// The pre-rewrite filter, replayed from the retained reference pieces:
// per-partition BuildPartitionPolylines + PolylineDbscan, sequential
// candidate tracking.
std::vector<Candidate> ReferenceFilterCandidates(
    const TrajectoryDatabase& db, const ConvoyQuery& q,
    const CutsFilterOptions& fopts,
    const std::vector<SimplifiedTrajectory>& simplified, double delta,
    Tick lambda) {
  CandidateTracker tracker(q.m, q.k);
  std::vector<Candidate> candidates;
  PolylineDbscanOptions copts;
  copts.eps = q.e;
  copts.min_pts = q.m;
  copts.distance = fopts.distance;
  copts.use_box_pruning = fopts.use_box_pruning;
  copts.use_rtree = fopts.use_rtree;
  for (Tick ps = db.BeginTick(); ps <= db.EndTick(); ps += lambda) {
    const Tick pe = std::min<Tick>(ps + lambda - 1, db.EndTick());
    const std::vector<PartitionPolyline> polylines = BuildPartitionPolylines(
        simplified, ps, pe, fopts.use_actual_tolerance, delta);
    std::vector<std::vector<ObjectId>> clusters;
    if (polylines.size() >= q.m) {
      const Clustering clustering = PolylineDbscan(polylines, copts);
      for (const std::vector<size_t>& cluster : clustering.clusters) {
        std::vector<ObjectId> ids;
        ids.reserve(cluster.size());
        for (const size_t idx : cluster) ids.push_back(polylines[idx].object);
        std::sort(ids.begin(), ids.end());
        clusters.push_back(std::move(ids));
      }
    }
    tracker.Advance(clusters, ps, pe, lambda, &candidates);
  }
  tracker.Flush(&candidates);
  return candidates;
}

void ExpectSameCandidates(const std::vector<Candidate>& want,
                          const std::vector<Candidate>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].objects, got[i].objects) << "candidate " << i;
    EXPECT_EQ(want[i].start_tick, got[i].start_tick) << "candidate " << i;
    EXPECT_EQ(want[i].end_tick, got[i].end_tick) << "candidate " << i;
    EXPECT_EQ(want[i].lifetime, got[i].lifetime) << "candidate " << i;
  }
}

// The rewritten filter must hand the tracker the same clusters — so the
// same candidates — as the reference replay, for every variant, at 1, 2,
// and 8 threads, scalar-forced and vectorized; and the refined convoys of
// the full Cuts() runs must match the reference-filter + CutsRefine chain.
TEST(PolylineParity, EndToEndFilterAndConvoyParity) {
  Rng rng(424242);
  const TrajectoryDatabase db =
      testutil::RandomClumpyDb(rng, 48, 90, 60.0, 1.5, 0.85);
  ConvoyQuery q;
  q.m = 3;
  q.k = 12;
  q.e = 6.0;

  for (const CutsVariant variant :
       {CutsVariant::kCuts, CutsVariant::kCutsPlus, CutsVariant::kCutsStar}) {
    SCOPED_TRACE(ToString(variant));
    CutsFilterOptions fopts = MakeFilterOptions(variant);
    const double delta = ComputeDelta(db, q.e);
    const std::vector<SimplifiedTrajectory> simplified =
        SimplifyDatabase(db, delta, fopts.simplifier);
    const Tick lambda = std::max<Tick>(ComputeLambda(db, simplified, q.k), 1);
    fopts.delta = delta;
    fopts.lambda = lambda;

    const std::vector<Candidate> want =
        ReferenceFilterCandidates(db, q, fopts, simplified, delta, lambda);

    for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      for (const bool force_scalar : {true, false}) {
        if (!force_scalar && !Avx2Callable()) continue;
        simd::ForceScalar(force_scalar);
        CutsFilterOptions run = fopts;
        run.num_threads = threads;
        const CutsFilterResult got =
            CutsFilterPresimplified(db, q, run, simplified, delta, nullptr);
        SCOPED_TRACE("threads=" + std::to_string(threads) +
                     " scalar=" + std::to_string(force_scalar));
        ExpectSameCandidates(want, got.candidates);
      }
    }
    simd::ForceScalar(false);

    const std::vector<Convoy> ref_convoys =
        CutsRefine(db, q, want, fopts.refine_mode);
    const std::vector<Convoy> got_convoys = Cuts(db, q, variant, fopts);
    EXPECT_EQ(ref_convoys, got_convoys);
  }
}

}  // namespace
}  // namespace convoy
