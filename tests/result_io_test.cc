#include "io/result_io.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace convoy {
namespace {

std::vector<Convoy> Sample() {
  return {Convoy{{1, 2, 3}, 0, 9}, Convoy{{7, 9}, 100, 250}};
}

TEST(ResultIoTest, CsvRoundTrip) {
  std::ostringstream out;
  SaveConvoysCsv(Sample(), out);
  std::istringstream in(out.str());
  size_t skipped = 0;
  const auto loaded = LoadConvoysCsv(in, &skipped);
  EXPECT_EQ(skipped, 0u);
  EXPECT_TRUE(SameResultSet(loaded, Sample()));
}

TEST(ResultIoTest, CsvFormatIsStable) {
  std::ostringstream out;
  SaveConvoysCsv({Convoy{{1, 2, 3}, 0, 9}}, out);
  EXPECT_EQ(out.str(), "start_tick,end_tick,object_ids\n0,9,1;2;3\n");
}

TEST(ResultIoTest, EmptyResultSet) {
  std::ostringstream out;
  SaveConvoysCsv({}, out);
  std::istringstream in(out.str());
  EXPECT_TRUE(LoadConvoysCsv(in).empty());
}

TEST(ResultIoTest, MalformedRowsSkipped) {
  std::istringstream in(
      "start_tick,end_tick,object_ids\n"
      "0,9,1;2;3\n"
      "garbage\n"
      "5,1,2;3\n"       // start > end
      "0,9,\n"          // no objects
      "0,9,1;x;3\n"     // bad id
      "3,4,5;6\n");
  size_t skipped = 0;
  const auto loaded = LoadConvoysCsv(in, &skipped);
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(skipped, 4u);
}

TEST(ResultIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/convoys_io_test.csv";
  ASSERT_TRUE(SaveConvoysCsv(Sample(), path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  const auto loaded = LoadConvoysCsv(in);
  EXPECT_TRUE(SameResultSet(loaded, Sample()));
}

TEST(ResultIoTest, JsonOutput) {
  std::ostringstream out;
  SaveConvoysJson(Sample(), out);
  EXPECT_EQ(out.str(),
            "[\n"
            "  {\"objects\":[1,2,3],\"start\":0,\"end\":9},\n"
            "  {\"objects\":[7,9],\"start\":100,\"end\":250}\n"
            "]\n");
}

TEST(ResultIoTest, JsonEmptyArray) {
  std::ostringstream out;
  SaveConvoysJson({}, out);
  EXPECT_EQ(out.str(), "[]\n");
}

}  // namespace
}  // namespace convoy
