// Deterministic fuzz-style corpus test for the CSV loader: seeded byte
// mutations of a valid file must never crash, hang, or produce insane
// diagnostics — in any build, and in particular under the ASan/UBSan and
// TSan CI jobs, which run this suite with instrumentation that turns
// silent memory and threading bugs into hard failures. Every mutation is
// derived from a fixed mt19937_64 seed, so a failure reproduces exactly.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>

#include "io/csv.h"
#include "traj/snapshot_store.h"

namespace convoy {
namespace {

// A well-formed base corpus: header + rows for three objects over a few
// ticks, with decimals, negatives, and single-digit fields represented so
// mutations explore the parser's numeric paths.
std::string BaseCsv() {
  std::ostringstream out;
  out << "object_id,tick,x,y\n";
  for (int id = 0; id < 3; ++id) {
    for (int t = 0; t < 8; ++t) {
      out << id << "," << t << "," << (10.5 + id * 2 + t * 0.25) << ","
          << (-3.0 + id) << "\n";
    }
  }
  return out.str();
}

// Bytes a CSV mutation draws from: digits, separators, signs, exponent
// markers, text that turns numbers into garbage, and raw control bytes.
constexpr char kMutationBytes[] =
    "0123456789,,,,....--++eEnaif \t\r\nxX\";'\\\0#";

void CheckInvariants(const CsvLoadResult& result, size_t total_lines) {
  // Stream loads always "open"; only path loads can fail to.
  EXPECT_TRUE(result.ok);
  EXPECT_LE(result.diagnostics.size(), CsvLoadResult::kMaxDiagnostics);
  EXPECT_LE(result.diagnostics.size(), result.lines_skipped);
  EXPECT_LE(result.lines_parsed + result.lines_skipped, total_lines);
  for (const CsvLineDiagnostic& diag : result.diagnostics) {
    EXPECT_GT(diag.line_number, 0u);
    EXPECT_LE(diag.line_number, total_lines);
    EXPECT_FALSE(diag.reason.empty());
  }
  // Whatever was accepted must be clean: finite coordinates only (the
  // loader's contract — a NaN that sneaks through poisons every DBSCAN
  // distance comparison downstream).
  for (const Trajectory& traj : result.db.trajectories()) {
    for (const TimedPoint& p : traj.samples()) {
      EXPECT_TRUE(std::isfinite(p.pos.x));
      EXPECT_TRUE(std::isfinite(p.pos.y));
    }
  }
}

size_t CountLines(const std::string& text) {
  size_t lines = 0;
  for (const char c : text) lines += (c == '\n') ? 1 : 0;
  if (!text.empty() && text.back() != '\n') ++lines;
  return lines;
}

// Point mutations: overwrite, insert, or delete a handful of bytes.
std::string Mutate(const std::string& base, std::mt19937_64& rng) {
  std::string text = base;
  std::uniform_int_distribution<size_t> byte_pick(
      0, sizeof(kMutationBytes) - 2);
  const size_t edits = 1 + static_cast<size_t>(rng() % 8);
  for (size_t e = 0; e < edits && !text.empty(); ++e) {
    const size_t pos = static_cast<size_t>(rng() % text.size());
    switch (rng() % 3) {
      case 0:
        text[pos] = kMutationBytes[byte_pick(rng)];
        break;
      case 1:
        text.insert(pos, 1, kMutationBytes[byte_pick(rng)]);
        break;
      default:
        text.erase(pos, 1);
        break;
    }
  }
  return text;
}

TEST(CsvFuzzTest, MutatedCorpusNeverCrashesPlainLoader) {
  const std::string base = BaseCsv();
  std::mt19937_64 rng(0xC0FFEE);
  for (int iter = 0; iter < 300; ++iter) {
    const std::string mutated = Mutate(base, rng);
    std::istringstream in(mutated);
    const CsvLoadResult result = LoadTrajectoriesCsv(in);
    CheckInvariants(result, CountLines(mutated));
  }
}

TEST(CsvFuzzTest, MutatedCorpusNeverCrashesStoreLoader) {
  const std::string base = BaseCsv();
  std::mt19937_64 rng(0xFEEDBEEF);
  for (int iter = 0; iter < 150; ++iter) {
    const std::string mutated = Mutate(base, rng);
    std::istringstream in(mutated);
    SnapshotStore store;
    const CsvLoadResult result = LoadTrajectoriesCsv(in, &store);
    CheckInvariants(result, CountLines(mutated));
    // The store either materialized this database or declined it; both
    // must be internally consistent.
    if (!store.IsStaleFor(result.db)) {
      EXPECT_GE(store.TotalPoints(), 0u);
    }
  }
}

// The two overloads must agree on every diagnostic for the same bytes.
TEST(CsvFuzzTest, OverloadsAgreeOnMutatedInput) {
  const std::string base = BaseCsv();
  std::mt19937_64 rng(0xDECAFBAD);
  for (int iter = 0; iter < 100; ++iter) {
    const std::string mutated = Mutate(base, rng);
    std::istringstream plain_in(mutated);
    const CsvLoadResult plain = LoadTrajectoriesCsv(plain_in);
    std::istringstream store_in(mutated);
    SnapshotStore store;
    const CsvLoadResult with_store = LoadTrajectoriesCsv(store_in, &store);
    EXPECT_EQ(plain.lines_parsed, with_store.lines_parsed);
    EXPECT_EQ(plain.lines_skipped, with_store.lines_skipped);
    EXPECT_EQ(plain.duplicates_collapsed, with_store.duplicates_collapsed);
    ASSERT_EQ(plain.diagnostics.size(), with_store.diagnostics.size());
    for (size_t i = 0; i < plain.diagnostics.size(); ++i) {
      EXPECT_EQ(plain.diagnostics[i].line_number,
                with_store.diagnostics[i].line_number);
      EXPECT_EQ(plain.diagnostics[i].reason,
                with_store.diagnostics[i].reason);
    }
    EXPECT_EQ(plain.db.Size(), with_store.db.Size());
  }
}

// Degenerate inputs the mutator may not hit reliably get explicit cases.
TEST(CsvFuzzTest, DegenerateInputs) {
  for (const std::string& input :
       {std::string(""), std::string("\n\n\n"), std::string(","),
        std::string("object_id,tick,x,y"), std::string("1,2,nan,4\n"),
        std::string("1,2,inf,-inf\n"), std::string("-5,0,1,1\n"),
        std::string("9999999999999999999999,0,1,1\n"),
        std::string(",,,\n,,,\n"), std::string("1,2,3\n"),
        std::string("1,2,3,4,5\n"), std::string("a,b,c,d\ne,f,g,h\n"),
        std::string(1024, ','), std::string(1024, '\n'),
        std::string("1,2,1e999,4\n"), std::string("1,2,0x1p3,4\n")}) {
    std::istringstream in(input);
    const CsvLoadResult result = LoadTrajectoriesCsv(in);
    CheckInvariants(result, CountLines(input));
  }
}

}  // namespace
}  // namespace convoy
