// Parity contract for the PR-5 hot-path rewrite: the flat-CSR GridIndex,
// the arena-backed DBSCAN, and the label-intersection CandidateTracker must
// be bit-identical to the retained reference implementations
// (tests/reference_impl.h — the pre-rewrite hash-grid / deque-DBSCAN /
// set_intersection+map code) on adversarial inputs, and the end-to-end CMC
// paths built on them must agree at 1, 2, and 8 threads.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/dbscan.h"
#include "cluster/grid_index.h"
#include "core/cmc.h"
#include "parallel/parallel_runner.h"
#include "tests/reference_impl.h"
#include "tests/test_util.h"
#include "traj/interpolate.h"
#include "traj/snapshot_store.h"
#include "util/random.h"

namespace convoy {
namespace {

using reference::ReferenceCandidateTracker;
using reference::ReferenceDbscan;
using reference::ReferenceGridIndex;

// ------------------------------------------------------ point distributions

// The adversarial snapshot shapes the grid and DBSCAN must not bend on.
struct NamedPoints {
  const char* name;
  std::vector<Point> points;
};

std::vector<NamedPoints> AdversarialDistributions() {
  std::vector<NamedPoints> out;

  {  // Every point coincident: one cell, every point in every neighborhood.
    NamedPoints d{"all_coincident", {}};
    for (int i = 0; i < 200; ++i) d.points.emplace_back(4.25, -3.5);
    out.push_back(std::move(d));
  }
  {  // Exactly one point per cell, far apart: all noise at small eps.
    NamedPoints d{"one_point_per_cell", {}};
    for (int i = 0; i < 15; ++i) {
      for (int j = 0; j < 15; ++j) {
        d.points.emplace_back(i * 10.0 + 0.5, j * 10.0 + 0.5);
      }
    }
    out.push_back(std::move(d));
  }
  {  // Collinear chain at exactly eps spacing: one long density chain whose
    // every link sits on the boundary of the distance test.
    NamedPoints d{"collinear_eps_chain", {}};
    for (int i = 0; i < 150; ++i) d.points.emplace_back(i * 1.0, 0.0);
    out.push_back(std::move(d));
  }
  {  // Duplicate (x, y) pairs scattered over a few cells.
    NamedPoints d{"duplicate_pairs", {}};
    Rng rng(71);
    for (int i = 0; i < 60; ++i) {
      const Point p(rng.Uniform(0, 8), rng.Uniform(0, 8));
      d.points.push_back(p);
      d.points.push_back(p);  // exact duplicate
    }
    out.push_back(std::move(d));
  }
  {  // Points straddling cell boundaries: coordinates at exact multiples of
    // eps, where floor(v / cell) flips between neighbouring cells.
    NamedPoints d{"eps_boundary_straddle", {}};
    for (int i = -10; i <= 10; ++i) {
      for (int j = -10; j <= 10; ++j) {
        d.points.emplace_back(i * 1.0, j * 1.0);        // on the boundary
        d.points.emplace_back(i * 1.0 + 1e-9, j * 1.0);  // just inside
      }
    }
    out.push_back(std::move(d));
  }
  {  // Uniform scatter — the nominal regime, as a control.
    NamedPoints d{"uniform_scatter", {}};
    Rng rng(72);
    for (int i = 0; i < 500; ++i) {
      d.points.emplace_back(rng.Uniform(-40, 40), rng.Uniform(-40, 40));
    }
    out.push_back(std::move(d));
  }
  return out;
}

std::vector<size_t> Sorted(std::vector<size_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// ------------------------------------------------------------- grid parity

TEST(HotpathParityTest, GridMatchesReferenceOnAdversarialDistributions) {
  for (const NamedPoints& d : AdversarialDistributions()) {
    for (const double eps : {0.5, 1.0, 2.5, 10.0, 1e9, 0.0}) {
      const GridIndex csr(d.points, eps);
      const ReferenceGridIndex ref(d.points, eps);
      Rng rng(1234);
      for (int probe_i = 0; probe_i < 25; ++probe_i) {
        Point probe(rng.Uniform(-45, 45), rng.Uniform(-45, 45));
        if (probe_i < static_cast<int>(d.points.size())) {
          probe = d.points[probe_i];  // on-point probes hit boundary cases
        }
        for (const double radius : {0.0, 0.5, 1.0, 3.0, 100.0}) {
          // Membership must match the reference exactly; order is compared
          // sorted because the reference's huge-radius fallback iterates
          // its hash map in unspecified order.
          EXPECT_EQ(Sorted(csr.WithinRadius(probe, radius)),
                    Sorted(ref.WithinRadius(probe, radius)))
              << d.name << " eps=" << eps << " radius=" << radius;
        }
      }
    }
  }
}

TEST(HotpathParityTest, IndexedNeighborQueryIsBitIdenticalToGeneralQuery) {
  for (const NamedPoints& d : AdversarialDistributions()) {
    for (const double eps : {0.5, 1.0, 2.5, 0.0}) {
      const GridIndex csr(d.points, eps);
      std::vector<size_t> fast;
      std::vector<size_t> general;
      for (size_t i = 0; i < d.points.size(); ++i) {
        // The DBSCAN query shape: probe is indexed point i. Exact
        // equality, order included — this is the contract DbscanImpl's
        // expansion order rests on.
        csr.NeighborsOfInto(i, d.points[i], eps, &fast);
        csr.WithinRadiusInto(d.points[i], eps, &general);
        ASSERT_EQ(fast, general) << d.name << " eps=" << eps << " i=" << i;
      }
    }
  }
}

// ----------------------------------------------------------- dbscan parity

// Canonical form for cluster comparison: the reference grid's fallback scan
// enumerates points in hash order, so within-cluster BFS order may differ
// from the CSR path on tiny grids; membership and cluster boundaries may
// not.
std::vector<std::vector<size_t>> Canonical(Clustering c) {
  for (auto& cluster : c.clusters) std::sort(cluster.begin(), cluster.end());
  return c.clusters;
}

TEST(HotpathParityTest, DbscanMatchesReferenceOnAdversarialDistributions) {
  for (const NamedPoints& d : AdversarialDistributions()) {
    for (const double eps : {0.5, 1.0, 2.5, 10.0}) {
      for (const size_t min_pts : {size_t{2}, size_t{3}, size_t{8}}) {
        const Clustering ours = Dbscan(d.points, eps, min_pts);
        const Clustering ref = ReferenceDbscan(d.points, eps, min_pts);
        EXPECT_EQ(Canonical(ours), Canonical(ref))
            << d.name << " eps=" << eps << " min_pts=" << min_pts;
      }
    }
  }
}

TEST(HotpathParityTest, DbscanScratchReuseIsBitIdentical) {
  // One arena threaded through every distribution in sequence — stale
  // contents from one run must never leak into the next (exact equality,
  // order included, against the scratch-free path).
  DbscanScratch scratch;
  for (const NamedPoints& d : AdversarialDistributions()) {
    for (const double eps : {0.5, 2.5}) {
      const GridIndex index(d.points, eps);
      const Clustering fresh = Dbscan(d.points, index, eps, 3);
      const Clustering reused = Dbscan(d.points, index, eps, 3, &scratch);
      EXPECT_EQ(fresh.clusters, reused.clusters) << d.name << " eps=" << eps;
    }
  }
}

// -------------------------------------------------- candidate-step parity

std::vector<std::vector<ObjectId>> RandomDisjointClusters(Rng& rng,
                                                          size_t universe) {
  // A random disjoint partition of a random subset of [0, universe).
  std::vector<ObjectId> ids;
  for (size_t i = 0; i < universe; ++i) {
    if (rng.Chance(0.7)) ids.push_back(static_cast<ObjectId>(i));
  }
  std::vector<std::vector<ObjectId>> clusters;
  size_t at = 0;
  while (at < ids.size()) {
    const size_t size = std::min(
        ids.size() - at, static_cast<size_t>(rng.UniformInt(1, 12)));
    clusters.emplace_back(ids.begin() + at, ids.begin() + at + size);
    at += size;
  }
  return clusters;
}

void ExpectSameCandidates(const std::vector<Candidate>& a,
                          const std::vector<Candidate>& b,
                          const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].objects, b[i].objects) << label << " #" << i;
    EXPECT_EQ(a[i].start_tick, b[i].start_tick) << label << " #" << i;
    EXPECT_EQ(a[i].end_tick, b[i].end_tick) << label << " #" << i;
    EXPECT_EQ(a[i].lifetime, b[i].lifetime) << label << " #" << i;
  }
}

TEST(HotpathParityTest, CandidateTrackerMatchesReferenceOnRandomStreams) {
  // 30 random disjoint-cluster streams: completed output (content AND
  // order) and the final live set must equal the ordered-map reference
  // step for step.
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed);
    const size_t m = static_cast<size_t>(rng.UniformInt(2, 4));
    const Tick k = rng.UniformInt(1, 4);
    CandidateTracker ours(m, k);
    ReferenceCandidateTracker ref(m, k);
    std::vector<Candidate> ours_done;
    std::vector<Candidate> ref_done;
    const Tick ticks = rng.UniformInt(5, 25);
    for (Tick t = 0; t < ticks; ++t) {
      std::vector<std::vector<ObjectId>> clusters =
          rng.Chance(0.15) ? std::vector<std::vector<ObjectId>>{}
                           : RandomDisjointClusters(rng, 40);
      ours.Advance(clusters, t, t, 1, &ours_done);
      ref.Advance(clusters, t, t, 1, &ref_done);
      ASSERT_EQ(ours.LiveCount(), ref.LiveCount()) << "seed " << seed;
    }
    ours.Flush(&ours_done);
    ref.Flush(&ref_done);
    ExpectSameCandidates(ours_done, ref_done, "random stream");
  }
}

TEST(HotpathParityTest, CandidateTrackerOverlappingClustersFallback) {
  // Overlapping clusters (impossible from DBSCAN, legal through the public
  // API) must take the pairwise fallback and still match the reference.
  CandidateTracker ours(2, 1);
  ReferenceCandidateTracker ref(2, 1);
  std::vector<Candidate> ours_done;
  std::vector<Candidate> ref_done;
  const std::vector<std::vector<std::vector<ObjectId>>> steps = {
      {{1, 2, 3}},
      {{1, 2, 3, 4}, {1, 2}},          // overlapping
      {{2, 3}, {2, 4}, {1, 3}},        // heavily overlapping
      {{1, 2, 3}},                     // disjoint again
  };
  for (size_t t = 0; t < steps.size(); ++t) {
    ours.Advance(steps[t], static_cast<Tick>(t), static_cast<Tick>(t), 1,
                 &ours_done);
    ref.Advance(steps[t], static_cast<Tick>(t), static_cast<Tick>(t), 1,
                &ref_done);
  }
  ours.Flush(&ours_done);
  ref.Flush(&ref_done);
  ExpectSameCandidates(ours_done, ref_done, "overlap stream");
}

// --------------------------------------------------- end-to-end CMC parity

// First-principles CMC built exclusively on the reference pieces.
std::vector<Convoy> ReferenceCmc(const TrajectoryDatabase& db,
                                 const ConvoyQuery& query) {
  ReferenceCandidateTracker tracker(query.m, query.k);
  std::vector<Candidate> completed;
  for (Tick t = db.BeginTick(); t <= db.EndTick(); ++t) {
    std::vector<Point> snapshot;
    std::vector<ObjectId> ids;
    for (const Trajectory& traj : db.trajectories()) {
      const auto pos = InterpolateAt(traj, t);
      if (!pos.has_value()) continue;
      snapshot.push_back(*pos);
      ids.push_back(traj.id());
    }
    std::vector<std::vector<ObjectId>> clusters;
    if (snapshot.size() >= query.m) {
      for (const std::vector<size_t>& cluster :
           ReferenceDbscan(snapshot, query.e, query.m).clusters) {
        std::vector<ObjectId> members;
        for (const size_t idx : cluster) members.push_back(ids[idx]);
        std::sort(members.begin(), members.end());
        clusters.push_back(std::move(members));
      }
    }
    tracker.Advance(clusters, t, t, 1, &completed);
  }
  tracker.Flush(&completed);
  return FinalizeCmcResult(completed, CmcOptions{});
}

TEST(HotpathParityTest, CmcMatchesReferenceAtOneTwoAndEightThreads) {
  // Adversarial databases, including interpolation gaps, run through every
  // CMC entry point (serial, parallel row path, parallel store path) at 1,
  // 2, and 8 threads — all must equal the reference result exactly.
  Rng rng(2025);
  for (int round = 0; round < 4; ++round) {
    const TrajectoryDatabase db = testutil::RandomClumpyDb(
        rng, 24, 40, 30.0, 1.0, round % 2 == 0 ? 1.0 : 0.5);
    ConvoyQuery query;
    query.m = 3;
    query.k = 4;
    query.e = 2.5;

    const std::vector<Convoy> want = ReferenceCmc(db, query);
    EXPECT_EQ(Cmc(db, query), want) << "serial row path, round " << round;

    const SnapshotStore store = SnapshotStore::Build(db);
    EXPECT_EQ(Cmc(store, query), want) << "serial store path, round "
                                       << round;
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      EXPECT_EQ(ParallelCmc(db, query, {}, nullptr, threads), want)
          << "row path, " << threads << " threads, round " << round;
      EXPECT_EQ(ParallelCmc(store, query, {}, nullptr, threads), want)
          << "store path, " << threads << " threads, round " << round;
    }
  }
}

}  // namespace
}  // namespace convoy
