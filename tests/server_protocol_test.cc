#include "server/protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "util/random.h"

namespace convoy::server {
namespace {

// ------------------------------------------------------------ round trips

TEST(ServerProtocolTest, HelloRoundTrip) {
  HelloMsg msg;
  msg.version = 3;
  const auto decoded = DecodeHello(Encode(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->magic, kProtocolMagic);
  EXPECT_EQ(decoded->version, 3);
}

TEST(ServerProtocolTest, HelloAckRoundTrip) {
  HelloAckMsg msg;
  msg.version = kProtocolVersion;
  msg.accepted = 0;
  msg.message = "speak version 1, got 9";
  const auto decoded = DecodeHelloAck(Encode(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->accepted, 0);
  EXPECT_EQ(decoded->message, msg.message);
}

TEST(ServerProtocolTest, IngestBeginRoundTrip) {
  IngestBeginMsg msg;
  msg.seq = 0xDEADBEEFCAFE;
  msg.stream_id = 42;
  msg.m = 5;
  msg.k = -3;  // nonsense semantically, but the codec must carry it
  msg.e = 2.75;
  msg.carry_forward_ticks = 7;
  const auto decoded = DecodeIngestBegin(Encode(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->seq, msg.seq);
  EXPECT_EQ(decoded->stream_id, 42u);
  EXPECT_EQ(decoded->m, 5u);
  EXPECT_EQ(decoded->k, -3);
  EXPECT_EQ(decoded->e, 2.75);
  EXPECT_EQ(decoded->carry_forward_ticks, 7);
}

TEST(ServerProtocolTest, ReportBatchRoundTrip) {
  ReportBatchMsg msg;
  msg.seq = 9;
  msg.tick = -12;
  msg.rows = {{1, 0.5, -0.5}, {2, 1e300, -1e-300}, {3, 0.0, 0.0}};
  const auto decoded = DecodeReportBatch(Encode(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->tick, -12);
  ASSERT_EQ(decoded->rows.size(), 3u);
  EXPECT_EQ(decoded->rows[1].id, 2u);
  EXPECT_EQ(decoded->rows[1].x, 1e300);
  EXPECT_EQ(decoded->rows[1].y, -1e-300);
}

TEST(ServerProtocolTest, EmptyBatchRoundTrip) {
  ReportBatchMsg msg;
  msg.seq = 1;
  msg.tick = 0;
  const auto decoded = DecodeReportBatch(Encode(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->rows.empty());
}

TEST(ServerProtocolTest, SmallMessagesRoundTrip) {
  EndTickMsg end_tick;
  end_tick.seq = 4;
  end_tick.tick = 99;
  EXPECT_EQ(DecodeEndTick(Encode(end_tick))->tick, 99);

  IngestFinishMsg finish;
  finish.seq = 5;
  EXPECT_EQ(DecodeIngestFinish(Encode(finish))->seq, 5u);

  SubscribeMsg sub;
  sub.seq = 6;
  sub.stream_id = 77;
  EXPECT_EQ(DecodeSubscribe(Encode(sub))->stream_id, 77u);

  StatsRequestMsg stats;
  stats.seq = 8;
  EXPECT_EQ(DecodeStatsRequest(Encode(stats))->seq, 8u);
}

TEST(ServerProtocolTest, QueryRoundTrip) {
  QueryMsg msg;
  msg.seq = 11;
  msg.stream_id = 3;
  msg.m = 4;
  msg.k = 180;
  msg.e = 8.0;
  msg.algo = 2;
  msg.explain = 1;
  msg.threads = 16;
  const auto decoded = DecodeQuery(Encode(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->algo, 2);
  EXPECT_EQ(decoded->explain, 1);
  EXPECT_EQ(decoded->threads, 16u);
}

TEST(ServerProtocolTest, AckRoundTrip) {
  AckMsg msg;
  msg.seq = 21;
  msg.code = 3;  // kOutOfRange
  msg.retryable = 1;
  msg.accepted = 100;
  msg.rejected = 2;
  msg.message = "ring full";
  const auto decoded = DecodeAck(Encode(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->code, 3);
  EXPECT_EQ(decoded->retryable, 1);
  EXPECT_EQ(decoded->accepted, 100u);
  EXPECT_EQ(decoded->rejected, 2u);
  EXPECT_EQ(decoded->message, "ring full");
}

TEST(ServerProtocolTest, EventRoundTrip) {
  EventMsg msg;
  msg.stream_id = 13;
  msg.kind = static_cast<uint8_t>(EventKind::kConvoyClosed);
  msg.tick = 40;
  msg.live_candidates = 6;
  msg.convoy.objects = {3, 1, 4, 1, 5};
  msg.convoy.start_tick = 10;
  msg.convoy.end_tick = 40;
  const auto decoded = DecodeEvent(Encode(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, static_cast<uint8_t>(EventKind::kConvoyClosed));
  EXPECT_EQ(decoded->convoy, msg.convoy);
}

TEST(ServerProtocolTest, QueryResultRoundTrip) {
  QueryResultMsg msg;
  msg.seq = 31;
  msg.code = 0;
  msg.explain = "Plan: CuTS*\n  delta=4\n";
  Convoy a;
  a.objects = {1, 2, 3};
  a.start_tick = 0;
  a.end_tick = 9;
  Convoy b;
  b.objects = {4, 5};
  b.start_tick = 2;
  b.end_tick = 11;
  msg.convoys = {a, b};
  const auto decoded = DecodeQueryResult(Encode(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->explain, msg.explain);
  EXPECT_EQ(decoded->convoys, msg.convoys);
}

TEST(ServerProtocolTest, StatsResultRoundTrip) {
  StatsResultMsg msg;
  msg.seq = 41;
  msg.json = "{\"schema\":\"convoy-server-stats-v1\"}";
  const auto decoded = DecodeStatsResult(Encode(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->json, msg.json);
}

TEST(ServerProtocolTest, PeekTypeClassifiesEveryMessage) {
  EXPECT_EQ(PeekType(Encode(HelloMsg{})).value(), MsgType::kHello);
  EXPECT_EQ(PeekType(Encode(AckMsg{})).value(), MsgType::kAck);
  EXPECT_EQ(PeekType(Encode(EventMsg{})).value(), MsgType::kEvent);
  EXPECT_EQ(PeekType(Encode(QueryMsg{})).value(), MsgType::kQuery);
  EXPECT_EQ(PeekType("").status().code(), StatusCode::kDataError);
  EXPECT_EQ(PeekType(std::string(1, '\x7f')).status().code(),
            StatusCode::kDataError);
}

// -------------------------------------------------------------- malformed

TEST(ServerProtocolTest, WrongTypeByteRejected) {
  const std::string hello = Encode(HelloMsg{});
  EXPECT_EQ(DecodeAck(hello).status().code(), StatusCode::kDataError);
  EXPECT_EQ(DecodeQuery(hello).status().code(), StatusCode::kDataError);
}

TEST(ServerProtocolTest, TruncationAtEveryLengthRejected) {
  ReportBatchMsg msg;
  msg.seq = 7;
  msg.tick = 3;
  msg.rows = {{1, 2.0, 3.0}, {4, 5.0, 6.0}};
  const std::string full = Encode(msg);
  ASSERT_TRUE(DecodeReportBatch(full).ok());
  // Every strict prefix must fail cleanly — no partial decode, no UB.
  for (size_t len = 0; len < full.size(); ++len) {
    const auto decoded = DecodeReportBatch(full.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of length " << len << " decoded";
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataError);
  }
}

TEST(ServerProtocolTest, TrailingGarbageRejected) {
  const std::string payload = Encode(EndTickMsg{}) + "x";
  EXPECT_EQ(DecodeEndTick(payload).status().code(), StatusCode::kDataError);
}

TEST(ServerProtocolTest, HostileRowCountRejectedBeforeAllocation) {
  // A ReportBatch claiming ~4 billion rows in a tiny payload must be
  // rejected by the count-vs-remaining-bytes guard, not by attempting a
  // 100 GB allocation.
  std::string payload = Encode(ReportBatchMsg{});
  // The row-count u32 is the last 4 bytes of an empty batch payload.
  ASSERT_GE(payload.size(), 4u);
  payload[payload.size() - 4] = '\xff';
  payload[payload.size() - 3] = '\xff';
  payload[payload.size() - 2] = '\xff';
  payload[payload.size() - 1] = '\xff';
  EXPECT_EQ(DecodeReportBatch(payload).status().code(),
            StatusCode::kDataError);
}

TEST(ServerProtocolTest, HostileStringLengthRejected) {
  AckMsg msg;
  msg.message = "ok";
  std::string payload = Encode(msg);
  // The message is length-prefixed; inflate the prefix beyond the payload.
  const size_t prefix_at = payload.size() - msg.message.size() - 4;
  payload[prefix_at] = '\xff';
  payload[prefix_at + 1] = '\xff';
  payload[prefix_at + 2] = '\xff';
  payload[prefix_at + 3] = '\x7f';
  EXPECT_EQ(DecodeAck(payload).status().code(), StatusCode::kDataError);
}

// Deterministic mutation fuzzing: flip/insert/delete bytes of valid
// payloads and require every decoder to return Ok or kDataError — decoders
// must never crash, hang, or report any other failure class.
TEST(ServerProtocolTest, MutationFuzzNeverCrashes) {
  Rng rng(20240811);
  std::vector<std::string> seeds;
  {
    ReportBatchMsg batch;
    batch.seq = 1;
    batch.tick = 5;
    batch.rows = {{1, 0.0, 1.0}, {2, 2.0, 3.0}};
    seeds.push_back(Encode(batch));
    EventMsg event;
    event.kind = static_cast<uint8_t>(EventKind::kConvoyNew);
    event.convoy.objects = {1, 2, 3};
    seeds.push_back(Encode(event));
    QueryResultMsg result;
    result.message = "m";
    result.explain = "e";
    Convoy c;
    c.objects = {9};
    result.convoys = {c};
    seeds.push_back(Encode(result));
    seeds.push_back(Encode(IngestBeginMsg{}));
    seeds.push_back(Encode(HelloAckMsg{}));
  }

  const auto decode_all = [](std::string_view payload) {
    const StatusOr<MsgType> type = PeekType(payload);
    if (!type.ok()) return;
    // Feed the payload to every decoder, not just the matching one — the
    // type-byte check is part of the contract under test.
    (void)DecodeHello(payload);
    (void)DecodeHelloAck(payload);
    (void)DecodeIngestBegin(payload);
    (void)DecodeReportBatch(payload);
    (void)DecodeEndTick(payload);
    (void)DecodeIngestFinish(payload);
    (void)DecodeSubscribe(payload);
    (void)DecodeQuery(payload);
    (void)DecodeStatsRequest(payload);
    (void)DecodeAck(payload);
    (void)DecodeEvent(payload);
    (void)DecodeQueryResult(payload);
    (void)DecodeStatsResult(payload);
  };

  for (const std::string& seed : seeds) {
    for (int round = 0; round < 400; ++round) {
      std::string mutated = seed;
      const int mutations = 1 + static_cast<int>(rng.UniformInt(0, 3));
      for (int m = 0; m < mutations; ++m) {
        if (mutated.empty()) break;
        const auto pos = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
        switch (rng.UniformInt(0, 2)) {
          case 0:  // flip a byte
            mutated[pos] = static_cast<char>(rng.UniformInt(0, 255));
            break;
          case 1:  // delete a byte
            mutated.erase(pos, 1);
            break;
          default:  // insert a byte
            mutated.insert(pos, 1,
                           static_cast<char>(rng.UniformInt(0, 255)));
            break;
        }
      }
      decode_all(mutated);  // must not crash; any Status outcome is fine
    }
  }
}

}  // namespace
}  // namespace convoy::server
