#include "traj/resample.h"

#include <gtest/gtest.h>

#include "core/cmc.h"
#include "tests/test_util.h"
#include "traj/interpolate.h"

namespace convoy {
namespace {

TEST(ResampleTest, EmptyTrajectory) {
  EXPECT_TRUE(Resample(Trajectory(1), 5).Empty());
}

TEST(ResampleTest, SingleSample) {
  Trajectory traj(1);
  traj.Append(3, 4, 10);
  const Trajectory out = Resample(traj, 5);
  ASSERT_EQ(out.Size(), 1u);
  EXPECT_EQ(out.BeginTick(), 10);
}

TEST(ResampleTest, RegularGridWithExactEndpoints) {
  Trajectory traj(2);
  for (Tick t = 0; t <= 10; ++t) {
    traj.Append(static_cast<double>(t), 0.0, t);
  }
  const Trajectory out = Resample(traj, 4);
  // Ticks 0, 4, 8, plus the forced last tick 10.
  ASSERT_EQ(out.Size(), 4u);
  EXPECT_EQ(out[0].t, 0);
  EXPECT_EQ(out[1].t, 4);
  EXPECT_EQ(out[2].t, 8);
  EXPECT_EQ(out[3].t, 10);
  EXPECT_EQ(out[1].pos, Point(4, 0));
}

TEST(ResampleTest, UpsamplesIrregularData) {
  Trajectory traj(3);
  traj.Append(0, 0, 0);
  traj.Append(10, 0, 10);
  const Trajectory out = Resample(traj, 1);
  ASSERT_EQ(out.Size(), 11u);
  EXPECT_EQ(*out.LocationAt(7), Point(7, 0));
}

TEST(ResampleTest, LifetimePreserved) {
  Rng rng(4);
  Trajectory traj(4);
  Tick t = 3;
  for (int i = 0; i < 40; ++i) {
    traj.Append(rng.Uniform(0, 10), rng.Uniform(0, 10), t);
    t += rng.UniformInt(1, 7);
  }
  for (const Tick interval : {1, 3, 10}) {
    const Trajectory out = Resample(traj, interval);
    EXPECT_EQ(out.BeginTick(), traj.BeginTick());
    EXPECT_EQ(out.EndTick(), traj.EndTick());
  }
}

TEST(ResampleTest, IntervalOneEqualsDensify) {
  Trajectory traj(5);
  traj.Append(0, 0, 0);
  traj.Append(6, 0, 3);
  traj.Append(6, 9, 6);
  const Trajectory resampled = Resample(traj, 1);
  const Trajectory densified = Densify(traj);
  ASSERT_EQ(resampled.Size(), densified.Size());
  for (size_t i = 0; i < resampled.Size(); ++i) {
    EXPECT_EQ(resampled[i], densified[i]);
  }
}

TEST(ResampleTest, NonPositiveIntervalClamped) {
  Trajectory traj(6);
  traj.Append(0, 0, 0);
  traj.Append(2, 0, 2);
  EXPECT_EQ(Resample(traj, 0).Size(), 3u);
  EXPECT_EQ(Resample(traj, -5).Size(), 3u);
}

TEST(ResampleDatabaseTest, PreservesDiscoveryOnLinearMotion) {
  // Straight-line movement survives resampling exactly (interpolation is
  // lossless there), so convoys are unchanged.
  const auto db =
      testutil::FromXRows({{0, 1, 2, 3, 4, 5, 6, 7},
                           {0, 1, 2, 3, 4, 5, 6, 7}},
                          0.4);
  const TrajectoryDatabase thin = ResampleDatabase(db, 3);
  EXPECT_LT(thin.Stats().total_points, db.Stats().total_points);
  const ConvoyQuery query{2, 8, 1.0};
  EXPECT_TRUE(SameResultSet(Cmc(db, query), Cmc(thin, query)));
}

}  // namespace
}  // namespace convoy
