#include "cluster/str_tree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/random.h"

namespace convoy {
namespace {

Box RandomBox(Rng& rng, double world, double max_side) {
  const Point lo(rng.Uniform(0, world), rng.Uniform(0, world));
  return Box(lo, lo + Point(rng.Uniform(0, max_side),
                            rng.Uniform(0, max_side)));
}

TEST(StrTreeTest, EmptyTree) {
  const StrTree tree({});
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_EQ(tree.Height(), 0u);
  EXPECT_TRUE(tree.WithinDistance(Box(Point(0, 0), Point(1, 1)), 10.0)
                  .empty());
}

TEST(StrTreeTest, SingleEntry) {
  const StrTree tree({{Box(Point(0, 0), Point(1, 1)), 7}});
  EXPECT_EQ(tree.Size(), 1u);
  EXPECT_EQ(tree.Height(), 1u);
  const auto far_probe = Box(Point(100, 100), Point(101, 101));
  EXPECT_TRUE(tree.WithinDistance(far_probe, 10.0).empty());
  const auto hits = tree.WithinDistance(far_probe, 200.0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 7u);
}

TEST(StrTreeTest, ZeroDistanceMeansIntersection) {
  const StrTree tree({{Box(Point(0, 0), Point(10, 10)), 1},
                      {Box(Point(20, 20), Point(30, 30)), 2}});
  const auto hits = tree.WithinDistance(Box(Point(5, 5), Point(25, 25)), 0.0);
  EXPECT_EQ(hits.size(), 2u);  // probe overlaps both
  const auto only_first =
      tree.WithinDistance(Box(Point(0, 0), Point(1, 1)), 0.0);
  ASSERT_EQ(only_first.size(), 1u);
  EXPECT_EQ(only_first[0], 1u);
}

TEST(StrTreeTest, HeightGrowsLogarithmically) {
  std::vector<StrTree::Entry> entries;
  Rng rng(5);
  for (uint32_t i = 0; i < 1000; ++i) {
    entries.push_back({RandomBox(rng, 100.0, 2.0), i});
  }
  const StrTree tree(std::move(entries), /*node_capacity=*/16);
  EXPECT_EQ(tree.Size(), 1000u);
  // 1000 entries at fan-out 16: 63 leaves -> 4 inner -> 1 root = height 3.
  EXPECT_LE(tree.Height(), 4u);
  EXPECT_GE(tree.Height(), 2u);
}

TEST(StrTreeTest, MatchesBruteForceOnRandomData) {
  Rng rng(99);
  for (int iter = 0; iter < 25; ++iter) {
    const size_t n = 20 + static_cast<size_t>(rng.UniformInt(0, 400));
    std::vector<StrTree::Entry> entries;
    std::vector<Box> boxes;
    for (uint32_t i = 0; i < n; ++i) {
      const Box box = RandomBox(rng, 200.0, 10.0);
      entries.push_back({box, i});
      boxes.push_back(box);
    }
    const size_t cap = 2 + static_cast<size_t>(rng.UniformInt(0, 14));
    const StrTree tree(std::move(entries), cap);

    for (int probe_i = 0; probe_i < 10; ++probe_i) {
      const Box probe = RandomBox(rng, 200.0, 20.0);
      const double dist = rng.Uniform(0.0, 30.0);
      std::vector<uint32_t> got = tree.WithinDistance(probe, dist);
      std::sort(got.begin(), got.end());
      std::vector<uint32_t> want;
      for (uint32_t i = 0; i < n; ++i) {
        if (Dmin(boxes[i], probe) <= dist) want.push_back(i);
      }
      EXPECT_EQ(got, want) << "iter=" << iter << " cap=" << cap;
    }
  }
}

TEST(StrTreeTest, DegenerateCapacityClamped) {
  std::vector<StrTree::Entry> entries;
  for (uint32_t i = 0; i < 10; ++i) {
    entries.push_back({Box(Point(i, 0), Point(i + 0.5, 0.5)), i});
  }
  const StrTree tree(std::move(entries), /*node_capacity=*/0);  // -> 2
  EXPECT_EQ(tree.WithinDistance(Box(Point(0, 0), Point(10, 1)), 0.0).size(),
            10u);
}

TEST(StrTreeTest, PointBoxes) {
  // Zero-area boxes (points) are the GridIndex case; the tree must handle
  // them too.
  std::vector<StrTree::Entry> entries;
  for (uint32_t i = 0; i < 50; ++i) {
    const Point p(static_cast<double>(i), static_cast<double>(i % 7));
    entries.push_back({Box(p, p), i});
  }
  const StrTree tree(std::move(entries));
  const Box probe(Point(10, 0), Point(10, 0));
  const auto hits = tree.WithinDistance(probe, 3.0);
  for (const uint32_t id : hits) {
    const Point p(static_cast<double>(id), static_cast<double>(id % 7));
    EXPECT_LE(D(p, Point(10, 0)), 3.0 + 1e-12);
  }
  EXPECT_FALSE(hits.empty());
}

}  // namespace
}  // namespace convoy
