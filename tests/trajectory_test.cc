#include "traj/trajectory.h"

#include <gtest/gtest.h>

namespace convoy {
namespace {

Trajectory MakeTraj() {
  Trajectory traj(7);
  traj.Append(0.0, 0.0, 10);
  traj.Append(1.0, 1.0, 12);  // tick 11 missing
  traj.Append(2.0, 4.0, 13);
  return traj;
}

TEST(TrajectoryTest, EmptyState) {
  Trajectory traj(1);
  EXPECT_TRUE(traj.Empty());
  EXPECT_EQ(traj.Size(), 0u);
  EXPECT_EQ(traj.DurationTicks(), 0);
  EXPECT_FALSE(traj.CoversTick(0));
  EXPECT_FALSE(traj.LocationAt(0).has_value());
  EXPECT_FALSE(traj.IndexAtOrBefore(0).has_value());
}

TEST(TrajectoryTest, AppendKeepsOrder) {
  Trajectory traj = MakeTraj();
  EXPECT_EQ(traj.Size(), 3u);
  EXPECT_EQ(traj.BeginTick(), 10);
  EXPECT_EQ(traj.EndTick(), 13);
  EXPECT_EQ(traj.DurationTicks(), 4);
}

TEST(TrajectoryTest, AppendRejectsOutOfOrder) {
  Trajectory traj = MakeTraj();
  EXPECT_FALSE(traj.Append(9.0, 9.0, 12));  // not after EndTick
  EXPECT_FALSE(traj.Append(9.0, 9.0, 13));  // duplicate tick
  EXPECT_EQ(traj.Size(), 3u);
  EXPECT_TRUE(traj.Append(9.0, 9.0, 14));
}

TEST(TrajectoryTest, LocationAtExactSamplesOnly) {
  const Trajectory traj = MakeTraj();
  ASSERT_TRUE(traj.LocationAt(10).has_value());
  EXPECT_EQ(*traj.LocationAt(10), Point(0, 0));
  ASSERT_TRUE(traj.LocationAt(12).has_value());
  EXPECT_EQ(*traj.LocationAt(12), Point(1, 1));
  EXPECT_FALSE(traj.LocationAt(11).has_value());  // missing sample
  EXPECT_FALSE(traj.LocationAt(9).has_value());
  EXPECT_FALSE(traj.LocationAt(14).has_value());
}

TEST(TrajectoryTest, CoversTickIsLifetimeInclusive) {
  const Trajectory traj = MakeTraj();
  EXPECT_TRUE(traj.CoversTick(10));
  EXPECT_TRUE(traj.CoversTick(11));  // inside lifetime though unsampled
  EXPECT_TRUE(traj.CoversTick(13));
  EXPECT_FALSE(traj.CoversTick(9));
  EXPECT_FALSE(traj.CoversTick(14));
}

TEST(TrajectoryTest, IndexAtOrBefore) {
  const Trajectory traj = MakeTraj();
  EXPECT_EQ(traj.IndexAtOrBefore(10).value(), 0u);
  EXPECT_EQ(traj.IndexAtOrBefore(11).value(), 0u);
  EXPECT_EQ(traj.IndexAtOrBefore(12).value(), 1u);
  EXPECT_EQ(traj.IndexAtOrBefore(13).value(), 2u);
  EXPECT_EQ(traj.IndexAtOrBefore(100).value(), 2u);
  EXPECT_FALSE(traj.IndexAtOrBefore(9).has_value());
}

TEST(TrajectoryTest, BulkConstructorSortsSamples) {
  const Trajectory traj(3, {TimedPoint(2, 2, 20), TimedPoint(0, 0, 5),
                            TimedPoint(1, 1, 10)});
  EXPECT_EQ(traj.Size(), 3u);
  EXPECT_EQ(traj.BeginTick(), 5);
  EXPECT_EQ(traj.EndTick(), 20);
  EXPECT_EQ(traj[1].t, 10);
}

TEST(TrajectoryTest, BulkConstructorCollapsesDuplicateTicks) {
  const Trajectory traj(3, {TimedPoint(1, 1, 10), TimedPoint(2, 2, 10),
                            TimedPoint(3, 3, 20)});
  EXPECT_EQ(traj.Size(), 2u);
  // Last occurrence wins.
  EXPECT_EQ(*traj.LocationAt(10), Point(2, 2));
}

TEST(TrajectoryTest, IdRoundTrip) {
  Trajectory traj(42);
  EXPECT_EQ(traj.id(), 42u);
  traj.set_id(7);
  EXPECT_EQ(traj.id(), 7u);
}

TEST(TrajectoryTest, SingleSample) {
  Trajectory traj(1);
  traj.Append(5.0, 5.0, 100);
  EXPECT_EQ(traj.DurationTicks(), 1);
  EXPECT_TRUE(traj.CoversTick(100));
  EXPECT_EQ(*traj.LocationAt(100), Point(5, 5));
}

}  // namespace
}  // namespace convoy
