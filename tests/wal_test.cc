// Unit tests of src/wal: record codec, CRC framing, torn-tail semantics,
// seeded corruption fuzzing, fsync policies, segment rotation, reopen, and
// the fault-injection hooks. The invariant under test throughout: for any
// byte string on disk, the reader delivers a prefix of the appended
// records, deterministically, and the writer can truncate-and-continue on
// top of it — recovery never crashes on a torn log.

#include "wal/wal.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "wal/fault.h"

namespace convoy::wal {
namespace {

/// A fresh directory under the test's temp root, unique per call.
std::string FreshDir() {
  static int counter = 0;
  const std::string dir =
      ::testing::TempDir() + "wal_test_" + std::to_string(::getpid()) + "_" +
      std::to_string(counter++);
  return dir;  // WalWriter::Open / the tests create it
}

WalRecord BeginRecord(uint64_t stream_id, uint64_t seq) {
  WalRecord record;
  record.kind = WalRecordKind::kBegin;
  record.stream_id = stream_id;
  record.seq = seq;
  record.m = 3;
  record.k = 4;
  record.e = 2.5;
  record.carry_forward_ticks = 1;
  return record;
}

WalRecord BatchRecord(uint64_t stream_id, uint64_t seq, int64_t tick,
                      std::vector<WalRow> rows) {
  WalRecord record;
  record.kind = WalRecordKind::kBatch;
  record.stream_id = stream_id;
  record.seq = seq;
  record.tick = tick;
  record.rows = std::move(rows);
  return record;
}

WalRecord MarkerRecord(WalRecordKind kind, uint64_t stream_id, uint64_t seq,
                       int64_t tick) {
  WalRecord record;
  record.kind = kind;
  record.stream_id = stream_id;
  record.seq = seq;
  record.tick = tick;
  return record;
}

/// A representative log: one stream's begin, batches, ticks, finish.
std::vector<WalRecord> SampleRecords() {
  std::vector<WalRecord> records;
  records.push_back(BeginRecord(7, 1));
  uint64_t seq = 1;
  for (int64_t tick = 0; tick < 4; ++tick) {
    records.push_back(BatchRecord(
        7, ++seq, tick,
        {{1, 0.5 + static_cast<double>(tick), 1.0}, {2, 1.5, 2.0}}));
    records.push_back(
        MarkerRecord(WalRecordKind::kEndTick, 7, ++seq, tick));
  }
  records.push_back(MarkerRecord(WalRecordKind::kFinish, 7, ++seq, 0));
  return records;
}

void AppendAll(WalWriter& writer, const std::vector<WalRecord>& records) {
  for (const WalRecord& record : records) {
    ASSERT_TRUE(writer.Append(record).ok());
  }
}

std::vector<WalRecord> ReadAll(const std::string& dir, WalReadStats* stats) {
  std::vector<WalRecord> records;
  const Status read = ReadWalDir(
      dir,
      [&](const WalRecord& record) {
        records.push_back(record);
        return Status::Ok();
      },
      stats);
  EXPECT_TRUE(read.ok()) << read;
  return records;
}

void ExpectEqual(const WalRecord& got, const WalRecord& want) {
  EXPECT_EQ(got.kind, want.kind);
  EXPECT_EQ(got.stream_id, want.stream_id);
  EXPECT_EQ(got.seq, want.seq);
  EXPECT_EQ(got.tick, want.tick);
  EXPECT_EQ(got.m, want.m);
  EXPECT_EQ(got.k, want.k);
  EXPECT_EQ(got.e, want.e);
  EXPECT_EQ(got.carry_forward_ticks, want.carry_forward_ticks);
  EXPECT_EQ(got.rows, want.rows);
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// ------------------------------------------------------------------ codec

TEST(WalCodecTest, Crc32MatchesStandardCheckValue) {
  // The IEEE 802.3 check value: CRC32("123456789") = 0xCBF43926.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(WalCodecTest, EncodeDecodeRoundTripsEveryKind) {
  for (const WalRecord& record : SampleRecords()) {
    const std::string payload = EncodeWalRecord(record);
    const auto decoded = DecodeWalRecord(payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    ExpectEqual(*decoded, record);
  }
}

TEST(WalCodecTest, DecodeRejectsCorruptPayloadsWithoutCrashing) {
  const std::string payload =
      EncodeWalRecord(BatchRecord(1, 2, 3, {{4, 5.0, 6.0}}));
  // Every strict prefix must be rejected, not read out of bounds.
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(DecodeWalRecord(payload.substr(0, len)).ok()) << len;
  }
  // An unknown kind byte is corruption, not UB.
  std::string bad_kind = payload;
  bad_kind[0] = '\x7f';
  EXPECT_FALSE(DecodeWalRecord(bad_kind).ok());
  // Trailing garbage is rejected (a record is exactly its payload).
  EXPECT_FALSE(DecodeWalRecord(payload + "x").ok());
}

// ----------------------------------------------------------- write / read

TEST(WalWriterTest, AppendReadRoundTrip) {
  const std::string dir = FreshDir();
  const std::vector<WalRecord> records = SampleRecords();
  {
    auto writer = WalWriter::Open(WalOptions{dir}, nullptr);
    ASSERT_TRUE(writer.ok()) << writer.status();
    AppendAll(**writer, records);
  }
  WalReadStats stats;
  const std::vector<WalRecord> got = ReadAll(dir, &stats);
  ASSERT_EQ(got.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) ExpectEqual(got[i], records[i]);
  EXPECT_EQ(stats.records, records.size());
  EXPECT_EQ(stats.segments, 1u);
  EXPECT_FALSE(stats.torn);
}

TEST(WalWriterTest, MissingDirectoryReadsAsEmpty) {
  WalReadStats stats;
  const std::vector<WalRecord> got = ReadAll(FreshDir() + "_never", &stats);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(stats.segments, 0u);
  EXPECT_FALSE(stats.torn);
}

TEST(WalWriterTest, ReopenAppendsAfterExistingRecords) {
  const std::string dir = FreshDir();
  const std::vector<WalRecord> records = SampleRecords();
  {
    auto writer = WalWriter::Open(WalOptions{dir}, nullptr);
    ASSERT_TRUE(writer.ok());
    AppendAll(**writer, records);
  }
  {
    auto writer = WalWriter::Open(WalOptions{dir}, nullptr);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(
        (*writer)->Append(BatchRecord(7, 99, 4, {{3, 1.0, 2.0}})).ok());
  }
  WalReadStats stats;
  const std::vector<WalRecord> got = ReadAll(dir, &stats);
  ASSERT_EQ(got.size(), records.size() + 1);
  EXPECT_EQ(got.back().seq, 99u);
  EXPECT_FALSE(stats.torn);
}

TEST(WalWriterTest, SegmentRotationSplitsAndReadsAcrossFiles) {
  const std::string dir = FreshDir();
  TraceSession trace;
  WalOptions options{dir};
  options.segment_bytes = 256;  // a few records per segment
  std::vector<WalRecord> records;
  {
    auto writer = WalWriter::Open(options, &trace);
    ASSERT_TRUE(writer.ok());
    for (uint64_t seq = 1; seq <= 40; ++seq) {
      records.push_back(BatchRecord(1, seq, static_cast<int64_t>(seq),
                                    {{7, 1.0, 2.0}, {8, 3.0, 4.0}}));
      ASSERT_TRUE((*writer)->Append(records.back()).ok());
    }
  }
  WalReadStats stats;
  const std::vector<WalRecord> got = ReadAll(dir, &stats);
  ASSERT_EQ(got.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) ExpectEqual(got[i], records[i]);
  EXPECT_GT(stats.segments, 1u);
  EXPECT_GT(trace.counter(TraceCounter::kWalSegmentsRotated), 0u);
  EXPECT_FALSE(stats.torn);
}

TEST(WalWriterTest, FsyncPolicyEveryTickSyncsMarkers) {
  const std::string dir = FreshDir();
  TraceSession trace;
  WalOptions options{dir};
  options.fsync = FsyncPolicy::kEveryTick;
  auto writer = WalWriter::Open(options, &trace);
  ASSERT_TRUE(writer.ok());
  // Open itself fsyncs directory entries (WAL dir + fresh segment) under
  // a durable policy; the record-level policy is measured from here.
  const uint64_t after_open = trace.counter(TraceCounter::kWalFsyncs);
  EXPECT_GT(after_open, 0u);
  ASSERT_TRUE((*writer)->Append(BatchRecord(1, 1, 0, {{1, 0, 0}})).ok());
  const uint64_t after_batch = trace.counter(TraceCounter::kWalFsyncs);
  ASSERT_TRUE(
      (*writer)->Append(MarkerRecord(WalRecordKind::kEndTick, 1, 2, 0)).ok());
  ASSERT_TRUE(
      (*writer)->Append(MarkerRecord(WalRecordKind::kFinish, 1, 3, 0)).ok());
  // Batches ride the page cache; the tick/finish markers are the durability
  // points.
  EXPECT_EQ(after_batch, after_open);
  EXPECT_EQ(trace.counter(TraceCounter::kWalFsyncs), after_open + 2);
}

TEST(WalWriterTest, ParseFsyncPolicyVocabulary) {
  EXPECT_EQ(*ParseFsyncPolicy("none"), FsyncPolicy::kNone);
  EXPECT_EQ(*ParseFsyncPolicy("interval"), FsyncPolicy::kInterval);
  EXPECT_EQ(*ParseFsyncPolicy("every_tick"), FsyncPolicy::kEveryTick);
  EXPECT_FALSE(ParseFsyncPolicy("always").ok());
  EXPECT_EQ(ToString(FsyncPolicy::kInterval), "interval");
}

// ------------------------------------------------------------- torn tails

TEST(WalTornTailTest, TruncatedTailYieldsPrefixThenWriterContinues) {
  const std::string dir = FreshDir();
  const std::vector<WalRecord> records = SampleRecords();
  {
    auto writer = WalWriter::Open(WalOptions{dir}, nullptr);
    ASSERT_TRUE(writer.ok());
    AppendAll(**writer, records);
  }
  const std::string path = WalSegmentPath(dir, 0);
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), kWalHeaderBytes + 8);
  // Chop the last record mid-payload: a crash mid-write(2).
  WriteFileBytes(path, bytes.substr(0, bytes.size() - 5));

  WalReadStats stats;
  std::vector<WalRecord> got = ReadAll(dir, &stats);
  ASSERT_EQ(got.size(), records.size() - 1);
  for (size_t i = 0; i < got.size(); ++i) ExpectEqual(got[i], records[i]);
  EXPECT_TRUE(stats.torn);
  EXPECT_EQ(stats.torn_segment, path);

  // Open truncates the tear in place and appends on top of the prefix.
  TraceSession trace;
  {
    auto writer = WalWriter::Open(WalOptions{dir}, &trace);
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE(
        (*writer)->Append(BatchRecord(7, 50, 9, {{9, 0.0, 0.0}})).ok());
  }
  EXPECT_GT(trace.counter(TraceCounter::kWalTruncatedTails), 0u);
  WalReadStats healed;
  got = ReadAll(dir, &healed);
  ASSERT_EQ(got.size(), records.size());  // prefix + the new record
  EXPECT_EQ(got.back().seq, 50u);
  EXPECT_FALSE(healed.torn);
}

TEST(WalTornTailTest, GarbageTailWithPlausibleLengthIsTorn) {
  const std::string dir = FreshDir();
  const std::vector<WalRecord> records = SampleRecords();
  {
    auto writer = WalWriter::Open(WalOptions{dir}, nullptr);
    ASSERT_TRUE(writer.ok());
    AppendAll(**writer, records);
  }
  const std::string path = WalSegmentPath(dir, 0);
  // A frame header promising more bytes than the file holds.
  std::string bytes = ReadFileBytes(path);
  bytes += std::string("\xff\x00\x00\x00", 4);  // len = 255
  bytes += std::string(8, '\x42');              // CRC + partial payload
  WriteFileBytes(path, bytes);

  WalReadStats stats;
  const std::vector<WalRecord> got = ReadAll(dir, &stats);
  EXPECT_EQ(got.size(), records.size());
  EXPECT_TRUE(stats.torn);

  // An oversized length is corruption, never an allocation.
  std::string huge = ReadFileBytes(path);
  huge.resize(huge.size() - 12);
  huge += std::string("\xff\xff\xff\x7f", 4);  // len = ~2 GiB
  huge += std::string(16, '\x01');
  WriteFileBytes(path, huge);
  WalReadStats huge_stats;
  EXPECT_EQ(ReadAll(dir, &huge_stats).size(), records.size());
  EXPECT_TRUE(huge_stats.torn);
}

TEST(WalTornTailTest, SeededByteMutationsAlwaysYieldDeterministicPrefix) {
  // Build one reference log, then fuzz single-byte corruption and seeded
  // truncation across it. For every mutation the reader must (a) not
  // crash, (b) deliver a prefix of the original records, (c) be
  // deterministic (two reads agree), and the writer must reopen the
  // mutated log and append successfully.
  const std::string ref_dir = FreshDir();
  std::vector<WalRecord> records;
  {
    auto writer = WalWriter::Open(WalOptions{ref_dir}, nullptr);
    ASSERT_TRUE(writer.ok());
    records.push_back(BeginRecord(3, 1));
    for (uint64_t seq = 2; seq <= 12; ++seq) {
      records.push_back(BatchRecord(3, seq, static_cast<int64_t>(seq),
                                    {{1, 1.5, 2.5}, {2, 3.5, 4.5}}));
    }
    AppendAll(**writer, records);
  }
  const std::string ref_bytes = ReadFileBytes(WalSegmentPath(ref_dir, 0));
  ASSERT_GT(ref_bytes.size(), kWalHeaderBytes);

  uint64_t rng = 0x5eed;
  for (int trial = 0; trial < 120; ++trial) {
    std::string bytes = ref_bytes;
    if (trial % 3 == 0) {
      bytes.resize(SplitMix64(&rng) % bytes.size());  // torn anywhere
    } else {
      const size_t pos = SplitMix64(&rng) % bytes.size();
      bytes[pos] = static_cast<char>(
          static_cast<unsigned char>(bytes[pos]) ^
          static_cast<unsigned char>(1u << (SplitMix64(&rng) % 8)));
    }
    const std::string dir = FreshDir();
    ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
    WriteFileBytes(WalSegmentPath(dir, 0), bytes);

    WalReadStats stats;
    const std::vector<WalRecord> got = ReadAll(dir, &stats);
    ASSERT_LE(got.size(), records.size()) << "trial " << trial;
    for (size_t i = 0; i < got.size(); ++i) {
      ExpectEqual(got[i], records[i]);  // prefix property
    }
    WalReadStats again;
    EXPECT_EQ(ReadAll(dir, &again).size(), got.size());  // deterministic
    EXPECT_EQ(again.torn, stats.torn);
    EXPECT_EQ(again.torn_offset, stats.torn_offset);

    // Truncate-and-continue: reopening the mutated log must succeed and
    // leave an untorn log holding the surviving prefix + one new record.
    auto writer = WalWriter::Open(WalOptions{dir}, nullptr);
    ASSERT_TRUE(writer.ok()) << writer.status() << " trial " << trial;
    ASSERT_TRUE(
        (*writer)->Append(BatchRecord(3, 99, 0, {{9, 0.0, 0.0}})).ok());
    writer->reset();
    WalReadStats healed;
    const std::vector<WalRecord> after = ReadAll(dir, &healed);
    EXPECT_FALSE(healed.torn) << "trial " << trial;
    ASSERT_EQ(after.size(), got.size() + 1);
    EXPECT_EQ(after.back().seq, 99u);
  }
}

// -------------------------------------------------------- fault injection

TEST(WalFaultTest, ShortWritesAndEintrAreMaskedByTheWriteLoop) {
  FaultInjector::Options fault_options;
  fault_options.seed = 11;
  fault_options.short_write_prob = 0.5;
  fault_options.eintr_prob = 0.3;
  FaultInjector injector(fault_options);
  SetFaultInjector(&injector);

  const std::string dir = FreshDir();
  std::vector<WalRecord> records;
  {
    auto writer = WalWriter::Open(WalOptions{dir}, nullptr);
    ASSERT_TRUE(writer.ok());
    for (uint64_t seq = 1; seq <= 50; ++seq) {
      records.push_back(BatchRecord(1, seq, static_cast<int64_t>(seq),
                                    {{1, 0.25, 0.75}, {2, 1.25, 1.75}}));
      ASSERT_TRUE((*writer)->Append(records.back()).ok());
    }
  }
  SetFaultInjector(nullptr);
  // The run must actually have been faulty, and the log still perfect.
  EXPECT_GT(injector.short_writes() + injector.eintrs(), 0u);
  WalReadStats stats;
  const std::vector<WalRecord> got = ReadAll(dir, &stats);
  ASSERT_EQ(got.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) ExpectEqual(got[i], records[i]);
  EXPECT_FALSE(stats.torn);
}

TEST(WalFaultTest, KilledWriteFailsAppendButKeepsLoggedPrefixReadable) {
  FaultInjector::Options fault_options;
  fault_options.seed = 5;
  fault_options.fail_writes_after = 4;  // call 1 = segment header, calls
                                        // 2-3 = records, call 4 dies
  FaultInjector injector(fault_options);
  SetFaultInjector(&injector);

  const std::string dir = FreshDir();
  auto writer = WalWriter::Open(WalOptions{dir}, nullptr);
  ASSERT_TRUE(writer.ok());
  size_t appended = 0;
  Status failed = Status::Ok();
  for (uint64_t seq = 1; seq <= 10; ++seq) {
    failed = (*writer)->Append(BatchRecord(1, seq, 0, {{1, 0, 0}}));
    if (!failed.ok()) break;
    ++appended;
  }
  SetFaultInjector(nullptr);
  ASSERT_FALSE(failed.ok());  // the cut surfaced as an append failure
  EXPECT_EQ(appended, 2u);
  EXPECT_GT(injector.writes_killed(), 0u);

  // The promised (returned-Ok) records survive; at worst the tail is torn.
  WalReadStats stats;
  const std::vector<WalRecord> got = ReadAll(dir, &stats);
  ASSERT_GE(got.size(), appended);
  for (size_t i = 0; i < appended; ++i) {
    EXPECT_EQ(got[i].seq, static_cast<uint64_t>(i + 1));
  }
}

TEST(WalFaultTest, FailedFsyncFailsTheAppendAndPoisonsTheWriter) {
  const std::string dir = FreshDir();
  WalOptions options{dir};
  options.fsync = FsyncPolicy::kEveryTick;
  auto writer = WalWriter::Open(options, nullptr);
  ASSERT_TRUE(writer.ok());
  // One durably acked tick before the disk turns bad.
  ASSERT_TRUE(
      (*writer)->Append(MarkerRecord(WalRecordKind::kEndTick, 1, 1, 0)).ok());

  FaultInjector::Options fault_options;
  fault_options.seed = 3;
  fault_options.fsync_fail_prob = 1.0;  // every fsync fails
  FaultInjector injector(fault_options);
  SetFaultInjector(&injector);
  // Post-fsyncgate, an fsync EIO may have dropped the dirty pages while
  // marking them clean — a later fsync proves nothing. The policy
  // demanded durability for this tick, so the append must FAIL (the tick
  // is NAKed, never acked as durable)...
  EXPECT_FALSE(
      (*writer)->Append(MarkerRecord(WalRecordKind::kEndTick, 1, 2, 1)).ok());
  SetFaultInjector(nullptr);
  EXPECT_GT(injector.fsync_failures(), 0u);
  // ...and the writer stays poisoned even after fsync heals: only a
  // restart, which re-reads the real on-disk state, can re-promise
  // durability.
  EXPECT_FALSE(
      (*writer)->Append(MarkerRecord(WalRecordKind::kEndTick, 1, 3, 2)).ok());
  EXPECT_FALSE((*writer)->Sync().ok());
  writer->reset();

  // The acked tick survives and the log is not torn. (The NAKed tick's
  // bytes may also survive — replaying them is absorbed as a duplicate.)
  WalReadStats stats;
  const std::vector<WalRecord> got = ReadAll(dir, &stats);
  ASSERT_GE(got.size(), 1u);
  EXPECT_EQ(got[0].seq, 1u);
  EXPECT_FALSE(stats.torn);
}

TEST(WalFaultTest, FailedAppendTruncatesBackSoOtherStreamsSurvive) {
  // The WAL is shared by every stream: stream 1's append dies mid-write,
  // leaving torn bytes; without cleanup, stream 2's next (acked!) record
  // would sit after the tear and the next Open would discard it. The
  // writer must cut the file back to the last record boundary.
  const std::string dir = FreshDir();
  auto writer = WalWriter::Open(WalOptions{dir}, nullptr);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(BatchRecord(1, 1, 0, {{1, 0.0, 0.0}})).ok());

  FaultInjector::Options fault_options;
  fault_options.seed = 7;
  fault_options.short_write_prob = 1.0;  // call 1 deposits a partial record
  fault_options.fail_writes_after = 2;   // call 2 (the retry) dies with EIO
  FaultInjector injector(fault_options);
  SetFaultInjector(&injector);
  EXPECT_FALSE((*writer)->Append(BatchRecord(1, 2, 0, {{2, 1.0, 1.0}})).ok());
  SetFaultInjector(nullptr);
  EXPECT_GT(injector.short_writes(), 0u);
  EXPECT_GT(injector.writes_killed(), 0u);

  // Stream 2 appends after the contained failure; its record must land on
  // a clean boundary and survive recovery.
  ASSERT_TRUE((*writer)->Append(BatchRecord(2, 5, 0, {{9, 2.0, 2.0}})).ok());
  writer->reset();

  WalReadStats stats;
  const std::vector<WalRecord> got = ReadAll(dir, &stats);
  EXPECT_FALSE(stats.torn) << stats.detail;
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].stream_id, 1u);
  EXPECT_EQ(got[0].seq, 1u);
  EXPECT_EQ(got[1].stream_id, 2u);
  EXPECT_EQ(got[1].seq, 5u);
}

}  // namespace
}  // namespace convoy::wal
