// Property tests of the paper's Lemmas 1-3: the distance bounds that make
// the CuTS filter lossless. Each test constructs random trajectories,
// simplifies them, and checks the lemma as an implication at sampled ticks.

#include <gtest/gtest.h>

#include "geom/box.h"
#include "geom/distance.h"
#include "simplify/douglas_peucker.h"
#include "simplify/dp_star.h"
#include "traj/interpolate.h"
#include "util/random.h"

namespace convoy {
namespace {

Trajectory RandomWalk(Rng& rng, ObjectId id, Tick ticks, double step) {
  Trajectory traj(id);
  Point pos(rng.Uniform(0, 30), rng.Uniform(0, 30));
  for (Tick t = 0; t < ticks; ++t) {
    traj.Append(pos.x, pos.y, t);
    pos = pos + Point(rng.Gaussian(0.2, step), rng.Gaussian(0, step));
  }
  return traj;
}

// Lemma 1: if DLL(l'q, l'i) > e + delta(l'q) + delta(l'i), then
// D(oq(t), oi(t)) > e for every t covered by both segments.
TEST(Lemma1Test, DllBoundImpliesOriginalSeparation) {
  Rng rng(11);
  size_t checked = 0;
  for (int iter = 0; iter < 60; ++iter) {
    const Trajectory oq = RandomWalk(rng, 0, 40, 1.0);
    const Trajectory oi = RandomWalk(rng, 1, 40, 1.0);
    const double delta = rng.Uniform(0.3, 3.0);
    const SimplifiedTrajectory sq = DouglasPeucker(oq, delta);
    const SimplifiedTrajectory si = DouglasPeucker(oi, delta);
    const double e = rng.Uniform(0.5, 5.0);

    for (Tick t = 0; t < 40; ++t) {
      const auto qseg = sq.SegmentCovering(t);
      const auto iseg = si.SegmentCovering(t);
      if (!qseg || !iseg) continue;
      const TimedSegment lq = sq.GetSegment(*qseg);
      const TimedSegment li = si.GetSegment(*iseg);
      const double bound =
          e + sq.SegmentTolerance(*qseg) + si.SegmentTolerance(*iseg);
      if (DLL(lq.Spatial(), li.Spatial()) > bound) {
        const double actual = D(*oq.LocationAt(t), *oi.LocationAt(t));
        EXPECT_GT(actual, e) << "t=" << t << " iter=" << iter;
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 100u) << "test vacuous: prune case never triggered";
}

// Lemma 1 extended to interpolated (virtual) points at unsampled ticks.
TEST(Lemma1Test, HoldsForInterpolatedPositions) {
  Rng rng(12);
  size_t checked = 0;
  for (int iter = 0; iter < 60; ++iter) {
    // Build irregularly sampled trajectories.
    Trajectory oq(0);
    Trajectory oi(1);
    Point pq(rng.Uniform(0, 20), rng.Uniform(0, 20));
    Point pi(rng.Uniform(0, 20), rng.Uniform(0, 20));
    for (Tick t = 0; t < 40; ++t) {
      if (t == 0 || t == 39 || rng.Chance(0.5)) oq.Append(pq.x, pq.y, t);
      if (t == 0 || t == 39 || rng.Chance(0.5)) oi.Append(pi.x, pi.y, t);
      pq = pq + Point(rng.Gaussian(0.2, 1.0), rng.Gaussian(0, 1.0));
      pi = pi + Point(rng.Gaussian(0.2, 1.0), rng.Gaussian(0, 1.0));
    }
    const double delta = rng.Uniform(0.3, 2.0);
    const SimplifiedTrajectory sq = DouglasPeucker(oq, delta);
    const SimplifiedTrajectory si = DouglasPeucker(oi, delta);
    const double e = rng.Uniform(0.5, 4.0);

    for (Tick t = 0; t < 40; ++t) {
      const auto qseg = sq.SegmentCovering(t);
      const auto iseg = si.SegmentCovering(t);
      if (!qseg || !iseg) continue;
      const double bound =
          e + sq.SegmentTolerance(*qseg) + si.SegmentTolerance(*iseg);
      if (DLL(sq.GetSegment(*qseg).Spatial(),
              si.GetSegment(*iseg).Spatial()) > bound) {
        const auto a = InterpolateAt(oq, t);
        const auto b = InterpolateAt(oi, t);
        ASSERT_TRUE(a.has_value());
        ASSERT_TRUE(b.has_value());
        EXPECT_GT(D(*a, *b), e);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 50u);
}

// Lemma 2: the bounding-box bound over a *set* of segments.
TEST(Lemma2Test, BoxBoundImpliesSeparationForAllMembers) {
  Rng rng(13);
  size_t checked = 0;
  for (int iter = 0; iter < 80; ++iter) {
    const Trajectory oq = RandomWalk(rng, 0, 30, 1.0);
    const Trajectory oi = RandomWalk(rng, 1, 30, 1.0);
    const double delta = rng.Uniform(0.3, 2.0);
    const SimplifiedTrajectory sq = DouglasPeucker(oq, delta);
    const SimplifiedTrajectory si = DouglasPeucker(oi, delta);
    const double e = rng.Uniform(0.5, 4.0);

    // S = all of si's segments; B(S) their joint bounding box.
    Box box_s;
    double delta_max = 0.0;
    for (size_t s = 0; s < si.NumSegments(); ++s) {
      box_s.Extend(Box::Of(si.GetSegment(s)));
      delta_max = std::max(delta_max, si.SegmentTolerance(s));
    }

    for (size_t qs = 0; qs < sq.NumSegments(); ++qs) {
      const TimedSegment lq = sq.GetSegment(qs);
      const double bound = e + sq.SegmentTolerance(qs) + delta_max;
      if (Dmin(Box::Of(lq), box_s) <= bound) continue;
      // The lemma: every tick covered by lq and any segment of si has the
      // originals more than e apart.
      for (Tick t = lq.BeginTick(); t <= lq.EndTick(); ++t) {
        if (!si.CoversTick(t)) continue;
        EXPECT_GT(D(*InterpolateAt(oq, t), *InterpolateAt(oi, t)), e);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 100u);
}

// Lemma 3: same as Lemma 1 but with DP* simplification and the D* distance.
TEST(Lemma3Test, DStarBoundImpliesOriginalSeparation) {
  Rng rng(14);
  size_t checked = 0;
  for (int iter = 0; iter < 60; ++iter) {
    const Trajectory oq = RandomWalk(rng, 0, 40, 1.0);
    const Trajectory oi = RandomWalk(rng, 1, 40, 1.0);
    const double delta = rng.Uniform(0.3, 3.0);
    const SimplifiedTrajectory sq = DpStar(oq, delta);
    const SimplifiedTrajectory si = DpStar(oi, delta);
    const double e = rng.Uniform(0.5, 5.0);

    for (Tick t = 0; t < 40; ++t) {
      const auto qseg = sq.SegmentCovering(t);
      const auto iseg = si.SegmentCovering(t);
      if (!qseg || !iseg) continue;
      const double bound =
          e + sq.SegmentTolerance(*qseg) + si.SegmentTolerance(*iseg);
      if (DStar(sq.GetSegment(*qseg), si.GetSegment(*iseg)) > bound) {
        EXPECT_GT(D(*oq.LocationAt(t), *oi.LocationAt(t)), e);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 100u);
}

// D* tightening (Section 6.2): D* >= DLL always, so the CuTS* filter prunes
// at least as hard as CuTS for the same tolerances.
TEST(Lemma3Test, DStarPrunesAtLeastAsMuchAsDll) {
  Rng rng(15);
  for (int iter = 0; iter < 200; ++iter) {
    const Trajectory oq = RandomWalk(rng, 0, 20, 1.0);
    const Trajectory oi = RandomWalk(rng, 1, 20, 1.0);
    const SimplifiedTrajectory sq = DpStar(oq, 1.0);
    const SimplifiedTrajectory si = DpStar(oi, 1.0);
    for (size_t a = 0; a < sq.NumSegments(); ++a) {
      for (size_t b = 0; b < si.NumSegments(); ++b) {
        const TimedSegment lq = sq.GetSegment(a);
        const TimedSegment li = si.GetSegment(b);
        if (!OverlapTicks(lq, li).valid) continue;
        EXPECT_GE(DStar(lq, li) + 1e-9, DLL(lq.Spatial(), li.Spatial()));
      }
    }
  }
}

}  // namespace
}  // namespace convoy
