// Property tests of the parallel execution subsystem: every parallel runner
// must produce output *identical* (not merely equivalent) to its serial
// counterpart, across seeded random databases and 1/2/8 worker threads.

#include <gtest/gtest.h>

#include <thread>

#include "core/cmc.h"
#include "core/cuts.h"
#include "core/engine.h"
#include "parallel/parallel_runner.h"
#include "tests/test_util.h"

namespace convoy {
namespace {

using testutil::RandomClumpyDb;

constexpr size_t kThreadCounts[] = {1, 2, 8};

TrajectoryDatabase MakeDb(uint64_t seed, double keep_prob = 1.0) {
  Rng rng(seed);
  return RandomClumpyDb(rng, /*num_objects=*/24, /*ticks=*/40,
                        /*world=*/60.0, /*step=*/1.0, keep_prob);
}

TEST(ParallelEquivalenceTest, ParallelCmcMatchesSerialExactly) {
  for (const uint64_t seed : {11u, 22u, 33u, 44u}) {
    const TrajectoryDatabase db = MakeDb(seed);
    const ConvoyQuery query{3, 4, 5.0};
    const auto serial = Cmc(db, query);
    for (const size_t threads : kThreadCounts) {
      const auto parallel =
          ParallelCmc(db, query, {}, nullptr, threads);
      EXPECT_EQ(parallel, serial)
          << "seed " << seed << ", " << threads << " thread(s)";
    }
  }
}

TEST(ParallelEquivalenceTest, ParallelCmcMatchesWithRawCandidates) {
  // remove_dominated = false exercises the other finalization branch.
  const TrajectoryDatabase db = MakeDb(7);
  const ConvoyQuery query{2, 3, 5.0};
  CmcOptions options;
  options.remove_dominated = false;
  const auto serial = Cmc(db, query, options);
  for (const size_t threads : kThreadCounts) {
    EXPECT_EQ(ParallelCmc(db, query, options, nullptr, threads), serial);
  }
}

TEST(ParallelEquivalenceTest, ParallelCmcRangeMatchesSerial) {
  const TrajectoryDatabase db = MakeDb(5);
  const ConvoyQuery query{2, 3, 5.0};
  const Tick begin = db.BeginTick() + 5;
  const Tick end = db.EndTick() - 5;
  const auto serial = CmcRange(db, query, begin, end);
  for (const size_t threads : kThreadCounts) {
    EXPECT_EQ(ParallelCmcRange(db, query, begin, end, {}, nullptr, threads),
              serial);
  }
}

TEST(ParallelEquivalenceTest, ParallelCmcStatsCountEveryClustering) {
  const TrajectoryDatabase db = MakeDb(9);
  const ConvoyQuery query{3, 4, 5.0};
  DiscoveryStats serial_stats;
  (void)Cmc(db, query, {}, &serial_stats);
  for (const size_t threads : kThreadCounts) {
    DiscoveryStats stats;
    (void)ParallelCmc(db, query, {}, &stats, threads);
    EXPECT_EQ(stats.num_clusterings, serial_stats.num_clusterings);
    EXPECT_EQ(stats.num_convoys, serial_stats.num_convoys);
  }
}

TEST(ParallelEquivalenceTest, ParallelCutsFilterMatchesSerialExactly) {
  for (const uint64_t seed : {3u, 13u, 23u}) {
    // keep_prob < 1 produces irregular sampling, the harder filter input.
    const TrajectoryDatabase db = MakeDb(seed, /*keep_prob=*/0.8);
    const ConvoyQuery query{3, 4, 5.0};
    for (const auto variant :
         {CutsVariant::kCuts, CutsVariant::kCutsStar}) {
      const CutsFilterOptions options = MakeFilterOptions(variant);
      const CutsFilterResult serial = CutsFilter(db, query, options);
      for (const size_t threads : kThreadCounts) {
        const CutsFilterResult parallel =
            ParallelCutsFilter(db, query, options, nullptr, threads);
        EXPECT_EQ(parallel.delta_used, serial.delta_used);
        EXPECT_EQ(parallel.lambda_used, serial.lambda_used);
        ASSERT_EQ(parallel.candidates.size(), serial.candidates.size())
            << ToString(variant) << " seed " << seed << ", " << threads
            << " thread(s)";
        for (size_t i = 0; i < serial.candidates.size(); ++i) {
          EXPECT_EQ(parallel.candidates[i].objects,
                    serial.candidates[i].objects);
          EXPECT_EQ(parallel.candidates[i].start_tick,
                    serial.candidates[i].start_tick);
          EXPECT_EQ(parallel.candidates[i].end_tick,
                    serial.candidates[i].end_tick);
          EXPECT_EQ(parallel.candidates[i].lifetime,
                    serial.candidates[i].lifetime);
        }
        ASSERT_EQ(parallel.simplified.size(), serial.simplified.size());
        for (size_t i = 0; i < serial.simplified.size(); ++i) {
          EXPECT_EQ(parallel.simplified[i].NumVertices(),
                    serial.simplified[i].NumVertices());
        }
      }
    }
  }
}

TEST(ParallelEquivalenceTest, ParallelCutsMatchesSerialAndCmc) {
  for (const uint64_t seed : {17u, 29u}) {
    const TrajectoryDatabase db = MakeDb(seed);
    const ConvoyQuery query{3, 4, 5.0};
    // kFullWindow is the refine mode that guarantees exact CMC equality on
    // every input (kProjected is allowed to differ in corner cases).
    CutsFilterOptions options;
    options.refine_mode = RefineMode::kFullWindow;
    const auto exact = Cmc(db, query);
    const auto serial = Cuts(db, query, CutsVariant::kCutsStar, options);
    EXPECT_TRUE(SameResultSet(serial, exact)) << "seed " << seed;
    for (const size_t threads : kThreadCounts) {
      const auto parallel = ParallelCuts(db, query, CutsVariant::kCutsStar,
                                         options, nullptr, threads);
      EXPECT_EQ(parallel, serial)
          << "seed " << seed << ", " << threads << " thread(s)";
    }
    // The default (projected) refine mode must also be thread-invariant.
    const auto serial_projected = Cuts(db, query, CutsVariant::kCutsStar);
    for (const size_t threads : kThreadCounts) {
      EXPECT_EQ(ParallelCuts(db, query, CutsVariant::kCutsStar, {}, nullptr,
                             threads),
                serial_projected)
          << "seed " << seed << ", " << threads << " thread(s)";
    }
  }
}

TEST(ParallelEquivalenceTest, QueryNumThreadsKnobIsResultInvariant) {
  const TrajectoryDatabase db = MakeDb(41);
  ConvoyQuery query{3, 4, 5.0};
  const auto baseline = Cuts(db, query, CutsVariant::kCutsPlus);
  for (const size_t threads : kThreadCounts) {
    query.num_threads = threads;
    EXPECT_EQ(Cuts(db, query, CutsVariant::kCutsPlus), baseline);
    EXPECT_EQ(ParallelCmc(db, query), Cmc(db, query));
  }
}

TEST(ParallelEquivalenceTest, EngineConcurrentDiscoverIsSafeAndIdentical) {
  const TrajectoryDatabase db = MakeDb(55);
  const ConvoyQuery query{3, 4, 5.0};
  ConvoyEngine engine(db);
  const auto expected = Cuts(db, query, CutsVariant::kCutsStar);

  constexpr size_t kCallers = 4;
  std::vector<std::vector<Convoy>> results(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (size_t i = 0; i < kCallers; ++i) {
    callers.emplace_back([&engine, &results, &query, i] {
      results[i] = engine.Discover(query, CutsVariant::kCutsStar);
    });
  }
  for (std::thread& t : callers) t.join();
  for (const auto& result : results) EXPECT_EQ(result, expected);
  // All callers used the same (simplifier, delta) key.
  EXPECT_EQ(engine.CacheSize(), 1u);
}

}  // namespace
}  // namespace convoy
