#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>

#include "core/discovery_stats.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/stopwatch.h"

namespace convoy {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.NextUnit(), b.NextUnit());
  }
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-5.0, 3.0);
    EXPECT_GE(x, -5.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(2);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(3);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(4);
  SummaryStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.Gaussian(10.0, 2.0));
  EXPECT_NEAR(stats.Mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.StdDev(), 2.0, 0.1);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(6);
  const auto perm = rng.Permutation(50);
  ASSERT_EQ(perm.size(), 50u);
  std::vector<bool> seen(50, false);
  for (const size_t v : perm) {
    ASSERT_LT(v, 50u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(RngTest, PermutationEmpty) {
  Rng rng(7);
  EXPECT_TRUE(rng.Permutation(0).empty());
}

TEST(SummaryStatsTest, EmptyDefaults) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_TRUE(std::isinf(s.Min()));
  EXPECT_TRUE(std::isinf(s.Max()));
  EXPECT_EQ(s.Variance(), 0.0);
}

TEST(SummaryStatsTest, KnownValues) {
  SummaryStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.StdDev(), 2.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 40.0);
}

TEST(SummaryStatsTest, SingleValue) {
  SummaryStats s;
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.Min(), 3.5);
  EXPECT_DOUBLE_EQ(s.Max(), 3.5);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
}

TEST(QuantileTest, MedianAndExtremes) {
  const std::vector<double> v = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
}

TEST(QuantileTest, Interpolates) {
  EXPECT_DOUBLE_EQ(Quantile({0.0, 10.0}, 0.25), 2.5);
}

TEST(QuantileTest, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(watch.ElapsedSeconds(), 0.009);
  EXPECT_GE(watch.ElapsedMillis(), 9.0);
  EXPECT_GE(watch.ElapsedMicros(), 9000);
}

TEST(StopwatchTest, RestartResetsOrigin) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), 0.005);
}

TEST(PhaseTimerTest, AccumulatesIntervals) {
  PhaseTimer timer;
  for (int i = 0; i < 3; ++i) {
    timer.Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    timer.Stop();
  }
  EXPECT_GE(timer.TotalSeconds(), 0.008);
  timer.Reset();
  EXPECT_EQ(timer.TotalSeconds(), 0.0);
}

TEST(DiscoveryStatsTest, StreamOutputContainsKeyFields) {
  DiscoveryStats stats;
  stats.total_seconds = 1.5;
  stats.num_candidates = 7;
  stats.refinement_unit = 123.0;
  stats.num_convoys = 3;
  std::ostringstream os;
  os << stats;
  const std::string text = os.str();
  EXPECT_NE(text.find("total=1.5"), std::string::npos);
  EXPECT_NE(text.find("candidates=7"), std::string::npos);
  EXPECT_NE(text.find("refinement_unit=123"), std::string::npos);
  EXPECT_NE(text.find("convoys=3"), std::string::npos);
}

TEST(ScopedPhaseTest, AddsOnDestruction) {
  PhaseTimer timer;
  {
    ScopedPhase phase(&timer);
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  }
  EXPECT_GE(timer.TotalSeconds(), 0.002);
}

}  // namespace
}  // namespace convoy
