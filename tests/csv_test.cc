#include "io/csv.h"

#include <gtest/gtest.h>

#include <sstream>

#include "datagen/scenarios.h"
#include "traj/snapshot_store.h"

namespace convoy {
namespace {

TEST(CsvTest, ParsesSimpleRows) {
  std::istringstream in("0,0,1.5,2.5\n0,1,2.5,3.5\n1,0,9,9\n");
  const CsvLoadResult result = LoadTrajectoriesCsv(in);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.lines_parsed, 3u);
  EXPECT_EQ(result.lines_skipped, 0u);
  ASSERT_EQ(result.db.Size(), 2u);
  EXPECT_EQ(result.db[0].Size(), 2u);
  EXPECT_EQ(*result.db[0].LocationAt(0), Point(1.5, 2.5));
  EXPECT_EQ(result.db[1].Size(), 1u);
}

TEST(CsvTest, ToleratesHeader) {
  std::istringstream in("object_id,tick,x,y\n0,0,1,1\n");
  const CsvLoadResult result = LoadTrajectoriesCsv(in);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.lines_parsed, 1u);
  EXPECT_EQ(result.lines_skipped, 0u);
}

TEST(CsvTest, SkipsMalformedRows) {
  std::istringstream in("0,0,1,1\nbogus line\n0,1,2,notanumber\n0,2,3,3\n");
  const CsvLoadResult result = LoadTrajectoriesCsv(in);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.lines_parsed, 2u);
  EXPECT_EQ(result.lines_skipped, 2u);
}

TEST(CsvTest, OutOfOrderRowsAreSorted) {
  std::istringstream in("0,5,5,0\n0,1,1,0\n0,3,3,0\n");
  const CsvLoadResult result = LoadTrajectoriesCsv(in);
  ASSERT_EQ(result.db.Size(), 1u);
  EXPECT_EQ(result.db[0].BeginTick(), 1);
  EXPECT_EQ(result.db[0].EndTick(), 5);
  EXPECT_EQ(result.db[0].Size(), 3u);
}

TEST(CsvTest, WhitespaceTolerated) {
  std::istringstream in(" 0 , 0 , 1.0 , 2.0 \r\n");
  const CsvLoadResult result = LoadTrajectoriesCsv(in);
  EXPECT_EQ(result.lines_parsed, 1u);
  EXPECT_EQ(*result.db[0].LocationAt(0), Point(1.0, 2.0));
}

TEST(CsvTest, NegativeIdSkipped) {
  std::istringstream in("0,0,1,1\n-1,0,1,1\n");
  const CsvLoadResult result = LoadTrajectoriesCsv(in);
  // "-1,..." is treated as the (non-numeric-id) header if first, else
  // skipped; here it is the second line.
  EXPECT_EQ(result.lines_parsed, 1u);
  EXPECT_EQ(result.lines_skipped, 1u);
}

TEST(CsvTest, NonFiniteCoordinatesRejected) {
  // std::from_chars happily parses "nan"/"inf"; the loader must not let
  // them through — one NaN poisons every DBSCAN distance comparison.
  std::istringstream in(
      "0,0,1,1\n"
      "0,1,nan,1\n"
      "0,2,1,inf\n"
      "0,3,-inf,1\n"
      "0,4,2,2\n");
  const CsvLoadResult result = LoadTrajectoriesCsv(in);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.lines_parsed, 2u);
  EXPECT_EQ(result.lines_skipped, 3u);
  ASSERT_EQ(result.diagnostics.size(), 3u);
  EXPECT_EQ(result.diagnostics[0].line_number, 2u);
  EXPECT_EQ(result.diagnostics[0].reason, "non-finite coordinate");
  ASSERT_EQ(result.db.Size(), 1u);
  EXPECT_EQ(result.db[0].Size(), 2u);
}

TEST(CsvTest, DuplicateIdTickRowsCollapseToLastAndAreCounted) {
  std::istringstream in(
      "0,0,1,1\n"
      "0,1,5,5\n"
      "0,1,6,6\n"   // duplicate of (0,1)
      "0,1,7,7\n"   // last occurrence of (0,1): this one wins
      "1,3,9,9\n"
      "1,3,8,8\n");
  const CsvLoadResult result = LoadTrajectoriesCsv(in);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.lines_parsed, 6u);  // every row parsed fine...
  EXPECT_EQ(result.duplicates_collapsed, 3u);  // ...three then collapsed
  ASSERT_EQ(result.db.Size(), 2u);
  ASSERT_EQ(result.db[0].Size(), 2u);
  EXPECT_EQ(*result.db[0].LocationAt(1), Point(7, 7));
  ASSERT_EQ(result.db[1].Size(), 1u);
  EXPECT_EQ(*result.db[1].LocationAt(3), Point(8, 8));
  // The resulting trajectories have strictly increasing ticks.
  for (size_t i = 0; i < result.db.Size(); ++i) {
    const auto& samples = result.db[i].samples();
    for (size_t j = 1; j < samples.size(); ++j) {
      EXPECT_LT(samples[j - 1].t, samples[j].t);
    }
  }
}

TEST(CsvTest, DiagnosticsAreCappedButCountsAreNot) {
  std::ostringstream feed;
  feed << "0,0,1,1\n";
  for (int i = 0; i < 100; ++i) feed << "garbage line " << i << "\n";
  std::istringstream in(feed.str());
  const CsvLoadResult result = LoadTrajectoriesCsv(in);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.lines_skipped, 100u);
  EXPECT_EQ(result.diagnostics.size(), CsvLoadResult::kMaxDiagnostics);
}

TEST(CsvTest, MissingFileReportsError) {
  const CsvLoadResult result =
      LoadTrajectoriesCsv("/nonexistent/path/data.csv");
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
}

TEST(CsvTest, RoundTripPreservesDatabase) {
  const ScenarioData data = GenerateScenario(TaxiLikeConfig(0.2), 17);
  std::ostringstream out;
  SaveTrajectoriesCsv(data.db, out);
  std::istringstream in(out.str());
  const CsvLoadResult loaded = LoadTrajectoriesCsv(in);
  ASSERT_TRUE(loaded.ok);
  ASSERT_EQ(loaded.db.Size(), data.db.Size());
  for (size_t i = 0; i < data.db.Size(); ++i) {
    ASSERT_EQ(loaded.db[i].Size(), data.db[i].Size()) << "object " << i;
    for (size_t j = 0; j < data.db[i].Size(); ++j) {
      EXPECT_EQ(loaded.db[i][j].t, data.db[i][j].t);
      EXPECT_NEAR(loaded.db[i][j].pos.x, data.db[i][j].pos.x, 1e-4);
      EXPECT_NEAR(loaded.db[i][j].pos.y, data.db[i][j].pos.y, 1e-4);
    }
  }
}

TEST(CsvTest, SaveToFileAndReload) {
  const ScenarioData data = GenerateScenario(CattleLikeConfig(0.002), 23);
  const std::string path = ::testing::TempDir() + "/convoy_csv_test.csv";
  ASSERT_TRUE(SaveTrajectoriesCsv(data.db, path));
  const CsvLoadResult loaded = LoadTrajectoriesCsv(path);
  ASSERT_TRUE(loaded.ok);
  EXPECT_EQ(loaded.db.Size(), data.db.Size());
}

TEST(CsvTest, StoreStreamingOverloadMatchesPlainLoad) {
  // Messy input: out-of-order rows, a duplicate (id, tick), a skipped bad
  // row — the store overload must agree with the plain loader on the
  // database AND every diagnostic, and its store must equal a post-hoc
  // Build over that database.
  const std::string csv =
      "object_id,tick,x,y\n"
      "1,4,4.5,0\n"
      "0,0,1,1\n"
      "0,2,3,3\n"
      "garbage,row,x,y\n"
      "0,1,2,2\n"
      "1,0,0.5,0\n"
      "0,2,3.25,3.25\n";  // duplicate (0, 2): last occurrence wins

  std::istringstream plain_in(csv);
  const CsvLoadResult plain = LoadTrajectoriesCsv(plain_in);

  std::istringstream store_in(csv);
  SnapshotStore store;
  const CsvLoadResult streamed = LoadTrajectoriesCsv(store_in, &store);

  ASSERT_TRUE(plain.ok);
  ASSERT_TRUE(streamed.ok);
  EXPECT_EQ(streamed.lines_parsed, plain.lines_parsed);
  EXPECT_EQ(streamed.lines_skipped, plain.lines_skipped);
  EXPECT_EQ(streamed.duplicates_collapsed, plain.duplicates_collapsed);
  EXPECT_EQ(plain.duplicates_collapsed, 1u);
  ASSERT_EQ(streamed.db.Size(), plain.db.Size());
  for (size_t i = 0; i < plain.db.Size(); ++i) {
    EXPECT_EQ(streamed.db[i].id(), plain.db[i].id());
    EXPECT_EQ(streamed.db[i].samples(), plain.db[i].samples());
  }
  EXPECT_EQ(*streamed.db[0].LocationAt(2), Point(3.25, 3.25));

  EXPECT_FALSE(store.IsStaleFor(streamed.db));
  const SnapshotStore rebuilt = SnapshotStore::Build(plain.db);
  ASSERT_EQ(store.TotalPoints(), rebuilt.TotalPoints());
  for (Tick t = store.begin_tick(); t <= store.end_tick(); ++t) {
    const SnapshotView a = store.At(t);
    const SnapshotView b = rebuilt.At(t);
    ASSERT_EQ(a.size, b.size) << "tick " << t;
    for (size_t i = 0; i < a.size; ++i) {
      EXPECT_EQ(a.At(i), b.At(i));
      EXPECT_EQ(a.ids[i], b.ids[i]);
    }
  }
}

TEST(CsvTest, StoreOverloadDeclinesOverBudgetTickSpans) {
  // Epoch-second-looking ticks: two rows whose span would materialize
  // billions of columnar slots. The database must load fine; the store
  // must be declined, not allocated.
  std::istringstream in("0,0,0,0\n0,2000000000,1,1\n1,0,5,5\n");
  SnapshotStore store;
  const CsvLoadResult result = LoadTrajectoriesCsv(in, &store);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.db.Size(), 2u);
  EXPECT_TRUE(store.Empty());
  EXPECT_TRUE(store.IsStaleFor(result.db));  // the "declined" signal
}

TEST(CsvTest, StoreOverloadReportsMissingFile) {
  SnapshotStore store;
  const CsvLoadResult result =
      LoadTrajectoriesCsv("/nonexistent/convoy.csv", &store);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(store.Empty());
}

}  // namespace
}  // namespace convoy
