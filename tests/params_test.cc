#include "core/params.h"

#include <gtest/gtest.h>

#include "simplify/douglas_peucker.h"
#include "simplify/simplifier.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace convoy {
namespace {

Trajectory RandomWalk(Rng& rng, ObjectId id, Tick ticks) {
  Trajectory traj(id);
  Point pos(0, 0);
  for (Tick t = 0; t < ticks; ++t) {
    traj.Append(pos.x, pos.y, t);
    pos = pos + Point(rng.Gaussian(0.5, 1.0), rng.Gaussian(0, 1.0));
  }
  return traj;
}

TEST(DeltaPickTest, DegenerateTrajectoryFallsBackToHalfE) {
  Trajectory traj(0);
  traj.Append(0, 0, 0);
  traj.Append(1, 0, 1);
  EXPECT_DOUBLE_EQ(DeltaPickForTrajectory(traj, 10.0), 5.0);
}

TEST(DeltaPickTest, PickIsBelowE) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const Trajectory traj = RandomWalk(rng, 0, 120);
    const double e = 4.0;
    const double pick = DeltaPickForTrajectory(traj, e);
    EXPECT_GE(pick, 0.0);
    EXPECT_LT(pick, e);
  }
}

TEST(DeltaPickTest, LargestGapRuleMatchesManualApplication) {
  // The pick must equal the Section 7.4 rule applied by hand to the
  // recorded division-step deviations: among ascending deviations below e,
  // take the lower endpoint of the largest adjacent gap.
  Rng rng(77);
  for (int iter = 0; iter < 10; ++iter) {
    const Trajectory traj = RandomWalk(rng, 0, 100);
    const double e = 6.0;
    const std::vector<double> devs = CollectSplitDeviations(traj);
    std::vector<double> eligible;
    for (const double d : devs) {
      if (d < e) eligible.push_back(d);
    }
    if (eligible.size() < 2) continue;
    size_t best = 0;
    double best_gap = -1.0;
    for (size_t i = 0; i + 1 < eligible.size(); ++i) {
      if (eligible[i + 1] - eligible[i] > best_gap) {
        best_gap = eligible[i + 1] - eligible[i];
        best = i;
      }
    }
    EXPECT_DOUBLE_EQ(DeltaPickForTrajectory(traj, e), eligible[best]);
  }
}

TEST(ComputeDeltaTest, EmptyDatabase) {
  EXPECT_DOUBLE_EQ(ComputeDelta(TrajectoryDatabase(), 8.0), 4.0);
}

TEST(ComputeDeltaTest, DeterministicForFixedSeed) {
  Rng rng(9);
  TrajectoryDatabase db;
  for (ObjectId i = 0; i < 20; ++i) db.Add(RandomWalk(rng, i, 80));
  EXPECT_DOUBLE_EQ(ComputeDelta(db, 5.0, 0.2, 42),
                   ComputeDelta(db, 5.0, 0.2, 42));
}

TEST(ComputeDeltaTest, ResultBoundedByE) {
  Rng rng(10);
  TrajectoryDatabase db;
  for (ObjectId i = 0; i < 10; ++i) db.Add(RandomWalk(rng, i, 100));
  for (const double e : {1.0, 4.0, 16.0}) {
    const double delta = ComputeDelta(db, e);
    EXPECT_GT(delta, 0.0);
    EXPECT_LE(delta, e);
  }
}

TEST(ComputeDeltaTest, SampleFractionClampedToAtLeastOne) {
  Rng rng(11);
  TrajectoryDatabase db;
  db.Add(RandomWalk(rng, 0, 50));
  // 10% of 1 object rounds up to 1 trajectory sampled.
  EXPECT_GT(ComputeDelta(db, 5.0, 0.1), 0.0);
}

TEST(ComputeLambdaTest, EmptyDatabase) {
  EXPECT_EQ(ComputeLambda(TrajectoryDatabase(), {}), 2);
}

TEST(ComputeLambdaTest, FullLifetimeDenseTrajectories) {
  // Every object alive the whole domain (tau = T): lambda is the average
  // lambda_1 = ratio * tau = |o'| (the simplified vertex count), uncorrected
  // (see params.h for why the paper's correction is skipped when tau = T).
  Rng rng(12);
  TrajectoryDatabase db;
  for (ObjectId i = 0; i < 5; ++i) db.Add(RandomWalk(rng, i, 100));
  const auto simp = SimplifyDatabase(db, 1.0, SimplifierKind::kDp);
  double expected = 0.0;
  for (const auto& s : simp) expected += static_cast<double>(s.NumVertices());
  expected /= static_cast<double>(simp.size());
  EXPECT_EQ(ComputeLambda(db, simp),
            static_cast<Tick>(std::llround(expected)));
}

TEST(ComputeLambdaTest, CappedByQueryLifetime) {
  // With k given, lambda never exceeds k/4: partitions longer than the
  // query lifetime would let every single-partition cluster qualify.
  Rng rng(21);
  TrajectoryDatabase db;
  for (ObjectId i = 0; i < 5; ++i) db.Add(RandomWalk(rng, i, 400));
  const auto simp = SimplifyDatabase(db, 50.0, SimplifierKind::kDp);
  EXPECT_LE(ComputeLambda(db, simp, /*k=*/40), 10);
  EXPECT_GE(ComputeLambda(db, simp, /*k=*/40), 2);
}

TEST(ComputeLambdaTest, ShortTrajectoriesGiveLargerLambda) {
  // Objects alive for a small fraction of the domain: lambda grows with
  // the survival ratio |o'|/|o| and the lifetime.
  Rng rng(13);
  TrajectoryDatabase db;
  for (ObjectId i = 0; i < 8; ++i) {
    Trajectory traj = RandomWalk(rng, i, 50);
    // Re-home the 50-tick trajectory inside a 1000-tick domain.
    Trajectory shifted(i);
    const Tick offset = rng.UniformInt(0, 950);
    for (const TimedPoint& p : traj.samples()) {
      shifted.Append(p.pos.x, p.pos.y, p.t + offset);
    }
    db.Add(std::move(shifted));
  }
  // Pin the domain to [0, 999] with two sentinel objects.
  Trajectory lo(100);
  lo.Append(0, 0, 0);
  lo.Append(1, 1, 1);
  Trajectory hi(101);
  hi.Append(0, 0, 998);
  hi.Append(1, 1, 999);
  db.Add(std::move(lo));
  db.Add(std::move(hi));

  const auto simp = SimplifyDatabase(db, 0.5, SimplifierKind::kDp);
  const Tick lambda = ComputeLambda(db, simp);
  EXPECT_GE(lambda, 2);
  EXPECT_LE(lambda, 1000);
}

TEST(ComputeLambdaTest, ClampedToDomain) {
  TrajectoryDatabase db;
  Trajectory t0(0);
  t0.Append(0, 0, 0);
  t0.Append(5, 0, 1);
  t0.Append(5, 7, 2);
  db.Add(std::move(t0));
  const auto simp = SimplifyDatabase(db, 0.0, SimplifierKind::kDp);
  const Tick lambda = ComputeLambda(db, simp);
  EXPECT_GE(lambda, 2);
  EXPECT_LE(lambda, 3);
}

TEST(ComputeLambdaTest, HigherReductionGivesSmallerLambda) {
  // More aggressive simplification -> fewer surviving vertices -> shorter
  // partitions are pointless, so lambda tracks the survival ratio.
  Rng rng(22);
  TrajectoryDatabase db;
  for (ObjectId i = 0; i < 6; ++i) db.Add(RandomWalk(rng, i, 300));
  const auto fine = SimplifyDatabase(db, 0.2, SimplifierKind::kDp);
  const auto coarse = SimplifyDatabase(db, 20.0, SimplifierKind::kDp);
  EXPECT_GE(ComputeLambda(db, fine), ComputeLambda(db, coarse));
}

}  // namespace
}  // namespace convoy
